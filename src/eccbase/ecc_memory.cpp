#include "eccbase/ecc_memory.hpp"

#include "eccbase/hamming.hpp"
#include "util/stats.hpp"

namespace hynapse::eccbase {

namespace {

// Applies one chip's worth of faults to a 12-bit codeword array. The same
// static-defect semantics as core::SynapticMemory, inlined over codewords:
// each of the 12 cells is independently defective with the 6T rates.
void corrupt_and_decode(std::vector<std::int32_t>& codes,
                        const quant::QFormat& fmt,
                        const core::FaultModel& model, util::Rng& chip_rng,
                        util::Rng& read_rng) {
  const double p = model.total_rate(/*is_8t=*/false);
  for (std::int32_t& code : codes) {
    const auto truth = static_cast<std::uint8_t>(fmt.to_bits(code));
    std::uint16_t word = hamming_encode(truth);
    const std::uint16_t stored = word;
    for (int bit = 0; bit < kCodeBits; ++bit) {
      if (!chip_rng.bernoulli(p)) continue;
      const core::CellCondition c =
          model.pick_mechanism(/*is_8t=*/false, chip_rng);
      const auto mask = static_cast<std::uint16_t>(1u << bit);
      switch (c) {
        case core::CellCondition::read_weak:
          word = static_cast<std::uint16_t>(
              read_rng.bernoulli(0.5) ? (word | mask) : (word & ~mask));
          break;
        case core::CellCondition::write_weak:
          // Power-up content instead of the written bit.
          word = static_cast<std::uint16_t>(
              read_rng.bernoulli(0.5) ? (word | mask) : (word & ~mask));
          break;
        case core::CellCondition::disturb_weak:
          if (read_rng.bernoulli(0.5))
            word = static_cast<std::uint16_t>(word ^ mask);
          break;
        case core::CellCondition::ok:
          break;
      }
    }
    (void)stored;
    code = fmt.from_bits(hamming_decode(word).data);
  }
}

}  // namespace

core::AccuracyResult evaluate_ecc_accuracy(const core::QuantizedNetwork& qnet,
                                           const mc::FailureTable& failures,
                                           double vdd,
                                           const data::Dataset& test,
                                           const core::EvalOptions& options) {
  const core::FaultModel model{failures, vdd, options.policy};
  core::AccuracyResult result;
  result.per_chip.reserve(options.chips);
  for (std::size_t chip = 0; chip < options.chips; ++chip) {
    const std::uint64_t chip_seed =
        options.seed ^ (0xc2b2ae3d27d4eb4full * (chip + 1));
    util::Rng chip_rng{chip_seed};
    util::Rng read_rng{chip_seed ^ 0x3333cccc3333ccccull};
    core::QuantizedNetwork faulted = qnet;
    for (std::size_t l = 0; l < faulted.num_layers(); ++l) {
      core::QuantizedLayer& layer = faulted.layer(l);
      corrupt_and_decode(layer.weight_codes, layer.weight_fmt, model,
                         chip_rng, read_rng);
      corrupt_and_decode(layer.bias_codes, layer.bias_fmt, model, chip_rng,
                         read_rng);
    }
    const ann::Mlp net = faulted.dequantize();
    result.per_chip.push_back(net.accuracy(test.images, test.labels));
  }
  result.mean = util::mean(result.per_chip);
  result.stddev = util::stddev(result.per_chip);
  return result;
}

}  // namespace hynapse::eccbase
