// Hamming(12,8) single-error-correcting code over one synaptic word.
//
// Ablation baseline: the obvious alternative to the paper's hybrid 8T-6T
// protection is to keep an all-6T array at scaled voltage and add ECC.
// SEC over an 8-bit word costs 4 check bits (50 % extra cells) plus decode
// logic, and corrects at most one error per word -- the comparison the
// bench_ablation_ecc harness quantifies.
#pragma once

#include <cstdint>

namespace hynapse::eccbase {

inline constexpr int kDataBits = 8;
inline constexpr int kCheckBits = 4;
inline constexpr int kCodeBits = kDataBits + kCheckBits;

/// Encodes 8 data bits into a 12-bit Hamming codeword (data in positions
/// that are not powers of two, 1-indexed parity layout).
[[nodiscard]] std::uint16_t hamming_encode(std::uint8_t data) noexcept;

struct DecodeResult {
  std::uint8_t data = 0;
  bool corrected = false;    ///< a single-bit error was fixed
  bool miscorrected = false; ///< >=2 errors aliased onto a wrong correction
};

/// Decodes a possibly corrupted codeword. With >=2 bit errors the syndrome
/// aliases and the decoder silently "corrects" the wrong bit; callers see
/// that via comparison with ground truth only (miscorrected is filled by
/// decode_with_truth).
[[nodiscard]] DecodeResult hamming_decode(std::uint16_t codeword) noexcept;

/// Decode plus ground-truth comparison (test/bench helper).
[[nodiscard]] DecodeResult decode_with_truth(std::uint16_t codeword,
                                             std::uint8_t truth) noexcept;

}  // namespace hynapse::eccbase
