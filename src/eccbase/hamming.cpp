#include "eccbase/hamming.hpp"

namespace hynapse::eccbase {

namespace {

// 1-indexed codeword positions 1..12; positions 1,2,4,8 hold parity.
constexpr int kDataPositions[kDataBits] = {3, 5, 6, 7, 9, 10, 11, 12};

}  // namespace

std::uint16_t hamming_encode(std::uint8_t data) noexcept {
  std::uint16_t code = 0;
  for (int i = 0; i < kDataBits; ++i) {
    if (data & (1u << i))
      code |= static_cast<std::uint16_t>(1u << (kDataPositions[i] - 1));
  }
  // Parity bit at position p covers codeword positions with bit p set.
  for (int p = 0; p < kCheckBits; ++p) {
    const int pos = 1 << p;
    int parity = 0;
    for (int j = 1; j <= kCodeBits; ++j) {
      if ((j & pos) && (code & (1u << (j - 1)))) parity ^= 1;
    }
    if (parity)
      code |= static_cast<std::uint16_t>(1u << (pos - 1));
  }
  return code;
}

DecodeResult hamming_decode(std::uint16_t codeword) noexcept {
  int syndrome = 0;
  for (int p = 0; p < kCheckBits; ++p) {
    const int pos = 1 << p;
    int parity = 0;
    for (int j = 1; j <= kCodeBits; ++j) {
      if ((j & pos) && (codeword & (1u << (j - 1)))) parity ^= 1;
    }
    if (parity) syndrome |= pos;
  }
  DecodeResult r;
  if (syndrome != 0 && syndrome <= kCodeBits) {
    codeword = static_cast<std::uint16_t>(codeword ^ (1u << (syndrome - 1)));
    r.corrected = true;
  }
  for (int i = 0; i < kDataBits; ++i) {
    if (codeword & (1u << (kDataPositions[i] - 1)))
      r.data |= static_cast<std::uint8_t>(1u << i);
  }
  return r;
}

DecodeResult decode_with_truth(std::uint16_t codeword,
                               std::uint8_t truth) noexcept {
  DecodeResult r = hamming_decode(codeword);
  r.miscorrected = (r.data != truth);
  return r;
}

}  // namespace hynapse::eccbase
