// ECC-protected all-6T synaptic storage: the ablation baseline against the
// paper's hybrid 8T-6T approach. Every 8-bit synaptic word is stored as a
// Hamming(12,8) codeword in 6T cells at scaled voltage; reads decode and
// single-error-correct. Power and area scale by 12/8 on 6T-cell figures
// (decode logic excluded, which favours the ECC baseline).
#pragma once

#include <cstdint>

#include "core/experiments.hpp"
#include "core/fault_model.hpp"
#include "core/quantized_network.hpp"
#include "data/dataset.hpp"
#include "eccbase/hamming.hpp"
#include "mc/failure_table.hpp"

namespace hynapse::eccbase {

/// Accuracy of the network stored under Hamming(12,8)-protected 6T cells at
/// `vdd`, averaged over chip instances (same eval protocol as
/// core::evaluate_accuracy).
[[nodiscard]] core::AccuracyResult evaluate_ecc_accuracy(
    const core::QuantizedNetwork& qnet, const mc::FailureTable& failures,
    double vdd, const data::Dataset& test,
    const core::EvalOptions& options = {});

/// Cell-count overhead of the ECC scheme vs unprotected 8-bit words (0.5).
[[nodiscard]] constexpr double ecc_area_overhead() noexcept {
  return static_cast<double>(kCheckBits) / static_cast<double>(kDataBits);
}

}  // namespace hynapse::eccbase
