#include "core/fault_model.hpp"

#include <algorithm>
#include <cmath>

namespace hynapse::core {

FaultModel::FaultModel(const mc::FailureTable& table, double vdd,
                       ReadFaultPolicy policy)
    : vdd_{vdd},
      policy_{policy},
      rates6_{table.rates_6t(vdd)},
      rates8_{table.rates_8t(vdd)} {}

double FaultModel::total_rate(bool is_8t) const noexcept {
  const mc::BitcellFailureRates& r = is_8t ? rates8_ : rates6_;
  // Mechanisms are treated as mutually exclusive alternatives for a given
  // cell; their rates are small enough that the sum is a faithful total.
  return std::min(1.0, r.total());
}

CellCondition FaultModel::pick_mechanism(bool is_8t, util::Rng& rng) const {
  const mc::BitcellFailureRates& r = is_8t ? rates8_ : rates6_;
  const double total = r.total();
  if (total <= 0.0) return CellCondition::ok;
  const double u = rng.uniform() * total;
  if (u < r.read_access) return CellCondition::read_weak;
  if (u < r.read_access + r.write_fail) return CellCondition::write_weak;
  return CellCondition::disturb_weak;
}

FaultMap FaultMap::sample(const BankConfig& bank, const FaultModel& model,
                          util::Rng& rng) {
  FaultMap map;
  map.resample(bank, model, rng);
  return map;
}

void FaultMap::resample(const BankConfig& bank, const FaultModel& model,
                        util::Rng& rng) {
  defects_.clear();
  // Reserve for the expected defect count (plus slack for sampling noise)
  // before drawing anything, so the push_back loop below almost never
  // reallocates mid-chip. Reserving consumes no RNG draws, so the sampled
  // stream is unchanged.
  const double expected =
      static_cast<double>(bank.bits_6t()) * model.total_rate(false) +
      static_cast<double>(bank.bits_8t()) * model.total_rate(true);
  defects_.reserve(static_cast<std::size_t>(expected * 1.25) + 16);
  for (int bit = 0; bit < bank.word_bits; ++bit) {
    const bool is_8t = bank.bit_is_8t(bit);
    const double p = model.total_rate(is_8t);
    if (p <= 0.0) continue;
    if (p >= 1.0) {
      for (std::size_t w = 0; w < bank.words; ++w) {
        defects_.push_back(Defect{static_cast<std::uint32_t>(w),
                                  static_cast<std::uint8_t>(bit),
                                  model.pick_mechanism(is_8t, rng)});
      }
      continue;
    }
    // Geometric skip sampling: the gap to the next defective cell is
    // floor(ln(u)/ln(1-p)).
    const double log1mp = std::log1p(-p);
    double pos = 0.0;
    const auto n = static_cast<double>(bank.words);
    while (true) {
      const double u = std::max(rng.uniform(), 1e-300);
      pos += std::floor(std::log(u) / log1mp);
      if (pos >= n) break;
      defects_.push_back(Defect{static_cast<std::uint32_t>(pos),
                                static_cast<std::uint8_t>(bit),
                                model.pick_mechanism(is_8t, rng)});
      pos += 1.0;
    }
  }
}

std::size_t FaultMap::count(CellCondition c) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(defects_.begin(), defects_.end(),
                    [c](const Defect& d) { return d.condition == c; }));
}

}  // namespace hynapse::core
