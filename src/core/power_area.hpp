// System-level power and area accounting for a synaptic memory
// configuration, built from the per-bitcell characteristics (Fig. 6) and
// the paper's 8T/6T iso-voltage ratios. Produces the quantities behind
// Fig. 7(b), Fig. 8(b,c) and Fig. 9.
#pragma once

#include "core/memory_config.hpp"
#include "sram/power.hpp"

namespace hynapse::core {

struct PowerAreaReport {
  double vdd = 0.0;
  double access_power = 0.0;   ///< W: streaming-read power of all stored bits
  double leakage_power = 0.0;  ///< W: standby leakage of the whole array
  double area_units = 0.0;     ///< area in 6T-bitcell units
};

/// Evaluates a configuration operating at `vdd`.
[[nodiscard]] PowerAreaReport evaluate_power_area(
    const MemoryConfig& config, double vdd,
    const sram::BitcellPowerModel& cells);

/// Relative savings of `candidate` against `baseline` (positive = candidate
/// is better); area_overhead is positive when the candidate is larger.
struct RelativeSavings {
  double access_power = 0.0;
  double leakage_power = 0.0;
  double area_overhead = 0.0;
};

[[nodiscard]] RelativeSavings compare(const PowerAreaReport& candidate,
                                      const PowerAreaReport& baseline);

}  // namespace hynapse::core
