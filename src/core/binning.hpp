// Chip-binning study: the accuracy of a fault-injected synaptic memory is a
// random variable over process variation (each die draws its own defect
// map). This module characterizes that distribution -- mean, spread,
// percentiles and "accuracy yield" (the fraction of dies meeting a spec) --
// which is how a production flow would grade approximate-memory parts.
#pragma once

#include <cstdint>
#include <vector>

#include "core/experiments.hpp"

namespace hynapse::core {

struct ChipDistribution {
  std::vector<double> accuracies;  ///< sorted ascending, one per chip
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;

  /// Linear-interpolation percentile, p in [0,1].
  [[nodiscard]] double percentile(double p) const;

  /// Fraction of chips with accuracy >= threshold.
  [[nodiscard]] double accuracy_yield(double threshold) const;
};

/// Evaluates `chips` independent die samples of the given configuration at
/// `vdd` (seeded deterministically) and returns the accuracy distribution.
[[nodiscard]] ChipDistribution chip_accuracy_distribution(
    const QuantizedNetwork& qnet, const MemoryConfig& config,
    const mc::FailureTable& failures, double vdd, const data::Dataset& test,
    std::size_t chips, std::uint64_t seed = 555,
    ReadFaultPolicy policy = ReadFaultPolicy::random_per_read);

}  // namespace hynapse::core
