// Experiment drivers: classification accuracy under fault injection for a
// given memory configuration and operating voltage, averaged over simulated
// chip instances. The top of the paper's circuit-to-system simulation
// framework (Section V).
#pragma once

#include <cstdint>
#include <vector>

#include "ann/backends/backend.hpp"
#include "core/fault_model.hpp"
#include "core/memory_config.hpp"
#include "core/quantized_network.hpp"
#include "data/dataset.hpp"
#include "mc/failure_table.hpp"

namespace hynapse::core {

class EvalContextPool;

struct AccuracyResult {
  double mean = 0.0;
  double stddev = 0.0;
  std::vector<double> per_chip;
};

/// Chip-evaluation implementation. Both produce bit-identical results for
/// every ReadFaultPolicy (pinned by tests/test_core_delta_eval.cpp).
enum class EvalPath : std::uint8_t {
  /// Sparse-delta fast path (default): chips are evaluated as per-defect
  /// deltas over a shared clean baseline with preallocated forward-pass
  /// workspaces — no per-chip memory-image rebuild (docs/performance.md).
  delta,
  /// Reference path: full SynapticMemory store/load round trip and a fresh
  /// dequantized network per chip. Kept as the bit-exact oracle and the
  /// bench_eval_hotpath baseline.
  legacy,
};

struct EvalOptions {
  std::size_t chips = 5;           ///< independent chip instances
  std::uint64_t seed = 2024;
  ReadFaultPolicy policy = ReadFaultPolicy::random_per_read;
  /// Parallelism cap for the chip loop (0 = util::default_thread_count(),
  /// 1 = serial). Results are bit-identical for any value.
  std::size_t threads = 0;
  EvalPath path = EvalPath::delta;
  /// GEMM kernel backend for the forward passes (delta path). Every backend
  /// is bit-identical (ann/backends/backend.hpp); the default follows the
  /// process-wide --backend selection.
  ann::backends::Backend backend = ann::backends::default_backend();
  /// Fused-evaluation group size for the delta path: how many chips share
  /// one batched forward pass (weight matrices streamed once per group
  /// instead of once per chip). 0 = auto (fused_group_size), 1 = per-chip,
  /// N = fixed groups of N. Results are bit-identical for any value.
  std::size_t fuse_chips = 0;
};

/// Resolves EvalOptions::fuse_chips to a concrete group size for a point
/// with `total_chips` chips evaluated across `threads` workers (0 = auto).
/// Auto balances the two wins: fusing amortizes weight streaming, but each
/// group is one serial unit of work, so groups are capped to keep every
/// worker busy (and to 8 chips, past which the grouped activation panels
/// outgrow the cache level that makes fusion pay).
[[nodiscard]] std::size_t fused_group_size(std::size_t fuse_chips,
                                           std::size_t total_chips,
                                           std::size_t threads);

/// Accuracy of one simulated chip instance: chip index `chip` under
/// `eval_seed`. The unit of parallelism for evaluate_accuracy and
/// engine::ExperimentRunner -- a chip's result depends only on
/// (qnet, config, model, test, eval_seed, chip), never on scheduling.
[[nodiscard]] double evaluate_chip(const QuantizedNetwork& qnet,
                                   const MemoryConfig& config,
                                   const FaultModel& model,
                                   const data::Dataset& test,
                                   std::uint64_t eval_seed, std::size_t chip);

/// Stores the network into `config` at `vdd` on each simulated chip, reads
/// it back through the fault model and measures test accuracy. Chips are
/// evaluated on the shared thread pool (see EvalOptions::threads) via the
/// path selected by EvalOptions::path. `contexts` optionally supplies a
/// persistent EvalContextPool so the delta path's baselines/workspaces
/// survive across calls (engine::ExperimentRunner passes its own); when
/// null, a call-local pool is used.
[[nodiscard]] AccuracyResult evaluate_accuracy(
    const QuantizedNetwork& qnet, const MemoryConfig& config,
    const mc::FailureTable& failures, double vdd, const data::Dataset& test,
    const EvalOptions& options = {}, EvalContextPool* contexts = nullptr);

/// Fault-free accuracy of the quantized network (the "8-bit nominal" line).
[[nodiscard]] double quantized_accuracy(const QuantizedNetwork& qnet,
                                        const data::Dataset& test);

/// The paper's benchmark topology (Table I): 784-1000-500-200-100-10.
[[nodiscard]] std::vector<std::size_t> table1_layer_sizes();

}  // namespace hynapse::core
