// Bit-level fault model (Section V of the paper):
//  * process variation is static per die, so each cell has a fixed condition
//    sampled from the voltage-dependent Monte-Carlo failure rates;
//  * read-access and write failures are mutually exclusive per cell ("it was
//    additionally assumed that a 6T bitcell cannot simultaneously have read
//    access and write failures");
//  * the failure distribution follows the memory configuration: uniform over
//    all bits of a 6T bank, LSB-only for hybrid words (8T cells are failure-
//    free in the voltage range of interest).
#pragma once

#include <cstdint>
#include <vector>

#include "core/memory_config.hpp"
#include "mc/failure_table.hpp"
#include "util/rng.hpp"

namespace hynapse::core {

enum class CellCondition : std::uint8_t {
  ok = 0,
  read_weak,     ///< cannot develop the sense differential in time
  write_weak,    ///< cannot flip within the write cycle
  disturb_weak,  ///< flips when read
};

/// What a read from a read-weak cell returns.
enum class ReadFaultPolicy : std::uint8_t {
  /// Sense amp resolves randomly on every read (default; an access failure
  /// leaves the differential below the amp's offset).
  random_per_read,
  /// Sensed value is always the complement of the stored bit.
  always_flip,
  /// Sensed value is stuck at the cell's power-up state.
  stuck_at_powerup,
};

/// Failure probabilities per cell type at one operating voltage, with the
/// sampling rules above.
class FaultModel {
 public:
  FaultModel(const mc::FailureTable& table, double vdd,
             ReadFaultPolicy policy = ReadFaultPolicy::random_per_read);

  [[nodiscard]] double vdd() const noexcept { return vdd_; }
  [[nodiscard]] ReadFaultPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] const mc::BitcellFailureRates& rates_6t() const noexcept {
    return rates6_;
  }
  [[nodiscard]] const mc::BitcellFailureRates& rates_8t() const noexcept {
    return rates8_;
  }

  /// Combined defect probability for one cell of the given type.
  [[nodiscard]] double total_rate(bool is_8t) const noexcept;

  /// Given that a cell is defective, picks the mechanism (mutually
  /// exclusive, probabilities proportional to the mechanism rates).
  [[nodiscard]] CellCondition pick_mechanism(bool is_8t,
                                             util::Rng& rng) const;

 private:
  double vdd_;
  ReadFaultPolicy policy_;
  mc::BitcellFailureRates rates6_;
  mc::BitcellFailureRates rates8_;
};

/// One defective cell in a bank.
struct Defect {
  std::uint32_t word = 0;
  std::uint8_t bit = 0;
  CellCondition condition = CellCondition::ok;
};

/// Static per-chip defect map of one bank, sampled sparsely with geometric
/// skips (defect rates are small, so materializing per-cell states would
/// waste memory and RNG draws).
class FaultMap {
 public:
  [[nodiscard]] static FaultMap sample(const BankConfig& bank,
                                       const FaultModel& model,
                                       util::Rng& rng);

  /// In-place variant of sample() for the per-chip hot loop: identical
  /// defects and RNG draws, but the defect storage (and its capacity) is
  /// reused across chips, so steady-state resampling performs no heap
  /// allocation.
  void resample(const BankConfig& bank, const FaultModel& model,
                util::Rng& rng);

  [[nodiscard]] const std::vector<Defect>& defects() const noexcept {
    return defects_;
  }
  [[nodiscard]] std::size_t count(CellCondition c) const noexcept;

 private:
  std::vector<Defect> defects_;
};

}  // namespace hynapse::core
