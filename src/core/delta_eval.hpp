// Delta-fault chip evaluation: the allocation-free fast path behind
// core::evaluate_accuracy (EvalPath::delta).
//
// A simulated chip's faulted network differs from the clean dequantized
// baseline only at defect-touched words — every other synapse survives the
// store/load round trip unchanged. So instead of rebuilding the full
// ~1.4M-word memory image per chip (SynapticMemory construct ->
// store_network -> load_network -> dequantize -> fresh Mlp), an EvalContext
//  * samples each bank's FaultMap into reused storage,
//  * resolves every defect to its final bit value, drawing the read RNG in
//    exactly the legacy order (bank-major, defect-major) and the power-up
//    RNG only as far as the last word a defect actually consults,
//  * folds the per-defect bits into one (layer, word, new-code) delta per
//    touched word,
//  * applies the deltas to a shared clean baseline Mlp, runs the workspace
//    forward pass, and reverts them.
// Results are bit-identical to the legacy evaluate_chip for all three
// ReadFaultPolicy modes (tests/test_core_delta_eval.cpp pins this); the
// determinism contract (docs/engine.md) carries over unchanged because a
// context is fully re-derived from (network, config, model, seed, chip) on
// every call. After warm-up a context performs no heap allocation per chip
// (docs/performance.md).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "ann/backends/backend.hpp"
#include "ann/mlp.hpp"
#include "ann/workspace.hpp"
#include "core/fault_model.hpp"
#include "core/memory_config.hpp"
#include "core/quantized_network.hpp"
#include "data/dataset.hpp"

namespace hynapse::core {

/// Cheap content key for a quantized network (codes, formats, topology).
/// EvalContext caches its dequantized baseline under this key, so a pooled
/// context held across calls can never serve a stale baseline for a
/// different network that happens to live at the same address. Not a stable
/// artifact fingerprint (see util::Fnv1a for those) — compute once per
/// evaluation call, not per chip.
[[nodiscard]] std::uint64_t network_fingerprint(const QuantizedNetwork& qnet);

/// One faulted storage word: `word` indexes the bank layout (weight words
/// first, then bias words) of `layer`.
struct FaultDelta {
  std::uint32_t layer = 0;
  std::uint32_t word = 0;
  std::int32_t code = 0;  ///< faulted signed code read back from the bank
};

/// Per-worker reusable state for delta-fault evaluation: the shared clean
/// baseline network, the forward-pass workspace, and every scratch vector
/// the per-chip loop needs. Not thread-safe; lease one per concurrent job
/// from an EvalContextPool.
class EvalContext {
 public:
  EvalContext() = default;

  /// Accuracy of chip `chip` — same contract and bit-identical result as
  /// the legacy core::evaluate_chip. `qnet_fp` must be
  /// network_fingerprint(qnet) (precomputed by the caller once per call).
  /// `backend` selects the GEMM kernel table (ann/backends; identical
  /// results either way).
  [[nodiscard]] double evaluate_chip(
      const QuantizedNetwork& qnet, std::uint64_t qnet_fp,
      const MemoryConfig& config, const FaultModel& model,
      const data::Dataset& test, std::uint64_t eval_seed, std::size_t chip,
      ann::backends::Backend backend = ann::backends::Backend::reference);

  /// Fused evaluation of chips [chip_begin, chip_begin + count): all chips
  /// share one batched forward pass (Mlp::accuracy_group), so each layer's
  /// weight matrix is streamed from memory once per mini-batch for the
  /// whole group instead of once per chip — the fault deltas are still
  /// applied/reverted per chip around each GEMM. out[i] receives the
  /// accuracy of chip_begin + i, bit-identical to count separate
  /// evaluate_chip calls (tests/test_core_fused_eval.cpp pins this).
  void evaluate_chips(
      const QuantizedNetwork& qnet, std::uint64_t qnet_fp,
      const MemoryConfig& config, const FaultModel& model,
      const data::Dataset& test, std::uint64_t eval_seed,
      std::size_t chip_begin, std::size_t count, std::span<double> out,
      ann::backends::Backend backend = ann::backends::Backend::reference);

  /// The deltas computed by the most recent evaluate_chip (diagnostics /
  /// tests).
  [[nodiscard]] const std::vector<FaultDelta>& last_deltas() const noexcept {
    return deltas_;
  }

 private:
  /// One precomputed fused delta: the baseline slot it shadows, the faulted
  /// value to write on apply, and the clean value to restore on revert.
  struct FusedDelta {
    float* slot;
    float faulted;
    float clean;
  };

  void bind(const QuantizedNetwork& qnet, std::uint64_t qnet_fp);
  void compute_deltas(const QuantizedNetwork& qnet, const MemoryConfig& config,
                      const FaultModel& model, std::uint64_t chip_seed);
  void check_shapes(const QuantizedNetwork& qnet,
                    const MemoryConfig& config) const;

  std::uint64_t qnet_fp_ = 0;
  std::optional<ann::Mlp> baseline_;  ///< clean dequantized network
  ann::EvalWorkspace workspace_;
  ann::GroupEvalWorkspace group_workspace_;

  // Scratch reused across chips (capacity persists, contents re-derived).
  std::vector<FaultMap> maps_;
  std::vector<FaultDelta> deltas_;
  std::vector<float> saved_;  ///< baseline values shadowed by deltas_
  std::vector<std::pair<std::uint32_t, std::uint32_t>> flips_;  // (word, bits)
  std::vector<std::uint32_t> powerup_words_;
  std::vector<std::uint16_t> powerup_bits_;
  // Fused-path scratch: flattened per-(chip, layer) delta runs.
  std::vector<FusedDelta> fused_deltas_;
  std::vector<std::size_t> fused_offsets_;  // (chip * layers + layer) runs
};

/// Thread-safe free list of EvalContexts: one context per concurrently
/// running chip job ("one workspace per pool worker"), reused across chips,
/// calls and — when the pool lives in an engine::ExperimentRunner or
/// serve::EvalService — across requests.
class EvalContextPool {
 public:
  EvalContextPool() = default;
  EvalContextPool(const EvalContextPool&) = delete;
  EvalContextPool& operator=(const EvalContextPool&) = delete;

  /// RAII lease: acquires an idle context (or creates one) on construction,
  /// returns it on destruction.
  class Lease {
   public:
    explicit Lease(EvalContextPool& pool)
        : pool_{&pool}, context_{pool.acquire()} {}
    ~Lease() {
      // Returning the context can only fail on allocation; dropping it then
      // is safe (the pool just re-creates one later).
      try {
        pool_->release(std::move(context_));
      } catch (...) {  // NOLINT(bugprone-empty-catch)
      }
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    [[nodiscard]] EvalContext& context() noexcept { return *context_; }

   private:
    EvalContextPool* pool_;
    std::unique_ptr<EvalContext> context_;
  };

  /// Contexts currently idle in the pool (high-water mark of concurrency).
  [[nodiscard]] std::size_t idle_count() const;

 private:
  std::unique_ptr<EvalContext> acquire();
  void release(std::unique_ptr<EvalContext> context);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<EvalContext>> idle_;
};

}  // namespace hynapse::core
