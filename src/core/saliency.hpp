// Neuron-level resilience analysis in the style of AxNN (Venkataramani et
// al. [8], the paper's reference for "the fraction of resilient neurons
// decreases while moving towards the output layer"): measure each neuron's
// importance by ablating it (zeroing its outgoing synapses) and recording
// the accuracy drop. Aggregated per layer, this tests the claim behind
// Configuration 2 directly at the neuron granularity.
#pragma once

#include <cstdint>
#include <vector>

#include "ann/mlp.hpp"
#include "data/dataset.hpp"

namespace hynapse::core {

struct NeuronSaliency {
  std::size_t layer = 0;   ///< hidden-layer index (0 = first hidden)
  std::size_t neuron = 0;  ///< index within the layer
  double accuracy_drop = 0.0;
};

struct LayerResilience {
  std::size_t layer = 0;
  std::size_t neurons_probed = 0;
  double mean_drop = 0.0;
  double max_drop = 0.0;
  /// Fraction of probed neurons whose ablation costs less than
  /// `resilience_threshold` accuracy (the "resilient" fraction of [8]).
  double resilient_fraction = 0.0;
};

struct SaliencyOptions {
  std::size_t neurons_per_layer = 12;  ///< sampled uniformly per layer
  double resilience_threshold = 0.002;
  std::uint64_t seed = 97;
};

/// Ablates sampled hidden neurons one at a time and measures the accuracy
/// drop on `eval`. Returns one entry per probed neuron.
[[nodiscard]] std::vector<NeuronSaliency> neuron_ablation_saliency(
    const ann::Mlp& net, const data::Dataset& eval,
    const SaliencyOptions& options = {});

/// Per-layer aggregation of the ablation study.
[[nodiscard]] std::vector<LayerResilience> layer_resilience(
    const ann::Mlp& net, const data::Dataset& eval,
    const SaliencyOptions& options = {});

/// Group ablation: zeroes a random `fraction` of one hidden layer's neurons
/// and measures the accuracy drop (averaged over `trials` random groups).
/// Wide over-parameterized layers shrug off single-neuron ablation; group
/// ablation exposes the per-layer redundancy differences behind the paper's
/// Configuration-2 reasoning.
[[nodiscard]] double group_ablation_drop(const ann::Mlp& net,
                                         const data::Dataset& eval,
                                         std::size_t hidden_layer,
                                         double fraction,
                                         std::size_t trials = 3,
                                         std::uint64_t seed = 131);

}  // namespace hynapse::core
