#include "core/saliency.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace hynapse::core {

std::vector<NeuronSaliency> neuron_ablation_saliency(
    const ann::Mlp& net, const data::Dataset& eval,
    const SaliencyOptions& options) {
  const double baseline = net.accuracy(eval.images, eval.labels);
  util::Rng rng{options.seed};
  std::vector<NeuronSaliency> out;

  // Hidden layers are 1 .. layer_sizes().size()-2 in neuron terms; a
  // neuron's outgoing synapses live in weight(layer) rows.
  const std::size_t hidden_layers = net.layer_sizes().size() - 2;
  for (std::size_t hl = 0; hl < hidden_layers; ++hl) {
    const std::size_t width = net.layer_sizes()[hl + 1];
    const std::size_t probes = std::min(options.neurons_per_layer, width);
    // Sample distinct neurons.
    std::vector<std::size_t> picked;
    while (picked.size() < probes) {
      const std::size_t n = rng.uniform_index(width);
      if (std::find(picked.begin(), picked.end(), n) == picked.end())
        picked.push_back(n);
    }
    for (std::size_t neuron : picked) {
      ann::Mlp ablated = net;
      // Zero the neuron's outgoing row in the next weight matrix and its
      // bias so it contributes nothing downstream.
      ann::Matrix& w_out = ablated.weight(hl + 1);
      for (std::size_t j = 0; j < w_out.cols(); ++j)
        w_out.at(neuron, j) = 0.0f;
      ablated.bias(hl)[neuron] = 0.0f;
      const double acc = ablated.accuracy(eval.images, eval.labels);
      out.push_back(NeuronSaliency{hl, neuron, baseline - acc});
    }
  }
  return out;
}

std::vector<LayerResilience> layer_resilience(const ann::Mlp& net,
                                              const data::Dataset& eval,
                                              const SaliencyOptions& options) {
  const std::vector<NeuronSaliency> saliency =
      neuron_ablation_saliency(net, eval, options);
  const std::size_t hidden_layers = net.layer_sizes().size() - 2;
  std::vector<LayerResilience> layers(hidden_layers);
  for (std::size_t hl = 0; hl < hidden_layers; ++hl) layers[hl].layer = hl;
  for (const NeuronSaliency& s : saliency) {
    LayerResilience& lr = layers[s.layer];
    ++lr.neurons_probed;
    lr.mean_drop += s.accuracy_drop;
    lr.max_drop = std::max(lr.max_drop, s.accuracy_drop);
    if (s.accuracy_drop < options.resilience_threshold)
      lr.resilient_fraction += 1.0;
  }
  for (LayerResilience& lr : layers) {
    if (lr.neurons_probed > 0) {
      lr.mean_drop /= static_cast<double>(lr.neurons_probed);
      lr.resilient_fraction /= static_cast<double>(lr.neurons_probed);
    }
  }
  return layers;
}

double group_ablation_drop(const ann::Mlp& net, const data::Dataset& eval,
                           std::size_t hidden_layer, double fraction,
                           std::size_t trials, std::uint64_t seed) {
  const std::size_t hidden_layers = net.layer_sizes().size() - 2;
  if (hidden_layer >= hidden_layers)
    throw std::out_of_range{"group_ablation_drop: not a hidden layer"};
  if (!(fraction > 0.0) || fraction > 1.0)
    throw std::invalid_argument{"group_ablation_drop: bad fraction"};
  const double baseline = net.accuracy(eval.images, eval.labels);
  const std::size_t width = net.layer_sizes()[hidden_layer + 1];
  const auto group = static_cast<std::size_t>(
      std::max(1.0, fraction * static_cast<double>(width)));
  util::Rng rng{seed};
  double drop = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    ann::Mlp ablated = net;
    std::vector<std::size_t> picked;
    while (picked.size() < group) {
      const std::size_t n = rng.uniform_index(width);
      if (std::find(picked.begin(), picked.end(), n) == picked.end())
        picked.push_back(n);
    }
    ann::Matrix& w_out = ablated.weight(hidden_layer + 1);
    for (std::size_t neuron : picked) {
      for (std::size_t j = 0; j < w_out.cols(); ++j)
        w_out.at(neuron, j) = 0.0f;
      ablated.bias(hidden_layer)[neuron] = 0.0f;
    }
    drop += baseline - ablated.accuracy(eval.images, eval.labels);
  }
  return drop / static_cast<double>(trials);
}

}  // namespace hynapse::core
