#include "core/delta_eval.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace hynapse::core {

std::uint64_t network_fingerprint(const QuantizedNetwork& qnet) {
  // 64-bit multiply-xor lanes, not byte-wise FNV: this runs over ~1.4M codes
  // once per evaluation call, so it must stay in the low-millisecond range
  // for the Table-I network.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) noexcept {
    h = (h ^ v) * 0x100000001b3ull;
    h ^= h >> 29;
  };
  mix(static_cast<std::uint64_t>(qnet.weight_bits()));
  mix(static_cast<std::uint64_t>(qnet.activation()));
  mix(qnet.num_layers());
  for (std::size_t l = 0; l < qnet.num_layers(); ++l) {
    const QuantizedLayer& layer = qnet.layer(l);
    mix(layer.fan_in);
    mix(layer.fan_out);
    mix(static_cast<std::uint64_t>(layer.weight_fmt.total_bits()) << 32 |
        static_cast<std::uint32_t>(layer.weight_fmt.frac_bits()));
    mix(static_cast<std::uint64_t>(layer.bias_fmt.total_bits()) << 32 |
        static_cast<std::uint32_t>(layer.bias_fmt.frac_bits()));
    for (std::int32_t code : layer.weight_codes)
      mix(static_cast<std::uint32_t>(code));
    for (std::int32_t code : layer.bias_codes)
      mix(static_cast<std::uint32_t>(code));
  }
  return h;
}

namespace {

/// Clean stored code of bank word `w` (weight words first, then biases).
[[nodiscard]] std::int32_t clean_code(const QuantizedLayer& layer,
                                      std::uint32_t w) noexcept {
  const std::size_t nw = layer.weight_codes.size();
  return w < nw ? layer.weight_codes[w] : layer.bias_codes[w - nw];
}

}  // namespace

void EvalContext::bind(const QuantizedNetwork& qnet, std::uint64_t qnet_fp) {
  if (baseline_.has_value() && qnet_fp_ == qnet_fp) return;
  baseline_.emplace(qnet.dequantize());
  workspace_.bind(*baseline_);
  qnet_fp_ = qnet_fp;
}

void EvalContext::compute_deltas(const QuantizedNetwork& qnet,
                                 const MemoryConfig& config,
                                 const FaultModel& model,
                                 std::uint64_t chip_seed) {
  // Mirrors the legacy path draw for draw: the chip RNG splits one bank RNG
  // per bank (SynapticMemory's constructor order), and read_rng is consumed
  // bank-major, defect-major exactly as load_network's defect loop does.
  util::Rng rng{chip_seed};
  util::Rng read_rng{chip_seed ^ 0x5555aaaa5555aaaaull};
  deltas_.clear();
  maps_.resize(config.num_banks());
  for (std::size_t b = 0; b < config.num_banks(); ++b) {
    const BankConfig& bank = config.banks()[b];
    const QuantizedLayer& layer = qnet.layer(b);
    const quant::QFormat& fmt = layer.weight_fmt;
    const std::size_t codes = layer.synapse_count();
    util::Rng bank_rng = rng.split();
    maps_[b].resample(bank, model, bank_rng);
    const std::vector<Defect>& defects = maps_[b].defects();

    // Power-up bits matter only to write-weak cells (store() keeps their
    // power-up value) and, under stuck_at_powerup, to read-weak cells. The
    // legacy constructor draws the whole bank image; drawing the same
    // stream only up to the last consulted word yields identical bits for
    // every observable cell, and the bank RNG is discarded afterwards.
    powerup_words_.clear();
    const bool stuck = model.policy() == ReadFaultPolicy::stuck_at_powerup;
    for (const Defect& d : defects) {
      if (d.word >= codes) continue;
      if (d.condition == CellCondition::write_weak ||
          (stuck && d.condition == CellCondition::read_weak)) {
        powerup_words_.push_back(d.word);
      }
    }
    std::sort(powerup_words_.begin(), powerup_words_.end());
    powerup_words_.erase(
        std::unique(powerup_words_.begin(), powerup_words_.end()),
        powerup_words_.end());
    powerup_bits_.resize(powerup_words_.size());
    const std::uint16_t mask =
        static_cast<std::uint16_t>((1u << bank.word_bits) - 1u);
    std::uint32_t drawn = 0;  // words already consumed from the bank stream
    for (std::size_t i = 0; i < powerup_words_.size(); ++i) {
      const std::uint32_t w = powerup_words_[i];
      bank_rng.discard(w - drawn);  // exact jump over unobserved words
      powerup_bits_[i] =
          static_cast<std::uint16_t>(bank_rng.next_u64()) & mask;
      drawn = w + 1;
    }
    const auto powerup_bit = [&](std::uint32_t word, int bit) -> bool {
      const auto it = std::lower_bound(powerup_words_.begin(),
                                       powerup_words_.end(), word);
      const auto idx =
          static_cast<std::size_t>(it - powerup_words_.begin());
      return (powerup_bits_[idx] >> bit) & 1u;
    };

    // Resolve every defect to its final read-back bit. Conditions are
    // mutually exclusive per cell and defect cells are unique per
    // (word, bit), so each defect is an independent bit assignment; only
    // the read_rng draw order is shared state, and it is preserved above
    // all else.
    flips_.clear();
    for (const Defect& d : defects) {
      if (d.word >= codes) continue;  // legacy skips before drawing
      const std::uint32_t bits = fmt.to_bits(clean_code(layer, d.word));
      const bool stored = (bits >> d.bit) & 1u;
      bool read_back = stored;
      switch (d.condition) {
        case CellCondition::read_weak:
          switch (model.policy()) {
            case ReadFaultPolicy::random_per_read:
              read_back = read_rng.bernoulli(0.5);
              break;
            case ReadFaultPolicy::always_flip:
              read_back = !stored;
              break;
            case ReadFaultPolicy::stuck_at_powerup:
              read_back = powerup_bit(d.word, d.bit);
              break;
          }
          break;
        case CellCondition::write_weak:
          read_back = powerup_bit(d.word, d.bit);
          break;
        case CellCondition::disturb_weak:
          read_back = !stored;  // the single evaluation read upsets it
          break;
        case CellCondition::ok:
          break;
      }
      if (read_back != stored)
        flips_.emplace_back(d.word, std::uint32_t{1} << d.bit);
    }

    // Fold the flips into one delta per touched word (defects arrive in
    // (bit, word) order, so same-word flips are scattered).
    std::sort(flips_.begin(), flips_.end());
    for (std::size_t i = 0; i < flips_.size();) {
      const std::uint32_t word = flips_[i].first;
      std::uint32_t flip_mask = 0;
      for (; i < flips_.size() && flips_[i].first == word; ++i)
        flip_mask |= flips_[i].second;
      const std::int32_t code =
          fmt.from_bits(fmt.to_bits(clean_code(layer, word)) ^ flip_mask);
      deltas_.push_back(FaultDelta{static_cast<std::uint32_t>(b), word, code});
    }
  }
}

void EvalContext::check_shapes(const QuantizedNetwork& qnet,
                               const MemoryConfig& config) const {
  // Same shape validation (and messages) as the legacy SynapticMemory path.
  if (config.num_banks() != qnet.num_layers())
    throw std::invalid_argument{
        "SynapticMemory::store_network: bank/layer count mismatch"};
  for (std::size_t b = 0; b < config.num_banks(); ++b) {
    if (qnet.layer(b).synapse_count() > config.banks()[b].words)
      throw std::invalid_argument{"SynapticMemory::store: bank too small"};
  }
}

double EvalContext::evaluate_chip(const QuantizedNetwork& qnet,
                                  std::uint64_t qnet_fp,
                                  const MemoryConfig& config,
                                  const FaultModel& model,
                                  const data::Dataset& test,
                                  std::uint64_t eval_seed, std::size_t chip,
                                  ann::backends::Backend backend) {
  check_shapes(qnet, config);
  bind(qnet, qnet_fp);
  workspace_.set_backend(backend);
  const std::uint64_t chip_seed =
      eval_seed ^ (0x9e3779b97f4a7c15ull * (chip + 1));
  compute_deltas(qnet, config, model, chip_seed);

  // Apply the deltas to the shared baseline, evaluate, revert. Each delta
  // touches a distinct (layer, word), so restore order doesn't matter.
  saved_.clear();
  saved_.reserve(deltas_.size());
  for (const FaultDelta& d : deltas_) {
    const QuantizedLayer& layer = qnet.layer(d.layer);
    const std::size_t nw = layer.weight_codes.size();
    float* slot = nullptr;
    float value = 0.0f;
    if (d.word < nw) {
      slot = &baseline_->weight(d.layer).data()[d.word];
      value = static_cast<float>(layer.weight_fmt.dequantize(d.code));
    } else {
      slot = &baseline_->bias(d.layer)[d.word - nw];
      value = static_cast<float>(layer.bias_fmt.dequantize(d.code));
    }
    saved_.push_back(*slot);
    *slot = value;
  }
  const auto revert = [this, &qnet] {
    for (std::size_t i = 0; i < deltas_.size(); ++i) {
      const FaultDelta& d = deltas_[i];
      const std::size_t nw = qnet.layer(d.layer).weight_codes.size();
      if (d.word < nw) {
        baseline_->weight(d.layer).data()[d.word] = saved_[i];
      } else {
        baseline_->bias(d.layer)[d.word - nw] = saved_[i];
      }
    }
  };
  double accuracy = 0.0;
  try {
    accuracy = baseline_->accuracy(test.images, test.labels, workspace_);
  } catch (...) {
    revert();  // keep the baseline clean for the next chip on this context
    throw;
  }
  revert();
  return accuracy;
}

void EvalContext::evaluate_chips(const QuantizedNetwork& qnet,
                                 std::uint64_t qnet_fp,
                                 const MemoryConfig& config,
                                 const FaultModel& model,
                                 const data::Dataset& test,
                                 std::uint64_t eval_seed,
                                 std::size_t chip_begin, std::size_t count,
                                 std::span<double> out,
                                 ann::backends::Backend backend) {
  if (count == 0) return;
  if (out.size() < count)
    throw std::invalid_argument{
        "EvalContext::evaluate_chips: output span too small"};
  if (count == 1) {
    // A group of one gains nothing from fusion; the scalar path avoids the
    // group workspace entirely.
    out[0] = evaluate_chip(qnet, qnet_fp, config, model, test, eval_seed,
                           chip_begin, backend);
    return;
  }
  check_shapes(qnet, config);
  bind(qnet, qnet_fp);
  group_workspace_.set_backend(backend);

  // Precompute every chip's deltas up front as (slot, faulted, clean)
  // triples, grouped into per-(chip, layer) runs so the mutate callback in
  // the fused forward pass is two tight pointer loops. Each chip's delta
  // derivation is self-contained (its RNGs are seeded from its own
  // chip_seed), so hoisting it out of the forward pass cannot change the
  // values the per-chip path would compute.
  const std::size_t num_layers = qnet.num_layers();
  fused_deltas_.clear();
  fused_offsets_.assign(count * num_layers + 1, 0);
  for (std::size_t c = 0; c < count; ++c) {
    const std::size_t chip = chip_begin + c;
    const std::uint64_t chip_seed =
        eval_seed ^ (0x9e3779b97f4a7c15ull * (chip + 1));
    compute_deltas(qnet, config, model, chip_seed);
    // deltas_ is pushed bank-major, so its layers are already ascending.
    std::size_t di = 0;
    for (std::size_t l = 0; l < num_layers; ++l) {
      fused_offsets_[c * num_layers + l] = fused_deltas_.size();
      const QuantizedLayer& layer = qnet.layer(l);
      const std::size_t nw = layer.weight_codes.size();
      for (; di < deltas_.size() && deltas_[di].layer == l; ++di) {
        const FaultDelta& d = deltas_[di];
        float* slot = nullptr;
        float faulted = 0.0f;
        if (d.word < nw) {
          slot = &baseline_->weight(d.layer).data()[d.word];
          faulted = static_cast<float>(layer.weight_fmt.dequantize(d.code));
        } else {
          slot = &baseline_->bias(d.layer)[d.word - nw];
          faulted = static_cast<float>(layer.bias_fmt.dequantize(d.code));
        }
        fused_deltas_.push_back(FusedDelta{slot, faulted, *slot});
      }
    }
  }
  fused_offsets_[count * num_layers] = fused_deltas_.size();

  const auto mutate = [this, num_layers](std::size_t chip, std::size_t layer,
                                         bool apply) {
    const std::size_t b = fused_offsets_[chip * num_layers + layer];
    const std::size_t e = fused_offsets_[chip * num_layers + layer + 1];
    if (apply) {
      for (std::size_t i = b; i < e; ++i)
        *fused_deltas_[i].slot = fused_deltas_[i].faulted;
    } else {
      for (std::size_t i = b; i < e; ++i)
        *fused_deltas_[i].slot = fused_deltas_[i].clean;
    }
  };
  try {
    baseline_->accuracy_group(test.images, test.labels, group_workspace_,
                              count, mutate, out);
  } catch (...) {
    // Restore every shadowed slot (clean values are shared across chips
    // touching the same word, so blanket restoration is idempotent) and keep
    // the baseline usable for the next call on this context.
    for (const FusedDelta& d : fused_deltas_) *d.slot = d.clean;
    throw;
  }
}

std::size_t EvalContextPool::idle_count() const {
  const std::scoped_lock lock{mutex_};
  return idle_.size();
}

std::unique_ptr<EvalContext> EvalContextPool::acquire() {
  {
    const std::scoped_lock lock{mutex_};
    if (!idle_.empty()) {
      std::unique_ptr<EvalContext> context = std::move(idle_.back());
      idle_.pop_back();
      return context;
    }
  }
  return std::make_unique<EvalContext>();
}

void EvalContextPool::release(std::unique_ptr<EvalContext> context) {
  const std::scoped_lock lock{mutex_};
  idle_.push_back(std::move(context));
}

}  // namespace hynapse::core
