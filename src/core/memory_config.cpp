#include "core/memory_config.hpp"

#include <stdexcept>

namespace hynapse::core {

MemoryConfig::MemoryConfig(std::vector<BankConfig> banks)
    : banks_{std::move(banks)} {
  if (banks_.empty())
    throw std::invalid_argument{"MemoryConfig: need at least one bank"};
  for (const BankConfig& b : banks_) {
    if (b.words == 0) throw std::invalid_argument{"MemoryConfig: empty bank"};
    if (b.word_bits < 2 || b.word_bits > 16)
      throw std::invalid_argument{"MemoryConfig: bad word width"};
    if (b.msbs_in_8t < 0 || b.msbs_in_8t > b.word_bits)
      throw std::invalid_argument{"MemoryConfig: bad 8T MSB count"};
  }
}

MemoryConfig MemoryConfig::all_6t(std::span<const std::size_t> bank_words,
                                  int word_bits) {
  return uniform_hybrid(bank_words, 0, word_bits);
}

MemoryConfig MemoryConfig::uniform_hybrid(
    std::span<const std::size_t> bank_words, int n_msb, int word_bits) {
  std::vector<BankConfig> banks;
  banks.reserve(bank_words.size());
  for (std::size_t i = 0; i < bank_words.size(); ++i) {
    banks.push_back(BankConfig{"L" + std::to_string(i + 1), bank_words[i],
                               word_bits, n_msb});
  }
  return MemoryConfig{std::move(banks)};
}

MemoryConfig MemoryConfig::per_layer(std::span<const std::size_t> bank_words,
                                     std::span<const int> n_msbs,
                                     int word_bits) {
  if (bank_words.size() != n_msbs.size())
    throw std::invalid_argument{"MemoryConfig::per_layer: size mismatch"};
  std::vector<BankConfig> banks;
  banks.reserve(bank_words.size());
  for (std::size_t i = 0; i < bank_words.size(); ++i) {
    banks.push_back(BankConfig{"L" + std::to_string(i + 1), bank_words[i],
                               word_bits, n_msbs[i]});
  }
  return MemoryConfig{std::move(banks)};
}

std::size_t MemoryConfig::total_words() const noexcept {
  std::size_t n = 0;
  for (const auto& b : banks_) n += b.words;
  return n;
}

std::size_t MemoryConfig::total_bits_6t() const noexcept {
  std::size_t n = 0;
  for (const auto& b : banks_) n += b.bits_6t();
  return n;
}

std::size_t MemoryConfig::total_bits_8t() const noexcept {
  std::size_t n = 0;
  for (const auto& b : banks_) n += b.bits_8t();
  return n;
}

double MemoryConfig::area_units(
    const circuit::PaperConstants& constants) const {
  return static_cast<double>(total_bits_6t()) +
         constants.area_ratio_8t_over_6t *
             static_cast<double>(total_bits_8t());
}

double MemoryConfig::area_overhead_vs_all_6t(
    const circuit::PaperConstants& constants) const {
  const double all_6t =
      static_cast<double>(total_bits_6t() + total_bits_8t());
  return area_units(constants) / all_6t - 1.0;
}

std::string MemoryConfig::describe() const {
  // Uniform configs print as "(n,m)"; mixed configs as "n=(a,b,...)".
  bool uniform = true;
  for (const auto& b : banks_)
    if (b.msbs_in_8t != banks_.front().msbs_in_8t) uniform = false;
  if (uniform) {
    const int n = banks_.front().msbs_in_8t;
    const int m = banks_.front().word_bits - n;
    return "(" + std::to_string(n) + "," + std::to_string(m) + ")";
  }
  std::string out = "n=(";
  for (std::size_t i = 0; i < banks_.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(banks_[i].msbs_in_8t);
  }
  out += ")";
  return out;
}

}  // namespace hynapse::core
