// 8-bit fixed-point view of a trained MLP: the representation that actually
// lives in the synaptic SRAM. Each connection layer gets its own Q-format
// for weights and biases (smallest format covering the observed range).
#pragma once

#include <cstdint>
#include <vector>

#include "ann/mlp.hpp"
#include "quant/qformat.hpp"

namespace hynapse::core {

struct QuantizedLayer {
  quant::QFormat weight_fmt;
  quant::QFormat bias_fmt;
  std::size_t fan_in = 0;
  std::size_t fan_out = 0;
  std::vector<std::int32_t> weight_codes;  ///< row-major fan_in x fan_out
  std::vector<std::int32_t> bias_codes;    ///< fan_out

  /// Synapses in this layer counting biases (Table I convention).
  [[nodiscard]] std::size_t synapse_count() const noexcept {
    return weight_codes.size() + bias_codes.size();
  }
};

class QuantizedNetwork {
 public:
  /// Quantizes every layer of `net` to `weight_bits` two's-complement bits.
  QuantizedNetwork(const ann::Mlp& net, int weight_bits = 8);

  [[nodiscard]] std::size_t num_layers() const noexcept {
    return layers_.size();
  }
  [[nodiscard]] const QuantizedLayer& layer(std::size_t i) const {
    return layers_.at(i);
  }
  [[nodiscard]] QuantizedLayer& layer(std::size_t i) { return layers_.at(i); }
  [[nodiscard]] int weight_bits() const noexcept { return weight_bits_; }
  [[nodiscard]] const std::vector<std::size_t>& layer_sizes() const noexcept {
    return sizes_;
  }

  /// Per-layer synapse counts (weights + biases): the bank word counts for
  /// MemoryConfig factories.
  [[nodiscard]] std::vector<std::size_t> bank_words() const;

  /// Reconstructs a float network from the (possibly fault-injected) codes.
  [[nodiscard]] ann::Mlp dequantize() const;

  [[nodiscard]] ann::Activation activation() const noexcept {
    return activation_;
  }

 private:
  int weight_bits_;
  std::vector<std::size_t> sizes_;
  ann::Activation activation_ = ann::Activation::sigmoid;
  std::vector<QuantizedLayer> layers_;
};

}  // namespace hynapse::core
