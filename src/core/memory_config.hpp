// Synaptic memory configurations (Fig. 3 of the paper):
//   Base configuration  -- all-6T SRAM banks;
//   Configuration 1     -- significance-driven hybrid 8T-6T SRAM: the same
//                          number of MSBs of every synaptic weight lives in
//                          8T bitcells;
//   Configuration 2     -- synaptic-sensitivity-driven architecture: one
//                          hybrid bank per ANN layer, each protecting a
//                          per-layer number of MSBs.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "circuit/reference.hpp"

namespace hynapse::core {

/// One SRAM bank holding the synapses that fan out of one ANN layer.
/// Bit index convention: 0 = LSB ... word_bits-1 = MSB (sign bit).
struct BankConfig {
  std::string name;
  std::size_t words = 0;  ///< number of synaptic weights stored
  int word_bits = 8;
  int msbs_in_8t = 0;  ///< top `msbs_in_8t` bits are 8T cells

  [[nodiscard]] bool bit_is_8t(int bit) const noexcept {
    return bit >= word_bits - msbs_in_8t;
  }
  [[nodiscard]] std::size_t bits_8t() const noexcept {
    return words * static_cast<std::size_t>(msbs_in_8t);
  }
  [[nodiscard]] std::size_t bits_6t() const noexcept {
    return words * static_cast<std::size_t>(word_bits - msbs_in_8t);
  }
};

class MemoryConfig {
 public:
  MemoryConfig() = default;
  explicit MemoryConfig(std::vector<BankConfig> banks);

  /// Base configuration (Fig. 3a).
  [[nodiscard]] static MemoryConfig all_6t(
      std::span<const std::size_t> bank_words, int word_bits = 8);

  /// Configuration 1 (Fig. 3b): `n_msb` protected MSBs in every bank.
  [[nodiscard]] static MemoryConfig uniform_hybrid(
      std::span<const std::size_t> bank_words, int n_msb, int word_bits = 8);

  /// Configuration 2 (Fig. 3c): per-bank protected-MSB counts.
  [[nodiscard]] static MemoryConfig per_layer(
      std::span<const std::size_t> bank_words, std::span<const int> n_msbs,
      int word_bits = 8);

  [[nodiscard]] const std::vector<BankConfig>& banks() const noexcept {
    return banks_;
  }
  [[nodiscard]] std::size_t num_banks() const noexcept { return banks_.size(); }
  [[nodiscard]] std::size_t total_words() const noexcept;
  [[nodiscard]] std::size_t total_bits_6t() const noexcept;
  [[nodiscard]] std::size_t total_bits_8t() const noexcept;

  /// Total array area in units of one 6T bitcell (hybrid rows lay out with
  /// no overhead beyond the larger 8T footprint, per Chang et al. [13]).
  [[nodiscard]] double area_units(
      const circuit::PaperConstants& constants) const;

  /// Fractional area increase over the all-6T layout of the same capacity
  /// (e.g. 0.1041 for the paper's Config 2-A).
  [[nodiscard]] double area_overhead_vs_all_6t(
      const circuit::PaperConstants& constants) const;

  /// Short human-readable descriptor, e.g. "(3,5) hybrid" or "n=(2,3,1,1,3)".
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<BankConfig> banks_;
};

}  // namespace hynapse::core
