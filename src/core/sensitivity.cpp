#include "core/sensitivity.hpp"

#include <algorithm>

#include "core/experiments.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace hynapse::core {

namespace {

// Flips `bit` of each weight code in `layer` with probability p.
void inject_bit_errors(QuantizedLayer& layer, int bit, double p,
                       util::Rng& rng) {
  const auto flip = [&](std::int32_t& code, const quant::QFormat& fmt) {
    if (!rng.bernoulli(p)) return;
    code = fmt.from_bits(quant::flip_bit(fmt.to_bits(code), bit));
  };
  for (std::int32_t& c : layer.weight_codes) flip(c, layer.weight_fmt);
  for (std::int32_t& c : layer.bias_codes) flip(c, layer.bias_fmt);
}

}  // namespace

std::vector<std::vector<double>> bit_sensitivity(
    const QuantizedNetwork& qnet, const data::Dataset& eval,
    const SensitivityOptions& options) {
  const double baseline = quantized_accuracy(qnet, eval);
  const int bits = qnet.weight_bits();
  std::vector<std::vector<double>> drop(
      qnet.num_layers(), std::vector<double>(static_cast<std::size_t>(bits)));
  util::Rng rng{options.seed};
  for (std::size_t l = 0; l < qnet.num_layers(); ++l) {
    for (int b = 0; b < bits; ++b) {
      double acc = 0.0;
      for (std::size_t t = 0; t < options.trials; ++t) {
        QuantizedNetwork perturbed = qnet;
        util::Rng trial_rng = rng.split();
        inject_bit_errors(perturbed.layer(l), b, options.bit_error_rate,
                          trial_rng);
        acc += quantized_accuracy(perturbed, eval);
      }
      acc /= static_cast<double>(options.trials);
      drop[l][static_cast<std::size_t>(b)] = baseline - acc;
    }
  }
  return drop;
}

std::vector<double> layer_sensitivity(const QuantizedNetwork& qnet,
                                      const data::Dataset& eval,
                                      const SensitivityOptions& options) {
  const double baseline = quantized_accuracy(qnet, eval);
  const int msb = qnet.weight_bits() - 1;
  std::vector<double> drop(qnet.num_layers());
  util::Rng rng{options.seed};
  for (std::size_t l = 0; l < qnet.num_layers(); ++l) {
    double acc = 0.0;
    for (std::size_t t = 0; t < options.trials; ++t) {
      QuantizedNetwork perturbed = qnet;
      util::Rng trial_rng = rng.split();
      inject_bit_errors(perturbed.layer(l), msb, options.bit_error_rate,
                        trial_rng);
      acc += quantized_accuracy(perturbed, eval);
    }
    drop[l] = baseline - acc / static_cast<double>(options.trials);
  }
  return drop;
}

AllocationResult optimize_allocation(const QuantizedNetwork& qnet,
                                     const data::Dataset& val,
                                     const mc::FailureTable& failures,
                                     double vdd,
                                     const circuit::PaperConstants& constants,
                                     const AllocationOptions& options) {
  const std::vector<std::size_t> words = qnet.bank_words();
  const double baseline = quantized_accuracy(qnet, val);
  const double target = baseline - options.target_accuracy_drop;

  AllocationResult result;
  result.msbs_per_bank.assign(words.size(), 0);

  EvalOptions eval_opts;
  eval_opts.chips = options.chips_per_eval;
  eval_opts.seed = options.seed;

  const auto evaluate = [&](const std::vector<int>& msbs) {
    const MemoryConfig cfg = MemoryConfig::per_layer(
        words, msbs, qnet.weight_bits());
    ++result.evaluations;
    return evaluate_accuracy(qnet, cfg, failures, vdd, val, eval_opts).mean;
  };

  double current = evaluate(result.msbs_per_bank);
  while (current < target) {
    double best_score = -1e300;
    std::size_t best_bank = words.size();
    double best_acc = current;
    for (std::size_t b = 0; b < words.size(); ++b) {
      if (result.msbs_per_bank[b] >= options.max_msbs) continue;
      std::vector<int> candidate = result.msbs_per_bank;
      ++candidate[b];
      const double acc = evaluate(candidate);
      // Area cost of protecting one more bit column of bank b.
      const double cost = static_cast<double>(words[b]) *
                          (constants.area_ratio_8t_over_6t - 1.0);
      const double score = (acc - current) / cost;
      if (score > best_score) {
        best_score = score;
        best_bank = b;
        best_acc = acc;
      }
    }
    if (best_bank == words.size()) break;  // everything protected
    ++result.msbs_per_bank[best_bank];
    current = best_acc;
  }

  result.accuracy = current;
  const MemoryConfig final_cfg = MemoryConfig::per_layer(
      words, result.msbs_per_bank, qnet.weight_bits());
  result.area_overhead = final_cfg.area_overhead_vs_all_6t(constants);
  return result;
}

}  // namespace hynapse::core
