#include "core/power_area.hpp"

namespace hynapse::core {

PowerAreaReport evaluate_power_area(const MemoryConfig& config, double vdd,
                                    const sram::BitcellPowerModel& cells) {
  PowerAreaReport r;
  r.vdd = vdd;
  const double bits6 = static_cast<double>(config.total_bits_6t());
  const double bits8 = static_cast<double>(config.total_bits_8t());
  r.access_power = bits6 * cells.read_power_6t(vdd) +
                   bits8 * cells.read_power_8t(vdd);
  r.leakage_power = bits6 * cells.leakage_power_6t(vdd) +
                    bits8 * cells.leakage_power_8t(vdd);
  r.area_units = config.area_units(cells.constants());
  return r;
}

RelativeSavings compare(const PowerAreaReport& candidate,
                        const PowerAreaReport& baseline) {
  RelativeSavings s;
  s.access_power = 1.0 - candidate.access_power / baseline.access_power;
  s.leakage_power = 1.0 - candidate.leakage_power / baseline.leakage_power;
  s.area_overhead = candidate.area_units / baseline.area_units - 1.0;
  return s;
}

}  // namespace hynapse::core
