#include "core/quantized_network.hpp"

namespace hynapse::core {

QuantizedNetwork::QuantizedNetwork(const ann::Mlp& net, int weight_bits)
    : weight_bits_{weight_bits},
      sizes_{net.layer_sizes()},
      activation_{net.hidden_activation()} {
  layers_.reserve(net.num_weight_layers());
  for (std::size_t l = 0; l < net.num_weight_layers(); ++l) {
    const ann::Matrix& w = net.weight(l);
    const std::vector<float>& b = net.bias(l);
    const quant::QFormat wf =
        quant::choose_format(quant::max_abs(w.data()), weight_bits);
    const quant::QFormat bf = quant::choose_format(
        quant::max_abs(std::span<const float>{b}), weight_bits);
    QuantizedLayer layer{wf, bf, w.rows(), w.cols(), {}, {}};
    layer.weight_codes.reserve(w.size());
    for (float x : w.data())
      layer.weight_codes.push_back(wf.quantize(static_cast<double>(x)));
    layer.bias_codes.reserve(b.size());
    for (float x : b)
      layer.bias_codes.push_back(bf.quantize(static_cast<double>(x)));
    layers_.push_back(std::move(layer));
  }
}

std::vector<std::size_t> QuantizedNetwork::bank_words() const {
  std::vector<std::size_t> words;
  words.reserve(layers_.size());
  for (const auto& l : layers_) words.push_back(l.synapse_count());
  return words;
}

ann::Mlp QuantizedNetwork::dequantize() const {
  ann::Mlp net{sizes_, 0, activation_};
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const QuantizedLayer& q = layers_[l];
    ann::Matrix& w = net.weight(l);
    for (std::size_t i = 0; i < q.weight_codes.size(); ++i)
      w.data()[i] =
          static_cast<float>(q.weight_fmt.dequantize(q.weight_codes[i]));
    std::vector<float>& b = net.bias(l);
    for (std::size_t i = 0; i < q.bias_codes.size(); ++i)
      b[i] = static_cast<float>(q.bias_fmt.dequantize(q.bias_codes[i]));
  }
  return net;
}

}  // namespace hynapse::core
