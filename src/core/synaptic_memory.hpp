// Fault-injecting synaptic storage: quantized weights written into hybrid
// 8T-6T banks on a simulated chip instance, read back through the bit-level
// fault model. This is the paper's "ANN functional simulator" hook: "The
// read access and write failures are modeled by introducing bit flips while
// accessing and updating the synaptic weights" (Section V).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/fault_model.hpp"
#include "core/memory_config.hpp"
#include "core/quantized_network.hpp"
#include "util/rng.hpp"

namespace hynapse::core {

class SynapticMemory {
 public:
  /// Creates one chip instance: power-up contents and the static defect map
  /// derive deterministically from `chip_seed`.
  SynapticMemory(MemoryConfig config, const FaultModel& model,
                 std::uint64_t chip_seed);

  /// Writes `codes` (two's-complement, `word_bits` wide) into a bank.
  /// Write-weak cells retain their power-up value.
  void store(std::size_t bank, std::span<const std::int32_t> codes,
             const quant::QFormat& fmt);

  /// Reads a bank back, applying read-weak (per the model's policy) and
  /// disturb-weak behaviour. Disturbed cells are corrupted in place, so a
  /// second load sees the flipped data.
  void load(std::size_t bank, std::span<std::int32_t> codes,
            const quant::QFormat& fmt, util::Rng& read_rng);

  /// Stores every layer of a quantized network (bank i = layer i: weight
  /// codes then bias codes).
  void store_network(const QuantizedNetwork& net);

  /// Loads every layer back into a copy of `reference` (formats and shapes
  /// are taken from it) and returns the perturbed network.
  [[nodiscard]] QuantizedNetwork load_network(const QuantizedNetwork& reference,
                                              util::Rng& read_rng);

  [[nodiscard]] const MemoryConfig& config() const noexcept { return config_; }
  [[nodiscard]] const FaultMap& fault_map(std::size_t bank) const {
    return maps_.at(bank);
  }

  /// Total defective cells of a given condition across all banks.
  [[nodiscard]] std::size_t defect_count(CellCondition c) const;

 private:
  MemoryConfig config_;
  const FaultModel* model_;
  std::vector<FaultMap> maps_;
  std::vector<std::vector<std::uint16_t>> words_;    // stored bit patterns
  std::vector<std::vector<std::uint16_t>> powerup_;  // power-up patterns
  /// One flag per defect: a disturb-weak cell upsets only on its first read.
  std::vector<std::vector<std::uint8_t>> disturb_done_;
  /// Reused staging buffer for store_network/load_network (one bank's codes).
  std::vector<std::int32_t> io_scratch_;
};

}  // namespace hynapse::core
