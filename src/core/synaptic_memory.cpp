#include "core/synaptic_memory.hpp"

#include <stdexcept>

namespace hynapse::core {

SynapticMemory::SynapticMemory(MemoryConfig config, const FaultModel& model,
                               std::uint64_t chip_seed)
    : config_{std::move(config)}, model_{&model} {
  util::Rng rng{chip_seed};
  maps_.reserve(config_.num_banks());
  words_.resize(config_.num_banks());
  powerup_.resize(config_.num_banks());
  disturb_done_.resize(config_.num_banks());
  for (std::size_t b = 0; b < config_.num_banks(); ++b) {
    const BankConfig& bank = config_.banks()[b];
    util::Rng bank_rng = rng.split();
    maps_.push_back(FaultMap::sample(bank, model, bank_rng));
    // Power-up state: every cell wakes with random contents. Bulk-fill
    // through a raw pointer (one sized allocation, one pass), then seed the
    // live array from it in a single bulk assign.
    std::vector<std::uint16_t>& powerup = powerup_[b];
    powerup.resize(bank.words);
    const std::uint16_t mask =
        static_cast<std::uint16_t>((1u << bank.word_bits) - 1u);
    std::uint16_t* const cells = powerup.data();
    for (std::size_t w = 0; w < bank.words; ++w)
      cells[w] = static_cast<std::uint16_t>(bank_rng.next_u64()) & mask;
    words_[b].assign(powerup.begin(), powerup.end());
    disturb_done_[b].assign(maps_[b].defects().size(), 0);
  }
}

void SynapticMemory::store(std::size_t bank,
                           std::span<const std::int32_t> codes,
                           const quant::QFormat& fmt) {
  const BankConfig& bc = config_.banks().at(bank);
  if (codes.size() > bc.words)
    throw std::invalid_argument{"SynapticMemory::store: bank too small"};
  std::vector<std::uint16_t>& mem = words_[bank];
  for (std::size_t i = 0; i < codes.size(); ++i)
    mem[i] = static_cast<std::uint16_t>(fmt.to_bits(codes[i]));
  // Rewriting restores disturb-weak cells until their next read upsets them
  // again.
  std::fill(disturb_done_[bank].begin(), disturb_done_[bank].end(), 0);
  // Write-weak cells missed the update and still hold power-up data.
  for (const Defect& d : maps_[bank].defects()) {
    if (d.condition != CellCondition::write_weak) continue;
    if (d.word >= codes.size()) continue;
    const std::uint16_t bit = static_cast<std::uint16_t>(1u << d.bit);
    mem[d.word] = static_cast<std::uint16_t>(
        (mem[d.word] & ~bit) | (powerup_[bank][d.word] & bit));
  }
}

void SynapticMemory::load(std::size_t bank, std::span<std::int32_t> codes,
                          const quant::QFormat& fmt, util::Rng& read_rng) {
  const BankConfig& bc = config_.banks().at(bank);
  if (codes.size() > bc.words)
    throw std::invalid_argument{"SynapticMemory::load: bank too small"};
  std::vector<std::uint16_t>& mem = words_[bank];
  for (std::size_t i = 0; i < codes.size(); ++i)
    codes[i] = fmt.from_bits(mem[i]);

  const std::vector<Defect>& defects = maps_[bank].defects();
  for (std::size_t di = 0; di < defects.size(); ++di) {
    const Defect& d = defects[di];
    if (d.word >= codes.size()) continue;
    const std::uint16_t bit = static_cast<std::uint16_t>(1u << d.bit);
    std::uint32_t pattern = fmt.to_bits(codes[d.word]);
    switch (d.condition) {
      case CellCondition::read_weak: {
        bool sensed = false;
        switch (model_->policy()) {
          case ReadFaultPolicy::random_per_read:
            sensed = read_rng.bernoulli(0.5);
            break;
          case ReadFaultPolicy::always_flip:
            sensed = (mem[d.word] & bit) == 0;
            break;
          case ReadFaultPolicy::stuck_at_powerup:
            sensed = (powerup_[bank][d.word] & bit) != 0;
            break;
        }
        pattern = sensed ? (pattern | bit)
                         : (pattern & ~static_cast<std::uint32_t>(bit));
        break;
      }
      case CellCondition::disturb_weak: {
        // The first read upsets the cell; the corrupted value is stored and
        // returned stably from then on.
        if (!disturb_done_[bank][di]) {
          disturb_done_[bank][di] = 1;
          mem[d.word] = static_cast<std::uint16_t>(mem[d.word] ^ bit);
          pattern ^= bit;
        }
        break;
      }
      case CellCondition::write_weak:
      case CellCondition::ok:
        break;  // store() already handled write-weak cells
    }
    codes[d.word] = fmt.from_bits(pattern);
  }
}

void SynapticMemory::store_network(const QuantizedNetwork& net) {
  if (net.num_layers() != config_.num_banks())
    throw std::invalid_argument{
        "SynapticMemory::store_network: bank/layer count mismatch"};
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    const QuantizedLayer& layer = net.layer(l);
    // Bank layout: weight words first, then bias words. Biases use their own
    // Q-format but the same bit-significance partition. The staging vector
    // is a reused member, so repeated store/load cycles on one chip don't
    // reallocate per layer.
    io_scratch_.clear();
    io_scratch_.reserve(layer.synapse_count());
    io_scratch_.insert(io_scratch_.end(), layer.weight_codes.begin(),
                       layer.weight_codes.end());
    io_scratch_.insert(io_scratch_.end(), layer.bias_codes.begin(),
                       layer.bias_codes.end());
    // Bits are raw two's-complement patterns; the format only matters for
    // code<->bits conversion, identical for weights and biases of equal
    // width, so store with the weight format.
    store(l, io_scratch_, layer.weight_fmt);
  }
}

QuantizedNetwork SynapticMemory::load_network(
    const QuantizedNetwork& reference, util::Rng& read_rng) {
  QuantizedNetwork out = reference;
  for (std::size_t l = 0; l < out.num_layers(); ++l) {
    QuantizedLayer& layer = out.layer(l);
    io_scratch_.clear();
    io_scratch_.resize(layer.synapse_count());
    load(l, io_scratch_, layer.weight_fmt, read_rng);
    const std::size_t nw = layer.weight_codes.size();
    std::copy_n(io_scratch_.begin(), nw, layer.weight_codes.begin());
    std::copy_n(io_scratch_.begin() + static_cast<std::ptrdiff_t>(nw),
                layer.bias_codes.size(), layer.bias_codes.begin());
  }
  return out;
}

std::size_t SynapticMemory::defect_count(CellCondition c) const {
  std::size_t n = 0;
  for (const FaultMap& m : maps_) n += m.count(c);
  return n;
}

}  // namespace hynapse::core
