// Synaptic-sensitivity analysis: which layers, and which bit positions, can
// tolerate storage errors? Quantifies the intuitions behind Configuration 2
// (Section III-B / VI-C): input & first-hidden-layer synapses and the
// output-layer synapses are sensitive, central hidden layers are resilient,
// and the input layer tolerates more than the first hidden layer.
//
// Also provides the greedy per-bank MSB allocation optimizer -- the natural
// automation of the paper's manual sensitivity-driven assignment.
#pragma once

#include <cstdint>
#include <vector>

#include "core/memory_config.hpp"
#include "core/quantized_network.hpp"
#include "data/dataset.hpp"
#include "mc/failure_table.hpp"

namespace hynapse::core {

struct SensitivityOptions {
  double bit_error_rate = 0.05;  ///< flip probability injected per weight
  std::size_t trials = 3;        ///< error-pattern repetitions averaged
  std::uint64_t seed = 7;
};

/// drop[layer][bit] = baseline accuracy - accuracy with bit `bit` of every
/// weight in `layer` flipped with the configured probability (bit 0 = LSB).
[[nodiscard]] std::vector<std::vector<double>> bit_sensitivity(
    const QuantizedNetwork& qnet, const data::Dataset& eval,
    const SensitivityOptions& options = {});

/// layer_drop[layer] = accuracy drop when the MSB of that layer alone is
/// flipped at the configured rate: the per-layer significance profile the
/// paper's intuitions 1-2 describe.
[[nodiscard]] std::vector<double> layer_sensitivity(
    const QuantizedNetwork& qnet, const data::Dataset& eval,
    const SensitivityOptions& options = {});

struct AllocationOptions {
  double target_accuracy_drop = 0.01;  ///< vs fault-free quantized accuracy
  std::size_t chips_per_eval = 2;
  std::uint64_t seed = 11;
  int max_msbs = 8;
};

struct AllocationResult {
  std::vector<int> msbs_per_bank;
  double accuracy = 0.0;
  double area_overhead = 0.0;
  std::size_t evaluations = 0;
};

/// Greedy allocation: repeatedly protect the next MSB of whichever bank
/// yields the largest accuracy gain per unit of added area, until the mean
/// accuracy is within `target_accuracy_drop` of the fault-free quantized
/// baseline (or every bit is protected).
[[nodiscard]] AllocationResult optimize_allocation(
    const QuantizedNetwork& qnet, const data::Dataset& val,
    const mc::FailureTable& failures, double vdd,
    const circuit::PaperConstants& constants,
    const AllocationOptions& options = {});

}  // namespace hynapse::core
