#include "core/binning.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/stats.hpp"

namespace hynapse::core {

double ChipDistribution::percentile(double p) const {
  if (accuracies.empty())
    throw std::logic_error{"ChipDistribution: empty"};
  return util::percentile(accuracies, p);
}

double ChipDistribution::accuracy_yield(double threshold) const {
  if (accuracies.empty())
    throw std::logic_error{"ChipDistribution: empty"};
  const auto first_ok = std::lower_bound(accuracies.begin(),
                                         accuracies.end(), threshold);
  return static_cast<double>(accuracies.end() - first_ok) /
         static_cast<double>(accuracies.size());
}

ChipDistribution chip_accuracy_distribution(
    const QuantizedNetwork& qnet, const MemoryConfig& config,
    const mc::FailureTable& failures, double vdd, const data::Dataset& test,
    std::size_t chips, std::uint64_t seed, ReadFaultPolicy policy) {
  EvalOptions opt;
  opt.chips = chips;
  opt.seed = seed;
  opt.policy = policy;
  const AccuracyResult result =
      evaluate_accuracy(qnet, config, failures, vdd, test, opt);

  ChipDistribution dist;
  dist.accuracies = result.per_chip;
  std::sort(dist.accuracies.begin(), dist.accuracies.end());
  dist.mean = result.mean;
  dist.stddev = result.stddev;
  dist.min = dist.accuracies.front();
  dist.max = dist.accuracies.back();
  return dist;
}

}  // namespace hynapse::core
