#include "core/experiments.hpp"

#include <algorithm>
#include <span>

#include "core/delta_eval.hpp"
#include "core/synaptic_memory.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace hynapse::core {

std::size_t fused_group_size(std::size_t fuse_chips, std::size_t total_chips,
                             std::size_t threads) {
  if (total_chips == 0) return 1;
  if (fuse_chips != 0) return std::min(fuse_chips, total_chips);
  const std::size_t workers =
      threads != 0 ? threads : util::default_thread_count();
  // Auto: aim for at least two groups per worker so the tail of a point
  // doesn't idle the pool, then cap at 8 chips per fused pass.
  const std::size_t per_worker =
      total_chips / std::max<std::size_t>(2 * workers, 1);
  return std::clamp<std::size_t>(per_worker, 1, 8);
}

double evaluate_chip(const QuantizedNetwork& qnet, const MemoryConfig& config,
                     const FaultModel& model, const data::Dataset& test,
                     std::uint64_t eval_seed, std::size_t chip) {
  const std::uint64_t chip_seed =
      eval_seed ^ (0x9e3779b97f4a7c15ull * (chip + 1));
  SynapticMemory memory{config, model, chip_seed};
  memory.store_network(qnet);
  util::Rng read_rng{chip_seed ^ 0x5555aaaa5555aaaaull};
  const QuantizedNetwork faulted = memory.load_network(qnet, read_rng);
  const ann::Mlp net = faulted.dequantize();
  return net.accuracy(test.images, test.labels);
}

AccuracyResult evaluate_accuracy(const QuantizedNetwork& qnet,
                                 const MemoryConfig& config,
                                 const mc::FailureTable& failures, double vdd,
                                 const data::Dataset& test,
                                 const EvalOptions& options,
                                 EvalContextPool* contexts) {
  const FaultModel model{failures, vdd, options.policy};
  AccuracyResult result;
  result.per_chip.resize(options.chips);
  if (options.path == EvalPath::legacy) {
    util::parallel_for(
        options.chips,
        [&](std::size_t chip) {
          result.per_chip[chip] =
              evaluate_chip(qnet, config, model, test, options.seed, chip);
        },
        options.threads);
  } else {
    EvalContextPool local_pool;
    EvalContextPool& pool = contexts != nullptr ? *contexts : local_pool;
    const std::uint64_t qnet_fp = network_fingerprint(qnet);
    const std::size_t group =
        fused_group_size(options.fuse_chips, options.chips, options.threads);
    const std::size_t num_groups = (options.chips + group - 1) / group;
    util::parallel_for(
        num_groups,
        [&](std::size_t g) {
          const std::size_t begin = g * group;
          const std::size_t count =
              std::min(group, options.chips - begin);
          EvalContextPool::Lease lease{pool};
          lease.context().evaluate_chips(
              qnet, qnet_fp, config, model, test, options.seed, begin, count,
              std::span<double>{result.per_chip}.subspan(begin, count),
              options.backend);
        },
        options.threads);
  }
  result.mean = util::mean(result.per_chip);
  result.stddev = util::stddev(result.per_chip);
  return result;
}

double quantized_accuracy(const QuantizedNetwork& qnet,
                          const data::Dataset& test) {
  return qnet.dequantize().accuracy(test.images, test.labels);
}

std::vector<std::size_t> table1_layer_sizes() {
  // Unique solution to Table I: 2594 neurons, 1,406,810 synapses counting
  // biases (1,405,000 weights + 1,810 biases).
  return {784, 1000, 500, 200, 100, 10};
}

}  // namespace hynapse::core
