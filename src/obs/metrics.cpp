#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace hynapse::obs {

std::size_t histogram_bucket(std::uint64_t v) {
  return v == 0 ? 0 : static_cast<std::size_t>(std::bit_width(v));
}

std::uint64_t histogram_bucket_lo(std::size_t i) {
  return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
}

std::uint64_t histogram_bucket_hi(std::size_t i) {
  // Bucket 64's exclusive bound (2^64) saturates to the max u64; the
  // interpolation only uses it as a span endpoint.
  if (i == 0) return 1;
  if (i >= 64) return ~std::uint64_t{0};
  return std::uint64_t{1} << i;
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the order statistic we are estimating (0-based, nearest-rank
  // with the standard (count-1) scaling so p=1 is the max sample).
  const double rank = p * static_cast<double>(count - 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    const std::uint64_t n = buckets[i];
    if (n == 0) continue;
    if (static_cast<double>(seen + n) - 1.0 < rank) {
      seen += n;
      continue;
    }
    // Rank lands in bucket i: interpolate linearly across its span by
    // the fractional position of the rank inside the bucket. A
    // fractional rank that straddles the previous (skipped) bucket
    // clamps to this bucket's lower bound.
    const double lo = static_cast<double>(histogram_bucket_lo(i));
    const double hi = static_cast<double>(histogram_bucket_hi(i));
    const double within = std::clamp(
        (rank - static_cast<double>(seen)) / static_cast<double>(n), 0.0, 1.0);
    return lo + within * (hi - lo);
  }
  return static_cast<double>(histogram_bucket_hi(kHistogramBuckets - 1));
}

HistogramSnapshot Histogram::snapshot() const {
  // Relaxed per-bucket loads: concurrent recorders may land between the
  // loads, so the snapshot is a consistent-enough point-in-time view
  // (each increment is observed at most once), which is all a stats
  // scrape needs.
  HistogramSnapshot snap;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::counter: return "counter";
    case MetricKind::gauge: return "gauge";
    case MetricKind::histogram: return "histogram";
  }
  return "counter";
}

bool parse_metric_kind(const std::string& s, MetricKind& out) {
  if (s == "counter") out = MetricKind::counter;
  else if (s == "gauge") out = MetricKind::gauge;
  else if (s == "histogram") out = MetricKind::histogram;
  else return false;
  return true;
}

struct Registry::Entry {
  std::string name;
  MetricKind kind;
  Counter counter;
  Gauge gauge;
  Histogram histogram;
};

Registry::Registry() = default;
Registry::~Registry() = default;

Registry::Entry& Registry::resolve(const std::string& name, MetricKind kind) {
  std::scoped_lock lock{mutex_};
  for (auto& e : entries_) {
    if (e->name == name) return *e;  // first registration wins on kind
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->kind = kind;
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& Registry::counter(const std::string& name) {
  return resolve(name, MetricKind::counter).counter;
}

Gauge& Registry::gauge(const std::string& name) {
  return resolve(name, MetricKind::gauge).gauge;
}

Histogram& Registry::histogram(const std::string& name) {
  return resolve(name, MetricKind::histogram).histogram;
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  std::scoped_lock lock{mutex_};
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    MetricSnapshot m;
    m.name = e->name;
    m.kind = e->kind;
    switch (e->kind) {
      case MetricKind::counter:
        m.value = static_cast<double>(e->counter.value());
        m.count = e->counter.value();
        break;
      case MetricKind::gauge:
        m.value = static_cast<double>(e->gauge.value());
        break;
      case MetricKind::histogram: {
        const HistogramSnapshot snap = e->histogram.snapshot();
        m.count = snap.count;
        m.sum = snap.sum;
        m.value = snap.mean();
        m.p50 = snap.percentile(0.50);
        m.p95 = snap.percentile(0.95);
        m.p99 = snap.percentile(0.99);
        for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
          if (snap.buckets[i] != 0) {
            m.buckets.emplace_back(static_cast<std::uint32_t>(i), snap.buckets[i]);
          }
        }
        break;
      }
    }
    out.push_back(std::move(m));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) { return a.name < b.name; });
  return out;
}

Registry& Registry::global() {
  // Leaked: detached threads (thread-pool workers, TCP readers) may
  // record after main() returns; a destructed registry would be UB.
  static Registry* g = new Registry;
  return *g;
}

namespace {

std::string prometheus_name(const std::string& name) {
  std::string out = "hynapse_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void append_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

std::string prometheus_text(const std::vector<MetricSnapshot>& metrics) {
  std::string out;
  for (const auto& m : metrics) {
    const std::string name = prometheus_name(m.name);
    switch (m.kind) {
      case MetricKind::counter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(m.count) + "\n";
        break;
      case MetricKind::gauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " ";
        append_number(out, m.value);
        out += "\n";
        break;
      case MetricKind::histogram: {
        out += "# TYPE " + name + " histogram\n";
        std::uint64_t cumulative = 0;
        for (const auto& [idx, n] : m.buckets) {
          cumulative += n;
          out += name + "_bucket{le=\"" +
                 std::to_string(histogram_bucket_hi(idx)) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " + std::to_string(m.count) + "\n";
        out += name + "_sum " + std::to_string(m.sum) + "\n";
        out += name + "_count " + std::to_string(m.count) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace hynapse::obs
