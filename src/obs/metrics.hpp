// hynapse::obs -- process-wide metrics registry.
//
// Three instrument kinds, all lock-free on the hot path:
//   * Counter   -- monotonically increasing u64 (relaxed fetch_add).
//   * Gauge     -- signed level that can move both ways (queue depth,
//                  active connections, worker count).
//   * Histogram -- log2-bucketed latency distribution: recording a value
//                  is one relaxed fetch_add on the owning bucket plus one
//                  on the running sum. Snapshots interpolate p50/p95/p99
//                  inside the bucket that holds the rank, so the estimate
//                  always lands in the same power-of-two bucket as the
//                  true order statistic.
//
// Instruments are owned by a Registry and live for the life of the
// process; Registry::global() is intentionally leaked so metrics stay
// valid during static destruction (thread-pool workers may still be
// draining). Callers resolve an instrument once (mutex-guarded name
// lookup) and cache the reference; recording never takes a lock.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hynapse::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Bucket i covers [2^(i-1), 2^i) for i >= 1; bucket 0 holds value 0.
// 64 value bits -> 65 buckets covers every uint64_t exactly.
inline constexpr std::size_t kHistogramBuckets = 65;

// Index of the bucket that holds `v`: 0 for 0, else bit_width(v).
std::size_t histogram_bucket(std::uint64_t v);
// Inclusive lower bound of bucket `i` (0, then 2^(i-1)).
std::uint64_t histogram_bucket_lo(std::size_t i);
// Exclusive upper bound of bucket `i` (1, then 2^i).
std::uint64_t histogram_bucket_hi(std::size_t i);

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  // Interpolated percentile, p in [0, 1]. Finds the bucket containing
  // order statistic rank p*(count-1) and interpolates linearly across
  // it. Returns 0 when empty.
  double percentile(double p) const;
  double mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count); }
};

class Histogram {
 public:
  void record(std::uint64_t v) {
    buckets_[histogram_bucket(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }
  HistogramSnapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

enum class MetricKind { counter, gauge, histogram };

// Point-in-time copy of one instrument, suitable for serialization.
// Histogram buckets are sparse (index, count) pairs so the wire format
// stays small and round-trips exactly.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::counter;
  double value = 0.0;  // counter/gauge value; histogram mean.
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;
};

const char* metric_kind_name(MetricKind kind);
bool parse_metric_kind(const std::string& s, MetricKind& out);

class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Resolve-or-create by name. References are stable for the life of
  // the Registry; resolving takes a mutex, so cache the result at
  // call sites that record on a hot path.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Sorted-by-name copy of every instrument.
  std::vector<MetricSnapshot> snapshot() const;

  // Process-wide registry. Leaked on purpose: instruments must outlive
  // static destructors (detached service threads may still record).
  static Registry& global();

 private:
  struct Entry;
  Entry& resolve(const std::string& name, MetricKind kind);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

// Convenience wrappers over Registry::global() for cold call sites.
inline void count(const std::string& name, std::uint64_t n = 1) {
  Registry::global().counter(name).add(n);
}
inline void record(const std::string& name, std::uint64_t v) {
  Registry::global().histogram(name).record(v);
}

// Prometheus text exposition (version 0.0.4) of a registry snapshot.
// Names are prefixed "hynapse_" with dots mapped to underscores;
// histograms emit cumulative le="..." buckets plus _sum and _count.
std::string prometheus_text(const std::vector<MetricSnapshot>& metrics);

}  // namespace hynapse::obs
