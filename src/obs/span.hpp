// Lightweight phase timing over obs::Histogram.
//
//   * Timer -- RAII: records elapsed microseconds into one histogram
//     when it goes out of scope (or at stop()).
//   * Span  -- a named multi-phase breakdown: each mark(phase) closes
//     the current segment into histogram "<name>.<phase>_us" and opens
//     the next. Used to stamp serve requests with where their
//     wall-clock went (queue wait, table build, chip eval,
//     serialization).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace hynapse::obs {

using Clock = std::chrono::steady_clock;

inline std::uint64_t elapsed_us(Clock::time_point from, Clock::time_point to) {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(to - from).count();
  return us < 0 ? 0 : static_cast<std::uint64_t>(us);
}

class Timer {
 public:
  explicit Timer(Histogram& hist) : hist_(&hist), start_(Clock::now()) {}
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  ~Timer() { stop(); }

  // Record now instead of at scope exit; idempotent.
  std::uint64_t stop() {
    if (hist_ == nullptr) return 0;
    const std::uint64_t us = elapsed_us(start_, Clock::now());
    hist_->record(us);
    hist_ = nullptr;
    return us;
  }

 private:
  Histogram* hist_;
  Clock::time_point start_;
};

class Span {
 public:
  // Phases are recorded into registry histograms "<name>.<phase>_us".
  explicit Span(std::string name, Registry& registry = Registry::global())
      : name_(std::move(name)), registry_(&registry), mark_(Clock::now()) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Close the segment started at the previous mark (or construction)
  // into "<name>.<phase>_us" and start timing the next segment.
  // Returns the recorded microseconds.
  std::uint64_t mark(const std::string& phase) {
    const Clock::time_point now = Clock::now();
    const std::uint64_t us = elapsed_us(mark_, now);
    registry_->histogram(name_ + "." + phase + "_us").record(us);
    mark_ = now;
    return us;
  }

 private:
  std::string name_;
  Registry* registry_;
  Clock::time_point mark_;
};

}  // namespace hynapse::obs
