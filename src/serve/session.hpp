// serve::Session -- the transport-agnostic seam between a byte-stream
// transport and the EvalService.
//
// A Session owns one client conversation: the transport feeds it request
// lines (handle_line), the session parses, submits and -- via the service's
// completion callbacks -- streams response lines back through a sink the
// transport provided. Responses are emitted in COMPLETION order, not submit
// order: a cheap request overtakes an expensive one, which is the whole
// point of serving asynchronously. Clients correlate by "id" (and "tag").
//
// Every transport front-ends the service the same way:
//   * the TCP server (serve/net.hpp) runs one Session per connection and
//     its sink writes to the socket;
//   * the CLI REPL (hynapse_served) runs one Session over stdin/stdout;
//   * tests drive a Session directly with a vector-collecting sink.
//
// Lifecycle: close() detaches the sink (no further emissions), cancels
// whatever the session still has queued, and counts what was in flight --
// connection-scoped cancellation for transports whose peer went away.
// drain() blocks until every submitted request has completed, so a
// transport can shut down gracefully WITHOUT cancelling: stop reading,
// drain, then close the socket.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "serve/eval_service.hpp"
#include "serve/protocol.hpp"

namespace hynapse::serve {

struct SessionOptions {
  bool per_chip = false;          ///< emit per-chip accuracy vectors
  /// Full queue: true = emit a queue_full error response (socket clients
  /// must not block the reader thread); false = block until space
  /// (backpressure, for the local REPL).
  bool reject_when_full = true;
  /// When false, evaluate/sweep requests are refused with bad_request --
  /// the fleet-worker posture: a worker serves table shards, not accuracy
  /// evaluations (its served network is a placeholder).
  bool allow_evaluate = true;
};

class Session {
 public:
  /// Receives complete response lines (no trailing newline). Called from
  /// dispatcher threads and from handle_line's thread, one line at a time
  /// (internally serialized); must not call back into this Session.
  using Sink = std::function<void(std::string_view line)>;

  Session(EvalService& service, Sink sink, SessionOptions options = {});
  /// Destruction implies close(): never emits after the Session is gone.
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Parses one JSONL request line and submits it. Parse failures and
  /// submission refusals (queue full, shutting down, evaluate disabled)
  /// emit a failed response with a structured error code instead of
  /// touching the service. Returns the request id, or 0 when the line was
  /// answered synchronously with an error.
  std::uint64_t handle_line(std::string_view line);

  /// Blocks until every request this session submitted has completed (its
  /// response line already handed to the sink).
  void drain();

  /// Detaches the sink and cancels this session's queued requests.
  /// In-flight (running) requests finish server-side but their responses
  /// are dropped. Idempotent.
  void close();

  struct Stats {
    std::uint64_t lines = 0;            ///< request lines received
    std::uint64_t responses = 0;        ///< response lines emitted
    std::uint64_t parse_errors = 0;     ///< lines refused before submission
    std::uint64_t rejected = 0;         ///< queue_full / shutting_down / policy
    std::uint64_t cancelled_on_close = 0;  ///< queued requests close() killed
  };
  [[nodiscard]] Stats stats() const;

 private:
  // Shared with the completion callbacks: a callback may outlive the
  // Session object itself (a running request completes after close()), so
  // all mutable state lives behind a shared_ptr.
  struct State;
  void emit_error(const std::string& tag, ErrorCode code,
                  std::string message, double retry_after_ms = 0.0);

  EvalService& service_;
  const SessionOptions options_;
  std::shared_ptr<State> state_;
};

}  // namespace hynapse::serve
