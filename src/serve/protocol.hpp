// Wire protocol of the evaluation service: typed request/response structs
// and their JSONL codec (one JSON document per line).
//
// Requests name memory configurations symbolically (ConfigSpec) rather than
// carrying bank tables, so a request is meaningful independent of the
// served network and the same trace can replay against any workload; the
// service materializes specs against its network's bank layout at dispatch.
//
// Request lines (unknown keys are rejected; defaults in brackets):
//   {"op":"evaluate","config":"hybrid3","vdd":0.65,
//    "chips":N,"eval_seed":S,"samples":M,"table_seed":T,"priority":P}
//   {"op":"sweep","configs":["all6t","hybrid2"],"vdds":[0.6,0.7], ...}
//   {"op":"table_info","samples":M,"table_seed":T}
//   {"op":"table_shard","shard":K,"shard_count":N,"samples":M,
//    "table_seed":T,"priority":P,"inline_rows":true}
//   {"op":"stats"}
// Every request additionally accepts "v" (protocol version; omitted means
// kProtocolVersion), "tag" (an opaque string echoed verbatim in the
// response -- correlation for pipelined clients), "client" (admission
// identity: requests sharing a client id share one admission quota,
// docs/robustness.md) and "deadline_ms" (time budget from submission;
// expired requests are shed before dispatch). "evaluate" also accepts
// the plural keys; "sweep" evaluates the full configs x vdds grid.
// chips/eval_seed/samples/table_seed default to the service's configuration
// [0 = service default]; priority defaults to 0 (higher dispatches first).
// "table_shard" builds (or replays) one shard of the table's voltage grid
// and persists its CSV -- the cross-process scatter primitive
// (docs/sharding.md, docs/distributed.md); shard_count is clamped to the
// grid size by the service. With "inline_rows":true the response carries
// the shard's rows inline ("rows_data", bit-exact doubles), so a remote
// coordinator can merge without a shared filesystem.
// Every table-building op additionally accepts "adaptive": an object
// carrying the full CI-targeted sampling policy (docs/adaptive_mc.md):
//   {"rel_target":0.15,"abs_target":0,"z":1.96,"interval":"wilson",
//    "batch_samples":2000,"batch_growth":2,"min_samples":2000,
//    "max_samples":0,"tail_escape_samples":4000,"max_is_samples":0}
// Presence enables adaptive sampling for that request's table; the whole
// policy travels because it is folded into the table fingerprint.
// "stats" answers with the service's health summary ("health": uptime,
// queue depth/capacity, configuration, lifetime totals) plus a full
// obs::Registry snapshot ("registry") -- the scrapeable observability
// surface (docs/observability.md). It takes only "v"/"tag"/"priority".
//
// Responses always carry "v" (protocol version) and, on failure, a
// machine-readable "code" alongside the human-readable "error" string.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiments.hpp"
#include "core/memory_config.hpp"
#include "engine/table_cache.hpp"
#include "mc/failure_table.hpp"
#include "obs/metrics.hpp"

namespace hynapse::serve {

/// Version of the JSONL wire protocol. Bumped on incompatible changes;
/// requests carrying a different "v" are rejected with
/// ErrorCode::unsupported_version.
inline constexpr int kProtocolVersion = 1;

/// Machine-readable failure categories, carried as "code" in failed
/// responses so clients can branch without parsing error prose.
enum class ErrorCode {
  none,                 ///< not an error (never emitted on the wire)
  bad_request,          ///< malformed line, unknown field, invalid value
  queue_full,           ///< service queue at capacity (try_submit rejection)
  quota_exceeded,       ///< client's admission quota exhausted (queue has room)
  deadline_exceeded,    ///< request deadline expired before dispatch
  shard_out_of_range,   ///< shard index >= clamped shard count
  shutting_down,        ///< service is draining; no new work accepted
  not_found,            ///< unknown request id (poll/wait on a bogus id)
  unsupported_version,  ///< request "v" != kProtocolVersion
  internal,             ///< table build / evaluation failure server-side
};

[[nodiscard]] const char* to_string(ErrorCode code) noexcept;
/// Inverse of to_string; nullopt for unknown names.
[[nodiscard]] std::optional<ErrorCode> parse_error_code(
    std::string_view text) noexcept;

/// A structured parse failure: the category plus a human-readable reason.
struct RequestError {
  ErrorCode code = ErrorCode::bad_request;
  std::string message;
};

/// Symbolic memory-configuration name: "all6t", "hybridN" (uniform N MSBs
/// in 8T) or "perlayer:a,b,..." (per-bank MSB counts).
struct ConfigSpec {
  enum class Kind { all_6t, uniform, per_layer };
  Kind kind = Kind::all_6t;
  int n_msb = 0;           ///< uniform
  std::vector<int> msbs;   ///< per_layer

  [[nodiscard]] static std::optional<ConfigSpec> parse(std::string_view text);
  [[nodiscard]] std::string str() const;

  /// Binds the spec to a concrete bank layout. Throws std::invalid_argument
  /// when a per-layer spec's bank count does not match.
  [[nodiscard]] core::MemoryConfig materialize(
      std::span<const std::size_t> bank_words) const;
};

enum class RequestKind { evaluate, sweep, table_info, table_shard, stats };

/// Upper bound on per-request chip instances, enforced both by the codec
/// and at dispatch: a hostile `chips` must fail that one request, never
/// allocation-bomb a fused batch.
inline constexpr std::size_t kMaxChipsPerRequest = 4096;

struct Request {
  RequestKind kind = RequestKind::evaluate;
  int priority = 0;                  ///< higher dispatches first; FIFO within
  std::vector<ConfigSpec> configs;   ///< >= 1 for evaluate/sweep
  std::vector<double> vdds;          ///< >= 1 for evaluate/sweep
  std::size_t chips = 0;             ///< 0 = service default
  std::uint64_t eval_seed = 0;       ///< 0 = service default
  /// Failure-table provenance overrides (0 = service default). Requests
  /// with equal provenance share one table -- the coalescing key (for
  /// table_shard, the shard-extended fingerprint: only identical shards of
  /// the same provenance coalesce).
  std::size_t mc_samples = 0;
  std::uint64_t table_seed = 0;
  // table_shard only: build shard `shard` of `shard_count`.
  std::size_t shard = 0;
  std::size_t shard_count = 0;
  /// table_shard only: return the shard's rows inline in the response
  /// ("rows_data") instead of relying on a shared cache directory.
  bool inline_rows = false;
  /// CI-targeted adaptive sampling policy ("adaptive" JSON object; absent =
  /// the service default). The full policy travels on the wire -- not just
  /// an enable bit -- because the policy is folded into the table
  /// fingerprint: a fleet worker must hash exactly the coordinator's policy
  /// or its shards will never match the plan. Rejected for op "stats".
  std::optional<mc::AdaptivePolicy> adaptive;
  /// Opaque client correlation string, echoed in the response. Not part of
  /// the coalescing fingerprint.
  std::string tag;
  /// Admission identity: requests sharing a client id share one admission
  /// quota when admission control is enabled (docs/robustness.md). Empty =
  /// the anonymous client. Not part of the coalescing fingerprint.
  std::string client;
  /// Time budget in milliseconds, measured from submission; 0 = none. A
  /// request still queued past its deadline is shed before dispatch
  /// (failed, ErrorCode::deadline_exceeded) instead of wasting a build.
  double deadline_ms = 0.0;
};

/// `evicted` is a degenerate terminal state: the request finished, but its
/// response aged out of the service's bounded completed-history before
/// being collected, so the outcome is no longer known. `not_found` is the
/// typed answer to polling an id the service never issued.
enum class RequestStatus {
  queued, running, done, failed, cancelled, evicted, not_found
};

[[nodiscard]] const char* to_string(RequestStatus status) noexcept;
[[nodiscard]] const char* to_string(engine::TableSource source) noexcept;

/// Accuracy of one (config, vdd) grid point of a request.
struct PointResult {
  std::string config;  ///< ConfigSpec::str() of the evaluated spec
  double vdd = 0.0;
  core::AccuracyResult accuracy;
};

/// Per-request execution telemetry.
struct RequestStats {
  double queue_ms = 0.0;  ///< submit -> dispatch
  double table_ms = 0.0;  ///< failure-table acquisition wall time
  double run_ms = 0.0;    ///< chip-job fan-out wall time (whole batch)
  double wall_ms = 0.0;   ///< submit -> completion
  engine::TableSource table_source = engine::TableSource::built;
  /// True when this request reused a table someone else produced (cache
  /// memory/disk hit, an in-flight build, or riding a batch).
  bool coalesced = false;
  std::size_t batch_size = 1;    ///< requests fused into the same dispatch
  std::uint64_t dispatch_seq = 0;  ///< service-wide dispatch order (from 1)
};

/// Service-lifetime counters, answered by the `stats` op (and by
/// EvalService::totals(), which aliases this as Totals). Table counters
/// merge the shared cache's stats with the naive-mode private builds.
struct ServiceTotals {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t rejected = 0;        ///< try_submit refusals (queue full)
  std::uint64_t quota_rejected = 0;  ///< admission refusals (client quota)
  std::uint64_t deadline_expired = 0;  ///< requests shed past their deadline
  std::uint64_t batches = 0;         ///< dispatches (>= 1 request each)
  std::uint64_t coalesced_requests = 0;  ///< requests that reused a table
  std::uint64_t table_builds = 0;
  std::uint64_t table_memory_hits = 0;
  std::uint64_t table_disk_hits = 0;
  std::uint64_t shard_builds = 0;    ///< table_shard requests that built
  std::uint64_t shard_replays = 0;   ///< table_shard requests served from CSV
  std::uint64_t max_queue_depth = 0;
};

/// Point-in-time service health, answered by the `stats` op alongside the
/// registry snapshot: queue pressure, static configuration, cache-dir
/// footprint, and the lifetime totals.
struct HealthSummary {
  double uptime_s = 0.0;
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::size_t dispatchers = 0;
  std::size_t threads = 0;         ///< pool participation cap (0 = default)
  std::string backend;             ///< GEMM kernel backend name
  std::string eval_path;           ///< "delta" or "legacy"
  std::size_t fuse_chips = 0;
  std::size_t max_batch = 0;
  bool coalesce = false;
  std::string cache_dir;           ///< "" = in-memory cache
  std::size_t cache_tables = 0;    ///< persisted CSV artifacts in cache_dir
  std::uint64_t cache_bytes = 0;   ///< their total size on disk
  ServiceTotals totals;
};

struct Response {
  std::uint64_t id = 0;
  RequestStatus status = RequestStatus::queued;
  std::string error;                  ///< non-empty iff status == failed
  ErrorCode code = ErrorCode::none;   ///< set iff status is failed/not_found
  std::string tag;                    ///< echo of Request::tag
  /// Structured retry hint on queue_full / quota_exceeded rejections: the
  /// service's estimate of when capacity frees up (0 = no hint). Clients
  /// should treat it as advisory backoff, not a reservation.
  double retry_after_ms = 0.0;
  std::vector<PointResult> results;   ///< evaluate/sweep
  std::uint64_t table_fingerprint = 0;
  // table_info:
  std::string table_csv;   ///< cache CSV path ("" when cache is in-memory)
  std::size_t table_rows = 0;  ///< rows in the persisted CSV (0 = none/invalid)
  bool table_in_memory = false;
  // table_shard (table_csv/table_rows then describe the shard artifact):
  std::size_t shard_index = 0;
  std::size_t shard_count = 0;           ///< 0 for non-shard responses
  std::uint64_t shard_fingerprint = 0;   ///< shard-extended provenance
  /// Achieved sampling metadata of the shard artifact: total samples spent
  /// across its rows and the worst per-row CI half-width (0 when the shard
  /// came from a v2-era CSV without the columns).
  double shard_samples = 0.0;
  double shard_ci_half_width = 0.0;
  /// Inline shard rows (Request::inline_rows); round-trips bit-exactly.
  std::vector<mc::FailureTableRow> shard_rows;
  // stats op:
  std::optional<HealthSummary> health;
  /// Full obs::Registry snapshot (stats op); sparse histogram buckets
  /// round-trip exactly, percentiles travel as %.17g doubles.
  std::vector<obs::MetricSnapshot> metrics;
  RequestStats stats;
};

/// Parses one JSONL request line. On failure returns nullopt and, when
/// `error` is non-null, the error category (bad_request or
/// unsupported_version) plus a human-readable reason with the JSON syntax
/// position when the line was not valid JSON.
[[nodiscard]] std::optional<Request> parse_request(std::string_view line,
                                                   RequestError* error);

/// Convenience overload keeping the pre-versioning signature: only the
/// human-readable reason, no category.
[[nodiscard]] std::optional<Request> parse_request(std::string_view line,
                                                   std::string* error);

/// One-line JSON rendering of a request -- the client half of the codec.
/// parse_request(format_request(r)) reproduces `r` exactly.
[[nodiscard]] std::string format_request(const Request& request);

/// One-line JSON rendering. `per_chip` additionally emits the per-chip
/// accuracy vectors (bitwise-exact doubles).
[[nodiscard]] std::string format_response(const Response& response,
                                          bool per_chip = false);

/// Parses one JSONL response line -- the client half of the codec. Numeric
/// fields round-trip bit-exactly (doubles travel as %.17g). On failure
/// returns nullopt and, when `error` is non-null, a reason.
[[nodiscard]] std::optional<Response> parse_response(std::string_view line,
                                                     std::string* error);

}  // namespace hynapse::serve
