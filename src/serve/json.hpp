// Minimal JSON value type for the serve wire format (JSONL requests and
// responses). Hand-rolled so the service has zero external dependencies:
// a small DOM, a strict recursive-descent parser and a compact printer.
// Object member order is preserved (vector of pairs, not a map) so dumped
// responses keep a stable, diffable field order.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hynapse::serve {

/// Where and why a parse failed. `offset` is the byte offset of the first
/// error in the input; `line`/`column` are 1-based and derived from it
/// (JSONL payloads are single lines, so `line` is almost always 1, but
/// multi-line documents report real positions).
struct ParseError {
  std::size_t offset = 0;
  std::size_t line = 1;
  std::size_t column = 1;
  std::string message;

  /// "<message> at line L, column C (offset O)" -- for logs and wire errors.
  [[nodiscard]] std::string str() const;
};

class Json {
 public:
  enum class Type { null, boolean, number, string, array, object };
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;  // null
  Json(bool b) : type_{Type::boolean}, bool_{b} {}                   // NOLINT
  Json(double v) : type_{Type::number}, number_{v} {}                // NOLINT
  Json(int v) : Json{static_cast<double>(v)} {}                      // NOLINT
  Json(std::string s) : type_{Type::string}, string_{std::move(s)} {}  // NOLINT
  Json(const char* s) : Json{std::string{s}} {}                      // NOLINT

  [[nodiscard]] static Json array() {
    Json j;
    j.type_ = Type::array;
    return j;
  }
  [[nodiscard]] static Json object() {
    Json j;
    j.type_ = Type::object;
    return j;
  }

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::null; }
  [[nodiscard]] bool is_bool() const noexcept {
    return type_ == Type::boolean;
  }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::string;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::array; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::object;
  }

  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  [[nodiscard]] double as_number() const noexcept { return number_; }
  [[nodiscard]] const std::string& as_string() const noexcept {
    return string_;
  }
  [[nodiscard]] const Array& items() const noexcept { return array_; }
  [[nodiscard]] const Object& members() const noexcept { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* get(std::string_view key) const noexcept;

  /// Appends to an array value (converts a null value into an array).
  Json& push_back(Json v);
  /// Sets an object member, replacing an existing key (converts null into
  /// an object).
  Json& set(std::string key, Json v);

  /// Strict parse of a complete JSON document (trailing non-space rejected).
  [[nodiscard]] static std::optional<Json> parse(std::string_view text);

  /// As above, but on failure fills `error` (when non-null) with the byte
  /// offset, line/column and reason of the first syntax error.
  [[nodiscard]] static std::optional<Json> parse(std::string_view text,
                                                 ParseError* error);

  /// Compact single-line rendering; numbers round-trip doubles exactly.
  [[nodiscard]] std::string dump() const;

 private:
  void dump_to(std::string& out) const;

  Type type_ = Type::null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace hynapse::serve
