// serve::net -- dependency-free POSIX TCP transport for the JSONL protocol.
//
// TcpServer fronts one EvalService: it accepts concurrent connections and
// runs one serve::Session per connection, so every socket gets the protocol
// semantics documented in session.hpp -- responses stream back in
// COMPLETION order (a cheap request overtakes an expensive one), failures
// carry structured error codes, and the connection is the cancellation
// scope: when the peer drops the socket (EOF or error) the session closes,
// cancelling that connection's queued requests. stop() is the graceful
// path: stop accepting, let every connection's in-flight work finish (their
// responses still stream out), then close.
//
// Client contract: after sending requests, keep the socket open (at least
// its read half) until every response line arrived -- closing early is the
// cancellation signal. TcpClient is the matching minimal client: blocking
// line-oriented send/receive with deadlines, used by the fleet coordinator
// (engine/fleet.hpp), the bench socket arm and tests.
//
// Only numeric IPv4 host addresses are supported (no resolver): the
// intended deployments are loopback fleets and lab-LAN workers.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "serve/session.hpp"

namespace hynapse::serve {

struct TcpServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; query the bound port()
  int backlog = 16;
  /// A request line longer than this poisons the connection (one error
  /// response, then close): an unframed client or garbage peer must not
  /// balloon server memory.
  std::size_t max_line_bytes = 1 << 20;
  SessionOptions session;  ///< per-connection protocol posture
};

class TcpServer {
 public:
  /// Binds, listens and starts accepting. Throws std::runtime_error when
  /// the address cannot be bound.
  TcpServer(EvalService& service, TcpServerOptions options = {});
  /// Implies stop().
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The port actually bound (resolves an ephemeral request).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Graceful shutdown: stop accepting, half-close every connection's read
  /// side (no new requests), wait for each session to drain -- responses
  /// keep streaming while it does -- then close the sockets and join.
  /// Idempotent.
  void stop();

  struct Stats {
    std::uint64_t connections = 0;      ///< accepted over the lifetime
    std::uint64_t active = 0;           ///< currently connected
    std::uint64_t lines = 0;            ///< request lines received
    std::uint64_t responses = 0;        ///< response lines sent
    std::uint64_t parse_errors = 0;
    std::uint64_t cancelled_on_disconnect = 0;  ///< via dropped sockets
    std::uint64_t oversize_lines = 0;   ///< connections poisoned by length
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Connection;

  void accept_loop();
  void reader_loop(const std::shared_ptr<Connection>& conn);
  void reap_locked();  ///< joins and absorbs finished connections
  /// Folds a connection's final Session::Stats into absorbed_ exactly once
  /// (requires mutex_). Called by the reader thread on its way out -- after
  /// it closed the session, so the stats cannot change any more -- which
  /// closes the teardown window where stats() undercounted a dying
  /// connection; reap_locked calls it again only for connections the
  /// reader did not absorb (graceful-drain exits, where the session stays
  /// live until stop() closes it).
  void absorb_stats_locked(Connection& conn);

  EvalService& service_;
  const TcpServerOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
  Stats absorbed_;  ///< stats of connections already reaped
  bool stopping_ = false;
  bool stopped_ = false;

  std::thread acceptor_;  // last: started after all state
};

/// Minimal blocking JSONL client over TCP. Move-only; the socket closes
/// with the object. All operations take deadlines so a dead server cannot
/// hang a coordinator.
class TcpClient {
 public:
  TcpClient() = default;
  ~TcpClient();
  TcpClient(TcpClient&& other) noexcept;
  TcpClient& operator=(TcpClient&& other) noexcept;
  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  /// Connects to a numeric IPv4 address. nullopt on refusal or timeout.
  [[nodiscard]] static std::optional<TcpClient> connect(
      const std::string& host, std::uint16_t port, double timeout_s = 5.0);

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Sends `line` plus the terminating newline. False on a broken socket
  /// or when the deadline expires before the full frame is written (a
  /// peer that stopped reading); EINTR and partial sends are retried
  /// within the deadline.
  bool send_line(std::string_view line, double timeout_s = 30.0);

  /// Next complete line (newline stripped). nullopt on EOF, error or
  /// deadline; the connection is unusable afterwards except for buffered
  /// complete lines.
  std::optional<std::string> read_line(double timeout_s = 30.0);

  void close();

 private:
  explicit TcpClient(int fd) : fd_{fd} {}

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace hynapse::serve
