// serve::EvalService -- asynchronous evaluate-accuracy-as-a-service over the
// PR-2 experiment engine.
//
// Clients submit typed requests (evaluate one (config, vdd) point, sweep a
// config x vdd grid, query table provenance, build one failure-table shard)
// into a bounded priority queue and get back request ids to poll/wait/
// cancel. Dispatcher threads pull requests and execute them on the shared
// util::ThreadPool via engine::ExperimentRunner.
//
// table_shard requests are the serving face of the shard scatter/merge
// stack (docs/sharding.md): each builds (or replays) one per-voltage-sub-
// grid shard through the engine::ShardCoordinator and persists its CSV, so
// a fleet of clients can scatter a table build across services/processes
// and merge the artifacts anywhere. Their coalescing key is the
// shard-extended fingerprint: identical shards fuse into one dispatch and
// coalesce through the coordinator's per-shard single-flight.
//
// The core win is request coalescing, in two layers:
//  * TABLE single-flight: requests are keyed by their failure-table
//    provenance fingerprint (engine::table_fingerprint). Concurrent
//    requests with equal fingerprints share one in-flight Monte-Carlo build
//    through engine::FailureTableCache + util::SingleFlight instead of each
//    paying for its own.
//  * BATCH fusion: when a dispatcher picks a request, it also drafts every
//    queued request with the same fingerprint (up to max_batch) and fuses
//    the whole group into ONE ExperimentRunner::run (EvalJob) submission,
//    amortizing pool wake-ups and quantized-network copies across many
//    small requests.
// `coalesce = false` disables both layers -- every request acquires a
// private table build and dispatches alone, which is the naive baseline
// bench_serve_throughput compares against.
//
// Determinism contract: results are bit-identical to calling
// ExperimentRunner::evaluate directly with the same request parameters,
// for any dispatcher count, thread count, queue order or batch shape (a
// chip job depends only on (network, config, model, test, seed, chip)).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "circuit/reference.hpp"
#include "core/experiments.hpp"
#include "core/quantized_network.hpp"
#include "data/dataset.hpp"
#include "engine/experiment_runner.hpp"
#include "engine/shard_coordinator.hpp"
#include "engine/shard_plan.hpp"
#include "engine/table_cache.hpp"
#include "mc/criteria.hpp"
#include "mc/montecarlo.hpp"
#include "mc/variation.hpp"
#include "obs/metrics.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"
#include "sram/array.hpp"

namespace hynapse::serve {

/// Per-client admission control over the bounded queue
/// (docs/robustness.md). Off by default: with `enabled = false` the queue
/// behaves exactly as before (capacity is the only limit, FIFO within
/// priority).
struct AdmissionOptions {
  bool enabled = false;
  /// Fraction of queue_capacity one unit of client weight may occupy:
  /// quota(c) = max(1, floor(queue_capacity * client_share * weight(c))).
  /// The 0.5 default means a greedy default-weight client can fill at most
  /// half the queue, so a peer can always get in.
  double client_share = 0.5;
  /// Weight for clients not listed in `weights` (including the anonymous
  /// "" client).
  double default_weight = 1.0;
  /// Per-client weight overrides (> 0): a weight-2 client gets twice the
  /// queue quota and twice the dispatch share of a weight-1 client.
  std::unordered_map<std::string, double> weights;
};

struct ServiceOptions {
  std::size_t queue_capacity = 256;  ///< bounded: submit blocks, try_submit rejects
  std::size_t dispatchers = 2;       ///< service threads pulling request batches
  /// Completed/failed/cancelled responses retained for poll()/wait(); when
  /// exceeded, the oldest terminal response is evicted (poll then returns
  /// nullopt for its id). Bounds memory on long-lived services.
  std::size_t completed_history = 4096;
  std::size_t threads = 0;           ///< pool participation cap (0 = default)
  bool coalesce = true;              ///< table single-flight + batch fusion
  /// Chip-evaluation path for every request. The default delta path reuses
  /// the runner's persistent per-worker baselines/workspaces across
  /// requests; legacy is the full-rebuild reference (bit-identical, for
  /// A/B runs).
  core::EvalPath eval_path = core::EvalPath::delta;
  /// GEMM kernel backend for every request's forward passes (bit-identical
  /// across backends; see ann/backends/backend.hpp). Follows the
  /// process-wide --backend selection by default.
  ann::backends::Backend backend = ann::backends::default_backend();
  /// Fused-evaluation group size per request point (EvalOptions::fuse_chips:
  /// 0 = auto, 1 = per-chip, N = groups of N).
  std::size_t fuse_chips = 0;
  std::size_t max_batch = 32;        ///< requests fused per dispatch
  bool start_paused = false;         ///< hold dispatch until resume()
  std::string cache_dir;             ///< table CSV dir ("" = in-memory only)
  /// Failure tables are built over this grid and interpolated to request
  /// voltages (defaults to circuit::paper_voltage_grid()).
  std::vector<double> vdd_grid;
  // Request-field defaults (used when the request passes 0):
  std::size_t default_chips = 3;
  std::uint64_t default_eval_seed = 2024;
  std::size_t default_samples = 4000;
  std::uint64_t default_table_seed = 20160312;
  /// Default CI-targeted sampling policy for table builds (disabled =
  /// fixed-sample mode). A request carrying "adaptive" replaces this
  /// wholesale (the policy is fingerprinted, so default-policy and
  /// request-policy tables coalesce only when the policies agree).
  mc::AdaptivePolicy adaptive;
  /// Request journal (journal.path empty = no journaling). Submits are
  /// recorded after enqueue, terminals at the completion transition, so a
  /// crashed service can be restarted and replay what never finished
  /// (docs/robustness.md).
  JournalOptions journal;
  /// Per-client weighted quotas + fair dispatch (off by default).
  AdmissionOptions admission;
  /// First request id issued (ids grow from here). A recovering served
  /// process sets this above the journal's max id so journal records stay
  /// unambiguous across restarts.
  std::uint64_t first_request_id = 1;
};

/// Why try_submit refused, plus the service's structured retry hint: an
/// estimate (EWMA of recent batch wall time scaled by queue depth) of when
/// capacity frees up. Advisory, not a reservation.
struct SubmitRejection {
  ErrorCode code = ErrorCode::queue_full;
  std::string message;
  double retry_after_ms = 0.0;
};

class EvalService {
 public:
  /// Serves `qnet` against `test`; both must outlive the service. The
  /// circuit stack (reference 6T/8T sizings on ptm22) is fixed per service.
  EvalService(const core::QuantizedNetwork& qnet, const data::Dataset& test,
              ServiceOptions options = {});
  /// Cancels everything still queued, finishes in-flight batches, joins.
  ~EvalService();
  EvalService(const EvalService&) = delete;
  EvalService& operator=(const EvalService&) = delete;

  /// Completion subscription: invoked exactly once when the request reaches
  /// a terminal state (done / failed / cancelled), with the final response.
  /// Runs on a dispatcher thread (or the canceller's thread) with no
  /// service lock held -- the callback may call back into the service, but
  /// must not block for long (it delays that dispatcher). This is how
  /// transports stream completions without polling.
  using Completion = std::function<void(const Response&)>;

  /// Enqueues a request and returns its id (ids start at 1). Blocks while
  /// the queue is at capacity (backpressure). Throws std::runtime_error
  /// after shutdown began. `on_complete`, when non-null, fires once at the
  /// terminal transition (possibly before submit returns the id -- a
  /// callback that needs the id must capture correlation state itself, e.g.
  /// via Request::tag).
  std::uint64_t submit(Request request, Completion on_complete = {});

  /// Non-blocking submit: nullopt when the queue is full or the client's
  /// admission quota is exhausted (`on_complete` is then never invoked).
  /// When `rejection` is non-null it receives the structured reason
  /// (queue_full vs quota_exceeded) and a retry-after hint.
  std::optional<std::uint64_t> try_submit(Request request,
                                          Completion on_complete = {},
                                          SubmitRejection* rejection = nullptr);

  /// Snapshot of a request's current state. Total over ids: an id this
  /// service never issued yields status `not_found` (code not_found); an
  /// issued id whose response aged out of completed_history yields
  /// `evicted`; otherwise the request's current response. Never throws.
  [[nodiscard]] Response poll(std::uint64_t id) const;

  /// Blocks until the request reaches a terminal state (done / failed /
  /// cancelled) and returns it. Total over ids, like poll(): a never-issued
  /// id returns status `not_found` (code not_found) immediately, an
  /// already-evicted id returns `evicted` -- callers need no out-of-band
  /// discipline about which ids exist. Never throws.
  Response wait(std::uint64_t id);

  /// Cancels a request that is still queued. Running or finished requests
  /// are not interrupted (returns false).
  bool cancel(std::uint64_t id);

  /// Blocks until no request is queued or running.
  void drain();

  /// Dispatch gate, for deterministic queue shaping (tests, trace replay):
  /// while paused, submits are accepted but nothing dispatches.
  void pause();
  void resume();

  /// Service-lifetime counters (the protocol-level ServiceTotals: the
  /// `stats` op carries them in its health summary). Table counters merge
  /// the shared cache's stats with the naive-mode private builds.
  using Totals = ServiceTotals;
  [[nodiscard]] Totals totals() const;

  /// The `stats` op's health block, gathered on demand: queue pressure,
  /// static configuration, cache-dir footprint and lifetime totals.
  [[nodiscard]] HealthSummary health() const;

  /// The provenance a request's failure table is keyed by (also what
  /// table_info answers from). Pure functions of (request, service config).
  /// For table_shard requests, fingerprint() returns the shard-extended
  /// fingerprint (with shard_count clamped to the grid size), so only
  /// identical shards of the same provenance coalesce.
  [[nodiscard]] engine::TableSpec table_spec(const Request& request) const;
  [[nodiscard]] mc::AnalyzerOptions analyzer_options(
      const Request& request) const;
  [[nodiscard]] std::uint64_t fingerprint(const Request& request) const;

  /// The shard plan a table_shard request resolves against (shard_count
  /// clamped to the service's voltage grid).
  [[nodiscard]] engine::ShardPlan shard_plan(const Request& request) const;

  [[nodiscard]] const ServiceOptions& options() const noexcept {
    return options_;
  }

  /// The request journal, when options().journal.path is set (nullptr
  /// otherwise). Used by hynapse_served's replay mode to stamp terminals
  /// at delivery time instead of completion time.
  [[nodiscard]] RequestJournal* journal() noexcept { return journal_.get(); }

 private:
  struct Slot {
    std::uint64_t id = 0;
    Request request;
    std::uint64_t fp = 0;
    RequestStatus status = RequestStatus::queued;
    Response response;
    Completion on_complete;  ///< moved out at the terminal transition
    std::chrono::steady_clock::time_point submitted_at;
    /// Absolute shed deadline (Request::deadline_ms past submission).
    std::optional<std::chrono::steady_clock::time_point> deadline;
  };
  using SlotPtr = std::shared_ptr<Slot>;
  /// Work armed under mutex_ but performed outside it: finish_locked moves
  /// completion callbacks (which may re-enter the service) and journal
  /// terminal records (IO) here; the unlocking caller runs run_callbacks.
  struct FiredCallbacks {
    std::vector<std::pair<Completion, Response>> callbacks;
    std::vector<std::pair<std::uint64_t, RequestStatus>> terminals;
  };

  std::uint64_t enqueue_locked(Request&& request, std::uint64_t fp,
                               Completion on_complete,
                               std::unique_lock<std::mutex>& lock);
  /// Journals armed terminal records, then fires completion callbacks.
  void run_callbacks(FiredCallbacks& fired);
  void dispatcher_loop();
  /// Admission predicate: queue has room AND (when admission is enabled)
  /// the request's client is under its queued quota.
  [[nodiscard]] bool admit_locked(const Request& request) const;
  [[nodiscard]] double client_weight(const std::string& client) const;
  [[nodiscard]] std::size_t client_quota(const std::string& client) const;
  /// Retry-after estimate for rejections: EWMA of recent batch wall time
  /// scaled by how many dispatch rounds are queued ahead.
  [[nodiscard]] double retry_after_hint_locked() const;
  /// Fails (deadline_exceeded) every queued request past its deadline;
  /// returns how many were shed.
  std::size_t shed_expired_locked(FiredCallbacks& fired);
  void dec_client_queued_locked(const std::string& client);
  /// Pops the next batch (same-fingerprint fusion when coalescing) or
  /// returns empty when shutting down with an empty queue.
  std::vector<SlotPtr> next_batch();
  void execute_batch(const std::vector<SlotPtr>& batch);
  void answer_table_info(const SlotPtr& slot);
  /// Answers a `stats` request: health summary + full registry snapshot.
  void answer_stats(const SlotPtr& slot);
  /// Builds/replays one table shard for a (same-shard-fingerprint) batch of
  /// table_shard requests: the work happens once, every rider gets the
  /// same response.
  void answer_table_shard(const std::vector<SlotPtr>& batch);
  /// Moves a running slot to a terminal state. Requires mutex_ held: slot
  /// responses are only ever mutated under the lock (poll()/wait() copy
  /// them under the same lock), and terminal slots beyond
  /// completed_history are evicted oldest-first. The slot's completion
  /// callback (if any) is appended to `fired`; the caller MUST run
  /// run_callbacks(fired) after releasing mutex_.
  void finish_locked(const SlotPtr& slot, RequestStatus status,
                     std::string error, ErrorCode code,
                     FiredCallbacks& fired);

  const core::QuantizedNetwork& qnet_;
  const data::Dataset& test_;
  const ServiceOptions options_;
  const std::vector<std::size_t> bank_words_;
  /// Content fingerprint of qnet_, computed once (the served network is
  /// pinned for the service lifetime) and passed to every EvalJob so
  /// the hot path never rehashes the codes.
  const std::uint64_t qnet_fp_;

  // Fixed circuit stack every table build runs against.
  circuit::Technology tech_;
  circuit::Sizing6T sizing6_;
  circuit::Sizing8T sizing8_;
  sram::SubArrayModel array_;
  sram::CycleModel cycle_;
  mc::VariationSampler sampler_;
  mc::FailureCriteria criteria_;

  engine::ExperimentRunner runner_;
  engine::FailureTableCache cache_;
  engine::ShardCoordinator coordinator_;  ///< shard scatter over cache_

  const std::chrono::steady_clock::time_point started_at_ =
      std::chrono::steady_clock::now();

  /// Process-wide instruments, resolved once (registry lookups take a
  /// mutex; recording is a relaxed fetch-add). Shared across services in
  /// one process by design: the registry aggregates the process, the
  /// per-service view is totals()/health().
  struct Instruments {
    obs::Counter& submitted;
    obs::Counter& completed;
    obs::Counter& failed;
    obs::Counter& cancelled;
    obs::Counter& rejected;
    obs::Counter& quota_rejected;
    obs::Counter& deadline_expired;
    obs::Counter& batches;
    obs::Counter& coalesced;
    obs::Gauge& queue_depth;
    obs::Histogram& queue_us;   ///< submit -> dispatch, done/failed requests
    obs::Histogram& table_us;   ///< per-request table acquisition share
    obs::Histogram& run_us;     ///< per-request chip-eval share
    obs::Histogram& wall_us;    ///< submit -> terminal
  };
  static Instruments resolve_instruments();
  Instruments obs_ = resolve_instruments();

  mutable std::mutex mutex_;
  std::condition_variable cv_work_;   ///< queue gained work / unpaused / stop
  std::condition_variable cv_space_;  ///< queue gained space
  std::condition_variable cv_done_;   ///< some request reached a terminal state
  std::deque<SlotPtr> queue_;
  std::unordered_map<std::uint64_t, SlotPtr> slots_;
  std::deque<std::uint64_t> finished_;  ///< terminal ids, oldest first
  const std::uint64_t first_id_ = 1;
  std::uint64_t next_id_ = 1;
  std::uint64_t dispatch_seq_ = 0;
  std::uint64_t pending_ = 0;  ///< queued + running requests
  bool paused_ = false;
  bool stop_ = false;
  Totals totals_;
  std::uint64_t naive_builds_ = 0;
  /// Queued (not yet dispatched) requests per client id; entries are erased
  /// at zero, so the map is bounded by queue content.
  std::unordered_map<std::string, std::size_t> client_queued_;
  /// Weighted dispatch credit per client (each dispatched request adds
  /// 1/weight): the fair pick takes the max-priority request of the client
  /// with the least credit. Only maintained while admission is enabled.
  std::unordered_map<std::string, double> client_dispatched_;
  /// EWMA of completed-batch wall time, feeding the retry-after hint.
  double ewma_wall_ms_ = 0.0;
  std::unique_ptr<RequestJournal> journal_;

  std::vector<std::thread> dispatchers_;  // last: started after all state
};

}  // namespace hynapse::serve
