#include "serve/session.hpp"

#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/span.hpp"
#include "util/fault_injection.hpp"

namespace hynapse::serve {

namespace {

/// Process-wide session counters (aggregated across transports: REPL and
/// every TCP connection record into the same instruments).
struct SessionInstruments {
  obs::Counter& lines;
  obs::Counter& responses;
  obs::Counter& parse_errors;
  obs::Counter& rejected;
  obs::Counter& cancelled_on_close;
  obs::Histogram& serialize_us;  ///< format_response + sink write

  static SessionInstruments& get() {
    static SessionInstruments* instruments = [] {
      obs::Registry& r = obs::Registry::global();
      return new SessionInstruments{
          r.counter("session.lines"),
          r.counter("session.responses"),
          r.counter("session.parse_errors"),
          r.counter("session.rejected"),
          r.counter("session.cancelled_on_close"),
          r.histogram("serve.request.serialize_us"),
      };
    }();
    return *instruments;
  }
};

}  // namespace

// Lives behind a shared_ptr because completion callbacks can outlive the
// Session object: a request still running when the session closes completes
// later, and its callback must find valid state (and a detached sink).
struct Session::State {
  std::mutex mutex;
  std::condition_variable cv;
  Sink sink;
  bool open = true;
  std::uint64_t outstanding = 0;  ///< submitted, completion not yet observed
  /// Ids submitted and not yet completed -- what close() cancels. A
  /// completion can beat submit()'s return (the callback fires before the
  /// id is known here); such ids park in completed_early until handle_line
  /// reconciles them.
  std::unordered_set<std::uint64_t> inflight;
  std::unordered_set<std::uint64_t> completed_early;
  Stats stats;
};

Session::Session(EvalService& service, Sink sink, SessionOptions options)
    : service_{service},
      options_{options},
      state_{std::make_shared<State>()} {
  state_->sink = std::move(sink);
}

Session::~Session() { close(); }

void Session::emit_error(const std::string& tag, ErrorCode code,
                         std::string message, double retry_after_ms) {
  Response r;
  r.id = 0;  // no id was assigned; clients correlate by tag (if any)
  r.status = RequestStatus::failed;
  r.code = code;
  r.error = std::move(message);
  r.tag = tag;
  r.retry_after_ms = retry_after_ms;
  const std::lock_guard lock{state_->mutex};
  if (state_->open && state_->sink) {
    state_->sink(format_response(r, options_.per_chip));
    ++state_->stats.responses;
    SessionInstruments::get().responses.add(1);
  }
}

std::uint64_t Session::handle_line(std::string_view line) {
  {
    const std::lock_guard lock{state_->mutex};
    ++state_->stats.lines;
  }
  SessionInstruments::get().lines.add(1);

  RequestError error;
  std::optional<Request> request = parse_request(line, &error);
  if (!request) {
    {
      const std::lock_guard lock{state_->mutex};
      ++state_->stats.parse_errors;
    }
    SessionInstruments::get().parse_errors.add(1);
    emit_error({}, error.code, std::move(error.message));
    return 0;
  }
  if (!options_.allow_evaluate && (request->kind == RequestKind::evaluate ||
                                   request->kind == RequestKind::sweep)) {
    {
      const std::lock_guard lock{state_->mutex};
      ++state_->stats.rejected;
    }
    SessionInstruments::get().rejected.add(1);
    emit_error(request->tag, ErrorCode::bad_request,
               "this endpoint serves table builds only"
               " (evaluate/sweep disabled)");
    return 0;
  }

  // The callback may fire on a dispatcher thread before submit() returns,
  // so outstanding is counted up front and the id reconciled afterwards.
  const std::shared_ptr<State> state = state_;
  {
    const std::lock_guard lock{state->mutex};
    ++state->outstanding;
  }
  const bool per_chip = options_.per_chip;
  EvalService::Completion on_complete = [state,
                                         per_chip](const Response& response) {
    const std::lock_guard lock{state->mutex};
    if (state->inflight.erase(response.id) == 0) {
      state->completed_early.insert(response.id);
    }
    // `session.drop_response` simulates a response lost at the transport
    // seam (written by the service, never delivered) -- the client-timeout
    // and journal-replay test case.
    const bool dropped =
        util::FaultInjector::instance().armed() &&
        util::FaultInjector::instance().should_fire("session.drop_response");
    if (state->open && state->sink && !dropped) {
      // The serialization phase of the request's span: rendering the
      // response line plus handing it to the transport sink.
      SessionInstruments& instruments = SessionInstruments::get();
      const obs::Timer timer{instruments.serialize_us};
      state->sink(format_response(response, per_chip));
      ++state->stats.responses;
      instruments.responses.add(1);
    }
    --state->outstanding;
    state->cv.notify_all();
  };

  const std::string tag = request->tag;
  Request to_submit = std::move(*request);
  std::uint64_t id = 0;
  try {
    if (options_.reject_when_full) {
      SubmitRejection rejection;
      const std::optional<std::uint64_t> assigned = service_.try_submit(
          std::move(to_submit), std::move(on_complete), &rejection);
      if (!assigned) {
        {
          const std::lock_guard lock{state->mutex};
          --state->outstanding;
          ++state->stats.rejected;
        }
        SessionInstruments::get().rejected.add(1);
        // Structured rejection: queue_full or quota_exceeded, plus the
        // service's retry-after estimate so clients can back off sensibly.
        emit_error(tag, rejection.code, std::move(rejection.message),
                   rejection.retry_after_ms);
        return 0;
      }
      id = *assigned;
    } else {
      id = service_.submit(std::move(to_submit), std::move(on_complete));
    }
  } catch (const std::exception& e) {
    {
      const std::lock_guard lock{state->mutex};
      --state->outstanding;
      ++state->stats.rejected;
      state->cv.notify_all();
    }
    SessionInstruments::get().rejected.add(1);
    emit_error(tag, ErrorCode::shutting_down, e.what());
    return 0;
  }

  {
    const std::lock_guard lock{state->mutex};
    if (state->completed_early.erase(id) == 0) state->inflight.insert(id);
  }
  return id;
}

void Session::drain() {
  std::unique_lock lock{state_->mutex};
  state_->cv.wait(lock, [this] { return state_->outstanding == 0; });
}

void Session::close() {
  std::vector<std::uint64_t> to_cancel;
  {
    const std::lock_guard lock{state_->mutex};
    if (!state_->open) return;
    state_->open = false;
    state_->sink = nullptr;
    to_cancel.assign(state_->inflight.begin(), state_->inflight.end());
  }
  // cancel() fires completion callbacks synchronously (without the state
  // lock held here), which reconciles inflight/outstanding; requests
  // already running finish server-side and their responses are dropped.
  std::uint64_t cancelled = 0;
  for (const std::uint64_t id : to_cancel) {
    if (service_.cancel(id)) ++cancelled;
  }
  if (cancelled != 0) {
    SessionInstruments::get().cancelled_on_close.add(cancelled);
  }
  const std::lock_guard lock{state_->mutex};
  state_->stats.cancelled_on_close += cancelled;
}

Session::Stats Session::stats() const {
  const std::lock_guard lock{state_->mutex};
  return state_->stats;
}

}  // namespace hynapse::serve
