#include "serve/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace hynapse::serve {

namespace {

/// Strict recursive-descent parser over a string_view cursor. Depth-limited
/// so hostile input cannot overflow the stack. The first (innermost) failure
/// records its cursor position and reason; propagating frames leave it alone.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_{text} {}

  std::optional<Json> parse_document() {
    std::optional<Json> v = parse_value(0);
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return v;
  }

  void fill_error(ParseError& error) const {
    error.offset = err_pos_;
    error.message = err_msg_ != nullptr ? err_msg_ : "invalid JSON";
    error.line = 1;
    error.column = 1;
    for (std::size_t i = 0; i < err_pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++error.line;
        error.column = 1;
      } else {
        ++error.column;
      }
    }
  }

 private:
  static constexpr int kMaxDepth = 64;

  /// Records the first failure's position + reason, then reads as nullopt.
  std::optional<Json> fail(const char* msg) {
    if (err_msg_ == nullptr) {
      err_msg_ = msg;
      err_pos_ = pos_;
    }
    return std::nullopt;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<Json> parse_value(int depth) {
    if (depth > kMaxDepth) return fail("nesting depth limit exceeded");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        return literal("null") ? std::optional<Json>{Json{}}
                               : fail("invalid literal");
      case 't':
        return literal("true") ? std::optional<Json>{Json{true}}
                               : fail("invalid literal");
      case 'f':
        return literal("false") ? std::optional<Json>{Json{false}}
                                : fail("invalid literal");
      case '"':
        return parse_string();
      case '[':
        return parse_array(depth);
      case '{':
        return parse_object(depth);
      default:
        return parse_number();
    }
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    double value = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [end, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || end != last) {
      pos_ = start;
      return fail("malformed number");
    }
    return Json{value};
  }

  std::optional<Json> parse_string() {
    if (!consume('"')) return fail("expected a string");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Json{std::move(out)};
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated string");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else {
              --pos_;
              return fail("invalid hex digit in \\u escape");
            }
          }
          // Encode the BMP code point as UTF-8 (surrogate pairs are passed
          // through as two 3-byte sequences; the codec never emits them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          --pos_;
          return fail("invalid escape sequence");
      }
    }
    return fail("unterminated string");
  }

  std::optional<Json> parse_array(int depth) {
    if (!consume('[')) return fail("expected an array");
    Json out = Json::array();
    skip_ws();
    if (consume(']')) return out;
    for (;;) {
      std::optional<Json> v = parse_value(depth + 1);
      if (!v) return std::nullopt;
      out.push_back(std::move(*v));
      skip_ws();
      if (consume(']')) return out;
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
  }

  std::optional<Json> parse_object(int depth) {
    if (!consume('{')) return fail("expected an object");
    Json out = Json::object();
    skip_ws();
    if (consume('}')) return out;
    for (;;) {
      skip_ws();
      std::optional<Json> key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) return fail("expected ':' after object key");
      std::optional<Json> v = parse_value(depth + 1);
      if (!v) return std::nullopt;
      out.set(key->as_string(), std::move(*v));
      skip_ws();
      if (consume('}')) return out;
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t err_pos_ = 0;
  const char* err_msg_ = nullptr;
};

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_number(double v, std::string& out) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no inf/nan; null is the least-wrong rendering
    return;
  }
  // Integers print without an exponent or trailing ".0"; everything else
  // uses shortest-exact via %.17g.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

const Json* Json::get(std::string_view key) const noexcept {
  if (type_ != Type::object) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json& Json::push_back(Json v) {
  if (type_ == Type::null) type_ = Type::array;
  array_.push_back(std::move(v));
  return *this;
}

Json& Json::set(std::string key, Json v) {
  if (type_ == Type::null) type_ = Type::object;
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
  return *this;
}

std::string ParseError::str() const {
  std::string out = message.empty() ? std::string{"invalid JSON"} : message;
  out += " at line ";
  out += std::to_string(line);
  out += ", column ";
  out += std::to_string(column);
  out += " (offset ";
  out += std::to_string(offset);
  out += ")";
  return out;
}

std::optional<Json> Json::parse(std::string_view text) {
  return parse(text, nullptr);
}

std::optional<Json> Json::parse(std::string_view text, ParseError* error) {
  Parser parser{text};
  std::optional<Json> v = parser.parse_document();
  if (!v && error != nullptr) parser.fill_error(*error);
  return v;
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::null:
      out += "null";
      break;
    case Type::boolean:
      out += bool_ ? "true" : "false";
      break;
    case Type::number:
      dump_number(number_, out);
      break;
    case Type::string:
      dump_string(string_, out);
      break;
    case Type::array: {
      out.push_back('[');
      bool first = true;
      for (const Json& v : array_) {
        if (!first) out.push_back(',');
        first = false;
        v.dump_to(out);
      }
      out.push_back(']');
      break;
    }
    case Type::object: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out.push_back(',');
        first = false;
        dump_string(k, out);
        out.push_back(':');
        v.dump_to(out);
      }
      out.push_back('}');
      break;
    }
  }
}

}  // namespace hynapse::serve
