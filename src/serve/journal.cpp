#include "serve/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <unordered_map>
#include <utility>

#include "obs/metrics.hpp"
#include "serve/json.hpp"

namespace hynapse::serve {
namespace {

/// Counters resolved once (obs naming: serve.journal.*).
struct JournalInstruments {
  obs::Counter& appends;
  obs::Counter& fsyncs;
  obs::Counter& rotations;
  obs::Counter& write_errors;
  obs::Counter& compactions;

  static JournalInstruments& get() {
    static JournalInstruments* in = [] {
      auto& r = obs::Registry::global();
      return new JournalInstruments{
          r.counter("serve.journal.appends"),
          r.counter("serve.journal.fsyncs"),
          r.counter("serve.journal.rotations"),
          r.counter("serve.journal.write_errors"),
          r.counter("serve.journal.compactions"),
      };
    }();
    return *in;
  }
};

std::string fingerprint_hex16(std::uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

std::string segment_name(const std::string& path, std::size_t n) {
  return path + "." + std::to_string(n);
}

std::string status_name(RequestStatus status) {
  switch (status) {
    case RequestStatus::done: return "done";
    case RequestStatus::failed: return "failed";
    case RequestStatus::cancelled: return "cancelled";
    default: return "done";
  }
}

std::optional<RequestStatus> parse_status_name(const std::string& s) {
  if (s == "done") return RequestStatus::done;
  if (s == "failed") return RequestStatus::failed;
  if (s == "cancelled") return RequestStatus::cancelled;
  return std::nullopt;
}

}  // namespace

RequestJournal::RequestJournal(JournalOptions options,
                               std::uint64_t service_fingerprint)
    : options_{std::move(options)}, fingerprint_{service_fingerprint} {
  if (options_.fsync_every == 0) options_.fsync_every = 1;
  if (options_.path.empty()) return;
  const std::scoped_lock lock{mutex_};
  open_segment_locked(/*write_header=*/true);
}

RequestJournal::~RequestJournal() {
  const std::scoped_lock lock{mutex_};
  flush_locked();
  if (fd_ >= 0) ::close(fd_);
}

void RequestJournal::open_segment_locked(bool write_header) {
  fd_ = ::open(options_.path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    ++stats_.write_errors;
    JournalInstruments::get().write_errors.add(1);
    if (!warned_) {
      std::fprintf(stderr, "[journal] warning: cannot open %s: %s\n",
                   options_.path.c_str(), std::strerror(errno));
      warned_ = true;
    }
    return;
  }
  struct stat st{};
  segment_bytes_ = ::fstat(fd_, &st) == 0
                       ? static_cast<std::uintmax_t>(st.st_size)
                       : 0;
  if (write_header && segment_bytes_ == 0) {
    std::string header = "{\"journal\":\"hynapse-requests\",\"v\":1,\"fp\":\"" +
                         fingerprint_hex16(fingerprint_) + "\"}";
    append_locked(std::move(header));
    flush_locked();
  }
}

void RequestJournal::record_submit(std::uint64_t id,
                                   std::string_view request_json) {
  if (options_.path.empty()) return;
  // format_request() output is already a compact JSON object, so the record
  // is assembled by concatenation -- no DOM round trip on the submit path.
  std::string line = "{\"e\":\"submit\",\"id\":" + std::to_string(id) +
                     ",\"req\":" + std::string{request_json} + "}";
  const std::scoped_lock lock{mutex_};
  append_locked(std::move(line));
}

void RequestJournal::record_submit(std::uint64_t id, const Request& request) {
  record_submit(id, format_request(request));
}

void RequestJournal::record_terminal(std::uint64_t id, RequestStatus status) {
  if (options_.path.empty()) return;
  std::string line = "{\"e\":\"done\",\"id\":" + std::to_string(id) +
                     ",\"status\":\"" + status_name(status) + "\"}";
  const std::scoped_lock lock{mutex_};
  append_locked(std::move(line));
}

void RequestJournal::append_locked(std::string&& line) {
  if (fd_ < 0) return;
  if (segment_bytes_ + line.size() + 1 > options_.rotate_bytes &&
      segment_bytes_ > 0) {
    rotate_locked();
    if (fd_ < 0) return;
  }
  // Each record hits the kernel immediately (one O_APPEND write is cheap
  // and a kill -9 can then lose nothing already appended); only the fsync
  // -- the expensive part -- is amortized across fsync_every records.
  line += '\n';
  const char* data = line.data();
  std::size_t left = line.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ++stats_.write_errors;
      JournalInstruments::get().write_errors.add(1);
      if (!warned_) {
        std::fprintf(stderr, "[journal] warning: write to %s failed: %s\n",
                     options_.path.c_str(), std::strerror(errno));
        warned_ = true;
      }
      break;
    }
    data += n;
    left -= static_cast<std::size_t>(n);
    segment_bytes_ += static_cast<std::uintmax_t>(n);
  }
  ++pending_records_;
  ++stats_.appends;
  JournalInstruments::get().appends.add(1);
  if (pending_records_ >= options_.fsync_every) flush_locked();
}

void RequestJournal::flush() {
  const std::scoped_lock lock{mutex_};
  flush_locked();
}

void RequestJournal::flush_locked() {
  if (fd_ < 0 || pending_records_ == 0) return;
  pending_records_ = 0;
  if (::fsync(fd_) == 0) {
    ++stats_.fsyncs;
    JournalInstruments::get().fsyncs.add(1);
  }
}

void RequestJournal::rotate_locked() {
  flush_locked();
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  // Shift "<path>.N" up; the oldest beyond keep_segments falls off.
  std::error_code ec;
  if (options_.keep_segments == 0) {
    std::filesystem::remove(options_.path, ec);
  } else {
    std::filesystem::remove(segment_name(options_.path, options_.keep_segments),
                            ec);
    for (std::size_t n = options_.keep_segments; n > 1; --n) {
      std::filesystem::rename(segment_name(options_.path, n - 1),
                              segment_name(options_.path, n), ec);
    }
    std::filesystem::rename(options_.path, segment_name(options_.path, 1), ec);
  }
  ++stats_.rotations;
  JournalInstruments::get().rotations.add(1);
  open_segment_locked(/*write_header=*/true);
}

JournalStats RequestJournal::stats() const {
  const std::scoped_lock lock{mutex_};
  return stats_;
}

namespace {

/// Folds one segment's lines into the accumulating load state.
void load_segment(const std::string& file, JournalLoad& load,
                  std::vector<JournalEntry>& entries,
                  std::unordered_map<std::uint64_t, std::size_t>& by_id) {
  std::ifstream in{file};
  if (!in) return;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::optional<Json> doc = Json::parse(line);
    if (!doc || !doc->is_object()) {
      // Torn trailing line after a crash, or corruption: skip, count.
      ++load.skipped_lines;
      continue;
    }
    if (doc->get("journal") != nullptr) {
      if (const Json* fp = doc->get("fp"); fp != nullptr && fp->is_string()) {
        load.service_fingerprint = std::strtoull(
            fp->as_string().c_str(), nullptr, 16);
      }
      // Compacted segments stamp the pre-compaction id watermark into the
      // header, so max_id survives even when every old record was dropped.
      if (const Json* mid = doc->get("max_id");
          mid != nullptr && mid->is_number() && mid->as_number() >= 0.0) {
        const auto watermark = static_cast<std::uint64_t>(mid->as_number());
        if (watermark > load.max_id) load.max_id = watermark;
      }
      continue;
    }
    const Json* e = doc->get("e");
    const Json* id_v = doc->get("id");
    if (e == nullptr || !e->is_string() || id_v == nullptr ||
        !id_v->is_number() || id_v->as_number() < 1.0) {
      ++load.skipped_lines;
      continue;
    }
    const auto id = static_cast<std::uint64_t>(id_v->as_number());
    if (e->as_string() == "submit") {
      const Json* req = doc->get("req");
      if (req == nullptr || !req->is_object()) {
        ++load.skipped_lines;
        continue;
      }
      std::string parse_err;
      std::optional<Request> parsed = parse_request(req->dump(), &parse_err);
      if (!parsed) {
        ++load.skipped_lines;
        continue;
      }
      JournalEntry entry;
      entry.id = id;
      entry.request = std::move(*parsed);
      const auto it = by_id.find(id);
      if (it == by_id.end()) {
        by_id.emplace(id, entries.size());
        entries.push_back(std::move(entry));
      } else {
        // Same id resubmitted (should not happen; last record wins).
        const bool terminal = entries[it->second].terminal;
        const RequestStatus st = entries[it->second].final_status;
        entries[it->second] = std::move(entry);
        entries[it->second].terminal = terminal;
        entries[it->second].final_status = st;
      }
      if (id > load.max_id) load.max_id = id;
    } else if (e->as_string() == "done") {
      const Json* status = doc->get("status");
      std::optional<RequestStatus> st =
          status != nullptr && status->is_string()
              ? parse_status_name(status->as_string())
              : std::nullopt;
      if (!st) {
        ++load.skipped_lines;
        continue;
      }
      if (const auto it = by_id.find(id); it != by_id.end()) {
        entries[it->second].terminal = true;
        entries[it->second].final_status = *st;
      }
      if (id > load.max_id) load.max_id = id;
    } else {
      ++load.skipped_lines;
    }
  }
}

}  // namespace

std::optional<JournalLoad> load_journal(const std::string& path,
                                        std::string* error) {
  JournalLoad load;
  std::vector<JournalEntry> entries;
  std::unordered_map<std::uint64_t, std::size_t> by_id;

  std::vector<std::string> segments;
  // Oldest rotated segment first, active segment last, so later records
  // (terminals for earlier submits) overwrite earlier state.
  for (std::size_t n = 64; n >= 1; --n) {
    const std::string seg = segment_name(path, n);
    if (std::filesystem::exists(seg)) segments.push_back(seg);
  }
  if (std::filesystem::exists(path)) segments.push_back(path);
  if (segments.empty()) {
    if (error) *error = "journal not found: " + path;
    return std::nullopt;
  }
  for (const std::string& seg : segments) {
    load_segment(seg, load, entries, by_id);
  }
  std::sort(entries.begin(), entries.end(),
            [](const JournalEntry& a, const JournalEntry& b) {
              return a.id < b.id;
            });
  load.entries = std::move(entries);
  return load;
}

std::vector<const JournalEntry*> incomplete_entries(const JournalLoad& load) {
  std::vector<const JournalEntry*> out;
  for (const JournalEntry& e : load.entries) {
    // stats scrapes are point-in-time reads; replaying them is pure noise.
    if (!e.terminal && e.request.kind != RequestKind::stats) {
      out.push_back(&e);
    }
  }
  return out;
}

std::optional<CompactionResult> compact_journal(const std::string& path,
                                                std::string* error) {
  std::optional<JournalLoad> load = load_journal(path, error);
  if (!load) return std::nullopt;

  CompactionResult result;
  result.max_id = load->max_id;
  const std::vector<const JournalEntry*> keep = incomplete_entries(*load);
  result.kept = keep.size();
  result.dropped = load->entries.size() - keep.size();

  // One fresh segment: header (fingerprint + id watermark) plus the live
  // submit records. parse_request(format_request(r)) == r, so replaying
  // the compacted journal is indistinguishable from replaying the
  // original's incomplete set.
  std::string out = "{\"journal\":\"hynapse-requests\",\"v\":1,\"fp\":\"" +
                    fingerprint_hex16(load->service_fingerprint) +
                    "\",\"max_id\":" + std::to_string(load->max_id) + "}\n";
  for (const JournalEntry* e : keep) {
    out += "{\"e\":\"submit\",\"id\":" + std::to_string(e->id) +
           ",\"req\":" + format_request(e->request) + "}\n";
  }

  const std::string tmp = path + ".compact.tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (error) *error = "cannot create " + tmp + ": " + std::strerror(errno);
    return std::nullopt;
  }
  const char* data = out.data();
  std::size_t left = out.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error) *error = "write to " + tmp + " failed: " + std::strerror(errno);
      ::close(fd);
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return std::nullopt;
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  ::fsync(fd);
  ::close(fd);

  // Atomic cutover first, cleanup after: a crash between the two leaves a
  // valid compacted segment plus stale rotated segments, which the next
  // compaction (or rotation) removes -- never a missing journal.
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    if (error) *error = "rename " + tmp + " -> " + path + ": " + ec.message();
    std::filesystem::remove(tmp, ec);
    return std::nullopt;
  }
  for (std::size_t n = 1; n <= 64; ++n) {
    std::error_code rec;
    if (std::filesystem::remove(segment_name(path, n), rec)) {
      ++result.removed_segments;
    }
  }
  JournalInstruments::get().compactions.add(1);
  return result;
}

}  // namespace hynapse::serve
