// Replayable request journal: an append-only, crash-safe JSONL write-ahead
// log of every request submitted to an EvalService. A restarted
// `hynapse_served --recover` re-submits journaled requests that never
// reached a terminal record, and `hynapse_cli replay <journal>` drives
// load-replay benchmarking from a recorded trace (docs/robustness.md).
//
// On-disk format -- one JSON document per line, per segment:
//
//   {"journal":"hynapse-requests","v":1,"fp":"<16-hex network fingerprint>"}
//   {"e":"submit","id":N,"req":{...format_request object...}}
//   {"e":"done","id":N,"status":"done"|"failed"|"cancelled"}
//
// Every append is written to the segment immediately; only the fsync is
// batched (every `fsync_every` records or on flush()). The active segment
// rotates to "<path>.1" (older segments shift up, the oldest beyond
// `keep_segments` is dropped) once it exceeds `rotate_bytes`.
// The loader reads rotated segments oldest-first, tolerates a torn trailing
// line (the crash case), and reports entries in submit order with their
// terminal status when one was recorded.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "serve/protocol.hpp"

namespace hynapse::serve {

struct JournalOptions {
  /// Path of the active segment; empty disables journaling entirely.
  std::string path;
  /// fsync after this many appended records (1 = every append). Records
  /// reach the kernel on every append; this only bounds how many can be
  /// lost to a machine crash (a process crash loses nothing appended).
  std::size_t fsync_every = 64;
  /// Rotate the active segment once it exceeds this many bytes.
  std::uintmax_t rotate_bytes = 64ull << 20;
  /// Rotated segments kept as "<path>.1" (newest) .. "<path>.N" (oldest).
  std::size_t keep_segments = 2;
  /// Record terminal ("done") events from the service's completion path.
  /// hynapse_served's file-replay mode turns this off and stamps terminals
  /// itself only after a response has been *printed*, so a crash between
  /// completion and delivery still replays (docs/robustness.md).
  bool record_terminals = true;
};

struct JournalStats {
  std::uint64_t appends = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t rotations = 0;
  std::uint64_t write_errors = 0;
};

/// Append half of the journal. Thread-safe; append latency is one O_APPEND
/// write plus an amortized fsync. Write failures are counted and warned
/// once, never thrown -- a full disk degrades durability, not service.
class RequestJournal {
 public:
  /// Opens (appending) or creates the active segment and stamps a header
  /// with `service_fingerprint` (the served network's fingerprint).
  RequestJournal(JournalOptions options, std::uint64_t service_fingerprint);
  ~RequestJournal();

  RequestJournal(const RequestJournal&) = delete;
  RequestJournal& operator=(const RequestJournal&) = delete;

  /// Records a submitted request. `request_json` must be the
  /// format_request() rendering (callers that still own the Request can use
  /// the convenience overload).
  void record_submit(std::uint64_t id, std::string_view request_json);
  void record_submit(std::uint64_t id, const Request& request);

  /// Records a terminal outcome; entries with no terminal record are what
  /// recovery re-submits.
  void record_terminal(std::uint64_t id, RequestStatus status);

  /// Writes buffered records and fsyncs now.
  void flush();

  [[nodiscard]] JournalStats stats() const;
  [[nodiscard]] const JournalOptions& options() const noexcept {
    return options_;
  }
  /// The fingerprint this journal stamps into segment headers.
  [[nodiscard]] std::uint64_t service_fingerprint() const noexcept {
    return fingerprint_;
  }

 private:
  void append_locked(std::string&& line);
  void flush_locked();
  void rotate_locked();
  void open_segment_locked(bool write_header);

  JournalOptions options_;
  std::uint64_t fingerprint_ = 0;
  mutable std::mutex mutex_;
  int fd_ = -1;
  std::size_t pending_records_ = 0;  // appended since the last fsync
  std::uintmax_t segment_bytes_ = 0;
  JournalStats stats_;
  bool warned_ = false;
};

/// One journaled request, as read back by the loader.
struct JournalEntry {
  std::uint64_t id = 0;
  Request request;
  bool terminal = false;  ///< a "done" record was found for this id
  RequestStatus final_status = RequestStatus::queued;
};

struct JournalLoad {
  /// Fingerprint stamped in the newest segment header (0 if none found).
  std::uint64_t service_fingerprint = 0;
  /// Entries in submit order (ascending id across segments).
  std::vector<JournalEntry> entries;
  /// Corrupt or torn lines tolerated and skipped.
  std::size_t skipped_lines = 0;
  /// Highest id seen (submit or terminal); a recovering service starts its
  /// id counter above this so journal ids stay unique across restarts.
  std::uint64_t max_id = 0;
};

/// Reads "<path>.keep" .. "<path>.1" then "<path>" (oldest first). Returns
/// nullopt (with *error) only when no segment could be opened; malformed
/// lines inside an open segment are skipped and counted.
[[nodiscard]] std::optional<JournalLoad> load_journal(const std::string& path,
                                                      std::string* error);

/// Entries without a terminal record -- what a restarted service replays.
[[nodiscard]] std::vector<const JournalEntry*> incomplete_entries(
    const JournalLoad& load);

/// What compact_journal did: how many live entries were carried into the
/// fresh segment, how many terminated (or stats) records were left behind,
/// and how many rotated segments were deleted.
struct CompactionResult {
  std::size_t kept = 0;
  std::size_t dropped = 0;
  std::size_t removed_segments = 0;
  /// Id watermark stamped into the new header ("max_id"): the loader's
  /// max_id survives compaction even when every carried record is dropped,
  /// so a recovering service never reissues a journaled id.
  std::uint64_t max_id = 0;
};

/// Rewrites the journal as ONE fresh active segment holding a header plus
/// the submit records of incomplete_entries() only; terminal records,
/// finished requests and rotated segments are dropped. Runs offline (call
/// before constructing the RequestJournal that will append to `path` --
/// there is no coordination with a live writer): `hynapse_served --recover`
/// compacts after loading, so restart cost stays proportional to live work,
/// not journal history. Crash-safe: the new segment is written to a temp
/// file, fsynced and renamed over `path` before old segments are removed.
/// Returns nullopt (with *error) when the journal cannot be loaded or the
/// new segment cannot be written.
[[nodiscard]] std::optional<CompactionResult> compact_journal(
    const std::string& path, std::string* error = nullptr);

}  // namespace hynapse::serve
