#include "serve/eval_service.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "obs/span.hpp"
#include "util/fault_injection.hpp"

namespace hynapse::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>{to - from}.count();
}

std::uint64_t ms_to_us(double ms) {
  return ms <= 0.0 ? 0 : static_cast<std::uint64_t>(ms * 1000.0 + 0.5);
}

}  // namespace

EvalService::Instruments EvalService::resolve_instruments() {
  obs::Registry& r = obs::Registry::global();
  return Instruments{
      r.counter("serve.requests_submitted"),
      r.counter("serve.requests_completed"),
      r.counter("serve.requests_failed"),
      r.counter("serve.requests_cancelled"),
      r.counter("serve.requests_rejected"),
      r.counter("serve.quota_rejected"),
      r.counter("serve.deadline_expired"),
      r.counter("serve.batches"),
      r.counter("serve.coalesced_requests"),
      r.gauge("serve.queue_depth"),
      r.histogram("serve.request.queue_us"),
      r.histogram("serve.request.table_us"),
      r.histogram("serve.request.run_us"),
      r.histogram("serve.request.wall_us"),
  };
}

EvalService::EvalService(const core::QuantizedNetwork& qnet,
                         const data::Dataset& test, ServiceOptions options)
    : qnet_{qnet},
      test_{test},
      options_{[&] {
        if (options.vdd_grid.empty()) {
          options.vdd_grid = circuit::paper_voltage_grid();
        }
        options.dispatchers = std::max<std::size_t>(options.dispatchers, 1);
        options.max_batch = std::max<std::size_t>(options.max_batch, 1);
        options.queue_capacity =
            std::max<std::size_t>(options.queue_capacity, 1);
        if (options.admission.client_share <= 0.0 ||
            options.admission.client_share > 1.0) {
          options.admission.client_share = 0.5;
        }
        if (options.admission.default_weight <= 0.0) {
          options.admission.default_weight = 1.0;
        }
        options.first_request_id =
            std::max<std::uint64_t>(options.first_request_id, 1);
        return std::move(options);
      }()},
      bank_words_{qnet.bank_words()},
      qnet_fp_{core::network_fingerprint(qnet)},
      tech_{circuit::ptm22()},
      sizing6_{circuit::reference_sizing_6t(tech_)},
      sizing8_{circuit::reference_sizing_8t(tech_)},
      array_{tech_, sram::SubArrayGeometry{}, sizing6_},
      cycle_{tech_, array_, circuit::Bitcell6T{tech_, sizing6_}},
      sampler_{tech_, sizing6_, sizing8_},
      criteria_{tech_, cycle_, sizing6_, sizing8_},
      runner_{options_.threads},
      cache_{options_.cache_dir},
      coordinator_{cache_, options_.threads},
      first_id_{options_.first_request_id},
      paused_{options_.start_paused} {
  next_id_ = first_id_;
  if (!options_.journal.path.empty()) {
    journal_ = std::make_unique<RequestJournal>(options_.journal, qnet_fp_);
  }
  dispatchers_.reserve(options_.dispatchers);
  for (std::size_t d = 0; d < options_.dispatchers; ++d) {
    dispatchers_.emplace_back([this] { dispatcher_loop(); });
  }
}

EvalService::~EvalService() {
  FiredCallbacks fired;
  {
    const std::scoped_lock lock{mutex_};
    stop_ = true;
    const std::deque<SlotPtr> queued = std::move(queue_);
    queue_.clear();
    client_queued_.clear();
    obs_.queue_depth.set(0);
    for (const SlotPtr& slot : queued) {
      finish_locked(slot, RequestStatus::cancelled, {}, ErrorCode::none,
                    fired);
    }
  }
  run_callbacks(fired);
  cv_work_.notify_all();
  cv_space_.notify_all();
  cv_done_.notify_all();
  for (std::thread& t : dispatchers_) t.join();
}

void EvalService::run_callbacks(FiredCallbacks& fired) {
  // Terminal records first: once a completion is observable (the callback
  // ran), its journal record must already be durable-or-buffered, so a
  // recovery never replays work whose result a client acted on.
  if (journal_ != nullptr) {
    for (const auto& [id, status] : fired.terminals) {
      journal_->record_terminal(id, status);
    }
  }
  fired.terminals.clear();
  for (auto& [fn, response] : fired.callbacks) fn(response);
  fired.callbacks.clear();
}

double EvalService::client_weight(const std::string& client) const {
  const auto it = options_.admission.weights.find(client);
  const double w =
      it != options_.admission.weights.end() ? it->second : 0.0;
  return w > 0.0 ? w : options_.admission.default_weight;
}

std::size_t EvalService::client_quota(const std::string& client) const {
  const double q = static_cast<double>(options_.queue_capacity) *
                   options_.admission.client_share * client_weight(client);
  return std::max<std::size_t>(static_cast<std::size_t>(q), 1);
}

bool EvalService::admit_locked(const Request& request) const {
  if (queue_.size() >= options_.queue_capacity) return false;
  if (!options_.admission.enabled) return true;
  const auto it = client_queued_.find(request.client);
  const std::size_t queued = it != client_queued_.end() ? it->second : 0;
  return queued < client_quota(request.client);
}

double EvalService::retry_after_hint_locked() const {
  // Heuristic, not a reservation: one EWMA batch wall time per dispatch
  // round queued ahead of the caller (50ms floor before any history).
  const double per_round = ewma_wall_ms_ > 0.0 ? ewma_wall_ms_ : 50.0;
  const double rounds_ahead =
      1.0 + static_cast<double>(queue_.size()) /
                static_cast<double>(options_.dispatchers * options_.max_batch);
  return per_round * rounds_ahead;
}

mc::AnalyzerOptions EvalService::analyzer_options(
    const Request& request) const {
  mc::AnalyzerOptions ao;
  ao.mc_samples = request.mc_samples != 0 ? request.mc_samples
                                          : options_.default_samples;
  ao.is_samples = std::max<std::size_t>(ao.mc_samples / 2, 200);
  ao.threads = options_.threads;
  // A request-level policy replaces the service default wholesale: the
  // policy is part of the table fingerprint, so partial merging would make
  // wire-visible provenance depend on hidden server state.
  ao.adaptive = request.adaptive.has_value() ? *request.adaptive
                                             : options_.adaptive;
  return ao;
}

engine::TableSpec EvalService::table_spec(const Request& request) const {
  engine::TableSpec spec;
  spec.tech = tech_;
  spec.sizing6 = sizing6_;
  spec.sizing8 = sizing8_;
  spec.geometry = array_.geometry();
  spec.vdd_grid = options_.vdd_grid;
  spec.seed = request.table_seed != 0 ? request.table_seed
                                      : options_.default_table_seed;
  return spec;
}

std::uint64_t EvalService::fingerprint(const Request& request) const {
  // A stats scrape names no table; 0 keeps the response's table block
  // suppressed (and stats requests never coalesce -- see next_batch).
  if (request.kind == RequestKind::stats) return 0;
  const std::uint64_t table_fp = engine::table_fingerprint(
      table_spec(request), analyzer_options(request));
  if (request.kind != RequestKind::table_shard) return table_fp;
  // Shard-aware coalescing key: only the SAME shard of the same provenance
  // coalesces. The count runs through the planner's own clamp rule
  // (engine::clamp_shard_count), so the key always matches a plan shard
  // (or dispatch rejects the index). A direct-API shard_count of 0 (the
  // codec rejects it) is treated as 1, matching shard_plan() below.
  const std::size_t count = engine::clamp_shard_count(
      std::max<std::size_t>(request.shard_count, 1),
      options_.vdd_grid.size());
  return engine::shard_fingerprint(table_fp, request.shard, count);
}

engine::ShardPlan EvalService::shard_plan(const Request& request) const {
  engine::ShardPlanOptions opts;
  opts.shard_count = std::max<std::size_t>(request.shard_count, 1);
  return engine::ShardPlanner::plan(table_spec(request),
                                    analyzer_options(request), opts);
}

std::uint64_t EvalService::enqueue_locked(
    Request&& request, std::uint64_t fp, Completion on_complete,
    std::unique_lock<std::mutex>& lock) {
  (void)lock;  // caller holds mutex_
  const std::uint64_t id = next_id_++;
  auto slot = std::make_shared<Slot>();
  slot->id = id;
  slot->request = std::move(request);
  slot->fp = fp;
  slot->on_complete = std::move(on_complete);
  slot->submitted_at = Clock::now();
  if (slot->request.deadline_ms > 0.0) {
    slot->deadline =
        slot->submitted_at +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>{
                slot->request.deadline_ms});
  }
  ++client_queued_[slot->request.client];
  slot->response.id = id;
  slot->response.status = RequestStatus::queued;
  slot->response.table_fingerprint = slot->fp;
  slot->response.tag = slot->request.tag;
  slots_.emplace(id, slot);
  queue_.push_back(std::move(slot));
  ++totals_.submitted;
  ++pending_;
  totals_.max_queue_depth =
      std::max<std::uint64_t>(totals_.max_queue_depth, queue_.size());
  obs_.submitted.add(1);
  obs_.queue_depth.set(static_cast<std::int64_t>(queue_.size()));
  cv_work_.notify_one();
  return id;
}

std::uint64_t EvalService::submit(Request request, Completion on_complete) {
  // Fingerprinting hashes the whole circuit stack; it reads only immutable
  // service state, so keep it outside the lock. Same for the journal
  // rendering (the request is moved into its slot below).
  const std::uint64_t fp = fingerprint(request);
  std::string journal_line;
  if (journal_ != nullptr) journal_line = format_request(request);
  std::unique_lock lock{mutex_};
  // Backpressure: blocks while the queue is full OR (with admission
  // enabled) while this client is at its queued quota.
  cv_space_.wait(lock,
                 [this, &request] { return stop_ || admit_locked(request); });
  if (stop_) throw std::runtime_error{"EvalService: shutting down"};
  const std::uint64_t id =
      enqueue_locked(std::move(request), fp, std::move(on_complete), lock);
  lock.unlock();
  // Journaled after enqueue (the id must be known) and outside the lock
  // (appends can fsync). The submit->append window is a documented crash
  // hole: a request accepted but not yet journaled is simply not replayed.
  if (journal_ != nullptr) journal_->record_submit(id, journal_line);
  return id;
}

std::optional<std::uint64_t> EvalService::try_submit(
    Request request, Completion on_complete, SubmitRejection* rejection) {
  const std::uint64_t fp = fingerprint(request);
  std::string journal_line;
  if (journal_ != nullptr) journal_line = format_request(request);
  std::unique_lock lock{mutex_};
  if (stop_) throw std::runtime_error{"EvalService: shutting down"};
  if (queue_.size() >= options_.queue_capacity) {
    ++totals_.rejected;
    obs_.rejected.add(1);
    if (rejection != nullptr) {
      rejection->code = ErrorCode::queue_full;
      rejection->message = "service queue is at capacity (" +
                           std::to_string(options_.queue_capacity) + ")";
      rejection->retry_after_ms = retry_after_hint_locked();
    }
    return std::nullopt;
  }
  if (!admit_locked(request)) {
    ++totals_.quota_rejected;
    obs_.quota_rejected.add(1);
    const double hint = retry_after_hint_locked();
    std::string client = request.client;
    if (rejection != nullptr) {
      rejection->code = ErrorCode::quota_exceeded;
      rejection->message =
          "client \"" + client + "\" is at its admission quota (" +
          std::to_string(client_quota(client)) + " queued)";
      rejection->retry_after_ms = hint;
    }
    lock.unlock();
    // Per-client rejection counter (cold path; cardinality is bounded by
    // the set of distinct client ids the service ever sees).
    obs::count("serve.quota_rejected." +
               (client.empty() ? std::string{"anonymous"} : client));
    return std::nullopt;
  }
  const std::uint64_t id =
      enqueue_locked(std::move(request), fp, std::move(on_complete), lock);
  lock.unlock();
  if (journal_ != nullptr) journal_->record_submit(id, journal_line);
  return id;
}

namespace {

/// Terminal answer for an id the service never issued.
Response not_found_response(std::uint64_t id) {
  Response r;
  r.id = id;
  r.status = RequestStatus::not_found;
  r.code = ErrorCode::not_found;
  r.error = "unknown request id " + std::to_string(id);
  return r;
}

Response evicted_response(std::uint64_t id) {
  Response r;
  r.id = id;
  r.status = RequestStatus::evicted;
  return r;
}

}  // namespace

Response EvalService::poll(std::uint64_t id) const {
  const std::scoped_lock lock{mutex_};
  const auto it = slots_.find(id);
  if (it != slots_.end()) return it->second->response;
  // Ids are only ever removed by completed-history eviction, so an
  // absent-but-assigned id means the request finished and its response
  // aged out before being collected; anything else was never issued.
  if (id < first_id_ || id >= next_id_) return not_found_response(id);
  return evicted_response(id);
}

Response EvalService::wait(std::uint64_t id) {
  std::unique_lock lock{mutex_};
  const auto it = slots_.find(id);
  if (it == slots_.end()) {
    if (id < first_id_ || id >= next_id_) return not_found_response(id);
    // See poll(): absent-but-assigned means evicted, not unknown.
    return evicted_response(id);
  }
  const SlotPtr slot = it->second;
  cv_done_.wait(lock, [&] {
    return slot->status == RequestStatus::done ||
           slot->status == RequestStatus::failed ||
           slot->status == RequestStatus::cancelled;
  });
  return slot->response;
}

bool EvalService::cancel(std::uint64_t id) {
  FiredCallbacks fired;
  {
    const std::scoped_lock lock{mutex_};
    const auto it = slots_.find(id);
    if (it == slots_.end() || it->second->status != RequestStatus::queued) {
      return false;
    }
    const SlotPtr slot = it->second;
    queue_.erase(std::find(queue_.begin(), queue_.end(), slot));
    obs_.queue_depth.set(static_cast<std::int64_t>(queue_.size()));
    dec_client_queued_locked(slot->request.client);
    finish_locked(slot, RequestStatus::cancelled, {}, ErrorCode::none, fired);
    // notify_all: with admission quotas, which waiter can proceed depends
    // on which client just left the queue.
    cv_space_.notify_all();
  }
  run_callbacks(fired);
  return true;
}

void EvalService::drain() {
  std::unique_lock lock{mutex_};
  cv_done_.wait(lock, [this] { return pending_ == 0; });
}

void EvalService::pause() {
  const std::scoped_lock lock{mutex_};
  paused_ = true;
}

void EvalService::resume() {
  {
    const std::scoped_lock lock{mutex_};
    paused_ = false;
  }
  cv_work_.notify_all();
}

EvalService::Totals EvalService::totals() const {
  const engine::CacheStats cache = cache_.stats();
  const engine::ShardStats shards = coordinator_.stats();
  const std::scoped_lock lock{mutex_};
  Totals t = totals_;
  t.table_builds = cache.builds + naive_builds_;
  t.table_memory_hits = cache.memory_hits;
  t.table_disk_hits = cache.disk_hits;
  t.shard_builds = shards.shards_built;
  t.shard_replays = shards.shards_replayed;
  return t;
}

HealthSummary EvalService::health() const {
  HealthSummary h;
  h.uptime_s =
      std::chrono::duration<double>{Clock::now() - started_at_}.count();
  h.queue_capacity = options_.queue_capacity;
  h.dispatchers = options_.dispatchers;
  h.threads = options_.threads;
  h.backend = std::string{ann::backends::backend_name(options_.backend)};
  h.eval_path =
      options_.eval_path == core::EvalPath::delta ? "delta" : "legacy";
  h.fuse_chips = options_.fuse_chips;
  h.max_batch = options_.max_batch;
  h.coalesce = options_.coalesce;
  h.cache_dir = options_.cache_dir;
  if (!options_.cache_dir.empty()) {
    // Directory scan + per-file validation: IO, done without the service
    // lock (this method takes mutex_ only for the queue depth).
    for (const engine::CachedTableInfo& info :
         engine::list_cached_tables(options_.cache_dir)) {
      ++h.cache_tables;
      h.cache_bytes += static_cast<std::uint64_t>(info.bytes);
    }
  }
  h.totals = totals();
  const std::scoped_lock lock{mutex_};
  h.queue_depth = queue_.size();
  return h;
}

void EvalService::dec_client_queued_locked(const std::string& client) {
  const auto it = client_queued_.find(client);
  if (it == client_queued_.end()) return;
  if (--it->second == 0) client_queued_.erase(it);
}

std::size_t EvalService::shed_expired_locked(FiredCallbacks& fired) {
  const Clock::time_point now = Clock::now();
  std::size_t shed = 0;
  for (auto it = queue_.begin(); it != queue_.end();) {
    const SlotPtr& slot = *it;
    if (!slot->deadline.has_value() || now < *slot->deadline) {
      ++it;
      continue;
    }
    const SlotPtr expired = slot;
    it = queue_.erase(it);
    dec_client_queued_locked(expired->request.client);
    ++totals_.deadline_expired;
    obs_.deadline_expired.add(1);
    finish_locked(expired, RequestStatus::failed,
                  "deadline of " +
                      std::to_string(expired->request.deadline_ms) +
                      "ms expired before dispatch",
                  ErrorCode::deadline_exceeded, fired);
    ++shed;
  }
  if (shed > 0) {
    obs_.queue_depth.set(static_cast<std::int64_t>(queue_.size()));
  }
  return shed;
}

std::vector<EvalService::SlotPtr> EvalService::next_batch() {
  std::unique_lock lock{mutex_};
  FiredCallbacks fired;
  for (;;) {
    cv_work_.wait(lock, [this] {
      return stop_ || (!paused_ && !queue_.empty());
    });
    if (queue_.empty()) return {};  // stop_ with nothing left
    // Shed requests whose deadline already passed before they waste a
    // dispatch (and a table build) on a result nobody is waiting for.
    if (shed_expired_locked(fired) == 0) break;
    cv_space_.notify_all();
    lock.unlock();
    run_callbacks(fired);
    lock.lock();
  }

  // Highest priority wins. Among equals: FIFO (stable first occurrence),
  // unless admission control is on -- then the client with the least
  // weighted dispatch credit goes first, so a flood from one client cannot
  // starve a peer at the same priority.
  std::size_t best = 0;
  if (!options_.admission.enabled) {
    for (std::size_t i = 1; i < queue_.size(); ++i) {
      if (queue_[i]->request.priority > queue_[best]->request.priority) {
        best = i;
      }
    }
  } else {
    int top = queue_[0]->request.priority;
    for (const SlotPtr& slot : queue_) {
      top = std::max(top, slot->request.priority);
    }
    double best_credit = 0.0;
    bool found = false;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      if (queue_[i]->request.priority != top) continue;
      const auto it = client_dispatched_.find(queue_[i]->request.client);
      const double credit =
          it != client_dispatched_.end() ? it->second : 0.0;
      if (!found || credit < best_credit) {
        best = i;
        best_credit = credit;
        found = true;
      }
    }
  }
  std::vector<SlotPtr> batch{queue_[best]};
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));

  // Coalescing: draft every queued request that shares the leader's table
  // fingerprint (regardless of priority -- they ride for free on work that
  // is about to happen anyway). table_info and stats requests are answered
  // alone (a stats scrape's fp is 0, so two scrapes must not fuse).
  // table_shard requests only fuse with other table_shard requests: their
  // fp is the shard-extended fingerprint, so a fused shard batch is a set
  // of identical shard requests answered by one build.
  if (options_.coalesce &&
      batch[0]->request.kind != RequestKind::table_info &&
      batch[0]->request.kind != RequestKind::stats) {
    const bool shard_leader =
        batch[0]->request.kind == RequestKind::table_shard;
    for (auto it = queue_.begin();
         it != queue_.end() && batch.size() < options_.max_batch;) {
      if ((*it)->fp == batch[0]->fp &&
          (*it)->request.kind != RequestKind::table_info &&
          (*it)->request.kind != RequestKind::stats &&
          ((*it)->request.kind == RequestKind::table_shard) == shard_leader) {
        batch.push_back(*it);
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  }
  obs_.queue_depth.set(static_cast<std::int64_t>(queue_.size()));

  const std::uint64_t seq = ++dispatch_seq_;
  ++totals_.batches;
  obs_.batches.add(1);
  const Clock::time_point now = Clock::now();
  for (const SlotPtr& slot : batch) {
    slot->status = RequestStatus::running;
    slot->response.status = RequestStatus::running;
    slot->response.stats.queue_ms = ms_between(slot->submitted_at, now);
    slot->response.stats.batch_size = batch.size();
    slot->response.stats.dispatch_seq = seq;
    dec_client_queued_locked(slot->request.client);
    if (options_.admission.enabled) {
      // Weighted dispatch credit: a weight-w client pays 1/w per request,
      // so the least-credit pick serves clients proportionally to weight.
      client_dispatched_[slot->request.client] +=
          1.0 / client_weight(slot->request.client);
    }
  }
  cv_space_.notify_all();
  return batch;
}

void EvalService::finish_locked(const SlotPtr& slot, RequestStatus status,
                                std::string error, ErrorCode code,
                                FiredCallbacks& fired) {
  if (slot->status == RequestStatus::done ||
      slot->status == RequestStatus::failed ||
      slot->status == RequestStatus::cancelled) {
    return;  // already terminal
  }
  slot->status = status;
  slot->response.status = status;
  slot->response.error = std::move(error);
  slot->response.code = code;
  slot->response.stats.wall_ms =
      ms_between(slot->submitted_at, Clock::now());
  switch (status) {
    case RequestStatus::failed:
      ++totals_.failed;
      obs_.failed.add(1);
      break;
    case RequestStatus::cancelled:
      ++totals_.cancelled;
      obs_.cancelled.add(1);
      break;
    default:
      ++totals_.completed;
      obs_.completed.add(1);
      break;
  }
  // Headline metric counts only requests that actually benefited: riders
  // that failed (bad config, eval error) shared a table but got nothing.
  if (status == RequestStatus::done && slot->response.stats.coalesced) {
    ++totals_.coalesced_requests;
    obs_.coalesced.add(1);
  }
  // Phase histograms record dispatched work requests exactly once, at
  // their terminal transition; stats scrapes are excluded so a scrape
  // never perturbs the distributions it reports.
  if ((status == RequestStatus::done || status == RequestStatus::failed) &&
      slot->request.kind != RequestKind::stats) {
    const RequestStats& s = slot->response.stats;
    obs_.queue_us.record(ms_to_us(s.queue_ms));
    obs_.table_us.record(ms_to_us(s.table_ms));
    obs_.run_us.record(ms_to_us(s.run_ms));
    obs_.wall_us.record(ms_to_us(s.wall_ms));
  }
  // Feed the retry-after estimator from completed work requests only (a
  // stats scrape's wall time says nothing about build cost).
  if (status == RequestStatus::done &&
      slot->request.kind != RequestKind::stats) {
    const double wall = slot->response.stats.wall_ms;
    ewma_wall_ms_ =
        ewma_wall_ms_ == 0.0 ? wall : 0.9 * ewma_wall_ms_ + 0.1 * wall;
  }
  // Arm the journal terminal record (written by run_callbacks, off-lock).
  // Shutdown cancellations are deliberately NOT journaled: a request the
  // dying service threw away must replay after restart.
  if (journal_ != nullptr && options_.journal.record_terminals &&
      !(stop_ && status == RequestStatus::cancelled)) {
    fired.terminals.emplace_back(slot->id, status);
  }
  --pending_;

  // Bound the retained-response history: evict the oldest terminal slots.
  // A concurrent wait() on an evicted slot still completes -- it holds its
  // own SlotPtr -- but poll() forgets the id.
  finished_.push_back(slot->id);
  while (finished_.size() > options_.completed_history) {
    slots_.erase(finished_.front());
    finished_.pop_front();
  }
  if (slot->on_complete) {
    fired.callbacks.emplace_back(std::move(slot->on_complete),
                                 slot->response);
    slot->on_complete = nullptr;
  }
  cv_done_.notify_all();
}

void EvalService::answer_table_info(const SlotPtr& slot) {
  // Gather outside the service lock (load_csv is IO), publish under it.
  const std::string csv = cache_.csv_path(slot->fp);
  const bool in_memory = cache_.in_memory(slot->fp);
  std::size_t rows = 0;
  if (!csv.empty()) {
    if (const auto table = mc::FailureTable::load_csv(csv, slot->fp)) {
      rows = table->rows().size();
    }
  }
  FiredCallbacks fired;
  {
    const std::scoped_lock lock{mutex_};
    Response& r = slot->response;
    r.table_fingerprint = slot->fp;
    r.table_csv = csv;
    r.table_in_memory = in_memory;
    r.table_rows = rows;
    finish_locked(slot, RequestStatus::done, {}, ErrorCode::none, fired);
  }
  run_callbacks(fired);
}

void EvalService::answer_stats(const SlotPtr& slot) {
  // Gather outside the service lock: the cache-dir listing is IO and the
  // registry snapshot walks every instrument. Both are taken BEFORE this
  // request's own terminal transition, so a scrape never counts itself as
  // completed (its submit does appear in `submitted`).
  HealthSummary h = health();
  std::vector<obs::MetricSnapshot> metrics = obs::Registry::global().snapshot();
  FiredCallbacks fired;
  {
    const std::scoped_lock lock{mutex_};
    slot->response.health = std::move(h);
    slot->response.metrics = std::move(metrics);
    finish_locked(slot, RequestStatus::done, {}, ErrorCode::none, fired);
  }
  run_callbacks(fired);
}

void EvalService::answer_table_shard(const std::vector<SlotPtr>& batch) {
  const Request& req = batch[0]->request;

  // Chaos harness hooks (docs/robustness.md): `serve.shard_crash` fails the
  // batch through the normal dispatcher catch-all (exercising fleet
  // retries); `serve.shard_crash_hard` kills the worker process outright
  // mid-shard, the way a real crash would.
  util::FaultInjector& faults = util::FaultInjector::instance();
  if (faults.armed()) {
    if (faults.should_fire("serve.shard_crash_hard")) {
      std::fprintf(stderr,
                   "[fault] serve.shard_crash_hard: aborting mid-shard\n");
      std::abort();
    }
    if (faults.should_fire("serve.shard_crash")) {
      throw std::runtime_error{
          "injected fault: worker crashed mid-shard (serve.shard_crash)"};
    }
  }

  const engine::ShardPlan plan = shard_plan(req);

  // The codec guarantees shard < shard_count, but the planner clamps the
  // count to the grid size, so an oversharded request can still name a
  // shard that does not exist for this service's grid.
  if (req.shard >= plan.shard_count()) {
    const std::string error =
        "shard " + std::to_string(req.shard) + " out of range: the " +
        std::to_string(plan.spec.vdd_grid.size()) +
        "-point voltage grid yields " + std::to_string(plan.shard_count()) +
        " shards";
    FiredCallbacks fired;
    {
      const std::scoped_lock lock{mutex_};
      for (const SlotPtr& slot : batch) {
        finish_locked(slot, RequestStatus::failed, error,
                      ErrorCode::shard_out_of_range, fired);
      }
    }
    run_callbacks(fired);
    return;
  }

  const mc::FailureAnalyzer analyzer{criteria_, sampler_,
                                     analyzer_options(req)};
  const Clock::time_point t0 = Clock::now();
  bool replayed = false;
  const mc::FailureTable shard =
      coordinator_.build_shard(plan, req.shard, analyzer, false, &replayed);
  const double table_ms = ms_between(t0, Clock::now());

  const engine::TableShard& planned = plan.shards[req.shard];
  const std::string csv =
      cache_.shard_csv_path(plan.table_fingerprint, req.shard,
                            plan.shard_count());
  // The whole point of a table_shard request is the persisted artifact; a
  // swallowed save failure (unwritable/full cache dir) must surface as a
  // failed request, not a "done" that shard-merge later contradicts.
  const bool persisted = csv.empty() || std::filesystem::exists(csv);

  FiredCallbacks fired;
  {
    const std::scoped_lock lock{mutex_};
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const SlotPtr& slot = batch[i];
      Response& r = slot->response;
      r.table_fingerprint = plan.table_fingerprint;
      r.shard_index = req.shard;
      r.shard_count = plan.shard_count();
      r.shard_fingerprint = planned.fingerprint;
      r.shard_samples = shard.total_samples();
      r.shard_ci_half_width = shard.max_ci_half_width();
      r.table_csv = csv;
      r.table_rows = shard.rows().size();
      r.table_in_memory = false;  // shards are disk artifacts, never memoized
      r.stats.table_ms = table_ms;
      r.stats.table_source =
          replayed ? engine::TableSource::disk : engine::TableSource::built;
      r.stats.coalesced = i > 0 || replayed;
      if (slot->request.inline_rows) r.shard_rows = shard.rows();
      if (!persisted) {
        r.table_csv.clear();
        finish_locked(slot, RequestStatus::failed,
                      "shard built but its CSV could not be persisted to " +
                          csv,
                      ErrorCode::internal, fired);
        continue;
      }
      finish_locked(slot, RequestStatus::done, {}, ErrorCode::none, fired);
    }
  }
  run_callbacks(fired);
}

void EvalService::execute_batch(const std::vector<SlotPtr>& batch) {
  // Per-batch phase breakdown into the registry (serve.batch.{table,run,
  // publish}_us); the per-request share lands in serve.request.* at the
  // terminal transition (finish_locked).
  obs::Span span{"serve.batch"};
  // Acquire the (shared) failure table once for the whole batch.
  const mc::FailureAnalyzer analyzer{criteria_, sampler_,
                                     analyzer_options(batch[0]->request)};
  const engine::TableSpec spec = table_spec(batch[0]->request);

  const Clock::time_point t0 = Clock::now();
  engine::TableSource source = engine::TableSource::built;
  const mc::FailureTable* table = nullptr;
  mc::FailureTable private_table;  // naive mode: one build per dispatch
  if (options_.coalesce) {
    table = &cache_.get(spec, analyzer, false, &source);
  } else {
    private_table =
        mc::FailureTable::build(analyzer, spec.vdd_grid, spec.seed);
    table = &private_table;
    const std::scoped_lock lock{mutex_};
    ++naive_builds_;
  }
  const double table_ms = ms_between(t0, Clock::now());
  span.mark("table");

  // Fuse every request's (config x vdd) grid into one flat job list;
  // requests whose config cannot bind to the served network fail alone.
  std::vector<engine::BatchPoint> points;
  struct Range {
    std::size_t begin = 0;
    std::size_t count = 0;
    std::string error;
  };
  std::vector<Range> ranges(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Request& req = batch[i]->request;
    ranges[i].begin = points.size();
    try {
      core::EvalOptions eval;
      eval.chips = req.chips != 0 ? req.chips : options_.default_chips;
      // Re-checked here (the codec already rejects this) so a hostile
      // direct-API request fails alone instead of sinking its batch.
      if (eval.chips > kMaxChipsPerRequest) {
        throw std::invalid_argument{
            "chips " + std::to_string(eval.chips) + " exceeds the limit of " +
            std::to_string(kMaxChipsPerRequest)};
      }
      eval.seed =
          req.eval_seed != 0 ? req.eval_seed : options_.default_eval_seed;
      eval.path = options_.eval_path;
      eval.backend = options_.backend;
      eval.fuse_chips = options_.fuse_chips;
      for (const ConfigSpec& cfg : req.configs) {
        const core::MemoryConfig config = cfg.materialize(bank_words_);
        for (const double vdd : req.vdds) {
          points.push_back(engine::BatchPoint{config, vdd, table, eval});
        }
      }
      ranges[i].count = points.size() - ranges[i].begin;
    } catch (const std::exception& e) {
      points.resize(ranges[i].begin);  // drop this request's partial grid
      ranges[i].error = e.what();
    }
  }

  const Clock::time_point t1 = Clock::now();
  std::vector<core::AccuracyResult> results;
  std::string batch_error;
  try {
    results = runner_.run(qnet_,
                          engine::EvalJob::batch(std::move(points))
                              .with_threads(options_.threads)
                              .with_network_fingerprint(qnet_fp_),
                          test_);
  } catch (const std::exception& e) {
    batch_error = e.what();
  }
  const double run_ms = ms_between(t1, Clock::now());
  span.mark("run");

  // Publish: responses are only ever mutated under the service lock, so
  // poll()/wait() snapshots cannot observe a response mid-write.
  FiredCallbacks fired;
  {
    const std::scoped_lock lock{mutex_};
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const SlotPtr& slot = batch[i];
      RequestStats& stats = slot->response.stats;
      stats.table_ms = table_ms;
      stats.run_ms = run_ms;
      stats.table_source = source;
      // A request "coalesced" when it reused table work someone else paid
      // for: any batch rider, or a leader served from memory/disk.
      stats.coalesced = i > 0 || source != engine::TableSource::built;
      slot->response.table_in_memory = options_.coalesce;  // memoized by get()

      if (!ranges[i].error.empty()) {
        finish_locked(slot, RequestStatus::failed, std::move(ranges[i].error),
                      ErrorCode::bad_request, fired);
        continue;
      }
      if (!batch_error.empty()) {
        finish_locked(slot, RequestStatus::failed, batch_error,
                      ErrorCode::internal, fired);
        continue;
      }
      const Request& req = slot->request;
      std::vector<PointResult>& out = slot->response.results;
      out.clear();
      out.reserve(ranges[i].count);
      std::size_t j = ranges[i].begin;
      for (const ConfigSpec& cfg : req.configs) {
        for (const double vdd : req.vdds) {
          out.push_back(PointResult{cfg.str(), vdd, std::move(results[j])});
          ++j;
        }
      }
      finish_locked(slot, RequestStatus::done, {}, ErrorCode::none, fired);
    }
  }
  span.mark("publish");
  run_callbacks(fired);
}

void EvalService::dispatcher_loop() {
  for (;;) {
    const std::vector<SlotPtr> batch = next_batch();
    if (batch.empty()) return;  // shutdown
    try {
      if (batch[0]->request.kind == RequestKind::table_info) {
        answer_table_info(batch[0]);
      } else if (batch[0]->request.kind == RequestKind::stats) {
        answer_stats(batch[0]);
      } else if (batch[0]->request.kind == RequestKind::table_shard) {
        answer_table_shard(batch);
      } else {
        execute_batch(batch);
      }
    } catch (const std::exception& e) {
      // Table build / IO failure: everything in the batch fails with the
      // same reason; the service itself keeps running.
      FiredCallbacks fired;
      {
        const std::scoped_lock lock{mutex_};
        for (const SlotPtr& slot : batch) {
          finish_locked(slot, RequestStatus::failed, e.what(),
                        ErrorCode::internal, fired);
        }
      }
      run_callbacks(fired);
    }
  }
}

}  // namespace hynapse::serve
