#include "serve/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "util/fault_injection.hpp"

namespace hynapse::serve {

namespace {

/// Process-wide transport counters (all TcpServers in a process share
/// them; the per-server view is TcpServer::stats()).
struct NetInstruments {
  obs::Counter& connections;
  obs::Counter& oversize_lines;
  obs::Gauge& active;

  static NetInstruments& get() {
    static NetInstruments* instruments = [] {
      obs::Registry& r = obs::Registry::global();
      return new NetInstruments{
          r.counter("net.connections"),
          r.counter("net.oversize_lines"),
          r.gauge("net.active_connections"),
      };
    }();
    return *instruments;
  }
};

using Clock = std::chrono::steady_clock;

/// Remaining milliseconds until `deadline`, clamped for poll().
int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  if (left.count() <= 0) return 0;
  if (left.count() > 60'000) return 60'000;
  return static_cast<int>(left.count());
}

/// Blocking full-buffer send; MSG_NOSIGNAL so a dead peer yields EPIPE
/// instead of killing the process.
bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// TcpServer

struct TcpServer::Connection {
  int fd = -1;
  std::unique_ptr<Session> session;
  std::mutex write_mutex;  ///< serializes response lines onto the socket
  std::thread reader;
  std::atomic<bool> draining{false};  ///< stop(): EOF is expected, not a drop
  std::atomic<bool> done{false};      ///< reader exited; ready to reap
  bool oversize = false;              ///< poisoned by an over-long line
  /// Session stats already folded into absorbed_ (guarded by the server
  /// mutex). Set by the reader thread on its way out -- once the session
  /// is closed its stats are final -- so a stats() call during teardown
  /// cannot undercount; reap_locked then skips the re-absorb.
  bool stats_absorbed = false;
};

TcpServer::TcpServer(EvalService& service, TcpServerOptions options)
    : service_{service}, options_{std::move(options)} {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error{"TcpServer: socket() failed: " +
                             std::string{std::strerror(errno)}};
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    throw std::runtime_error{"TcpServer: bad host address \"" +
                             options_.host + "\" (numeric IPv4 only)"};
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(listen_fd_, options_.backlog) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    throw std::runtime_error{"TcpServer: cannot listen on " + options_.host +
                             ":" + std::to_string(options_.port) + ": " +
                             reason};
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  acceptor_ = std::thread{[this] { accept_loop(); }};
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::accept_loop() {
  for (;;) {
    {
      const std::scoped_lock lock{mutex_};
      if (stopping_) return;
      reap_locked();
    }
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) continue;  // timeout / EINTR: re-check stopping_
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    // Failpoints for chaos testing: `net.accept_delay@ms` stalls the
    // accept (slow handshake), `net.drop_accept` hangs up immediately
    // (a peer that connected and vanished before speaking).
    if (util::FaultInjector::instance().armed()) {
      util::FaultInjector& inject = util::FaultInjector::instance();
      if (inject.should_fire("net.accept_delay")) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>{
            inject.arg("net.accept_delay", 50.0)});
      }
      if (inject.should_fire("net.drop_accept")) {
        ::close(fd);
        continue;
      }
    }

    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    // The sink writes straight to the socket. A send failure means the
    // peer vanished; the reader notices the same thing and closes the
    // session, so the sink itself stays fire-and-forget.
    const std::weak_ptr<Connection> weak = conn;
    conn->session = std::make_unique<Session>(
        service_,
        [weak](std::string_view line) {
          const std::shared_ptr<Connection> c = weak.lock();
          if (!c) return;
          const std::scoped_lock wlock{c->write_mutex};
          std::string framed{line};
          framed.push_back('\n');
          // `net.truncate_frame` sends only half the frame then half-closes:
          // the torn-line-on-the-wire case clients must survive (their
          // framing drops the unterminated fragment).
          if (util::FaultInjector::instance().armed() &&
              util::FaultInjector::instance().should_fire(
                  "net.truncate_frame")) {
            (void)send_all(c->fd, framed.data(), framed.size() / 2);
            ::shutdown(c->fd, SHUT_WR);
            return;
          }
          (void)send_all(c->fd, framed.data(), framed.size());
        },
        options_.session);

    {
      const std::scoped_lock lock{mutex_};
      if (stopping_) {
        // Lost the race with stop(): refuse politely.
        conn->session->close();
        ::close(fd);
        continue;
      }
      ++absorbed_.connections;
      connections_.push_back(conn);
      NetInstruments::get().connections.add(1);
      NetInstruments::get().active.add(1);
    }
    conn->reader = std::thread{[this, conn] { reader_loop(conn); }};
  }
}

void TcpServer::reader_loop(const std::shared_ptr<Connection>& conn) {
  std::string buffer;
  char chunk[4096];
  bool clean_eof = false;
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
    if (n == 0) {
      clean_eof = true;
      break;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // ECONNRESET and friends: treat as a drop
    }
    buffer.append(chunk, static_cast<std::size_t>(n));

    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      std::string_view line{buffer.data() + start, nl - start};
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (!line.empty()) conn->session->handle_line(line);
      start = nl + 1;
    }
    buffer.erase(0, start);

    // `net.drop_connection` severs the socket mid-conversation (counted
    // per received chunk): the server treats it exactly like a vanished
    // peer -- session close, connection-scoped cancellation.
    if (util::FaultInjector::instance().armed() &&
        util::FaultInjector::instance().should_fire("net.drop_connection")) {
      ::shutdown(conn->fd, SHUT_RDWR);
      break;
    }

    if (buffer.size() > options_.max_line_bytes) {
      // Poisoned framing: answer once, then hang up (which cancels).
      Response err;
      err.status = RequestStatus::failed;
      err.code = ErrorCode::bad_request;
      err.error = "request line exceeds " +
                  std::to_string(options_.max_line_bytes) + " bytes";
      const std::string framed = format_response(err) + "\n";
      {
        const std::scoped_lock wlock{conn->write_mutex};
        (void)send_all(conn->fd, framed.data(), framed.size());
      }
      conn->oversize = true;
      NetInstruments::get().oversize_lines.add(1);
      break;
    }
  }

  // A trailing fragment without its newline never parsed; that is the
  // protocol's truncation semantics (tested): no newline, no request.
  if (conn->draining.load() && clean_eof) {
    // stop() owns the drain; nothing to cancel. The session stays live
    // (responses are still streaming), so its stats are NOT final here --
    // stop() absorbs them through reap_locked after the drain.
  } else {
    // The peer went away (or poisoned the stream) with the conversation
    // possibly unfinished: connection-scoped cancellation. Queued requests
    // die; running ones finish unobserved. In the draining-but-died case
    // this also keeps stop() from waiting on work nobody will read.
    conn->session->close();
    // close() made the stats final (no sink, nothing left to cancel):
    // fold them into absorbed_ NOW, before this thread exits, so a
    // concurrent stats() never undercounts the teardown window between
    // the reader finishing and the reaper running.
    const std::scoped_lock lock{mutex_};
    absorb_stats_locked(*conn);
  }
  // done is set after the absorb released mutex_, so reap_locked (which
  // joins only done readers while holding mutex_) cannot deadlock.
  conn->done.store(true);
}

void TcpServer::absorb_stats_locked(Connection& conn) {
  if (conn.stats_absorbed) return;
  conn.stats_absorbed = true;
  const Session::Stats s = conn.session->stats();
  absorbed_.lines += s.lines;
  absorbed_.responses += s.responses;
  absorbed_.parse_errors += s.parse_errors;
  // Sessions closed by a graceful stop() drained first, so anything a
  // close() actually cancelled traces back to a vanished peer.
  absorbed_.cancelled_on_disconnect += s.cancelled_on_close;
  if (conn.oversize) ++absorbed_.oversize_lines;
}

void TcpServer::reap_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    const std::shared_ptr<Connection>& conn = *it;
    if (!conn->done.load()) {
      ++it;
      continue;
    }
    if (conn->reader.joinable()) conn->reader.join();
    absorb_stats_locked(*conn);
    ::close(conn->fd);
    it = connections_.erase(it);
    NetInstruments::get().active.add(-1);
  }
}

void TcpServer::stop() {
  {
    const std::scoped_lock lock{mutex_};
    if (stopped_) return;
    stopping_ = true;
  }
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // Graceful drain: half-close each connection's read side so its reader
  // sees EOF and submits nothing more, wait for the session's in-flight
  // work to finish (responses keep streaming through the still-open write
  // side), then close.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    const std::scoped_lock lock{mutex_};
    conns = connections_;
  }
  for (const auto& conn : conns) {
    conn->draining.store(true);
    ::shutdown(conn->fd, SHUT_RD);
  }
  for (const auto& conn : conns) {
    conn->session->drain();
    if (conn->reader.joinable()) conn->reader.join();
    conn->done.store(true);
    conn->session->close();
    ::shutdown(conn->fd, SHUT_WR);
  }
  {
    const std::scoped_lock lock{mutex_};
    reap_locked();
    stopped_ = true;
  }
}

TcpServer::Stats TcpServer::stats() const {
  const std::scoped_lock lock{mutex_};
  Stats s = absorbed_;
  for (const auto& conn : connections_) {
    // A connection whose reader already folded its final stats into
    // absorbed_ must not be summed again (or counted as active -- its
    // socket conversation is over, it just awaits the reaper).
    if (conn->stats_absorbed) continue;
    const Session::Stats cs = conn->session->stats();
    s.lines += cs.lines;
    s.responses += cs.responses;
    s.parse_errors += cs.parse_errors;
    s.cancelled_on_disconnect += cs.cancelled_on_close;
    ++s.active;
  }
  return s;
}

// ---------------------------------------------------------------------------
// TcpClient

TcpClient::~TcpClient() { close(); }

TcpClient::TcpClient(TcpClient&& other) noexcept
    : fd_{other.fd_}, buffer_{std::move(other.buffer_)} {
  other.fd_ = -1;
}

TcpClient& TcpClient::operator=(TcpClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

void TcpClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

std::optional<TcpClient> TcpClient::connect(const std::string& host,
                                            std::uint16_t port,
                                            double timeout_s) {
  // `net.connect_fail` simulates an unreachable endpoint -- exercised by
  // the fleet coordinator's retry/backoff path.
  if (util::FaultInjector::instance().armed() &&
      util::FaultInjector::instance().should_fire("net.connect_fail")) {
    return std::nullopt;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return std::nullopt;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;

  // Non-blocking connect bounded by the deadline, then back to blocking.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return std::nullopt;
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>{timeout_s});
    int ready = 0;
    do {
      ready = ::poll(&pfd, 1, remaining_ms(deadline));
    } while (ready < 0 && errno == EINTR && Clock::now() < deadline);
    int err = 0;
    socklen_t len = sizeof err;
    if (ready <= 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return std::nullopt;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return TcpClient{fd};
}

bool TcpClient::send_line(std::string_view line, double timeout_s) {
  if (fd_ < 0) return false;
  std::string framed{line};
  framed.push_back('\n');

  // Deadline-bounded send: the socket goes non-blocking for the duration
  // so a peer that stopped reading (full kernel buffers) cannot wedge the
  // caller forever -- partial sends resume where they left off, EINTR
  // retries, and the deadline fires even mid-frame.
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>{timeout_s});
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  const char* data = framed.data();
  std::size_t size = framed.size();
  bool ok = true;
  while (size > 0) {
    const ssize_t n = ::send(fd_, data, size, MSG_NOSIGNAL);
    if (n > 0) {
      data += n;
      size -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd_, POLLOUT, 0};
      const int ms = remaining_ms(deadline);
      const int ready = ::poll(&pfd, 1, ms);
      if (ready < 0 && errno == EINTR) continue;
      if (ready < 0 || ms == 0) {
        ok = false;  // poll error, or the deadline expired
        break;
      }
      continue;
    }
    ok = false;  // EPIPE / ECONNRESET: the peer is gone
    break;
  }
  ::fcntl(fd_, F_SETFL, flags);
  return ok;
}

std::optional<std::string> TcpClient::read_line(double timeout_s) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>{timeout_s});
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (fd_ < 0) return std::nullopt;

    pollfd pfd{fd_, POLLIN, 0};
    const int ms = remaining_ms(deadline);
    const int ready = ::poll(&pfd, 1, ms);
    if (ready < 0 && errno == EINTR) continue;
    if (ready < 0) return std::nullopt;  // persistent poll error, not EINTR
    if (ready == 0 && ms == 0) return std::nullopt;  // deadline
    if (ready == 0) continue;

    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n == 0) return std::nullopt;  // EOF; a partial line stays unframed
    if (n < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace hynapse::serve
