#include "serve/protocol.hpp"

#include <charconv>
#include <cmath>
#include <stdexcept>

#include "serve/json.hpp"

namespace hynapse::serve {

namespace {

bool parse_int(std::string_view text, int& out) {
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && end == text.data() + text.size();
}

/// Reads a non-negative integer-valued JSON number. Returns false (and
/// reports) on fractions, negatives, out-of-range values and non-numbers.
/// The bound is 2^53, not 2^64: JSON numbers travel as doubles, and above
/// the mantissa limit adjacent integers collapse -- two distinct seeds
/// would silently map to the same value (and >= 2^64 the cast itself is
/// undefined behavior). Rejecting makes the loss explicit.
bool read_u64(const Json& v, std::string_view key, std::uint64_t& out,
              RequestError* error) {
  constexpr double kTwoPow53 = 9007199254740992.0;
  const double d = v.is_number() ? v.as_number() : -1.0;
  if (!(d >= 0.0) || d != std::floor(d) || d > kTwoPow53) {
    if (error != nullptr) {
      error->code = ErrorCode::bad_request;
      error->message = "\"" + std::string{key} +
                       "\" must be a non-negative integer <= 2^53";
    }
    return false;
  }
  out = static_cast<std::uint64_t>(d);
  return true;
}

Json accuracy_json(const PointResult& point, bool per_chip) {
  Json j = Json::object();
  j.set("config", point.config);
  j.set("vdd", point.vdd);
  j.set("mean", point.accuracy.mean);
  j.set("stddev", point.accuracy.stddev);
  j.set("chips", static_cast<double>(point.accuracy.per_chip.size()));
  if (per_chip) {
    Json chips = Json::array();
    for (const double a : point.accuracy.per_chip) chips.push_back(a);
    j.set("per_chip", std::move(chips));
  }
  return j;
}

std::optional<RequestStatus> parse_status(std::string_view text) noexcept {
  if (text == "queued") return RequestStatus::queued;
  if (text == "running") return RequestStatus::running;
  if (text == "done") return RequestStatus::done;
  if (text == "failed") return RequestStatus::failed;
  if (text == "cancelled") return RequestStatus::cancelled;
  if (text == "evicted") return RequestStatus::evicted;
  if (text == "not_found") return RequestStatus::not_found;
  return std::nullopt;
}

std::optional<engine::TableSource> parse_table_source(
    std::string_view text) noexcept {
  if (text == "memory") return engine::TableSource::memory;
  if (text == "disk") return engine::TableSource::disk;
  if (text == "built") return engine::TableSource::built;
  return std::nullopt;
}

/// Fingerprints travel as the 16-hex-digit string of fingerprint_hex().
bool parse_fingerprint(const Json* v, std::uint64_t& out) {
  if (v == nullptr || !v->is_string()) return false;
  const std::string& s = v->as_string();
  if (s.empty() || s.size() > 16) return false;
  std::uint64_t value = 0;
  for (const char c : s) {
    value <<= 4;
    if (c >= '0' && c <= '9') value |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    else
      return false;
  }
  out = value;
  return true;
}

/// Parses the "adaptive" request object into a policy with enabled=true.
/// Mirrors the top-level request discipline: unknown keys are rejected, and
/// every value is validated where a bad value would otherwise be silently
/// clamped server-side (the policy is fingerprinted verbatim, so two
/// requests differing only in a junk field must not coalesce).
bool parse_adaptive(const Json& value, mc::AdaptivePolicy& out,
                    RequestError* error) {
  const auto fail = [&](std::string why) {
    if (error != nullptr) {
      error->code = ErrorCode::bad_request;
      error->message = std::move(why);
    }
    return false;
  };
  if (!value.is_object()) return fail("\"adaptive\" must be an object");
  mc::AdaptivePolicy p;
  p.enabled = true;
  for (const auto& [key, v] : value.members()) {
    if (key == "rel_target" || key == "abs_target") {
      const double d = v.is_number() ? v.as_number() : -1.0;
      if (!(d >= 0.0) || !std::isfinite(d)) {
        return fail("\"adaptive." + key + "\" must be a non-negative number");
      }
      (key == "rel_target" ? p.rel_target : p.abs_target) = d;
    } else if (key == "z") {
      const double d = v.is_number() ? v.as_number() : -1.0;
      if (!(d > 0.0) || !std::isfinite(d)) {
        return fail("\"adaptive.z\" must be a positive number");
      }
      p.z = d;
    } else if (key == "interval") {
      if (v.is_string() && v.as_string() == "wilson") {
        p.interval = mc::IntervalKind::wilson;
      } else if (v.is_string() && v.as_string() == "clopper_pearson") {
        p.interval = mc::IntervalKind::clopper_pearson;
      } else {
        return fail(
            "\"adaptive.interval\" must be \"wilson\" or \"clopper_pearson\"");
      }
    } else if (key == "batch_growth") {
      const double d = v.is_number() ? v.as_number() : 0.0;
      if (!(d >= 1.0) || !std::isfinite(d)) {
        return fail("\"adaptive.batch_growth\" must be a number >= 1");
      }
      p.batch_growth = d;
    } else if (key == "batch_samples" || key == "min_samples" ||
               key == "max_samples" || key == "tail_escape_samples" ||
               key == "max_is_samples") {
      std::uint64_t n = 0;
      if (!read_u64(v, "adaptive." + std::string{key}, n, error)) return false;
      if (key == "batch_samples") p.batch_samples = n;
      else if (key == "min_samples") p.min_samples = n;
      else if (key == "max_samples") p.max_samples = n;
      else if (key == "tail_escape_samples") p.tail_escape_samples = n;
      else p.max_is_samples = n;
    } else {
      return fail("unknown field \"adaptive." + key + "\"");
    }
  }
  out = p;
  return true;
}

/// Full-policy rendering: every field is emitted (not just non-defaults) so
/// parse_request(format_request(r)) reproduces the policy -- and therefore
/// the fingerprint -- exactly.
Json adaptive_json(const mc::AdaptivePolicy& p) {
  Json j = Json::object();
  j.set("rel_target", p.rel_target);
  j.set("abs_target", p.abs_target);
  j.set("z", p.z);
  j.set("interval", p.interval == mc::IntervalKind::clopper_pearson
                        ? "clopper_pearson"
                        : "wilson");
  j.set("batch_samples", static_cast<double>(p.batch_samples));
  j.set("batch_growth", p.batch_growth);
  j.set("min_samples", static_cast<double>(p.min_samples));
  j.set("max_samples", static_cast<double>(p.max_samples));
  j.set("tail_escape_samples", static_cast<double>(p.tail_escape_samples));
  j.set("max_is_samples", static_cast<double>(p.max_is_samples));
  return j;
}

}  // namespace

std::optional<ConfigSpec> ConfigSpec::parse(std::string_view text) {
  ConfigSpec spec;
  if (text == "all6t") {
    spec.kind = Kind::all_6t;
    return spec;
  }
  if (text.rfind("hybrid", 0) == 0) {
    int n = 0;
    if (!parse_int(text.substr(6), n) || n < 0 || n > 64) return std::nullopt;
    spec.kind = Kind::uniform;
    spec.n_msb = n;
    return spec;
  }
  if (text.rfind("perlayer:", 0) == 0) {
    spec.kind = Kind::per_layer;
    std::string_view rest = text.substr(9);
    while (!rest.empty()) {
      const std::size_t comma = rest.find(',');
      const std::string_view field = rest.substr(0, comma);
      int n = 0;
      if (!parse_int(field, n) || n < 0 || n > 64) return std::nullopt;
      spec.msbs.push_back(n);
      if (comma == std::string_view::npos) break;
      rest.remove_prefix(comma + 1);
      if (rest.empty()) return std::nullopt;  // trailing comma
    }
    if (spec.msbs.empty()) return std::nullopt;
    return spec;
  }
  return std::nullopt;
}

std::string ConfigSpec::str() const {
  switch (kind) {
    case Kind::all_6t:
      return "all6t";
    case Kind::uniform:
      return "hybrid" + std::to_string(n_msb);
    case Kind::per_layer: {
      std::string out = "perlayer:";
      for (std::size_t i = 0; i < msbs.size(); ++i) {
        if (i != 0) out.push_back(',');
        out += std::to_string(msbs[i]);
      }
      return out;
    }
  }
  return {};
}

core::MemoryConfig ConfigSpec::materialize(
    std::span<const std::size_t> bank_words) const {
  switch (kind) {
    case Kind::all_6t:
      return core::MemoryConfig::all_6t(bank_words);
    case Kind::uniform:
      return core::MemoryConfig::uniform_hybrid(bank_words, n_msb);
    case Kind::per_layer:
      if (msbs.size() != bank_words.size()) {
        throw std::invalid_argument{
            "config \"" + str() + "\" names " + std::to_string(msbs.size()) +
            " banks but the served network has " +
            std::to_string(bank_words.size())};
      }
      return core::MemoryConfig::per_layer(bank_words, msbs);
  }
  throw std::invalid_argument{"bad ConfigSpec"};
}

const char* to_string(RequestStatus status) noexcept {
  switch (status) {
    case RequestStatus::queued: return "queued";
    case RequestStatus::running: return "running";
    case RequestStatus::done: return "done";
    case RequestStatus::failed: return "failed";
    case RequestStatus::cancelled: return "cancelled";
    case RequestStatus::evicted: return "evicted";
    case RequestStatus::not_found: return "not_found";
  }
  return "?";
}

const char* to_string(engine::TableSource source) noexcept {
  switch (source) {
    case engine::TableSource::memory: return "memory";
    case engine::TableSource::disk: return "disk";
    case engine::TableSource::built: return "built";
  }
  return "?";
}

const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::none: return "none";
    case ErrorCode::bad_request: return "bad_request";
    case ErrorCode::queue_full: return "queue_full";
    case ErrorCode::quota_exceeded: return "quota_exceeded";
    case ErrorCode::deadline_exceeded: return "deadline_exceeded";
    case ErrorCode::shard_out_of_range: return "shard_out_of_range";
    case ErrorCode::shutting_down: return "shutting_down";
    case ErrorCode::not_found: return "not_found";
    case ErrorCode::unsupported_version: return "unsupported_version";
    case ErrorCode::internal: return "internal";
  }
  return "?";
}

std::optional<ErrorCode> parse_error_code(std::string_view text) noexcept {
  if (text == "none") return ErrorCode::none;
  if (text == "bad_request") return ErrorCode::bad_request;
  if (text == "queue_full") return ErrorCode::queue_full;
  if (text == "quota_exceeded") return ErrorCode::quota_exceeded;
  if (text == "deadline_exceeded") return ErrorCode::deadline_exceeded;
  if (text == "shard_out_of_range") return ErrorCode::shard_out_of_range;
  if (text == "shutting_down") return ErrorCode::shutting_down;
  if (text == "not_found") return ErrorCode::not_found;
  if (text == "unsupported_version") return ErrorCode::unsupported_version;
  if (text == "internal") return ErrorCode::internal;
  return std::nullopt;
}

std::optional<Request> parse_request(std::string_view line,
                                     RequestError* error) {
  const auto fail = [&](std::string why,
                        ErrorCode code =
                            ErrorCode::bad_request) -> std::optional<Request> {
    if (error != nullptr) {
      error->code = code;
      error->message = std::move(why);
    }
    return std::nullopt;
  };

  ParseError syntax;
  const std::optional<Json> doc = Json::parse(line, &syntax);
  if (!doc) return fail("invalid JSON: " + syntax.str());
  if (!doc->is_object()) return fail("not a JSON object");

  const Json* op = doc->get("op");
  if (op == nullptr || !op->is_string()) {
    return fail("missing string field \"op\"");
  }

  Request req;
  if (op->as_string() == "evaluate") {
    req.kind = RequestKind::evaluate;
  } else if (op->as_string() == "sweep") {
    req.kind = RequestKind::sweep;
  } else if (op->as_string() == "table_info") {
    req.kind = RequestKind::table_info;
  } else if (op->as_string() == "table_shard") {
    req.kind = RequestKind::table_shard;
  } else if (op->as_string() == "stats") {
    req.kind = RequestKind::stats;
  } else {
    return fail("unknown op \"" + op->as_string() + "\"");
  }

  for (const auto& [key, value] : doc->members()) {
    if (key == "op") continue;
    if (key == "v") {
      const double v = value.is_number() ? value.as_number() : -1.0;
      if (v != static_cast<double>(kProtocolVersion)) {
        return fail("unsupported protocol version (server speaks v" +
                        std::to_string(kProtocolVersion) + ")",
                    ErrorCode::unsupported_version);
      }
    } else if (key == "tag") {
      if (!value.is_string()) return fail("\"tag\" must be a string");
      req.tag = value.as_string();
    } else if (key == "client") {
      if (!value.is_string()) return fail("\"client\" must be a string");
      req.client = value.as_string();
    } else if (key == "deadline_ms") {
      const double d = value.is_number() ? value.as_number() : -1.0;
      if (!(d > 0.0) || !std::isfinite(d)) {
        return fail("\"deadline_ms\" must be a positive number");
      }
      req.deadline_ms = d;
    } else if (key == "inline_rows") {
      if (req.kind != RequestKind::table_shard) {
        return fail("\"inline_rows\" is only valid for op \"table_shard\"");
      }
      if (!value.is_bool()) return fail("\"inline_rows\" must be a boolean");
      req.inline_rows = value.as_bool();
    } else if (key == "priority") {
      const double p = value.is_number() ? value.as_number() : 0.5;
      if (p != std::floor(p) || p < -1e6 || p > 1e6) {
        return fail("\"priority\" must be an integer in [-1e6, 1e6]");
      }
      req.priority = static_cast<int>(p);
    } else if (key == "config" || key == "configs") {
      const auto add = [&](const Json& v) {
        if (!v.is_string()) return false;
        const auto spec = ConfigSpec::parse(v.as_string());
        if (!spec) return false;
        req.configs.push_back(*spec);
        return true;
      };
      if (value.is_array()) {
        for (const Json& v : value.items()) {
          if (!add(v)) return fail("bad config in \"" + key + "\"");
        }
      } else if (!add(value)) {
        return fail("bad config in \"" + key + "\"");
      }
    } else if (key == "vdd" || key == "vdds") {
      const auto add = [&](const Json& v) {
        if (!v.is_number() || v.as_number() <= 0.0) return false;
        req.vdds.push_back(v.as_number());
        return true;
      };
      if (value.is_array()) {
        for (const Json& v : value.items()) {
          if (!add(v)) return fail("bad voltage in \"" + key + "\"");
        }
      } else if (!add(value)) {
        return fail("bad voltage in \"" + key + "\"");
      }
    } else if (key == "chips") {
      std::uint64_t n = 0;
      if (!read_u64(value, key, n, error)) return std::nullopt;
      if (n > kMaxChipsPerRequest) {
        return fail("\"chips\" must be <= " +
                    std::to_string(kMaxChipsPerRequest));
      }
      req.chips = static_cast<std::size_t>(n);
    } else if (key == "eval_seed") {
      if (!read_u64(value, key, req.eval_seed, error)) return std::nullopt;
    } else if (key == "samples") {
      std::uint64_t n = 0;
      if (!read_u64(value, key, n, error)) return std::nullopt;
      req.mc_samples = static_cast<std::size_t>(n);
    } else if (key == "table_seed") {
      if (!read_u64(value, key, req.table_seed, error)) return std::nullopt;
    } else if (key == "shard" || key == "shard_count") {
      if (req.kind != RequestKind::table_shard) {
        return fail("\"" + key + "\" is only valid for op \"table_shard\"");
      }
      std::uint64_t n = 0;
      if (!read_u64(value, key, n, error)) return std::nullopt;
      (key == "shard" ? req.shard : req.shard_count) =
          static_cast<std::size_t>(n);
    } else if (key == "adaptive") {
      mc::AdaptivePolicy policy;
      if (!parse_adaptive(value, policy, error)) return std::nullopt;
      req.adaptive = policy;
    } else {
      return fail("unknown field \"" + key + "\"");
    }
  }

  if (req.kind == RequestKind::stats) {
    // A stats scrape names no workload; everything but the envelope
    // (v/tag/priority) is a client error, not silently ignored state.
    if (!req.configs.empty() || !req.vdds.empty() || req.chips != 0 ||
        req.eval_seed != 0 || req.mc_samples != 0 || req.table_seed != 0 ||
        req.adaptive.has_value()) {
      return fail("\"stats\" takes only \"v\", \"tag\" and \"priority\"");
    }
  }
  if (req.kind == RequestKind::table_shard) {
    if (req.shard_count == 0) {
      return fail("\"table_shard\" requires \"shard_count\" >= 1");
    }
    if (req.shard >= req.shard_count) {
      return fail("\"shard\" must be < \"shard_count\"");
    }
  }
  if (req.kind == RequestKind::evaluate || req.kind == RequestKind::sweep) {
    if (req.configs.empty()) return fail("missing \"config\"/\"configs\"");
    if (req.vdds.empty()) return fail("missing \"vdd\"/\"vdds\"");
    if (req.kind == RequestKind::evaluate &&
        (req.configs.size() != 1 || req.vdds.size() != 1)) {
      return fail("\"evaluate\" takes exactly one config and one vdd"
                  " (use \"sweep\" for grids)");
    }
  }
  return req;
}

std::optional<Request> parse_request(std::string_view line,
                                     std::string* error) {
  RequestError structured;
  std::optional<Request> req =
      parse_request(line, error != nullptr ? &structured : nullptr);
  if (!req && error != nullptr) *error = std::move(structured.message);
  return req;
}

std::string format_request(const Request& request) {
  Json j = Json::object();
  j.set("v", kProtocolVersion);
  switch (request.kind) {
    case RequestKind::evaluate: j.set("op", "evaluate"); break;
    case RequestKind::sweep: j.set("op", "sweep"); break;
    case RequestKind::table_info: j.set("op", "table_info"); break;
    case RequestKind::table_shard: j.set("op", "table_shard"); break;
    case RequestKind::stats: j.set("op", "stats"); break;
  }
  if (request.kind == RequestKind::evaluate ||
      request.kind == RequestKind::sweep) {
    Json configs = Json::array();
    for (const ConfigSpec& spec : request.configs) {
      configs.push_back(spec.str());
    }
    Json vdds = Json::array();
    for (const double v : request.vdds) vdds.push_back(v);
    j.set("configs", std::move(configs));
    j.set("vdds", std::move(vdds));
  }
  if (request.kind == RequestKind::table_shard) {
    j.set("shard", static_cast<double>(request.shard));
    j.set("shard_count", static_cast<double>(request.shard_count));
    if (request.inline_rows) j.set("inline_rows", true);
  }
  if (request.priority != 0) j.set("priority", request.priority);
  if (request.chips != 0) j.set("chips", static_cast<double>(request.chips));
  if (request.eval_seed != 0) {
    j.set("eval_seed", static_cast<double>(request.eval_seed));
  }
  if (request.mc_samples != 0) {
    j.set("samples", static_cast<double>(request.mc_samples));
  }
  if (request.table_seed != 0) {
    j.set("table_seed", static_cast<double>(request.table_seed));
  }
  if (request.adaptive.has_value()) {
    j.set("adaptive", adaptive_json(*request.adaptive));
  }
  if (!request.tag.empty()) j.set("tag", request.tag);
  if (!request.client.empty()) j.set("client", request.client);
  if (request.deadline_ms > 0.0) j.set("deadline_ms", request.deadline_ms);
  return j.dump();
}

std::string format_response(const Response& response, bool per_chip) {
  Json j = Json::object();
  j.set("v", kProtocolVersion);
  j.set("id", static_cast<double>(response.id));
  j.set("status", to_string(response.status));
  if (!response.error.empty()) j.set("error", response.error);
  if (response.code != ErrorCode::none) {
    j.set("code", to_string(response.code));
  }
  if (!response.tag.empty()) j.set("tag", response.tag);
  if (response.retry_after_ms > 0.0) {
    j.set("retry_after_ms", response.retry_after_ms);
  }

  if (!response.results.empty()) {
    Json results = Json::array();
    for (const PointResult& point : response.results) {
      results.push_back(accuracy_json(point, per_chip));
    }
    j.set("results", std::move(results));
  }

  if (response.table_fingerprint != 0) {
    Json table = Json::object();
    table.set("fingerprint",
              engine::fingerprint_hex(response.table_fingerprint));
    if (response.status == RequestStatus::done &&
        !response.results.empty()) {
      table.set("source", to_string(response.stats.table_source));
      table.set("coalesced", response.stats.coalesced);
    }
    if (!response.table_csv.empty()) table.set("csv", response.table_csv);
    if (response.table_rows != 0) {
      table.set("rows", static_cast<double>(response.table_rows));
    }
    table.set("in_memory", response.table_in_memory);
    j.set("table", std::move(table));
  }

  if (response.shard_count != 0) {
    Json shard = Json::object();
    shard.set("index", static_cast<double>(response.shard_index));
    shard.set("count", static_cast<double>(response.shard_count));
    shard.set("fingerprint",
              engine::fingerprint_hex(response.shard_fingerprint));
    if (response.status == RequestStatus::done) {
      // built = this request paid for the Monte-Carlo; disk = replayed the
      // persisted shard CSV (possibly produced by another process).
      shard.set("source", to_string(response.stats.table_source));
    }
    if (response.shard_samples > 0.0) {
      // Achieved sampling cost/precision of the artifact (CSV v3 metadata;
      // omitted for v2-era shards, which predate the columns).
      shard.set("samples", response.shard_samples);
      shard.set("ci_half_width", response.shard_ci_half_width);
    }
    if (!response.shard_rows.empty()) {
      // [vdd, ra6, wf6, rd6, ra8, wf8, rd8, samples, ci_half_width] per
      // row; doubles travel as %.17g so a remote merge is bit-identical to
      // a local one (including the CSV v3 metadata columns).
      Json rows = Json::array();
      for (const mc::FailureTableRow& row : response.shard_rows) {
        Json r = Json::array();
        r.push_back(row.vdd);
        r.push_back(row.cell6.read_access);
        r.push_back(row.cell6.write_fail);
        r.push_back(row.cell6.read_disturb);
        r.push_back(row.cell8.read_access);
        r.push_back(row.cell8.write_fail);
        r.push_back(row.cell8.read_disturb);
        r.push_back(row.samples);
        r.push_back(row.ci_half_width);
        rows.push_back(std::move(r));
      }
      shard.set("rows_data", std::move(rows));
    }
    j.set("shard", std::move(shard));
  }

  if (response.health.has_value()) {
    const HealthSummary& h = *response.health;
    Json health = Json::object();
    health.set("uptime_s", h.uptime_s);
    health.set("queue_depth", static_cast<double>(h.queue_depth));
    health.set("queue_capacity", static_cast<double>(h.queue_capacity));
    health.set("dispatchers", static_cast<double>(h.dispatchers));
    health.set("threads", static_cast<double>(h.threads));
    health.set("backend", h.backend);
    health.set("eval_path", h.eval_path);
    health.set("fuse_chips", static_cast<double>(h.fuse_chips));
    health.set("max_batch", static_cast<double>(h.max_batch));
    health.set("coalesce", h.coalesce);
    if (!h.cache_dir.empty()) health.set("cache_dir", h.cache_dir);
    health.set("cache_tables", static_cast<double>(h.cache_tables));
    health.set("cache_bytes", static_cast<double>(h.cache_bytes));
    Json totals = Json::object();
    const auto set = [&totals](const char* key, std::uint64_t v) {
      totals.set(key, static_cast<double>(v));
    };
    set("submitted", h.totals.submitted);
    set("completed", h.totals.completed);
    set("failed", h.totals.failed);
    set("cancelled", h.totals.cancelled);
    set("rejected", h.totals.rejected);
    set("quota_rejected", h.totals.quota_rejected);
    set("deadline_expired", h.totals.deadline_expired);
    set("batches", h.totals.batches);
    set("coalesced_requests", h.totals.coalesced_requests);
    set("table_builds", h.totals.table_builds);
    set("table_memory_hits", h.totals.table_memory_hits);
    set("table_disk_hits", h.totals.table_disk_hits);
    set("shard_builds", h.totals.shard_builds);
    set("shard_replays", h.totals.shard_replays);
    set("max_queue_depth", h.totals.max_queue_depth);
    health.set("totals", std::move(totals));
    j.set("health", std::move(health));
  }

  if (!response.metrics.empty()) {
    Json registry = Json::array();
    for (const obs::MetricSnapshot& m : response.metrics) {
      Json metric = Json::object();
      metric.set("name", m.name);
      metric.set("kind", obs::metric_kind_name(m.kind));
      switch (m.kind) {
        case obs::MetricKind::counter:
          metric.set("count", static_cast<double>(m.count));
          break;
        case obs::MetricKind::gauge:
          metric.set("value", m.value);
          break;
        case obs::MetricKind::histogram: {
          metric.set("count", static_cast<double>(m.count));
          metric.set("sum", static_cast<double>(m.sum));
          metric.set("p50", m.p50);
          metric.set("p95", m.p95);
          metric.set("p99", m.p99);
          // Sparse [bucket_index, count] pairs; integers survive the
          // double round trip exactly (indices < 65, realistic counts).
          Json buckets = Json::array();
          for (const auto& [idx, n] : m.buckets) {
            Json pair = Json::array();
            pair.push_back(static_cast<double>(idx));
            pair.push_back(static_cast<double>(n));
            buckets.push_back(std::move(pair));
          }
          metric.set("buckets", std::move(buckets));
          break;
        }
      }
      registry.push_back(std::move(metric));
    }
    j.set("registry", std::move(registry));
  }

  if (response.status == RequestStatus::done ||
      response.status == RequestStatus::failed) {
    Json stats = Json::object();
    stats.set("queue_ms", response.stats.queue_ms);
    stats.set("table_ms", response.stats.table_ms);
    stats.set("run_ms", response.stats.run_ms);
    stats.set("wall_ms", response.stats.wall_ms);
    stats.set("batch_size", static_cast<double>(response.stats.batch_size));
    stats.set("dispatch_seq",
              static_cast<double>(response.stats.dispatch_seq));
    j.set("stats", std::move(stats));
  }
  return j.dump();
}

std::optional<Response> parse_response(std::string_view line,
                                       std::string* error) {
  const auto fail = [&](std::string why) -> std::optional<Response> {
    if (error != nullptr) *error = std::move(why);
    return std::nullopt;
  };

  ParseError syntax;
  const std::optional<Json> doc = Json::parse(line, &syntax);
  if (!doc) return fail("invalid JSON: " + syntax.str());
  if (!doc->is_object()) return fail("not a JSON object");

  Response r;
  const Json* id = doc->get("id");
  if (id == nullptr || !id->is_number()) {
    return fail("missing numeric field \"id\"");
  }
  r.id = static_cast<std::uint64_t>(id->as_number());

  const Json* status = doc->get("status");
  if (status == nullptr || !status->is_string()) {
    return fail("missing string field \"status\"");
  }
  const auto parsed_status = parse_status(status->as_string());
  if (!parsed_status) {
    return fail("unknown status \"" + status->as_string() + "\"");
  }
  r.status = *parsed_status;

  // Unknown top-level keys are tolerated: a newer server may annotate
  // responses, and a client must not choke on that.
  if (const Json* err = doc->get("error"); err != nullptr && err->is_string()) {
    r.error = err->as_string();
  }
  if (const Json* code = doc->get("code");
      code != nullptr && code->is_string()) {
    const auto parsed = parse_error_code(code->as_string());
    if (!parsed) return fail("unknown code \"" + code->as_string() + "\"");
    r.code = *parsed;
  }
  if (const Json* tag = doc->get("tag"); tag != nullptr && tag->is_string()) {
    r.tag = tag->as_string();
  }
  if (const Json* retry = doc->get("retry_after_ms");
      retry != nullptr && retry->is_number()) {
    r.retry_after_ms = retry->as_number();
  }

  if (const Json* results = doc->get("results");
      results != nullptr && results->is_array()) {
    for (const Json& item : results->items()) {
      if (!item.is_object()) return fail("bad entry in \"results\"");
      PointResult point;
      const Json* config = item.get("config");
      const Json* vdd = item.get("vdd");
      const Json* mean = item.get("mean");
      const Json* stddev = item.get("stddev");
      if (config == nullptr || !config->is_string() || vdd == nullptr ||
          !vdd->is_number() || mean == nullptr || !mean->is_number() ||
          stddev == nullptr || !stddev->is_number()) {
        return fail("bad entry in \"results\"");
      }
      point.config = config->as_string();
      point.vdd = vdd->as_number();
      point.accuracy.mean = mean->as_number();
      point.accuracy.stddev = stddev->as_number();
      if (const Json* chips = item.get("per_chip");
          chips != nullptr && chips->is_array()) {
        for (const Json& a : chips->items()) {
          if (!a.is_number()) return fail("bad \"per_chip\" entry");
          point.accuracy.per_chip.push_back(a.as_number());
        }
      }
      r.results.push_back(std::move(point));
    }
  }

  if (const Json* table = doc->get("table");
      table != nullptr && table->is_object()) {
    if (!parse_fingerprint(table->get("fingerprint"), r.table_fingerprint)) {
      return fail("bad \"table.fingerprint\"");
    }
    if (const Json* source = table->get("source");
        source != nullptr && source->is_string()) {
      const auto parsed = parse_table_source(source->as_string());
      if (!parsed) return fail("unknown table source");
      r.stats.table_source = *parsed;
    }
    if (const Json* coalesced = table->get("coalesced");
        coalesced != nullptr && coalesced->is_bool()) {
      r.stats.coalesced = coalesced->as_bool();
    }
    if (const Json* csv = table->get("csv");
        csv != nullptr && csv->is_string()) {
      r.table_csv = csv->as_string();
    }
    if (const Json* rows = table->get("rows");
        rows != nullptr && rows->is_number()) {
      r.table_rows = static_cast<std::size_t>(rows->as_number());
    }
    if (const Json* in_memory = table->get("in_memory");
        in_memory != nullptr && in_memory->is_bool()) {
      r.table_in_memory = in_memory->as_bool();
    }
  }

  if (const Json* shard = doc->get("shard");
      shard != nullptr && shard->is_object()) {
    const Json* index = shard->get("index");
    const Json* count = shard->get("count");
    if (index == nullptr || !index->is_number() || count == nullptr ||
        !count->is_number()) {
      return fail("bad \"shard\" block");
    }
    r.shard_index = static_cast<std::size_t>(index->as_number());
    r.shard_count = static_cast<std::size_t>(count->as_number());
    if (!parse_fingerprint(shard->get("fingerprint"), r.shard_fingerprint)) {
      return fail("bad \"shard.fingerprint\"");
    }
    if (const Json* source = shard->get("source");
        source != nullptr && source->is_string()) {
      const auto parsed = parse_table_source(source->as_string());
      if (!parsed) return fail("unknown shard source");
      r.stats.table_source = *parsed;
    }
    if (const Json* samples = shard->get("samples");
        samples != nullptr && samples->is_number()) {
      r.shard_samples = samples->as_number();
    }
    if (const Json* ci = shard->get("ci_half_width");
        ci != nullptr && ci->is_number()) {
      r.shard_ci_half_width = ci->as_number();
    }
    if (const Json* rows = shard->get("rows_data");
        rows != nullptr && rows->is_array()) {
      for (const Json& row : rows->items()) {
        // 9 entries since the CSV v3 metadata columns; 7 accepted for
        // responses from pre-v3 servers (metadata stays zero).
        if (!row.is_array() ||
            (row.items().size() != 9 && row.items().size() != 7)) {
          return fail("bad \"rows_data\" entry");
        }
        for (const Json& v : row.items()) {
          if (!v.is_number()) return fail("bad \"rows_data\" entry");
        }
        mc::FailureTableRow out;
        out.vdd = row.items()[0].as_number();
        out.cell6.read_access = row.items()[1].as_number();
        out.cell6.write_fail = row.items()[2].as_number();
        out.cell6.read_disturb = row.items()[3].as_number();
        out.cell8.read_access = row.items()[4].as_number();
        out.cell8.write_fail = row.items()[5].as_number();
        out.cell8.read_disturb = row.items()[6].as_number();
        if (row.items().size() == 9) {
          out.samples = row.items()[7].as_number();
          out.ci_half_width = row.items()[8].as_number();
        }
        r.shard_rows.push_back(out);
      }
    }
  }

  if (const Json* health = doc->get("health");
      health != nullptr && health->is_object()) {
    HealthSummary h;
    const auto number = [&](const char* key, double& out) {
      if (const Json* v = health->get(key); v != nullptr && v->is_number()) {
        out = v->as_number();
      }
    };
    const auto count = [&](const char* key, std::size_t& out) {
      if (const Json* v = health->get(key); v != nullptr && v->is_number()) {
        out = static_cast<std::size_t>(v->as_number());
      }
    };
    number("uptime_s", h.uptime_s);
    count("queue_depth", h.queue_depth);
    count("queue_capacity", h.queue_capacity);
    count("dispatchers", h.dispatchers);
    count("threads", h.threads);
    count("fuse_chips", h.fuse_chips);
    count("max_batch", h.max_batch);
    if (const Json* v = health->get("backend");
        v != nullptr && v->is_string()) {
      h.backend = v->as_string();
    }
    if (const Json* v = health->get("eval_path");
        v != nullptr && v->is_string()) {
      h.eval_path = v->as_string();
    }
    if (const Json* v = health->get("coalesce");
        v != nullptr && v->is_bool()) {
      h.coalesce = v->as_bool();
    }
    if (const Json* v = health->get("cache_dir");
        v != nullptr && v->is_string()) {
      h.cache_dir = v->as_string();
    }
    count("cache_tables", h.cache_tables);
    if (const Json* v = health->get("cache_bytes");
        v != nullptr && v->is_number()) {
      h.cache_bytes = static_cast<std::uint64_t>(v->as_number());
    }
    if (const Json* totals = health->get("totals");
        totals != nullptr && totals->is_object()) {
      const auto total = [&](const char* key, std::uint64_t& out) {
        if (const Json* v = totals->get(key);
            v != nullptr && v->is_number()) {
          out = static_cast<std::uint64_t>(v->as_number());
        }
      };
      total("submitted", h.totals.submitted);
      total("completed", h.totals.completed);
      total("failed", h.totals.failed);
      total("cancelled", h.totals.cancelled);
      total("rejected", h.totals.rejected);
      total("quota_rejected", h.totals.quota_rejected);
      total("deadline_expired", h.totals.deadline_expired);
      total("batches", h.totals.batches);
      total("coalesced_requests", h.totals.coalesced_requests);
      total("table_builds", h.totals.table_builds);
      total("table_memory_hits", h.totals.table_memory_hits);
      total("table_disk_hits", h.totals.table_disk_hits);
      total("shard_builds", h.totals.shard_builds);
      total("shard_replays", h.totals.shard_replays);
      total("max_queue_depth", h.totals.max_queue_depth);
    }
    r.health = std::move(h);
  }

  if (const Json* registry = doc->get("registry");
      registry != nullptr && registry->is_array()) {
    for (const Json& item : registry->items()) {
      if (!item.is_object()) return fail("bad entry in \"registry\"");
      obs::MetricSnapshot m;
      const Json* name = item.get("name");
      const Json* kind = item.get("kind");
      if (name == nullptr || !name->is_string() || kind == nullptr ||
          !kind->is_string() ||
          !obs::parse_metric_kind(kind->as_string(), m.kind)) {
        return fail("bad entry in \"registry\"");
      }
      m.name = name->as_string();
      if (const Json* v = item.get("count");
          v != nullptr && v->is_number()) {
        m.count = static_cast<std::uint64_t>(v->as_number());
      }
      if (const Json* v = item.get("sum"); v != nullptr && v->is_number()) {
        m.sum = static_cast<std::uint64_t>(v->as_number());
      }
      if (const Json* v = item.get("value");
          v != nullptr && v->is_number()) {
        m.value = v->as_number();
      }
      if (m.kind == obs::MetricKind::counter) {
        m.value = static_cast<double>(m.count);
      }
      if (const Json* v = item.get("p50"); v != nullptr && v->is_number()) {
        m.p50 = v->as_number();
      }
      if (const Json* v = item.get("p95"); v != nullptr && v->is_number()) {
        m.p95 = v->as_number();
      }
      if (const Json* v = item.get("p99"); v != nullptr && v->is_number()) {
        m.p99 = v->as_number();
      }
      if (const Json* buckets = item.get("buckets");
          buckets != nullptr && buckets->is_array()) {
        for (const Json& pair : buckets->items()) {
          if (!pair.is_array() || pair.items().size() != 2 ||
              !pair.items()[0].is_number() || !pair.items()[1].is_number()) {
            return fail("bad histogram bucket in \"registry\"");
          }
          m.buckets.emplace_back(
              static_cast<std::uint32_t>(pair.items()[0].as_number()),
              static_cast<std::uint64_t>(pair.items()[1].as_number()));
        }
        if (m.kind == obs::MetricKind::histogram && m.count != 0) {
          m.value = static_cast<double>(m.sum) / static_cast<double>(m.count);
        }
      }
      r.metrics.push_back(std::move(m));
    }
  }

  if (const Json* stats = doc->get("stats");
      stats != nullptr && stats->is_object()) {
    const auto number = [&](const char* key, double& out) {
      if (const Json* v = stats->get(key); v != nullptr && v->is_number()) {
        out = v->as_number();
      }
    };
    number("queue_ms", r.stats.queue_ms);
    number("table_ms", r.stats.table_ms);
    number("run_ms", r.stats.run_ms);
    number("wall_ms", r.stats.wall_ms);
    if (const Json* v = stats->get("batch_size");
        v != nullptr && v->is_number()) {
      r.stats.batch_size = static_cast<std::size_t>(v->as_number());
    }
    if (const Json* v = stats->get("dispatch_seq");
        v != nullptr && v->is_number()) {
      r.stats.dispatch_seq = static_cast<std::uint64_t>(v->as_number());
    }
  }
  return r;
}

}  // namespace hynapse::serve
