#include "serve/protocol.hpp"

#include <charconv>
#include <cmath>
#include <stdexcept>

#include "serve/json.hpp"

namespace hynapse::serve {

namespace {

bool parse_int(std::string_view text, int& out) {
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && end == text.data() + text.size();
}

/// Reads a non-negative integer-valued JSON number. Returns false (and
/// reports) on fractions, negatives, out-of-range values and non-numbers.
/// The bound is 2^53, not 2^64: JSON numbers travel as doubles, and above
/// the mantissa limit adjacent integers collapse -- two distinct seeds
/// would silently map to the same value (and >= 2^64 the cast itself is
/// undefined behavior). Rejecting makes the loss explicit.
bool read_u64(const Json& v, std::string_view key, std::uint64_t& out,
              std::string* error) {
  constexpr double kTwoPow53 = 9007199254740992.0;
  const double d = v.is_number() ? v.as_number() : -1.0;
  if (!(d >= 0.0) || d != std::floor(d) || d > kTwoPow53) {
    if (error != nullptr) {
      *error = "\"" + std::string{key} +
               "\" must be a non-negative integer <= 2^53";
    }
    return false;
  }
  out = static_cast<std::uint64_t>(d);
  return true;
}

Json accuracy_json(const PointResult& point, bool per_chip) {
  Json j = Json::object();
  j.set("config", point.config);
  j.set("vdd", point.vdd);
  j.set("mean", point.accuracy.mean);
  j.set("stddev", point.accuracy.stddev);
  j.set("chips", static_cast<double>(point.accuracy.per_chip.size()));
  if (per_chip) {
    Json chips = Json::array();
    for (const double a : point.accuracy.per_chip) chips.push_back(a);
    j.set("per_chip", std::move(chips));
  }
  return j;
}

}  // namespace

std::optional<ConfigSpec> ConfigSpec::parse(std::string_view text) {
  ConfigSpec spec;
  if (text == "all6t") {
    spec.kind = Kind::all_6t;
    return spec;
  }
  if (text.rfind("hybrid", 0) == 0) {
    int n = 0;
    if (!parse_int(text.substr(6), n) || n < 0 || n > 64) return std::nullopt;
    spec.kind = Kind::uniform;
    spec.n_msb = n;
    return spec;
  }
  if (text.rfind("perlayer:", 0) == 0) {
    spec.kind = Kind::per_layer;
    std::string_view rest = text.substr(9);
    while (!rest.empty()) {
      const std::size_t comma = rest.find(',');
      const std::string_view field = rest.substr(0, comma);
      int n = 0;
      if (!parse_int(field, n) || n < 0 || n > 64) return std::nullopt;
      spec.msbs.push_back(n);
      if (comma == std::string_view::npos) break;
      rest.remove_prefix(comma + 1);
      if (rest.empty()) return std::nullopt;  // trailing comma
    }
    if (spec.msbs.empty()) return std::nullopt;
    return spec;
  }
  return std::nullopt;
}

std::string ConfigSpec::str() const {
  switch (kind) {
    case Kind::all_6t:
      return "all6t";
    case Kind::uniform:
      return "hybrid" + std::to_string(n_msb);
    case Kind::per_layer: {
      std::string out = "perlayer:";
      for (std::size_t i = 0; i < msbs.size(); ++i) {
        if (i != 0) out.push_back(',');
        out += std::to_string(msbs[i]);
      }
      return out;
    }
  }
  return {};
}

core::MemoryConfig ConfigSpec::materialize(
    std::span<const std::size_t> bank_words) const {
  switch (kind) {
    case Kind::all_6t:
      return core::MemoryConfig::all_6t(bank_words);
    case Kind::uniform:
      return core::MemoryConfig::uniform_hybrid(bank_words, n_msb);
    case Kind::per_layer:
      if (msbs.size() != bank_words.size()) {
        throw std::invalid_argument{
            "config \"" + str() + "\" names " + std::to_string(msbs.size()) +
            " banks but the served network has " +
            std::to_string(bank_words.size())};
      }
      return core::MemoryConfig::per_layer(bank_words, msbs);
  }
  throw std::invalid_argument{"bad ConfigSpec"};
}

const char* to_string(RequestStatus status) noexcept {
  switch (status) {
    case RequestStatus::queued: return "queued";
    case RequestStatus::running: return "running";
    case RequestStatus::done: return "done";
    case RequestStatus::failed: return "failed";
    case RequestStatus::cancelled: return "cancelled";
    case RequestStatus::evicted: return "evicted";
  }
  return "?";
}

const char* to_string(engine::TableSource source) noexcept {
  switch (source) {
    case engine::TableSource::memory: return "memory";
    case engine::TableSource::disk: return "disk";
    case engine::TableSource::built: return "built";
  }
  return "?";
}

std::optional<Request> parse_request(std::string_view line,
                                     std::string* error) {
  const auto fail = [&](std::string why) -> std::optional<Request> {
    if (error != nullptr) *error = std::move(why);
    return std::nullopt;
  };

  const std::optional<Json> doc = Json::parse(line);
  if (!doc || !doc->is_object()) return fail("not a JSON object");

  const Json* op = doc->get("op");
  if (op == nullptr || !op->is_string()) {
    return fail("missing string field \"op\"");
  }

  Request req;
  if (op->as_string() == "evaluate") {
    req.kind = RequestKind::evaluate;
  } else if (op->as_string() == "sweep") {
    req.kind = RequestKind::sweep;
  } else if (op->as_string() == "table_info") {
    req.kind = RequestKind::table_info;
  } else if (op->as_string() == "table_shard") {
    req.kind = RequestKind::table_shard;
  } else {
    return fail("unknown op \"" + op->as_string() + "\"");
  }

  for (const auto& [key, value] : doc->members()) {
    if (key == "op") continue;
    if (key == "priority") {
      const double p = value.is_number() ? value.as_number() : 0.5;
      if (p != std::floor(p) || p < -1e6 || p > 1e6) {
        return fail("\"priority\" must be an integer in [-1e6, 1e6]");
      }
      req.priority = static_cast<int>(p);
    } else if (key == "config" || key == "configs") {
      const auto add = [&](const Json& v) {
        if (!v.is_string()) return false;
        const auto spec = ConfigSpec::parse(v.as_string());
        if (!spec) return false;
        req.configs.push_back(*spec);
        return true;
      };
      if (value.is_array()) {
        for (const Json& v : value.items()) {
          if (!add(v)) return fail("bad config in \"" + key + "\"");
        }
      } else if (!add(value)) {
        return fail("bad config in \"" + key + "\"");
      }
    } else if (key == "vdd" || key == "vdds") {
      const auto add = [&](const Json& v) {
        if (!v.is_number() || v.as_number() <= 0.0) return false;
        req.vdds.push_back(v.as_number());
        return true;
      };
      if (value.is_array()) {
        for (const Json& v : value.items()) {
          if (!add(v)) return fail("bad voltage in \"" + key + "\"");
        }
      } else if (!add(value)) {
        return fail("bad voltage in \"" + key + "\"");
      }
    } else if (key == "chips") {
      std::uint64_t n = 0;
      if (!read_u64(value, key, n, error)) return std::nullopt;
      if (n > kMaxChipsPerRequest) {
        return fail("\"chips\" must be <= " +
                    std::to_string(kMaxChipsPerRequest));
      }
      req.chips = static_cast<std::size_t>(n);
    } else if (key == "eval_seed") {
      if (!read_u64(value, key, req.eval_seed, error)) return std::nullopt;
    } else if (key == "samples") {
      std::uint64_t n = 0;
      if (!read_u64(value, key, n, error)) return std::nullopt;
      req.mc_samples = static_cast<std::size_t>(n);
    } else if (key == "table_seed") {
      if (!read_u64(value, key, req.table_seed, error)) return std::nullopt;
    } else if (key == "shard" || key == "shard_count") {
      if (req.kind != RequestKind::table_shard) {
        return fail("\"" + key + "\" is only valid for op \"table_shard\"");
      }
      std::uint64_t n = 0;
      if (!read_u64(value, key, n, error)) return std::nullopt;
      (key == "shard" ? req.shard : req.shard_count) =
          static_cast<std::size_t>(n);
    } else {
      return fail("unknown field \"" + key + "\"");
    }
  }

  if (req.kind == RequestKind::table_shard) {
    if (req.shard_count == 0) {
      return fail("\"table_shard\" requires \"shard_count\" >= 1");
    }
    if (req.shard >= req.shard_count) {
      return fail("\"shard\" must be < \"shard_count\"");
    }
  }
  if (req.kind == RequestKind::evaluate || req.kind == RequestKind::sweep) {
    if (req.configs.empty()) return fail("missing \"config\"/\"configs\"");
    if (req.vdds.empty()) return fail("missing \"vdd\"/\"vdds\"");
    if (req.kind == RequestKind::evaluate &&
        (req.configs.size() != 1 || req.vdds.size() != 1)) {
      return fail("\"evaluate\" takes exactly one config and one vdd"
                  " (use \"sweep\" for grids)");
    }
  }
  return req;
}

std::string format_response(const Response& response, bool per_chip) {
  Json j = Json::object();
  j.set("id", static_cast<double>(response.id));
  j.set("status", to_string(response.status));
  if (!response.error.empty()) j.set("error", response.error);

  if (!response.results.empty()) {
    Json results = Json::array();
    for (const PointResult& point : response.results) {
      results.push_back(accuracy_json(point, per_chip));
    }
    j.set("results", std::move(results));
  }

  if (response.table_fingerprint != 0) {
    Json table = Json::object();
    table.set("fingerprint",
              engine::fingerprint_hex(response.table_fingerprint));
    if (response.status == RequestStatus::done &&
        !response.results.empty()) {
      table.set("source", to_string(response.stats.table_source));
      table.set("coalesced", response.stats.coalesced);
    }
    if (!response.table_csv.empty()) table.set("csv", response.table_csv);
    if (response.table_rows != 0) {
      table.set("rows", static_cast<double>(response.table_rows));
    }
    table.set("in_memory", response.table_in_memory);
    j.set("table", std::move(table));
  }

  if (response.shard_count != 0) {
    Json shard = Json::object();
    shard.set("index", static_cast<double>(response.shard_index));
    shard.set("count", static_cast<double>(response.shard_count));
    shard.set("fingerprint",
              engine::fingerprint_hex(response.shard_fingerprint));
    if (response.status == RequestStatus::done) {
      // built = this request paid for the Monte-Carlo; disk = replayed the
      // persisted shard CSV (possibly produced by another process).
      shard.set("source", to_string(response.stats.table_source));
    }
    j.set("shard", std::move(shard));
  }

  if (response.status == RequestStatus::done ||
      response.status == RequestStatus::failed) {
    Json stats = Json::object();
    stats.set("queue_ms", response.stats.queue_ms);
    stats.set("table_ms", response.stats.table_ms);
    stats.set("run_ms", response.stats.run_ms);
    stats.set("wall_ms", response.stats.wall_ms);
    stats.set("batch_size", static_cast<double>(response.stats.batch_size));
    stats.set("dispatch_seq",
              static_cast<double>(response.stats.dispatch_seq));
    j.set("stats", std::move(stats));
  }
  return j.dump();
}

}  // namespace hynapse::serve
