// Procedural handwritten-digit generator: the offline stand-in for MNIST
// (see DESIGN.md section 1). Each class is a stroke skeleton (polyline set
// in the unit square) rasterized at 28x28 with a random affine transform
// (translation/rotation/scale/shear), random stroke thickness, intensity
// variation and pixel noise. Like MNIST, digits are centred so border
// pixels carry almost no information -- the property behind the paper's
// "input layer is resilient relative to the first hidden layer" observation.
#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.hpp"

namespace hynapse::data {

inline constexpr std::size_t kDigitSide = 28;
inline constexpr std::size_t kDigitPixels = kDigitSide * kDigitSide;

struct DigitGenOptions {
  double max_shift_px = 2.2;      ///< uniform +-translation
  double max_rotate_rad = 0.22;   ///< uniform +-rotation
  double min_scale = 0.85;        ///< per-axis scale range
  double max_scale = 1.15;
  double max_shear = 0.15;        ///< horizontal shear range
  double min_thickness = 0.9;     ///< stroke half-width in pixels
  double max_thickness = 1.8;
  double pixel_noise = 0.03;      ///< additive Gaussian sigma
  double min_intensity = 0.75;    ///< stroke peak intensity range
  double max_intensity = 1.0;
};

/// Generates `count` samples with (near-)balanced classes, deterministically
/// from `seed`.
[[nodiscard]] Dataset generate_digits(std::size_t count, std::uint64_t seed,
                                      const DigitGenOptions& options = {});

/// Rasterizes a single digit (exposed for tests and visual inspection).
/// `out` must hold kDigitPixels floats.
void render_digit(int digit, std::uint64_t seed, const DigitGenOptions& options,
                  float* out);

/// ASCII-art rendering of one sample (for examples/debugging).
[[nodiscard]] std::string ascii_art(const float* pixels);

}  // namespace hynapse::data
