// Labelled image dataset container shared by the generator, the IDX loader
// and the ANN benchmarks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ann/matrix.hpp"

namespace hynapse::data {

/// Row-major images (one row per sample, pixels normalized to [0,1]) plus
/// class labels.
struct Dataset {
  ann::Matrix images;  // n x (width*height)
  std::vector<std::uint8_t> labels;

  [[nodiscard]] std::size_t size() const noexcept { return labels.size(); }

  /// Returns the first n samples as a new dataset (n clamped to size()).
  [[nodiscard]] Dataset head(std::size_t n) const;
};

/// Per-class sample counts (classes 0..9).
[[nodiscard]] std::vector<std::size_t> class_histogram(const Dataset& ds);

}  // namespace hynapse::data
