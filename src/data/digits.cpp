#include "data/digits.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace hynapse::data {

namespace {

struct Point {
  double x;
  double y;
};

using Polyline = std::vector<Point>;

// Closed ellipse approximated by a polyline.
Polyline ellipse(double cx, double cy, double rx, double ry, int segments = 24,
                 double phase = 0.0) {
  Polyline p;
  p.reserve(static_cast<std::size_t>(segments) + 1);
  for (int i = 0; i <= segments; ++i) {
    const double t =
        phase + 2.0 * M_PI * static_cast<double>(i) / segments;
    p.push_back({cx + rx * std::cos(t), cy + ry * std::sin(t)});
  }
  return p;
}

Polyline arc(double cx, double cy, double rx, double ry, double t0, double t1,
             int segments = 16) {
  Polyline p;
  p.reserve(static_cast<std::size_t>(segments) + 1);
  for (int i = 0; i <= segments; ++i) {
    const double t = t0 + (t1 - t0) * static_cast<double>(i) / segments;
    p.push_back({cx + rx * std::cos(t), cy + ry * std::sin(t)});
  }
  return p;
}

// Stroke skeletons in the unit square, x to the right, y DOWN (image rows).
std::vector<Polyline> digit_strokes(int digit) {
  switch (digit) {
    case 0:
      return {ellipse(0.5, 0.5, 0.27, 0.37)};
    case 1:
      return {{{0.38, 0.28}, {0.54, 0.13}, {0.54, 0.88}}};
    case 2:
      return {arc(0.5, 0.32, 0.25, 0.20, -M_PI, 0.0),
              {{0.75, 0.32}, {0.70, 0.52}, {0.30, 0.86}},
              {{0.30, 0.86}, {0.78, 0.86}}};
    case 3:
      return {arc(0.47, 0.32, 0.24, 0.19, -M_PI * 0.9, M_PI * 0.45),
              arc(0.47, 0.67, 0.26, 0.21, -M_PI * 0.45, M_PI * 0.9)};
    case 4:
      return {{{0.62, 0.12}, {0.25, 0.62}, {0.80, 0.62}},
              {{0.62, 0.12}, {0.62, 0.88}}};
    case 5:
      return {{{0.72, 0.13}, {0.32, 0.13}, {0.30, 0.47}},
              arc(0.48, 0.66, 0.25, 0.21, -M_PI * 0.55, M_PI * 0.85)};
    case 6:
      return {{{0.66, 0.12}, {0.40, 0.40}, {0.30, 0.62}},
              ellipse(0.50, 0.67, 0.21, 0.20)};
    case 7:
      return {{{0.24, 0.15}, {0.78, 0.15}, {0.42, 0.88}}};
    case 8:
      return {ellipse(0.50, 0.32, 0.20, 0.19),
              ellipse(0.50, 0.69, 0.24, 0.20)};
    case 9:
      return {ellipse(0.50, 0.34, 0.21, 0.20),
              {{0.71, 0.34}, {0.66, 0.62}, {0.52, 0.88}}};
    default:
      return {};
  }
}

double dist_to_segment(Point p, Point a, Point b) {
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const double len2 = dx * dx + dy * dy;
  double t = 0.0;
  if (len2 > 0.0) {
    t = ((p.x - a.x) * dx + (p.y - a.y) * dy) / len2;
    t = std::clamp(t, 0.0, 1.0);
  }
  const double px = a.x + t * dx - p.x;
  const double py = a.y + t * dy - p.y;
  return std::sqrt(px * px + py * py);
}

struct Affine {
  // [x'; y'] = M [x - 0.5; y - 0.5] + [0.5 + tx; 0.5 + ty]
  double m00, m01, m10, m11, tx, ty;

  [[nodiscard]] Point apply(Point p) const noexcept {
    const double x = p.x - 0.5;
    const double y = p.y - 0.5;
    return {m00 * x + m01 * y + 0.5 + tx, m10 * x + m11 * y + 0.5 + ty};
  }
};

}  // namespace

void render_digit(int digit, std::uint64_t seed, const DigitGenOptions& opt,
                  float* out) {
  util::Rng rng{seed};
  const double angle = rng.uniform(-opt.max_rotate_rad, opt.max_rotate_rad);
  const double sx = rng.uniform(opt.min_scale, opt.max_scale);
  const double sy = rng.uniform(opt.min_scale, opt.max_scale);
  const double shear = rng.uniform(-opt.max_shear, opt.max_shear);
  const double side = static_cast<double>(kDigitSide);
  const double tx = rng.uniform(-opt.max_shift_px, opt.max_shift_px) / side;
  const double ty = rng.uniform(-opt.max_shift_px, opt.max_shift_px) / side;
  const double thickness =
      rng.uniform(opt.min_thickness, opt.max_thickness) / side;
  const double intensity = rng.uniform(opt.min_intensity, opt.max_intensity);

  const double c = std::cos(angle);
  const double s = std::sin(angle);
  // rotation * shear * scale
  const Affine xf{c * sx + (-s) * sx * 0.0,  // m00 (shear applied on x<-y)
                  c * shear * sy - s * sy,   // m01
                  s * sx,                    // m10
                  s * shear * sy + c * sy,   // m11
                  tx, ty};

  std::vector<Polyline> strokes = digit_strokes(digit);
  for (Polyline& line : strokes)
    for (Point& p : line) p = xf.apply(p);

  // Map stroke space (unit square) into the central 20x20-pixel box, like
  // MNIST's centred digits, and rasterize in pixel coordinates.
  for (Polyline& line : strokes) {
    for (Point& p : line) {
      p.x = 4.0 + 20.0 * p.x;
      p.y = 4.0 + 20.0 * p.y;
    }
  }
  const double thickness_px = thickness * side;  // back to pixels
  const double aa = 0.55;  // anti-aliasing falloff width [px]
  for (std::size_t row = 0; row < kDigitSide; ++row) {
    for (std::size_t col = 0; col < kDigitSide; ++col) {
      const Point p{static_cast<double>(col) + 0.5,
                    static_cast<double>(row) + 0.5};
      double d = 1e9;
      for (const Polyline& line : strokes) {
        for (std::size_t i = 0; i + 1 < line.size(); ++i) {
          d = std::min(d, dist_to_segment(p, line[i], line[i + 1]));
        }
      }
      double v = 0.0;
      if (d < thickness_px) {
        v = intensity;
      } else if (d < thickness_px + aa) {
        v = intensity * (1.0 - (d - thickness_px) / aa);
      }
      v += rng.normal(0.0, opt.pixel_noise);
      out[row * kDigitSide + col] =
          static_cast<float>(std::clamp(v, 0.0, 1.0));
    }
  }
}

Dataset generate_digits(std::size_t count, std::uint64_t seed,
                        const DigitGenOptions& options) {
  Dataset ds;
  ds.images = ann::Matrix{count, kDigitPixels};
  ds.labels.resize(count);
  util::Rng seeder{seed};
  for (std::size_t i = 0; i < count; ++i) {
    const int digit = static_cast<int>(i % 10);
    ds.labels[i] = static_cast<std::uint8_t>(digit);
    render_digit(digit, seeder.next_u64(), options, ds.images.row(i));
  }
  return ds;
}

std::string ascii_art(const float* pixels) {
  static constexpr char shades[] = " .:-=+*#%@";
  std::string out;
  out.reserve(kDigitPixels + kDigitSide);
  for (std::size_t r = 0; r < kDigitSide; ++r) {
    for (std::size_t c = 0; c < kDigitSide; ++c) {
      const float v = pixels[r * kDigitSide + c];
      const int idx = std::clamp(static_cast<int>(v * 9.99f), 0, 9);
      out.push_back(shades[idx]);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace hynapse::data
