#include "data/idx.hpp"

#include <algorithm>
#include <fstream>

namespace hynapse::data {

namespace {

std::uint32_t read_be32(std::istream& in) {
  unsigned char b[4] = {0, 0, 0, 0};
  in.read(reinterpret_cast<char*>(b), 4);
  return (std::uint32_t{b[0]} << 24) | (std::uint32_t{b[1]} << 16) |
         (std::uint32_t{b[2]} << 8) | std::uint32_t{b[3]};
}

void write_be32(std::ostream& out, std::uint32_t v) {
  const unsigned char b[4] = {
      static_cast<unsigned char>(v >> 24), static_cast<unsigned char>(v >> 16),
      static_cast<unsigned char>(v >> 8), static_cast<unsigned char>(v)};
  out.write(reinterpret_cast<const char*>(b), 4);
}

constexpr std::uint32_t kImagesMagic = 0x00000803;  // idx3, ubyte
constexpr std::uint32_t kLabelsMagic = 0x00000801;  // idx1, ubyte

}  // namespace

std::optional<ann::Matrix> read_idx_images(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return std::nullopt;
  if (read_be32(in) != kImagesMagic) return std::nullopt;
  const std::uint32_t count = read_be32(in);
  const std::uint32_t rows = read_be32(in);
  const std::uint32_t cols = read_be32(in);
  if (!in || count == 0 || rows == 0 || cols == 0 || rows * cols > (1u << 20))
    return std::nullopt;
  ann::Matrix images{count, static_cast<std::size_t>(rows) * cols};
  std::vector<unsigned char> buf(static_cast<std::size_t>(rows) * cols);
  for (std::uint32_t i = 0; i < count; ++i) {
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
    if (!in) return std::nullopt;
    float* row = images.row(i);
    for (std::size_t p = 0; p < buf.size(); ++p)
      row[p] = static_cast<float>(buf[p]) / 255.0f;
  }
  return images;
}

std::optional<std::vector<std::uint8_t>> read_idx_labels(
    const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return std::nullopt;
  if (read_be32(in) != kLabelsMagic) return std::nullopt;
  const std::uint32_t count = read_be32(in);
  if (!in || count == 0) return std::nullopt;
  std::vector<std::uint8_t> labels(count);
  in.read(reinterpret_cast<char*>(labels.data()), count);
  if (!in) return std::nullopt;
  return labels;
}

void write_idx_images(const ann::Matrix& images, std::size_t rows,
                      std::size_t cols, const std::string& path) {
  if (rows * cols != images.cols())
    throw std::invalid_argument{"write_idx_images: shape mismatch"};
  std::ofstream out{path, std::ios::binary};
  if (!out) throw std::runtime_error{"write_idx_images: cannot open " + path};
  write_be32(out, kImagesMagic);
  write_be32(out, static_cast<std::uint32_t>(images.rows()));
  write_be32(out, static_cast<std::uint32_t>(rows));
  write_be32(out, static_cast<std::uint32_t>(cols));
  std::vector<unsigned char> buf(images.cols());
  for (std::size_t i = 0; i < images.rows(); ++i) {
    const float* r = images.row(i);
    for (std::size_t p = 0; p < buf.size(); ++p) {
      const float v = std::clamp(r[p], 0.0f, 1.0f);
      buf[p] = static_cast<unsigned char>(v * 255.0f + 0.5f);
    }
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
  }
  if (!out) throw std::runtime_error{"write_idx_images: write failed"};
}

void write_idx_labels(const std::vector<std::uint8_t>& labels,
                      const std::string& path) {
  std::ofstream out{path, std::ios::binary};
  if (!out) throw std::runtime_error{"write_idx_labels: cannot open " + path};
  write_be32(out, kLabelsMagic);
  write_be32(out, static_cast<std::uint32_t>(labels.size()));
  out.write(reinterpret_cast<const char*>(labels.data()),
            static_cast<std::streamsize>(labels.size()));
  if (!out) throw std::runtime_error{"write_idx_labels: write failed"};
}

std::optional<Dataset> load_idx_dataset(const std::string& images_path,
                                        const std::string& labels_path) {
  auto images = read_idx_images(images_path);
  auto labels = read_idx_labels(labels_path);
  if (!images || !labels) return std::nullopt;
  if (images->rows() != labels->size()) return std::nullopt;
  Dataset ds;
  ds.images = std::move(*images);
  ds.labels = std::move(*labels);
  return ds;
}

}  // namespace hynapse::data
