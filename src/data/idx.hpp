// IDX file format reader/writer (the format MNIST is distributed in). When
// real MNIST files are available (HYNAPSE_MNIST_DIR), the benchmarks use
// them; otherwise the synthetic generator stands in. The writer exists so
// tests can round-trip and so generated datasets can be exported.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace hynapse::data {

/// Reads an IDX3 image file (unsigned byte pixels) into row-major floats
/// scaled to [0,1]. Returns nullopt on missing/malformed file.
[[nodiscard]] std::optional<ann::Matrix> read_idx_images(
    const std::string& path);

/// Reads an IDX1 label file. Returns nullopt on missing/malformed file.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> read_idx_labels(
    const std::string& path);

/// Writes images (values clamped to [0,1], stored as bytes) in IDX3 format.
void write_idx_images(const ann::Matrix& images, std::size_t rows,
                      std::size_t cols, const std::string& path);

/// Writes labels in IDX1 format.
void write_idx_labels(const std::vector<std::uint8_t>& labels,
                      const std::string& path);

/// Loads a dataset from an images/labels IDX pair; nullopt unless both load
/// and their sample counts agree.
[[nodiscard]] std::optional<Dataset> load_idx_dataset(
    const std::string& images_path, const std::string& labels_path);

}  // namespace hynapse::data
