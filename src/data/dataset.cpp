#include "data/dataset.hpp"

#include <algorithm>

namespace hynapse::data {

Dataset Dataset::head(std::size_t n) const {
  n = std::min(n, size());
  Dataset out;
  out.images = ann::Matrix{n, images.cols()};
  out.labels.assign(labels.begin(),
                    labels.begin() + static_cast<std::ptrdiff_t>(n));
  for (std::size_t i = 0; i < n; ++i)
    std::copy_n(images.row(i), images.cols(), out.images.row(i));
  return out;
}

std::vector<std::size_t> class_histogram(const Dataset& ds) {
  std::vector<std::size_t> hist(10, 0);
  for (std::uint8_t y : ds.labels)
    if (y < hist.size()) ++hist[y];
  return hist;
}

}  // namespace hynapse::data
