#include "mc/failure_table.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hynapse::mc {

namespace {

// Interpolates a probability log-linearly; falls back to linear when either
// endpoint is zero (log undefined).
double interp_prob(double p_lo, double p_hi, double t) {
  if (p_lo > 0.0 && p_hi > 0.0) {
    return std::exp(std::log(p_lo) + t * (std::log(p_hi) - std::log(p_lo)));
  }
  return p_lo + t * (p_hi - p_lo);
}

}  // namespace

FailureTable::FailureTable(std::vector<FailureTableRow> rows)
    : rows_{std::move(rows)} {
  if (rows_.empty()) throw std::invalid_argument{"FailureTable: no rows"};
  std::sort(rows_.begin(), rows_.end(),
            [](const FailureTableRow& a, const FailureTableRow& b) {
              return a.vdd < b.vdd;
            });
}

FailureTable FailureTable::build(const FailureAnalyzer& analyzer,
                                 std::span<const double> vdd_grid,
                                 std::uint64_t seed) {
  std::vector<FailureTableRow> rows;
  rows.reserve(vdd_grid.size());
  for (double vdd : vdd_grid) {
    FailureTableRow row;
    row.vdd = vdd;
    const CellFailureRates r6 = analyzer.analyze_6t(vdd, seed);
    const CellFailureRates r8 = analyzer.analyze_8t(vdd, seed ^ 0xabcdefull);
    row.cell6 = {r6.read_access.p, r6.write_fail.p, r6.read_disturb.p};
    row.cell8 = {r8.read_access.p, r8.write_fail.p, r8.read_disturb.p};
    rows.push_back(row);
  }
  return FailureTable{std::move(rows)};
}

BitcellFailureRates FailureTable::interpolate(double vdd, bool cell8) const {
  const auto pick = [cell8](const FailureTableRow& r) -> const BitcellFailureRates& {
    return cell8 ? r.cell8 : r.cell6;
  };
  if (vdd <= rows_.front().vdd) return pick(rows_.front());
  if (vdd >= rows_.back().vdd) return pick(rows_.back());
  for (std::size_t i = 1; i < rows_.size(); ++i) {
    if (vdd <= rows_[i].vdd) {
      const FailureTableRow& lo = rows_[i - 1];
      const FailureTableRow& hi = rows_[i];
      const double t = (vdd - lo.vdd) / (hi.vdd - lo.vdd);
      const BitcellFailureRates& a = pick(lo);
      const BitcellFailureRates& b = pick(hi);
      BitcellFailureRates out;
      // Rates fall with rising voltage; interpolate each mechanism.
      out.read_access = interp_prob(a.read_access, b.read_access, t);
      out.write_fail = interp_prob(a.write_fail, b.write_fail, t);
      out.read_disturb = interp_prob(a.read_disturb, b.read_disturb, t);
      return out;
    }
  }
  return pick(rows_.back());
}

BitcellFailureRates FailureTable::rates_6t(double vdd) const {
  if (rows_.empty()) throw std::logic_error{"FailureTable: empty"};
  return interpolate(vdd, false);
}

BitcellFailureRates FailureTable::rates_8t(double vdd) const {
  if (rows_.empty()) throw std::logic_error{"FailureTable: empty"};
  return interpolate(vdd, true);
}

void FailureTable::save_csv(const std::string& path) const {
  std::ofstream out{path};
  if (!out) throw std::runtime_error{"FailureTable: cannot open " + path};
  out << "vdd,ra6,wr6,rd6,ra8,wr8,rd8\n";
  out.precision(17);  // exact double round-trip
  for (const auto& r : rows_) {
    out << r.vdd << ',' << r.cell6.read_access << ',' << r.cell6.write_fail
        << ',' << r.cell6.read_disturb << ',' << r.cell8.read_access << ','
        << r.cell8.write_fail << ',' << r.cell8.read_disturb << '\n';
  }
}

std::optional<FailureTable> FailureTable::load_csv(const std::string& path) {
  std::ifstream in{path};
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;  // header
  std::vector<FailureTableRow> rows;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ss{line};
    FailureTableRow r;
    char comma = 0;
    ss >> r.vdd >> comma >> r.cell6.read_access >> comma >>
        r.cell6.write_fail >> comma >> r.cell6.read_disturb >> comma >>
        r.cell8.read_access >> comma >> r.cell8.write_fail >> comma >>
        r.cell8.read_disturb;
    if (!ss) return std::nullopt;
    rows.push_back(r);
  }
  if (rows.empty()) return std::nullopt;
  return FailureTable{std::move(rows)};
}

}  // namespace hynapse::mc
