#include "mc/failure_table.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "util/parallel.hpp"

namespace hynapse::mc {

namespace {

// Interpolates a probability log-linearly; falls back to linear when either
// endpoint is zero (log undefined).
double interp_prob(double p_lo, double p_hi, double t) {
  if (p_lo > 0.0 && p_hi > 0.0) {
    return std::exp(std::log(p_lo) + t * (std::log(p_hi) - std::log(p_lo)));
  }
  return p_lo + t * (p_hi - p_lo);
}

// CSV format v3: first line "# hynapse-failure-table v3 fp=<hex64>",
// second line the column header, then one row per grid point. v3 adds the
// `samples`/`ci_half_width` sampling-metadata columns and permits the
// column line to reorder its fields (the loader maps by name); v2 files
// (fixed column order, no metadata) still load with zeroed metadata.
constexpr std::string_view kCsvMagicV3 = "# hynapse-failure-table v3 fp=";
constexpr std::string_view kCsvMagicV2 = "# hynapse-failure-table v2 fp=";
constexpr std::string_view kCsvColumnsV2 = "vdd,ra6,wr6,rd6,ra8,wr8,rd8";
constexpr std::string_view kCsvColumnsV3 =
    "vdd,ra6,wr6,rd6,ra8,wr8,rd8,samples,ci_half_width";

/// Canonical v3 column names, indexing the per-row field table below.
constexpr std::string_view kColumnNames[] = {
    "vdd", "ra6", "wr6", "rd6", "ra8", "wr8", "rd8", "samples",
    "ci_half_width"};
constexpr std::size_t kColumnCount =
    sizeof(kColumnNames) / sizeof(kColumnNames[0]);
constexpr std::size_t kBaseColumnCount = 7;  // vdd + the six rates

double* row_field(FailureTableRow& r, std::size_t column) {
  switch (column) {
    case 0: return &r.vdd;
    case 1: return &r.cell6.read_access;
    case 2: return &r.cell6.write_fail;
    case 3: return &r.cell6.read_disturb;
    case 4: return &r.cell8.read_access;
    case 5: return &r.cell8.write_fail;
    case 6: return &r.cell8.read_disturb;
    case 7: return &r.samples;
    case 8: return &r.ci_half_width;
    default: return nullptr;
  }
}

/// Maps a v3 column-header line to canonical column indices. Rejects
/// unknown or duplicate names and requires every base column; the metadata
/// columns are optional (a tool may strip them). nullopt = malformed.
std::optional<std::vector<std::size_t>> parse_column_order(
    const std::string& line) {
  std::vector<std::size_t> order;
  bool seen[kColumnCount] = {};
  std::size_t start = 0;
  while (start <= line.size()) {
    const std::size_t comma = line.find(',', start);
    const std::string_view name =
        std::string_view{line}.substr(start, comma == std::string::npos
                                                 ? std::string::npos
                                                 : comma - start);
    std::size_t idx = kColumnCount;
    for (std::size_t i = 0; i < kColumnCount; ++i) {
      if (name == kColumnNames[i]) idx = i;
    }
    if (idx == kColumnCount || seen[idx]) return std::nullopt;
    seen[idx] = true;
    order.push_back(idx);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  for (std::size_t i = 0; i < kBaseColumnCount; ++i) {
    if (!seen[i]) return std::nullopt;
  }
  return order;
}

bool valid_rate(double p) {
  return std::isfinite(p) && p >= 0.0 && p <= 1.0;
}

}  // namespace

std::pair<std::size_t, std::size_t> shard_bounds(std::size_t n,
                                                 std::size_t shard,
                                                 std::size_t shard_count) {
  if (shard_count == 0 || shard >= shard_count) {
    throw std::invalid_argument{"shard_bounds: shard " + std::to_string(shard) +
                                " of " + std::to_string(shard_count)};
  }
  // i*n/count boundaries: contiguous, exhaustive, sizes differ by <= 1.
  return {shard * n / shard_count, (shard + 1) * n / shard_count};
}

FailureTable::FailureTable(std::vector<FailureTableRow> rows)
    : rows_{std::move(rows)} {
  if (rows_.empty()) throw std::invalid_argument{"FailureTable: no rows"};
  std::sort(rows_.begin(), rows_.end(),
            [](const FailureTableRow& a, const FailureTableRow& b) {
              return a.vdd < b.vdd;
            });
  for (std::size_t i = 1; i < rows_.size(); ++i) {
    if (rows_[i].vdd == rows_[i - 1].vdd) {
      throw std::invalid_argument{"FailureTable: duplicate vdd " +
                                  std::to_string(rows_[i].vdd)};
    }
  }
}

FailureTable FailureTable::build(const FailureAnalyzer& analyzer,
                                 std::span<const double> vdd_grid,
                                 std::uint64_t seed) {
  std::vector<FailureTableRow> rows(vdd_grid.size());
  for (std::size_t r = 0; r < vdd_grid.size(); ++r) rows[r].vdd = vdd_grid[r];

  // Flat (voltage x cell-type x mechanism) job matrix. Every job's seeds are
  // exactly those the serial per-voltage analyze_6t/analyze_8t calls derived,
  // so the table is bit-identical for any thread count. Jobs land full
  // estimates in a scratch matrix; the serial pass below then aggregates the
  // per-row sampling metadata race-free.
  constexpr std::size_t kSlots = 5;
  const std::uint64_t seed8 = seed ^ 0xabcdefull;
  std::vector<RateEstimate> ests(vdd_grid.size() * kSlots);
  util::parallel_for(
      vdd_grid.size() * kSlots,
      [&](std::size_t j) {
        const std::size_t r = j / kSlots;
        const double vdd = rows[r].vdd;
        switch (j % kSlots) {
          case 0:
            ests[j] = analyzer.estimate_6t(Mechanism::read_access, vdd, seed,
                                           seed + 777);
            break;
          case 1:
            ests[j] = analyzer.estimate_6t(Mechanism::write, vdd, seed + 101,
                                           seed + 778);
            break;
          case 2:
            ests[j] = analyzer.estimate_6t(Mechanism::read_disturb, vdd,
                                           seed + 202, seed + 779);
            break;
          case 3:
            ests[j] = analyzer.estimate_8t(Mechanism::read_access, vdd, seed8,
                                           seed8 + 555);
            break;
          case 4:
            ests[j] = analyzer.estimate_8t(Mechanism::write, vdd, seed8 + 131,
                                           seed8 + 556);
            break;
        }
      },
      analyzer.options().threads);
  for (std::size_t r = 0; r < vdd_grid.size(); ++r) {
    const RateEstimate* slot = &ests[r * kSlots];
    rows[r].cell6.read_access = slot[0].p;
    rows[r].cell6.write_fail = slot[1].p;
    rows[r].cell6.read_disturb = slot[2].p;
    rows[r].cell8.read_access = slot[3].p;
    rows[r].cell8.write_fail = slot[4].p;
    double spent = 0.0;
    double worst = 0.0;
    for (std::size_t s = 0; s < kSlots; ++s) {
      spent += static_cast<double>(slot[s].total_samples);
      worst = std::max(worst, slot[s].ci_half_width());
    }
    rows[r].samples = spent;
    rows[r].ci_half_width = worst;
  }
  return FailureTable{std::move(rows)};
}

FailureTable FailureTable::build_shard(const FailureAnalyzer& analyzer,
                                       std::span<const double> vdd_grid,
                                       std::uint64_t seed, std::size_t shard,
                                       std::size_t shard_count) {
  const auto [begin, end] = shard_bounds(vdd_grid.size(), shard, shard_count);
  if (begin == end) {
    throw std::invalid_argument{
        "FailureTable::build_shard: shard " + std::to_string(shard) + " of " +
        std::to_string(shard_count) + " is empty over a " +
        std::to_string(vdd_grid.size()) + "-point grid"};
  }
  // The per-mechanism seeds are functions of `seed` alone, so building the
  // sub-grid directly reproduces the monolithic rows bit-for-bit.
  return build(analyzer, vdd_grid.subspan(begin, end - begin), seed);
}

FailureTable FailureTable::merge(std::span<const FailureTable> shards) {
  if (shards.empty()) {
    throw std::invalid_argument{"FailureTable::merge: no shards"};
  }
  std::vector<FailureTableRow> rows;
  std::size_t total = 0;
  for (const FailureTable& shard : shards) total += shard.rows().size();
  rows.reserve(total);
  for (const FailureTable& shard : shards) {
    rows.insert(rows.end(), shard.rows().begin(), shard.rows().end());
  }
  // The constructor sorts by vdd and rejects duplicates, which makes the
  // merge order-invariant and double-merge-safe in one step.
  return FailureTable{std::move(rows)};
}

BitcellFailureRates FailureTable::interpolate(double vdd, bool cell8) const {
  const auto pick = [cell8](const FailureTableRow& r) -> const BitcellFailureRates& {
    return cell8 ? r.cell8 : r.cell6;
  };
  if (vdd <= rows_.front().vdd) return pick(rows_.front());
  if (vdd >= rows_.back().vdd) return pick(rows_.back());
  for (std::size_t i = 1; i < rows_.size(); ++i) {
    if (vdd <= rows_[i].vdd) {
      const FailureTableRow& lo = rows_[i - 1];
      const FailureTableRow& hi = rows_[i];
      const double t = (vdd - lo.vdd) / (hi.vdd - lo.vdd);
      const BitcellFailureRates& a = pick(lo);
      const BitcellFailureRates& b = pick(hi);
      BitcellFailureRates out;
      // Rates fall with rising voltage; interpolate each mechanism.
      out.read_access = interp_prob(a.read_access, b.read_access, t);
      out.write_fail = interp_prob(a.write_fail, b.write_fail, t);
      out.read_disturb = interp_prob(a.read_disturb, b.read_disturb, t);
      return out;
    }
  }
  return pick(rows_.back());
}

double FailureTable::total_samples() const noexcept {
  double total = 0.0;
  for (const FailureTableRow& r : rows_) total += r.samples;
  return total;
}

double FailureTable::max_ci_half_width() const noexcept {
  double worst = 0.0;
  for (const FailureTableRow& r : rows_) {
    worst = std::max(worst, r.ci_half_width);
  }
  return worst;
}

BitcellFailureRates FailureTable::rates_6t(double vdd) const {
  if (rows_.empty()) throw std::logic_error{"FailureTable: empty"};
  return interpolate(vdd, false);
}

BitcellFailureRates FailureTable::rates_8t(double vdd) const {
  if (rows_.empty()) throw std::logic_error{"FailureTable: empty"};
  return interpolate(vdd, true);
}

void FailureTable::save_csv(const std::string& path,
                            std::uint64_t fingerprint) const {
  // Crash-safe persistence: write the full file to a sibling temp path,
  // then atomically rename it over the destination. An interrupted run can
  // leave a stale temp file behind, but never a truncated CSV at `path`
  // that a later load would have to detect and reject. The temp name is
  // unique per (process, call) so concurrent savers of the same path --
  // whether threads or processes sharing a cache directory -- cannot
  // interleave writes into one temp file (last rename wins, and every
  // candidate is complete).
  static std::atomic<unsigned long> save_seq{0};
  const std::string tmp = path + ".tmp." +
                          std::to_string(static_cast<long>(::getpid())) +
                          "." + std::to_string(save_seq.fetch_add(1));
  {
    std::ofstream out{tmp, std::ios::trunc};
    if (!out) throw std::runtime_error{"FailureTable: cannot open " + tmp};
    out << kCsvMagicV3 << std::hex << fingerprint << std::dec << '\n';
    out << kCsvColumnsV3 << '\n';
    out.precision(17);  // exact double round-trip
    for (const auto& r : rows_) {
      out << r.vdd << ',' << r.cell6.read_access << ',' << r.cell6.write_fail
          << ',' << r.cell6.read_disturb << ',' << r.cell8.read_access << ','
          << r.cell8.write_fail << ',' << r.cell8.read_disturb << ','
          << r.samples << ',' << r.ci_half_width << '\n';
    }
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw std::runtime_error{"FailureTable: short write to " + tmp};
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    const std::string why = ec.message();
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error{"FailureTable: cannot rename " + tmp + " to " +
                             path + ": " + why};
  }
}

std::optional<FailureTable> FailureTable::load_csv(
    const std::string& path, std::uint64_t expected_fingerprint,
    std::uint64_t* file_fingerprint) {
  if (file_fingerprint != nullptr) *file_fingerprint = 0;
  std::ifstream in{path};
  if (!in) return std::nullopt;
  std::string line;

  // Version/fingerprint header. v3 is current; v2 (no sampling-metadata
  // columns) still loads with zeroed metadata.
  if (!std::getline(in, line)) return std::nullopt;
  bool v3 = true;
  std::string_view magic = kCsvMagicV3;
  if (line.rfind(kCsvMagicV3, 0) != 0) {
    if (line.rfind(kCsvMagicV2, 0) != 0) {
      return std::nullopt;  // missing or pre-v2 header: treat as stale
    }
    v3 = false;
    magic = kCsvMagicV2;
  }
  std::uint64_t file_fp = 0;
  {
    std::istringstream fp{line.substr(magic.size())};
    fp >> std::hex >> file_fp;
    if (fp.fail()) return std::nullopt;
  }
  if (file_fingerprint != nullptr) *file_fingerprint = file_fp;
  if (expected_fingerprint != 0 && file_fp != expected_fingerprint) {
    return std::nullopt;  // a different table (grid/options/seed changed)
  }

  // Column line: v2 is the fixed legacy order; v3 names its columns and may
  // reorder them (the loader maps by name).
  if (!std::getline(in, line)) return std::nullopt;
  std::vector<std::size_t> order;
  if (v3) {
    std::optional<std::vector<std::size_t>> parsed = parse_column_order(line);
    if (!parsed) return std::nullopt;
    order = std::move(*parsed);
  } else {
    if (line != kCsvColumnsV2) return std::nullopt;
    order = {0, 1, 2, 3, 4, 5, 6};
  }

  std::vector<FailureTableRow> rows;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ss{line};
    FailureTableRow r;
    for (std::size_t f = 0; f < order.size(); ++f) {
      if (f > 0) {
        char comma = 0;
        if (!(ss >> comma) || comma != ',') return std::nullopt;
      }
      if (!(ss >> *row_field(r, order[f]))) return std::nullopt;
    }
    if (!(ss >> std::ws).eof()) return std::nullopt;
    if (!std::isfinite(r.vdd) || r.vdd <= 0.0) return std::nullopt;
    if (!std::isfinite(r.samples) || r.samples < 0.0) return std::nullopt;
    if (!std::isfinite(r.ci_half_width) || r.ci_half_width < 0.0 ||
        r.ci_half_width > 1.0) {
      return std::nullopt;
    }
    // The grid must be strictly increasing: save_csv writes sorted rows, so
    // a duplicate or out-of-order vdd means the file was hand-edited or two
    // shards were concatenated -- accepting it would corrupt shard merges
    // (FailureTable's constructor only catches the duplicate case, throwing
    // instead of reporting a load failure).
    if (!rows.empty() && r.vdd <= rows.back().vdd) return std::nullopt;
    for (double p : {r.cell6.read_access, r.cell6.write_fail,
                     r.cell6.read_disturb, r.cell8.read_access,
                     r.cell8.write_fail, r.cell8.read_disturb}) {
      if (!valid_rate(p)) return std::nullopt;
    }
    rows.push_back(r);
  }
  if (rows.empty()) return std::nullopt;
  return FailureTable{std::move(rows)};
}

}  // namespace hynapse::mc
