#include "mc/failure_table.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "util/parallel.hpp"

namespace hynapse::mc {

namespace {

// Interpolates a probability log-linearly; falls back to linear when either
// endpoint is zero (log undefined).
double interp_prob(double p_lo, double p_hi, double t) {
  if (p_lo > 0.0 && p_hi > 0.0) {
    return std::exp(std::log(p_lo) + t * (std::log(p_hi) - std::log(p_lo)));
  }
  return p_lo + t * (p_hi - p_lo);
}

// CSV format v2: first line "# hynapse-failure-table v2 fp=<hex64>",
// second line the column header, then one row per grid point.
constexpr std::string_view kCsvMagic = "# hynapse-failure-table v2 fp=";
constexpr std::string_view kCsvColumns = "vdd,ra6,wr6,rd6,ra8,wr8,rd8";

bool valid_rate(double p) {
  return std::isfinite(p) && p >= 0.0 && p <= 1.0;
}

}  // namespace

std::pair<std::size_t, std::size_t> shard_bounds(std::size_t n,
                                                 std::size_t shard,
                                                 std::size_t shard_count) {
  if (shard_count == 0 || shard >= shard_count) {
    throw std::invalid_argument{"shard_bounds: shard " + std::to_string(shard) +
                                " of " + std::to_string(shard_count)};
  }
  // i*n/count boundaries: contiguous, exhaustive, sizes differ by <= 1.
  return {shard * n / shard_count, (shard + 1) * n / shard_count};
}

FailureTable::FailureTable(std::vector<FailureTableRow> rows)
    : rows_{std::move(rows)} {
  if (rows_.empty()) throw std::invalid_argument{"FailureTable: no rows"};
  std::sort(rows_.begin(), rows_.end(),
            [](const FailureTableRow& a, const FailureTableRow& b) {
              return a.vdd < b.vdd;
            });
  for (std::size_t i = 1; i < rows_.size(); ++i) {
    if (rows_[i].vdd == rows_[i - 1].vdd) {
      throw std::invalid_argument{"FailureTable: duplicate vdd " +
                                  std::to_string(rows_[i].vdd)};
    }
  }
}

FailureTable FailureTable::build(const FailureAnalyzer& analyzer,
                                 std::span<const double> vdd_grid,
                                 std::uint64_t seed) {
  std::vector<FailureTableRow> rows(vdd_grid.size());
  for (std::size_t r = 0; r < vdd_grid.size(); ++r) rows[r].vdd = vdd_grid[r];

  // Flat (voltage x cell-type x mechanism) job matrix. Every job's seeds are
  // exactly those the serial per-voltage analyze_6t/analyze_8t calls derived,
  // so the table is bit-identical for any thread count, and each job writes
  // a distinct slot of its row.
  constexpr std::size_t kSlots = 5;
  const std::uint64_t seed8 = seed ^ 0xabcdefull;
  util::parallel_for(
      vdd_grid.size() * kSlots,
      [&](std::size_t j) {
        const std::size_t r = j / kSlots;
        const double vdd = rows[r].vdd;
        switch (j % kSlots) {
          case 0:
            rows[r].cell6.read_access =
                analyzer.estimate_6t(Mechanism::read_access, vdd, seed,
                                     seed + 777).p;
            break;
          case 1:
            rows[r].cell6.write_fail =
                analyzer.estimate_6t(Mechanism::write, vdd, seed + 101,
                                     seed + 778).p;
            break;
          case 2:
            rows[r].cell6.read_disturb =
                analyzer.estimate_6t(Mechanism::read_disturb, vdd, seed + 202,
                                     seed + 779).p;
            break;
          case 3:
            rows[r].cell8.read_access =
                analyzer.estimate_8t(Mechanism::read_access, vdd, seed8,
                                     seed8 + 555).p;
            break;
          case 4:
            rows[r].cell8.write_fail =
                analyzer.estimate_8t(Mechanism::write, vdd, seed8 + 131,
                                     seed8 + 556).p;
            break;
        }
      },
      analyzer.options().threads);
  return FailureTable{std::move(rows)};
}

FailureTable FailureTable::build_shard(const FailureAnalyzer& analyzer,
                                       std::span<const double> vdd_grid,
                                       std::uint64_t seed, std::size_t shard,
                                       std::size_t shard_count) {
  const auto [begin, end] = shard_bounds(vdd_grid.size(), shard, shard_count);
  if (begin == end) {
    throw std::invalid_argument{
        "FailureTable::build_shard: shard " + std::to_string(shard) + " of " +
        std::to_string(shard_count) + " is empty over a " +
        std::to_string(vdd_grid.size()) + "-point grid"};
  }
  // The per-mechanism seeds are functions of `seed` alone, so building the
  // sub-grid directly reproduces the monolithic rows bit-for-bit.
  return build(analyzer, vdd_grid.subspan(begin, end - begin), seed);
}

FailureTable FailureTable::merge(std::span<const FailureTable> shards) {
  if (shards.empty()) {
    throw std::invalid_argument{"FailureTable::merge: no shards"};
  }
  std::vector<FailureTableRow> rows;
  std::size_t total = 0;
  for (const FailureTable& shard : shards) total += shard.rows().size();
  rows.reserve(total);
  for (const FailureTable& shard : shards) {
    rows.insert(rows.end(), shard.rows().begin(), shard.rows().end());
  }
  // The constructor sorts by vdd and rejects duplicates, which makes the
  // merge order-invariant and double-merge-safe in one step.
  return FailureTable{std::move(rows)};
}

BitcellFailureRates FailureTable::interpolate(double vdd, bool cell8) const {
  const auto pick = [cell8](const FailureTableRow& r) -> const BitcellFailureRates& {
    return cell8 ? r.cell8 : r.cell6;
  };
  if (vdd <= rows_.front().vdd) return pick(rows_.front());
  if (vdd >= rows_.back().vdd) return pick(rows_.back());
  for (std::size_t i = 1; i < rows_.size(); ++i) {
    if (vdd <= rows_[i].vdd) {
      const FailureTableRow& lo = rows_[i - 1];
      const FailureTableRow& hi = rows_[i];
      const double t = (vdd - lo.vdd) / (hi.vdd - lo.vdd);
      const BitcellFailureRates& a = pick(lo);
      const BitcellFailureRates& b = pick(hi);
      BitcellFailureRates out;
      // Rates fall with rising voltage; interpolate each mechanism.
      out.read_access = interp_prob(a.read_access, b.read_access, t);
      out.write_fail = interp_prob(a.write_fail, b.write_fail, t);
      out.read_disturb = interp_prob(a.read_disturb, b.read_disturb, t);
      return out;
    }
  }
  return pick(rows_.back());
}

BitcellFailureRates FailureTable::rates_6t(double vdd) const {
  if (rows_.empty()) throw std::logic_error{"FailureTable: empty"};
  return interpolate(vdd, false);
}

BitcellFailureRates FailureTable::rates_8t(double vdd) const {
  if (rows_.empty()) throw std::logic_error{"FailureTable: empty"};
  return interpolate(vdd, true);
}

void FailureTable::save_csv(const std::string& path,
                            std::uint64_t fingerprint) const {
  // Crash-safe persistence: write the full file to a sibling temp path,
  // then atomically rename it over the destination. An interrupted run can
  // leave a stale temp file behind, but never a truncated CSV at `path`
  // that a later load would have to detect and reject. The temp name is
  // unique per (process, call) so concurrent savers of the same path --
  // whether threads or processes sharing a cache directory -- cannot
  // interleave writes into one temp file (last rename wins, and every
  // candidate is complete).
  static std::atomic<unsigned long> save_seq{0};
  const std::string tmp = path + ".tmp." +
                          std::to_string(static_cast<long>(::getpid())) +
                          "." + std::to_string(save_seq.fetch_add(1));
  {
    std::ofstream out{tmp, std::ios::trunc};
    if (!out) throw std::runtime_error{"FailureTable: cannot open " + tmp};
    out << kCsvMagic << std::hex << fingerprint << std::dec << '\n';
    out << kCsvColumns << '\n';
    out.precision(17);  // exact double round-trip
    for (const auto& r : rows_) {
      out << r.vdd << ',' << r.cell6.read_access << ',' << r.cell6.write_fail
          << ',' << r.cell6.read_disturb << ',' << r.cell8.read_access << ','
          << r.cell8.write_fail << ',' << r.cell8.read_disturb << '\n';
    }
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw std::runtime_error{"FailureTable: short write to " + tmp};
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    const std::string why = ec.message();
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error{"FailureTable: cannot rename " + tmp + " to " +
                             path + ": " + why};
  }
}

std::optional<FailureTable> FailureTable::load_csv(
    const std::string& path, std::uint64_t expected_fingerprint,
    std::uint64_t* file_fingerprint) {
  if (file_fingerprint != nullptr) *file_fingerprint = 0;
  std::ifstream in{path};
  if (!in) return std::nullopt;
  std::string line;

  // Version/fingerprint header.
  if (!std::getline(in, line) || line.rfind(kCsvMagic, 0) != 0) {
    return std::nullopt;  // missing or pre-v2 header: treat as stale
  }
  std::uint64_t file_fp = 0;
  {
    std::istringstream fp{line.substr(kCsvMagic.size())};
    fp >> std::hex >> file_fp;
    if (fp.fail()) return std::nullopt;
  }
  if (file_fingerprint != nullptr) *file_fingerprint = file_fp;
  if (expected_fingerprint != 0 && file_fp != expected_fingerprint) {
    return std::nullopt;  // a different table (grid/options/seed changed)
  }

  if (!std::getline(in, line) || line != kCsvColumns) return std::nullopt;

  std::vector<FailureTableRow> rows;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ss{line};
    FailureTableRow r;
    double* fields[] = {&r.vdd,
                        &r.cell6.read_access,
                        &r.cell6.write_fail,
                        &r.cell6.read_disturb,
                        &r.cell8.read_access,
                        &r.cell8.write_fail,
                        &r.cell8.read_disturb};
    for (std::size_t f = 0; f < 7; ++f) {
      if (f > 0) {
        char comma = 0;
        if (!(ss >> comma) || comma != ',') return std::nullopt;
      }
      if (!(ss >> *fields[f])) return std::nullopt;
    }
    if (!(ss >> std::ws).eof()) return std::nullopt;
    if (!std::isfinite(r.vdd) || r.vdd <= 0.0) return std::nullopt;
    // The grid must be strictly increasing: save_csv writes sorted rows, so
    // a duplicate or out-of-order vdd means the file was hand-edited or two
    // shards were concatenated -- accepting it would corrupt shard merges
    // (FailureTable's constructor only catches the duplicate case, throwing
    // instead of reporting a load failure).
    if (!rows.empty() && r.vdd <= rows.back().vdd) return std::nullopt;
    for (double p : {r.cell6.read_access, r.cell6.write_fail,
                     r.cell6.read_disturb, r.cell8.read_access,
                     r.cell8.write_fail, r.cell8.read_disturb}) {
      if (!valid_rate(p)) return std::nullopt;
    }
    rows.push_back(r);
  }
  if (rows.empty()) return std::nullopt;
  return FailureTable{std::move(rows)};
}

}  // namespace hynapse::mc
