#include "mc/margins.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/parallel.hpp"

namespace hynapse::mc {

namespace {

MarginDistribution summarize(std::vector<double> values,
                             std::size_t nonpositive, std::size_t total) {
  MarginDistribution d;
  d.samples = total;
  d.fraction_nonpositive =
      static_cast<double>(nonpositive) / static_cast<double>(total);
  if (values.empty()) return d;
  std::sort(values.begin(), values.end());
  util::RunningStats stats;
  for (double v : values) stats.add(v);
  d.mean = stats.mean();
  d.stddev = stats.stddev();
  d.min = values.front();
  d.p001 = util::percentile(values, 0.001);
  d.p01 = util::percentile(values, 0.01);
  d.p50 = util::percentile(values, 0.5);
  return d;
}

}  // namespace

MarginDistribution read_snm_distribution(const circuit::Technology& tech,
                                         const circuit::Sizing6T& sizing,
                                         const VariationSampler& sampler,
                                         double vdd, std::size_t n,
                                         std::uint64_t seed, int snm_grid) {
  std::vector<double> snm(n, 0.0);
  constexpr std::size_t kChunks = 16;
  const std::size_t per_chunk = (n + kChunks - 1) / kChunks;
  util::parallel_for(kChunks, [&](std::size_t c) {
    std::uint64_t s = seed ^ (0x9e3779b97f4a7c15ull * (c + 1));
    util::Rng rng{util::splitmix64(s)};
    for (std::size_t i = c * per_chunk;
         i < std::min(n, (c + 1) * per_chunk); ++i) {
      const circuit::Bitcell6T cell{tech, sizing, sampler.sample_6t(rng)};
      snm[i] = cell.read_snm(vdd, snm_grid);
    }
  });
  std::size_t nonpositive = 0;
  for (double v : snm)
    if (v <= 0.0) ++nonpositive;
  return summarize(std::move(snm), nonpositive, n);
}

MarginDistribution write_time_distribution(const circuit::Technology& tech,
                                           const circuit::Sizing6T& sizing,
                                           const VariationSampler& sampler,
                                           double vdd, double c_node,
                                           double t_max, std::size_t n,
                                           std::uint64_t seed) {
  std::vector<double> times;
  times.reserve(n);
  std::vector<double> raw(n, 0.0);
  constexpr std::size_t kChunks = 16;
  const std::size_t per_chunk = (n + kChunks - 1) / kChunks;
  util::parallel_for(kChunks, [&](std::size_t c) {
    std::uint64_t s = seed ^ (0xc2b2ae3d27d4eb4full * (c + 1));
    util::Rng rng{util::splitmix64(s)};
    for (std::size_t i = c * per_chunk;
         i < std::min(n, (c + 1) * per_chunk); ++i) {
      const circuit::Bitcell6T cell{tech, sizing, sampler.sample_6t(rng)};
      raw[i] = cell.write_flip_time(vdd, c_node, t_max);
    }
  });
  std::size_t unwriteable = 0;
  for (double t : raw) {
    if (std::isfinite(t)) {
      times.push_back(t);
    } else {
      ++unwriteable;
    }
  }
  return summarize(std::move(times), unwriteable, n);
}

}  // namespace hynapse::mc
