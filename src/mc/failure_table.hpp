// Voltage-indexed bitcell failure-rate table: the hand-off artifact between
// the circuit/Monte-Carlo level and the ANN fault-injection level ("The
// failure probabilities and the different synaptic memory configurations ...
// are fed to an ANN functional simulator", Section V).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "mc/montecarlo.hpp"

namespace hynapse::mc {

/// Point rates for one cell type at one voltage (probabilities per cell).
struct BitcellFailureRates {
  double read_access = 0.0;
  double write_fail = 0.0;
  double read_disturb = 0.0;

  [[nodiscard]] double total() const noexcept {
    return read_access + write_fail + read_disturb;
  }
};

struct FailureTableRow {
  double vdd = 0.0;
  BitcellFailureRates cell6;
  BitcellFailureRates cell8;
  /// CSV v3 sampling metadata: total MC + IS samples spent across this
  /// row's five estimates, and the worst (largest) CI half-width among
  /// them. Zero when loaded from a v2 CSV (which predates the columns).
  /// Stored as doubles so the CSV and wire codecs stay all-numeric; real
  /// counts are far below 2^53, so the round trip is exact.
  double samples = 0.0;
  double ci_half_width = 0.0;
};

/// Contiguous near-equal partition of [0, n) into `shard_count` slices:
/// the [begin, end) row range of shard `shard`. This is THE partition used
/// everywhere a voltage grid is sharded (FailureTable::build_shard,
/// engine::ShardPlanner), so independently computed plans agree on which
/// rows a shard owns. Requires shard < shard_count.
[[nodiscard]] std::pair<std::size_t, std::size_t> shard_bounds(
    std::size_t n, std::size_t shard, std::size_t shard_count);

/// Failure rates over a VDD grid with log-linear interpolation between grid
/// points (failure probability is near-exponential in voltage).
class FailureTable {
 public:
  FailureTable() = default;
  explicit FailureTable(std::vector<FailureTableRow> rows);

  /// Runs the analyzer over the voltage grid, scheduling the full
  /// (voltage x cell-type x mechanism) job matrix on the shared thread pool
  /// (participation capped by analyzer.options().threads). Each job uses the
  /// per-mechanism seeds of the serial path, so the result is deterministic
  /// in `seed` and bit-identical for any thread count.
  [[nodiscard]] static FailureTable build(const FailureAnalyzer& analyzer,
                                          std::span<const double> vdd_grid,
                                          std::uint64_t seed);

  /// Builds only shard `shard` of `shard_count` -- the shard_bounds() slice
  /// of `vdd_grid`. Because every row's per-mechanism seeds derive from
  /// `seed` alone (not the row index), a shard's rows are bit-identical to
  /// the same rows of a monolithic build(), for any shard count and any
  /// thread count; merge() reassembles the full table exactly.
  [[nodiscard]] static FailureTable build_shard(const FailureAnalyzer& analyzer,
                                                std::span<const double> vdd_grid,
                                                std::uint64_t seed,
                                                std::size_t shard,
                                                std::size_t shard_count);

  /// Reassembles a table from per-shard tables. Order-invariant: rows are
  /// sorted by vdd, so any shard arrival order yields the same table --
  /// bit-identical to a monolithic build() over the union grid when the
  /// shards came from build_shard() with one seed. Throws
  /// std::invalid_argument on an empty shard list or overlapping shards
  /// (duplicate vdd -- merging the same shard twice, or shards of two
  /// different plans, must never silently corrupt the grid).
  [[nodiscard]] static FailureTable merge(std::span<const FailureTable> shards);

  [[nodiscard]] BitcellFailureRates rates_6t(double vdd) const;
  [[nodiscard]] BitcellFailureRates rates_8t(double vdd) const;

  [[nodiscard]] const std::vector<FailureTableRow>& rows() const noexcept {
    return rows_;
  }

  /// Sum of the rows' sampling costs -- what the adaptive sampler reduces
  /// (0 when every row came from a v2 CSV).
  [[nodiscard]] double total_samples() const noexcept;
  /// Worst per-row achieved CI half-width across the table.
  [[nodiscard]] double max_ci_half_width() const noexcept;

  /// CSV round-trip so expensive tables can be cached between bench runs.
  ///
  /// The file starts with a format-version header that embeds `fingerprint`
  /// (a provenance hash -- see engine::table_fingerprint). load_csv rejects
  /// files with a missing/old header, a fingerprint differing from
  /// `expected_fingerprint` (when non-zero), or malformed rows, so a stale
  /// or foreign cache file can never be silently mistaken for the requested
  /// table. Data rows must form a strictly increasing vdd grid: duplicate
  /// or out-of-order voltages are rejected (a doctored or double-merged
  /// shard CSV would otherwise corrupt later merges and interpolation).
  /// `file_fingerprint`, when non-null, receives the header's
  /// fingerprint as soon as it parses -- even if validation fails later
  /// (0 when the header itself is missing/unreadable).
  void save_csv(const std::string& path, std::uint64_t fingerprint = 0) const;
  [[nodiscard]] static std::optional<FailureTable> load_csv(
      const std::string& path, std::uint64_t expected_fingerprint = 0,
      std::uint64_t* file_fingerprint = nullptr);

 private:
  [[nodiscard]] BitcellFailureRates interpolate(double vdd, bool cell8) const;

  std::vector<FailureTableRow> rows_;  // sorted by vdd ascending
};

}  // namespace hynapse::mc
