#include "mc/montecarlo.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace hynapse::mc {

namespace {

// Deterministic per-chunk seeding: the sample stream is split into a fixed
// number of chunks whose seeds derive only from (seed, chunk index), so the
// result is identical for any thread count.
constexpr std::size_t kChunks = 64;

std::uint64_t chunk_seed(std::uint64_t seed, std::size_t chunk) {
  std::uint64_t s = seed ^ (0x9e3779b97f4a7c15ull * (chunk + 1));
  return util::splitmix64(s);
}

RateEstimate finish_mc(std::size_t hits, std::size_t n) {
  RateEstimate r;
  r.trials = n;
  r.hits = static_cast<double>(hits);
  r.p = static_cast<double>(hits) / static_cast<double>(n);
  const auto ci = util::wilson_interval(hits, n);
  r.ci_lo = ci.lo;
  r.ci_hi = ci.hi;
  r.total_samples = n;
  return r;
}

// ---- adaptive (CI-targeted) sampling ---------------------------------------
// docs/adaptive_mc.md. Each batch is decomposed into kBatchChunks chunks;
// chunk c's stream is the batch's base Rng (seeded from (seed, batch index))
// jumped ahead by c * kChunkStride draws, so chunk streams never overlap and
// the batch result is bit-identical for any thread count. Batch sizes are a
// pure function of the policy and the deterministic cumulative (hits, trials)
// sequence, which makes the stopping decisions thread-count invariant too.

constexpr std::size_t kBatchChunks = 16;
constexpr std::uint64_t kChunkStride = 1ull << 44;

/// Process-wide adaptive-sampler counters (obs naming: mc.adaptive.*).
struct AdaptiveInstruments {
  obs::Counter& estimates;
  obs::Counter& batches;
  obs::Counter& samples_saved;
  obs::Counter& ci_misses;

  static AdaptiveInstruments& get() {
    static AdaptiveInstruments* instruments = [] {
      obs::Registry& r = obs::Registry::global();
      return new AdaptiveInstruments{
          r.counter("mc.adaptive.estimates"),
          r.counter("mc.adaptive.batches"),
          r.counter("mc.adaptive.samples_saved"),
          r.counter("mc.adaptive.ci_misses"),
      };
    }();
    return *instruments;
  }
};

/// Policy with every 0-means-default resolved against the analyzer options
/// and clamped to sane ranges (batches are chunk multiples, min <= max).
struct ResolvedPolicy {
  double rel = 0.0;
  double abs = 0.0;
  double z = 1.96;
  double confidence = 0.95;
  IntervalKind interval = IntervalKind::wilson;
  std::size_t batch0 = 0;
  double growth = 2.0;
  std::size_t min_mc = 0;
  std::size_t max_mc = 0;
  std::size_t tail_escape = 0;
  std::size_t max_is = 0;
  std::size_t min_hits = 0;
};

ResolvedPolicy resolve_policy(const AnalyzerOptions& opts) {
  const AdaptivePolicy& p = opts.adaptive;
  ResolvedPolicy r;
  r.rel = std::max(0.0, p.rel_target);
  r.abs = std::max(0.0, p.abs_target);
  r.z = p.z > 0.0 ? p.z : 1.96;
  r.confidence =
      std::clamp(2.0 * util::normal_cdf(r.z) - 1.0, 0.5, 1.0 - 1e-12);
  r.interval = p.interval;
  r.max_mc = std::max<std::size_t>(
      p.max_samples != 0 ? p.max_samples : opts.mc_samples, kBatchChunks);
  r.min_mc = std::clamp<std::size_t>(p.min_samples, kBatchChunks, r.max_mc);
  r.batch0 = std::clamp<std::size_t>(p.batch_samples, kBatchChunks, r.max_mc);
  r.growth = std::clamp(p.batch_growth, 1.0, 8.0);
  r.tail_escape =
      p.tail_escape_samples != 0
          ? std::clamp(p.tail_escape_samples, r.min_mc, r.max_mc)
          : r.max_mc;
  r.max_is = std::max<std::size_t>(
      p.max_is_samples != 0 ? p.max_is_samples : opts.is_samples,
      kBatchChunks);
  r.min_hits = opts.min_hits_for_mc;
  return r;
}

util::Interval stopping_interval(const ResolvedPolicy& pol, std::size_t hits,
                                 std::size_t trials) {
  if (pol.interval == IntervalKind::clopper_pearson) {
    return util::clopper_pearson_interval(hits, trials, pol.confidence);
  }
  return util::wilson_interval(hits, trials, pol.z);
}

/// The stopping rule proper: the looser of the relative and absolute
/// half-width targets wins; both zero (or p = 0 with no abs target) means
/// "keep sampling".
bool target_met(const ResolvedPolicy& pol, double p, double half_width) {
  const double target = std::max(pol.abs, pol.rel * p);
  return target > 0.0 && half_width <= target;
}

/// Next batch's chunk count: geometric request, clamped so the cumulative
/// trial count can never exceed the hard max clamp. 0 means the budget has
/// fewer than kBatchChunks trials left -- stop.
std::size_t next_per_chunk(double requested, std::size_t trials,
                           std::size_t max_total) {
  const std::size_t want = std::min<std::size_t>(
      static_cast<std::size_t>(requested), max_total - trials);
  std::size_t per_chunk = (want + kBatchChunks - 1) / kBatchChunks;
  if (trials + per_chunk * kBatchChunks > max_total) {
    per_chunk = (max_total - trials) / kBatchChunks;
  }
  return per_chunk;
}

template <typename HitFn>
std::size_t run_mc_batch(std::uint64_t seed, std::size_t batch,
                         std::size_t per_chunk, const HitFn& hit,
                         std::size_t threads) {
  const util::Rng base{chunk_seed(seed, batch)};
  return util::parallel_reduce(
      kBatchChunks, kBatchChunks, std::size_t{0},
      [&](std::size_t begin, std::size_t end) {
        std::size_t h = 0;
        for (std::size_t c = begin; c < end; ++c) {
          util::Rng rng = base;
          rng.discard(static_cast<std::uint64_t>(c) * kChunkStride);
          for (std::size_t s = 0; s < per_chunk; ++s) {
            if (hit(rng)) ++h;
          }
        }
        return h;
      },
      [](std::size_t a, std::size_t b) { return a + b; }, threads);
}

void record_adaptive(const AnalyzerOptions& opts, const RateEstimate& r) {
  AdaptiveInstruments& in = AdaptiveInstruments::get();
  in.estimates.add(1);
  in.batches.add(r.batches);
  if (opts.mc_samples > r.total_samples) {
    in.samples_saved.add(opts.mc_samples - r.total_samples);
  }
  if (!r.converged) in.ci_misses.add(1);
}

// Per-chunk partial of the weighted importance-sampling estimator. Partials
// are folded in ascending chunk order by parallel_reduce, reproducing the
// serial accumulation order bit-for-bit.
struct IsPartial {
  double sum_w = 0.0;
  double sum_w2 = 0.0;
  std::size_t hits = 0;
};

template <std::size_t D, typename MetricFn>
RateEstimate importance_sample(const MetricFn& metric,
                               const std::array<double, D>& sigmas,
                               std::size_t n, double beta, std::uint64_t seed,
                               std::size_t threads) {
  // Dominant failure direction from central differences at the origin,
  // expressed in standardized coordinates (one step = one sigma).
  std::array<double, D> grad{};
  double norm = 0.0;
  for (std::size_t i = 0; i < D; ++i) {
    std::array<double, D> plus{};
    std::array<double, D> minus{};
    plus[i] = 0.5 * sigmas[i];
    minus[i] = -0.5 * sigmas[i];
    grad[i] = metric(plus) - metric(minus);
    norm += grad[i] * grad[i];
  }
  norm = std::sqrt(norm);
  RateEstimate r;
  r.trials = n;
  r.importance_sampled = true;
  if (norm <= 0.0) {
    // Metric insensitive to variation at this voltage: nominal verdict only.
    std::array<double, D> origin{};
    r.p = metric(origin) > 0.0 ? 1.0 : 0.0;
    r.ci_lo = r.p;
    r.ci_hi = r.p;
    r.total_samples = r.trials;
    return r;
  }
  std::array<double, D> mu{};  // standardized shift
  for (std::size_t i = 0; i < D; ++i) mu[i] = beta * grad[i] / norm;
  const double mu_sq = beta * beta;

  const std::size_t per_chunk = (n + kChunks - 1) / kChunks;
  const IsPartial sum = util::parallel_reduce(
      kChunks, kChunks, IsPartial{},
      [&](std::size_t begin, std::size_t end) {
        IsPartial part;
        for (std::size_t c = begin; c < end; ++c) {
          util::Rng rng{chunk_seed(seed, c)};
          std::array<double, D> x{};
          for (std::size_t s = 0; s < per_chunk; ++s) {
            double dot = 0.0;
            for (std::size_t i = 0; i < D; ++i) {
              const double z = rng.normal();
              const double xi = mu[i] + z;
              dot += mu[i] * xi;
              x[i] = xi * sigmas[i];  // back to volts
            }
            if (metric(x) > 0.0) {
              const double w = std::exp(-dot + 0.5 * mu_sq);
              part.sum_w += w;
              part.sum_w2 += w * w;
              ++part.hits;
            }
          }
        }
        return part;
      },
      [](IsPartial a, IsPartial b) {
        a.sum_w += b.sum_w;
        a.sum_w2 += b.sum_w2;
        a.hits += b.hits;
        return a;
      },
      threads);

  const double total = static_cast<double>(per_chunk * kChunks);
  const double p = sum.sum_w / total;
  const double var = std::max(0.0, sum.sum_w2 / total - p * p) / total;
  const double se = std::sqrt(var);
  r.p = p;
  r.ci_lo = std::max(0.0, p - 1.96 * se);
  r.ci_hi = std::min(1.0, p + 1.96 * se);
  r.trials = static_cast<std::size_t>(total);
  r.hits = static_cast<double>(sum.hits);
  r.total_samples = r.trials;
  return r;
}

template <std::size_t D, typename MetricFn>
IsPartial run_is_batch(std::uint64_t seed, std::size_t batch,
                       std::size_t per_chunk, const MetricFn& metric,
                       const std::array<double, D>& sigmas,
                       const std::array<double, D>& mu, double mu_sq,
                       std::size_t threads) {
  const util::Rng base{chunk_seed(seed, batch)};
  return util::parallel_reduce(
      kBatchChunks, kBatchChunks, IsPartial{},
      [&](std::size_t begin, std::size_t end) {
        IsPartial part;
        for (std::size_t c = begin; c < end; ++c) {
          util::Rng rng = base;
          rng.discard(static_cast<std::uint64_t>(c) * kChunkStride);
          std::array<double, D> x{};
          for (std::size_t s = 0; s < per_chunk; ++s) {
            double dot = 0.0;
            for (std::size_t i = 0; i < D; ++i) {
              const double z = rng.normal();
              const double xi = mu[i] + z;
              dot += mu[i] * xi;
              x[i] = xi * sigmas[i];
            }
            if (metric(x) > 0.0) {
              const double w = std::exp(-dot + 0.5 * mu_sq);
              part.sum_w += w;
              part.sum_w2 += w * w;
              ++part.hits;
            }
          }
        }
        return part;
      },
      [](IsPartial a, IsPartial b) {
        a.sum_w += b.sum_w;
        a.sum_w2 += b.sum_w2;
        a.hits += b.hits;
        return a;
      },
      threads);
}

/// Importance-sampled tail phase of the adaptive path: same mean-shifted
/// estimator as importance_sample, run in growing batches until the
/// delta-method CI meets the policy target or the IS clamp is spent.
template <std::size_t D, typename MetricFn>
RateEstimate adaptive_importance(const MetricFn& metric,
                                 const std::array<double, D>& sigmas,
                                 const ResolvedPolicy& pol, double beta,
                                 std::uint64_t seed, std::size_t threads) {
  std::array<double, D> grad{};
  double norm = 0.0;
  for (std::size_t i = 0; i < D; ++i) {
    std::array<double, D> plus{};
    std::array<double, D> minus{};
    plus[i] = 0.5 * sigmas[i];
    minus[i] = -0.5 * sigmas[i];
    grad[i] = metric(plus) - metric(minus);
    norm += grad[i] * grad[i];
  }
  norm = std::sqrt(norm);
  RateEstimate r;
  r.importance_sampled = true;
  if (norm <= 0.0) {
    std::array<double, D> origin{};
    r.p = metric(origin) > 0.0 ? 1.0 : 0.0;
    r.ci_lo = r.p;
    r.ci_hi = r.p;
    r.batches = 0;
    return r;
  }
  std::array<double, D> mu{};
  for (std::size_t i = 0; i < D; ++i) mu[i] = beta * grad[i] / norm;
  const double mu_sq = beta * beta;

  double sum_w = 0.0;
  double sum_w2 = 0.0;
  std::size_t raw_hits = 0;
  std::size_t trials = 0;
  std::size_t batches = 0;
  bool converged = false;
  double next_batch = static_cast<double>(pol.batch0);
  double p = 0.0;
  double se = 0.0;
  while (trials < pol.max_is) {
    const std::size_t per_chunk = next_per_chunk(next_batch, trials,
                                                 pol.max_is);
    if (per_chunk == 0) break;
    const IsPartial part = run_is_batch<D>(seed, batches, per_chunk, metric,
                                           sigmas, mu, mu_sq, threads);
    sum_w += part.sum_w;
    sum_w2 += part.sum_w2;
    raw_hits += part.hits;
    trials += per_chunk * kBatchChunks;
    ++batches;
    next_batch *= pol.growth;

    const double total = static_cast<double>(trials);
    p = sum_w / total;
    const double var = std::max(0.0, sum_w2 / total - p * p) / total;
    se = std::sqrt(var);
    if (target_met(pol, p, pol.z * se)) {
      converged = true;
      break;
    }
  }
  r.p = p;
  r.ci_lo = std::max(0.0, p - pol.z * se);
  r.ci_hi = std::min(1.0, p + pol.z * se);
  r.trials = trials;
  r.hits = static_cast<double>(raw_hits);
  r.total_samples = trials;
  r.batches = batches;
  r.converged = converged;
  return r;
}

/// The adaptive driver: batched plain MC with the CI stopping rule, escaping
/// to the importance-sampled tail once the mechanism is demonstrably rare:
/// after tail_escape trials, when the CI upper bound on p projects fewer
/// than min_hits_for_mc hits over the full plain-MC budget (or when the
/// budget runs out still hit-starved).
template <std::size_t D, typename HitFn, typename MetricFn>
RateEstimate adaptive_estimate(const AnalyzerOptions& opts, const HitFn& hit,
                               const MetricFn& metric,
                               const std::array<double, D>& sigmas,
                               std::uint64_t mc_seed, std::uint64_t is_seed) {
  const ResolvedPolicy pol = resolve_policy(opts);
  std::size_t hits = 0;
  std::size_t trials = 0;
  std::size_t batches = 0;
  bool converged = false;
  double next_batch = static_cast<double>(pol.batch0);
  util::Interval ci{};
  while (trials < pol.max_mc) {
    const std::size_t per_chunk = next_per_chunk(next_batch, trials,
                                                 pol.max_mc);
    if (per_chunk == 0) break;
    hits += run_mc_batch(mc_seed, batches, per_chunk, hit, opts.threads);
    trials += per_chunk * kBatchChunks;
    ++batches;
    next_batch *= pol.growth;

    ci = stopping_interval(pol, hits, trials);
    if (trials < pol.min_mc) continue;  // hard min clamp: no stopping yet
    const double p = static_cast<double>(hits) / static_cast<double>(trials);
    if (hits >= pol.min_hits) {
      if (target_met(pol, p, 0.5 * (ci.hi - ci.lo))) {
        converged = true;
        break;
      }
    } else if (trials >= pol.tail_escape &&
               ci.hi * static_cast<double>(pol.max_mc) <
                   1.5 * static_cast<double>(pol.min_hits)) {
      // Demonstrably rare: even p at its CI upper bound projects into the
      // fixed path's own IS-fallback region (under min_hits over the FULL
      // plain-MC budget, with 1.5x slack because ci.hi is already a
      // conservative upper-confidence bound), so the mechanism is beyond
      // plain-MC reach and the budget is better spent on the IS tail. (A
      // merely hit-starved mechanism -- say p ~ 2e-3 with ~8 hits in the
      // escape window -- fails this test by an order of magnitude and keeps
      // sampling plain MC, where its estimate is unbiased; the IS
      // mean-shift is tuned for far-tail rates and is the wrong tool
      // there.)
      break;
    }
  }

  if (hits >= pol.min_hits) {
    RateEstimate r;
    r.p = static_cast<double>(hits) / static_cast<double>(trials);
    r.ci_lo = ci.lo;
    r.ci_hi = ci.hi;
    r.trials = trials;
    r.hits = static_cast<double>(hits);
    r.total_samples = trials;
    r.batches = batches;
    r.converged = converged;
    record_adaptive(opts, r);
    return r;
  }

  RateEstimate r = adaptive_importance<D>(metric, sigmas, pol, opts.is_beta,
                                          is_seed, opts.threads);
  // Consistency guard: the escape was a projection from sparse evidence. If
  // the IS answer falls below even the lower confidence bound of the plain-MC
  // hits already observed, the mean-shift missed the dominant failure region
  // (its moderate-p bias, not a tail) -- discard it and resume plain MC,
  // whose estimate is unbiased at any rate. Genuine tail escapes observe
  // zero hits and are untouched. Depends only on deterministic counts, so
  // thread-count invariance is preserved.
  if (hits > 0 && r.p < stopping_interval(pol, hits, trials).lo) {
    while (trials < pol.max_mc) {
      const std::size_t per_chunk = next_per_chunk(next_batch, trials,
                                                   pol.max_mc);
      if (per_chunk == 0) break;
      hits += run_mc_batch(mc_seed, batches, per_chunk, hit, opts.threads);
      trials += per_chunk * kBatchChunks;
      ++batches;
      next_batch *= pol.growth;
      ci = stopping_interval(pol, hits, trials);
      const double p = static_cast<double>(hits) / static_cast<double>(trials);
      if (target_met(pol, p, 0.5 * (ci.hi - ci.lo))) {
        converged = true;
        break;
      }
    }
    RateEstimate mc;
    mc.p = static_cast<double>(hits) / static_cast<double>(trials);
    mc.ci_lo = ci.lo;
    mc.ci_hi = ci.hi;
    mc.trials = trials;
    mc.hits = static_cast<double>(hits);
    mc.total_samples = trials + r.trials;
    mc.batches = batches + r.batches;
    mc.converged = converged;
    record_adaptive(opts, mc);
    return mc;
  }
  r.total_samples += trials;
  r.batches += batches;
  record_adaptive(opts, r);
  return r;
}

}  // namespace

FailureAnalyzer::FailureAnalyzer(const FailureCriteria& criteria,
                                 const VariationSampler& sampler,
                                 AnalyzerOptions opts)
    : criteria_{&criteria}, sampler_{&sampler}, opts_{opts} {}

RateEstimate FailureAnalyzer::plain_mc_6t(Mechanism m, double vdd,
                                          std::size_t n,
                                          std::uint64_t seed) const {
  const std::size_t per_chunk = (n + kChunks - 1) / kChunks;
  const std::size_t hits = util::parallel_reduce(
      kChunks, kChunks, std::size_t{0},
      [&](std::size_t begin, std::size_t end) {
        std::size_t h = 0;
        for (std::size_t c = begin; c < end; ++c) {
          util::Rng rng{chunk_seed(seed, c)};
          for (std::size_t s = 0; s < per_chunk; ++s) {
            const circuit::Variation6T var = sampler_->sample_6t(rng);
            if (criteria_->metric_6t(m, var, vdd) > 0.0) ++h;
          }
        }
        return h;
      },
      [](std::size_t a, std::size_t b) { return a + b; }, opts_.threads);
  return finish_mc(hits, per_chunk * kChunks);
}

RateEstimate FailureAnalyzer::plain_mc_8t(Mechanism m, double vdd,
                                          std::size_t n,
                                          std::uint64_t seed) const {
  const std::size_t per_chunk = (n + kChunks - 1) / kChunks;
  const std::size_t hits = util::parallel_reduce(
      kChunks, kChunks, std::size_t{0},
      [&](std::size_t begin, std::size_t end) {
        std::size_t h = 0;
        for (std::size_t c = begin; c < end; ++c) {
          util::Rng rng{chunk_seed(seed, c)};
          for (std::size_t s = 0; s < per_chunk; ++s) {
            const circuit::Variation8T var = sampler_->sample_8t(rng);
            if (criteria_->metric_8t(m, var, vdd) > 0.0) ++h;
          }
        }
        return h;
      },
      [](std::size_t a, std::size_t b) { return a + b; }, opts_.threads);
  return finish_mc(hits, per_chunk * kChunks);
}

RateEstimate FailureAnalyzer::importance_6t(Mechanism m, double vdd,
                                            std::size_t n,
                                            std::uint64_t seed) const {
  const auto metric = [&](const std::array<double, k6t_devices>& dvt) {
    return criteria_->metric_6t(m, VariationSampler::pack_6t(dvt), vdd);
  };
  return importance_sample<k6t_devices>(metric, sampler_->sigmas_6t(), n,
                                        opts_.is_beta, seed, opts_.threads);
}

RateEstimate FailureAnalyzer::importance_8t(Mechanism m, double vdd,
                                            std::size_t n,
                                            std::uint64_t seed) const {
  const auto metric = [&](const std::array<double, k8t_devices>& dvt) {
    return criteria_->metric_8t(m, VariationSampler::pack_8t(dvt), vdd);
  };
  return importance_sample<k8t_devices>(metric, sampler_->sigmas_8t(), n,
                                        opts_.is_beta, seed, opts_.threads);
}

RateEstimate FailureAnalyzer::retention_6t(double v_standby,
                                           std::uint64_t seed) const {
  // Plain MC on the hold limit-state.
  const std::size_t per_chunk = (opts_.mc_samples + kChunks - 1) / kChunks;
  const std::size_t hits = util::parallel_reduce(
      kChunks, kChunks, std::size_t{0},
      [&](std::size_t begin, std::size_t end) {
        std::size_t h = 0;
        for (std::size_t c = begin; c < end; ++c) {
          util::Rng rng{chunk_seed(seed, c)};
          for (std::size_t s = 0; s < per_chunk; ++s) {
            const circuit::Variation6T var = sampler_->sample_6t(rng);
            if (criteria_->hold_metric_6t(var, v_standby) > 0.0) ++h;
          }
        }
        return h;
      },
      [](std::size_t a, std::size_t b) { return a + b; }, opts_.threads);
  RateEstimate est = finish_mc(hits, per_chunk * kChunks);
  if (est.hits >= static_cast<double>(opts_.min_hits_for_mc)) return est;

  const auto metric = [&](const std::array<double, k6t_devices>& dvt) {
    return criteria_->hold_metric_6t(VariationSampler::pack_6t(dvt),
                                     v_standby);
  };
  return importance_sample<k6t_devices>(metric, sampler_->sigmas_6t(),
                                        opts_.is_samples, opts_.is_beta,
                                        seed ^ 0xfeedull, opts_.threads);
}

RateEstimate FailureAnalyzer::estimate_6t(Mechanism m, double vdd,
                                          std::uint64_t mc_seed,
                                          std::uint64_t is_seed) const {
  if (opts_.adaptive.enabled) return adaptive_6t(m, vdd, mc_seed, is_seed);
  RateEstimate est = plain_mc_6t(m, vdd, opts_.mc_samples, mc_seed);
  if (est.hits < static_cast<double>(opts_.min_hits_for_mc)) {
    const std::size_t mc_spent = est.total_samples;
    est = importance_6t(m, vdd, opts_.is_samples, is_seed);
    est.total_samples += mc_spent;
    ++est.batches;
  }
  return est;
}

RateEstimate FailureAnalyzer::estimate_8t(Mechanism m, double vdd,
                                          std::uint64_t mc_seed,
                                          std::uint64_t is_seed) const {
  if (opts_.adaptive.enabled) return adaptive_8t(m, vdd, mc_seed, is_seed);
  RateEstimate est = plain_mc_8t(m, vdd, opts_.mc_samples, mc_seed);
  if (est.hits < static_cast<double>(opts_.min_hits_for_mc)) {
    const std::size_t mc_spent = est.total_samples;
    est = importance_8t(m, vdd, opts_.is_samples, is_seed);
    est.total_samples += mc_spent;
    ++est.batches;
  }
  return est;
}

RateEstimate FailureAnalyzer::adaptive_6t(Mechanism m, double vdd,
                                          std::uint64_t mc_seed,
                                          std::uint64_t is_seed) const {
  const auto hit = [&](util::Rng& rng) {
    return criteria_->metric_6t(m, sampler_->sample_6t(rng), vdd) > 0.0;
  };
  const auto metric = [&](const std::array<double, k6t_devices>& dvt) {
    return criteria_->metric_6t(m, VariationSampler::pack_6t(dvt), vdd);
  };
  return adaptive_estimate<k6t_devices>(opts_, hit, metric,
                                        sampler_->sigmas_6t(), mc_seed,
                                        is_seed);
}

RateEstimate FailureAnalyzer::adaptive_8t(Mechanism m, double vdd,
                                          std::uint64_t mc_seed,
                                          std::uint64_t is_seed) const {
  const auto hit = [&](util::Rng& rng) {
    return criteria_->metric_8t(m, sampler_->sample_8t(rng), vdd) > 0.0;
  };
  const auto metric = [&](const std::array<double, k8t_devices>& dvt) {
    return criteria_->metric_8t(m, VariationSampler::pack_8t(dvt), vdd);
  };
  return adaptive_estimate<k8t_devices>(opts_, hit, metric,
                                        sampler_->sigmas_8t(), mc_seed,
                                        is_seed);
}

CellFailureRates FailureAnalyzer::analyze_6t(double vdd,
                                             std::uint64_t seed) const {
  CellFailureRates out;
  const Mechanism mechs[] = {Mechanism::read_access, Mechanism::write,
                             Mechanism::read_disturb};
  RateEstimate* slots[] = {&out.read_access, &out.write_fail,
                           &out.read_disturb};
  for (std::uint64_t i = 0; i < 3; ++i) {
    *slots[i] = estimate_6t(mechs[i], vdd, seed + 101 * i, seed + 777 + i);
  }
  return out;
}

CellFailureRates FailureAnalyzer::analyze_8t(double vdd,
                                             std::uint64_t seed) const {
  CellFailureRates out;
  const Mechanism mechs[] = {Mechanism::read_access, Mechanism::write};
  RateEstimate* slots[] = {&out.read_access, &out.write_fail};
  for (std::uint64_t i = 0; i < 2; ++i) {
    *slots[i] = estimate_8t(mechs[i], vdd, seed + 131 * i, seed + 555 + i);
  }
  out.read_disturb = RateEstimate{};  // structurally impossible
  out.read_disturb.trials = opts_.mc_samples;
  return out;
}

}  // namespace hynapse::mc
