#include "mc/montecarlo.hpp"

#include <algorithm>
#include <cmath>

#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace hynapse::mc {

namespace {

// Deterministic per-chunk seeding: the sample stream is split into a fixed
// number of chunks whose seeds derive only from (seed, chunk index), so the
// result is identical for any thread count.
constexpr std::size_t kChunks = 64;

std::uint64_t chunk_seed(std::uint64_t seed, std::size_t chunk) {
  std::uint64_t s = seed ^ (0x9e3779b97f4a7c15ull * (chunk + 1));
  return util::splitmix64(s);
}

RateEstimate finish_mc(std::size_t hits, std::size_t n) {
  RateEstimate r;
  r.trials = n;
  r.hits = static_cast<double>(hits);
  r.p = static_cast<double>(hits) / static_cast<double>(n);
  const auto ci = util::wilson_interval(hits, n);
  r.ci_lo = ci.lo;
  r.ci_hi = ci.hi;
  return r;
}

// Per-chunk partial of the weighted importance-sampling estimator. Partials
// are folded in ascending chunk order by parallel_reduce, reproducing the
// serial accumulation order bit-for-bit.
struct IsPartial {
  double sum_w = 0.0;
  double sum_w2 = 0.0;
  std::size_t hits = 0;
};

template <std::size_t D, typename MetricFn>
RateEstimate importance_sample(const MetricFn& metric,
                               const std::array<double, D>& sigmas,
                               std::size_t n, double beta, std::uint64_t seed,
                               std::size_t threads) {
  // Dominant failure direction from central differences at the origin,
  // expressed in standardized coordinates (one step = one sigma).
  std::array<double, D> grad{};
  double norm = 0.0;
  for (std::size_t i = 0; i < D; ++i) {
    std::array<double, D> plus{};
    std::array<double, D> minus{};
    plus[i] = 0.5 * sigmas[i];
    minus[i] = -0.5 * sigmas[i];
    grad[i] = metric(plus) - metric(minus);
    norm += grad[i] * grad[i];
  }
  norm = std::sqrt(norm);
  RateEstimate r;
  r.trials = n;
  r.importance_sampled = true;
  if (norm <= 0.0) {
    // Metric insensitive to variation at this voltage: nominal verdict only.
    std::array<double, D> origin{};
    r.p = metric(origin) > 0.0 ? 1.0 : 0.0;
    r.ci_lo = r.p;
    r.ci_hi = r.p;
    return r;
  }
  std::array<double, D> mu{};  // standardized shift
  for (std::size_t i = 0; i < D; ++i) mu[i] = beta * grad[i] / norm;
  const double mu_sq = beta * beta;

  const std::size_t per_chunk = (n + kChunks - 1) / kChunks;
  const IsPartial sum = util::parallel_reduce(
      kChunks, kChunks, IsPartial{},
      [&](std::size_t begin, std::size_t end) {
        IsPartial part;
        for (std::size_t c = begin; c < end; ++c) {
          util::Rng rng{chunk_seed(seed, c)};
          std::array<double, D> x{};
          for (std::size_t s = 0; s < per_chunk; ++s) {
            double dot = 0.0;
            for (std::size_t i = 0; i < D; ++i) {
              const double z = rng.normal();
              const double xi = mu[i] + z;
              dot += mu[i] * xi;
              x[i] = xi * sigmas[i];  // back to volts
            }
            if (metric(x) > 0.0) {
              const double w = std::exp(-dot + 0.5 * mu_sq);
              part.sum_w += w;
              part.sum_w2 += w * w;
              ++part.hits;
            }
          }
        }
        return part;
      },
      [](IsPartial a, IsPartial b) {
        a.sum_w += b.sum_w;
        a.sum_w2 += b.sum_w2;
        a.hits += b.hits;
        return a;
      },
      threads);

  const double total = static_cast<double>(per_chunk * kChunks);
  const double p = sum.sum_w / total;
  const double var = std::max(0.0, sum.sum_w2 / total - p * p) / total;
  const double se = std::sqrt(var);
  r.p = p;
  r.ci_lo = std::max(0.0, p - 1.96 * se);
  r.ci_hi = std::min(1.0, p + 1.96 * se);
  r.trials = static_cast<std::size_t>(total);
  r.hits = static_cast<double>(sum.hits);
  return r;
}

}  // namespace

FailureAnalyzer::FailureAnalyzer(const FailureCriteria& criteria,
                                 const VariationSampler& sampler,
                                 AnalyzerOptions opts)
    : criteria_{&criteria}, sampler_{&sampler}, opts_{opts} {}

RateEstimate FailureAnalyzer::plain_mc_6t(Mechanism m, double vdd,
                                          std::size_t n,
                                          std::uint64_t seed) const {
  const std::size_t per_chunk = (n + kChunks - 1) / kChunks;
  const std::size_t hits = util::parallel_reduce(
      kChunks, kChunks, std::size_t{0},
      [&](std::size_t begin, std::size_t end) {
        std::size_t h = 0;
        for (std::size_t c = begin; c < end; ++c) {
          util::Rng rng{chunk_seed(seed, c)};
          for (std::size_t s = 0; s < per_chunk; ++s) {
            const circuit::Variation6T var = sampler_->sample_6t(rng);
            if (criteria_->metric_6t(m, var, vdd) > 0.0) ++h;
          }
        }
        return h;
      },
      [](std::size_t a, std::size_t b) { return a + b; }, opts_.threads);
  return finish_mc(hits, per_chunk * kChunks);
}

RateEstimate FailureAnalyzer::plain_mc_8t(Mechanism m, double vdd,
                                          std::size_t n,
                                          std::uint64_t seed) const {
  const std::size_t per_chunk = (n + kChunks - 1) / kChunks;
  const std::size_t hits = util::parallel_reduce(
      kChunks, kChunks, std::size_t{0},
      [&](std::size_t begin, std::size_t end) {
        std::size_t h = 0;
        for (std::size_t c = begin; c < end; ++c) {
          util::Rng rng{chunk_seed(seed, c)};
          for (std::size_t s = 0; s < per_chunk; ++s) {
            const circuit::Variation8T var = sampler_->sample_8t(rng);
            if (criteria_->metric_8t(m, var, vdd) > 0.0) ++h;
          }
        }
        return h;
      },
      [](std::size_t a, std::size_t b) { return a + b; }, opts_.threads);
  return finish_mc(hits, per_chunk * kChunks);
}

RateEstimate FailureAnalyzer::importance_6t(Mechanism m, double vdd,
                                            std::size_t n,
                                            std::uint64_t seed) const {
  const auto metric = [&](const std::array<double, k6t_devices>& dvt) {
    return criteria_->metric_6t(m, VariationSampler::pack_6t(dvt), vdd);
  };
  return importance_sample<k6t_devices>(metric, sampler_->sigmas_6t(), n,
                                        opts_.is_beta, seed, opts_.threads);
}

RateEstimate FailureAnalyzer::importance_8t(Mechanism m, double vdd,
                                            std::size_t n,
                                            std::uint64_t seed) const {
  const auto metric = [&](const std::array<double, k8t_devices>& dvt) {
    return criteria_->metric_8t(m, VariationSampler::pack_8t(dvt), vdd);
  };
  return importance_sample<k8t_devices>(metric, sampler_->sigmas_8t(), n,
                                        opts_.is_beta, seed, opts_.threads);
}

RateEstimate FailureAnalyzer::retention_6t(double v_standby,
                                           std::uint64_t seed) const {
  // Plain MC on the hold limit-state.
  const std::size_t per_chunk = (opts_.mc_samples + kChunks - 1) / kChunks;
  const std::size_t hits = util::parallel_reduce(
      kChunks, kChunks, std::size_t{0},
      [&](std::size_t begin, std::size_t end) {
        std::size_t h = 0;
        for (std::size_t c = begin; c < end; ++c) {
          util::Rng rng{chunk_seed(seed, c)};
          for (std::size_t s = 0; s < per_chunk; ++s) {
            const circuit::Variation6T var = sampler_->sample_6t(rng);
            if (criteria_->hold_metric_6t(var, v_standby) > 0.0) ++h;
          }
        }
        return h;
      },
      [](std::size_t a, std::size_t b) { return a + b; }, opts_.threads);
  RateEstimate est = finish_mc(hits, per_chunk * kChunks);
  if (est.hits >= static_cast<double>(opts_.min_hits_for_mc)) return est;

  const auto metric = [&](const std::array<double, k6t_devices>& dvt) {
    return criteria_->hold_metric_6t(VariationSampler::pack_6t(dvt),
                                     v_standby);
  };
  return importance_sample<k6t_devices>(metric, sampler_->sigmas_6t(),
                                        opts_.is_samples, opts_.is_beta,
                                        seed ^ 0xfeedull, opts_.threads);
}

RateEstimate FailureAnalyzer::estimate_6t(Mechanism m, double vdd,
                                          std::uint64_t mc_seed,
                                          std::uint64_t is_seed) const {
  RateEstimate est = plain_mc_6t(m, vdd, opts_.mc_samples, mc_seed);
  if (est.hits < static_cast<double>(opts_.min_hits_for_mc)) {
    est = importance_6t(m, vdd, opts_.is_samples, is_seed);
  }
  return est;
}

RateEstimate FailureAnalyzer::estimate_8t(Mechanism m, double vdd,
                                          std::uint64_t mc_seed,
                                          std::uint64_t is_seed) const {
  RateEstimate est = plain_mc_8t(m, vdd, opts_.mc_samples, mc_seed);
  if (est.hits < static_cast<double>(opts_.min_hits_for_mc)) {
    est = importance_8t(m, vdd, opts_.is_samples, is_seed);
  }
  return est;
}

CellFailureRates FailureAnalyzer::analyze_6t(double vdd,
                                             std::uint64_t seed) const {
  CellFailureRates out;
  const Mechanism mechs[] = {Mechanism::read_access, Mechanism::write,
                             Mechanism::read_disturb};
  RateEstimate* slots[] = {&out.read_access, &out.write_fail,
                           &out.read_disturb};
  for (std::uint64_t i = 0; i < 3; ++i) {
    *slots[i] = estimate_6t(mechs[i], vdd, seed + 101 * i, seed + 777 + i);
  }
  return out;
}

CellFailureRates FailureAnalyzer::analyze_8t(double vdd,
                                             std::uint64_t seed) const {
  CellFailureRates out;
  const Mechanism mechs[] = {Mechanism::read_access, Mechanism::write};
  RateEstimate* slots[] = {&out.read_access, &out.write_fail};
  for (std::uint64_t i = 0; i < 2; ++i) {
    *slots[i] = estimate_8t(mechs[i], vdd, seed + 131 * i, seed + 555 + i);
  }
  out.read_disturb = RateEstimate{};  // structurally impossible
  out.read_disturb.trials = opts_.mc_samples;
  return out;
}

}  // namespace hynapse::mc
