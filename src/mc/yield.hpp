// Array-level yield arithmetic on top of the per-cell failure rates: what
// fraction of 256x256 sub-arrays (or full synaptic memories) are fault-free,
// and how much row/column sparing buys. The paper's architecture tolerates
// faults at the application level; this module quantifies the conventional
// repair-based alternative for comparison.
#pragma once

#include <cstddef>

#include "mc/failure_table.hpp"

namespace hynapse::mc {

struct ArrayYield {
  double p_cell = 0.0;   ///< per-cell any-mechanism failure probability
  double p_word = 0.0;   ///< P(at least one failing cell in a word)
  double p_array_clean = 0.0;  ///< P(zero failing cells in the array)
  double expected_failures = 0.0;  ///< mean failing cells per array
};

/// Combines the mechanism rates (mutually exclusive per cell) into
/// word/array yield figures for `cells` bitcells grouped into
/// `word_bits`-cell words.
[[nodiscard]] ArrayYield array_yield(const BitcellFailureRates& rates,
                                     std::size_t cells, int word_bits);

/// Yield with repair: probability that the number of failing cells does not
/// exceed the spare capacity, under the Poisson approximation of the
/// binomial defect count (tight for the small rates involved).
[[nodiscard]] double yield_with_sparing(double p_cell, std::size_t cells,
                                        std::size_t repairable_faults);

}  // namespace hynapse::mc
