#include "mc/yield.hpp"

#include <cmath>
#include <stdexcept>

namespace hynapse::mc {

ArrayYield array_yield(const BitcellFailureRates& rates, std::size_t cells,
                       int word_bits) {
  if (cells == 0 || word_bits <= 0)
    throw std::invalid_argument{"array_yield: bad geometry"};
  ArrayYield y;
  y.p_cell = std::min(1.0, rates.total());
  y.p_word = 1.0 - std::pow(1.0 - y.p_cell, word_bits);
  // log1p keeps the clean-array probability accurate when p_cell is tiny
  // and cells is large (65536 for the paper's sub-array).
  y.p_array_clean =
      std::exp(static_cast<double>(cells) * std::log1p(-y.p_cell));
  y.expected_failures = static_cast<double>(cells) * y.p_cell;
  return y;
}

double yield_with_sparing(double p_cell, std::size_t cells,
                          std::size_t repairable_faults) {
  if (p_cell < 0.0 || p_cell > 1.0)
    throw std::invalid_argument{"yield_with_sparing: bad probability"};
  const double lambda = static_cast<double>(cells) * p_cell;
  // Poisson CDF evaluated with running terms to avoid factorial overflow.
  double term = std::exp(-lambda);
  double cdf = term;
  for (std::size_t k = 1; k <= repairable_faults; ++k) {
    term *= lambda / static_cast<double>(k);
    cdf += term;
  }
  return std::min(1.0, cdf);
}

}  // namespace hynapse::mc
