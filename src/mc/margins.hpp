// Margin *distributions* under threshold-voltage variation: the statistical
// view connecting Section IV's nominal SNM/WM numbers to the failure rates
// of Fig. 5. Samples full Seevinck read-SNM and write-flip-time populations
// and summarizes them (moments, percentiles, sigma-to-spec distances).
#pragma once

#include <cstdint>

#include "circuit/bitcell.hpp"
#include "mc/variation.hpp"
#include "util/stats.hpp"

namespace hynapse::mc {

struct MarginDistribution {
  double mean = 0.0;
  double stddev = 0.0;
  double p001 = 0.0;  ///< 0.1th percentile (weak tail)
  double p01 = 0.0;   ///< 1st percentile
  double p50 = 0.0;
  double min = 0.0;
  /// Fraction of samples at or below zero margin (direct failure estimate).
  double fraction_nonpositive = 0.0;
  std::size_t samples = 0;
};

/// Read-SNM population of the 6T cell at `vdd`. Each sample runs the full
/// butterfly extraction, so keep `n` in the hundreds-to-low-thousands.
[[nodiscard]] MarginDistribution read_snm_distribution(
    const circuit::Technology& tech, const circuit::Sizing6T& sizing,
    const VariationSampler& sampler, double vdd, std::size_t n,
    std::uint64_t seed, int snm_grid = 160);

/// Write-flip-time population [s] of the 6T cell at `vdd` (two-node
/// transient, window `t_max`); infinite times (unwriteable corners) are
/// counted in fraction_nonpositive and excluded from the moments.
[[nodiscard]] MarginDistribution write_time_distribution(
    const circuit::Technology& tech, const circuit::Sizing6T& sizing,
    const VariationSampler& sampler, double vdd, double c_node, double t_max,
    std::size_t n, std::uint64_t seed);

}  // namespace hynapse::mc
