// Monte-Carlo failure-rate estimation for 6T/8T bitcells ("Monte Carlo
// simulations were run on a 256x256 SRAM sub-array to estimate the read
// access, read disturb, and write failure rates at different operating
// voltages", Section IV).
//
// Plain MC handles rates down to ~1e-4 cheaply; below that the analyzer
// switches to mean-shifted importance sampling along the dominant failure
// direction in dVT space -- the standard statistical-SRAM-yield technique
// (cf. Mukhopadhyay et al.), which the paper obtains from brute-force SPICE.
#pragma once

#include <cstdint>

#include "mc/criteria.hpp"
#include "mc/variation.hpp"

namespace hynapse::mc {

/// One estimated probability with a 95 % interval. For plain MC the interval
/// is the Wilson score; for importance sampling it is the delta-method
/// normal interval on the weighted estimator.
struct RateEstimate {
  double p = 0.0;
  double ci_lo = 0.0;
  double ci_hi = 0.0;
  std::size_t trials = 0;
  double hits = 0.0;  ///< raw hits (MC) or effective weighted hits (IS)
  bool importance_sampled = false;
};

/// The three per-cell failure mechanisms at one operating voltage.
struct CellFailureRates {
  RateEstimate read_access;
  RateEstimate write_fail;
  RateEstimate read_disturb;
};

struct AnalyzerOptions {
  std::size_t mc_samples = 40000;
  std::size_t is_samples = 16000;
  /// Plain-MC hit count below which the analyzer re-estimates that mechanism
  /// with importance sampling.
  std::size_t min_hits_for_mc = 20;
  /// Mean-shift magnitude in units of sigma along the dominant direction.
  double is_beta = 3.5;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
};

class FailureAnalyzer {
 public:
  FailureAnalyzer(const FailureCriteria& criteria,
                  const VariationSampler& sampler, AnalyzerOptions opts = {});

  /// Estimates all three mechanisms for a 6T cell at vdd. Deterministic for
  /// a given seed regardless of thread count.
  [[nodiscard]] CellFailureRates analyze_6t(double vdd,
                                            std::uint64_t seed) const;
  /// Same for the 8T cell (read_disturb is identically zero by construction).
  [[nodiscard]] CellFailureRates analyze_8t(double vdd,
                                            std::uint64_t seed) const;

  /// One mechanism with the plain-MC -> importance-sampling fallback used by
  /// analyze_6t/analyze_8t. Exposed so FailureTable::build can schedule the
  /// full (voltage x cell-type x mechanism) job matrix on the thread pool
  /// with exactly the per-mechanism seeds the serial path used.
  [[nodiscard]] RateEstimate estimate_6t(Mechanism m, double vdd,
                                         std::uint64_t mc_seed,
                                         std::uint64_t is_seed) const;
  [[nodiscard]] RateEstimate estimate_8t(Mechanism m, double vdd,
                                         std::uint64_t mc_seed,
                                         std::uint64_t is_seed) const;

  // Exposed for validation tests (IS-vs-MC agreement).
  [[nodiscard]] RateEstimate plain_mc_6t(Mechanism m, double vdd,
                                         std::size_t n,
                                         std::uint64_t seed) const;
  [[nodiscard]] RateEstimate importance_6t(Mechanism m, double vdd,
                                           std::size_t n,
                                           std::uint64_t seed) const;
  [[nodiscard]] RateEstimate plain_mc_8t(Mechanism m, double vdd,
                                         std::size_t n,
                                         std::uint64_t seed) const;
  [[nodiscard]] RateEstimate importance_8t(Mechanism m, double vdd,
                                           std::size_t n,
                                           std::uint64_t seed) const;

  /// Standby data-retention failure rate at a scaled hold voltage
  /// (plain MC with an importance-sampled fallback for the tail).
  [[nodiscard]] RateEstimate retention_6t(double v_standby,
                                          std::uint64_t seed) const;

  [[nodiscard]] const AnalyzerOptions& options() const noexcept {
    return opts_;
  }

 private:
  const FailureCriteria* criteria_;
  const VariationSampler* sampler_;
  AnalyzerOptions opts_;
};

}  // namespace hynapse::mc
