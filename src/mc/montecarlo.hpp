// Monte-Carlo failure-rate estimation for 6T/8T bitcells ("Monte Carlo
// simulations were run on a 256x256 SRAM sub-array to estimate the read
// access, read disturb, and write failure rates at different operating
// voltages", Section IV).
//
// Plain MC handles rates down to ~1e-4 cheaply; below that the analyzer
// switches to mean-shifted importance sampling along the dominant failure
// direction in dVT space -- the standard statistical-SRAM-yield technique
// (cf. Mukhopadhyay et al.), which the paper obtains from brute-force SPICE.
#pragma once

#include <cstdint>

#include "mc/criteria.hpp"
#include "mc/variation.hpp"

namespace hynapse::mc {

/// One estimated probability with a 95 % interval. For plain MC the interval
/// is the Wilson score; for importance sampling it is the delta-method
/// normal interval on the weighted estimator.
struct RateEstimate {
  double p = 0.0;
  double ci_lo = 0.0;
  double ci_hi = 0.0;
  std::size_t trials = 0;
  double hits = 0.0;  ///< raw hits (MC) or effective weighted hits (IS)
  bool importance_sampled = false;
  /// Every sample spent producing this estimate, across phases: for the
  /// fixed path, the plain-MC trials plus (when the IS fallback fired) the
  /// IS trials; for the adaptive path, the cumulative batched total. This is
  /// the cost the adaptive sampler is minimizing.
  std::size_t total_samples = 0;
  std::size_t batches = 1;  ///< sequential sampling batches behind `p`
  /// Adaptive mode only: the CI target was met before the max-sample clamp
  /// (always true in fixed mode, which has no target).
  bool converged = true;

  [[nodiscard]] double ci_half_width() const noexcept {
    return 0.5 * (ci_hi - ci_lo);
  }
};

/// Confidence-interval family used by the adaptive stopping rule.
enum class IntervalKind { wilson, clopper_pearson };

/// Sequential, statistically-targeted sampling (docs/adaptive_mc.md).
/// Sampling runs in geometrically growing batches per (vdd, mechanism) and
/// stops as soon as the CI half-width is within
/// max(rel_target * p_hat, abs_target), subject to hard [min, max] sample
/// clamps. A mechanism that is demonstrably beyond plain-MC reach -- after
/// `tail_escape_samples` trials its CI upper bound projects fewer than
/// AnalyzerOptions::min_hits_for_mc hits over the full budget -- escapes to
/// batched importance sampling instead of burning the rest of the budget on
/// a near-zero rate. A consistency guard backstops the escape: an IS answer
/// below the lower confidence bound of the plain-MC hits already observed
/// is discarded (the mean-shift's moderate-p bias, not a tail) and plain MC
/// resumes to the budget. Batch boundaries depend only on the policy
/// and the deterministic cumulative (hits, trials) sequence, and every
/// batch derives its sample streams from (seed, batch index) plus
/// Rng::discard jump-ahead, so adaptive estimates are bit-identical for a
/// fixed policy regardless of thread count.
struct AdaptivePolicy {
  bool enabled = false;
  /// Stop when the CI half-width <= rel_target * p_hat (0 disables the
  /// relative criterion).
  double rel_target = 0.15;
  /// Absolute half-width floor: the looser of the two criteria wins, so a
  /// nonzero abs_target lets near-zero rates converge without hits.
  double abs_target = 0.0;
  double z = 1.96;  ///< confidence expressed in normal sigmas
  IntervalKind interval = IntervalKind::wilson;
  std::size_t batch_samples = 2000;  ///< first batch size
  double batch_growth = 2.0;         ///< geometric batch growth factor
  std::size_t min_samples = 2000;    ///< never stop before (hard clamp)
  /// Never exceed (hard clamp); 0 = AnalyzerOptions::mc_samples, so an
  /// adaptive estimate is never costlier than the fixed-mode MC phase.
  std::size_t max_samples = 0;
  /// Plain-MC trials after which a demonstrably rare mechanism (CI upper
  /// bound projecting under min_hits_for_mc hits across the full budget)
  /// switches to importance-sampled tail estimation; 0 = only at
  /// max_samples.
  std::size_t tail_escape_samples = 4000;
  /// Cap on the importance-sampled tail phase; 0 = AnalyzerOptions::
  /// is_samples.
  std::size_t max_is_samples = 0;
};

/// The three per-cell failure mechanisms at one operating voltage.
struct CellFailureRates {
  RateEstimate read_access;
  RateEstimate write_fail;
  RateEstimate read_disturb;
};

struct AnalyzerOptions {
  std::size_t mc_samples = 40000;
  std::size_t is_samples = 16000;
  /// Plain-MC hit count below which the analyzer re-estimates that mechanism
  /// with importance sampling.
  std::size_t min_hits_for_mc = 20;
  /// Mean-shift magnitude in units of sigma along the dominant direction.
  double is_beta = 3.5;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  /// CI-targeted sequential sampling; disabled means the fixed-sample path
  /// (the bit-exact oracle) runs unchanged.
  AdaptivePolicy adaptive;
};

class FailureAnalyzer {
 public:
  FailureAnalyzer(const FailureCriteria& criteria,
                  const VariationSampler& sampler, AnalyzerOptions opts = {});

  /// Estimates all three mechanisms for a 6T cell at vdd. Deterministic for
  /// a given seed regardless of thread count.
  [[nodiscard]] CellFailureRates analyze_6t(double vdd,
                                            std::uint64_t seed) const;
  /// Same for the 8T cell (read_disturb is identically zero by construction).
  [[nodiscard]] CellFailureRates analyze_8t(double vdd,
                                            std::uint64_t seed) const;

  /// One mechanism with the plain-MC -> importance-sampling fallback used by
  /// analyze_6t/analyze_8t. Exposed so FailureTable::build can schedule the
  /// full (voltage x cell-type x mechanism) job matrix on the thread pool
  /// with exactly the per-mechanism seeds the serial path used. Routes to
  /// adaptive_6t/adaptive_8t when options().adaptive is enabled.
  [[nodiscard]] RateEstimate estimate_6t(Mechanism m, double vdd,
                                         std::uint64_t mc_seed,
                                         std::uint64_t is_seed) const;
  [[nodiscard]] RateEstimate estimate_8t(Mechanism m, double vdd,
                                         std::uint64_t mc_seed,
                                         std::uint64_t is_seed) const;

  /// CI-targeted batched estimation (used by estimate_* when the policy is
  /// enabled; exposed for oracle-vs-adaptive validation). Same seed
  /// discipline as estimate_*: mc_seed drives the plain-MC phase, is_seed
  /// the importance-sampled tail phase.
  [[nodiscard]] RateEstimate adaptive_6t(Mechanism m, double vdd,
                                         std::uint64_t mc_seed,
                                         std::uint64_t is_seed) const;
  [[nodiscard]] RateEstimate adaptive_8t(Mechanism m, double vdd,
                                         std::uint64_t mc_seed,
                                         std::uint64_t is_seed) const;

  // Exposed for validation tests (IS-vs-MC agreement).
  [[nodiscard]] RateEstimate plain_mc_6t(Mechanism m, double vdd,
                                         std::size_t n,
                                         std::uint64_t seed) const;
  [[nodiscard]] RateEstimate importance_6t(Mechanism m, double vdd,
                                           std::size_t n,
                                           std::uint64_t seed) const;
  [[nodiscard]] RateEstimate plain_mc_8t(Mechanism m, double vdd,
                                         std::size_t n,
                                         std::uint64_t seed) const;
  [[nodiscard]] RateEstimate importance_8t(Mechanism m, double vdd,
                                           std::size_t n,
                                           std::uint64_t seed) const;

  /// Standby data-retention failure rate at a scaled hold voltage
  /// (plain MC with an importance-sampled fallback for the tail).
  [[nodiscard]] RateEstimate retention_6t(double v_standby,
                                          std::uint64_t seed) const;

  [[nodiscard]] const AnalyzerOptions& options() const noexcept {
    return opts_;
  }

 private:
  const FailureCriteria* criteria_;
  const VariationSampler* sampler_;
  AnalyzerOptions opts_;
};

}  // namespace hynapse::mc
