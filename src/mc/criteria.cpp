#include "mc/criteria.hpp"

#include <algorithm>
#include <cmath>

namespace hynapse::mc {

FailureCriteria::FailureCriteria(const circuit::Technology& tech,
                                 const sram::CycleModel& cycle,
                                 const circuit::Sizing6T& sizing6,
                                 const circuit::Sizing8T& sizing8)
    : tech_{&tech}, cycle_{&cycle}, sizing6_{sizing6}, sizing8_{sizing8} {}

double FailureCriteria::read_access_metric_6t(const circuit::Variation6T& var,
                                              double vdd) const {
  const circuit::Bitcell6T cell{*tech_, sizing6_, var};
  const double t = cycle_->cell_read_delay(cell, vdd);
  return t / cycle_->read_budget(vdd) - 1.0;
}

double FailureCriteria::write_metric_6t(const circuit::Variation6T& var,
                                        double vdd) const {
  // Two-node transient: positive residual means (Q - QB) never crossed
  // within the write budget, i.e. the write failed.
  const circuit::Bitcell6T cell{*tech_, sizing6_, var};
  return cell.write_residual(vdd, cycle_->c_node(),
                             cycle_->write_budget(vdd));
}

double FailureCriteria::read_disturb_metric_6t(const circuit::Variation6T& var,
                                               double vdd) const {
  const circuit::Bitcell6T cell{*tech_, sizing6_, var};
  // Positive when the read bump exceeds the opposite trip point (in volts,
  // normalized by vdd to keep the metric scale-free).
  return (cell.read_bump(vdd) -
          cell.trip_voltage(circuit::Side::right, vdd)) /
         vdd;
}

double FailureCriteria::metric_6t(Mechanism m, const circuit::Variation6T& var,
                                  double vdd) const {
  switch (m) {
    case Mechanism::read_access:
      return read_access_metric_6t(var, vdd);
    case Mechanism::write:
      return write_metric_6t(var, vdd);
    case Mechanism::read_disturb:
      return read_disturb_metric_6t(var, vdd);
  }
  return 0.0;
}

double FailureCriteria::hold_metric_6t(const circuit::Variation6T& var,
                                       double v_standby) const {
  const circuit::Bitcell6T cell{*tech_, sizing6_, var};
  return cell.hold_residual(v_standby);
}

double FailureCriteria::read_access_metric_8t(const circuit::Variation8T& var,
                                              double vdd) const {
  const circuit::Bitcell8T cell{*tech_, sizing8_, var};
  const double t = cycle_->cell_read_delay_8t(cell, vdd);
  return t / cycle_->read_budget(vdd) - 1.0;
}

double FailureCriteria::write_metric_8t(const circuit::Variation8T& var,
                                        double vdd) const {
  const circuit::Bitcell8T cell{*tech_, sizing8_, var};
  return cell.write_residual(vdd, cycle_->c_node(),
                             cycle_->write_budget(vdd));
}

double FailureCriteria::metric_8t(Mechanism m, const circuit::Variation8T& var,
                                  double vdd) const {
  switch (m) {
    case Mechanism::read_access:
      return read_access_metric_8t(var, vdd);
    case Mechanism::write:
      return write_metric_8t(var, vdd);
    case Mechanism::read_disturb:
      return -1.0;  // decoupled read port: no disturb mechanism
  }
  return 0.0;
}

}  // namespace hynapse::mc
