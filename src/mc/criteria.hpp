// Failure criteria for one bitcell sample (Section IV of the paper):
//  1. Read access failure: the cell cannot develop the sense differential
//     within the (voltage-scaled) read cycle.
//  2. Write failure: the cell cannot flip within the write cycle (or is
//     statically unwriteable at that corner).
//  3. Read disturb failure: the read bump flips the cell.
//
// Each criterion is also exposed as a continuous limit-state metric
// (positive = fail) so the importance sampler can find the dominant failure
// direction in dVT space.
#pragma once

#include "circuit/bitcell.hpp"
#include "circuit/tech.hpp"
#include "sram/timing.hpp"

namespace hynapse::mc {

enum class Mechanism { read_access, write, read_disturb };

class FailureCriteria {
 public:
  FailureCriteria(const circuit::Technology& tech,
                  const sram::CycleModel& cycle,
                  const circuit::Sizing6T& sizing6,
                  const circuit::Sizing8T& sizing8);

  // --- 6T metrics (positive = fail) --------------------------------------
  [[nodiscard]] double read_access_metric_6t(const circuit::Variation6T& var,
                                             double vdd) const;
  [[nodiscard]] double write_metric_6t(const circuit::Variation6T& var,
                                       double vdd) const;
  [[nodiscard]] double read_disturb_metric_6t(const circuit::Variation6T& var,
                                              double vdd) const;
  [[nodiscard]] double metric_6t(Mechanism m, const circuit::Variation6T& var,
                                 double vdd) const;

  /// Standby retention limit-state at a (possibly deeply scaled) hold
  /// voltage: positive = the cell loses its state (extension; see
  /// circuit/retention.hpp).
  [[nodiscard]] double hold_metric_6t(const circuit::Variation6T& var,
                                      double v_standby) const;

  // --- 8T metrics ----------------------------------------------------------
  [[nodiscard]] double read_access_metric_8t(const circuit::Variation8T& var,
                                             double vdd) const;
  [[nodiscard]] double write_metric_8t(const circuit::Variation8T& var,
                                       double vdd) const;
  [[nodiscard]] double metric_8t(Mechanism m, const circuit::Variation8T& var,
                                 double vdd) const;

  [[nodiscard]] const sram::CycleModel& cycle() const noexcept {
    return *cycle_;
  }
  [[nodiscard]] const circuit::Sizing6T& sizing6() const noexcept {
    return sizing6_;
  }
  [[nodiscard]] const circuit::Sizing8T& sizing8() const noexcept {
    return sizing8_;
  }

 private:
  const circuit::Technology* tech_;
  const sram::CycleModel* cycle_;
  circuit::Sizing6T sizing6_;
  circuit::Sizing8T sizing8_;
};

}  // namespace hynapse::mc
