#include "mc/variation.hpp"

#include <cmath>

namespace hynapse::mc {

namespace {

double pelgrom_sigma(const circuit::TechCard& card, double w, double l,
                     double wmin, double lmin) {
  return card.sigma_vt0 * std::sqrt((lmin / l) * (wmin / w));
}

}  // namespace

VariationSampler::VariationSampler(const circuit::Technology& tech,
                                   const circuit::Sizing6T& sizing6,
                                   const circuit::Sizing8T& sizing8) {
  const double l = tech.lmin;
  const double wmin = tech.wmin;
  const double lmin = tech.lmin;
  // 6T: pass gates and pull-downs are NMOS, pull-ups PMOS.
  sigmas6_[0] = pelgrom_sigma(tech.nmos, sizing6.w_pg, l, wmin, lmin);
  sigmas6_[1] = pelgrom_sigma(tech.nmos, sizing6.w_pd, l, wmin, lmin);
  sigmas6_[2] = pelgrom_sigma(tech.pmos, sizing6.w_pu, l, wmin, lmin);
  sigmas6_[3] = sigmas6_[0];
  sigmas6_[4] = sigmas6_[1];
  sigmas6_[5] = sigmas6_[2];

  sigmas8_[0] = pelgrom_sigma(tech.nmos, sizing8.core.w_pg, l, wmin, lmin);
  sigmas8_[1] = pelgrom_sigma(tech.nmos, sizing8.core.w_pd, l, wmin, lmin);
  sigmas8_[2] = pelgrom_sigma(tech.pmos, sizing8.core.w_pu, l, wmin, lmin);
  sigmas8_[3] = sigmas8_[0];
  sigmas8_[4] = sigmas8_[1];
  sigmas8_[5] = sigmas8_[2];
  sigmas8_[6] = pelgrom_sigma(tech.nmos, sizing8.w_rpg, l, wmin, lmin);
  sigmas8_[7] = pelgrom_sigma(tech.nmos, sizing8.w_rpd, l, wmin, lmin);
}

circuit::Variation6T VariationSampler::sample_6t(util::Rng& rng) const {
  std::array<double, k6t_devices> dvt{};
  for (std::size_t i = 0; i < k6t_devices; ++i)
    dvt[i] = rng.normal(0.0, sigmas6_[i]);
  return pack_6t(dvt);
}

circuit::Variation8T VariationSampler::sample_8t(util::Rng& rng) const {
  std::array<double, k8t_devices> dvt{};
  for (std::size_t i = 0; i < k8t_devices; ++i)
    dvt[i] = rng.normal(0.0, sigmas8_[i]);
  return pack_8t(dvt);
}

circuit::Variation6T VariationSampler::pack_6t(
    const std::array<double, k6t_devices>& dvt) noexcept {
  circuit::Variation6T v;
  v.pg_l = dvt[0];
  v.pd_l = dvt[1];
  v.pu_l = dvt[2];
  v.pg_r = dvt[3];
  v.pd_r = dvt[4];
  v.pu_r = dvt[5];
  return v;
}

circuit::Variation8T VariationSampler::pack_8t(
    const std::array<double, k8t_devices>& dvt) noexcept {
  circuit::Variation8T v;
  std::array<double, k6t_devices> core{};
  for (std::size_t i = 0; i < k6t_devices; ++i) core[i] = dvt[i];
  v.core = pack_6t(core);
  v.rpg = dvt[6];
  v.rpd = dvt[7];
  return v;
}

}  // namespace hynapse::mc
