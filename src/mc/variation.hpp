// Threshold-voltage variation sampling (Eq. 1 of the paper): per-transistor
// independent Gaussian dVT with zero mean and Pelgrom-scaled sigma
//   sigma_VT = sigma_VT0 * sqrt((Lmin/L)(Wmin/W)).
#pragma once

#include <array>

#include "circuit/bitcell.hpp"
#include "circuit/tech.hpp"
#include "util/rng.hpp"

namespace hynapse::mc {

/// Fixed transistor ordering used for the flat dVT vectors handed to the
/// importance sampler: 6T = {pg_l, pd_l, pu_l, pg_r, pd_r, pu_r},
/// 8T appends {rpg, rpd}.
inline constexpr std::size_t k6t_devices = 6;
inline constexpr std::size_t k8t_devices = 8;

class VariationSampler {
 public:
  VariationSampler(const circuit::Technology& tech,
                   const circuit::Sizing6T& sizing6,
                   const circuit::Sizing8T& sizing8);

  /// Per-device sigmas in the flat ordering above [V].
  [[nodiscard]] const std::array<double, k6t_devices>& sigmas_6t() const noexcept {
    return sigmas6_;
  }
  [[nodiscard]] const std::array<double, k8t_devices>& sigmas_8t() const noexcept {
    return sigmas8_;
  }

  /// Draws one cell's dVT vector (standard normals scaled by sigma).
  [[nodiscard]] circuit::Variation6T sample_6t(util::Rng& rng) const;
  [[nodiscard]] circuit::Variation8T sample_8t(util::Rng& rng) const;

  /// Converts a flat dVT vector (volts) into the structured form.
  [[nodiscard]] static circuit::Variation6T pack_6t(
      const std::array<double, k6t_devices>& dvt) noexcept;
  [[nodiscard]] static circuit::Variation8T pack_8t(
      const std::array<double, k8t_devices>& dvt) noexcept;

 private:
  std::array<double, k6t_devices> sigmas6_{};
  std::array<double, k8t_devices> sigmas8_{};
};

}  // namespace hynapse::mc
