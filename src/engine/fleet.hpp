// engine::FleetCoordinator -- scatter a ShardPlan across remote fleet
// workers over TCP and merge the results, bit-identical to a monolithic
// build.
//
// The fleet is the cross-MACHINE face of the shard stack (docs/
// distributed.md): `hynapse_cli fleet-worker` serves table_shard requests
// over a socket (serve::TcpServer fronting an EvalService), and this
// coordinator round-robins a plan's shards over N such workers, each
// returning its rows inline ("rows_data", bit-exact doubles) so no shared
// filesystem is needed. Failover: when a worker dies mid-shard (connect
// failure, dropped socket, deadline), its shard is re-queued for the other
// workers; a shard every worker failed -- or every shard, when no workers
// were given -- is built locally through the ShardCoordinator. Because
// every shard's rows are bit-identical wherever they are built
// (mc::FailureTable::build_shard's per-mechanism seeding) and merge() is
// order-invariant, the merged table equals the monolithic build no matter
// which worker built what or how often shards bounced.
//
// The shard-extended fingerprint is the distributed-correctness handshake:
// a worker answers with the fingerprint IT derives from the request's
// provenance, and the coordinator rejects any response whose fingerprint
// differs from its plan's -- a worker built with a different grid, sizing
// or analyzer derivation can never silently contribute wrong rows.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "engine/shard_coordinator.hpp"
#include "engine/shard_plan.hpp"

namespace hynapse::engine {

struct FleetEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  [[nodiscard]] std::string str() const {
    return host + ":" + std::to_string(port);
  }
};

/// Parses "host:port" (host optional: ":7070" and "7070" mean loopback).
[[nodiscard]] std::optional<FleetEndpoint> parse_endpoint(
    std::string_view text);

struct FleetOptions {
  std::vector<FleetEndpoint> workers;
  double connect_timeout_s = 5.0;
  /// Deadline for one shard build on a worker; a worker that blows it is
  /// treated as dead (its shard fails over).
  double shard_timeout_s = 600.0;
  /// Build shards no worker could produce locally; when false, such shards
  /// make build() throw instead (strict-scatter mode for tests).
  bool local_fallback = true;
  /// Capped exponential backoff before re-attempting a shard that already
  /// failed somewhere: sleep min(cap, base * 2^(attempts-1)), scaled by a
  /// deterministic jitter factor in [0.5, 1.0) derived from (shard,
  /// attempt) -- so failovers do not stampede the surviving workers and a
  /// rerun backs off identically. base = 0 disables the wait.
  double retry_backoff_base_s = 0.05;
  double retry_backoff_cap_s = 2.0;
  /// Cumulative per-shard deadline across ALL remote attempts: once a
  /// shard has been bouncing for this long it stops failing over and goes
  /// straight to the local fallback list. 0 = unlimited (a shard keeps
  /// retrying until every endpoint had its chance).
  double shard_deadline_s = 0.0;
};

struct FleetStats {
  std::uint64_t shards_remote = 0;   ///< shards built by fleet workers
  std::uint64_t shards_local = 0;    ///< shards built via local fallback
  std::uint64_t worker_failures = 0; ///< transport/validation failures
  std::uint64_t retries = 0;         ///< shards re-queued for another worker
  std::uint64_t workers_used = 0;    ///< endpoints that produced >= 1 shard
  std::uint64_t backoff_waits = 0;   ///< backoff sleeps taken before retries
  std::uint64_t deadline_expired = 0;  ///< shards sent local by the deadline
};

class FleetCoordinator {
 public:
  /// `local` provides the merge cache and the local-fallback build path;
  /// it must outlive the coordinator.
  FleetCoordinator(ShardCoordinator& local, FleetOptions options);

  /// Scatters the plan's shards across the workers, merges, persists and
  /// memoizes the result in the local cache, and returns it -- the fleet
  /// analogue of ShardCoordinator::acquire (and a memo hit short-circuits
  /// the same way). Throws std::runtime_error when shards remain unbuilt
  /// and local_fallback is off. Call from one thread at a time.
  const mc::FailureTable& build(const ShardPlan& plan,
                                const mc::FailureAnalyzer& analyzer);

  [[nodiscard]] FleetStats stats() const;

  [[nodiscard]] const FleetOptions& options() const noexcept {
    return options_;
  }

 private:
  struct Scatter;  ///< shared work-queue state of one build()

  /// Serves one worker connection until the queue is empty or the worker
  /// dies; returns the number of shards it completed.
  std::size_t worker_loop(const FleetEndpoint& endpoint, const ShardPlan& plan,
                          Scatter& scatter);

  ShardCoordinator& local_;
  const FleetOptions options_;
  mutable std::mutex mutex_;
  FleetStats stats_;
};

}  // namespace hynapse::engine
