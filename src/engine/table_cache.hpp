// Failure-table cache shared by the bench/example harnesses.
//
// A Monte-Carlo failure table is an expensive artifact whose content is
// fully determined by its provenance: technology card, bitcell sizings,
// sub-array geometry, voltage grid, analyzer options and seed. The cache
// memoizes tables in-process and persists them as fingerprinted CSVs (one
// file per provenance hash), replacing the old single-filename cache that
// silently served stale rates whenever any input changed. Thread count is
// deliberately excluded from the fingerprint: FailureTable::build is
// bit-identical for any thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/bitcell.hpp"
#include "circuit/tech.hpp"
#include "mc/failure_table.hpp"
#include "mc/montecarlo.hpp"
#include "sram/array.hpp"

namespace hynapse::engine {

/// Everything that determines a failure table's content, minus the analyzer
/// options (taken from the analyzer itself so spec and analyzer cannot
/// disagree).
struct TableSpec {
  circuit::Technology tech;
  circuit::Sizing6T sizing6;
  circuit::Sizing8T sizing8;
  sram::SubArrayGeometry geometry;
  std::vector<double> vdd_grid;
  std::uint64_t seed = 0;
};

/// Stable FNV-1a digest of the spec + analyzer options + CSV format version.
[[nodiscard]] std::uint64_t table_fingerprint(const TableSpec& spec,
                                              const mc::AnalyzerOptions& opts);

/// Where FailureTableCache::get found the table.
enum class TableSource { memory, disk, built };

class FailureTableCache {
 public:
  /// `dir` holds the persisted CSVs; pass an empty string for a purely
  /// in-memory cache.
  explicit FailureTableCache(std::string dir);

  /// Returns the table for (spec, analyzer.options()): from memory, else
  /// from a fingerprint-matching CSV in the cache directory, else by
  /// running `analyzer` over the grid (persisting the result). With
  /// `rebuild` set, disk and memory are bypassed and the fresh table
  /// overwrites both -- invalidating references previously returned for the
  /// same fingerprint; otherwise references stay valid for the cache's
  /// lifetime. `source`, when non-null, reports which of the three
  /// happened. Thread-safe; concurrent callers of the same table build it
  /// once (per-fingerprint lock), and callers of different tables build
  /// concurrently.
  const mc::FailureTable& get(const TableSpec& spec,
                              const mc::FailureAnalyzer& analyzer,
                              bool rebuild = false,
                              TableSource* source = nullptr);

  /// Path of the CSV backing a fingerprint ("" when the cache is in-memory).
  [[nodiscard]] std::string csv_path(std::uint64_t fingerprint) const;

 private:
  struct Entry {
    std::mutex mutex;  ///< serializes load/build of this one fingerprint
    std::unique_ptr<mc::FailureTable> table;
  };

  std::string dir_;
  std::mutex mutex_;  ///< guards the map only, never held across a build
  std::unordered_map<std::uint64_t, std::shared_ptr<Entry>> tables_;
};

}  // namespace hynapse::engine
