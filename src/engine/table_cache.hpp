// Failure-table cache shared by the bench/example harnesses and the
// serve::EvalService front end.
//
// A Monte-Carlo failure table is an expensive artifact whose content is
// fully determined by its provenance: technology card, bitcell sizings,
// sub-array geometry, voltage grid, analyzer options and seed. The cache
// memoizes tables in-process and persists them as fingerprinted CSVs (one
// file per provenance hash), replacing the old single-filename cache that
// silently served stale rates whenever any input changed. Thread count is
// deliberately excluded from the fingerprint: FailureTable::build is
// bit-identical for any thread count.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/bitcell.hpp"
#include "circuit/tech.hpp"
#include "mc/failure_table.hpp"
#include "mc/montecarlo.hpp"
#include "sram/array.hpp"
#include "util/single_flight.hpp"

namespace hynapse::engine {

/// Everything that determines a failure table's content, minus the analyzer
/// options (taken from the analyzer itself so spec and analyzer cannot
/// disagree).
struct TableSpec {
  circuit::Technology tech;
  circuit::Sizing6T sizing6;
  circuit::Sizing8T sizing8;
  sram::SubArrayGeometry geometry;
  std::vector<double> vdd_grid;
  std::uint64_t seed = 0;
};

/// Stable FNV-1a digest of the spec + analyzer options + CSV format version.
[[nodiscard]] std::uint64_t table_fingerprint(const TableSpec& spec,
                                              const mc::AnalyzerOptions& opts);

/// Where FailureTableCache::get found the table.
enum class TableSource { memory, disk, built };

/// Running counters over a cache's lifetime (one get() bumps exactly one of
/// the first three; `coalesced` additionally counts callers that piggybacked
/// on another caller's in-flight load/build instead of paying for their own).
struct CacheStats {
  std::uint64_t memory_hits = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t builds = 0;
  std::uint64_t coalesced = 0;
};

/// One persisted failure-table CSV as found on disk by list_cached_tables.
struct CachedTableInfo {
  std::string path;
  std::uint64_t fingerprint = 0;  ///< parsed from the v2 header (0 if absent)
  std::uintmax_t bytes = 0;
  std::size_t rows = 0;  ///< 0 when the file fails validation
  bool valid = false;    ///< load_csv accepted the file
  std::filesystem::file_time_type mtime{};  ///< last write time (epoch if unknown)
};

/// Scans `dir` for failure_table_*.csv files (the cache's on-disk layout)
/// and validates each one; sorted by path. Missing directory -> empty.
[[nodiscard]] std::vector<CachedTableInfo> list_cached_tables(
    const std::string& dir);

/// What prune() removed (or would remove, with dry_run).
struct PruneResult {
  std::vector<std::string> removed;  ///< paths, sorted
  std::uintmax_t bytes_freed = 0;
};

/// Deletes the droppings interrupted or crashed runs leave in a cache
/// directory: failure_table_*.csv files that fail load_csv validation
/// (truncated or corrupt partial-shard artifacts) and *.tmp.* files
/// abandoned by an interrupted atomic save -- the latter only when older
/// than an hour, since a fresh temp file may be another process's save_csv
/// in flight (the cache dir is shared in the cross-process scatter
/// workflow). Valid tables -- merged or per-shard -- are never touched.
/// With dry_run, reports without deleting.
[[nodiscard]] PruneResult prune_cache_dir(const std::string& dir,
                                          bool dry_run = false);

/// The conventional cache directory every front end shares (so tables
/// persisted by one binary are reused by the others): $HYNAPSE_CACHE_DIR,
/// else ".hynapse_cache".
[[nodiscard]] std::string default_cache_dir();

/// What export_cache_archive / import_cache_archive did. `skipped` holds
/// "filename: reason" strings for entries rejected by validation.
struct ArchiveResult {
  std::vector<std::string> files;    ///< filenames written, sorted
  std::vector<std::string> skipped;  ///< rejected entries with reasons
  std::uintmax_t bytes = 0;          ///< payload bytes moved
};

/// Packs every VALID failure-table CSV of `dir` into one text archive
/// (format: a "# hynapse-cache-archive v1" header, then per file a
/// ">>> <filename> <bytes>" line followed by the raw bytes) -- the
/// transferable form of a cache directory for air-gapped fleet hosts.
/// Corrupt tables are skipped with a warning. Throws std::runtime_error
/// when the archive itself cannot be written.
[[nodiscard]] ArchiveResult export_cache_archive(const std::string& dir,
                                                 const std::string& archive);

/// Unpacks an archive produced by export_cache_archive into `dir`
/// (created if missing). Every entry is re-validated before it lands:
/// the payload must pass FailureTable::load_csv, and for merged-table
/// entries (failure_table_<16hex>.csv) the embedded header fingerprint
/// must match the filename -- entries failing either check are skipped
/// with a warning, never written. Existing files are overwritten (the
/// fingerprint guarantees identical content). Throws std::runtime_error
/// when the archive cannot be read or is not a v1 cache archive.
[[nodiscard]] ArchiveResult import_cache_archive(const std::string& archive,
                                                 const std::string& dir);

/// Canonical 16-digit zero-padded lowercase-hex rendering of a fingerprint
/// -- the one format used in CSV filenames, headers and wire responses.
[[nodiscard]] std::string fingerprint_hex(std::uint64_t fingerprint);

class FailureTableCache {
 public:
  /// `dir` holds the persisted CSVs (created if missing); pass an empty
  /// string for a purely in-memory cache.
  explicit FailureTableCache(std::string dir);

  /// Returns the table for (spec, analyzer.options()): from memory, else
  /// from a fingerprint-matching CSV in the cache directory, else by
  /// running `analyzer` over the grid (persisting the result). With
  /// `rebuild` set, disk and memory are bypassed and the fresh table
  /// overwrites both -- invalidating references previously returned for the
  /// same fingerprint; otherwise references stay valid for the cache's
  /// lifetime. `source`, when non-null, reports which of the three
  /// happened. Thread-safe; concurrent callers of the same table coalesce
  /// onto one load/build (single-flight keyed on the fingerprint), and
  /// callers of different tables build concurrently. A freshly built table
  /// is memoized even when persisting its CSV fails (warning to stderr) --
  /// an unwritable cache directory only costs the disk cache.
  const mc::FailureTable& get(const TableSpec& spec,
                              const mc::FailureAnalyzer& analyzer,
                              bool rebuild = false,
                              TableSource* source = nullptr);

  /// Path of the CSV backing a fingerprint ("" when the cache is in-memory).
  [[nodiscard]] std::string csv_path(std::uint64_t fingerprint) const;

  /// Path of the per-shard CSV for shard `shard` of `shard_count` of the
  /// parent fingerprint ("" when the cache is in-memory). The embedded
  /// header fingerprint of the file is the shard-extended fingerprint
  /// (engine::shard_fingerprint); the filename keeps the parent hex so the
  /// shards of one table sort together in listings.
  [[nodiscard]] std::string shard_csv_path(std::uint64_t parent_fingerprint,
                                           std::size_t shard,
                                           std::size_t shard_count) const;

  /// Memoizes an externally produced table (a ShardCoordinator merge, a CSV
  /// replayed from another process) under `fingerprint`, replacing any
  /// previous entry for it, and persists its CSV when `persist` is set
  /// (best effort, like get()). Returns the memoized table; the reference
  /// stays valid until the fingerprint is replaced again.
  const mc::FailureTable& put(std::uint64_t fingerprint,
                              mc::FailureTable table, bool persist = true);

  /// The memoized table for a fingerprint, or nullptr (no disk probe, no
  /// build; counts as a memory hit only when found).
  [[nodiscard]] const mc::FailureTable* lookup(std::uint64_t fingerprint);

  /// The cache directory ("" when in-memory).
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// Snapshot of the hit/miss/build counters.
  [[nodiscard]] CacheStats stats() const;

  /// Whether a fingerprint is currently memoized in-process.
  [[nodiscard]] bool in_memory(std::uint64_t fingerprint) const;

 private:
  std::string dir_;
  util::SingleFlight flight_;  ///< one in-flight load/build per fingerprint
  mutable std::mutex mutex_;   ///< guards tables_ + stats_, never a build
  std::unordered_map<std::uint64_t, std::unique_ptr<mc::FailureTable>> tables_;
  CacheStats stats_;
};

}  // namespace hynapse::engine
