// ExperimentRunner: pool-backed driver for the ANN fault-injection stage of
// the circuit-to-system pipeline (paper Section V). Where core::
// evaluate_accuracy parallelizes over the chip instances of ONE
// (configuration, voltage) point, the runner additionally fans a whole sweep
// -- the unit of work of every figure bench and of design-space exploration
// -- into a flat (sweep point x chip) job matrix, so a 4-configuration x
// 2-voltage Fig. 8 sweep with 3 chips each keeps 24 jobs in flight instead
// of 3.
//
// Determinism contract: a chip's accuracy depends only on (network, config,
// vdd, dataset, seed, chip index); sweep results are bit-identical to
// evaluating each point on its own, for any thread count.
#pragma once

#include <span>
#include <vector>

#include "core/delta_eval.hpp"
#include "core/experiments.hpp"

namespace hynapse::engine {

class ShardCoordinator;
struct ShardPlan;

/// One (memory configuration, operating voltage) sweep point.
struct SweepPoint {
  core::MemoryConfig config;
  double vdd = 0.0;
};

/// One evaluation in a heterogeneous batch: its own failure table and eval
/// options, so requests against different provenances can still be fused
/// into a single pool submission. `options.threads` is ignored -- the batch
/// call's thread cap governs the whole fan-out.
struct BatchPoint {
  core::MemoryConfig config;
  double vdd = 0.0;
  const mc::FailureTable* failures = nullptr;
  core::EvalOptions options;
};

/// One runner submission, replacing the old evaluate_sweep/evaluate_batch
/// overload matrix: WHAT to evaluate (a heterogeneous vector of
/// BatchPoints), WHERE failure tables come from (each point's own table, a
/// shared table via against(), or a shard plan acquired through via()),
/// and HOW to run it (thread cap, precomputed network fingerprint). Named
/// constructors plus chainable setters:
///
///   runner.run(qnet, EvalJob::sweep(points, opt).against(table), test);
///   runner.run(qnet, EvalJob::batch(std::move(pts))
///                        .via(plan, analyzer, coordinator)
///                        .with_network_fingerprint(fp),
///              test);
///
/// Table resolution, per point: a point's own `failures` pointer wins;
/// a null pointer resolves to the via() plan's coordinator-acquired table
/// when one was given, else to the against() table, else the point yields
/// an empty result. Everything referenced (tables, plan, analyzer,
/// coordinator, configs) must outlive the run() call; the job itself is a
/// value and can be stored or replayed.
struct EvalJob {
  std::vector<BatchPoint> points;
  const mc::FailureTable* failures = nullptr;  ///< against(): shared table
  const ShardPlan* plan = nullptr;             ///< via(): plan source...
  const mc::FailureAnalyzer* analyzer = nullptr;
  ShardCoordinator* coordinator = nullptr;     ///< ...acquired through this
  /// Pool participation cap for this job (0 = the runner's own cap).
  std::size_t threads = 0;
  /// Precomputed core::network_fingerprint of the evaluated network, so a
  /// caller serving one pinned network doesn't rehash per job; 0 = compute
  /// when needed. A fingerprint of a DIFFERENT network is undefined.
  std::uint64_t qnet_fp = 0;

  /// A heterogeneous batch: every point carries its own table/options.
  [[nodiscard]] static EvalJob batch(std::vector<BatchPoint> pts) {
    EvalJob job;
    job.points = std::move(pts);
    return job;
  }

  /// A homogeneous sweep: every point shares `options` and whatever table
  /// against()/via() later supplies. `options.threads`, when set, becomes
  /// the job's thread cap (preserving the old sweep-overload contract).
  [[nodiscard]] static EvalJob sweep(std::span<const SweepPoint> pts,
                                     core::EvalOptions options = {}) {
    EvalJob job;
    job.points.reserve(pts.size());
    for (const SweepPoint& pt : pts) {
      job.points.push_back(BatchPoint{pt.config, pt.vdd, nullptr, options});
    }
    job.threads = options.threads;
    return job;
  }

  /// Shared failure table for points that don't carry their own.
  EvalJob& against(const mc::FailureTable& table) {
    failures = &table;
    return *this;
  }

  /// Shard-plan table source for points that don't carry their own: run()
  /// acquires the plan's table through the coordinator (merged-CSV hit,
  /// shard replay, or pool-scattered build -- see shard_coordinator.hpp).
  EvalJob& via(const ShardPlan& shard_plan,
               const mc::FailureAnalyzer& shard_analyzer,
               ShardCoordinator& shard_coordinator) {
    plan = &shard_plan;
    analyzer = &shard_analyzer;
    coordinator = &shard_coordinator;
    return *this;
  }

  EvalJob& with_threads(std::size_t n) {
    threads = n;
    return *this;
  }

  EvalJob& with_network_fingerprint(std::uint64_t fp) {
    qnet_fp = fp;
    return *this;
  }
};

class ExperimentRunner {
 public:
  /// `threads` caps pool participation for this runner's calls
  /// (0 = util::default_thread_count()); an explicit EvalOptions::threads
  /// still wins for a given call.
  explicit ExperimentRunner(std::size_t threads = 0) noexcept
      : threads_{threads} {}

  /// core::evaluate_accuracy with the runner's thread cap applied.
  [[nodiscard]] core::AccuracyResult evaluate(
      const core::QuantizedNetwork& qnet, const core::MemoryConfig& config,
      const mc::FailureTable& failures, double vdd, const data::Dataset& test,
      core::EvalOptions options = {}) const;

  /// Runs one EvalJob as a single flat (point x chip-group) job matrix on
  /// the shared pool, amortizing pool wake-ups across many small requests
  /// (the serve::EvalService hot path). Delta-path points are carved into
  /// fused chip groups (core::fused_group_size of their EvalOptions), each
  /// group sharing one batched forward pass; legacy-path points stay
  /// per-chip. result[i] corresponds to job.points[i] and is bit-identical
  /// to evaluate() on that point alone, for any thread count, batch shape
  /// or group size; a point whose table resolves to nothing (see EvalJob)
  /// yields an empty result. When the job carries a shard plan, the table
  /// is coordinator-acquired first and results are bit-identical to
  /// building it monolithically.
  [[nodiscard]] std::vector<core::AccuracyResult> run(
      const core::QuantizedNetwork& qnet, const EvalJob& job,
      const data::Dataset& test) const;

  [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

  /// The runner's persistent delta-evaluation context pool: baselines and
  /// forward-pass workspaces outlive individual evaluate/evaluate_batch
  /// calls, so a long-lived runner (serve::EvalService) pays the baseline
  /// dequantize once per worker instead of once per request.
  [[nodiscard]] core::EvalContextPool& contexts() const noexcept {
    return contexts_;
  }

 private:
  std::size_t threads_;
  mutable core::EvalContextPool contexts_;
};

}  // namespace hynapse::engine
