// ExperimentRunner: pool-backed driver for the ANN fault-injection stage of
// the circuit-to-system pipeline (paper Section V). Where core::
// evaluate_accuracy parallelizes over the chip instances of ONE
// (configuration, voltage) point, the runner additionally fans a whole sweep
// -- the unit of work of every figure bench and of design-space exploration
// -- into a flat (sweep point x chip) job matrix, so a 4-configuration x
// 2-voltage Fig. 8 sweep with 3 chips each keeps 24 jobs in flight instead
// of 3.
//
// Determinism contract: a chip's accuracy depends only on (network, config,
// vdd, dataset, seed, chip index); sweep results are bit-identical to
// evaluating each point on its own, for any thread count.
#pragma once

#include <span>
#include <vector>

#include "core/delta_eval.hpp"
#include "core/experiments.hpp"

namespace hynapse::engine {

class ShardCoordinator;
struct ShardPlan;

/// One (memory configuration, operating voltage) sweep point.
struct SweepPoint {
  core::MemoryConfig config;
  double vdd = 0.0;
};

/// One evaluation in a heterogeneous batch: its own failure table and eval
/// options, so requests against different provenances can still be fused
/// into a single pool submission. `options.threads` is ignored -- the batch
/// call's thread cap governs the whole fan-out.
struct BatchPoint {
  core::MemoryConfig config;
  double vdd = 0.0;
  const mc::FailureTable* failures = nullptr;
  core::EvalOptions options;
};

class ExperimentRunner {
 public:
  /// `threads` caps pool participation for this runner's calls
  /// (0 = util::default_thread_count()); an explicit EvalOptions::threads
  /// still wins for a given call.
  explicit ExperimentRunner(std::size_t threads = 0) noexcept
      : threads_{threads} {}

  /// core::evaluate_accuracy with the runner's thread cap applied.
  [[nodiscard]] core::AccuracyResult evaluate(
      const core::QuantizedNetwork& qnet, const core::MemoryConfig& config,
      const mc::FailureTable& failures, double vdd, const data::Dataset& test,
      core::EvalOptions options = {}) const;

  /// Evaluates every sweep point against the same failure table and test
  /// set; result[i] corresponds to points[i] and is bit-identical to
  /// evaluate() on that point alone.
  [[nodiscard]] std::vector<core::AccuracyResult> evaluate_sweep(
      const core::QuantizedNetwork& qnet, std::span<const SweepPoint> points,
      const mc::FailureTable& failures, const data::Dataset& test,
      core::EvalOptions options = {}) const;

  /// Evaluates a heterogeneous batch -- each point carries its own failure
  /// table and options -- as ONE flat (point x chip) job matrix on the
  /// shared pool, amortizing pool wake-ups across many small requests (the
  /// serve::EvalService hot path). result[i] corresponds to points[i] and
  /// is bit-identical to evaluate() on that point alone; a point with a
  /// null table yields an empty result.
  ///
  /// `qnet_fp` optionally supplies a precomputed
  /// core::network_fingerprint(qnet) so a caller serving one pinned network
  /// (serve::EvalService) doesn't rehash ~1.4M codes per batch; 0 (the
  /// default) computes it here. Passing a fingerprint of a *different*
  /// network is undefined (pooled contexts would serve a stale baseline).
  [[nodiscard]] std::vector<core::AccuracyResult> evaluate_batch(
      const core::QuantizedNetwork& qnet, std::span<const BatchPoint> points,
      const data::Dataset& test, std::size_t threads = 0,
      std::uint64_t qnet_fp = 0) const;

  /// Sweep against a shard plan instead of a prebuilt table: the failure
  /// table is acquired through `coordinator` (merged-CSV hit, shard-CSV
  /// replay, or pool-scattered shard builds -- see shard_coordinator.hpp)
  /// and the sweep then runs exactly as the prebuilt-table overload.
  /// Bit-identical to building the table monolithically first.
  [[nodiscard]] std::vector<core::AccuracyResult> evaluate_sweep(
      const core::QuantizedNetwork& qnet, std::span<const SweepPoint> points,
      const ShardPlan& plan, const mc::FailureAnalyzer& analyzer,
      ShardCoordinator& coordinator, const data::Dataset& test,
      core::EvalOptions options = {}) const;

  /// Batch against a shard plan: points whose `failures` is null evaluate
  /// against the plan's (coordinator-acquired) table; points that already
  /// carry a table keep it. Otherwise identical to the plain evaluate_batch.
  [[nodiscard]] std::vector<core::AccuracyResult> evaluate_batch(
      const core::QuantizedNetwork& qnet, std::span<const BatchPoint> points,
      const ShardPlan& plan, const mc::FailureAnalyzer& analyzer,
      ShardCoordinator& coordinator, const data::Dataset& test,
      std::size_t threads = 0, std::uint64_t qnet_fp = 0) const;

  [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

  /// The runner's persistent delta-evaluation context pool: baselines and
  /// forward-pass workspaces outlive individual evaluate/evaluate_batch
  /// calls, so a long-lived runner (serve::EvalService) pays the baseline
  /// dequantize once per worker instead of once per request.
  [[nodiscard]] core::EvalContextPool& contexts() const noexcept {
    return contexts_;
  }

 private:
  std::size_t threads_;
  mutable core::EvalContextPool contexts_;
};

}  // namespace hynapse::engine
