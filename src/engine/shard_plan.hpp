// ShardPlanner: explicit decomposition of a failure-table build into
// independently buildable, mergeable, cache-addressable shards.
//
// A shard is a per-voltage-sub-grid slice of the (voltage x cell-type x
// mechanism) Monte-Carlo job matrix (the mc::shard_bounds partition), keyed
// by a shard-extended provenance fingerprint: FNV over the parent table
// fingerprint plus (shard index, shard count). Two processes that compute
// the same plan from the same TableSpec therefore agree on every shard's
// grid slice, fingerprint and CSV artifact name -- which is what makes a
// shard a cross-process (and later cross-machine) work unit: build shards
// anywhere, drop the CSVs in one cache directory, merge.
//
// Determinism contract: FailureTable::build_shard reuses the per-mechanism
// serial seeds, so the merged table is bit-identical to a monolithic
// FailureTable::build for any shard count and any thread count
// (docs/sharding.md).
#pragma once

#include <cstdint>
#include <vector>

#include "engine/table_cache.hpp"

namespace hynapse::engine {

/// Shard-extended provenance fingerprint: the identity of "shard `shard` of
/// `shard_count` of the table `table_fp`". Distinct from the parent
/// fingerprint even for a 1-shard plan, so a shard CSV can never be
/// mistaken for a merged table (or vice versa).
[[nodiscard]] std::uint64_t shard_fingerprint(std::uint64_t table_fp,
                                              std::size_t shard,
                                              std::size_t shard_count);

/// The shard count a plan actually uses for a `grid_rows`-row grid when
/// `requested` was asked for: clamped to [1, grid_rows], with 0 meaning
/// one shard per row. THE one clamp rule -- ShardPlanner and every caller
/// that derives shard fingerprints without building a plan
/// (serve::EvalService's coalescing key) must agree on it, or a key could
/// name a shard no plan contains.
[[nodiscard]] constexpr std::size_t clamp_shard_count(
    std::size_t requested, std::size_t grid_rows) noexcept {
  if (requested == 0 || requested > grid_rows) return grid_rows;
  return requested;
}

/// One planned shard: a contiguous [row_begin, row_end) slice of the parent
/// voltage grid plus its shard-extended fingerprint.
struct TableShard {
  std::size_t index = 0;
  std::size_t row_begin = 0;
  std::size_t row_end = 0;
  std::vector<double> vdd_grid;   ///< the sub-grid this shard builds
  std::uint64_t fingerprint = 0;  ///< shard_fingerprint(parent, index, count)
};

struct ShardPlanOptions {
  /// Number of shards; 0 = one shard per voltage (the finest cross-process
  /// work unit). Clamped to the grid size.
  std::size_t shard_count = 0;
  /// When non-zero (and shard_count == 0), pick the smallest shard count
  /// whose largest shard has at most this many grid rows.
  std::size_t max_rows_per_shard = 0;
};

/// A fully resolved scatter plan for one table provenance.
struct ShardPlan {
  TableSpec spec;
  mc::AnalyzerOptions analyzer_options;
  std::uint64_t table_fingerprint = 0;  ///< engine::table_fingerprint(spec, opts)
  std::vector<TableShard> shards;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards.size();
  }
};

class ShardPlanner {
 public:
  /// Partitions spec.vdd_grid into per-voltage-sub-grid shards. Throws
  /// std::invalid_argument on an empty or non-strictly-increasing grid
  /// (the planner is the gatekeeper that keeps merges well-defined).
  [[nodiscard]] static ShardPlan plan(const TableSpec& spec,
                                      const mc::AnalyzerOptions& opts,
                                      const ShardPlanOptions& options = {});
};

}  // namespace hynapse::engine
