#include "engine/shard_coordinator.hpp"

#include <atomic>
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "util/parallel.hpp"

namespace hynapse::engine {

namespace {

/// Process-wide shard-pipeline counters, additive across coordinators.
struct ShardInstruments {
  obs::Counter& table_hits;
  obs::Counter& built;
  obs::Counter& replayed;
  obs::Counter& coalesced;
  obs::Counter& merges;
  obs::Counter& merged_rows;
  obs::Counter& samples_built;
  obs::Counter& samples_replayed;

  static ShardInstruments& get() {
    static ShardInstruments* instruments = [] {
      obs::Registry& r = obs::Registry::global();
      return new ShardInstruments{
          r.counter("shard.table_hits"),
          r.counter("shard.built"),
          r.counter("shard.replayed"),
          r.counter("shard.coalesced"),
          r.counter("shard.merges"),
          r.counter("shard.merged_rows"),
          r.counter("shard.samples_built"),
          r.counter("shard.samples_replayed"),
      };
    }();
    return *instruments;
  }
};

/// Clamped u64 view of a row-metadata sample total (doubles on the wire).
std::uint64_t sample_count(double samples) {
  return samples > 0.0 ? static_cast<std::uint64_t>(samples) : 0;
}

}  // namespace

const mc::FailureTable& ShardCoordinator::acquire(
    const ShardPlan& plan, const mc::FailureAnalyzer& analyzer, bool rebuild) {
  const std::uint64_t fp = plan.table_fingerprint;

  // Fast path outside the latch; memoized references stay valid until a
  // rebuild replaces the fingerprint.
  if (!rebuild) {
    if (const mc::FailureTable* memoized = cache_.lookup(fp)) {
      const std::scoped_lock lock{mutex_};
      ++stats_.table_hits;
      ShardInstruments::get().table_hits.add(1);
      return *memoized;
    }
  }

  // One in-flight merge per table fingerprint. Without this latch, two
  // concurrent same-plan callers would both merge and both put(): the
  // second put would destroy the table the first caller just received a
  // reference to. Coalesced callers re-check the memo and return the
  // winner's table instead.
  return table_flight_.run(fp, [&](bool) -> const mc::FailureTable& {
    if (!rebuild) {
      if (const mc::FailureTable* memoized = cache_.lookup(fp)) {
        const std::scoped_lock lock{mutex_};
        ++stats_.table_hits;
        ShardInstruments::get().table_hits.add(1);
        return *memoized;
      }
      if (const std::string path = cache_.csv_path(fp); !path.empty()) {
        if (auto loaded = mc::FailureTable::load_csv(path, fp)) {
          {
            const std::scoped_lock lock{mutex_};
            ++stats_.table_hits;
          }
          ShardInstruments::get().table_hits.add(1);
          // Already persisted at this very path; memoize only.
          return cache_.put(fp, std::move(*loaded), /*persist=*/false);
        }
      }
    }

    // Scatter: every shard is independent -- replayed from its CSV when
    // one exists, built on the pool otherwise. The outer loop fans shards
    // out; each shard build fans its (row x mechanism) jobs out underneath
    // (the pool supports nested regions), so a single-shard plan still
    // uses every thread.
    const std::size_t total = plan.shard_count();
    std::vector<std::optional<mc::FailureTable>> shards(total);
    std::atomic<std::size_t> done{0};
    util::parallel_for(
        total,
        [&](std::size_t s) {
          shards[s] = obtain_shard(plan, s, analyzer, rebuild, nullptr);
          report_progress(done.fetch_add(1) + 1, total);
        },
        threads_);

    std::vector<mc::FailureTable> parts;
    parts.reserve(total);
    for (std::optional<mc::FailureTable>& shard : shards) {
      parts.push_back(std::move(*shard));
    }
    mc::FailureTable merged = mc::FailureTable::merge(parts);
    {
      const std::scoped_lock lock{mutex_};
      ++stats_.merges;
      stats_.merged_rows += merged.rows().size();
    }
    ShardInstruments& obs = ShardInstruments::get();
    obs.merges.add(1);
    obs.merged_rows.add(merged.rows().size());
    return cache_.put(fp, std::move(merged));
  });
}

mc::FailureTable ShardCoordinator::build_shard(
    const ShardPlan& plan, std::size_t shard,
    const mc::FailureAnalyzer& analyzer, bool rebuild, bool* replayed) {
  if (shard >= plan.shard_count()) {
    throw std::invalid_argument{
        "ShardCoordinator: shard " + std::to_string(shard) +
        " out of range for a " + std::to_string(plan.shard_count()) +
        "-shard plan"};
  }
  return obtain_shard(plan, shard, analyzer, rebuild, replayed);
}

mc::FailureTable ShardCoordinator::obtain_shard(
    const ShardPlan& plan, std::size_t shard,
    const mc::FailureAnalyzer& analyzer, bool rebuild, bool* replayed) {
  const TableShard& planned = plan.shards[shard];
  const std::string path =
      cache_.shard_csv_path(plan.table_fingerprint, shard, plan.shard_count());

  // One in-flight build per shard fingerprint: of N concurrent callers
  // (other acquire() scatters, serve-layer table_shard requests) one pays
  // for the Monte-Carlo, the rest wait and replay the CSV it persisted.
  return shard_flight_.run(
      planned.fingerprint, [&](bool coalesced) -> mc::FailureTable {
        if ((!rebuild || coalesced) && !path.empty()) {
          if (auto loaded =
                  mc::FailureTable::load_csv(path, planned.fingerprint)) {
            const std::uint64_t samples = sample_count(loaded->total_samples());
            {
              const std::scoped_lock lock{mutex_};
              ++stats_.shards_replayed;
              if (coalesced) ++stats_.shards_coalesced;
              stats_.samples_replayed += samples;
              if (loaded->max_ci_half_width() > stats_.worst_ci_half_width) {
                stats_.worst_ci_half_width = loaded->max_ci_half_width();
              }
            }
            ShardInstruments& obs = ShardInstruments::get();
            obs.replayed.add(1);
            if (coalesced) obs.coalesced.add(1);
            obs.samples_replayed.add(samples);
            if (replayed != nullptr) *replayed = true;
            return std::move(*loaded);
          }
        }
        mc::FailureTable built = mc::FailureTable::build_shard(
            analyzer, plan.spec.vdd_grid, plan.spec.seed, shard,
            plan.shard_count());
        const std::uint64_t samples = sample_count(built.total_samples());
        {
          const std::scoped_lock lock{mutex_};
          ++stats_.shards_built;
          if (coalesced) ++stats_.shards_coalesced;
          stats_.samples_built += samples;
          if (built.max_ci_half_width() > stats_.worst_ci_half_width) {
            stats_.worst_ci_half_width = built.max_ci_half_width();
          }
        }
        {
          ShardInstruments& obs = ShardInstruments::get();
          obs.built.add(1);
          if (coalesced) obs.coalesced.add(1);
          obs.samples_built.add(samples);
        }
        if (replayed != nullptr) *replayed = false;
        if (!path.empty()) {
          try {
            built.save_csv(path, planned.fingerprint);
          } catch (const std::exception& e) {
            std::fprintf(stderr,
                         "[engine] warning: shard built but not persisted: "
                         "%s\n",
                         e.what());
          }
        }
        return built;
      });
}

std::optional<mc::FailureTable> ShardCoordinator::merge_from_disk(
    const ShardPlan& plan, std::vector<std::size_t>* missing) {
  if (missing != nullptr) missing->clear();
  std::vector<mc::FailureTable> parts;
  parts.reserve(plan.shard_count());
  for (std::size_t s = 0; s < plan.shard_count(); ++s) {
    const std::string path =
        cache_.shard_csv_path(plan.table_fingerprint, s, plan.shard_count());
    std::optional<mc::FailureTable> loaded;
    if (!path.empty()) {
      loaded = mc::FailureTable::load_csv(path, plan.shards[s].fingerprint);
    }
    if (!loaded) {
      if (missing != nullptr) {
        missing->push_back(s);
        continue;  // keep collecting so the caller can report all gaps
      }
      return std::nullopt;
    }
    parts.push_back(std::move(*loaded));
  }
  if (parts.size() != plan.shard_count()) return std::nullopt;
  mc::FailureTable merged = mc::FailureTable::merge(parts);
  const std::uint64_t samples = sample_count(merged.total_samples());
  ShardInstruments& obs = ShardInstruments::get();
  obs.replayed.add(plan.shard_count());
  obs.merges.add(1);
  obs.merged_rows.add(merged.rows().size());
  obs.samples_replayed.add(samples);
  const std::scoped_lock lock{mutex_};
  stats_.shards_replayed += plan.shard_count();
  ++stats_.merges;
  stats_.merged_rows += merged.rows().size();
  stats_.samples_replayed += samples;
  if (merged.max_ci_half_width() > stats_.worst_ci_half_width) {
    stats_.worst_ci_half_width = merged.max_ci_half_width();
  }
  return merged;
}

ShardStats ShardCoordinator::stats() const {
  const std::scoped_lock lock{mutex_};
  return stats_;
}

void ShardCoordinator::report_progress(std::size_t done, std::size_t total) {
  ShardProgress progress;
  {
    const std::scoped_lock lock{mutex_};
    progress = progress_;
  }
  if (progress) progress(done, total);
}

}  // namespace hynapse::engine
