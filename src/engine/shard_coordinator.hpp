// ShardCoordinator: executes a ShardPlan -- scatter the shards onto the
// shared thread pool (or replay shard CSVs produced by other processes),
// merge the per-shard artifacts, and memoize/persist the merged table
// through the FailureTableCache.
//
// The coordinator is the seam between "one process builds the whole table"
// and "shards are built anywhere and meet in a cache directory": acquire()
// is a drop-in for FailureTableCache::get that transparently prefers
// merged-CSV hits, then shard-CSV replay, then pool-scattered builds of
// whatever is missing. Shard builds of the same shard coalesce through a
// util::SingleFlight keyed on the shard-extended fingerprint, mirroring the
// table-level single-flight one layer down.
//
// Determinism contract: the merged table is bit-identical to a monolithic
// FailureTable::build for any shard count, any thread count, any mix of
// replayed and freshly built shards, and any completion order
// (docs/sharding.md).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "engine/shard_plan.hpp"
#include "engine/table_cache.hpp"
#include "util/single_flight.hpp"

namespace hynapse::engine {

/// CacheStats-style counters over a coordinator's lifetime.
struct ShardStats {
  std::uint64_t shards_built = 0;     ///< shards built by Monte-Carlo here
  std::uint64_t shards_replayed = 0;  ///< shard CSVs loaded from disk
  std::uint64_t shards_coalesced = 0; ///< callers that rode an in-flight shard
  std::uint64_t merges = 0;           ///< merged-table assemblies
  std::uint64_t merged_rows = 0;      ///< grid rows across all merges
  std::uint64_t table_hits = 0;       ///< acquire() served before any shard work
  /// CSV v3 sampling metadata aggregated over every shard that passed
  /// through this coordinator (zero for v2-era shard CSVs, which predate
  /// the columns): samples actually spent by local Monte-Carlo builds,
  /// samples recorded in replayed shard CSVs, and the worst per-row
  /// achieved CI half-width seen across all of them.
  std::uint64_t samples_built = 0;
  std::uint64_t samples_replayed = 0;
  double worst_ci_half_width = 0.0;
};

/// Progress callback: (shards done, shards total) after each shard of an
/// acquire()/build_all() scatter completes. Invoked from pool threads;
/// must be thread-safe.
using ShardProgress = std::function<void(std::size_t, std::size_t)>;

class ShardCoordinator {
 public:
  /// `cache` outlives the coordinator and provides the artifact directory,
  /// the merged-table memo and the CacheStats counters; `threads` caps pool
  /// participation for shard scatters (0 = default).
  explicit ShardCoordinator(FailureTableCache& cache,
                            std::size_t threads = 0) noexcept
      : cache_{cache}, threads_{threads} {}

  void set_progress(ShardProgress progress) {
    const std::scoped_lock lock{mutex_};
    progress_ = std::move(progress);
  }

  /// The sharded analogue of FailureTableCache::get: returns the plan's
  /// merged table from the cache memo, else from the merged CSV, else by
  /// replaying existing shard CSVs and scattering builds of the missing
  /// shards onto the pool, merging, persisting and memoizing the result.
  /// With `rebuild`, every shard is rebuilt and all artifacts rewritten --
  /// invalidating references previously returned for the same plan (the
  /// same caveat as FailureTableCache::get). Thread-safe; concurrent
  /// callers of the same plan coalesce on one merge (table-level
  /// single-flight, so a racing caller can never replace -- and free -- a
  /// table another caller just received), and on each shard underneath.
  const mc::FailureTable& acquire(const ShardPlan& plan,
                                  const mc::FailureAnalyzer& analyzer,
                                  bool rebuild = false);

  /// Builds (or replays) ONE shard and persists its CSV -- the per-process
  /// work unit behind `hynapse_cli shard-build` and the serve layer's
  /// table_shard requests. Returns the shard table; `replayed`, when
  /// non-null, reports whether the CSV was reused instead of built.
  mc::FailureTable build_shard(const ShardPlan& plan, std::size_t shard,
                               const mc::FailureAnalyzer& analyzer,
                               bool rebuild = false,
                               bool* replayed = nullptr);

  /// Merge-only: loads every per-shard CSV of the plan (validated against
  /// its shard-extended fingerprint) and merges. nullopt when any shard CSV
  /// is missing or invalid -- `missing`, when non-null, lists those shard
  /// indices. Never builds; the replay path for shards produced elsewhere.
  [[nodiscard]] std::optional<mc::FailureTable> merge_from_disk(
      const ShardPlan& plan, std::vector<std::size_t>* missing = nullptr);

  [[nodiscard]] ShardStats stats() const;

  [[nodiscard]] FailureTableCache& cache() const noexcept { return cache_; }

 private:
  /// Loads shard CSV if allowed, else builds; bumps counters, persists new
  /// builds (best effort), reports progress.
  mc::FailureTable obtain_shard(const ShardPlan& plan, std::size_t shard,
                                const mc::FailureAnalyzer& analyzer,
                                bool rebuild, bool* replayed);
  void report_progress(std::size_t done, std::size_t total);

  FailureTableCache& cache_;
  std::size_t threads_;
  util::SingleFlight table_flight_;  ///< one in-flight merge per table fp
  util::SingleFlight shard_flight_;  ///< one in-flight build per shard fp
  mutable std::mutex mutex_;         ///< guards stats_ + progress_
  ShardStats stats_;
  ShardProgress progress_;
};

}  // namespace hynapse::engine
