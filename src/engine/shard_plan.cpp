#include "engine/shard_plan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/hash.hpp"

namespace hynapse::engine {

std::uint64_t shard_fingerprint(std::uint64_t table_fp, std::size_t shard,
                                std::size_t shard_count) {
  util::Fnv1a h;
  h.str("hynapse-table-shard");
  h.u64(table_fp);
  h.u64(shard);
  h.u64(shard_count);
  return h.digest();
}

ShardPlan ShardPlanner::plan(const TableSpec& spec,
                             const mc::AnalyzerOptions& opts,
                             const ShardPlanOptions& options) {
  const std::size_t n = spec.vdd_grid.size();
  if (n == 0) {
    throw std::invalid_argument{"ShardPlanner: empty voltage grid"};
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double v = spec.vdd_grid[i];
    if (!std::isfinite(v) || v <= 0.0 ||
        (i > 0 && v <= spec.vdd_grid[i - 1])) {
      throw std::invalid_argument{
          "ShardPlanner: voltage grid must be positive, finite and strictly "
          "increasing (violated at index " +
          std::to_string(i) + ")"};
    }
  }

  std::size_t requested = options.shard_count;
  if (requested == 0 && options.max_rows_per_shard != 0) {
    requested =
        (n + options.max_rows_per_shard - 1) / options.max_rows_per_shard;
  }
  const std::size_t count = clamp_shard_count(requested, n);

  ShardPlan plan;
  plan.spec = spec;
  plan.analyzer_options = opts;
  plan.table_fingerprint = table_fingerprint(spec, opts);
  plan.shards.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    const auto [begin, end] = mc::shard_bounds(n, s, count);
    TableShard shard;
    shard.index = s;
    shard.row_begin = begin;
    shard.row_end = end;
    shard.vdd_grid.assign(spec.vdd_grid.begin() + static_cast<std::ptrdiff_t>(begin),
                          spec.vdd_grid.begin() + static_cast<std::ptrdiff_t>(end));
    shard.fingerprint = shard_fingerprint(plan.table_fingerprint, s, count);
    plan.shards.push_back(std::move(shard));
  }
  return plan;
}

}  // namespace hynapse::engine
