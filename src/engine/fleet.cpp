#include "engine/fleet.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cmath>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "util/fault_injection.hpp"
#include "util/hash.hpp"

namespace hynapse::engine {

namespace {

/// Process-wide fleet counters, additive across coordinators and builds.
struct FleetInstruments {
  obs::Counter& shards_remote;
  obs::Counter& shards_local;
  obs::Counter& worker_failures;
  obs::Counter& retries;
  obs::Counter& workers_used;
  obs::Counter& backoff_waits;
  obs::Counter& deadline_expired;

  static FleetInstruments& get() {
    static FleetInstruments* instruments = [] {
      obs::Registry& r = obs::Registry::global();
      return new FleetInstruments{
          r.counter("fleet.shards_remote"),
          r.counter("fleet.shards_local"),
          r.counter("fleet.worker_failures"),
          r.counter("fleet.retries"),
          r.counter("fleet.workers_used"),
          r.counter("fleet.backoff_waits"),
          r.counter("fleet.deadline_expired"),
      };
    }();
    return *instruments;
  }
};

using Clock = std::chrono::steady_clock;

/// Deterministic backoff before retry `attempt` (1-based) of `shard`:
/// min(cap, base * 2^(attempt-1)) scaled by a jitter factor in [0.5, 1.0)
/// hashed from (shard, attempt) -- reproducible across runs, decorrelated
/// across shards so failovers spread out instead of stampeding.
double backoff_delay_s(std::size_t shard, std::size_t attempt, double base_s,
                       double cap_s) {
  double delay = base_s * std::ldexp(1.0, static_cast<int>(attempt) - 1);
  delay = std::min(delay, cap_s);
  util::Fnv1a h;
  h.u64(shard);
  h.u64(attempt);
  const double frac =
      static_cast<double>(h.digest() >> 11) * (1.0 / 9007199254740992.0);
  return delay * (0.5 + 0.5 * frac);
}

}  // namespace

std::optional<FleetEndpoint> parse_endpoint(std::string_view text) {
  FleetEndpoint ep;
  const std::size_t colon = text.rfind(':');
  std::string_view port_text = text;
  if (colon != std::string_view::npos) {
    if (colon != 0) ep.host = std::string{text.substr(0, colon)};
    port_text = text.substr(colon + 1);
  }
  unsigned port = 0;
  const auto [end, ec] = std::from_chars(
      port_text.data(), port_text.data() + port_text.size(), port);
  if (ec != std::errc{} || end != port_text.data() + port_text.size() ||
      port == 0 || port > 65535) {
    return std::nullopt;
  }
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

/// Shared scatter state: a work queue of shard indices plus the collected
/// per-shard tables. Shards a worker fails on are re-queued for the
/// others; once every endpoint has failed a given shard it goes to the
/// local list (retrying a deterministic failure on the same fleet forever
/// would hang the build).
struct FleetCoordinator::Scatter {
  std::mutex mutex;
  std::deque<std::size_t> pending;
  std::vector<std::size_t> attempts;            ///< failovers per shard
  std::vector<std::size_t> local;               ///< shards headed for fallback
  std::vector<std::optional<mc::FailureTable>> parts;
  /// First remote dispatch per shard (epoch value = not yet dispatched);
  /// the cumulative shard deadline is measured from here.
  std::vector<Clock::time_point> first_dispatch;
  std::size_t fleet_size = 0;
};

FleetCoordinator::FleetCoordinator(ShardCoordinator& local,
                                   FleetOptions options)
    : local_{local}, options_{std::move(options)} {}

std::size_t FleetCoordinator::worker_loop(const FleetEndpoint& endpoint,
                                          const ShardPlan& plan,
                                          Scatter& scatter) {
  std::optional<serve::TcpClient> client = serve::TcpClient::connect(
      endpoint.host, endpoint.port, options_.connect_timeout_s);

  std::size_t completed = 0;
  for (;;) {
    std::size_t shard = 0;
    std::size_t prior_attempts = 0;
    {
      const std::scoped_lock lock{scatter.mutex};
      if (scatter.pending.empty()) return completed;
      shard = scatter.pending.front();
      scatter.pending.pop_front();
      prior_attempts = scatter.attempts[shard];
      const auto now = Clock::now();
      if (scatter.first_dispatch[shard] == Clock::time_point{}) {
        scatter.first_dispatch[shard] = now;
      } else if (options_.shard_deadline_s > 0 &&
                 now - scatter.first_dispatch[shard] >
                     std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>{
                             options_.shard_deadline_s})) {
        // The shard has been bouncing across workers for longer than its
        // cumulative deadline: stop failing over, build it locally.
        scatter.local.push_back(shard);
        {
          const std::scoped_lock stats_lock{mutex_};
          ++stats_.deadline_expired;
        }
        FleetInstruments::get().deadline_expired.add(1);
        continue;
      }
    }

    // A requeued shard waits out its backoff before the next attempt --
    // transient faults (a worker restarting, a flaky link) get time to
    // clear instead of burning every endpoint's chance instantly.
    if (prior_attempts > 0 && options_.retry_backoff_base_s > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>{
          backoff_delay_s(shard, prior_attempts, options_.retry_backoff_base_s,
                          options_.retry_backoff_cap_s)});
      {
        const std::scoped_lock stats_lock{mutex_};
        ++stats_.backoff_waits;
      }
      FleetInstruments::get().backoff_waits.add(1);
    }

    // A shard bounces between fail and requeue until some worker builds it
    // or every endpoint had its chance.
    const auto give_up_or_retry = [&](std::size_t failed_shard) {
      const std::scoped_lock lock{scatter.mutex};
      const std::scoped_lock stats_lock{mutex_};
      ++stats_.worker_failures;
      FleetInstruments& obs = FleetInstruments::get();
      obs.worker_failures.add(1);
      if (++scatter.attempts[failed_shard] >= scatter.fleet_size) {
        scatter.local.push_back(failed_shard);
      } else {
        ++stats_.retries;
        obs.retries.add(1);
        scatter.pending.push_back(failed_shard);
      }
    };

    if (!client || !client->connected()) {
      give_up_or_retry(shard);
      return completed;  // this worker is dead; leave the rest to others
    }

    serve::Request request;
    request.kind = serve::RequestKind::table_shard;
    request.shard = shard;
    request.shard_count = plan.shard_count();
    request.mc_samples = plan.analyzer_options.mc_samples;
    request.table_seed = plan.spec.seed;
    // The full adaptive policy travels with the shard request: the worker
    // hashes it into the shard fingerprint, so omitting it would make every
    // adaptive-plan response fail fingerprint validation below.
    if (plan.analyzer_options.adaptive.enabled) {
      request.adaptive = plan.analyzer_options.adaptive;
    }
    request.inline_rows = true;
    request.tag = "shard-" + std::to_string(shard);

    // `fleet.drop_before_send` kills this coordinator-side connection just
    // before the request goes out -- the shard fails over exactly like a
    // worker that died, and this worker thread retires (no reconnects).
    if (util::FaultInjector::instance().armed() &&
        util::FaultInjector::instance().should_fire("fleet.drop_before_send")) {
      client->close();
      give_up_or_retry(shard);
      return completed;
    }

    if (!client->send_line(serve::format_request(request))) {
      give_up_or_retry(shard);
      return completed;
    }
    const std::optional<std::string> line =
        client->read_line(options_.shard_timeout_s);
    if (!line) {
      give_up_or_retry(shard);
      return completed;
    }

    std::string parse_error;
    const std::optional<serve::Response> response =
        serve::parse_response(*line, &parse_error);
    const engine::TableShard& planned = plan.shards[shard];
    const bool valid = response &&
                       response->status == serve::RequestStatus::done &&
                       response->shard_fingerprint == planned.fingerprint &&
                       response->shard_rows.size() == planned.vdd_grid.size();
    if (!valid) {
      // A well-formed failure (shard_out_of_range, a worker with a
      // different grid) is deterministic for THIS worker, but another
      // worker -- or the local pool -- may still be configured right, so
      // it fails over like a transport error. The connection itself is
      // fine though: keep pulling work.
      give_up_or_retry(shard);
      if (!response) return completed;  // garbled stream: do not trust it
      continue;
    }

    {
      const std::scoped_lock lock{scatter.mutex};
      scatter.parts[shard] = mc::FailureTable{response->shard_rows};
    }
    {
      const std::scoped_lock stats_lock{mutex_};
      ++stats_.shards_remote;
    }
    FleetInstruments::get().shards_remote.add(1);
    ++completed;
  }
}

const mc::FailureTable& FleetCoordinator::build(
    const ShardPlan& plan, const mc::FailureAnalyzer& analyzer) {
  FailureTableCache& cache = local_.cache();
  if (const mc::FailureTable* memo = cache.lookup(plan.table_fingerprint)) {
    return *memo;
  }

  Scatter scatter;
  scatter.attempts.assign(plan.shard_count(), 0);
  scatter.first_dispatch.assign(plan.shard_count(), Clock::time_point{});
  scatter.parts.resize(plan.shard_count());
  scatter.fleet_size = std::max<std::size_t>(options_.workers.size(), 1);
  for (std::size_t s = 0; s < plan.shard_count(); ++s) {
    scatter.pending.push_back(s);
  }
  if (!options_.workers.empty()) {
    std::vector<std::thread> threads;
    std::vector<std::size_t> produced(options_.workers.size(), 0);
    threads.reserve(options_.workers.size());
    for (std::size_t w = 0; w < options_.workers.size(); ++w) {
      threads.emplace_back([this, w, &plan, &scatter, &produced] {
        produced[w] = worker_loop(options_.workers[w], plan, scatter);
      });
    }
    for (std::thread& t : threads) t.join();
    const std::scoped_lock lock{mutex_};
    for (const std::size_t n : produced) {
      if (n > 0) {
        ++stats_.workers_used;
        FleetInstruments::get().workers_used.add(1);
      }
    }
  }

  // Everything still pending (workers all died) or explicitly given up on
  // goes through the local coordinator -- which also persists the shard
  // CSVs, so a later fleet build can replay them.
  std::vector<std::size_t> leftovers{scatter.local.begin(),
                                     scatter.local.end()};
  leftovers.insert(leftovers.end(), scatter.pending.begin(),
                   scatter.pending.end());
  std::sort(leftovers.begin(), leftovers.end());
  if (!leftovers.empty() && !options_.local_fallback) {
    throw std::runtime_error{
        "FleetCoordinator: " + std::to_string(leftovers.size()) +
        " shard(s) unbuilt and local fallback is disabled"};
  }
  for (const std::size_t shard : leftovers) {
    if (scatter.parts[shard].has_value()) continue;  // double-queued fail
    scatter.parts[shard] = local_.build_shard(plan, shard, analyzer);
    FleetInstruments::get().shards_local.add(1);
    const std::scoped_lock lock{mutex_};
    ++stats_.shards_local;
  }

  std::vector<mc::FailureTable> tables;
  tables.reserve(plan.shard_count());
  for (std::size_t s = 0; s < plan.shard_count(); ++s) {
    if (!scatter.parts[s].has_value()) {
      throw std::runtime_error{"FleetCoordinator: shard " +
                               std::to_string(s) + " was never built"};
    }
    tables.push_back(std::move(*scatter.parts[s]));
  }
  mc::FailureTable merged = mc::FailureTable::merge(tables);
  return cache.put(plan.table_fingerprint, std::move(merged));
}

FleetStats FleetCoordinator::stats() const {
  const std::scoped_lock lock{mutex_};
  return stats_;
}

}  // namespace hynapse::engine
