#include "engine/experiment_runner.hpp"

#include <algorithm>
#include <optional>

#include "engine/shard_coordinator.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace hynapse::engine {

core::AccuracyResult ExperimentRunner::evaluate(
    const core::QuantizedNetwork& qnet, const core::MemoryConfig& config,
    const mc::FailureTable& failures, double vdd, const data::Dataset& test,
    core::EvalOptions options) const {
  if (options.threads == 0) options.threads = threads_;
  return core::evaluate_accuracy(qnet, config, failures, vdd, test, options,
                                 &contexts_);
}

std::vector<core::AccuracyResult> ExperimentRunner::run(
    const core::QuantizedNetwork& qnet, const EvalJob& job,
    const data::Dataset& test) const {
  std::size_t threads = job.threads != 0 ? job.threads : threads_;

  // Resolve each point's failure table: its own pointer, else the plan's
  // coordinator-acquired table, else the job-shared table, else none.
  const mc::FailureTable* shared = job.failures;
  if (job.plan != nullptr) {
    shared = &job.coordinator->acquire(*job.plan, *job.analyzer);
  }

  std::vector<core::AccuracyResult> results(job.points.size());

  // Fault models are cheap to derive from a table; one per point, shared
  // read-only by that point's chip jobs. `offsets` maps the flat job space
  // onto (point, chip) -- points may request different chip counts.
  std::vector<const mc::FailureTable*> tables(job.points.size(), nullptr);
  std::vector<std::optional<core::FaultModel>> models(job.points.size());
  std::vector<std::size_t> offsets(job.points.size() + 1, 0);
  for (std::size_t p = 0; p < job.points.size(); ++p) {
    const BatchPoint& pt = job.points[p];
    tables[p] = pt.failures != nullptr ? pt.failures : shared;
    std::size_t chips = 0;
    if (tables[p] != nullptr) {
      chips = pt.options.chips;
      models[p].emplace(*tables[p], pt.vdd, pt.options.policy);
    }
    results[p].per_chip.resize(chips);
    offsets[p + 1] = offsets[p] + chips;
  }

  // One flat (point x chip) job matrix on the shared pool. The network
  // fingerprint keys the per-worker delta baselines; one hash covers the
  // whole batch since every point shares `qnet`, and an all-legacy batch
  // (the A/B-comparison usage) skips it entirely.
  std::uint64_t qnet_fp = job.qnet_fp;
  const bool any_delta = std::any_of(
      job.points.begin(), job.points.end(), [&](const BatchPoint& pt) {
        return (pt.failures != nullptr || shared != nullptr) &&
               pt.options.path == core::EvalPath::delta;
      });
  if (any_delta && qnet_fp == 0) {
    qnet_fp = core::network_fingerprint(qnet);
  }
  util::parallel_for(
      offsets.back(),
      [&](std::size_t j) {
        const std::size_t p =
            static_cast<std::size_t>(
                std::upper_bound(offsets.begin(), offsets.end(), j) -
                offsets.begin()) -
            1;
        const std::size_t chip = j - offsets[p];
        const BatchPoint& pt = job.points[p];
        if (pt.options.path == core::EvalPath::legacy) {
          results[p].per_chip[chip] = core::evaluate_chip(
              qnet, pt.config, *models[p], test, pt.options.seed, chip);
        } else {
          core::EvalContextPool::Lease lease{contexts_};
          results[p].per_chip[chip] = lease.context().evaluate_chip(
              qnet, qnet_fp, pt.config, *models[p], test, pt.options.seed,
              chip);
        }
      },
      threads);

  for (std::size_t p = 0; p < job.points.size(); ++p) {
    if (results[p].per_chip.empty()) continue;
    results[p].mean = util::mean(results[p].per_chip);
    results[p].stddev = util::stddev(results[p].per_chip);
  }
  return results;
}

std::vector<core::AccuracyResult> ExperimentRunner::evaluate_sweep(
    const core::QuantizedNetwork& qnet, std::span<const SweepPoint> points,
    const mc::FailureTable& failures, const data::Dataset& test,
    core::EvalOptions options) const {
  return run(qnet, EvalJob::sweep(points, options).against(failures), test);
}

std::vector<core::AccuracyResult> ExperimentRunner::evaluate_sweep(
    const core::QuantizedNetwork& qnet, std::span<const SweepPoint> points,
    const ShardPlan& plan, const mc::FailureAnalyzer& analyzer,
    ShardCoordinator& coordinator, const data::Dataset& test,
    core::EvalOptions options) const {
  return run(qnet,
             EvalJob::sweep(points, options).via(plan, analyzer, coordinator),
             test);
}

std::vector<core::AccuracyResult> ExperimentRunner::evaluate_batch(
    const core::QuantizedNetwork& qnet, std::span<const BatchPoint> points,
    const ShardPlan& plan, const mc::FailureAnalyzer& analyzer,
    ShardCoordinator& coordinator, const data::Dataset& test,
    std::size_t threads, std::uint64_t qnet_fp) const {
  return run(qnet,
             EvalJob::batch({points.begin(), points.end()})
                 .via(plan, analyzer, coordinator)
                 .with_threads(threads)
                 .with_network_fingerprint(qnet_fp),
             test);
}

std::vector<core::AccuracyResult> ExperimentRunner::evaluate_batch(
    const core::QuantizedNetwork& qnet, std::span<const BatchPoint> points,
    const data::Dataset& test, std::size_t threads,
    std::uint64_t qnet_fp) const {
  return run(qnet,
             EvalJob::batch({points.begin(), points.end()})
                 .with_threads(threads)
                 .with_network_fingerprint(qnet_fp),
             test);
}

}  // namespace hynapse::engine
