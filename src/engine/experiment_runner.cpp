#include "engine/experiment_runner.hpp"

#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace hynapse::engine {

core::AccuracyResult ExperimentRunner::evaluate(
    const core::QuantizedNetwork& qnet, const core::MemoryConfig& config,
    const mc::FailureTable& failures, double vdd, const data::Dataset& test,
    core::EvalOptions options) const {
  if (options.threads == 0) options.threads = threads_;
  return core::evaluate_accuracy(qnet, config, failures, vdd, test, options);
}

std::vector<core::AccuracyResult> ExperimentRunner::evaluate_sweep(
    const core::QuantizedNetwork& qnet, std::span<const SweepPoint> points,
    const mc::FailureTable& failures, const data::Dataset& test,
    core::EvalOptions options) const {
  if (options.threads == 0) options.threads = threads_;

  std::vector<core::AccuracyResult> results(points.size());
  if (points.empty() || options.chips == 0) return results;

  // Fault models are cheap to derive from the table; one per point, shared
  // read-only by that point's chip jobs.
  std::vector<core::FaultModel> models;
  models.reserve(points.size());
  for (const SweepPoint& pt : points) {
    models.emplace_back(failures, pt.vdd, options.policy);
    results[models.size() - 1].per_chip.resize(options.chips);
  }

  // Flat (point x chip) job matrix on the shared pool.
  util::parallel_for(
      points.size() * options.chips,
      [&](std::size_t j) {
        const std::size_t p = j / options.chips;
        const std::size_t chip = j % options.chips;
        results[p].per_chip[chip] = core::evaluate_chip(
            qnet, points[p].config, models[p], test, options.seed, chip);
      },
      options.threads);

  for (core::AccuracyResult& r : results) {
    r.mean = util::mean(r.per_chip);
    r.stddev = util::stddev(r.per_chip);
  }
  return results;
}

}  // namespace hynapse::engine
