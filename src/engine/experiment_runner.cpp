#include "engine/experiment_runner.hpp"

#include <algorithm>
#include <optional>

#include "engine/shard_coordinator.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace hynapse::engine {

core::AccuracyResult ExperimentRunner::evaluate(
    const core::QuantizedNetwork& qnet, const core::MemoryConfig& config,
    const mc::FailureTable& failures, double vdd, const data::Dataset& test,
    core::EvalOptions options) const {
  if (options.threads == 0) options.threads = threads_;
  return core::evaluate_accuracy(qnet, config, failures, vdd, test, options,
                                 &contexts_);
}

std::vector<core::AccuracyResult> ExperimentRunner::run(
    const core::QuantizedNetwork& qnet, const EvalJob& job,
    const data::Dataset& test) const {
  std::size_t threads = job.threads != 0 ? job.threads : threads_;

  // Resolve each point's failure table: its own pointer, else the plan's
  // coordinator-acquired table, else the job-shared table, else none.
  const mc::FailureTable* shared = job.failures;
  if (job.plan != nullptr) {
    shared = &job.coordinator->acquire(*job.plan, *job.analyzer);
  }

  std::vector<core::AccuracyResult> results(job.points.size());

  // Fault models are cheap to derive from a table; one per point, shared
  // read-only by that point's chip jobs. The flat job space is (point x
  // chip group): legacy points contribute one group per chip, delta points
  // carve their chips into fused groups so each group shares one batched
  // forward pass.
  std::vector<const mc::FailureTable*> tables(job.points.size(), nullptr);
  std::vector<std::optional<core::FaultModel>> models(job.points.size());
  struct GroupJob {
    std::size_t point;
    std::size_t chip_begin;
    std::size_t count;
  };
  std::vector<GroupJob> groups;
  for (std::size_t p = 0; p < job.points.size(); ++p) {
    const BatchPoint& pt = job.points[p];
    tables[p] = pt.failures != nullptr ? pt.failures : shared;
    std::size_t chips = 0;
    if (tables[p] != nullptr) {
      chips = pt.options.chips;
      models[p].emplace(*tables[p], pt.vdd, pt.options.policy);
    }
    results[p].per_chip.resize(chips);
    const std::size_t group =
        pt.options.path == core::EvalPath::delta
            ? core::fused_group_size(pt.options.fuse_chips, chips, threads)
            : 1;
    for (std::size_t begin = 0; begin < chips; begin += group) {
      groups.push_back(GroupJob{p, begin, std::min(group, chips - begin)});
    }
  }

  // The network fingerprint keys the per-worker delta baselines; one hash
  // covers the whole batch since every point shares `qnet`, and an
  // all-legacy batch (the A/B-comparison usage) skips it entirely.
  std::uint64_t qnet_fp = job.qnet_fp;
  const bool any_delta = std::any_of(
      job.points.begin(), job.points.end(), [&](const BatchPoint& pt) {
        return (pt.failures != nullptr || shared != nullptr) &&
               pt.options.path == core::EvalPath::delta;
      });
  if (any_delta && qnet_fp == 0) {
    qnet_fp = core::network_fingerprint(qnet);
  }
  util::parallel_for(
      groups.size(),
      [&](std::size_t g) {
        const GroupJob& gj = groups[g];
        const BatchPoint& pt = job.points[gj.point];
        if (pt.options.path == core::EvalPath::legacy) {
          results[gj.point].per_chip[gj.chip_begin] = core::evaluate_chip(
              qnet, pt.config, *models[gj.point], test, pt.options.seed,
              gj.chip_begin);
        } else {
          core::EvalContextPool::Lease lease{contexts_};
          lease.context().evaluate_chips(
              qnet, qnet_fp, pt.config, *models[gj.point], test,
              pt.options.seed, gj.chip_begin, gj.count,
              std::span<double>{results[gj.point].per_chip}
                  .subspan(gj.chip_begin, gj.count),
              pt.options.backend);
        }
      },
      threads);

  for (std::size_t p = 0; p < job.points.size(); ++p) {
    if (results[p].per_chip.empty()) continue;
    results[p].mean = util::mean(results[p].per_chip);
    results[p].stddev = util::stddev(results[p].per_chip);
  }
  return results;
}

}  // namespace hynapse::engine
