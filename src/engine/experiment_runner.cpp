#include "engine/experiment_runner.hpp"

#include <algorithm>
#include <optional>

#include "engine/shard_coordinator.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace hynapse::engine {

core::AccuracyResult ExperimentRunner::evaluate(
    const core::QuantizedNetwork& qnet, const core::MemoryConfig& config,
    const mc::FailureTable& failures, double vdd, const data::Dataset& test,
    core::EvalOptions options) const {
  if (options.threads == 0) options.threads = threads_;
  return core::evaluate_accuracy(qnet, config, failures, vdd, test, options,
                                 &contexts_);
}

std::vector<core::AccuracyResult> ExperimentRunner::evaluate_sweep(
    const core::QuantizedNetwork& qnet, std::span<const SweepPoint> points,
    const mc::FailureTable& failures, const data::Dataset& test,
    core::EvalOptions options) const {
  if (options.threads == 0) options.threads = threads_;

  // A homogeneous sweep is a batch where every point shares the same table
  // and options; evaluate_batch keeps the flat job matrix bit-identical.
  std::vector<BatchPoint> batch;
  batch.reserve(points.size());
  for (const SweepPoint& pt : points) {
    batch.push_back(BatchPoint{pt.config, pt.vdd, &failures, options});
  }
  return evaluate_batch(qnet, batch, test, options.threads);
}

std::vector<core::AccuracyResult> ExperimentRunner::evaluate_sweep(
    const core::QuantizedNetwork& qnet, std::span<const SweepPoint> points,
    const ShardPlan& plan, const mc::FailureAnalyzer& analyzer,
    ShardCoordinator& coordinator, const data::Dataset& test,
    core::EvalOptions options) const {
  const mc::FailureTable& table = coordinator.acquire(plan, analyzer);
  return evaluate_sweep(qnet, points, table, test, options);
}

std::vector<core::AccuracyResult> ExperimentRunner::evaluate_batch(
    const core::QuantizedNetwork& qnet, std::span<const BatchPoint> points,
    const ShardPlan& plan, const mc::FailureAnalyzer& analyzer,
    ShardCoordinator& coordinator, const data::Dataset& test,
    std::size_t threads, std::uint64_t qnet_fp) const {
  const mc::FailureTable& table = coordinator.acquire(plan, analyzer);
  std::vector<BatchPoint> bound{points.begin(), points.end()};
  for (BatchPoint& pt : bound) {
    if (pt.failures == nullptr) pt.failures = &table;
  }
  return evaluate_batch(qnet, bound, test, threads, qnet_fp);
}

std::vector<core::AccuracyResult> ExperimentRunner::evaluate_batch(
    const core::QuantizedNetwork& qnet, std::span<const BatchPoint> points,
    const data::Dataset& test, std::size_t threads,
    std::uint64_t qnet_fp) const {
  if (threads == 0) threads = threads_;

  std::vector<core::AccuracyResult> results(points.size());

  // Fault models are cheap to derive from a table; one per point, shared
  // read-only by that point's chip jobs. `offsets` maps the flat job space
  // onto (point, chip) -- points may request different chip counts.
  std::vector<std::optional<core::FaultModel>> models(points.size());
  std::vector<std::size_t> offsets(points.size() + 1, 0);
  for (std::size_t p = 0; p < points.size(); ++p) {
    const BatchPoint& pt = points[p];
    std::size_t chips = 0;
    if (pt.failures != nullptr) {
      chips = pt.options.chips;
      models[p].emplace(*pt.failures, pt.vdd, pt.options.policy);
    }
    results[p].per_chip.resize(chips);
    offsets[p + 1] = offsets[p] + chips;
  }

  // One flat (point x chip) job matrix on the shared pool. The network
  // fingerprint keys the per-worker delta baselines; one hash covers the
  // whole batch since every point shares `qnet`, and an all-legacy batch
  // (the A/B-comparison usage) skips it entirely.
  const bool any_delta =
      std::any_of(points.begin(), points.end(), [](const BatchPoint& pt) {
        return pt.failures != nullptr &&
               pt.options.path == core::EvalPath::delta;
      });
  if (any_delta && qnet_fp == 0) {
    qnet_fp = core::network_fingerprint(qnet);
  }
  util::parallel_for(
      offsets.back(),
      [&](std::size_t j) {
        const std::size_t p =
            static_cast<std::size_t>(
                std::upper_bound(offsets.begin(), offsets.end(), j) -
                offsets.begin()) -
            1;
        const std::size_t chip = j - offsets[p];
        if (points[p].options.path == core::EvalPath::legacy) {
          results[p].per_chip[chip] =
              core::evaluate_chip(qnet, points[p].config, *models[p], test,
                                  points[p].options.seed, chip);
        } else {
          core::EvalContextPool::Lease lease{contexts_};
          results[p].per_chip[chip] = lease.context().evaluate_chip(
              qnet, qnet_fp, points[p].config, *models[p], test,
              points[p].options.seed, chip);
        }
      },
      threads);

  for (std::size_t p = 0; p < points.size(); ++p) {
    if (results[p].per_chip.empty()) continue;
    results[p].mean = util::mean(results[p].per_chip);
    results[p].stddev = util::stddev(results[p].per_chip);
  }
  return results;
}

}  // namespace hynapse::engine
