#include "engine/table_cache.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "obs/metrics.hpp"
#include "util/fault_injection.hpp"
#include "util/hash.hpp"

namespace hynapse::engine {

namespace {

/// Process-wide cache counters, additive across FailureTableCache
/// instances (every service/CLI in the process feeds the same registry).
struct CacheInstruments {
  obs::Counter& memory_hits;
  obs::Counter& disk_hits;
  obs::Counter& builds;
  obs::Counter& coalesced;

  static CacheInstruments& get() {
    static CacheInstruments* instruments = [] {
      obs::Registry& r = obs::Registry::global();
      return new CacheInstruments{
          r.counter("cache.memory_hits"),
          r.counter("cache.disk_hits"),
          r.counter("cache.builds"),
          r.counter("cache.coalesced"),
      };
    }();
    return *instruments;
  }
};

void feed_card(util::Fnv1a& h, const circuit::TechCard& card) {
  h.f64(card.vt0);
  h.f64(card.b);
  h.f64(card.alpha);
  h.f64(card.n_sub);
  h.f64(card.dibl);
  h.f64(card.vdsat_k);
  h.f64(card.lambda_clm);
  h.f64(card.phi_t);
  h.f64(card.sigma_vt0);
}

}  // namespace

std::uint64_t table_fingerprint(const TableSpec& spec,
                                const mc::AnalyzerOptions& opts) {
  util::Fnv1a h;
  h.str("hynapse-failure-table");
  h.u64(3);  // CSV format version
  feed_card(h, spec.tech.nmos);
  feed_card(h, spec.tech.pmos);
  h.f64(spec.tech.vdd_nominal);
  h.f64(spec.tech.wmin);
  h.f64(spec.tech.lmin);
  h.f64(spec.tech.c_drain_per_width);
  h.f64(spec.tech.c_gate_per_width);
  h.f64(spec.tech.c_wire_per_length);
  h.f64(spec.sizing6.w_pg);
  h.f64(spec.sizing6.w_pd);
  h.f64(spec.sizing6.w_pu);
  h.f64(spec.sizing8.core.w_pg);
  h.f64(spec.sizing8.core.w_pd);
  h.f64(spec.sizing8.core.w_pu);
  h.f64(spec.sizing8.w_rpg);
  h.f64(spec.sizing8.w_rpd);
  h.u64(spec.geometry.rows);
  h.u64(spec.geometry.cols);
  h.f64(spec.geometry.cell_height);
  h.f64(spec.geometry.cell_width);
  h.f64_span(spec.vdd_grid);
  h.u64(opts.mc_samples);
  h.u64(opts.is_samples);
  h.u64(opts.min_hits_for_mc);
  h.f64(opts.is_beta);
  // The adaptive policy changes which samples are drawn (batch schedule,
  // stopping rule), so every content-affecting knob folds into the
  // provenance hash. A disabled policy hashes as the single 0 -- fixed-mode
  // tables are insensitive to leftover adaptive knobs.
  h.u64(opts.adaptive.enabled ? 1 : 0);
  if (opts.adaptive.enabled) {
    const mc::AdaptivePolicy& ap = opts.adaptive;
    h.f64(ap.rel_target);
    h.f64(ap.abs_target);
    h.f64(ap.z);
    h.u64(static_cast<std::uint64_t>(ap.interval));
    h.u64(ap.batch_samples);
    h.f64(ap.batch_growth);
    h.u64(ap.min_samples);
    h.u64(ap.max_samples);
    h.u64(ap.tail_escape_samples);
    h.u64(ap.max_is_samples);
  }
  // opts.threads intentionally omitted: results are thread-count invariant.
  h.u64(spec.seed);
  return h.digest();
}

std::string default_cache_dir() {
  const char* env = std::getenv("HYNAPSE_CACHE_DIR");
  return env != nullptr ? env : ".hynapse_cache";
}

std::string fingerprint_hex(std::uint64_t fingerprint) {
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return hex;
}

std::vector<CachedTableInfo> list_cached_tables(const std::string& dir) {
  std::vector<CachedTableInfo> out;
  if (dir.empty() || !std::filesystem::is_directory(dir)) return out;
  for (const auto& entry : std::filesystem::directory_iterator{dir}) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("failure_table_", 0) != 0 ||
        entry.path().extension() != ".csv") {
      continue;
    }
    CachedTableInfo info;
    info.path = entry.path().string();
    std::error_code ec;
    const std::uintmax_t bytes = std::filesystem::file_size(entry.path(), ec);
    info.bytes = ec ? 0 : bytes;
    // The header carries the provenance fingerprint (the filename is just a
    // rendering of it); load_csv parses the authoritative copy and reports
    // it even when the file fails validation.
    if (const auto table =
            mc::FailureTable::load_csv(info.path, 0, &info.fingerprint)) {
      info.valid = true;
      info.rows = table->rows().size();
    }
    std::error_code mtime_ec;
    const auto mtime = std::filesystem::last_write_time(entry.path(), mtime_ec);
    if (!mtime_ec) info.mtime = mtime;
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const CachedTableInfo& a, const CachedTableInfo& b) {
              return a.path < b.path;
            });
  return out;
}

PruneResult prune_cache_dir(const std::string& dir, bool dry_run) {
  PruneResult result;
  if (dir.empty() || !std::filesystem::is_directory(dir)) return result;

  // Corrupt / partial failure-table CSVs (interrupted shard builds that
  // somehow bypassed the atomic rename, hand-edited files, stale formats).
  for (const CachedTableInfo& info : list_cached_tables(dir)) {
    if (!info.valid) result.removed.push_back(info.path);
  }
  // Temp files an interrupted atomic save left behind (save_csv writes
  // "<name>.tmp.<pid>.<seq>" then renames). Only STALE ones: the cache dir
  // is shared across processes (the cross-process scatter workflow), so a
  // fresh temp file may be another process's save in flight -- deleting it
  // would make that save's rename fail. One hour is far beyond any save's
  // lifetime and far below "interrupted yesterday".
  const auto now = std::filesystem::file_time_type::clock::now();
  for (const auto& entry : std::filesystem::directory_iterator{dir}) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.find(".tmp.") == std::string::npos) continue;
    std::error_code ec;
    const auto mtime = std::filesystem::last_write_time(entry.path(), ec);
    if (ec || now - mtime < std::chrono::hours{1}) continue;
    result.removed.push_back(entry.path().string());
  }

  std::sort(result.removed.begin(), result.removed.end());
  for (const std::string& path : result.removed) {
    std::error_code ec;
    const std::uintmax_t bytes = std::filesystem::file_size(path, ec);
    if (!ec) result.bytes_freed += bytes;
    if (!dry_run) std::filesystem::remove(path, ec);
  }
  return result;
}

namespace {

constexpr std::string_view kArchiveHeader = "# hynapse-cache-archive v1";

/// Fingerprint encoded in a cache filename, or 0 for shard files and
/// anything else (shard filenames carry the PARENT hex while their header
/// carries the shard-extended fingerprint, so only merged-table names --
/// failure_table_<16hex>.csv exactly -- can be cross-checked).
std::uint64_t filename_fingerprint(const std::string& name) {
  constexpr std::string_view prefix = "failure_table_";
  if (name.size() != prefix.size() + 16 + 4) return 0;
  if (name.rfind(prefix, 0) != 0) return 0;
  if (name.compare(name.size() - 4, 4, ".csv") != 0) return 0;
  const std::string hex = name.substr(prefix.size(), 16);
  char* end = nullptr;
  const std::uint64_t fp = std::strtoull(hex.c_str(), &end, 16);
  if (end != hex.c_str() + 16) return 0;
  return fp;
}

/// A filename safe to create inside the target dir: the cache layout's
/// names only, no separators or traversal.
bool safe_archive_name(const std::string& name) {
  if (name.empty() || name.rfind("failure_table_", 0) != 0) return false;
  if (name.find('/') != std::string::npos ||
      name.find('\\') != std::string::npos ||
      name.find("..") != std::string::npos) {
    return false;
  }
  return name.size() > 4 && name.compare(name.size() - 4, 4, ".csv") == 0;
}

}  // namespace

ArchiveResult export_cache_archive(const std::string& dir,
                                   const std::string& archive) {
  ArchiveResult result;
  std::ofstream out{archive, std::ios::binary | std::ios::trunc};
  if (!out) {
    throw std::runtime_error{"export_cache_archive: cannot write " + archive};
  }
  out << kArchiveHeader << '\n';
  for (const CachedTableInfo& info : list_cached_tables(dir)) {
    const std::string name =
        std::filesystem::path{info.path}.filename().string();
    if (!info.valid) {
      result.skipped.push_back(name + ": fails CSV validation");
      std::fprintf(stderr,
                   "[engine] warning: skipping corrupt cache file %s\n",
                   info.path.c_str());
      continue;
    }
    std::ifstream in{info.path, std::ios::binary};
    if (!in) {
      result.skipped.push_back(name + ": unreadable");
      continue;
    }
    std::string payload{std::istreambuf_iterator<char>{in},
                        std::istreambuf_iterator<char>{}};
    out << ">>> " << name << ' ' << payload.size() << '\n';
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out << '\n';
    result.files.push_back(name);
    result.bytes += payload.size();
  }
  out.flush();
  if (!out) {
    throw std::runtime_error{"export_cache_archive: write to " + archive +
                             " failed"};
  }
  return result;
}

ArchiveResult import_cache_archive(const std::string& archive,
                                   const std::string& dir) {
  ArchiveResult result;
  std::ifstream in{archive, std::ios::binary};
  if (!in) {
    throw std::runtime_error{"import_cache_archive: cannot read " + archive};
  }
  std::string line;
  if (!std::getline(in, line) || line != kArchiveHeader) {
    throw std::runtime_error{"import_cache_archive: " + archive +
                             " is not a hynapse cache archive (v1)"};
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);

  const auto skip = [&](const std::string& name, const std::string& reason) {
    result.skipped.push_back(name + ": " + reason);
    std::fprintf(stderr, "[engine] warning: skipping archive entry %s: %s\n",
                 name.c_str(), reason.c_str());
  };

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind(">>> ", 0) != 0) {
      throw std::runtime_error{
          "import_cache_archive: malformed entry line: " + line};
    }
    const std::size_t space = line.rfind(' ');
    const std::string name = line.substr(4, space - 4);
    const std::size_t size = std::strtoull(line.c_str() + space + 1, nullptr, 10);
    std::string payload(size, '\0');
    in.read(payload.data(), static_cast<std::streamsize>(size));
    if (static_cast<std::size_t>(in.gcount()) != size) {
      throw std::runtime_error{"import_cache_archive: truncated archive at " +
                               name};
    }
    in.get();  // the separator newline after the payload

    if (!safe_archive_name(name)) {
      skip(name, "not a cache-layout filename");
      continue;
    }
    // Validate BEFORE the file lands in the cache dir: write to a temp
    // path, run it through load_csv, and cross-check merged-table names
    // against the embedded fingerprint. A corrupted or mislabeled entry
    // never becomes a cache file.
    const std::string target = dir + "/" + name;
    const std::string tmp = target + ".import.tmp";
    {
      std::ofstream entry{tmp, std::ios::binary | std::ios::trunc};
      if (!entry) {
        skip(name, "cannot write to " + dir);
        continue;
      }
      entry.write(payload.data(), static_cast<std::streamsize>(size));
      if (!entry) {
        skip(name, "short write");
        std::filesystem::remove(tmp, ec);
        continue;
      }
    }
    std::uint64_t embedded = 0;
    const auto table = mc::FailureTable::load_csv(tmp, 0, &embedded);
    if (!table) {
      skip(name, "fails CSV validation");
      std::filesystem::remove(tmp, ec);
      continue;
    }
    if (const std::uint64_t named = filename_fingerprint(name);
        named != 0 && named != embedded) {
      skip(name, "fingerprint mismatch (filename " + fingerprint_hex(named) +
                     " vs header " + fingerprint_hex(embedded) + ")");
      std::filesystem::remove(tmp, ec);
      continue;
    }
    std::filesystem::rename(tmp, target, ec);
    if (ec) {
      skip(name, "rename failed: " + ec.message());
      std::filesystem::remove(tmp, ec);
      continue;
    }
    result.files.push_back(name);
    result.bytes += size;
  }
  std::sort(result.files.begin(), result.files.end());
  return result;
}

FailureTableCache::FailureTableCache(std::string dir) : dir_{std::move(dir)} {
  if (!dir_.empty()) {
    // Best effort: if creation fails, the first save_csv reports the error.
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
  }
}

std::string FailureTableCache::csv_path(std::uint64_t fingerprint) const {
  if (dir_.empty()) return {};
  return dir_ + "/failure_table_" + fingerprint_hex(fingerprint) + ".csv";
}

std::string FailureTableCache::shard_csv_path(std::uint64_t parent_fingerprint,
                                              std::size_t shard,
                                              std::size_t shard_count) const {
  if (dir_.empty()) return {};
  return dir_ + "/failure_table_" + fingerprint_hex(parent_fingerprint) +
         "_shard" + std::to_string(shard) + "of" +
         std::to_string(shard_count) + ".csv";
}

const mc::FailureTable& FailureTableCache::put(std::uint64_t fingerprint,
                                               mc::FailureTable table,
                                               bool persist) {
  const mc::FailureTable* stored = nullptr;
  {
    const std::scoped_lock lock{mutex_};
    auto& slot = tables_[fingerprint];
    slot = std::make_unique<mc::FailureTable>(std::move(table));
    stored = slot.get();
  }
  if (persist) {
    if (const std::string path = csv_path(fingerprint); !path.empty()) {
      try {
        // `cache.write_fail` simulates an unwritable cache dir / full disk
        // -- the memo must survive it (only the disk cache is lost).
        if (util::FaultInjector::instance().armed() &&
            util::FaultInjector::instance().should_fire("cache.write_fail")) {
          throw std::runtime_error{
              "injected fault: cache write failed (cache.write_fail)"};
        }
        stored->save_csv(path, fingerprint);
      } catch (const std::exception& e) {
        std::fprintf(stderr,
                     "[engine] warning: table memoized but not persisted: "
                     "%s\n",
                     e.what());
      }
    }
  }
  return *stored;
}

const mc::FailureTable* FailureTableCache::lookup(std::uint64_t fingerprint) {
  const std::scoped_lock lock{mutex_};
  const auto it = tables_.find(fingerprint);
  if (it == tables_.end() || !it->second) return nullptr;
  ++stats_.memory_hits;
  CacheInstruments::get().memory_hits.add(1);
  return it->second.get();
}

CacheStats FailureTableCache::stats() const {
  const std::scoped_lock lock{mutex_};
  return stats_;
}

bool FailureTableCache::in_memory(std::uint64_t fingerprint) const {
  const std::scoped_lock lock{mutex_};
  const auto it = tables_.find(fingerprint);
  return it != tables_.end() && it->second != nullptr;
}

const mc::FailureTable& FailureTableCache::get(
    const TableSpec& spec, const mc::FailureAnalyzer& analyzer, bool rebuild,
    TableSource* source) {
  const std::uint64_t fp = table_fingerprint(spec, analyzer.options());

  // Fast path: already memoized. Map references survive rehashing, so the
  // returned table stays valid until a rebuild replaces this fingerprint.
  if (!rebuild) {
    const std::scoped_lock lock{mutex_};
    const auto it = tables_.find(fp);
    if (it != tables_.end() && it->second) {
      ++stats_.memory_hits;
      CacheInstruments::get().memory_hits.add(1);
      if (source != nullptr) *source = TableSource::memory;
      return *it->second;
    }
  }

  // Slow path: one in-flight load/build per fingerprint; racing callers of
  // the same table wait here and then hit the memo re-check below.
  return flight_.run(fp, [&](bool coalesced) -> const mc::FailureTable& {
    if (!rebuild) {
      {
        const std::scoped_lock lock{mutex_};
        const auto it = tables_.find(fp);
        if (it != tables_.end() && it->second) {
          ++stats_.memory_hits;
          if (coalesced) ++stats_.coalesced;
          CacheInstruments& obs = CacheInstruments::get();
          obs.memory_hits.add(1);
          if (coalesced) obs.coalesced.add(1);
          if (source != nullptr) *source = TableSource::memory;
          return *it->second;
        }
      }
      if (const std::string path = csv_path(fp); !path.empty()) {
        if (auto loaded = mc::FailureTable::load_csv(path, fp)) {
          const std::scoped_lock lock{mutex_};
          ++stats_.disk_hits;
          if (coalesced) ++stats_.coalesced;
          CacheInstruments& obs = CacheInstruments::get();
          obs.disk_hits.add(1);
          if (coalesced) obs.coalesced.add(1);
          if (source != nullptr) *source = TableSource::disk;
          auto& slot = tables_[fp];
          slot = std::make_unique<mc::FailureTable>(std::move(*loaded));
          return *slot;
        }
      }
    }

    mc::FailureTable table =
        mc::FailureTable::build(analyzer, spec.vdd_grid, spec.seed);
    // Memoize before persisting: a save failure (unwritable cache dir, full
    // disk) must not discard minutes of Monte-Carlo work -- it only costs
    // the disk cache.
    const mc::FailureTable* stored = nullptr;
    {
      const std::scoped_lock lock{mutex_};
      ++stats_.builds;
      if (coalesced) ++stats_.coalesced;
      CacheInstruments& obs = CacheInstruments::get();
      obs.builds.add(1);
      if (coalesced) obs.coalesced.add(1);
      if (source != nullptr) *source = TableSource::built;
      auto& slot = tables_[fp];
      slot = std::make_unique<mc::FailureTable>(std::move(table));
      stored = slot.get();
    }
    if (const std::string path = csv_path(fp); !path.empty()) {
      try {
        if (util::FaultInjector::instance().armed() &&
            util::FaultInjector::instance().should_fire("cache.write_fail")) {
          throw std::runtime_error{
              "injected fault: cache write failed (cache.write_fail)"};
        }
        stored->save_csv(path, fp);
      } catch (const std::exception& e) {
        std::fprintf(stderr,
                     "[engine] warning: failure table built but not "
                     "persisted: %s\n",
                     e.what());
      }
    }
    return *stored;
  });
}

}  // namespace hynapse::engine
