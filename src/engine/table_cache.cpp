#include "engine/table_cache.hpp"

#include <cstdio>
#include <utility>

#include "util/hash.hpp"

namespace hynapse::engine {

namespace {

void feed_card(util::Fnv1a& h, const circuit::TechCard& card) {
  h.f64(card.vt0);
  h.f64(card.b);
  h.f64(card.alpha);
  h.f64(card.n_sub);
  h.f64(card.dibl);
  h.f64(card.vdsat_k);
  h.f64(card.lambda_clm);
  h.f64(card.phi_t);
  h.f64(card.sigma_vt0);
}

}  // namespace

std::uint64_t table_fingerprint(const TableSpec& spec,
                                const mc::AnalyzerOptions& opts) {
  util::Fnv1a h;
  h.str("hynapse-failure-table");
  h.u64(2);  // CSV format version
  feed_card(h, spec.tech.nmos);
  feed_card(h, spec.tech.pmos);
  h.f64(spec.tech.vdd_nominal);
  h.f64(spec.tech.wmin);
  h.f64(spec.tech.lmin);
  h.f64(spec.tech.c_drain_per_width);
  h.f64(spec.tech.c_gate_per_width);
  h.f64(spec.tech.c_wire_per_length);
  h.f64(spec.sizing6.w_pg);
  h.f64(spec.sizing6.w_pd);
  h.f64(spec.sizing6.w_pu);
  h.f64(spec.sizing8.core.w_pg);
  h.f64(spec.sizing8.core.w_pd);
  h.f64(spec.sizing8.core.w_pu);
  h.f64(spec.sizing8.w_rpg);
  h.f64(spec.sizing8.w_rpd);
  h.u64(spec.geometry.rows);
  h.u64(spec.geometry.cols);
  h.f64(spec.geometry.cell_height);
  h.f64(spec.geometry.cell_width);
  h.f64_span(spec.vdd_grid);
  h.u64(opts.mc_samples);
  h.u64(opts.is_samples);
  h.u64(opts.min_hits_for_mc);
  h.f64(opts.is_beta);
  // opts.threads intentionally omitted: results are thread-count invariant.
  h.u64(spec.seed);
  return h.digest();
}

FailureTableCache::FailureTableCache(std::string dir) : dir_{std::move(dir)} {}

std::string FailureTableCache::csv_path(std::uint64_t fingerprint) const {
  if (dir_.empty()) return {};
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return dir_ + "/failure_table_" + hex + ".csv";
}

const mc::FailureTable& FailureTableCache::get(
    const TableSpec& spec, const mc::FailureAnalyzer& analyzer, bool rebuild,
    TableSource* source) {
  const std::uint64_t fp = table_fingerprint(spec, analyzer.options());

  // Find or create this fingerprint's entry under the map lock, then do the
  // (possibly minutes-long) load/build under the entry's own lock so other
  // fingerprints proceed concurrently.
  std::shared_ptr<Entry> entry;
  {
    const std::scoped_lock lock{mutex_};
    auto& slot = tables_[fp];
    if (!slot) slot = std::make_shared<Entry>();
    entry = slot;
  }

  const std::scoped_lock lock{entry->mutex};
  if (!rebuild) {
    if (entry->table) {
      if (source != nullptr) *source = TableSource::memory;
      return *entry->table;
    }
    if (const std::string path = csv_path(fp); !path.empty()) {
      if (auto loaded = mc::FailureTable::load_csv(path, fp)) {
        if (source != nullptr) *source = TableSource::disk;
        entry->table = std::make_unique<mc::FailureTable>(std::move(*loaded));
        return *entry->table;
      }
    }
  }

  mc::FailureTable table =
      mc::FailureTable::build(analyzer, spec.vdd_grid, spec.seed);
  if (const std::string path = csv_path(fp); !path.empty()) {
    table.save_csv(path, fp);
  }
  if (source != nullptr) *source = TableSource::built;
  entry->table = std::make_unique<mc::FailureTable>(std::move(table));
  return *entry->table;
}

}  // namespace hynapse::engine
