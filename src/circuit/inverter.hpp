// CMOS inverter DC model: voltage-transfer characteristic and trip point.
// Building block of the SRAM bitcell cross-coupled pair.
#pragma once

#include "circuit/mosfet.hpp"

namespace hynapse::circuit {

/// A static CMOS inverter evaluated at a given rail voltage. The pull-up is
/// a PMOS (terminal polarities mirrored internally), the pull-down an NMOS.
class Inverter {
 public:
  Inverter(Mosfet pull_up, Mosfet pull_down);

  /// DC output for input vin at rail vdd, optionally with an extra load
  /// current pulled *into* the output node from a source at v_load through
  /// `load` (models the SRAM access transistor during a read; pass nullptr
  /// for an unloaded inverter). Solved by bisection on the monotone KCL
  /// residual.
  [[nodiscard]] double output(double vin, double vdd,
                              const Mosfet* load = nullptr,
                              double v_load = 0.0) const;

  /// Input voltage where output == input (metastable point of the VTC).
  [[nodiscard]] double trip_voltage(double vdd) const;

  /// Small-signal gain magnitude at the trip point (central difference).
  [[nodiscard]] double gain_at_trip(double vdd) const;

  [[nodiscard]] const Mosfet& pull_up() const noexcept { return pu_; }
  [[nodiscard]] const Mosfet& pull_down() const noexcept { return pd_; }

 private:
  Mosfet pu_;
  Mosfet pd_;
};

}  // namespace hynapse::circuit
