// 6T and 8T SRAM bitcell DC models (Fig. 4 of the paper).
//
// The 6T cell: cross-coupled inverters (PU/PD per side) with NMOS pass gates
// (PG) to the bitline pair; read and write share the PG path, which is the
// root of its conflicting sizing requirements. The 8T cell adds a decoupled
// two-transistor read buffer (RPD driven by the internal node, RPG by the
// read wordline), so read stability equals hold stability and read/write can
// be optimized independently.
//
// Two API tiers:
//  * characterization-grade: read/hold SNM (Seevinck), BL-sweep write margin
//    — used for design calibration and the margin bench;
//  * Monte-Carlo-grade: read current, read bump voltage, static
//    writeability, write delay, leakage — closed-form/bisection-cheap, used
//    by the failure-analysis inner loop.
#pragma once

#include <array>

#include "circuit/inverter.hpp"
#include "circuit/snm.hpp"
#include "circuit/tech.hpp"

namespace hynapse::circuit {

/// Transistor widths of a 6T cell in meters (length = Technology::lmin).
struct Sizing6T {
  double w_pg = 0.0;  ///< pass gate (access) width
  double w_pd = 0.0;  ///< pull-down width
  double w_pu = 0.0;  ///< pull-up width
};

/// Threshold-voltage deviations (the Monte-Carlo sample), one per transistor,
/// in volts. Left half drives node Q, right half node QB.
struct Variation6T {
  double pg_l = 0.0, pd_l = 0.0, pu_l = 0.0;
  double pg_r = 0.0, pd_r = 0.0, pu_r = 0.0;
};

/// Additional devices of the 8T cell read buffer.
struct Sizing8T {
  Sizing6T core;
  double w_rpg = 0.0;  ///< read access (RWL-gated) width
  double w_rpd = 0.0;  ///< read pull-down (node-gated) width
};

struct Variation8T {
  Variation6T core;
  double rpg = 0.0, rpd = 0.0;
};

/// Identifies a half-cell for asymmetric queries.
enum class Side { left, right };

class Bitcell6T {
 public:
  Bitcell6T(const Technology& tech, const Sizing6T& sizing,
            const Variation6T& var = {});

  // --- characterization tier ----------------------------------------------

  /// Read static noise margin [V]: butterfly of the two half-cell VTCs with
  /// pass gates conducting to bitlines precharged at vdd (WL high).
  [[nodiscard]] double read_snm(double vdd, int grid = 400) const;

  /// Hold (standby) static noise margin [V]: WL low, unloaded butterfly.
  [[nodiscard]] double hold_snm(double vdd, int grid = 400) const;

  /// BL-sweep write margin [V]: with (Q,QB) = (1,0) and WL high, the left
  /// bitline is lowered from vdd; the write margin is the highest BL voltage
  /// at which the cell flips. Larger = easier write. Returns 0 if the cell
  /// cannot be written even with BL at 0 V.
  [[nodiscard]] double write_margin(double vdd) const;

  // --- Monte-Carlo tier ----------------------------------------------------

  /// Cell read current [A]: series PG+PD on the side storing '0' (left),
  /// discharging a bitline precharged at vdd.
  [[nodiscard]] double read_current(double vdd) const;

  /// Voltage the internal '0' node is disturbed to during a read [V].
  [[nodiscard]] double read_bump(double vdd) const;

  /// Static read-disturb criterion: the read bump exceeds the opposite
  /// inverter's trip point, flipping the cell during a read.
  [[nodiscard]] bool read_disturb_fails(double vdd) const;

  /// DC level the pass gate pulls the '1' node down to during a write with
  /// BL at 0 V and the opposing pull-up fully on [V].
  [[nodiscard]] double write_zero_level(double vdd) const;

  /// Static write failure: even at DC the '1' node cannot be pulled below
  /// the opposite inverter's trip point.
  [[nodiscard]] bool static_write_fails(double vdd) const;

  /// Time to pull the '1' node from vdd to the opposite trip point [s],
  /// integrating c_node * dV / (I_pg - I_pu). +inf when statically
  /// unwriteable. Conservative single-node estimate (ignores the BLB-side
  /// assist); the Monte-Carlo criterion uses the two-node transient below.
  [[nodiscard]] double write_delay(double vdd, double c_node) const;

  /// Two-node write transient: explicit-Euler integration of both storage
  /// nodes from (Q,QB) = (vdd,0) with BL = 0, BLB = vdd, WL = vdd. Returns
  /// the time at which Q falls below QB (the regenerative crossover), or
  /// +inf if the cell has not flipped within t_max [s].
  [[nodiscard]] double write_flip_time(double vdd, double c_node,
                                       double t_max) const;

  /// Continuous write limit-state: (Q - QB)/vdd at the end of the write
  /// budget. Positive = write failed. Used by the importance sampler.
  [[nodiscard]] double write_residual(double vdd, double c_node,
                                      double t_budget) const;

  /// Standby leakage current [A] with WL low and bitlines precharged at vdd
  /// (state-independent by symmetry of the leak paths).
  [[nodiscard]] double leakage(double vdd) const;

  /// Standby bistability: relaxes the unloaded cross-coupled pair from the
  /// (Q,QB) = (vdd,0) corner by damped fixed-point iteration and reports
  /// whether the state survives. Used by the data-retention analysis.
  [[nodiscard]] bool holds_state(double vdd) const;

  /// Continuous retention limit-state: (QB - Q)/vdd after relaxation;
  /// positive = the stored '1' was lost at this standby voltage.
  [[nodiscard]] double hold_residual(double vdd) const;

  /// Trip voltage of one half-cell inverter.
  [[nodiscard]] double trip_voltage(Side side, double vdd) const;

  /// Unloaded or read-loaded half-cell VTC (exposed for the margin bench).
  [[nodiscard]] double vtc(Side side, double vin, double vdd,
                           bool read_loaded) const;

  [[nodiscard]] const Sizing6T& sizing() const noexcept { return sizing_; }
  [[nodiscard]] const Technology& tech() const noexcept { return *tech_; }

 private:
  const Technology* tech_;
  Sizing6T sizing_;
  Inverter inv_l_;
  Inverter inv_r_;
  Mosfet pg_l_;
  Mosfet pg_r_;
};

class Bitcell8T {
 public:
  Bitcell8T(const Technology& tech, const Sizing8T& sizing,
            const Variation8T& var = {});

  /// Write-path and hold behaviour delegate to the (write-optimized) core.
  [[nodiscard]] const Bitcell6T& core() const noexcept { return core_; }

  /// Read SNM equals hold SNM: the read port is decoupled from the storage
  /// nodes, so a read cannot degrade stability (paper Section IV, [21]).
  [[nodiscard]] double read_snm(double vdd, int grid = 400) const;
  [[nodiscard]] double hold_snm(double vdd, int grid = 400) const;
  [[nodiscard]] double write_margin(double vdd) const;

  /// Read-buffer current [A]: series RPG+RPD with both gates at vdd,
  /// discharging the read bitline.
  [[nodiscard]] double read_current(double vdd) const;

  /// An 8T cell has no read-disturb mechanism.
  [[nodiscard]] static constexpr bool read_disturb_fails(double) noexcept {
    return false;
  }

  [[nodiscard]] bool static_write_fails(double vdd) const;
  [[nodiscard]] double write_delay(double vdd, double c_node) const;
  [[nodiscard]] double write_flip_time(double vdd, double c_node,
                                       double t_max) const;
  [[nodiscard]] double write_residual(double vdd, double c_node,
                                      double t_budget) const;

  /// Standby leakage including the read-buffer stack, averaged over the two
  /// stored states [A].
  [[nodiscard]] double leakage(double vdd) const;

  [[nodiscard]] const Sizing8T& sizing() const noexcept { return sizing_; }

 private:
  const Technology* tech_;
  Sizing8T sizing_;
  Bitcell6T core_;
  Mosfet rpg_;
  Mosfet rpd_;
};

}  // namespace hynapse::circuit
