#include "circuit/mosfet.hpp"

#include <cmath>
#include <stdexcept>

namespace hynapse::circuit {

Mosfet::Mosfet(const TechCard& card, double w, double l, double delta_vt)
    : card_{&card}, w_{w}, l_{l}, delta_vt_{delta_vt}, w_over_l_{w / l} {
  if (!(w > 0.0) || !(l > 0.0))
    throw std::invalid_argument{"Mosfet: geometry must be positive"};
}

double Mosfet::ids(double vgs, double vds) const noexcept {
  if (vds < 0.0) vds = 0.0;
  const TechCard& c = *card_;
  const double vt_eff = c.vt0 + delta_vt_ - c.dibl * vds;
  const double nvt = c.n_sub * c.phi_t;
  // Smoothed overdrive: ~ (vgs - vt) in strong inversion, exponential in
  // weak inversion. Keeps ids continuous and monotone across the threshold.
  const double x = (vgs - vt_eff) / nvt;
  double veff = 0.0;
  if (x > 40.0) {
    veff = vgs - vt_eff;
  } else {
    veff = nvt * std::log1p(std::exp(x));
  }
  if (veff <= 0.0) return 0.0;

  const double isat = c.b * w_over_l_ * std::pow(veff, c.alpha);
  const double vdsat = c.vdsat_k * std::pow(veff, 0.5 * c.alpha);
  if (vds >= vdsat) {
    return isat * (1.0 + c.lambda_clm * (vds - vdsat));
  }
  const double r = vds / vdsat;
  return isat * r * (2.0 - r);
}

double Mosfet::leakage(double vdd) const noexcept { return ids(0.0, vdd); }

double Mosfet::sigma_vt(double wmin, double lmin) const noexcept {
  return card_->sigma_vt0 * std::sqrt((lmin / l_) * (wmin / w_));
}

Mosfet Mosfet::with_delta_vt(double delta_vt) const {
  Mosfet copy = *this;
  copy.delta_vt_ = delta_vt;
  return copy;
}

}  // namespace hynapse::circuit
