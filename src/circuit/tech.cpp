#include "circuit/tech.hpp"

namespace hynapse::circuit {

Technology ptm22() {
  Technology t;
  t.nmos.vt0 = 0.38;
  t.nmos.b = 5.0e-5;
  t.nmos.alpha = 1.3;
  t.nmos.n_sub = 1.9;
  t.nmos.dibl = 0.136;
  t.nmos.vdsat_k = 0.5;
  t.nmos.lambda_clm = 0.05;
  t.nmos.sigma_vt0 = 0.055;

  t.pmos = t.nmos;
  t.pmos.vt0 = 0.36;
  t.pmos.b = 2.4e-5;  // ~half electron mobility
  t.pmos.sigma_vt0 = 0.045;  // PMOS RDF is milder at this node

  t.vdd_nominal = 0.95;
  return t;
}

}  // namespace hynapse::circuit
