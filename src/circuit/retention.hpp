// Data-retention-voltage (DRV) analysis: the minimum standby supply at which
// a bitcell still holds its state. Extension beyond the paper: the hybrid
// array's leakage savings invite dropping the standby rail between
// inferences, and the DRV distribution under variation bounds how far.
#pragma once

#include "circuit/bitcell.hpp"

namespace hynapse::circuit {

/// Minimum supply at which `cell` holds its state, found by bisection on
/// the hold residual over [v_lo, v_hi]. Returns v_hi if the cell cannot
/// hold even there, and v_lo if it holds everywhere in the bracket.
[[nodiscard]] double retention_voltage(const Bitcell6T& cell, double v_lo = 0.05,
                                       double v_hi = 0.95);

/// Hold static noise margin at a standby voltage (unloaded butterfly) --
/// the margin-style view of the same question.
[[nodiscard]] double hold_margin(const Bitcell6T& cell, double v_standby,
                                 int grid = 300);

}  // namespace hynapse::circuit
