#include "circuit/bitcell.hpp"

#include <cmath>
#include <limits>
#include <utility>
#include <stdexcept>

#include "circuit/solve.hpp"

namespace hynapse::circuit {

namespace {

Inverter make_half(const Technology& tech, const Sizing6T& s, double dvt_pu,
                   double dvt_pd) {
  return Inverter{Mosfet{tech.pmos, s.w_pu, tech.lmin, dvt_pu},
                  Mosfet{tech.nmos, s.w_pd, tech.lmin, dvt_pd}};
}

}  // namespace

Bitcell6T::Bitcell6T(const Technology& tech, const Sizing6T& sizing,
                     const Variation6T& var)
    : tech_{&tech},
      sizing_{sizing},
      inv_l_{make_half(tech, sizing, var.pu_l, var.pd_l)},
      inv_r_{make_half(tech, sizing, var.pu_r, var.pd_r)},
      pg_l_{tech.nmos, sizing.w_pg, tech.lmin, var.pg_l},
      pg_r_{tech.nmos, sizing.w_pg, tech.lmin, var.pg_r} {
  if (!(sizing.w_pg > 0.0) || !(sizing.w_pd > 0.0) || !(sizing.w_pu > 0.0))
    throw std::invalid_argument{"Bitcell6T: widths must be positive"};
}

double Bitcell6T::vtc(Side side, double vin, double vdd,
                      bool read_loaded) const {
  const Inverter& inv = (side == Side::left) ? inv_l_ : inv_r_;
  const Mosfet& pg = (side == Side::left) ? pg_l_ : pg_r_;
  // During a read both bitlines are precharged to vdd and the WL is high, so
  // the access transistor pulls the half-cell output toward vdd.
  return inv.output(vin, vdd, read_loaded ? &pg : nullptr, vdd);
}

double Bitcell6T::read_snm(double vdd, int grid) const {
  const TabulatedVtc f{
      [&](double v) { return vtc(Side::left, v, vdd, true); }, vdd, grid};
  const TabulatedVtc g{
      [&](double v) { return vtc(Side::right, v, vdd, true); }, vdd, grid};
  return static_noise_margin(f, g);
}

double Bitcell6T::hold_snm(double vdd, int grid) const {
  const TabulatedVtc f{
      [&](double v) { return vtc(Side::left, v, vdd, false); }, vdd, grid};
  const TabulatedVtc g{
      [&](double v) { return vtc(Side::right, v, vdd, false); }, vdd, grid};
  return static_noise_margin(f, g);
}

double Bitcell6T::write_margin(double vdd) const {
  // Static flip test at a given left-bitline voltage: relax the cross-coupled
  // pair by damped fixed-point iteration from the (Q,QB) = (1,0) state with
  // WL high, BLB at vdd. The cell is written when Q settles below QB.
  const auto flips_at = [&](double v_bl) {
    double q = vdd;
    double qb = 0.0;
    for (int i = 0; i < 240; ++i) {
      const double q_next = inv_l_.output(qb, vdd, &pg_l_, v_bl);
      const double qb_next = inv_r_.output(q, vdd, &pg_r_, vdd);
      // Damping stabilizes the iteration near the critical bitline voltage.
      q = 0.5 * (q + q_next);
      qb = 0.5 * (qb + qb_next);
    }
    return q < qb;
  };
  if (!flips_at(0.0)) return 0.0;
  double lo = 0.0;   // flips
  double hi = vdd;   // assume no flip at vdd (cell is stable in hold)
  if (flips_at(hi)) return vdd;
  for (int i = 0; i < 30; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (flips_at(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double Bitcell6T::read_bump(double vdd) const {
  // Series PG (from BL at vdd) and PD (to ground, gate at vdd via QB) on the
  // '0' side. KCL residual at the internal node is monotone increasing.
  const auto residual = [&](double vn) {
    const double i_pd = inv_l_.pull_down().ids(vdd, vn);
    const double i_pg = pg_l_.ids(vdd - vn, vdd - vn);
    return i_pd - i_pg;
  };
  return bisect_increasing(residual, 0.0, vdd);
}

double Bitcell6T::read_current(double vdd) const {
  const double vn = read_bump(vdd);
  return pg_l_.ids(vdd - vn, vdd - vn);
}

bool Bitcell6T::read_disturb_fails(double vdd) const {
  // The bumped '0' node drives the opposite inverter; if the bump exceeds
  // that inverter's trip point the cell flips during the read.
  return read_bump(vdd) >= inv_r_.trip_voltage(vdd);
}

double Bitcell6T::write_zero_level(double vdd) const {
  // Writing 0 into Q (currently 1): PG_L pulls Q toward BL = 0 while PU_L
  // (gate QB = 0, fully on) fights. The QB side has not flipped yet, which
  // is the worst case.
  const auto residual = [&](double vq) {
    const double i_down = pg_l_.ids(vdd, vq);               // source at BL=0
    const double i_up = inv_l_.pull_up().ids(vdd, vdd - vq);  // PMOS fully on
    return i_down - i_up;
  };
  // i_down rises with vq, i_up falls: residual increasing -> root is the DC
  // equilibrium level.
  return bisect_increasing(residual, 0.0, vdd);
}

bool Bitcell6T::static_write_fails(double vdd) const {
  return write_zero_level(vdd) >= inv_r_.trip_voltage(vdd);
}

double Bitcell6T::write_delay(double vdd, double c_node) const {
  const double v_trip = inv_r_.trip_voltage(vdd);
  const double v_final = write_zero_level(vdd);
  if (v_final >= v_trip) return std::numeric_limits<double>::infinity();
  // Integrate c dV / I_net from vdd down to the trip point. The integrand is
  // finite on the whole path because v_final < v_trip.
  constexpr int steps = 24;
  const double dv = (vdd - v_trip) / steps;
  double t = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double v = vdd - (static_cast<double>(i) + 0.5) * dv;
    const double i_down = pg_l_.ids(vdd, v);
    const double i_up = inv_l_.pull_up().ids(vdd, vdd - v);
    const double i_net = i_down - i_up;
    if (i_net <= 0.0) return std::numeric_limits<double>::infinity();
    t += c_node * dv / i_net;
  }
  return t;
}

namespace {

struct WriteTransientState {
  double q;
  double qb;
};

}  // namespace

double Bitcell6T::write_flip_time(double vdd, double c_node,
                                  double t_max) const {
  constexpr int kSteps = 240;
  const double dt = t_max / kSteps;
  WriteTransientState s{vdd, 0.0};
  double prev_margin = s.q - s.qb;
  for (int i = 0; i < kSteps; ++i) {
    // Node Q: PU_L sources current, PD_L sinks, PG_L drains to BL = 0.
    const double i_q = inv_l_.pull_up().ids(vdd - s.qb, vdd - s.q) -
                       inv_l_.pull_down().ids(s.qb, s.q) -
                       pg_l_.ids(vdd, s.q);
    // Node QB: PU_R sources, PD_R sinks, PG_R assists from BLB = vdd.
    const double i_qb = inv_r_.pull_up().ids(vdd - s.q, vdd - s.qb) -
                        inv_r_.pull_down().ids(s.q, s.qb) +
                        pg_r_.ids(vdd - s.qb, vdd - s.qb);
    s.q = std::clamp(s.q + dt * i_q / c_node, 0.0, vdd);
    s.qb = std::clamp(s.qb + dt * i_qb / c_node, 0.0, vdd);
    const double margin = s.q - s.qb;
    if (margin < 0.0) {
      // Linear interpolation of the crossover inside this step.
      const double frac = prev_margin / (prev_margin - margin);
      return (static_cast<double>(i) + frac) * dt;
    }
    prev_margin = margin;
  }
  return std::numeric_limits<double>::infinity();
}

double Bitcell6T::write_residual(double vdd, double c_node,
                                 double t_budget) const {
  constexpr int kSteps = 120;
  const double dt = t_budget / kSteps;
  WriteTransientState s{vdd, 0.0};
  for (int i = 0; i < kSteps; ++i) {
    // Deeply flipped: the outcome cannot change any more.
    if (s.q < 0.05 * vdd && s.qb > 0.9 * vdd) return (s.q - s.qb) / vdd;
    const double i_q = inv_l_.pull_up().ids(vdd - s.qb, vdd - s.q) -
                       inv_l_.pull_down().ids(s.qb, s.q) -
                       pg_l_.ids(vdd, s.q);
    const double i_qb = inv_r_.pull_up().ids(vdd - s.q, vdd - s.qb) -
                        inv_r_.pull_down().ids(s.q, s.qb) +
                        pg_r_.ids(vdd - s.qb, vdd - s.qb);
    s.q = std::clamp(s.q + dt * i_q / c_node, 0.0, vdd);
    s.qb = std::clamp(s.qb + dt * i_qb / c_node, 0.0, vdd);
  }
  return (s.q - s.qb) / vdd;
}

double Bitcell6T::leakage(double vdd) const {
  // Storing (Q,QB) = (0,1), WL low, bitlines precharged at vdd: the off
  // devices are PU_L (vds = vdd), PG_L (bitline into the low node) and PD_R.
  const double i_pu = inv_l_.pull_up().leakage(vdd);
  const double i_pg = pg_l_.leakage(vdd);
  const double i_pd = inv_r_.pull_down().leakage(vdd);
  return i_pu + i_pg + i_pd;
}

double Bitcell6T::hold_residual(double vdd) const {
  // Unloaded (WL low) relaxation from each stored corner. A healthy cell
  // regenerates toward the rails; a variation-crippled cell at a too-low
  // standby voltage collapses through the metastable point. Retention
  // requires holding *either* datum, so the worse state decides -- an
  // asymmetric cell typically keeps one value comfortably while losing the
  // other.
  const auto relax = [&](double q0, double qb0) {
    double q = q0;
    double qb = qb0;
    for (int i = 0; i < 48; ++i) {
      const double q_next = inv_l_.output(qb, vdd);
      const double qb_next = inv_r_.output(q, vdd);
      q = 0.5 * (q + q_next);
      qb = 0.5 * (qb + qb_next);
    }
    return std::make_pair(q, qb);
  };
  const auto [q1, qb1] = relax(vdd, 0.0);   // stored '1': fails if qb > q
  const auto [q0, qb0] = relax(0.0, vdd);   // stored '0': fails if q > qb
  return std::max(qb1 - q1, q0 - qb0) / vdd;
}

bool Bitcell6T::holds_state(double vdd) const {
  return hold_residual(vdd) < 0.0;
}

double Bitcell6T::trip_voltage(Side side, double vdd) const {
  return (side == Side::left ? inv_l_ : inv_r_).trip_voltage(vdd);
}

Bitcell8T::Bitcell8T(const Technology& tech, const Sizing8T& sizing,
                     const Variation8T& var)
    : tech_{&tech},
      sizing_{sizing},
      core_{tech, sizing.core, var.core},
      rpg_{tech.nmos, sizing.w_rpg, tech.lmin, var.rpg},
      rpd_{tech.nmos, sizing.w_rpd, tech.lmin, var.rpd} {
  if (!(sizing.w_rpg > 0.0) || !(sizing.w_rpd > 0.0))
    throw std::invalid_argument{"Bitcell8T: read-buffer widths must be positive"};
}

double Bitcell8T::read_snm(double vdd, int grid) const {
  return core_.hold_snm(vdd, grid);
}

double Bitcell8T::hold_snm(double vdd, int grid) const {
  return core_.hold_snm(vdd, grid);
}

double Bitcell8T::write_margin(double vdd) const {
  return core_.write_margin(vdd);
}

double Bitcell8T::read_current(double vdd) const {
  // RPD gate is driven by the full-swing storage node, RPG by the read WL;
  // both at vdd while discharging the read bitline (also precharged at vdd).
  const auto residual = [&](double vn) {
    const double i_rpd = rpd_.ids(vdd, vn);
    const double i_rpg = rpg_.ids(vdd - vn, vdd - vn);
    return i_rpd - i_rpg;
  };
  const double vn = bisect_increasing(residual, 0.0, vdd);
  return rpg_.ids(vdd - vn, vdd - vn);
}

bool Bitcell8T::static_write_fails(double vdd) const {
  return core_.static_write_fails(vdd);
}

double Bitcell8T::write_delay(double vdd, double c_node) const {
  return core_.write_delay(vdd, c_node);
}

double Bitcell8T::write_flip_time(double vdd, double c_node,
                                  double t_max) const {
  return core_.write_flip_time(vdd, c_node, t_max);
}

double Bitcell8T::write_residual(double vdd, double c_node,
                                 double t_budget) const {
  return core_.write_residual(vdd, c_node, t_budget);
}

double Bitcell8T::leakage(double vdd) const {
  // Core leakage plus the read-buffer stack, averaged over stored state:
  // buffer input high -> RPD on, full RPG subthreshold leak from the read
  // bitline; buffer input low -> two-off-device stack, suppressed by the
  // stack effect (empirical factor 0.2).
  const double stack_suppression = 0.2;
  const double leak_on_state = rpg_.leakage(vdd);
  const double leak_off_state =
      stack_suppression * std::min(rpg_.leakage(vdd), rpd_.leakage(vdd));
  return core_.leakage(vdd) + 0.5 * (leak_on_state + leak_off_state);
}

}  // namespace hynapse::circuit
