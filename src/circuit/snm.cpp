#include "circuit/snm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hynapse::circuit {

TabulatedVtc::TabulatedVtc(const std::function<double(double)>& fn, double vdd,
                           int points)
    : vdd_{vdd} {
  if (points < 8) throw std::invalid_argument{"TabulatedVtc: too few points"};
  ys_.resize(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double x =
        vdd * static_cast<double>(i) / static_cast<double>(points - 1);
    ys_[static_cast<std::size_t>(i)] = fn(x);
  }
}

double TabulatedVtc::eval(double x) const noexcept {
  const auto n = static_cast<int>(ys_.size());
  const double t = std::clamp(x / vdd_, 0.0, 1.0) * static_cast<double>(n - 1);
  const int lo = std::min(static_cast<int>(t), n - 2);
  const double frac = t - static_cast<double>(lo);
  const auto ulo = static_cast<std::size_t>(lo);
  return ys_[ulo] + frac * (ys_[ulo + 1] - ys_[ulo]);
}

double TabulatedVtc::input(std::size_t i) const {
  return vdd_ * static_cast<double>(i) / static_cast<double>(ys_.size() - 1);
}

double TabulatedVtc::output(std::size_t i) const { return ys_.at(i); }

namespace {

/// One curve in 45-degree-rotated coordinates: v as a single-valued function
/// of u, stored as monotonically increasing (u, v) samples.
struct RotatedCurve {
  std::vector<double> u;
  std::vector<double> v;

  [[nodiscard]] double eval(double uq) const noexcept {
    if (uq <= u.front()) return v.front();
    if (uq >= u.back()) return v.back();
    const auto it = std::upper_bound(u.begin(), u.end(), uq);
    const auto hi = static_cast<std::size_t>(it - u.begin());
    const std::size_t lo = hi - 1;
    const double t = (uq - u[lo]) / std::max(u[hi] - u[lo], 1e-30);
    return v[lo] + t * (v[hi] - v[lo]);
  }
};

constexpr double kInvSqrt2 = 0.7071067811865476;

// Curve y = F(x): u = (x - y)/sqrt2 is strictly increasing along x because F
// is decreasing.
RotatedCurve rotate_forward(const TabulatedVtc& f) {
  RotatedCurve c;
  c.u.reserve(f.size());
  c.v.reserve(f.size());
  double last_u = -1e300;
  for (std::size_t i = 0; i < f.size(); ++i) {
    const double x = f.input(i);
    const double y = f.output(i);
    const double u = (x - y) * kInvSqrt2;
    if (u <= last_u) continue;  // guard against flat numerical segments
    last_u = u;
    c.u.push_back(u);
    c.v.push_back((x + y) * kInvSqrt2);
  }
  return c;
}

// Mirrored curve x = G(y): points (G(t), t); u = (G(t) - t)/sqrt2 decreases
// along t, so traverse in reverse to store increasing u.
RotatedCurve rotate_mirrored(const TabulatedVtc& g) {
  RotatedCurve c;
  c.u.reserve(g.size());
  c.v.reserve(g.size());
  double last_u = -1e300;
  for (std::size_t k = g.size(); k-- > 0;) {
    const double t = g.input(k);
    const double x = g.output(k);
    const double u = (x - t) * kInvSqrt2;
    if (u <= last_u) continue;
    last_u = u;
    c.u.push_back(u);
    c.v.push_back((x + t) * kInvSqrt2);
  }
  return c;
}

}  // namespace

double static_noise_margin(const TabulatedVtc& vtc1, const TabulatedVtc& vtc2) {
  const RotatedCurve f = rotate_forward(vtc1);
  const RotatedCurve g = rotate_mirrored(vtc2);
  const double u_lo = std::max(f.u.front(), g.u.front());
  const double u_hi = std::min(f.u.back(), g.u.back());
  if (!(u_hi > u_lo)) return 0.0;

  // Sample the gap between the rotated curves. Butterfly eyes are *closed*
  // regions: the gap returns to (near) zero on both sides of a lobe, either
  // by crossing zero at the metastable point or by touching zero where the
  // curves meet at a stable point. A monostable pair has sign regions that
  // run into the end of the common range with a large residual gap -- those
  // pseudo-lobes are not inscribed-square candidates and must be rejected,
  // otherwise a flipped cell would report a healthy SNM.
  constexpr int kGrid = 2001;
  std::vector<double> gap(kGrid);
  for (int i = 0; i < kGrid; ++i) {
    const double u =
        u_lo + (u_hi - u_lo) * static_cast<double>(i) / (kGrid - 1);
    gap[static_cast<std::size_t>(i)] = f.eval(u) - g.eval(u);
  }

  // Scan maximal same-sign regions; a region bounded by the array ends is
  // valid only if the gap there has (nearly) closed.
  double max_pos = 0.0;  // eye where F is above the mirrored curve
  double max_neg = 0.0;  // the other eye
  int start = 0;
  while (start < kGrid) {
    const double s0 = gap[static_cast<std::size_t>(start)];
    if (s0 == 0.0) {
      ++start;
      continue;
    }
    int end = start;
    double peak = 0.0;
    while (end < kGrid &&
           gap[static_cast<std::size_t>(end)] * s0 > 0.0) {
      peak = std::max(peak, std::fabs(gap[static_cast<std::size_t>(end)]));
      ++end;
    }
    const bool left_closed =
        start > 0 ||
        std::fabs(gap[static_cast<std::size_t>(start)]) < 0.05 * peak;
    const bool right_closed =
        end < kGrid ||
        std::fabs(gap[static_cast<std::size_t>(end - 1)]) < 0.05 * peak;
    if (left_closed && right_closed) {
      if (s0 > 0.0) {
        max_pos = std::max(max_pos, peak);
      } else {
        max_neg = std::max(max_neg, peak);
      }
    }
    start = end;
  }
  return std::min(max_pos, max_neg) * kInvSqrt2;
}

}  // namespace hynapse::circuit
