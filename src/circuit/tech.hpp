// Technology cards for the 22 nm predictive-technology-class device model.
//
// The paper characterizes its bitcells with HSPICE on 22 nm PTM cards [18].
// This module provides the equivalent analytical card: every parameter a
// Sakurai-Newton alpha-power-law model with subthreshold conduction and DIBL
// needs, plus the Pelgrom mismatch coefficient used for threshold-voltage
// variation (Eq. 1 of the paper).
#pragma once

namespace hynapse::circuit {

/// Per-device-type model card. Voltages in volts, currents in amperes,
/// lengths in meters, capacitances in farads.
struct TechCard {
  double vt0 = 0.0;        ///< nominal threshold voltage magnitude [V]
  double b = 0.0;          ///< alpha-power transconductance scale [A/V^alpha]
  double alpha = 1.3;      ///< velocity-saturation index
  double n_sub = 1.9;      ///< subthreshold slope factor (model-internal; the
                           ///< effective SS is ln(10)*n_sub*phi_t/alpha)
  double dibl = 0.136;     ///< drain-induced barrier lowering [V/V]
  double vdsat_k = 0.5;    ///< saturation-voltage coefficient [V^(1-alpha/2)]
  double lambda_clm = 0.05;  ///< channel-length modulation [1/V]
  double phi_t = 0.02585;  ///< thermal voltage at 300 K [V]
  double sigma_vt0 = 0.0;  ///< VT mismatch sigma of a minimum device [V]
};

/// Complete technology description shared by every circuit in the repo.
struct Technology {
  TechCard nmos;
  TechCard pmos;
  double vdd_nominal = 0.95;  ///< paper's nominal supply [V]
  double wmin = 45e-9;        ///< minimum transistor width [m]
  double lmin = 22e-9;        ///< minimum channel length [m]

  /// Capacitance constants used by the array-level models.
  double c_drain_per_width = 0.9e-9;  ///< junction cap per width [F/m]
  double c_gate_per_width = 1.1e-9;   ///< gate cap per width [F/m]
  double c_wire_per_length = 0.20e-9;  ///< bitline/wordline wire cap [F/m]
};

/// 22 nm predictive-technology-class cards calibrated to the paper's anchors:
/// subthreshold slope ~87 mV/dec, leakage-vs-VDD slope matching Fig 6(c)
/// (~4.3x from 0.95 V to 0.65 V), and on-currents giving ~ns-scale access on
/// a 256x256 sub-array.
[[nodiscard]] Technology ptm22();

}  // namespace hynapse::circuit
