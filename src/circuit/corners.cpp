#include "circuit/corners.hpp"

#include <cmath>
#include <stdexcept>

namespace hynapse::circuit {

std::string corner_name(ProcessCorner corner) {
  switch (corner) {
    case ProcessCorner::tt: return "TT";
    case ProcessCorner::ff: return "FF";
    case ProcessCorner::ss: return "SS";
    case ProcessCorner::fs: return "FS";
    case ProcessCorner::sf: return "SF";
  }
  throw std::invalid_argument{"corner_name: bad corner"};
}

Technology at_corner(const Technology& nominal, ProcessCorner corner) {
  Technology t = nominal;
  double dn = 0.0;  // NMOS VT shift
  double dp = 0.0;  // PMOS VT shift (magnitude)
  switch (corner) {
    case ProcessCorner::tt: break;
    case ProcessCorner::ff: dn = -kCornerVtShift; dp = -kCornerVtShift; break;
    case ProcessCorner::ss: dn = +kCornerVtShift; dp = +kCornerVtShift; break;
    case ProcessCorner::fs: dn = -kCornerVtShift; dp = +kCornerVtShift; break;
    case ProcessCorner::sf: dn = +kCornerVtShift; dp = -kCornerVtShift; break;
  }
  t.nmos.vt0 += dn;
  t.pmos.vt0 += dp;
  return t;
}

Technology at_temperature(const Technology& nominal, double temp_kelvin) {
  if (!(temp_kelvin > 0.0))
    throw std::invalid_argument{"at_temperature: T must be positive"};
  Technology t = nominal;
  const double ratio = temp_kelvin / kNominalTemperature;
  const double dvt = -0.8e-3 * (temp_kelvin - kNominalTemperature);
  const double mobility = std::pow(ratio, -1.5);
  for (TechCard* card : {&t.nmos, &t.pmos}) {
    card->phi_t = 0.02585 * ratio;
    card->vt0 += dvt;
    card->b *= mobility;
  }
  return t;
}

}  // namespace hynapse::circuit
