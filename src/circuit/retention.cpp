#include "circuit/retention.hpp"

namespace hynapse::circuit {

double retention_voltage(const Bitcell6T& cell, double v_lo, double v_hi) {
  if (!cell.holds_state(v_hi)) return v_hi;
  if (cell.holds_state(v_lo)) return v_lo;
  double lo = v_lo;   // does not hold
  double hi = v_hi;   // holds
  for (int i = 0; i < 40; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (cell.holds_state(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double hold_margin(const Bitcell6T& cell, double v_standby, int grid) {
  return cell.hold_snm(v_standby, grid);
}

}  // namespace hynapse::circuit
