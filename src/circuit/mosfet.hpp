// Analytical MOSFET model: Sakurai-Newton alpha-power law unified with
// subthreshold conduction through an EKV-style smoothed effective overdrive,
// plus DIBL. Replaces the paper's HSPICE/PTM device evaluation.
//
// Conventions: NMOS source-referenced voltages; vgs and vds are handed in as
// non-negative magnitudes for PMOS as well (the caller mirrors polarities, as
// the Inverter and Bitcell classes do).
#pragma once

#include "circuit/tech.hpp"

namespace hynapse::circuit {

/// One transistor instance: a technology card, a W/L geometry, and a local
/// threshold-voltage deviation (the Monte-Carlo sample).
class Mosfet {
 public:
  /// Throws std::invalid_argument for non-positive geometry.
  Mosfet(const TechCard& card, double w, double l, double delta_vt = 0.0);

  /// Drain current [A] for source-referenced gate/drain voltages [V].
  /// Continuous and strictly increasing in vgs; non-decreasing in vds.
  /// Negative vds is clamped to zero (the callers orient terminals).
  [[nodiscard]] double ids(double vgs, double vds) const noexcept;

  /// Subthreshold leakage at vgs = 0 for the given rail voltage [A].
  [[nodiscard]] double leakage(double vdd) const noexcept;

  /// Pelgrom sigma of this device's VT given the technology minimum geometry
  /// (Eq. 1 of the paper): sigma = sigma_vt0 * sqrt((Lmin/L)(Wmin/W)).
  [[nodiscard]] double sigma_vt(double wmin, double lmin) const noexcept;

  [[nodiscard]] double w() const noexcept { return w_; }
  [[nodiscard]] double l() const noexcept { return l_; }
  [[nodiscard]] double delta_vt() const noexcept { return delta_vt_; }
  [[nodiscard]] const TechCard& card() const noexcept { return *card_; }

  /// Returns a copy with a different VT deviation (hot path of the MC loop).
  [[nodiscard]] Mosfet with_delta_vt(double delta_vt) const;

 private:
  const TechCard* card_;
  double w_;
  double l_;
  double delta_vt_;
  double w_over_l_;
};

}  // namespace hynapse::circuit
