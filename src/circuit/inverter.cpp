#include "circuit/inverter.hpp"

#include "circuit/solve.hpp"

namespace hynapse::circuit {

Inverter::Inverter(Mosfet pull_up, Mosfet pull_down)
    : pu_{std::move(pull_up)}, pd_{std::move(pull_down)} {}

double Inverter::output(double vin, double vdd, const Mosfet* load,
                        double v_load) const {
  // KCL residual at the output node, monotone increasing in vout:
  //   f(vout) = I_pulldown(vout) - I_pullup(vout) - I_load(vout)
  // PD current rises with vout (its vds), PU and the load current fall.
  const auto residual = [&](double vout) {
    const double i_pd = pd_.ids(vin, vout);
    const double i_pu = pu_.ids(vdd - vin, vdd - vout);
    double i_load = 0.0;
    if (load != nullptr) {
      if (v_load >= vout) {
        // NMOS access device conducting from v_load into the node; its
        // source is the output node.
        i_load = load->ids(vdd - vout, v_load - vout);
      } else {
        // Node above the load terminal: current flows out of the node.
        i_load = -load->ids(vdd - v_load, vout - v_load);
      }
    }
    return i_pd - i_pu - i_load;
  };
  return bisect_increasing(residual, 0.0, vdd);
}

double Inverter::trip_voltage(double vdd) const {
  // At the trip point vout == vin == v, so the KCL reduces to a single
  // monotone equation -- no nested solve needed (this sits on the
  // Monte-Carlo hot path).
  const auto residual = [&](double v) {
    return pd_.ids(v, v) - pu_.ids(vdd - v, vdd - v);
  };
  return bisect_increasing(residual, 0.0, vdd);
}

double Inverter::gain_at_trip(double vdd) const {
  const double vt = trip_voltage(vdd);
  const double h = 1e-4 * vdd;
  const double lo = output(vt - h, vdd);
  const double hi = output(vt + h, vdd);
  return std::fabs((hi - lo) / (2.0 * h));
}

}  // namespace hynapse::circuit
