// Scalar root/extremum helpers shared by the circuit solvers. Header-only so
// the Monte-Carlo hot path can inline them.
#pragma once

#include <cmath>
#include <stdexcept>

namespace hynapse::circuit {

/// Finds x in [lo, hi] with f(x) = 0 for a monotonically *increasing*
/// residual f, by bisection. If f has no sign change on the bracket the
/// nearer endpoint is returned (the circuit callers rely on this clamping
/// behaviour for rail-saturated nodes).
template <typename F>
[[nodiscard]] double bisect_increasing(F&& f, double lo, double hi,
                                       int iterations = 60) {
  if (!(hi >= lo)) throw std::invalid_argument{"bisect: bad bracket"};
  double flo = f(lo);
  double fhi = f(hi);
  if (flo >= 0.0) return lo;
  if (fhi <= 0.0) return hi;
  for (int i = 0; i < iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (f(mid) < 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

/// Same for a monotonically decreasing residual.
template <typename F>
[[nodiscard]] double bisect_decreasing(F&& f, double lo, double hi,
                                       int iterations = 60) {
  return bisect_increasing([&f](double x) { return -f(x); }, lo, hi,
                           iterations);
}

/// Golden-section maximization of a unimodal function on [lo, hi].
/// Returns the arg-max; call f once more for the value.
template <typename F>
[[nodiscard]] double golden_max(F&& f, double lo, double hi,
                                int iterations = 80) {
  constexpr double inv_phi = 0.6180339887498949;
  double a = lo;
  double b = hi;
  double x1 = b - inv_phi * (b - a);
  double x2 = a + inv_phi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  for (int i = 0; i < iterations; ++i) {
    if (f1 < f2) {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + inv_phi * (b - a);
      f2 = f(x2);
    } else {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - inv_phi * (b - a);
      f1 = f(x1);
    }
  }
  return 0.5 * (a + b);
}

}  // namespace hynapse::circuit
