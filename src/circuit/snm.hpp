// Static-noise-margin extraction via the Seevinck method: rotate the
// butterfly plot by 45 degrees, where both transfer curves become
// single-valued functions of u = (x - y)/sqrt(2); the side of the largest
// square inscribed in a lobe is the maximum vertical gap between the rotated
// curves divided by sqrt(2), and the SNM is the smaller of the two lobes.
#pragma once

#include <functional>
#include <vector>

namespace hynapse::circuit {

/// A monotone-decreasing voltage-transfer curve sampled on a uniform input
/// grid over [0, vdd], with linear interpolation. Tabulation makes the SNM
/// search cheap even though each raw VTC point costs a nested KCL bisection.
class TabulatedVtc {
 public:
  /// Samples `fn` at `points` inputs across [0, vdd]. Requires points >= 8.
  TabulatedVtc(const std::function<double(double)>& fn, double vdd,
               int points = 400);

  /// Interpolated output for input x (clamped to [0, vdd]).
  [[nodiscard]] double eval(double x) const noexcept;

  [[nodiscard]] double vdd() const noexcept { return vdd_; }
  [[nodiscard]] std::size_t size() const noexcept { return ys_.size(); }
  /// Input of sample i (uniform grid point).
  [[nodiscard]] double input(std::size_t i) const;
  /// Output of sample i.
  [[nodiscard]] double output(std::size_t i) const;

 private:
  double vdd_;
  std::vector<double> ys_;  // outputs at uniform inputs
};

/// Static noise margin of the cross-coupled pair whose half-cell transfer
/// curves are `vtc1` (y = F(x)) and `vtc2` (mirrored: x = G(y)). Returns 0
/// for a monostable (already flipped) cell.
[[nodiscard]] double static_noise_margin(const TabulatedVtc& vtc1,
                                         const TabulatedVtc& vtc2);

}  // namespace hynapse::circuit
