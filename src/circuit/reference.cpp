#include "circuit/reference.hpp"

namespace hynapse::circuit {

PaperConstants paper_constants() { return PaperConstants{}; }

std::vector<double> paper_voltage_grid() {
  return {0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95};
}

Sizing6T reference_sizing_6t(const Technology& tech) {
  // Calibrated: read SNM = 194 mV and write margin = 253 mV at 0.95 V under
  // ptm22() (paper targets: 195 mV / 250 mV). The large PD/PG beta ratio
  // buys read stability at the cost of writeability, the classic 6T
  // compromise the paper highlights.
  Sizing6T s;
  s.w_pd = 3.2 * tech.wmin;
  s.w_pg = 1.0 * tech.wmin;
  s.w_pu = 1.4 * tech.wmin;
  return s;
}

Sizing8T reference_sizing_8t(const Technology& tech) {
  Sizing8T s;
  // Write-optimized core: without a read-stability constraint the pass gate
  // can be upsized and the pull-up weakened, giving a comfortable write
  // margin at scaled voltages.
  s.core.w_pg = 1.8 * tech.wmin;
  s.core.w_pd = 2.0 * tech.wmin;
  s.core.w_pu = 0.8 * tech.wmin;
  // Read buffer sized for the same nominal read current as the reference 6T
  // cell ("equal read access and write times", Section IV).
  // Upsized relative to the 6T read path: lower Pelgrom sigma and higher
  // drive, which is what keeps the 8T read port "virtually unaffected by
  // supply scaling within the voltage range of interest" (Section V). The
  // area cost is already folded into the paper's quoted +37 %.
  s.w_rpg = 3.0 * tech.wmin;
  s.w_rpd = 4.0 * tech.wmin;
  return s;
}

Bitcell6T reference_6t(const Technology& tech) {
  return Bitcell6T{tech, reference_sizing_6t(tech)};
}

Bitcell8T reference_8t(const Technology& tech) {
  return Bitcell8T{tech, reference_sizing_8t(tech)};
}

}  // namespace hynapse::circuit
