// Process corners and temperature scaling for the technology cards.
//
// The paper evaluates the typical corner at room temperature; a production
// memory design signs off across corners, so the reproduction provides the
// standard five (TT/FF/SS/FS/SF) plus thermal-voltage/threshold temperature
// dependence, used by the corner-sweep bench and the retention analysis.
#pragma once

#include <string>

#include "circuit/tech.hpp"

namespace hynapse::circuit {

enum class ProcessCorner {
  tt,  ///< typical NMOS / typical PMOS (the paper's corner)
  ff,  ///< fast / fast: low VT, hot leakage, best speed
  ss,  ///< slow / slow: high VT, worst read current
  fs,  ///< fast NMOS / slow PMOS: write-friendly, read-disturb-prone
  sf,  ///< slow NMOS / fast PMOS: write-hostile corner
};

[[nodiscard]] std::string corner_name(ProcessCorner corner);

/// Corner VT shift magnitude [V] applied to the nominal cards (a standard
/// +-3-sigma-of-process global shift; distinct from the local Pelgrom
/// mismatch the Monte-Carlo samples).
inline constexpr double kCornerVtShift = 0.03;

/// Returns the technology with corner-shifted threshold voltages:
/// fast = lower VT, slow = higher VT, per device type.
[[nodiscard]] Technology at_corner(const Technology& nominal,
                                   ProcessCorner corner);

/// Returns the technology re-evaluated at a junction temperature [K]:
/// phi_t scales linearly with T; VT drops ~0.8 mV/K; mobility degradation
/// lowers the current factor ~ (T/T0)^-1.5.
[[nodiscard]] Technology at_temperature(const Technology& nominal,
                                        double temp_kelvin);

inline constexpr double kNominalTemperature = 300.0;

}  // namespace hynapse::circuit
