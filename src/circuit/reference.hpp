// Calibrated reference bitcell designs and the paper-quoted constants used
// for iso-stability power/area accounting.
#pragma once

#include <vector>

#include "circuit/bitcell.hpp"
#include "circuit/tech.hpp"

namespace hynapse::circuit {

/// Values stated in the paper (Sections IV and VI). The analytical stack
/// models land in the right neighbourhood of the power/leakage ratios; the
/// system-level accounting pins them to these quoted values so that the
/// reproduced tables depend on the paper's numbers, not on residual model
/// error. See DESIGN.md section 4.
struct PaperConstants {
  /// Layout analysis: "the 8T bitcell incurs a 37% area overhead". The exact
  /// ratio 1.3667 reproduces the paper's 13.75 % word overhead for 3 of 8
  /// protected bits and 10.41 % for Config 2-A.
  double area_ratio_8t_over_6t = 1.3667;
  /// "an 8T bitcell consumes roughly 20% more read and write power ...".
  double read_power_ratio_8t = 1.20;
  double write_power_ratio_8t = 1.20;
  /// "... and 47% more leakage power than a 6T bitcell under iso-voltage".
  double leakage_ratio_8t = 1.47;
  /// Representative 22 nm-class 6T cell footprint.
  double cell_area_6t_um2 = 0.100;
  /// Target nominal margins of the reference 6T design (Section IV).
  double nominal_read_snm = 0.195;
  double nominal_write_margin = 0.250;
  double vdd_nominal = 0.95;
  double vdd_min = 0.65;
};

[[nodiscard]] PaperConstants paper_constants();

/// VDD sweep used by every figure: 0.65 V to 0.95 V in 50 mV steps.
[[nodiscard]] std::vector<double> paper_voltage_grid();

/// Reference 6T sizing, calibrated against ptm22() so that the nominal read
/// SNM is ~195 mV and the BL-sweep write margin ~250 mV at 0.95 V.
[[nodiscard]] Sizing6T reference_sizing_6t(const Technology& tech);

/// Reference 8T sizing: write-optimized core (stronger PG, weaker PU - legal
/// because read stability no longer constrains the core) plus a read buffer
/// sized for the same nominal read current as the 6T cell, implementing the
/// paper's "designed for equal read access and write times" constraint.
[[nodiscard]] Sizing8T reference_sizing_8t(const Technology& tech);

/// Convenience: reference cells with zero variation.
[[nodiscard]] Bitcell6T reference_6t(const Technology& tech);
[[nodiscard]] Bitcell8T reference_8t(const Technology& tech);

}  // namespace hynapse::circuit
