#include "sram/periphery.hpp"

#include <cmath>
#include <stdexcept>

namespace hynapse::sram {

namespace {

bool is_power_of_two(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace

RowDecoder::RowDecoder(const circuit::Technology& tech, std::size_t rows,
                       double c_wordline)
    : tech_{&tech}, rows_{rows}, c_wordline_{c_wordline} {
  if (!is_power_of_two(rows) || rows < 4)
    throw std::invalid_argument{"RowDecoder: rows must be a power of two >= 4"};
  // Fan-in-4 predecode tree: each stage resolves 2 address bits.
  const int address_bits = static_cast<int>(std::log2(rows));
  stages_ = (address_bits + 1) / 2 + 1;  // predecoders + wordline driver

  // Logical effort: G = product of stage logical efforts (NAND2 ~ 4/3),
  // B ~ 1 on the critical path, H = C_wl / C_in.
  const double c_unit = 2.0 * tech.wmin * tech.c_gate_per_width;
  const double g = std::pow(4.0 / 3.0, stages_ - 1);
  const double h = c_wordline / c_unit;
  path_effort_ = g * h;

  // Switched capacitance: geometric ladder from c_unit up to the wordline.
  const double stage_ratio = std::pow(path_effort_, 1.0 / stages_);
  double c = c_unit;
  c_path_ = 0.0;
  for (int s = 0; s < stages_; ++s) {
    c_path_ += c;
    c *= stage_ratio;
  }
}

double RowDecoder::delay(double vdd) const {
  // FO4-like time constant from the NMOS card: tau = C_unit * V / Ion(V).
  const circuit::TechCard& n = tech_->nmos;
  const double overdrive = vdd - n.vt0 + n.dibl * vdd;
  if (overdrive <= 0.0) return 1e9;
  const circuit::Mosfet unit{n, 2.0 * tech_->wmin, tech_->lmin};
  const double ion = unit.ids(vdd, vdd);
  const double c_unit = 2.0 * tech_->wmin * tech_->c_gate_per_width;
  const double tau = c_unit * vdd / ion;
  const double stage_effort = std::pow(path_effort_, 1.0 / stages_);
  constexpr double parasitic_per_stage = 1.0;  // normalized self-loading
  return stages_ * (stage_effort + parasitic_per_stage) * tau;
}

double RowDecoder::energy(double vdd) const {
  return (c_path_ + c_wordline_) * vdd * vdd;
}

}  // namespace hynapse::sram
