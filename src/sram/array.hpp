// Sub-array electrical model: turns cell geometry and the technology's
// parasitic constants into the bitline/wordline capacitances that set access
// delay and dynamic energy. The paper sizes its cells against a 256x256
// sub-array ("determined by considering the delay incurred in
// charging/discharging the bitline capacitance associated with a 256x256
// SRAM sub-array", Section IV).
#pragma once

#include <cstddef>

#include "circuit/reference.hpp"
#include "circuit/tech.hpp"

namespace hynapse::sram {

/// Physical organization of one sub-array.
struct SubArrayGeometry {
  std::size_t rows = 256;
  std::size_t cols = 256;
  double cell_height = 0.20e-6;  ///< pitch along the bitline [m]
  double cell_width = 0.50e-6;   ///< pitch along the wordline [m]
};

/// Derived electrical view of a sub-array built from 6T cells (the 8T read
/// bitline is handled by the power model through the paper's cell-level
/// ratios).
class SubArrayModel {
 public:
  SubArrayModel(const circuit::Technology& tech, const SubArrayGeometry& geo,
                const circuit::Sizing6T& cell);

  /// Total bitline capacitance: one access-transistor junction per row plus
  /// wire capacitance over the column height [F].
  [[nodiscard]] double c_bitline() const noexcept { return c_bitline_; }

  /// Total wordline capacitance: two access-gate loads per cell plus wire
  /// capacitance across the row [F].
  [[nodiscard]] double c_wordline() const noexcept { return c_wordline_; }

  /// Storage-node capacitance of one cell [F].
  [[nodiscard]] double c_node() const noexcept { return c_node_; }

  [[nodiscard]] const SubArrayGeometry& geometry() const noexcept {
    return geo_;
  }

 private:
  SubArrayGeometry geo_;
  double c_bitline_;
  double c_wordline_;
  double c_node_;
};

}  // namespace hynapse::sram
