// Array-level organization: tiles one logical synaptic bank (N words of
// `word_bits` with a hybrid 8T/6T column split) onto physical 256x256
// sub-arrays, and rolls up access energy, leakage and area including the
// peripheral circuits. This is the "detailed" cross-check model; the
// figure-level accounting uses the paper-anchored per-cell BitcellPowerModel
// (see DESIGN.md section 6).
#pragma once

#include <cstddef>

#include "circuit/reference.hpp"
#include "sram/array.hpp"
#include "sram/periphery.hpp"
#include "sram/timing.hpp"

namespace hynapse::sram {

/// Physical realization of one hybrid bank.
struct BankGeometry {
  std::size_t words = 0;
  int word_bits = 8;
  int msbs_in_8t = 0;
  /// Words stored per sub-array row (columns / word_bits, via column mux).
  std::size_t words_per_row = 0;
  std::size_t rows_used = 0;
  std::size_t subarrays = 0;
};

class BankOrganization {
 public:
  /// Lays `words` out across sub-arrays of the given geometry. Hybrid words
  /// keep all bits in one row (single-row layout per Chang et al. [13]).
  BankOrganization(const circuit::Technology& tech,
                   const SubArrayGeometry& subarray, std::size_t words,
                   int word_bits, int msbs_in_8t);

  [[nodiscard]] const BankGeometry& geometry() const noexcept { return geo_; }

  /// Energy of one word read at vdd [J]: per-bit bitline development and
  /// precharge, wordline, decode, sense amps. 8T bits carry the paper's
  /// +20 % access-power ratio.
  [[nodiscard]] double read_energy(double vdd) const;

  /// Energy of one word write at vdd [J].
  [[nodiscard]] double write_energy(double vdd) const;

  /// Standby leakage of the whole bank [W], cells plus a periphery
  /// surcharge.
  [[nodiscard]] double leakage_power(double vdd) const;

  /// Bank area [m^2]: bitcells plus a peripheral area fraction.
  [[nodiscard]] double area() const;

  /// Random-access read latency at vdd [s]: decode + bitline development +
  /// sense.
  [[nodiscard]] double read_latency(double vdd) const;

 private:
  const circuit::Technology* tech_;
  SubArrayGeometry sub_;
  BankGeometry geo_;
  SubArrayModel array_model_;
  RowDecoder decoder_;
  SenseAmp sense_;
  circuit::Bitcell6T cell6_;
  circuit::Bitcell8T cell8_;
  circuit::PaperConstants constants_;
};

}  // namespace hynapse::sram
