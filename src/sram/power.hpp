// Per-bitcell access and leakage power model (reproduces Fig. 6).
//
// Dynamic power = per-access energy x voltage-scaled system frequency:
//   read:  C_BL * dV_sense(V) * V  (+ wordline share + sense amp)
//   write: C_BL * V^2 (full-swing bitline) (+ wordline share)
// With f(V) from the alpha-power logic delay model this yields the ~V^3
// shape of the paper's Fig. 6(a,b) (6T write power drops ~3.4x from 0.95 V
// to 0.65 V). Leakage = V * I_leak(cell) with DIBL giving ~4.3x over the
// same range (Fig. 6(c)).
//
// The 8T cell's iso-voltage ratios are pinned to the paper's quoted values
// (+20 % read/write power, +47 % leakage, +37 % area); the analytical stack
// model's own ratio is exposed separately for validation.
#pragma once

#include "circuit/reference.hpp"
#include "sram/timing.hpp"

namespace hynapse::sram {

/// Per-cell power/area characteristics across voltage, for 6T and 8T cells.
class BitcellPowerModel {
 public:
  /// f_nominal: system clock at nominal VDD; the paper's synaptic memory
  /// streams weights to the NPEs each cycle.
  BitcellPowerModel(const circuit::Technology& tech, const CycleModel& cycle,
                    const circuit::PaperConstants& constants,
                    double f_nominal = 200e6);

  // --- 6T -------------------------------------------------------------

  /// Average power of one cell being read every cycle at vdd [W].
  [[nodiscard]] double read_power_6t(double vdd) const;
  /// Average power of one cell being written every cycle at vdd [W].
  [[nodiscard]] double write_power_6t(double vdd) const;
  /// Standby leakage power of one cell [W].
  [[nodiscard]] double leakage_power_6t(double vdd) const;

  // --- 8T (paper-pinned iso-voltage ratios) -----------------------------

  [[nodiscard]] double read_power_8t(double vdd) const;
  [[nodiscard]] double write_power_8t(double vdd) const;
  [[nodiscard]] double leakage_power_8t(double vdd) const;

  /// Analytical (stack-model) 8T/6T leakage ratio, for validation against
  /// the paper's quoted 1.47.
  [[nodiscard]] double analytic_leakage_ratio_8t(double vdd) const;

  // --- per-access energies (used by the ECC ablation) -------------------

  [[nodiscard]] double read_energy_6t(double vdd) const;
  [[nodiscard]] double write_energy_6t(double vdd) const;

  [[nodiscard]] double frequency(double vdd) const;
  [[nodiscard]] const circuit::PaperConstants& constants() const noexcept {
    return constants_;
  }

 private:
  const circuit::Technology* tech_;
  const CycleModel* cycle_;
  circuit::PaperConstants constants_;
  double f_nominal_;
  circuit::Bitcell6T cell6_;
  circuit::Bitcell8T cell8_;
  double e_sense_nominal_ = 0.5e-15;  // sense-amp energy at nominal VDD [J]
};

}  // namespace hynapse::sram
