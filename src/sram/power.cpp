#include "sram/power.hpp"

namespace hynapse::sram {

BitcellPowerModel::BitcellPowerModel(const circuit::Technology& tech,
                                     const CycleModel& cycle,
                                     const circuit::PaperConstants& constants,
                                     double f_nominal)
    : tech_{&tech},
      cycle_{&cycle},
      constants_{constants},
      f_nominal_{f_nominal},
      cell6_{circuit::reference_6t(tech)},
      cell8_{circuit::reference_8t(tech)} {}

double BitcellPowerModel::frequency(double vdd) const {
  return cycle_->frequency(vdd, f_nominal_);
}

double BitcellPowerModel::read_energy_6t(double vdd) const {
  const SubArrayModel& a = cycle_->array();
  const double e_bitline = a.c_bitline() * cycle_->dv_sense(vdd) * vdd;
  const double e_wordline =
      a.c_wordline() * vdd * vdd / static_cast<double>(a.geometry().cols);
  const double v0 = tech_->vdd_nominal;
  const double e_sense = e_sense_nominal_ * (vdd * vdd) / (v0 * v0);
  return e_bitline + e_wordline + e_sense;
}

double BitcellPowerModel::write_energy_6t(double vdd) const {
  const SubArrayModel& a = cycle_->array();
  const double e_bitline = a.c_bitline() * vdd * vdd;
  const double e_wordline =
      a.c_wordline() * vdd * vdd / static_cast<double>(a.geometry().cols);
  const double e_node = a.c_node() * vdd * vdd;
  return e_bitline + e_wordline + e_node;
}

double BitcellPowerModel::read_power_6t(double vdd) const {
  return read_energy_6t(vdd) * frequency(vdd);
}

double BitcellPowerModel::write_power_6t(double vdd) const {
  return write_energy_6t(vdd) * frequency(vdd);
}

double BitcellPowerModel::leakage_power_6t(double vdd) const {
  return vdd * cell6_.leakage(vdd);
}

double BitcellPowerModel::read_power_8t(double vdd) const {
  return constants_.read_power_ratio_8t * read_power_6t(vdd);
}

double BitcellPowerModel::write_power_8t(double vdd) const {
  return constants_.write_power_ratio_8t * write_power_6t(vdd);
}

double BitcellPowerModel::leakage_power_8t(double vdd) const {
  return constants_.leakage_ratio_8t * leakage_power_6t(vdd);
}

double BitcellPowerModel::analytic_leakage_ratio_8t(double vdd) const {
  return cell8_.leakage(vdd) / cell6_.leakage(vdd);
}

}  // namespace hynapse::sram
