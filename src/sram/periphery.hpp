// Peripheral circuit models of the sub-array: row decoder (logical-effort
// delay/energy), sense amplifier (offset -> required bitline differential),
// and bitline precharge. These complete the array-level picture around the
// bitcell core; the figure-level power accounting keeps the paper-anchored
// per-cell model, and the organization model (organization.hpp) uses these
// for the array-realism cross-check.
#pragma once

#include <cstddef>

#include "circuit/mosfet.hpp"
#include "circuit/tech.hpp"

namespace hynapse::sram {

/// Row decoder for 2^n rows built from fan-in-4 predecode stages and a
/// wordline driver, evaluated with the logical-effort method.
class RowDecoder {
 public:
  /// `rows` must be a power of two >= 4. `c_wordline` is the load the last
  /// stage drives; `c_unit` the input capacitance of a minimum inverter.
  RowDecoder(const circuit::Technology& tech, std::size_t rows,
             double c_wordline);

  /// Number of gain stages on the decode path.
  [[nodiscard]] int stages() const noexcept { return stages_; }

  /// Decode delay at vdd [s]: stage count x optimal stage effort x the
  /// technology FO4-like time constant (alpha-power voltage scaling).
  [[nodiscard]] double delay(double vdd) const;

  /// Energy per decode [J]: switched capacitance of the active path plus
  /// the selected wordline.
  [[nodiscard]] double energy(double vdd) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }

 private:
  const circuit::Technology* tech_;
  std::size_t rows_;
  int stages_;
  double path_effort_;
  double c_wordline_;
  double c_path_;  // switched capacitance along the decode path
};

/// Latch-type sense amplifier: the required bitline differential is the
/// offset tail plus a VDD-proportional common-mode term; energy is the
/// internal node swing.
struct SenseAmp {
  double offset_sigma = 0.008;     ///< input-referred offset sigma [V]
  double sigma_margin = 6.0;       ///< design margin in sigmas
  double common_mode_slope = 0.055;  ///< VDD-proportional term
  double c_internal = 1.1e-15;     ///< switched internal capacitance [F]

  /// Required differential at vdd [V] (reproduces the CycleModel default:
  /// 50 mV floor + 0.055*VDD).
  [[nodiscard]] double required_differential(double vdd) const noexcept {
    return offset_sigma * sigma_margin + common_mode_slope * vdd;
  }

  /// Energy per sense operation [J].
  [[nodiscard]] double energy(double vdd) const noexcept {
    return c_internal * vdd * vdd;
  }
};

/// Bitline precharge: restores the differential discharged during a read.
struct Precharge {
  /// Energy to restore a bitline discharged by `dv` at rail vdd [J].
  [[nodiscard]] static double energy(double c_bitline, double dv,
                                     double vdd) noexcept {
    return c_bitline * dv * vdd;
  }
};

}  // namespace hynapse::sram
