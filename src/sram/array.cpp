#include "sram/array.hpp"

namespace hynapse::sram {

SubArrayModel::SubArrayModel(const circuit::Technology& tech,
                             const SubArrayGeometry& geo,
                             const circuit::Sizing6T& cell)
    : geo_{geo} {
  const double rows = static_cast<double>(geo.rows);
  const double cols = static_cast<double>(geo.cols);
  c_bitline_ = rows * (cell.w_pg * tech.c_drain_per_width) +
               rows * geo.cell_height * tech.c_wire_per_length;
  c_wordline_ = cols * (2.0 * cell.w_pg * tech.c_gate_per_width) +
                cols * geo.cell_width * tech.c_wire_per_length;
  // Storage node: pull-up/pull-down junctions, the access junction, and the
  // opposite inverter's gate load.
  c_node_ = (cell.w_pu + cell.w_pd + cell.w_pg) * tech.c_drain_per_width +
            (cell.w_pu + cell.w_pd) * tech.c_gate_per_width;
}

}  // namespace hynapse::sram
