#include "sram/organization.hpp"

#include <cmath>
#include <stdexcept>

namespace hynapse::sram {

namespace {

// Peripheral area surcharge (decoders, sense amps, control) as a fraction of
// the cell array -- a standard planning number for commodity SRAM macros.
constexpr double kPeripheryAreaFraction = 0.30;
// Periphery leakage as a fraction of cell-array leakage.
constexpr double kPeripheryLeakageFraction = 0.15;

}  // namespace

BankOrganization::BankOrganization(const circuit::Technology& tech,
                                   const SubArrayGeometry& subarray,
                                   std::size_t words, int word_bits,
                                   int msbs_in_8t)
    : tech_{&tech},
      sub_{subarray},
      array_model_{tech, subarray, circuit::reference_sizing_6t(tech)},
      decoder_{tech, subarray.rows,
               // wordline load of one sub-array row
               SubArrayModel{tech, subarray,
                             circuit::reference_sizing_6t(tech)}
                   .c_wordline()},
      sense_{},
      cell6_{circuit::reference_6t(tech)},
      cell8_{circuit::reference_8t(tech)},
      constants_{circuit::paper_constants()} {
  if (words == 0) throw std::invalid_argument{"BankOrganization: no words"};
  if (word_bits < 2 || msbs_in_8t < 0 || msbs_in_8t > word_bits)
    throw std::invalid_argument{"BankOrganization: bad word layout"};
  geo_.words = words;
  geo_.word_bits = word_bits;
  geo_.msbs_in_8t = msbs_in_8t;
  geo_.words_per_row = subarray.cols / static_cast<std::size_t>(word_bits);
  if (geo_.words_per_row == 0)
    throw std::invalid_argument{"BankOrganization: word wider than a row"};
  geo_.rows_used = (words + geo_.words_per_row - 1) / geo_.words_per_row;
  geo_.subarrays = (geo_.rows_used + subarray.rows - 1) / subarray.rows;
}

double BankOrganization::read_energy(double vdd) const {
  const double dv = sense_.required_differential(vdd);
  const double e_bit6 =
      Precharge::energy(array_model_.c_bitline(), dv, vdd) + sense_.energy(vdd);
  const double e_bit8 = constants_.read_power_ratio_8t * e_bit6;
  const int n8 = geo_.msbs_in_8t;
  const int n6 = geo_.word_bits - n8;
  return n6 * e_bit6 + n8 * e_bit8 + decoder_.energy(vdd);
}

double BankOrganization::write_energy(double vdd) const {
  const double e_bit6 = array_model_.c_bitline() * vdd * vdd +
                        array_model_.c_node() * vdd * vdd;
  const double e_bit8 = constants_.write_power_ratio_8t * e_bit6;
  const int n8 = geo_.msbs_in_8t;
  const int n6 = geo_.word_bits - n8;
  return n6 * e_bit6 + n8 * e_bit8 + decoder_.energy(vdd);
}

double BankOrganization::leakage_power(double vdd) const {
  const double leak6 = vdd * cell6_.leakage(vdd);
  const double leak8 = constants_.leakage_ratio_8t * leak6;
  const auto n8 = static_cast<double>(geo_.msbs_in_8t);
  const auto n6 = static_cast<double>(geo_.word_bits - geo_.msbs_in_8t);
  const double cells =
      static_cast<double>(geo_.words) * (n6 * leak6 + n8 * leak8);
  return cells * (1.0 + kPeripheryLeakageFraction);
}

double BankOrganization::area() const {
  const double a6 = constants_.cell_area_6t_um2 * 1e-12;  // m^2
  const double a8 = constants_.area_ratio_8t_over_6t * a6;
  const auto n8 = static_cast<double>(geo_.msbs_in_8t);
  const auto n6 = static_cast<double>(geo_.word_bits - geo_.msbs_in_8t);
  const double cells = static_cast<double>(geo_.words) * (n6 * a6 + n8 * a8);
  return cells * (1.0 + kPeripheryAreaFraction);
}

double BankOrganization::read_latency(double vdd) const {
  const double dv = sense_.required_differential(vdd);
  const double i6 = cell6_.read_current(vdd);
  if (i6 <= 0.0) return 1e9;
  const double t_bitline = array_model_.c_bitline() * dv / i6;
  constexpr double t_sense_fraction = 0.15;  // of the bitline phase
  return decoder_.delay(vdd) + t_bitline * (1.0 + t_sense_fraction);
}

}  // namespace hynapse::sram
