// Voltage-scaled cycle-time model.
//
// The paper's premise: the digital logic (NPEs + controller) runs reliably at
// scaled VDD because the clock is slowed with it; the SRAM must then complete
// read/write inside that voltage-scaled cycle. The cycle budget therefore
// scales with *logic* delay (alpha-power model), while a variation-struck
// cell's own delay degrades faster -- that widening gap is exactly what makes
// 6T failure rates explode at low voltage.
#pragma once

#include "circuit/mosfet.hpp"
#include "circuit/tech.hpp"
#include "sram/array.hpp"

namespace hynapse::sram {

/// Design margins fixed at design time (nominal VDD) and carried across the
/// voltage sweep. Calibrated so the reference 6T array hits the paper's
/// system-level failure anchors (DESIGN.md section 4).
struct TimingMargins {
  double read_margin = 2.1;   ///< cycle budget / nominal cell read delay
  double write_margin = 5.0;  ///< write budget / nominal cell write delay
  double dv_sense_floor = 0.050;  ///< sense-amp differential floor [V]
  double dv_sense_slope = 0.055;  ///< VDD-proportional differential term
};

/// Computes per-voltage read/write time budgets for a given sub-array and
/// reference cell design.
class CycleModel {
 public:
  CycleModel(const circuit::Technology& tech, const SubArrayModel& array,
             const circuit::Bitcell6T& nominal_cell,
             const TimingMargins& margins = {});

  /// Logic-stage delay at vdd relative to nominal VDD (alpha-power law:
  /// d ~ VDD / (VDD - VT)^alpha with DIBL folded into the overdrive).
  [[nodiscard]] double logic_delay_scale(double vdd) const;

  /// Bitline differential required by the sense amplifier at vdd [V].
  [[nodiscard]] double dv_sense(double vdd) const;

  /// Read delay of a specific cell: time to develop dv_sense on the bitline.
  [[nodiscard]] double cell_read_delay(const circuit::Bitcell6T& cell,
                                       double vdd) const;
  [[nodiscard]] double cell_read_delay_8t(const circuit::Bitcell8T& cell,
                                          double vdd) const;

  /// Cycle budgets at vdd (margins applied at nominal VDD, then scaled with
  /// logic delay) [s].
  [[nodiscard]] double read_budget(double vdd) const;
  [[nodiscard]] double write_budget(double vdd) const;

  /// System clock frequency at vdd given a nominal frequency [Hz].
  [[nodiscard]] double frequency(double vdd, double f_nominal) const;

  [[nodiscard]] double c_node() const noexcept { return array_->c_node(); }
  [[nodiscard]] const SubArrayModel& array() const noexcept { return *array_; }
  [[nodiscard]] const TimingMargins& margins() const noexcept {
    return margins_;
  }

 private:
  const circuit::Technology* tech_;
  const SubArrayModel* array_;
  TimingMargins margins_;
  double t_read_nominal_;   // nominal cell read delay at vdd_nominal
  double t_write_nominal_;  // nominal cell write delay at vdd_nominal
};

}  // namespace hynapse::sram
