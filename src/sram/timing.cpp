#include "sram/timing.hpp"

#include <cmath>
#include <stdexcept>

namespace hynapse::sram {

CycleModel::CycleModel(const circuit::Technology& tech,
                       const SubArrayModel& array,
                       const circuit::Bitcell6T& nominal_cell,
                       const TimingMargins& margins)
    : tech_{&tech}, array_{&array}, margins_{margins} {
  const double v0 = tech.vdd_nominal;
  t_read_nominal_ = cell_read_delay(nominal_cell, v0);
  // Nominal write time from the two-node transient: a coarse pass over a
  // generous window locates the flip, a second pass over a tight window
  // resolves it (the transient uses a fixed step count).
  const double coarse = nominal_cell.write_flip_time(
      v0, array.c_node(), 100.0 * t_read_nominal_);
  if (!std::isfinite(coarse))
    throw std::invalid_argument{
        "CycleModel: nominal cell is not writeable at nominal VDD"};
  t_write_nominal_ = nominal_cell.write_flip_time(
      v0, array.c_node(), std::max(4.0 * coarse, 1e-12));
  if (!std::isfinite(t_write_nominal_)) t_write_nominal_ = coarse;
}

double CycleModel::logic_delay_scale(double vdd) const {
  const circuit::TechCard& n = tech_->nmos;
  const auto stage_delay = [&](double v) {
    const double overdrive = v - n.vt0 + n.dibl * v;
    if (overdrive <= 0.0) return 1e9;  // logic dead below threshold
    return v / std::pow(overdrive, n.alpha);
  };
  return stage_delay(vdd) / stage_delay(tech_->vdd_nominal);
}

double CycleModel::dv_sense(double vdd) const {
  return margins_.dv_sense_floor + margins_.dv_sense_slope * vdd;
}

double CycleModel::cell_read_delay(const circuit::Bitcell6T& cell,
                                   double vdd) const {
  const double i = cell.read_current(vdd);
  if (i <= 0.0) return 1e9;
  return array_->c_bitline() * dv_sense(vdd) / i;
}

double CycleModel::cell_read_delay_8t(const circuit::Bitcell8T& cell,
                                      double vdd) const {
  const double i = cell.read_current(vdd);
  if (i <= 0.0) return 1e9;
  return array_->c_bitline() * dv_sense(vdd) / i;
}

double CycleModel::read_budget(double vdd) const {
  return margins_.read_margin * t_read_nominal_ * logic_delay_scale(vdd);
}

double CycleModel::write_budget(double vdd) const {
  return margins_.write_margin * t_write_nominal_ * logic_delay_scale(vdd);
}

double CycleModel::frequency(double vdd, double f_nominal) const {
  return f_nominal / logic_delay_scale(vdd);
}

}  // namespace hynapse::sram
