#include "quant/qformat.hpp"

#include <cmath>
#include <stdexcept>

namespace hynapse::quant {

QFormat::QFormat(int total_bits, int frac_bits)
    : total_bits_{total_bits}, frac_bits_{frac_bits} {
  if (total_bits < 2 || total_bits > 16)
    throw std::invalid_argument{"QFormat: total_bits must be in [2,16]"};
  if (frac_bits < 0 || frac_bits >= total_bits)
    throw std::invalid_argument{"QFormat: frac_bits must be in [0,total_bits)"};
}

double QFormat::lsb() const noexcept { return std::ldexp(1.0, -frac_bits_); }

double QFormat::min_value() const noexcept {
  return -std::ldexp(1.0, int_bits() - 1);
}

double QFormat::max_value() const noexcept {
  return std::ldexp(1.0, int_bits() - 1) - lsb();
}

std::int32_t QFormat::quantize(double value) const noexcept {
  const double scaled = value * std::ldexp(1.0, frac_bits_);
  // Round half to even, matching IEEE default and keeping the quantizer
  // unbiased over symmetric weight distributions.
  double rounded = std::nearbyint(scaled);
  const std::int32_t lo = -(1 << (total_bits_ - 1));
  const std::int32_t hi = (1 << (total_bits_ - 1)) - 1;
  if (rounded < static_cast<double>(lo)) rounded = static_cast<double>(lo);
  if (rounded > static_cast<double>(hi)) rounded = static_cast<double>(hi);
  return static_cast<std::int32_t>(rounded);
}

std::int32_t QFormat::quantize(double value, RoundingMode mode,
                               util::Rng* rng) const {
  const double scaled = value * std::ldexp(1.0, frac_bits_);
  double rounded = 0.0;
  switch (mode) {
    case RoundingMode::nearest_even:
      rounded = std::nearbyint(scaled);
      break;
    case RoundingMode::truncate:
      rounded = std::floor(scaled);
      break;
    case RoundingMode::stochastic: {
      if (rng == nullptr)
        throw std::invalid_argument{
            "QFormat::quantize: stochastic rounding needs an Rng"};
      const double lo = std::floor(scaled);
      const double frac = scaled - lo;
      rounded = lo + (rng->uniform() < frac ? 1.0 : 0.0);
      break;
    }
  }
  const std::int32_t lo_code = -(1 << (total_bits_ - 1));
  const std::int32_t hi_code = (1 << (total_bits_ - 1)) - 1;
  if (rounded < static_cast<double>(lo_code))
    rounded = static_cast<double>(lo_code);
  if (rounded > static_cast<double>(hi_code))
    rounded = static_cast<double>(hi_code);
  return static_cast<std::int32_t>(rounded);
}

double QFormat::dequantize(std::int32_t code) const noexcept {
  return static_cast<double>(code) * lsb();
}

double QFormat::round_trip(double value) const noexcept {
  return dequantize(quantize(value));
}

std::uint32_t QFormat::to_bits(std::int32_t code) const noexcept {
  const std::uint32_t mask = (1u << total_bits_) - 1u;
  return static_cast<std::uint32_t>(code) & mask;
}

std::int32_t QFormat::from_bits(std::uint32_t bits) const noexcept {
  const std::uint32_t mask = (1u << total_bits_) - 1u;
  bits &= mask;
  const std::uint32_t sign_bit = 1u << (total_bits_ - 1);
  if (bits & sign_bit) {
    return static_cast<std::int32_t>(bits) -
           static_cast<std::int32_t>(1u << total_bits_);
  }
  return static_cast<std::int32_t>(bits);
}

double QFormat::bit_flip_magnitude(int bit) const {
  if (bit < 0 || bit >= total_bits_)
    throw std::out_of_range{"QFormat::bit_flip_magnitude: bad bit index"};
  return std::ldexp(1.0, bit) * lsb();
}

std::string QFormat::name() const {
  return "Q" + std::to_string(int_bits()) + "." + std::to_string(frac_bits_);
}

QFormat choose_format(double max_abs, int total_bits) {
  if (!(max_abs >= 0.0) || !std::isfinite(max_abs))
    throw std::invalid_argument{"choose_format: max_abs must be finite >= 0"};
  // Find the smallest int_bits >= 1 with 2^(int_bits-1) > max_abs. The strict
  // inequality leaves headroom for the asymmetric positive range.
  int int_bits = 1;
  while (int_bits < total_bits &&
         std::ldexp(1.0, int_bits - 1) <= max_abs) {
    ++int_bits;
  }
  return QFormat{total_bits, total_bits - int_bits};
}

double max_abs(std::span<const double> values) noexcept {
  double m = 0.0;
  for (double v : values) m = std::max(m, std::fabs(v));
  return m;
}

double max_abs(std::span<const float> values) noexcept {
  double m = 0.0;
  for (float v : values) m = std::max(m, std::fabs(static_cast<double>(v)));
  return m;
}

double ideal_rms_error(const QFormat& fmt) noexcept {
  return fmt.lsb() / std::sqrt(12.0);
}

}  // namespace hynapse::quant
