// Fixed-point synaptic weight representation.
//
// The paper stores synaptic weights at 8-bit precision (Section VI: "We use a
// synaptic precision of 8 bits since the observed degradation in accuracy is
// less than 0.5% from the nominal value"). Weights are two's-complement Qm.n
// values; the MSB-first bit order defines the "significance" that drives the
// hybrid 8T/6T partition: bit (total_bits-1) is the sign bit and most
// significant, bit 0 the LSB.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "util/rng.hpp"

namespace hynapse::quant {

/// Quantizer rounding behaviour. The paper's storage path uses
/// round-to-nearest; truncation models a cheaper datapath, stochastic
/// rounding is the unbiased alternative used in training-oriented systems.
enum class RoundingMode : std::uint8_t {
  nearest_even,
  truncate,    ///< toward negative infinity (floor of the scaled value)
  stochastic,  ///< probability proportional to the fractional residue
};

/// Two's-complement fixed-point format with `total_bits` bits, of which
/// `frac_bits` are fractional. Integer bits (including sign) =
/// total_bits - frac_bits. Example: Q2.6 in 8 bits represents
/// [-2, 2 - 2^-6] with LSB 2^-6.
class QFormat {
 public:
  /// Throws std::invalid_argument unless 2 <= total_bits <= 16 and
  /// 0 <= frac_bits < total_bits.
  QFormat(int total_bits, int frac_bits);

  [[nodiscard]] int total_bits() const noexcept { return total_bits_; }
  [[nodiscard]] int frac_bits() const noexcept { return frac_bits_; }
  [[nodiscard]] int int_bits() const noexcept {
    return total_bits_ - frac_bits_;
  }

  /// Value of one LSB step.
  [[nodiscard]] double lsb() const noexcept;
  /// Smallest representable value (-2^(int_bits-1)).
  [[nodiscard]] double min_value() const noexcept;
  /// Largest representable value (2^(int_bits-1) - lsb).
  [[nodiscard]] double max_value() const noexcept;

  /// Round-to-nearest-even quantization with saturation; returns the signed
  /// integer code in [-2^(total-1), 2^(total-1)-1].
  [[nodiscard]] std::int32_t quantize(double value) const noexcept;

  /// Quantization with an explicit rounding mode. `rng` is required for
  /// RoundingMode::stochastic and ignored otherwise.
  [[nodiscard]] std::int32_t quantize(double value, RoundingMode mode,
                                      util::Rng* rng = nullptr) const;

  /// Code -> real value.
  [[nodiscard]] double dequantize(std::int32_t code) const noexcept;

  /// Convenience: quantize then dequantize.
  [[nodiscard]] double round_trip(double value) const noexcept;

  /// Signed code -> raw two's-complement bit pattern (low `total_bits` bits).
  [[nodiscard]] std::uint32_t to_bits(std::int32_t code) const noexcept;

  /// Raw bit pattern -> signed code (sign-extends bit total_bits-1).
  [[nodiscard]] std::int32_t from_bits(std::uint32_t bits) const noexcept;

  /// Magnitude of the value change caused by flipping `bit` (0 = LSB).
  /// For the sign bit this is 2^(total_bits-1) * lsb().
  [[nodiscard]] double bit_flip_magnitude(int bit) const;

  /// "Q<int_bits>.<frac_bits>" descriptor, e.g. "Q2.6".
  [[nodiscard]] std::string name() const;

  friend bool operator==(const QFormat&, const QFormat&) = default;

 private:
  int total_bits_;
  int frac_bits_;
};

/// Smallest-integer-bits format of `total_bits` that can represent
/// +-max_abs without saturation (at least one integer bit for the sign).
/// This is the per-layer format-selection rule used for the benchmark ANN.
[[nodiscard]] QFormat choose_format(double max_abs, int total_bits);

/// Largest |value| over a span (0 for an empty span).
[[nodiscard]] double max_abs(std::span<const double> values) noexcept;
[[nodiscard]] double max_abs(std::span<const float> values) noexcept;

/// Flips `bit` in a raw pattern.
[[nodiscard]] constexpr std::uint32_t flip_bit(std::uint32_t bits,
                                               int bit) noexcept {
  return bits ^ (1u << bit);
}

/// RMS quantization error of an ideal uniform quantizer: lsb / sqrt(12).
[[nodiscard]] double ideal_rms_error(const QFormat& fmt) noexcept;

}  // namespace hynapse::quant
