// Deterministic pseudo-random number generation for reproducible experiments.
//
// All stochastic components of hynapse (Monte-Carlo variation sampling, fault
// maps, dataset synthesis, weight initialization) draw from util::Rng so that a
// fixed seed reproduces a run bit-for-bit across platforms. std::mt19937 plus
// std::*_distribution is avoided deliberately: the standard distributions are
// implementation-defined, which would make test expectations non-portable.
#pragma once

#include <cstdint>
#include <limits>

namespace hynapse::util {

/// splitmix64 step; used to expand a single 64-bit seed into a full generator
/// state. Public because tests and seeding schemes use it directly.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** PRNG (Blackman & Vigna) with portable, implementation-defined-
/// behaviour-free uniform/normal/bernoulli helpers layered on top.
///
/// Not cryptographically secure; intended for simulation only.
class Rng {
 public:
  /// Seeds the four 64-bit state words via splitmix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

  /// Next raw 64-bit output.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1) with 53 random mantissa bits.
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling to
  /// avoid modulo bias.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Standard normal variate via the Marsaglia polar method (portable, exact
  /// same stream on every platform). One spare value is cached internally.
  [[nodiscard]] double normal() noexcept;

  /// Normal variate with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double sigma) noexcept;

  /// Bernoulli trial with probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Advances the generator exactly as `n` discarded next_u64() calls would
  /// (same state, same subsequent stream), but in O(popcount(n)) 256-bit
  /// GF(2) matrix applications once n is large: the xoshiro256** state
  /// transition is linear over GF(2), so T^n is composed from lazily built
  /// T^(2^i) tables. Small n falls back to sequential stepping. Lets sparse
  /// consumers (core::EvalContext's power-up reads) skip millions of
  /// unobserved draws without changing any observed value.
  void discard(std::uint64_t n);

  /// Derives an independent child generator; used to give each thread or each
  /// Monte-Carlo chip sample its own stream without correlation.
  [[nodiscard]] Rng split() noexcept;

  /// Discards the cached normal spare (used when forking deterministic
  /// sub-streams where the cache would leak state between phases).
  void clear_normal_cache() noexcept;

 private:
  std::uint64_t s_[4];
  double normal_spare_ = 0.0;
  bool has_normal_spare_ = false;
};

}  // namespace hynapse::util
