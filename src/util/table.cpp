#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace hynapse::util {

Table::Table(std::vector<std::string> headers) : headers_{std::move(headers)} {
  if (headers_.empty()) throw std::invalid_argument{"Table: no headers"};
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument{"Table: row width mismatch"};
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(precision);
  ss << v;
  return ss.str();
}

std::string Table::sci(double v, int precision) {
  std::ostringstream ss;
  ss.setf(std::ios::scientific);
  ss.precision(precision);
  ss << v;
  return ss.str();
}

std::string Table::pct(double fraction, int precision) {
  return num(100.0 * fraction, precision) + " %";
}

std::string Table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ';
      // Right-align everything except the first column, which is usually a
      // label.
      const std::size_t pad = widths[c] - cells[c].size();
      if (c == 0) {
        out << cells[c] << std::string(pad, ' ');
      } else {
        out << std::string(pad, ' ') << cells[c];
      }
      out << " |";
    }
    out << '\n';
  };

  emit_row(headers_);
  out << '|';
  for (std::size_t c = 0; c < widths.size(); ++c)
    out << std::string(widths[c] + 2, '-') << '|';
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace hynapse::util
