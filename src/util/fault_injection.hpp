// Env/flag-gated fault injection for robustness testing. A failpoint is a
// named site in production code that asks `should_fire(name)` on every hit;
// unarmed sites cost one relaxed atomic load. Arming comes from the
// HYNAPSE_FAILPOINTS environment variable or programmatic configure():
//
//   HYNAPSE_FAILPOINTS="net.drop_connection=every:3,serve.shard_crash=first:1"
//
// Spec grammar (comma-separated entries, whitespace tolerated):
//
//   <name>=<mode>[@<arg>]
//   mode := always | never | p:<0..1> | every:<N> | first:<N>
//
// `p:` fires pseudo-randomly but *deterministically*: the decision for hit k
// of a failpoint is a hash of (seed, name, k), so a run with the same spec
// and seed (HYNAPSE_FAILPOINT_SEED, default 0) fires identically. `@<arg>`
// attaches a numeric argument the site can read via arg() -- e.g. a delay in
// milliseconds for net.accept_delay. The failpoint catalog lives in
// docs/robustness.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace hynapse::util {

/// Process-wide failpoint registry. Thread-safe; hot path is lock-free when
/// nothing is armed.
class FaultInjector {
 public:
  static FaultInjector& instance();

  /// Replaces the armed set from a spec string (grammar above). On a
  /// malformed spec returns false, fills *error when given, and leaves the
  /// previous arming untouched. An empty spec disarms everything.
  bool configure(std::string_view spec, std::string* error = nullptr);

  /// Disarms every failpoint and clears hit/fired counts.
  void reset();

  /// Reseeds the deterministic probability streams (default 0).
  void seed(std::uint64_t seed);

  /// True when at least one failpoint is armed (relaxed load).
  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// True when the named failpoint fires at this hit. Counts the hit either
  /// way; unarmed names never fire.
  bool should_fire(std::string_view name);

  /// Numeric argument attached with "@" in the spec; `fallback` when the
  /// failpoint is unarmed or has no argument.
  [[nodiscard]] double arg(std::string_view name, double fallback = 0.0) const;

  /// Times the named failpoint has fired / been hit since the last reset.
  [[nodiscard]] std::uint64_t fired(std::string_view name) const;
  [[nodiscard]] std::uint64_t hits(std::string_view name) const;

  /// Total fires across all failpoints (mirrors the fault.fired counter).
  [[nodiscard]] std::uint64_t total_fired() const;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

 private:
  enum class Mode { always, never, probability, every, first };

  struct Point {
    Mode mode = Mode::never;
    double probability = 0.0;  // Mode::probability
    std::uint64_t n = 0;       // every:N / first:N
    bool has_arg = false;
    double arg = 0.0;
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
  };

  FaultInjector();  // reads HYNAPSE_FAILPOINTS / HYNAPSE_FAILPOINT_SEED

  static bool parse_spec(std::string_view spec,
                         std::unordered_map<std::string, Point>& out,
                         std::string* error);

  std::atomic<bool> armed_{false};
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Point> points_;
  std::uint64_t seed_ = 0;
  std::uint64_t total_fired_ = 0;
};

}  // namespace hynapse::util
