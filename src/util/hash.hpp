// Stable 64-bit content fingerprinting (FNV-1a). Unlike std::hash, the
// digest is identical across platforms, compilers and runs, so it is safe to
// embed in on-disk cache artifacts (engine::FailureTableCache keys its CSV
// files by it).
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string_view>

namespace hynapse::util {

class Fnv1a {
 public:
  void byte(std::uint8_t b) noexcept {
    state_ ^= b;
    state_ *= 1099511628211ull;
  }

  /// Feeds v as 8 explicit little-endian bytes (endianness-independent).
  void u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  /// Feeds the IEEE-754 bit pattern of v.
  void f64(double v) noexcept { u64(std::bit_cast<std::uint64_t>(v)); }

  void f64_span(std::span<const double> vs) noexcept {
    u64(vs.size());
    for (double v : vs) f64(v);
  }

  void str(std::string_view s) noexcept {
    u64(s.size());
    for (char c : s) byte(static_cast<std::uint8_t>(c));
  }

  [[nodiscard]] std::uint64_t digest() const noexcept { return state_; }

 private:
  std::uint64_t state_ = 14695981039346656037ull;
};

}  // namespace hynapse::util
