#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace hynapse::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::std_error() const noexcept {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Interval wilson_interval(std::size_t successes, std::size_t trials, double z) {
  if (trials == 0) throw std::invalid_argument{"wilson_interval: zero trials"};
  if (successes > trials)
    throw std::invalid_argument{"wilson_interval: successes > trials"};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = p + z2 / (2.0 * n);
  const double spread = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return {std::max(0.0, (center - spread) / denom),
          std::min(1.0, (center + spread) / denom)};
}

namespace {

/// Lentz's continued-fraction evaluation for the incomplete beta; converges
/// in a few dozen terms for x < (a+1)/(a+b+2) (the caller's regime).
double beta_continued_fraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kTiny = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double dm = static_cast<double>(m);
    const double m2 = 2.0 * dm;
    double aa = dm * (b - dm) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + dm) * (qab + dm) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

/// p-quantile of Beta(a, b): bisection on the monotone CDF. 80 halvings of
/// [0, 1] exhaust double precision; each step is one incomplete-beta call.
double beta_quantile(double p, double a, double b) {
  double lo = 0.0;
  double hi = 1.0;
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (regularized_incomplete_beta(a, b, mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double regularized_incomplete_beta(double a, double b, double x) {
  if (!(a > 0.0) || !(b > 0.0)) {
    throw std::invalid_argument{
        "regularized_incomplete_beta: a and b must be positive"};
  }
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

Interval clopper_pearson_interval(std::size_t successes, std::size_t trials,
                                  double confidence) {
  if (trials == 0) {
    throw std::invalid_argument{"clopper_pearson_interval: zero trials"};
  }
  if (successes > trials) {
    throw std::invalid_argument{
        "clopper_pearson_interval: successes > trials"};
  }
  if (!(confidence > 0.0) || !(confidence < 1.0)) {
    throw std::invalid_argument{
        "clopper_pearson_interval: confidence must be in (0, 1)"};
  }
  const double alpha = 1.0 - confidence;
  const double k = static_cast<double>(successes);
  const double n = static_cast<double>(trials);
  Interval out;
  out.lo = successes == 0 ? 0.0
                          : beta_quantile(alpha / 2.0, k, n - k + 1.0);
  out.hi = successes == trials
               ? 1.0
               : beta_quantile(1.0 - alpha / 2.0, k + 1.0, n - k);
  return out;
}

double percentile(std::span<const double> sample, double p) {
  if (sample.empty()) throw std::invalid_argument{"percentile: empty sample"};
  p = std::clamp(p, 0.0, 1.0);
  std::vector<double> sorted{sample.begin(), sample.end()};
  std::sort(sorted.begin(), sorted.end());
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double mean(std::span<const double> sample) noexcept {
  if (sample.empty()) return 0.0;
  double acc = 0.0;
  for (double x : sample) acc += x;
  return acc / static_cast<double>(sample.size());
}

double stddev(std::span<const double> sample) noexcept {
  if (sample.size() < 2) return 0.0;
  const double m = mean(sample);
  double acc = 0.0;
  for (double x : sample) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(sample.size() - 1));
}

double normal_cdf(double x) noexcept {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double normal_quantile(double p) {
  if (p <= 0.0 || p >= 1.0)
    throw std::invalid_argument{"normal_quantile: p must be in (0,1)"};
  // Acklam's rational approximation with central/tail split.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double q = 0.0;
  double r = 0.0;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double failure_prob_to_sigma(double p) {
  if (p <= 0.0) return std::numeric_limits<double>::infinity();
  if (p >= 1.0) return -std::numeric_limits<double>::infinity();
  return -normal_quantile(p);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument{"Histogram: zero bins"};
  if (!(hi > lo)) throw std::invalid_argument{"Histogram: hi must exceed lo"};
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t i) const { return counts_.at(i); }

double Histogram::bin_center(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range{"Histogram::bin_center"};
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * width;
}

}  // namespace hynapse::util
