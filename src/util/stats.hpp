// Small statistics toolkit: streaming moments, percentiles, and binomial
// confidence intervals for Monte-Carlo failure-rate estimation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hynapse::util {

/// Welford streaming mean/variance accumulator. Numerically stable for the
/// long Monte-Carlo streams used in yield analysis.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Standard error of the mean; 0 for fewer than two samples.
  [[nodiscard]] double std_error() const noexcept;

  /// Merges another accumulator (parallel reduction support).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided binomial proportion interval.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};

/// Wilson score interval for `successes` out of `trials` at z standard
/// deviations (z = 1.96 for 95 %). Well-behaved at p = 0 and p = 1, which is
/// exactly the regime of rare SRAM failures.
[[nodiscard]] Interval wilson_interval(std::size_t successes, std::size_t trials,
                                       double z = 1.96);

/// Exact (conservative) Clopper-Pearson interval at two-sided confidence
/// `confidence` (0.95 = 95 %). The endpoints are the beta quantiles
/// lo = BetaInv(alpha/2; k, n-k+1) and hi = BetaInv(1-alpha/2; k+1, n-k)
/// (with lo = 0 at k = 0 and hi = 1 at k = n), found by bisection on the
/// monotone regularized incomplete beta -- the stricter of the two stopping
/// rules available to the adaptive Monte-Carlo sampler (docs/adaptive_mc.md).
[[nodiscard]] Interval clopper_pearson_interval(std::size_t successes,
                                                std::size_t trials,
                                                double confidence = 0.95);

/// Regularized incomplete beta I_x(a, b) via the Lentz continued fraction.
/// I_x(k+1, n-k) = P(Binomial(n, x) > k), which is what the interval tests
/// brute-force against.
[[nodiscard]] double regularized_incomplete_beta(double a, double b, double x);

/// Linear-interpolation percentile of a sample (p in [0,1]); the input span is
/// copied and sorted internally.
[[nodiscard]] double percentile(std::span<const double> sample, double p);

/// Arithmetic mean of a sample; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> sample) noexcept;

/// Unbiased standard deviation of a sample; 0 for fewer than two points.
[[nodiscard]] double stddev(std::span<const double> sample) noexcept;

/// Standard normal CDF Phi(x) via std::erfc (double precision).
[[nodiscard]] double normal_cdf(double x) noexcept;

/// Inverse standard normal CDF (Acklam's rational approximation, |error| <
/// 1.15e-9), used by importance-sampling diagnostics and sigma-to-yield
/// conversions.
[[nodiscard]] double normal_quantile(double p);

/// Convert a failure probability to the equivalent one-sided sigma level
/// (e.g. 1e-3 -> ~3.09 sigma). Returns +inf for p <= 0.
[[nodiscard]] double failure_prob_to_sigma(double p);

/// Histogram with uniform bins over [lo, hi]; out-of-range samples clamp to
/// the edge bins. Used by margin-distribution diagnostics.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t i) const;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double bin_center(std::size_t i) const;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace hynapse::util
