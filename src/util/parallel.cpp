#include "util/parallel.hpp"

namespace hynapse::util {

// Legacy type-erased wrappers: forward to the templated pool-backed
// implementations (the lambda arguments select the template overloads).

void parallel_for_chunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t threads) {
  parallel_for_chunks(
      n, [&fn](std::size_t begin, std::size_t end) { fn(begin, end); },
      threads);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  parallel_for(
      n, [&fn](std::size_t i) { fn(i); }, threads);
}

}  // namespace hynapse::util
