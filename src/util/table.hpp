// Console table formatter used by every bench binary so that reproduced paper
// tables/figures print with consistent alignment.
#pragma once

#include <string>
#include <vector>

namespace hynapse::util {

/// Fixed-column text table. Cells are strings; numeric helpers format with a
/// chosen precision. Rendered with a header rule and right-aligned numerics.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Formats a double with fixed precision (trailing-zero-preserving).
  [[nodiscard]] static std::string num(double v, int precision = 3);
  /// Formats a double in scientific notation (for failure rates).
  [[nodiscard]] static std::string sci(double v, int precision = 2);
  /// Formats a percentage (value 0.1234 -> "12.34 %" with precision 2).
  [[nodiscard]] static std::string pct(double fraction, int precision = 2);

  /// Renders the table to a string (including trailing newline).
  [[nodiscard]] std::string str() const;

  /// Prints to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hynapse::util
