#include "util/fault_injection.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/metrics.hpp"
#include "util/hash.hpp"

namespace hynapse::util {
namespace {

/// Counter resolved once; every fire across every failpoint lands here.
obs::Counter& fired_counter() {
  static obs::Counter& c = obs::Registry::global().counter("fault.fired");
  return c;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool parse_number(std::string_view s, double& out) {
  if (s.empty()) return false;
  const std::string buf{s};
  char* end = nullptr;
  out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

bool parse_count(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  out = 0;
  for (const char ch : s) {
    if (ch < '0' || ch > '9') return false;
    out = out * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  return true;
}

}  // namespace

FaultInjector& FaultInjector::instance() {
  // Leaked on purpose, like the obs registry: failpoint checks may run on
  // detached threads during static destruction.
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

FaultInjector::FaultInjector() {
  if (const char* seed_env = std::getenv("HYNAPSE_FAILPOINT_SEED")) {
    double s = 0.0;
    if (parse_number(seed_env, s) && s >= 0.0) {
      seed_ = static_cast<std::uint64_t>(s);
    }
  }
  if (const char* spec = std::getenv("HYNAPSE_FAILPOINTS")) {
    std::string error;
    if (!configure(spec, &error)) {
      std::fprintf(stderr, "[fault] ignoring HYNAPSE_FAILPOINTS: %s\n",
                   error.c_str());
    }
  }
}

bool FaultInjector::parse_spec(std::string_view spec,
                               std::unordered_map<std::string, Point>& out,
                               std::string* error) {
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    std::string_view entry = trim(
        spec.substr(pos, comma == std::string_view::npos ? comma : comma - pos));
    pos = comma == std::string_view::npos ? spec.size() + 1 : comma + 1;
    if (entry.empty()) continue;

    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      if (error) *error = "expected <name>=<mode> in '" + std::string{entry} + "'";
      return false;
    }
    const std::string name{trim(entry.substr(0, eq))};
    std::string_view mode = trim(entry.substr(eq + 1));

    Point p;
    const std::size_t at = mode.find('@');
    if (at != std::string_view::npos) {
      if (!parse_number(trim(mode.substr(at + 1)), p.arg)) {
        if (error) *error = "bad @argument in '" + std::string{entry} + "'";
        return false;
      }
      p.has_arg = true;
      mode = trim(mode.substr(0, at));
    }

    if (mode == "always") {
      p.mode = Mode::always;
    } else if (mode == "never") {
      p.mode = Mode::never;
    } else if (mode.substr(0, 2) == "p:") {
      p.mode = Mode::probability;
      if (!parse_number(mode.substr(2), p.probability) || p.probability < 0.0 ||
          p.probability > 1.0) {
        if (error) *error = "p: wants a probability in [0,1] in '" + std::string{entry} + "'";
        return false;
      }
    } else if (mode.substr(0, 6) == "every:") {
      p.mode = Mode::every;
      if (!parse_count(mode.substr(6), p.n) || p.n == 0) {
        if (error) *error = "every: wants a positive count in '" + std::string{entry} + "'";
        return false;
      }
    } else if (mode.substr(0, 6) == "first:") {
      p.mode = Mode::first;
      if (!parse_count(mode.substr(6), p.n) || p.n == 0) {
        if (error) *error = "first: wants a positive count in '" + std::string{entry} + "'";
        return false;
      }
    } else {
      if (error) *error = "unknown mode in '" + std::string{entry} + "'";
      return false;
    }
    out[name] = p;
  }
  return true;
}

bool FaultInjector::configure(std::string_view spec, std::string* error) {
  std::unordered_map<std::string, Point> parsed;
  if (!parse_spec(spec, parsed, error)) return false;
  const std::scoped_lock lock{mutex_};
  points_ = std::move(parsed);
  armed_.store(!points_.empty(), std::memory_order_relaxed);
  return true;
}

void FaultInjector::reset() {
  const std::scoped_lock lock{mutex_};
  points_.clear();
  total_fired_ = 0;
  armed_.store(false, std::memory_order_relaxed);
}

void FaultInjector::seed(std::uint64_t seed) {
  const std::scoped_lock lock{mutex_};
  seed_ = seed;
}

bool FaultInjector::should_fire(std::string_view name) {
  if (!armed()) return false;
  const std::scoped_lock lock{mutex_};
  const auto it = points_.find(std::string{name});
  if (it == points_.end()) return false;
  Point& p = it->second;
  const std::uint64_t hit = p.hits++;
  bool fire = false;
  switch (p.mode) {
    case Mode::always:
      fire = true;
      break;
    case Mode::never:
      break;
    case Mode::probability: {
      // Deterministic stream: the decision for hit k depends only on
      // (seed, name, k), so runs with the same spec+seed fire identically.
      Fnv1a h;
      h.u64(seed_);
      h.str(name);
      h.u64(hit);
      const double u = static_cast<double>(h.digest() >> 11) *
                       (1.0 / 9007199254740992.0);  // [0,1) from 53 bits
      fire = u < p.probability;
      break;
    }
    case Mode::every:
      fire = (hit + 1) % p.n == 0;
      break;
    case Mode::first:
      fire = hit < p.n;
      break;
  }
  if (fire) {
    ++p.fired;
    ++total_fired_;
    fired_counter().add(1);
  }
  return fire;
}

double FaultInjector::arg(std::string_view name, double fallback) const {
  const std::scoped_lock lock{mutex_};
  const auto it = points_.find(std::string{name});
  if (it == points_.end() || !it->second.has_arg) return fallback;
  return it->second.arg;
}

std::uint64_t FaultInjector::fired(std::string_view name) const {
  const std::scoped_lock lock{mutex_};
  const auto it = points_.find(std::string{name});
  return it == points_.end() ? 0 : it->second.fired;
}

std::uint64_t FaultInjector::hits(std::string_view name) const {
  const std::scoped_lock lock{mutex_};
  const auto it = points_.find(std::string{name});
  return it == points_.end() ? 0 : it->second.hits;
}

std::uint64_t FaultInjector::total_fired() const {
  const std::scoped_lock lock{mutex_};
  return total_fired_;
}

}  // namespace hynapse::util
