#include "util/thread_pool.hpp"

#include <cstdlib>
#include <cstring>

#include "obs/span.hpp"

namespace hynapse::util {

namespace {

/// Process-wide pool instruments, additive across pools (the shared()
/// pool plus any private ones): worker head-count, queued job copies,
/// jobs executed and the busy-time integral -- utilization is
/// busy_us / (workers * uptime).
struct PoolInstruments {
  obs::Gauge& workers;
  obs::Gauge& queue_depth;
  obs::Counter& jobs_run;
  obs::Counter& busy_us;
  obs::Counter& lock_acquisitions;
  obs::Counter& lock_contended;
  obs::Counter& lock_wait_us;

  static PoolInstruments& get() {
    static PoolInstruments* instruments = [] {
      obs::Registry& r = obs::Registry::global();
      return new PoolInstruments{
          r.gauge("pool.workers"),
          r.gauge("pool.queue_depth"),
          r.counter("pool.jobs_run"),
          r.counter("pool.busy_us"),
          r.counter("pool.lock_acquisitions"),
          r.counter("pool.lock_contended"),
          r.counter("pool.lock_wait_us"),
      };
    }();
    return *instruments;
  }
};

/// Queue-lock contention probe (the ROADMAP's work-stealing question needs
/// data first): a try_lock resolves the uncontended case with one atomic;
/// a failed attempt is counted as contended and the blocking wait is
/// timed. pool.lock_contended / pool.lock_acquisitions is the contention
/// ratio, pool.lock_wait_us the time lost to it. Condition-variable idle
/// waits in worker_loop are deliberately NOT counted -- an idle pool is
/// not a contended pool.
void lock_with_probe(std::unique_lock<std::mutex>& lock,
                     PoolInstruments& instruments) {
  instruments.lock_acquisitions.add(1);
  if (lock.try_lock()) return;
  instruments.lock_contended.add(1);
  const obs::Clock::time_point t0 = obs::Clock::now();
  lock.lock();
  instruments.lock_wait_us.add(obs::elapsed_us(t0, obs::Clock::now()));
}

std::atomic<std::size_t> g_default_threads{0};  // 0 = auto

// Upper bound on any configured thread count: far above real machines, low
// enough that a mistyped --threads or HYNAPSE_THREADS value cannot make
// pool construction throw.
constexpr std::size_t kMaxThreads = 512;

std::size_t hardware_threads() noexcept {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

std::size_t env_threads() noexcept {
  if (const char* s = std::getenv("HYNAPSE_THREADS")) {
    const long v = std::atol(s);
    if (v > 0) return std::min(static_cast<std::size_t>(v), kMaxThreads);
  }
  return 0;
}

}  // namespace

std::size_t default_thread_count() noexcept {
  const std::size_t set = g_default_threads.load(std::memory_order_relaxed);
  if (set != 0) return set;
  static const std::size_t fallback = [] {
    const std::size_t env = env_threads();
    return env != 0 ? env : hardware_threads();
  }();
  return fallback;
}

void set_default_thread_count(std::size_t n) noexcept {
  g_default_threads.store(std::min(n, kMaxThreads), std::memory_order_relaxed);
}

std::size_t strip_threads_flag(int& argc, char** argv) {
  const auto parse = [](const char* s, long& v) -> bool {
    char* end = nullptr;
    v = std::strtol(s, &end, 10);
    return end != s && *end == '\0';
  };
  std::size_t threads = 0;
  const auto apply = [&threads](long v) {
    // Non-positive values mean "auto"; a cap keeps hostile input from
    // blowing up pool construction.
    threads = v > 0 ? std::min(static_cast<std::size_t>(v), kMaxThreads) : 0;
  };
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    long v = 0;
    if (std::strncmp(arg, "--threads", 9) == 0 && arg[9] == '=') {
      if (parse(arg + 10, v)) apply(v);
      continue;
    }
    if (std::strcmp(arg, "--threads") == 0) {
      // Consume the next token only when it is numeric; "--threads evaluate"
      // must not swallow the command.
      if (i + 1 < argc && parse(argv[i + 1], v)) {
        apply(v);
        ++i;
      }
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  set_default_thread_count(threads);
  return threads;
}

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  PoolInstruments::get().workers.add(static_cast<std::int64_t>(workers));
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock{mutex_};
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  PoolInstruments::get().workers.add(
      -static_cast<std::int64_t>(workers_.size()));
}

ThreadPool& ThreadPool::shared() {
  // At least 3 workers so that the thread-count-invariance contract is
  // genuinely exercised (and testable) even on 1-2 core machines; mild
  // oversubscription is harmless for the throughput-bound simulation loops.
  static ThreadPool pool{std::max<std::size_t>(default_thread_count(), 4) - 1};
  return pool;
}

void ThreadPool::submit(const std::shared_ptr<Job>& job, std::size_t copies) {
  if (copies == 0 || !job) return;
  {
    std::unique_lock lock{mutex_, std::defer_lock};
    lock_with_probe(lock, PoolInstruments::get());
    for (std::size_t i = 0; i < copies; ++i) queue_.push_back(job);
  }
  PoolInstruments::get().queue_depth.add(static_cast<std::int64_t>(copies));
  if (copies == 1) {
    cv_.notify_one();
  } else {
    cv_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  PoolInstruments& instruments = PoolInstruments::get();
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock lock{mutex_, std::defer_lock};
      lock_with_probe(lock, instruments);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    instruments.queue_depth.add(-1);
    const obs::Clock::time_point t0 = obs::Clock::now();
    job->run();
    instruments.busy_us.add(obs::elapsed_us(t0, obs::Clock::now()));
    instruments.jobs_run.add(1);
    job.reset();  // release the control block before blocking on the queue
  }
}

}  // namespace hynapse::util
