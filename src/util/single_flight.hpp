// Keyed single-flight latch: the concurrency primitive behind request
// coalescing (engine::FailureTableCache, serve::EvalService).
//
// run(key, fn) serializes callers of the same key -- fn runs under that
// key's exclusive latch while distinct keys proceed concurrently -- and
// tells fn whether this caller arrived while another call for the key was
// already in flight. That flag is what lets a memoizing caller distinguish
// "I produced this artifact" from "I piggybacked on someone else's build":
// fn re-checks its memo first, so of N concurrent same-key callers exactly
// one pays for the expensive work and N-1 observe coalesced == true.
//
// Unlike a plain per-key mutex map, finished keys are garbage-collected:
// the internal table holds entries only while callers are running or
// waiting, so a long-lived cache touching many fingerprints does not grow
// a latch per fingerprint forever.
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace hynapse::util {

class SingleFlight {
 public:
  /// Runs fn(coalesced) under `key`'s latch and returns its result
  /// (references are forwarded, not copied). `coalesced` is true iff this
  /// caller waited for an earlier in-flight call on the same key to finish.
  /// Exceptions from fn release the latch and propagate. Re-entering run()
  /// with the same key from inside fn deadlocks -- don't.
  template <typename Fn>
  decltype(auto) run(std::uint64_t key, Fn&& fn) {
    bool coalesced = false;
    Guard guard{this, key, acquire(key, coalesced)};
    return std::forward<Fn>(fn)(coalesced);
  }

  /// Number of keys with callers currently running or waiting (test hook;
  /// returns to 0 when the latch is idle).
  [[nodiscard]] std::size_t in_flight() const;

 private:
  struct Call {
    std::condition_variable cv;
    bool running = false;
    std::size_t users = 0;  ///< callers holding the entry (running + waiting)
  };

  struct Guard {
    SingleFlight* self;
    std::uint64_t key;
    std::shared_ptr<Call> call;
    ~Guard() { self->release(key, std::move(call)); }
  };

  /// Blocks until the key's latch is held by this caller; sets `coalesced`
  /// when the wait was caused by an in-flight call.
  std::shared_ptr<Call> acquire(std::uint64_t key, bool& coalesced);
  void release(std::uint64_t key, std::shared_ptr<Call> call) noexcept;

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Call>> calls_;
};

}  // namespace hynapse::util
