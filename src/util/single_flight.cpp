#include "util/single_flight.hpp"

namespace hynapse::util {

std::shared_ptr<SingleFlight::Call> SingleFlight::acquire(std::uint64_t key,
                                                          bool& coalesced) {
  std::unique_lock lock{mutex_};
  auto& slot = calls_[key];
  if (!slot) slot = std::make_shared<Call>();
  const std::shared_ptr<Call> call = slot;
  ++call->users;
  while (call->running) {
    coalesced = true;
    call->cv.wait(lock);
  }
  call->running = true;
  return call;
}

void SingleFlight::release(std::uint64_t key,
                           std::shared_ptr<Call> call) noexcept {
  const std::scoped_lock lock{mutex_};
  call->running = false;
  if (--call->users == 0) {
    calls_.erase(key);  // no waiter left; GC the latch entry
  } else {
    call->cv.notify_all();
  }
}

std::size_t SingleFlight::in_flight() const {
  const std::scoped_lock lock{mutex_};
  return calls_.size();
}

}  // namespace hynapse::util
