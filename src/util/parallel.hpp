// Data-parallel loop primitives over the persistent util::ThreadPool.
//
// The templated entry points bind the caller's functor through a plain
// function pointer + context pointer, so the hot path performs no
// std::function construction and no per-chunk allocation (one small shared
// control block per region is the only heap traffic). The std::function
// overloads below are retained as thin wrappers for call sites that still
// pass type-erased callables.
//
// Determinism contract (see docs/engine.md): parallel_for / parallel_for_chunks
// guarantee each index/chunk runs exactly once, with chunk *boundaries*
// dependent on the thread count; callers that fold floating-point state per
// chunk must fix their own chunk grid (as mc::montecarlo does with kChunks)
// or use parallel_reduce, whose chunk count is an explicit argument and whose
// partials are combined in ascending chunk order -- making the result
// bit-identical for any thread count.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <type_traits>
#include <vector>

#include "util/thread_pool.hpp"

namespace hynapse::util {

namespace detail {

/// Dispatches body(begin, end) over [0, n) split into n_chunks chunks on up
/// to `threads` participants (the calling thread plus shared-pool helpers).
inline void run_chunked(ChunkRun::Body body, void* ctx, std::size_t n,
                        std::size_t n_chunks, std::size_t threads) {
  if (n == 0) return;
  if (threads == 0) threads = default_thread_count();
  threads = std::min(threads, n);
  ThreadPool& pool = ThreadPool::shared();
  const std::size_t helpers =
      threads <= 1 ? 0 : std::min(threads - 1, pool.worker_count());
  if (helpers == 0) {
    body(ctx, 0, n);
    return;
  }
  n_chunks = std::min(std::max<std::size_t>(n_chunks, 1), n);
  const auto run = std::make_shared<ChunkRun>(body, ctx, n, n_chunks);
  pool.submit(run, helpers);
  run->run();   // the caller participates, so the region cannot deadlock
  run->wait();  // rethrows the first body exception
}

}  // namespace detail

/// Runs fn(begin, end) over disjoint chunks of [0, n) on up to `threads`
/// participants (0 = default_thread_count()). Blocks until all chunks
/// finish. fn must be safe to invoke concurrently on disjoint ranges.
/// Exceptions thrown by fn propagate to the caller (first one wins).
template <typename Fn>
  requires std::is_invocable_v<Fn&, std::size_t, std::size_t>
void parallel_for_chunks(std::size_t n, Fn&& fn, std::size_t threads = 0) {
  using F = std::remove_reference_t<Fn>;
  detail::run_chunked(
      [](void* ctx, std::size_t begin, std::size_t end) {
        (*static_cast<F*>(ctx))(begin, end);
      },
      const_cast<std::remove_const_t<F>*>(std::addressof(fn)), n,
      /*n_chunks=*/4 * default_thread_count(), threads);
}

/// Element-wise convenience wrapper: fn(i) for each i in [0, n).
template <typename Fn>
  requires std::is_invocable_v<Fn&, std::size_t>
void parallel_for(std::size_t n, Fn&& fn, std::size_t threads = 0) {
  auto body = [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  };
  parallel_for_chunks(n, body, threads);
}

/// Deterministic parallel reduction: splits [0, n) into exactly `n_chunks`
/// chunks, computes partial_c = map(begin_c, end_c) for each, and folds
/// combine(acc, partial_c) in ascending chunk order. Because the chunk grid
/// and the fold order are independent of the thread count, the result is
/// bit-identical for any `threads` value (including 1). Empty trailing
/// chunks contribute `init`.
template <typename T, typename MapFn, typename CombineFn>
[[nodiscard]] T parallel_reduce(std::size_t n, std::size_t n_chunks, T init,
                                MapFn map, CombineFn combine,
                                std::size_t threads = 0) {
  if (n == 0 || n_chunks == 0) return init;
  n_chunks = std::min(n_chunks, n);
  const std::size_t chunk = (n + n_chunks - 1) / n_chunks;
  std::vector<T> partials(n_chunks, init);
  parallel_for(
      n_chunks,
      [&](std::size_t c) {
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(begin + chunk, n);
        if (begin < end) partials[c] = map(begin, end);
      },
      threads);
  T acc = std::move(init);
  for (T& p : partials) acc = combine(std::move(acc), std::move(p));
  return acc;
}

// ---------------------------------------------------------------------------
// Legacy type-erased signatures, kept as thin wrappers during the migration.

void parallel_for_chunks(std::size_t n,
                         const std::function<void(std::size_t, std::size_t)>& fn,
                         std::size_t threads = 0);

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace hynapse::util
