// Minimal data-parallel loop helper. Monte-Carlo sampling, batched inference
// and training are embarrassingly parallel over chunks; a full task system is
// unnecessary.
#pragma once

#include <cstddef>
#include <functional>

namespace hynapse::util {

/// Number of worker threads used by parallel_for (hardware concurrency,
/// at least 1).
[[nodiscard]] std::size_t default_thread_count() noexcept;

/// Runs fn(begin, end) over disjoint chunks of [0, n) on up to `threads`
/// threads (0 = default_thread_count()). Blocks until all chunks finish.
/// fn must be safe to invoke concurrently on disjoint ranges. Exceptions
/// thrown by fn propagate to the caller (first one wins).
void parallel_for_chunks(std::size_t n,
                         const std::function<void(std::size_t, std::size_t)>& fn,
                         std::size_t threads = 0);

/// Element-wise convenience wrapper: fn(i) for each i in [0, n).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace hynapse::util
