#include "util/rng.hpp"

#include <array>
#include <bit>
#include <cmath>
#include <vector>

namespace hynapse::util {

namespace {

[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// --- discard() support -----------------------------------------------------
// The xoshiro256** state transition (the part of next_u64 that mutates s_)
// is built from XORs, shifts and rotates only, i.e. it is a linear map T
// over the 256-bit state viewed as a GF(2) vector. discard(n) multiplies
// the state by T^n, composed from lazily precomputed T^(2^i) tables.

using State = std::array<std::uint64_t, 4>;

/// One state transition, bit-exactly what next_u64() does to s_.
void step(State& s) noexcept {
  const std::uint64_t t = s[1] << 17;
  s[2] ^= s[0];
  s[3] ^= s[1];
  s[1] ^= s[2];
  s[0] ^= s[3];
  s[2] ^= t;
  s[3] = rotl(s[3], 45);
}

/// T^(2^i) stored column-major: col[k] is the image of basis vector e_k, so
/// applying a matrix is an XOR-accumulation of the columns selected by the
/// state's set bits (~128 on average) — a few hundred u64 XORs per apply.
struct JumpMatrix {
  State col[256];
};

State apply(const JumpMatrix& m, const State& s) noexcept {
  State out{};
  for (int word = 0; word < 4; ++word) {
    std::uint64_t bits = s[static_cast<std::size_t>(word)];
    while (bits != 0) {
      const int k = std::countr_zero(bits);
      bits &= bits - 1;
      const State& c = m.col[word * 64 + k];
      out[0] ^= c[0];
      out[1] ^= c[1];
      out[2] ^= c[2];
      out[3] ^= c[3];
    }
  }
  return out;
}

/// One table per bit of the 64-bit discard distance.
constexpr int kJumpPowers = 64;

const std::vector<JumpMatrix>& jump_table() {
  static const std::vector<JumpMatrix> table = [] {
    std::vector<JumpMatrix> t(kJumpPowers);
    for (int k = 0; k < 256; ++k) {
      State s{};
      s[static_cast<std::size_t>(k / 64)] = 1ull << (k % 64);
      step(s);
      t[0].col[k] = s;
    }
    for (int i = 1; i < kJumpPowers; ++i) {
      for (int k = 0; k < 256; ++k) {
        t[static_cast<std::size_t>(i)].col[k] =
            apply(t[static_cast<std::size_t>(i - 1)],
                  t[static_cast<std::size_t>(i - 1)].col[k]);
      }
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro256** must not start from the all-zero state; splitmix64 of any
  // seed cannot produce four zero words, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Rejection sampling over the largest multiple of n below 2^64.
  const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                              std::numeric_limits<std::uint64_t>::max() % n;
  std::uint64_t x = next_u64();
  while (x >= limit) x = next_u64();
  return x % n;
}

double Rng::normal() noexcept {
  if (has_normal_spare_) {
    has_normal_spare_ = false;
    return normal_spare_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double scale = std::sqrt(-2.0 * std::log(s) / s);
  normal_spare_ = v * scale;
  has_normal_spare_ = true;
  return u * scale;
}

double Rng::normal(double mean, double sigma) noexcept {
  return mean + sigma * normal();
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

void Rng::discard(std::uint64_t n) {
  // Below the threshold, sequential stepping beats the ~popcount(n) matrix
  // applications; above it, the jump is effectively O(1).
  constexpr std::uint64_t kJumpThreshold = 4096;
  if (n < kJumpThreshold) {
    for (; n != 0; --n) (void)next_u64();
    return;
  }
  const std::vector<JumpMatrix>& table = jump_table();
  State s{s_[0], s_[1], s_[2], s_[3]};
  for (int i = 0; n != 0; ++i, n >>= 1) {
    if ((n & 1ull) != 0) s = apply(table[static_cast<std::size_t>(i)], s);
  }
  s_[0] = s[0];
  s_[1] = s[1];
  s_[2] = s[2];
  s_[3] = s[3];
}

Rng Rng::split() noexcept {
  return Rng{next_u64() ^ 0xa5a5a5a55a5a5a5aull};
}

void Rng::clear_normal_cache() noexcept { has_normal_spare_ = false; }

}  // namespace hynapse::util
