#include "util/rng.hpp"

#include <cmath>

namespace hynapse::util {

namespace {

[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro256** must not start from the all-zero state; splitmix64 of any
  // seed cannot produce four zero words, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Rejection sampling over the largest multiple of n below 2^64.
  const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                              std::numeric_limits<std::uint64_t>::max() % n;
  std::uint64_t x = next_u64();
  while (x >= limit) x = next_u64();
  return x % n;
}

double Rng::normal() noexcept {
  if (has_normal_spare_) {
    has_normal_spare_ = false;
    return normal_spare_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double scale = std::sqrt(-2.0 * std::log(s) / s);
  normal_spare_ = v * scale;
  has_normal_spare_ = true;
  return u * scale;
}

double Rng::normal(double mean, double sigma) noexcept {
  return mean + sigma * normal();
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::split() noexcept {
  return Rng{next_u64() ^ 0xa5a5a5a55a5a5a5aull};
}

void Rng::clear_normal_cache() noexcept { has_normal_spare_ = false; }

}  // namespace hynapse::util
