// CSV emission for experiment harnesses. Every bench binary prints a human
// table to stdout and can mirror the same rows into a CSV file for plotting.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace hynapse::util {

/// Streaming CSV writer with RFC-4180-style quoting. Throws std::runtime_error
/// if the file cannot be opened.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);

  /// Writes a header row; normally called once, first.
  void header(std::initializer_list<std::string_view> names);
  void header(const std::vector<std::string>& names);

  /// Appends one row of already-formatted cells.
  void row(const std::vector<std::string>& cells);

  /// Convenience: formats doubles with `precision` significant digits.
  void row_numeric(const std::vector<double>& values, int precision = 8);

  /// Flushes the underlying stream.
  void flush();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  void write_cells(const std::vector<std::string>& cells);

  std::string path_;
  std::ofstream out_;
};

/// Quotes a single CSV cell if it contains separators, quotes or newlines.
[[nodiscard]] std::string csv_escape(std::string_view cell);

}  // namespace hynapse::util
