#include "util/csv.hpp"

#include <sstream>
#include <stdexcept>

namespace hynapse::util {

std::string csv_escape(std::string_view cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string{cell};
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter::CsvWriter(const std::string& path) : path_{path}, out_{path} {
  if (!out_) throw std::runtime_error{"CsvWriter: cannot open " + path};
}

void CsvWriter::header(std::initializer_list<std::string_view> names) {
  std::vector<std::string> cells;
  cells.reserve(names.size());
  for (auto n : names) cells.emplace_back(n);
  write_cells(cells);
}

void CsvWriter::header(const std::vector<std::string>& names) {
  write_cells(names);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  write_cells(cells);
}

void CsvWriter::row_numeric(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    std::ostringstream ss;
    ss.precision(precision);
    ss << v;
    cells.push_back(ss.str());
  }
  write_cells(cells);
}

void CsvWriter::flush() { out_.flush(); }

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace hynapse::util
