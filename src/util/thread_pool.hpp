// Persistent worker pool behind util::parallel_for / parallel_reduce.
//
// The simulation stack issues many short parallel regions (Monte-Carlo
// chunks, GEMM row blocks, chip instances); spawning threads per region is
// pure overhead. One lazily-created shared pool serves every region instead:
// a region enqueues a handful of "helper" tickets, the submitting thread
// participates in the work itself, and per-chunk dispatch is a single atomic
// increment on a shared control block -- no std::function, no per-chunk
// allocation.
//
// Because the submitting thread always participates, a region completes even
// when every worker is busy -- including when a worker itself reaches a
// nested region -- so nested parallelism cannot deadlock.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hynapse::util {

/// Default number of participants for a parallel region: the value set via
/// set_default_thread_count(), else the HYNAPSE_THREADS environment
/// variable, else hardware concurrency (at least 1).
[[nodiscard]] std::size_t default_thread_count() noexcept;

/// Process-wide override for default_thread_count() (0 = back to auto).
/// Call before the first parallel region (e.g. from a --threads flag); later
/// calls still cap participation of subsequent regions, but cannot grow the
/// shared pool beyond its creation size. Values are clamped to a sane
/// maximum so hostile input cannot blow up pool construction.
void set_default_thread_count(std::size_t n) noexcept;

/// Strips the first `--threads N` / `--threads=N` flag from argv, applies it
/// via set_default_thread_count and returns the value (0 when absent or not
/// a positive number). Shared by the example/bench front-ends.
[[nodiscard]] std::size_t strip_threads_flag(int& argc, char** argv);

class ThreadPool {
 public:
  /// A unit of queued work. run() must not throw; implementations catch and
  /// store exceptions themselves.
  struct Job {
    virtual ~Job() = default;
    virtual void run() noexcept = 0;
  };

  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }

  /// The process-wide pool, created on first use.
  [[nodiscard]] static ThreadPool& shared();

  /// Enqueues `copies` tickets for `job`; each dequeue calls job->run() once.
  /// The queue holds shared ownership, so a ticket that is dequeued after
  /// the submitting region already finished runs against a still-alive
  /// control block (which makes it a no-op).
  void submit(const std::shared_ptr<Job>& job, std::size_t copies);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

namespace detail {

/// Shared state of one chunked parallel region: claims chunk indices with an
/// atomic counter, records the first exception, and signals completion once
/// every chunk has been claimed and finished. Stale helper tickets (arriving
/// after all chunks are claimed) fall straight through without touching the
/// caller's stack frame.
class ChunkRun final : public ThreadPool::Job {
 public:
  using Body = void (*)(void* ctx, std::size_t begin, std::size_t end);

  ChunkRun(Body body, void* ctx, std::size_t n, std::size_t n_chunks) noexcept
      : body_{body},
        ctx_{ctx},
        n_{n},
        n_chunks_{n_chunks},
        chunk_{(n + n_chunks - 1) / n_chunks},
        remaining_{n_chunks} {}

  void run() noexcept override {
    for (;;) {
      const std::size_t c = next_.fetch_add(1, std::memory_order_relaxed);
      if (c >= n_chunks_) return;
      if (!cancelled_.load(std::memory_order_relaxed)) {
        const std::size_t begin = c * chunk_;
        const std::size_t end = std::min(begin + chunk_, n_);
        try {
          if (begin < end) body_(ctx_, begin, end);
        } catch (...) {
          const std::scoped_lock lock{mutex_};
          if (!error_) error_ = std::current_exception();
          cancelled_.store(true, std::memory_order_relaxed);
        }
      }
      if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Lock pairs with the waiter's predicate check, closing the window
        // between its check and its sleep.
        const std::scoped_lock lock{mutex_};
        done_.notify_all();
      }
    }
  }

  /// Blocks until every chunk finished; rethrows the first body exception.
  void wait() {
    std::unique_lock lock{mutex_};
    done_.wait(lock, [this] {
      return remaining_.load(std::memory_order_acquire) == 0;
    });
    if (error_) std::rethrow_exception(error_);
  }

 private:
  Body body_;
  void* ctx_;
  std::size_t n_;
  std::size_t n_chunks_;
  std::size_t chunk_;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> remaining_;
  std::atomic<bool> cancelled_{false};
  std::exception_ptr error_;
  std::mutex mutex_;
  std::condition_variable done_;
};

}  // namespace detail

}  // namespace hynapse::util
