#include "ann/metrics.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace hynapse::ann {

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : n_{num_classes}, cells_(num_classes * num_classes, 0) {
  if (num_classes == 0)
    throw std::invalid_argument{"ConfusionMatrix: zero classes"};
}

void ConfusionMatrix::add(std::uint8_t truth, std::uint8_t predicted) {
  if (truth >= n_ || predicted >= n_)
    throw std::out_of_range{"ConfusionMatrix::add: class out of range"};
  ++cells_[truth * n_ + predicted];
  ++total_;
}

void ConfusionMatrix::add_batch(std::span<const std::uint8_t> truth,
                                std::span<const std::uint8_t> predicted) {
  if (truth.size() != predicted.size())
    throw std::invalid_argument{"ConfusionMatrix::add_batch: size mismatch"};
  for (std::size_t i = 0; i < truth.size(); ++i) add(truth[i], predicted[i]);
}

std::size_t ConfusionMatrix::count(std::size_t truth,
                                   std::size_t predicted) const {
  if (truth >= n_ || predicted >= n_)
    throw std::out_of_range{"ConfusionMatrix::count"};
  return cells_[truth * n_ + predicted];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t hits = 0;
  for (std::size_t c = 0; c < n_; ++c) hits += cells_[c * n_ + c];
  return static_cast<double>(hits) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(std::size_t cls) const {
  std::size_t predicted = 0;
  for (std::size_t t = 0; t < n_; ++t) predicted += cells_[t * n_ + cls];
  if (predicted == 0) return 0.0;
  return static_cast<double>(cells_[cls * n_ + cls]) /
         static_cast<double>(predicted);
}

double ConfusionMatrix::recall(std::size_t cls) const {
  std::size_t actual = 0;
  for (std::size_t p = 0; p < n_; ++p) actual += cells_[cls * n_ + p];
  if (actual == 0) return 0.0;
  return static_cast<double>(cells_[cls * n_ + cls]) /
         static_cast<double>(actual);
}

double ConfusionMatrix::macro_f1() const {
  double sum = 0.0;
  for (std::size_t c = 0; c < n_; ++c) {
    const double p = precision(c);
    const double r = recall(c);
    sum += (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
  }
  return sum / static_cast<double>(n_);
}

std::size_t ConfusionMatrix::worst_class() const {
  std::size_t worst = 0;
  double worst_recall = 2.0;
  for (std::size_t c = 0; c < n_; ++c) {
    const double r = recall(c);
    if (r < worst_recall) {
      worst_recall = r;
      worst = c;
    }
  }
  return worst;
}

std::string ConfusionMatrix::str() const {
  std::ostringstream out;
  out << "true\\pred";
  for (std::size_t p = 0; p < n_; ++p) out << '\t' << p;
  out << '\n';
  for (std::size_t t = 0; t < n_; ++t) {
    out << t;
    for (std::size_t p = 0; p < n_; ++p) out << '\t' << cells_[t * n_ + p];
    out << '\n';
  }
  return out.str();
}

ConfusionMatrix evaluate_confusion(const Mlp& net, const Matrix& inputs,
                                   std::span<const std::uint8_t> labels,
                                   std::size_t num_classes) {
  ConfusionMatrix cm{num_classes};
  const std::vector<std::uint8_t> pred = net.predict(inputs);
  cm.add_batch(labels, pred);
  return cm;
}

double top_k_accuracy(const Mlp& net, const Matrix& inputs,
                      std::span<const std::uint8_t> labels, std::size_t k) {
  if (k == 0) throw std::invalid_argument{"top_k_accuracy: k must be >= 1"};
  const Matrix probs = net.forward(inputs);
  std::size_t hits = 0;
  std::vector<std::size_t> order(probs.cols());
  for (std::size_t i = 0; i < probs.rows(); ++i) {
    const float* row = probs.row(i);
    const float truth_score = row[labels[i]];
    std::size_t better = 0;
    for (std::size_t j = 0; j < probs.cols(); ++j)
      if (row[j] > truth_score) ++better;
    if (better < k) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(probs.rows());
}

}  // namespace hynapse::ann
