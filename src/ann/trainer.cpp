#include "ann/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace hynapse::ann {

namespace {

// dL/dz for softmax + cross-entropy is (p - onehot) / batch.
void output_delta(const Matrix& probs, std::span<const std::uint8_t> labels,
                  std::size_t base, Matrix& delta) {
  const float inv_batch = 1.0f / static_cast<float>(probs.rows());
  for (std::size_t i = 0; i < probs.rows(); ++i) {
    const float* p = probs.row(i);
    float* d = delta.row(i);
    const std::uint8_t y = labels[base + i];
    for (std::size_t j = 0; j < probs.cols(); ++j) {
      d[j] = (p[j] - (j == y ? 1.0f : 0.0f)) * inv_batch;
    }
  }
}

}  // namespace

double cross_entropy(const Mlp& net, const Matrix& inputs,
                     std::span<const std::uint8_t> labels) {
  const Matrix probs = net.forward(inputs);
  double loss = 0.0;
  for (std::size_t i = 0; i < probs.rows(); ++i) {
    const float p = std::max(probs.at(i, labels[i]), 1e-12f);
    loss -= std::log(static_cast<double>(p));
  }
  return loss / static_cast<double>(probs.rows());
}

double train_sgd(Mlp& net, const Matrix& inputs,
                 std::span<const std::uint8_t> labels,
                 const TrainConfig& config) {
  if (labels.size() != inputs.rows())
    throw std::invalid_argument{"train_sgd: label count mismatch"};
  if (config.batch_size == 0)
    throw std::invalid_argument{"train_sgd: zero batch size"};

  const std::size_t n = inputs.rows();
  const std::size_t layers = net.num_weight_layers();

  // Momentum buffers mirror the parameter shapes.
  std::vector<Matrix> vel_w;
  std::vector<std::vector<float>> vel_b;
  vel_w.reserve(layers);
  vel_b.reserve(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    vel_w.emplace_back(net.weight(l).rows(), net.weight(l).cols());
    vel_b.emplace_back(net.bias(l).size(), 0.0f);
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  util::Rng rng{config.shuffle_seed};

  std::vector<Matrix> acts;
  std::vector<Matrix> deltas(layers);
  std::vector<Matrix> grads(layers);
  double lr = config.learning_rate;
  double last_epoch_loss = 0.0;

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    // Fisher-Yates shuffle with our deterministic generator.
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = rng.uniform_index(i);
      std::swap(order[i - 1], order[j]);
    }

    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < n; start += config.batch_size) {
      const std::size_t bs = std::min(config.batch_size, n - start);
      Matrix batch{bs, inputs.cols()};
      std::vector<std::uint8_t> batch_labels(bs);
      for (std::size_t i = 0; i < bs; ++i) {
        const std::size_t src = order[start + i];
        std::copy_n(inputs.row(src), inputs.cols(), batch.row(i));
        batch_labels[i] = labels[src];
      }

      net.forward_full(batch, acts);
      const Matrix& probs = acts.back();
      for (std::size_t i = 0; i < bs; ++i) {
        epoch_loss -= std::log(std::max(
            static_cast<double>(probs.at(i, batch_labels[i])), 1e-12));
      }

      // Backward pass.
      for (std::size_t li = layers; li-- > 0;) {
        Matrix& delta = deltas[li];
        if (delta.rows() != bs || delta.cols() != net.weight(li).cols())
          delta = Matrix{bs, net.weight(li).cols()};
        if (li == layers - 1) {
          output_delta(probs, batch_labels, 0, delta);
          // batch_labels already sliced; base = 0.
        } else {
          // delta_l = (delta_{l+1} * W_{l+1}^T) ⊙ f'(a_l)
          gemm_bt(deltas[li + 1], net.weight(li + 1), delta);
          const Matrix& a = acts[li + 1];
          const Activation act = net.hidden_activation();
          for (std::size_t i = 0; i < bs; ++i) {
            float* d = delta.row(i);
            const float* av = a.row(i);
            for (std::size_t j = 0; j < delta.cols(); ++j)
              d[j] *= activation_derivative(av[j], act);
          }
        }
      }

      // Gradients and parameter update.
      for (std::size_t li = 0; li < layers; ++li) {
        Matrix& grad = grads[li];
        if (grad.rows() != net.weight(li).rows() ||
            grad.cols() != net.weight(li).cols())
          grad = Matrix{net.weight(li).rows(), net.weight(li).cols()};
        gemm_at(acts[li], deltas[li], grad);

        Matrix& w = net.weight(li);
        Matrix& vw = vel_w[li];
        const float lrf = static_cast<float>(lr);
        const float mom = static_cast<float>(config.momentum);
        float* wd = w.data().data();
        float* vd = vw.data().data();
        const float* gd = grad.data().data();
        for (std::size_t idx = 0; idx < w.size(); ++idx) {
          vd[idx] = mom * vd[idx] - lrf * gd[idx];
          wd[idx] += vd[idx];
        }

        std::vector<float>& b = net.bias(li);
        std::vector<float>& vb = vel_b[li];
        const Matrix& delta = deltas[li];
        for (std::size_t j = 0; j < b.size(); ++j) {
          float g = 0.0f;
          for (std::size_t i = 0; i < bs; ++i) g += delta.at(i, j);
          vb[j] = mom * vb[j] - lrf * g;
          b[j] += vb[j];
        }
      }
      ++batches;
    }
    last_epoch_loss = epoch_loss / static_cast<double>(n);
    if (config.on_epoch) config.on_epoch(epoch, last_epoch_loss);
    lr *= config.lr_decay;
  }
  return last_epoch_loss;
}

}  // namespace hynapse::ann
