// Feedforward multilayer perceptron (Fig. 1 of the paper): fully connected
// layers, sigmoid hidden activations, softmax output. The paper's benchmark
// instance (Table I) is 784-1000-500-200-100-10: 6 layers, 2594 neurons,
// 1,406,810 synapses counting biases.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "ann/matrix.hpp"

namespace hynapse::ann {

class EvalWorkspace;
class GroupEvalWorkspace;

/// Hidden-layer nonlinearity. The paper's text shows sigmoid neurons
/// (Fig. 1); its simulator, the DeepLearnToolbox [22], defaults to LeCun's
/// scaled tanh (1.7159*tanh(2x/3)), which is also what trains the deep
/// Table-I network reliably. ReLU is provided for completeness.
enum class Activation : std::uint8_t {
  sigmoid,
  tanh_lecun,
  relu,
};

/// Weight matrices are stored fan_in x fan_out so a batch forward pass is
/// activations(row-major batch) * W.
class Mlp {
 public:
  /// Builds a network with Xavier-uniform initial weights. `layer_sizes`
  /// includes the input layer, e.g. {784, 1000, 500, 200, 100, 10}.
  Mlp(std::vector<std::size_t> layer_sizes, std::uint64_t seed,
      Activation hidden_activation = Activation::sigmoid);

  [[nodiscard]] Activation hidden_activation() const noexcept {
    return activation_;
  }
  void set_hidden_activation(Activation a) noexcept { activation_ = a; }

  [[nodiscard]] const std::vector<std::size_t>& layer_sizes() const noexcept {
    return sizes_;
  }
  /// Number of synaptic connection layers (= layer_sizes().size() - 1).
  [[nodiscard]] std::size_t num_weight_layers() const noexcept {
    return weights_.size();
  }
  /// Total neuron count including the input layer (Table I convention).
  [[nodiscard]] std::size_t neuron_count() const noexcept;
  /// Total synapse count: weights + biases (Table I convention).
  [[nodiscard]] std::size_t synapse_count() const noexcept;

  [[nodiscard]] Matrix& weight(std::size_t layer) { return weights_.at(layer); }
  [[nodiscard]] const Matrix& weight(std::size_t layer) const {
    return weights_.at(layer);
  }
  [[nodiscard]] std::vector<float>& bias(std::size_t layer) {
    return biases_.at(layer);
  }
  [[nodiscard]] const std::vector<float>& bias(std::size_t layer) const {
    return biases_.at(layer);
  }

  /// Batch forward pass: input (batch x layer_sizes[0]) -> output class
  /// probabilities (batch x layer_sizes.back()).
  [[nodiscard]] Matrix forward(const Matrix& input) const;

  /// Forward pass that also returns every layer's activations (used by the
  /// trainer); activations[0] is the input, activations.back() the softmax
  /// output.
  void forward_full(const Matrix& input,
                    std::vector<Matrix>& activations) const;

  /// Argmax class predictions for a batch.
  [[nodiscard]] std::vector<std::uint8_t> predict(const Matrix& input) const;

  /// Fraction of rows whose argmax matches `labels`.
  [[nodiscard]] double accuracy(const Matrix& input,
                                std::span<const std::uint8_t> labels) const;

  /// Allocation-free accuracy for the chip-evaluation hot path: walks the
  /// test set in mini-batches through the workspace's preallocated
  /// ping-pong activation buffers instead of materializing whole-set
  /// activations. Bit-identical to the overload above for any batch size
  /// (every kernel is row-independent; see docs/performance.md).
  [[nodiscard]] double accuracy(const Matrix& input,
                                std::span<const std::uint8_t> labels,
                                EvalWorkspace& workspace) const;

  /// Called around each layer's GEMM+bias in accuracy_group:
  /// mutate(chip, layer, true) right before, mutate(chip, layer, false)
  /// right after. Lets the caller apply/revert per-chip weight deltas while
  /// the shared weights are in flight; must not throw between apply and
  /// revert.
  using GroupMutator =
      std::function<void(std::size_t chip, std::size_t layer, bool apply)>;

  /// Fused multi-chip accuracy: evaluates `group` perturbed variants of
  /// this network in one traversal of the weight matrices. Loop order is
  /// mini-batch -> layer -> chip, so each layer's weight matrix is streamed
  /// from memory once per mini-batch and stays cache-resident across the
  /// whole chip group instead of being re-fetched per chip.
  /// accuracies[c] is bit-identical to a per-chip accuracy(...) call with
  /// the same batch geometry under chip c's deltas: per chip the exact same
  /// kernels see the exact same operands in the exact same order — fusing
  /// only interleaves *which chip* computes when (docs/performance.md).
  void accuracy_group(const Matrix& input, std::span<const std::uint8_t> labels,
                      GroupEvalWorkspace& workspace, std::size_t group,
                      const GroupMutator& mutate,
                      std::span<double> accuracies) const;

 private:
  std::vector<std::size_t> sizes_;
  Activation activation_ = Activation::sigmoid;
  std::vector<Matrix> weights_;             // [layer]: fan_in x fan_out
  std::vector<std::vector<float>> biases_;  // [layer]: fan_out
};

/// In-place row-wise sigmoid.
void sigmoid_inplace(Matrix& m);
/// In-place LeCun scaled tanh: 1.7159 * tanh(2x/3).
void tanh_lecun_inplace(Matrix& m);
/// In-place rectifier.
void relu_inplace(Matrix& m);
/// Applies the chosen hidden activation in place.
void activate_inplace(Matrix& m, Activation a);
/// Derivative of the activation expressed through the *activation value* a
/// (as backprop needs): sigmoid -> a(1-a); tanh_lecun -> 1.14393(1-(a/1.7159)^2);
/// relu -> a > 0.
[[nodiscard]] float activation_derivative(float a, Activation act) noexcept;
/// In-place row-wise softmax (numerically stabilized).
void softmax_rows_inplace(Matrix& m);

}  // namespace hynapse::ann
