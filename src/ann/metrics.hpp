// Classification metrics beyond plain accuracy: confusion matrix, per-class
// precision/recall, and top-k accuracy. Used by the chip-binning studies to
// show *which* digits fail first as synaptic storage degrades.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ann/mlp.hpp"

namespace hynapse::ann {

/// Row = true class, column = predicted class.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  void add(std::uint8_t truth, std::uint8_t predicted);

  /// Accumulates a whole batch of predictions.
  void add_batch(std::span<const std::uint8_t> truth,
                 std::span<const std::uint8_t> predicted);

  [[nodiscard]] std::size_t num_classes() const noexcept { return n_; }
  [[nodiscard]] std::size_t count(std::size_t truth,
                                  std::size_t predicted) const;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

  [[nodiscard]] double accuracy() const;
  /// Precision of one class: TP / (TP + FP); 0 when never predicted.
  [[nodiscard]] double precision(std::size_t cls) const;
  /// Recall of one class: TP / (TP + FN); 0 when absent from the data.
  [[nodiscard]] double recall(std::size_t cls) const;
  /// Unweighted mean of per-class F1 scores.
  [[nodiscard]] double macro_f1() const;

  /// Index of the class with the worst recall (ties -> lowest index).
  [[nodiscard]] std::size_t worst_class() const;

  /// Fixed-width text rendering for reports.
  [[nodiscard]] std::string str() const;

 private:
  std::size_t n_;
  std::size_t total_ = 0;
  std::vector<std::size_t> cells_;  // n x n row-major
};

/// Builds the confusion matrix of a network over a labelled set.
[[nodiscard]] ConfusionMatrix evaluate_confusion(
    const Mlp& net, const Matrix& inputs,
    std::span<const std::uint8_t> labels, std::size_t num_classes = 10);

/// Top-k accuracy: fraction of rows whose true class is among the k largest
/// outputs.
[[nodiscard]] double top_k_accuracy(const Mlp& net, const Matrix& inputs,
                                    std::span<const std::uint8_t> labels,
                                    std::size_t k);

}  // namespace hynapse::ann
