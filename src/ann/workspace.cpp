#include "ann/workspace.hpp"

#include <algorithm>

#include "ann/mlp.hpp"

namespace hynapse::ann {

void EvalWorkspace::bind(const Mlp& net) {
  const std::vector<std::size_t>& sizes = net.layer_sizes();
  std::size_t widest = 0;
  for (std::size_t l = 1; l < sizes.size(); ++l)
    widest = std::max(widest, sizes[l]);
  front_.reserve(batch_rows_, widest);
  back_.reserve(batch_rows_, widest);
}

}  // namespace hynapse::ann
