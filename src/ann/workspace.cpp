#include "ann/workspace.hpp"

#include <algorithm>

#include "ann/mlp.hpp"

namespace hynapse::ann {

namespace {

std::size_t widest_layer(const Mlp& net) {
  const std::vector<std::size_t>& sizes = net.layer_sizes();
  std::size_t widest = 0;
  for (std::size_t l = 1; l < sizes.size(); ++l)
    widest = std::max(widest, sizes[l]);
  return widest;
}

}  // namespace

void EvalWorkspace::bind(const Mlp& net) {
  const std::size_t widest = widest_layer(net);
  front_.reserve(batch_rows_, widest);
  back_.reserve(batch_rows_, widest);
}

void GroupEvalWorkspace::bind(const Mlp& net, std::size_t group) {
  const std::size_t widest = widest_layer(net);
  if (front_.size() < group) {
    front_.resize(group);
    back_.resize(group);
  }
  for (std::size_t c = 0; c < group; ++c) {
    front_[c].reserve(batch_rows_, widest);
    back_[c].reserve(batch_rows_, widest);
  }
  if (hits_.size() < group) hits_.resize(group);
}

}  // namespace hynapse::ann
