// Backend-pluggable kernel layer for the ANN forward/backward GEMMs
// (nestmc-style: one algorithm, backend-selected kernels). A Backend names a
// KernelOps table of raw-pointer micro-kernels; callers (ann::gemm and
// friends, the fused chip evaluator in core::delta_eval) pick the table once
// per call and stay allocation-free on the hot path.
//
// Backends:
//  * reference — the register-tiled portable kernels (PR 4). The
//    determinism oracle: every other backend is measured against it.
//  * simd      — OpenMP-simd annotated kernels (wider accumulator tiles,
//    unrolled inner-dimension stepping) compiled with -fopenmp-simd where
//    the toolchain supports it (CMake option HYNAPSE_SIMD_BACKEND, default
//    ON). When the backend is not compiled in, requesting it falls back to
//    the reference table — selection is a performance hint, never an error.
//
// Determinism contract (docs/performance.md): every kernel in every backend
// accumulates each output element over the inner dimension in ascending
// order, so all backends produce bit-identical results to gemm_naive —
// per-chip accuracies cannot depend on the backend. A future backend that
// relaxes accumulation order (e.g. omp-simd reductions, GPU warp sums) must
// be documented as such and gated behind its own opt-in flag; it must never
// hide behind an existing Backend name.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hynapse::ann::backends {

enum class Backend : std::uint8_t {
  reference,  ///< portable register-tiled kernels (the bitwise oracle)
  simd,       ///< explicit OpenMP-simd kernels (falls back when not built)
};

/// The kernel table a backend provides. All matrices are row-major and
/// contiguous; every kernel fully overwrites its output range, runs on the
/// calling thread (callers own parallel partitioning), and performs no heap
/// allocation.
struct KernelOps {
  /// c (m x n) = a (m x k) * b (k x n). Row partitioning: offsetting `a` by
  /// r0*k and `c` by r0*n computes the same rows, bit for bit.
  void (*gemm)(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n);
  /// c (m x n) = a (m x k) * bt^T, where bt is n x k row-major (B stored
  /// transposed). Row-partitionable like gemm.
  void (*gemm_bt)(const float* a, const float* bt, float* c, std::size_t m,
                  std::size_t k, std::size_t n);
  /// Rows [i0, i1) of c (mt x n) = at^T * b, where at is k x mt row-major.
  /// The explicit range (instead of pointer offsetting) is needed because a
  /// row block of c corresponds to a strided column block of at.
  void (*gemm_at)(const float* at, const float* b, float* c, std::size_t i0,
                  std::size_t i1, std::size_t mt, std::size_t k,
                  std::size_t n);
};

/// The kernel table for `backend`. Requesting Backend::simd when the SIMD
/// backend is unavailable — not compiled in, or compiled for AVX2 on a CPU
/// without it — returns the reference table (documented fallback; query
/// simd_compiled() to distinguish).
[[nodiscard]] const KernelOps& kernel_ops(Backend backend) noexcept;

/// The reference table directly (the oracle the tests compare against).
[[nodiscard]] const KernelOps& reference_kernel_ops() noexcept;

/// True when the simd backend is usable here: compiled in
/// (HYNAPSE_SIMD_BACKEND) and, for AVX2 builds, the running CPU has AVX2.
[[nodiscard]] bool simd_compiled() noexcept;

/// Process-wide default backend, used by freshly constructed
/// core::EvalOptions / serve::ServiceOptions. Starts as Backend::reference;
/// the CLI binaries set it from --backend (strip_backend_flag).
[[nodiscard]] Backend default_backend() noexcept;
void set_default_backend(Backend backend) noexcept;

/// "reference" / "simd" <-> Backend (parse returns nullopt on unknown).
[[nodiscard]] std::optional<Backend> parse_backend(
    std::string_view name) noexcept;
[[nodiscard]] std::string_view backend_name(Backend backend) noexcept;

/// Every selectable backend: reference always, simd when compiled in.
[[nodiscard]] std::vector<Backend> available_backends();

/// Removes "--backend NAME" / "--backend=NAME" from argv (mirroring
/// util::strip_threads_flag) and applies it via set_default_backend().
/// Returns false (and fills *error when non-null) on an unknown name or a
/// missing value; argv is consumed either way.
[[nodiscard]] bool strip_backend_flag(int& argc, char** argv,
                                      std::string* error = nullptr);

}  // namespace hynapse::ann::backends
