// Reference backend: the portable register-tiled kernels introduced in the
// PR 4 hot-path rework, moved behind the KernelOps seam verbatim. This
// table is the bitwise oracle — tests/test_ann_backends.cpp pins every
// other backend against it, and it against gemm_naive.
#include <algorithm>
#include <cstring>

#include "ann/backends/kernels_detail.hpp"

namespace hynapse::ann::backends {

namespace {

// Micro-tile shape for the i-k-j kernel below. 4 rows x 16 columns of
// accumulators is 64 floats — small enough for the compiler to keep in
// vector registers across the whole p loop, which is what removes the
// per-iteration C load/store traffic that bounds the plain i-p-j loop.
constexpr std::size_t kTileRows = 4;
constexpr std::size_t kTileCols = 16;

// c (m x n, fully overwritten) = a (m x k) * b (k x n), all row-major and
// contiguous. Every output element accumulates over p in ascending order in
// every branch below, so the kernel is bit-identical to gemm_naive and
// independent of how callers partition rows.
void gemm_kernel(const float* HYNAPSE_RESTRICT a,
                 const float* HYNAPSE_RESTRICT b, float* HYNAPSE_RESTRICT c,
                 std::size_t m, std::size_t k, std::size_t n) {
  std::size_t j0 = 0;
  for (; j0 + kTileCols <= n; j0 += kTileCols) {
    std::size_t i = 0;
    for (; i + kTileRows <= m; i += kTileRows) {
      const float* HYNAPSE_RESTRICT a0 = a + i * k;
      const float* HYNAPSE_RESTRICT a1 = a0 + k;
      const float* HYNAPSE_RESTRICT a2 = a1 + k;
      const float* HYNAPSE_RESTRICT a3 = a2 + k;
      float acc0[kTileCols] = {};
      float acc1[kTileCols] = {};
      float acc2[kTileCols] = {};
      float acc3[kTileCols] = {};
      for (std::size_t p = 0; p < k; ++p) {
        const float* HYNAPSE_RESTRICT bp = b + p * n + j0;
        const float a0p = a0[p];
        const float a1p = a1[p];
        const float a2p = a2[p];
        const float a3p = a3[p];
        for (std::size_t j = 0; j < kTileCols; ++j) {
          acc0[j] += a0p * bp[j];
          acc1[j] += a1p * bp[j];
          acc2[j] += a2p * bp[j];
          acc3[j] += a3p * bp[j];
        }
      }
      std::memcpy(c + i * n + j0, acc0, sizeof(acc0));
      std::memcpy(c + (i + 1) * n + j0, acc1, sizeof(acc1));
      std::memcpy(c + (i + 2) * n + j0, acc2, sizeof(acc2));
      std::memcpy(c + (i + 3) * n + j0, acc3, sizeof(acc3));
    }
    for (; i < m; ++i) {
      const float* HYNAPSE_RESTRICT ai = a + i * k;
      float acc[kTileCols] = {};
      for (std::size_t p = 0; p < k; ++p) {
        const float* HYNAPSE_RESTRICT bp = b + p * n + j0;
        const float aip = ai[p];
        for (std::size_t j = 0; j < kTileCols; ++j) acc[j] += aip * bp[j];
      }
      std::memcpy(c + i * n + j0, acc, sizeof(acc));
    }
  }
  if (j0 < n) {
    // Column remainder (n % 16): same loop structure with a runtime-width
    // tile accumulated directly in C (at most 15 columns, so the extra C
    // traffic is negligible).
    const std::size_t jw = n - j0;
    for (std::size_t i = 0; i < m; ++i) {
      const float* HYNAPSE_RESTRICT ai = a + i * k;
      float* HYNAPSE_RESTRICT ci = c + i * n + j0;
      std::fill(ci, ci + jw, 0.0f);
      for (std::size_t p = 0; p < k; ++p) {
        const float* HYNAPSE_RESTRICT bp = b + p * n + j0;
        const float aip = ai[p];
        for (std::size_t j = 0; j < jw; ++j) ci[j] += aip * bp[j];
      }
    }
  }
}

// c[i][j] = sum_p a[i][p] * bt[j][p]; bt is n x k row-major. A strict-FP
// dot product cannot be vectorized, so this kernel takes its ILP from four
// independent output columns.
void gemm_bt_kernel(const float* HYNAPSE_RESTRICT a,
                    const float* HYNAPSE_RESTRICT bt,
                    float* HYNAPSE_RESTRICT c, std::size_t m, std::size_t k,
                    std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* HYNAPSE_RESTRICT ai = a + i * k;
    float* HYNAPSE_RESTRICT ci = c + i * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      // Four independent dot products: each keeps its strict ascending-p
      // order (so results stay bit-identical) but the four chains overlap
      // in the pipeline.
      const float* HYNAPSE_RESTRICT b0 = bt + j * k;
      const float* HYNAPSE_RESTRICT b1 = b0 + k;
      const float* HYNAPSE_RESTRICT b2 = b1 + k;
      const float* HYNAPSE_RESTRICT b3 = b2 + k;
      float s0 = 0.0f;
      float s1 = 0.0f;
      float s2 = 0.0f;
      float s3 = 0.0f;
      for (std::size_t p = 0; p < k; ++p) {
        const float ap = ai[p];
        s0 += ap * b0[p];
        s1 += ap * b1[p];
        s2 += ap * b2[p];
        s3 += ap * b3[p];
      }
      ci[j] = s0;
      ci[j + 1] = s1;
      ci[j + 2] = s2;
      ci[j + 3] = s3;
    }
    for (; j < n; ++j) {
      const float* HYNAPSE_RESTRICT bj = bt + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
      ci[j] = acc;
    }
  }
}

// Rows [i0, i1) of c = at^T * b; at is k x mt row-major. Same micro-tile as
// gemm_kernel — the four A scalars per p step are the contiguous
// at[p][i..i+3], so the transposed layout costs nothing.
void gemm_at_kernel(const float* HYNAPSE_RESTRICT at,
                    const float* HYNAPSE_RESTRICT b, float* HYNAPSE_RESTRICT c,
                    std::size_t i0, std::size_t i1, std::size_t mt,
                    std::size_t k, std::size_t n) {
  std::size_t i = i0;
  for (; i + kTileRows <= i1; i += kTileRows) {
    std::size_t j0 = 0;
    for (; j0 + kTileCols <= n; j0 += kTileCols) {
      float acc0[kTileCols] = {};
      float acc1[kTileCols] = {};
      float acc2[kTileCols] = {};
      float acc3[kTileCols] = {};
      for (std::size_t p = 0; p < k; ++p) {
        const float* HYNAPSE_RESTRICT ap = at + p * mt + i;
        const float* HYNAPSE_RESTRICT bp = b + p * n + j0;
        const float w0 = ap[0];
        const float w1 = ap[1];
        const float w2 = ap[2];
        const float w3 = ap[3];
        for (std::size_t j = 0; j < kTileCols; ++j) {
          acc0[j] += w0 * bp[j];
          acc1[j] += w1 * bp[j];
          acc2[j] += w2 * bp[j];
          acc3[j] += w3 * bp[j];
        }
      }
      std::memcpy(c + i * n + j0, acc0, sizeof(acc0));
      std::memcpy(c + (i + 1) * n + j0, acc1, sizeof(acc1));
      std::memcpy(c + (i + 2) * n + j0, acc2, sizeof(acc2));
      std::memcpy(c + (i + 3) * n + j0, acc3, sizeof(acc3));
    }
    for (std::size_t r = 0; r < kTileRows; ++r) {
      if (j0 >= n) break;
      float* HYNAPSE_RESTRICT ci = c + (i + r) * n + j0;
      const std::size_t jw = n - j0;
      std::fill(ci, ci + jw, 0.0f);
      for (std::size_t p = 0; p < k; ++p) {
        const float w = at[p * mt + i + r];
        const float* HYNAPSE_RESTRICT bp = b + p * n + j0;
        for (std::size_t j = 0; j < jw; ++j) ci[j] += w * bp[j];
      }
    }
  }
  for (; i < i1; ++i) {
    float* HYNAPSE_RESTRICT ci = c + i * n;
    std::fill(ci, ci + n, 0.0f);
    for (std::size_t p = 0; p < k; ++p) {
      const float w = at[p * mt + i];
      const float* HYNAPSE_RESTRICT bp = b + p * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += w * bp[j];
    }
  }
}

}  // namespace

const KernelOps& reference_kernel_ops() noexcept {
  static constexpr KernelOps ops{gemm_kernel, gemm_bt_kernel, gemm_at_kernel};
  return ops;
}

}  // namespace hynapse::ann::backends
