#include "ann/backends/backend.hpp"

#include <atomic>
#include <cstring>

#include "ann/backends/kernels_detail.hpp"

namespace hynapse::ann::backends {

namespace {

std::atomic<Backend> g_default_backend{Backend::reference};

}  // namespace

const KernelOps& kernel_ops(Backend backend) noexcept {
  if (backend == Backend::simd) {
    if (const KernelOps* ops = detail::simd_kernel_ops()) return *ops;
  }
  return reference_kernel_ops();
}

bool simd_compiled() noexcept { return detail::simd_kernel_ops() != nullptr; }

Backend default_backend() noexcept {
  return g_default_backend.load(std::memory_order_relaxed);
}

void set_default_backend(Backend backend) noexcept {
  g_default_backend.store(backend, std::memory_order_relaxed);
}

std::optional<Backend> parse_backend(std::string_view name) noexcept {
  if (name == "reference") return Backend::reference;
  if (name == "simd") return Backend::simd;
  return std::nullopt;
}

std::string_view backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::simd:
      return "simd";
    case Backend::reference:
      break;
  }
  return "reference";
}

std::vector<Backend> available_backends() {
  std::vector<Backend> out{Backend::reference};
  if (simd_compiled()) out.push_back(Backend::simd);
  return out;
}

bool strip_backend_flag(int& argc, char** argv, std::string* error) {
  // Mirrors util::strip_threads_flag: remove the flag wherever it appears so
  // command parsers never see it, then apply it process-wide.
  bool ok = true;
  const auto apply = [&](const char* name) {
    if (const auto backend = parse_backend(name)) {
      set_default_backend(*backend);
    } else {
      ok = false;
      if (error) *error = std::string{"unknown backend '"} + name + "'";
    }
  };
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--backend", 9) == 0 && arg[9] == '=') {
      apply(arg + 10);
      continue;
    }
    if (std::strcmp(arg, "--backend") == 0) {
      if (i + 1 < argc) {
        apply(argv[i + 1]);
        ++i;
      } else {
        ok = false;
        if (error) *error = "--backend requires a value";
      }
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return ok;
}

}  // namespace hynapse::ann::backends
