// Internal seam between the backend registry (backends.cpp) and the
// per-backend kernel translation units. Not part of the public API.
#pragma once

#include "ann/backends/backend.hpp"

#if defined(_MSC_VER)
#define HYNAPSE_RESTRICT __restrict
#else
#define HYNAPSE_RESTRICT __restrict__
#endif

namespace hynapse::ann::backends::detail {

/// The simd kernel table, or nullptr when HYNAPSE_SIMD_BACKEND was off at
/// build time (simd.cpp always compiles; only its table is conditional).
/// When the AVX-512 tier is usable it is returned in preference to the
/// AVX2/omp-simd tier.
[[nodiscard]] const KernelOps* simd_kernel_ops() noexcept;

/// The AVX-512 kernel tier, or nullptr when it was not built
/// (HYNAPSE_SIMD_AVX512 unset) or the running CPU lacks avx512f. Only
/// consulted by simd.cpp — never exposed as its own Backend value.
[[nodiscard]] const KernelOps* simd512_kernel_ops() noexcept;

}  // namespace hynapse::ann::backends::detail
