// SIMD backend, middle tier. This TU is compiled with -fopenmp-simd when
// CMake's HYNAPSE_SIMD_BACKEND option is ON and the toolchain supports the
// flag; otherwise the table below is absent and kernel_ops(Backend::simd)
// falls back to the reference table.
//
// On x86 CMake additionally compiles this one TU with -mavx2 (the rest of
// the library keeps the portable baseline ISA) and defines
// HYNAPSE_SIMD_AVX2; the kernels then hold their 4x16 accumulator tiles in
// ymm registers via GCC vector-extension locals (the `#pragma omp simd`
// fallback form, kept for non-AVX2 builds, leaves the tiles in stack
// arrays), with the inner-dimension step unrolled 4-way to pair the B-row
// loads. simd_kernel_ops() returns the table only when cpuid reports AVX2
// at runtime, so a portable binary never executes AVX instructions on a
// CPU without them — Backend::simd just falls back to reference there. An
// AVX-512 tier with the same contract lives in simd512.cpp and is
// preferred when usable; the tiers are invisible to callers. AVX2 is used
// WITHOUT FMA (-ffp-contract=off, and plain -mavx2 does not enable -mfma):
// each multiply and add rounds separately, exactly like the reference
// kernels.
//
// Determinism: every output element still accumulates over the inner
// dimension in strict ascending order — the pragmas vectorize ACROSS output
// elements (the tile's j axis) and the unroll issues its two p steps as
// ordered adds into the same accumulator, so this backend is bit-identical
// to reference/gemm_naive (pinned by tests/test_ann_backends.cpp). An
// omp-simd *reduction* over p would reassociate and is deliberately not
// used; a relaxed-accumulation backend would be a new Backend value behind
// its own opt-in flag (docs/performance.md).
#include <algorithm>
#include <cstring>

#include "ann/backends/kernels_detail.hpp"

#if defined(HYNAPSE_HAVE_SIMD_BACKEND)

namespace hynapse::ann::backends {

namespace {

constexpr std::size_t kTileRows = 4;
constexpr std::size_t kTileCols = 16;

#if defined(HYNAPSE_SIMD_AVX2)

// GCC/Clang vector extension: one 8-lane float register (a ymm under
// -mavx2). aligned(4) permits unaligned loads/stores; may_alias lets the
// lanes alias the caller's float rows. Explicit vector locals keep the
// accumulator tile in registers — the omp-simd pragma form leaves the
// accumulator arrays on the stack (one spill store per row per step),
// which caps the kernel well below the port-bound ceiling.
using V8 =
    float __attribute__((vector_size(32), aligned(4), may_alias));

inline V8 splat8(float x) { return V8{x, x, x, x, x, x, x, x}; }
inline V8 load8(const float* p) { return *reinterpret_cast<const V8*>(p); }
inline void store8(float* p, V8 v) { *reinterpret_cast<V8*>(p) = v; }

#endif  // HYNAPSE_SIMD_AVX2

void gemm_kernel(const float* HYNAPSE_RESTRICT a,
                 const float* HYNAPSE_RESTRICT b, float* HYNAPSE_RESTRICT c,
                 std::size_t m, std::size_t k, std::size_t n) {
  std::size_t j0 = 0;
#if defined(HYNAPSE_SIMD_AVX2)
  // 4x16 register tile: 8 V8 accumulators + 4 B loads + 1 broadcast = 13
  // live ymm. Each output element takes exactly one rounded multiply and
  // one rounded add per ascending p — the reference accumulation order.
  for (; j0 + kTileCols <= n; j0 += kTileCols) {
    std::size_t i = 0;
    for (; i + kTileRows <= m; i += kTileRows) {
      const float* HYNAPSE_RESTRICT a0 = a + i * k;
      const float* HYNAPSE_RESTRICT a1 = a0 + k;
      const float* HYNAPSE_RESTRICT a2 = a1 + k;
      const float* HYNAPSE_RESTRICT a3 = a2 + k;
      V8 c00{}, c01{}, c10{}, c11{}, c20{}, c21{}, c30{}, c31{};
      std::size_t p = 0;
      // p unrolled by 4 (two paired steps; GCC unrolls the q loop): each
      // element still takes one rounded multiply + one rounded add per
      // ascending p — the reference accumulation order.
      for (; p + 4 <= k; p += 4) {
        for (std::size_t q = 0; q < 4; q += 2) {
          const float* HYNAPSE_RESTRICT bp0 = b + (p + q) * n + j0;
          const float* HYNAPSE_RESTRICT bp1 = bp0 + n;
          const V8 b00 = load8(bp0);
          const V8 b01 = load8(bp0 + 8);
          const V8 b10 = load8(bp1);
          const V8 b11 = load8(bp1 + 8);
          V8 w;
          w = splat8(a0[p + q]);
          c00 += w * b00;
          c01 += w * b01;
          w = splat8(a0[p + q + 1]);
          c00 += w * b10;
          c01 += w * b11;
          w = splat8(a1[p + q]);
          c10 += w * b00;
          c11 += w * b01;
          w = splat8(a1[p + q + 1]);
          c10 += w * b10;
          c11 += w * b11;
          w = splat8(a2[p + q]);
          c20 += w * b00;
          c21 += w * b01;
          w = splat8(a2[p + q + 1]);
          c20 += w * b10;
          c21 += w * b11;
          w = splat8(a3[p + q]);
          c30 += w * b00;
          c31 += w * b01;
          w = splat8(a3[p + q + 1]);
          c30 += w * b10;
          c31 += w * b11;
        }
      }
      for (; p < k; ++p) {
        const float* HYNAPSE_RESTRICT bp = b + p * n + j0;
        const V8 b0 = load8(bp);
        const V8 b1 = load8(bp + 8);
        V8 w;
        w = splat8(a0[p]);
        c00 += w * b0;
        c01 += w * b1;
        w = splat8(a1[p]);
        c10 += w * b0;
        c11 += w * b1;
        w = splat8(a2[p]);
        c20 += w * b0;
        c21 += w * b1;
        w = splat8(a3[p]);
        c30 += w * b0;
        c31 += w * b1;
      }
      float* HYNAPSE_RESTRICT c0 = c + i * n + j0;
      store8(c0, c00);
      store8(c0 + 8, c01);
      store8(c0 + n, c10);
      store8(c0 + n + 8, c11);
      store8(c0 + 2 * n, c20);
      store8(c0 + 2 * n + 8, c21);
      store8(c0 + 3 * n, c30);
      store8(c0 + 3 * n + 8, c31);
    }
    for (; i < m; ++i) {
      const float* HYNAPSE_RESTRICT ai = a + i * k;
      V8 acc0{}, acc1{};
      for (std::size_t p = 0; p < k; ++p) {
        const float* HYNAPSE_RESTRICT bp = b + p * n + j0;
        const V8 w = splat8(ai[p]);
        acc0 += w * load8(bp);
        acc1 += w * load8(bp + 8);
      }
      store8(c + i * n + j0, acc0);
      store8(c + i * n + j0 + 8, acc1);
    }
  }
#else   // !HYNAPSE_SIMD_AVX2
  for (; j0 + kTileCols <= n; j0 += kTileCols) {
    std::size_t i = 0;
    for (; i + kTileRows <= m; i += kTileRows) {
      const float* HYNAPSE_RESTRICT a0 = a + i * k;
      const float* HYNAPSE_RESTRICT a1 = a0 + k;
      const float* HYNAPSE_RESTRICT a2 = a1 + k;
      const float* HYNAPSE_RESTRICT a3 = a2 + k;
      float acc0[kTileCols] = {};
      float acc1[kTileCols] = {};
      float acc2[kTileCols] = {};
      float acc3[kTileCols] = {};
      std::size_t p = 0;
      for (; p + 2 <= k; p += 2) {
        const float* HYNAPSE_RESTRICT bp0 = b + p * n + j0;
        const float* HYNAPSE_RESTRICT bp1 = bp0 + n;
        const float a0p0 = a0[p];
        const float a1p0 = a1[p];
        const float a2p0 = a2[p];
        const float a3p0 = a3[p];
        const float a0p1 = a0[p + 1];
        const float a1p1 = a1[p + 1];
        const float a2p1 = a2[p + 1];
        const float a3p1 = a3[p + 1];
        // Two ordered adds per element per iteration: identical addition
        // order to two plain p steps.
#pragma omp simd
        for (std::size_t j = 0; j < kTileCols; ++j) {
          acc0[j] += a0p0 * bp0[j];
          acc0[j] += a0p1 * bp1[j];
          acc1[j] += a1p0 * bp0[j];
          acc1[j] += a1p1 * bp1[j];
          acc2[j] += a2p0 * bp0[j];
          acc2[j] += a2p1 * bp1[j];
          acc3[j] += a3p0 * bp0[j];
          acc3[j] += a3p1 * bp1[j];
        }
      }
      for (; p < k; ++p) {
        const float* HYNAPSE_RESTRICT bp = b + p * n + j0;
        const float a0p = a0[p];
        const float a1p = a1[p];
        const float a2p = a2[p];
        const float a3p = a3[p];
#pragma omp simd
        for (std::size_t j = 0; j < kTileCols; ++j) {
          acc0[j] += a0p * bp[j];
          acc1[j] += a1p * bp[j];
          acc2[j] += a2p * bp[j];
          acc3[j] += a3p * bp[j];
        }
      }
      std::memcpy(c + i * n + j0, acc0, sizeof(acc0));
      std::memcpy(c + (i + 1) * n + j0, acc1, sizeof(acc1));
      std::memcpy(c + (i + 2) * n + j0, acc2, sizeof(acc2));
      std::memcpy(c + (i + 3) * n + j0, acc3, sizeof(acc3));
    }
    for (; i < m; ++i) {
      const float* HYNAPSE_RESTRICT ai = a + i * k;
      float acc[kTileCols] = {};
      for (std::size_t p = 0; p < k; ++p) {
        const float* HYNAPSE_RESTRICT bp = b + p * n + j0;
        const float aip = ai[p];
#pragma omp simd
        for (std::size_t j = 0; j < kTileCols; ++j) acc[j] += aip * bp[j];
      }
      std::memcpy(c + i * n + j0, acc, sizeof(acc));
    }
  }
#endif  // HYNAPSE_SIMD_AVX2
  if (j0 < n) {
    const std::size_t jw = n - j0;
    for (std::size_t i = 0; i < m; ++i) {
      const float* HYNAPSE_RESTRICT ai = a + i * k;
      float* HYNAPSE_RESTRICT ci = c + i * n + j0;
      std::fill(ci, ci + jw, 0.0f);
      for (std::size_t p = 0; p < k; ++p) {
        const float* HYNAPSE_RESTRICT bp = b + p * n + j0;
        const float aip = ai[p];
#pragma omp simd
        for (std::size_t j = 0; j < jw; ++j) ci[j] += aip * bp[j];
      }
    }
  }
}

#if defined(__GNUC__) && !defined(__clang__)
// Keep the dot-product chains scalar: GCC's SLP vectorizer otherwise packs
// the eight accumulators into vector lanes fed by strided element inserts,
// which is far slower than eight scalar pipelines.
__attribute__((optimize("no-tree-slp-vectorize", "no-tree-vectorize")))
#endif
void gemm_bt_kernel(const float* HYNAPSE_RESTRICT a,
                    const float* HYNAPSE_RESTRICT bt,
                    float* HYNAPSE_RESTRICT c, std::size_t m, std::size_t k,
                    std::size_t n) {
  // Eight independent strict-order dot-product chains per step (vs the
  // reference's four): a dot product cannot be vectorized without
  // reassociating, so the only lawful speedup is more ILP.
  for (std::size_t i = 0; i < m; ++i) {
    const float* HYNAPSE_RESTRICT ai = a + i * k;
    float* HYNAPSE_RESTRICT ci = c + i * n;
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const float* HYNAPSE_RESTRICT b0 = bt + j * k;
      const float* HYNAPSE_RESTRICT b1 = b0 + k;
      const float* HYNAPSE_RESTRICT b2 = b1 + k;
      const float* HYNAPSE_RESTRICT b3 = b2 + k;
      const float* HYNAPSE_RESTRICT b4 = b3 + k;
      const float* HYNAPSE_RESTRICT b5 = b4 + k;
      const float* HYNAPSE_RESTRICT b6 = b5 + k;
      const float* HYNAPSE_RESTRICT b7 = b6 + k;
      float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
      float s4 = 0.0f, s5 = 0.0f, s6 = 0.0f, s7 = 0.0f;
      for (std::size_t p = 0; p < k; ++p) {
        const float ap = ai[p];
        s0 += ap * b0[p];
        s1 += ap * b1[p];
        s2 += ap * b2[p];
        s3 += ap * b3[p];
        s4 += ap * b4[p];
        s5 += ap * b5[p];
        s6 += ap * b6[p];
        s7 += ap * b7[p];
      }
      ci[j] = s0;
      ci[j + 1] = s1;
      ci[j + 2] = s2;
      ci[j + 3] = s3;
      ci[j + 4] = s4;
      ci[j + 5] = s5;
      ci[j + 6] = s6;
      ci[j + 7] = s7;
    }
    for (; j < n; ++j) {
      const float* HYNAPSE_RESTRICT bj = bt + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
      ci[j] = acc;
    }
  }
}

void gemm_at_kernel(const float* HYNAPSE_RESTRICT at,
                    const float* HYNAPSE_RESTRICT b, float* HYNAPSE_RESTRICT c,
                    std::size_t i0, std::size_t i1, std::size_t mt,
                    std::size_t k, std::size_t n) {
  std::size_t i = i0;
  for (; i + kTileRows <= i1; i += kTileRows) {
    std::size_t j0 = 0;
#if defined(HYNAPSE_SIMD_AVX2)
    for (; j0 + kTileCols <= n; j0 += kTileCols) {
      V8 c00{}, c01{}, c10{}, c11{}, c20{}, c21{}, c30{}, c31{};
      for (std::size_t p = 0; p < k; ++p) {
        const float* HYNAPSE_RESTRICT ap = at + p * mt + i;
        const float* HYNAPSE_RESTRICT bp = b + p * n + j0;
        const V8 b0 = load8(bp);
        const V8 b1 = load8(bp + 8);
        V8 w;
        w = splat8(ap[0]);
        c00 += w * b0;
        c01 += w * b1;
        w = splat8(ap[1]);
        c10 += w * b0;
        c11 += w * b1;
        w = splat8(ap[2]);
        c20 += w * b0;
        c21 += w * b1;
        w = splat8(ap[3]);
        c30 += w * b0;
        c31 += w * b1;
      }
      float* HYNAPSE_RESTRICT c0 = c + i * n + j0;
      store8(c0, c00);
      store8(c0 + 8, c01);
      store8(c0 + n, c10);
      store8(c0 + n + 8, c11);
      store8(c0 + 2 * n, c20);
      store8(c0 + 2 * n + 8, c21);
      store8(c0 + 3 * n, c30);
      store8(c0 + 3 * n + 8, c31);
    }
#else   // !HYNAPSE_SIMD_AVX2
    for (; j0 + kTileCols <= n; j0 += kTileCols) {
      float acc0[kTileCols] = {};
      float acc1[kTileCols] = {};
      float acc2[kTileCols] = {};
      float acc3[kTileCols] = {};
      for (std::size_t p = 0; p < k; ++p) {
        const float* HYNAPSE_RESTRICT ap = at + p * mt + i;
        const float* HYNAPSE_RESTRICT bp = b + p * n + j0;
        const float w0 = ap[0];
        const float w1 = ap[1];
        const float w2 = ap[2];
        const float w3 = ap[3];
#pragma omp simd
        for (std::size_t j = 0; j < kTileCols; ++j) {
          acc0[j] += w0 * bp[j];
          acc1[j] += w1 * bp[j];
          acc2[j] += w2 * bp[j];
          acc3[j] += w3 * bp[j];
        }
      }
      std::memcpy(c + i * n + j0, acc0, sizeof(acc0));
      std::memcpy(c + (i + 1) * n + j0, acc1, sizeof(acc1));
      std::memcpy(c + (i + 2) * n + j0, acc2, sizeof(acc2));
      std::memcpy(c + (i + 3) * n + j0, acc3, sizeof(acc3));
    }
#endif  // HYNAPSE_SIMD_AVX2
    for (std::size_t r = 0; r < kTileRows; ++r) {
      if (j0 >= n) break;
      float* HYNAPSE_RESTRICT ci = c + (i + r) * n + j0;
      const std::size_t jw = n - j0;
      std::fill(ci, ci + jw, 0.0f);
      for (std::size_t p = 0; p < k; ++p) {
        const float w = at[p * mt + i + r];
        const float* HYNAPSE_RESTRICT bp = b + p * n + j0;
#pragma omp simd
        for (std::size_t j = 0; j < jw; ++j) ci[j] += w * bp[j];
      }
    }
  }
  for (; i < i1; ++i) {
    float* HYNAPSE_RESTRICT ci = c + i * n;
    std::fill(ci, ci + n, 0.0f);
    for (std::size_t p = 0; p < k; ++p) {
      const float w = at[p * mt + i];
      const float* HYNAPSE_RESTRICT bp = b + p * n;
#pragma omp simd
      for (std::size_t j = 0; j < n; ++j) ci[j] += w * bp[j];
    }
  }
}

}  // namespace

namespace detail {

const KernelOps* simd_kernel_ops() noexcept {
  static constexpr KernelOps ops{gemm_kernel, gemm_bt_kernel, gemm_at_kernel};
  // Prefer the AVX-512 tier (simd512.cpp) when it was built and the CPU
  // has it; both tiers are the one Backend::simd as far as callers know.
  if (const KernelOps* wide = simd512_kernel_ops()) return wide;
#if defined(HYNAPSE_SIMD_AVX2)
  // Compiled for AVX2: only offer the table on CPUs that have it.
  static const bool supported = __builtin_cpu_supports("avx2");
  if (!supported) return nullptr;
#endif
  return &ops;
}

}  // namespace detail

}  // namespace hynapse::ann::backends

#else  // !HYNAPSE_HAVE_SIMD_BACKEND

namespace hynapse::ann::backends::detail {

const KernelOps* simd_kernel_ops() noexcept { return nullptr; }

}  // namespace hynapse::ann::backends::detail

#endif
