// AVX-512 tier of the simd backend. Same contract as the AVX2 kernels in
// simd.cpp, twice the lane width: GCC/Clang vector-extension locals keep a
// 4x32 accumulator tile (8 zmm) in registers, and every output element
// still accumulates over the inner dimension in strict ascending p order
// with one separately-rounded multiply and add per step — AVX-512 is used
// WITHOUT FMA (-ffp-contract=off; vector-extension arithmetic never
// contracts), so this tier is bit-identical to the reference backend and
// to gemm_naive (pinned by tests/test_ann_backends.cpp).
//
// CMake compiles this TU with -mavx512f and defines HYNAPSE_SIMD_AVX512
// only on x86 toolchains that accept the flag; simd512_kernel_ops() then
// returns the table only when cpuid reports avx512f at runtime, so a
// portable binary never executes AVX-512 instructions on a CPU without
// them. simd.cpp consults this table first and falls back to its AVX2
// tier; the tier split is invisible to callers — both are Backend::simd.
#include <algorithm>
#include <cstring>

#include "ann/backends/kernels_detail.hpp"

#if defined(HYNAPSE_SIMD_AVX512)

namespace hynapse::ann::backends {

namespace {

constexpr std::size_t kTileRows = 4;
constexpr std::size_t kTileCols = 32;

// One 16-lane float register (a zmm under -mavx512f). aligned(4) permits
// unaligned loads/stores; may_alias lets the lanes alias float rows.
using V16 =
    float __attribute__((vector_size(64), aligned(4), may_alias));

inline V16 splat16(float x) {
  return V16{x, x, x, x, x, x, x, x, x, x, x, x, x, x, x, x};
}
inline V16 load16(const float* p) {
  return *reinterpret_cast<const V16*>(p);
}
inline void store16(float* p, V16 v) { *reinterpret_cast<V16*>(p) = v; }

void gemm_kernel(const float* HYNAPSE_RESTRICT a,
                 const float* HYNAPSE_RESTRICT b, float* HYNAPSE_RESTRICT c,
                 std::size_t m, std::size_t k, std::size_t n) {
  std::size_t j0 = 0;
  // 4x32 register tile: 8 V16 accumulators + 4 B loads + 1 broadcast = 13
  // live zmm, p unrolled by 2.
  for (; j0 + kTileCols <= n; j0 += kTileCols) {
    std::size_t i = 0;
    for (; i + kTileRows <= m; i += kTileRows) {
      const float* HYNAPSE_RESTRICT a0 = a + i * k;
      const float* HYNAPSE_RESTRICT a1 = a0 + k;
      const float* HYNAPSE_RESTRICT a2 = a1 + k;
      const float* HYNAPSE_RESTRICT a3 = a2 + k;
      V16 c00{}, c01{}, c10{}, c11{}, c20{}, c21{}, c30{}, c31{};
      std::size_t p = 0;
      for (; p + 2 <= k; p += 2) {
        const float* HYNAPSE_RESTRICT bp0 = b + p * n + j0;
        const float* HYNAPSE_RESTRICT bp1 = bp0 + n;
        const V16 b00 = load16(bp0);
        const V16 b01 = load16(bp0 + 16);
        const V16 b10 = load16(bp1);
        const V16 b11 = load16(bp1 + 16);
        V16 w;
        w = splat16(a0[p]);
        c00 += w * b00;
        c01 += w * b01;
        w = splat16(a0[p + 1]);
        c00 += w * b10;
        c01 += w * b11;
        w = splat16(a1[p]);
        c10 += w * b00;
        c11 += w * b01;
        w = splat16(a1[p + 1]);
        c10 += w * b10;
        c11 += w * b11;
        w = splat16(a2[p]);
        c20 += w * b00;
        c21 += w * b01;
        w = splat16(a2[p + 1]);
        c20 += w * b10;
        c21 += w * b11;
        w = splat16(a3[p]);
        c30 += w * b00;
        c31 += w * b01;
        w = splat16(a3[p + 1]);
        c30 += w * b10;
        c31 += w * b11;
      }
      for (; p < k; ++p) {
        const float* HYNAPSE_RESTRICT bp = b + p * n + j0;
        const V16 b0 = load16(bp);
        const V16 b1 = load16(bp + 16);
        V16 w;
        w = splat16(a0[p]);
        c00 += w * b0;
        c01 += w * b1;
        w = splat16(a1[p]);
        c10 += w * b0;
        c11 += w * b1;
        w = splat16(a2[p]);
        c20 += w * b0;
        c21 += w * b1;
        w = splat16(a3[p]);
        c30 += w * b0;
        c31 += w * b1;
      }
      float* HYNAPSE_RESTRICT c0 = c + i * n + j0;
      store16(c0, c00);
      store16(c0 + 16, c01);
      store16(c0 + n, c10);
      store16(c0 + n + 16, c11);
      store16(c0 + 2 * n, c20);
      store16(c0 + 2 * n + 16, c21);
      store16(c0 + 3 * n, c30);
      store16(c0 + 3 * n + 16, c31);
    }
    for (; i < m; ++i) {
      const float* HYNAPSE_RESTRICT ai = a + i * k;
      V16 acc0{}, acc1{};
      for (std::size_t p = 0; p < k; ++p) {
        const float* HYNAPSE_RESTRICT bp = b + p * n + j0;
        const V16 w = splat16(ai[p]);
        acc0 += w * load16(bp);
        acc1 += w * load16(bp + 16);
      }
      store16(c + i * n + j0, acc0);
      store16(c + i * n + j0 + 16, acc1);
    }
  }
  if (j0 < n) {
    const std::size_t jw = n - j0;
    for (std::size_t i = 0; i < m; ++i) {
      const float* HYNAPSE_RESTRICT ai = a + i * k;
      float* HYNAPSE_RESTRICT ci = c + i * n + j0;
      std::fill(ci, ci + jw, 0.0f);
      for (std::size_t p = 0; p < k; ++p) {
        const float* HYNAPSE_RESTRICT bp = b + p * n + j0;
        const float aip = ai[p];
        for (std::size_t j = 0; j < jw; ++j) ci[j] += aip * bp[j];
      }
    }
  }
}

#if defined(__GNUC__) && !defined(__clang__)
// Without this GCC SLP-packs the eight accumulators into zmm lanes fed by
// strided element inserts — ~2x slower than eight scalar pipelines.
__attribute__((optimize("no-tree-slp-vectorize", "no-tree-vectorize")))
#endif
void gemm_bt_kernel(const float* HYNAPSE_RESTRICT a,
                    const float* HYNAPSE_RESTRICT bt,
                    float* HYNAPSE_RESTRICT c, std::size_t m, std::size_t k,
                    std::size_t n) {
  // Strict-order dot products cannot use wider vectors lawfully; same
  // eight-chain ILP shape as the AVX2 tier.
  for (std::size_t i = 0; i < m; ++i) {
    const float* HYNAPSE_RESTRICT ai = a + i * k;
    float* HYNAPSE_RESTRICT ci = c + i * n;
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const float* HYNAPSE_RESTRICT b0 = bt + j * k;
      const float* HYNAPSE_RESTRICT b1 = b0 + k;
      const float* HYNAPSE_RESTRICT b2 = b1 + k;
      const float* HYNAPSE_RESTRICT b3 = b2 + k;
      const float* HYNAPSE_RESTRICT b4 = b3 + k;
      const float* HYNAPSE_RESTRICT b5 = b4 + k;
      const float* HYNAPSE_RESTRICT b6 = b5 + k;
      const float* HYNAPSE_RESTRICT b7 = b6 + k;
      float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
      float s4 = 0.0f, s5 = 0.0f, s6 = 0.0f, s7 = 0.0f;
      for (std::size_t p = 0; p < k; ++p) {
        const float ap = ai[p];
        s0 += ap * b0[p];
        s1 += ap * b1[p];
        s2 += ap * b2[p];
        s3 += ap * b3[p];
        s4 += ap * b4[p];
        s5 += ap * b5[p];
        s6 += ap * b6[p];
        s7 += ap * b7[p];
      }
      ci[j] = s0;
      ci[j + 1] = s1;
      ci[j + 2] = s2;
      ci[j + 3] = s3;
      ci[j + 4] = s4;
      ci[j + 5] = s5;
      ci[j + 6] = s6;
      ci[j + 7] = s7;
    }
    for (; j < n; ++j) {
      const float* HYNAPSE_RESTRICT bj = bt + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
      ci[j] = acc;
    }
  }
}

void gemm_at_kernel(const float* HYNAPSE_RESTRICT at,
                    const float* HYNAPSE_RESTRICT b, float* HYNAPSE_RESTRICT c,
                    std::size_t i0, std::size_t i1, std::size_t mt,
                    std::size_t k, std::size_t n) {
  std::size_t i = i0;
  for (; i + kTileRows <= i1; i += kTileRows) {
    std::size_t j0 = 0;
    for (; j0 + kTileCols <= n; j0 += kTileCols) {
      V16 c00{}, c01{}, c10{}, c11{}, c20{}, c21{}, c30{}, c31{};
      for (std::size_t p = 0; p < k; ++p) {
        const float* HYNAPSE_RESTRICT ap = at + p * mt + i;
        const float* HYNAPSE_RESTRICT bp = b + p * n + j0;
        const V16 b0 = load16(bp);
        const V16 b1 = load16(bp + 16);
        V16 w;
        w = splat16(ap[0]);
        c00 += w * b0;
        c01 += w * b1;
        w = splat16(ap[1]);
        c10 += w * b0;
        c11 += w * b1;
        w = splat16(ap[2]);
        c20 += w * b0;
        c21 += w * b1;
        w = splat16(ap[3]);
        c30 += w * b0;
        c31 += w * b1;
      }
      float* HYNAPSE_RESTRICT c0 = c + i * n + j0;
      store16(c0, c00);
      store16(c0 + 16, c01);
      store16(c0 + n, c10);
      store16(c0 + n + 16, c11);
      store16(c0 + 2 * n, c20);
      store16(c0 + 2 * n + 16, c21);
      store16(c0 + 3 * n, c30);
      store16(c0 + 3 * n + 16, c31);
    }
    for (std::size_t r = 0; r < kTileRows; ++r) {
      if (j0 >= n) break;
      float* HYNAPSE_RESTRICT ci = c + (i + r) * n + j0;
      const std::size_t jw = n - j0;
      std::fill(ci, ci + jw, 0.0f);
      for (std::size_t p = 0; p < k; ++p) {
        const float w = at[p * mt + i + r];
        const float* HYNAPSE_RESTRICT bp = b + p * n + j0;
        for (std::size_t j = 0; j < jw; ++j) ci[j] += w * bp[j];
      }
    }
  }
  for (; i < i1; ++i) {
    float* HYNAPSE_RESTRICT ci = c + i * n;
    std::fill(ci, ci + n, 0.0f);
    for (std::size_t p = 0; p < k; ++p) {
      const float w = at[p * mt + i];
      const float* HYNAPSE_RESTRICT bp = b + p * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += w * bp[j];
    }
  }
}

}  // namespace

namespace detail {

const KernelOps* simd512_kernel_ops() noexcept {
  static constexpr KernelOps ops{gemm_kernel, gemm_bt_kernel, gemm_at_kernel};
  static const bool supported = __builtin_cpu_supports("avx512f");
  if (!supported) return nullptr;
  return &ops;
}

}  // namespace detail

}  // namespace hynapse::ann::backends

#else  // !HYNAPSE_SIMD_AVX512

namespace hynapse::ann::backends::detail {

const KernelOps* simd512_kernel_ops() noexcept { return nullptr; }

}  // namespace hynapse::ann::backends::detail

#endif
