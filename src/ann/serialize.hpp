// Binary model serialization so bench harnesses can train the Table-I
// network once and reuse it across every figure reproduction.
#pragma once

#include <optional>
#include <string>

#include "ann/mlp.hpp"

namespace hynapse::ann {

/// Writes layer sizes, weights and biases in a little-endian binary format
/// with a magic/version header. Throws std::runtime_error on I/O failure.
void save_mlp(const Mlp& net, const std::string& path);

/// Loads a model written by save_mlp; returns nullopt if the file is absent
/// or malformed (callers fall back to retraining).
[[nodiscard]] std::optional<Mlp> load_mlp(const std::string& path);

}  // namespace hynapse::ann
