#include "ann/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ann/workspace.hpp"
#include "util/rng.hpp"

namespace hynapse::ann {

Mlp::Mlp(std::vector<std::size_t> layer_sizes, std::uint64_t seed,
         Activation hidden_activation)
    : sizes_{std::move(layer_sizes)}, activation_{hidden_activation} {
  if (sizes_.size() < 2)
    throw std::invalid_argument{"Mlp: need at least input and output layers"};
  for (std::size_t s : sizes_)
    if (s == 0) throw std::invalid_argument{"Mlp: zero-width layer"};

  util::Rng rng{seed};
  weights_.reserve(sizes_.size() - 1);
  biases_.reserve(sizes_.size() - 1);
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    const std::size_t fan_in = sizes_[l];
    const std::size_t fan_out = sizes_[l + 1];
    Matrix w{fan_in, fan_out};
    const double bound =
        std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
    for (float& x : w.data())
      x = static_cast<float>(rng.uniform(-bound, bound));
    weights_.push_back(std::move(w));
    biases_.emplace_back(fan_out, 0.0f);
  }
}

std::size_t Mlp::neuron_count() const noexcept {
  std::size_t n = 0;
  for (std::size_t s : sizes_) n += s;
  return n;
}

std::size_t Mlp::synapse_count() const noexcept {
  std::size_t n = 0;
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l)
    n += sizes_[l] * sizes_[l + 1] + sizes_[l + 1];
  return n;
}

void sigmoid_inplace(Matrix& m) {
  for (float& x : m.data()) x = 1.0f / (1.0f + std::exp(-x));
}

void tanh_lecun_inplace(Matrix& m) {
  for (float& x : m.data())
    x = 1.7159f * std::tanh(0.6666667f * x);
}

void relu_inplace(Matrix& m) {
  for (float& x : m.data()) x = x > 0.0f ? x : 0.0f;
}

void activate_inplace(Matrix& m, Activation a) {
  switch (a) {
    case Activation::sigmoid: sigmoid_inplace(m); break;
    case Activation::tanh_lecun: tanh_lecun_inplace(m); break;
    case Activation::relu: relu_inplace(m); break;
  }
}

float activation_derivative(float a, Activation act) noexcept {
  switch (act) {
    case Activation::sigmoid:
      return a * (1.0f - a);
    case Activation::tanh_lecun: {
      const float t = a / 1.7159f;
      return 1.1439333f * (1.0f - t * t);
    }
    case Activation::relu:
      return a > 0.0f ? 1.0f : 0.0f;
  }
  return 0.0f;
}

void softmax_rows_inplace(Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    float* r = m.row(i);
    const float mx = *std::max_element(r, r + m.cols());
    float sum = 0.0f;
    for (std::size_t j = 0; j < m.cols(); ++j) {
      r[j] = std::exp(r[j] - mx);
      sum += r[j];
    }
    const float inv = 1.0f / sum;
    for (std::size_t j = 0; j < m.cols(); ++j) r[j] *= inv;
  }
}

void Mlp::forward_full(const Matrix& input,
                       std::vector<Matrix>& activations) const {
  if (input.cols() != sizes_.front())
    throw std::invalid_argument{"Mlp::forward: input width mismatch"};
  activations.resize(sizes_.size());
  activations[0] = input;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    Matrix& out = activations[l + 1];
    if (out.rows() != input.rows() || out.cols() != sizes_[l + 1])
      out = Matrix{input.rows(), sizes_[l + 1]};
    gemm(activations[l], weights_[l], out);
    add_row_bias(out, biases_[l]);
    if (l + 1 < weights_.size()) {
      activate_inplace(out, activation_);
    } else {
      softmax_rows_inplace(out);
    }
  }
}

Matrix Mlp::forward(const Matrix& input) const {
  std::vector<Matrix> acts;
  forward_full(input, acts);
  return std::move(acts.back());
}

std::vector<std::uint8_t> Mlp::predict(const Matrix& input) const {
  const Matrix out = forward(input);
  std::vector<std::uint8_t> labels(out.rows());
  for (std::size_t i = 0; i < out.rows(); ++i) {
    const float* r = out.row(i);
    labels[i] = static_cast<std::uint8_t>(
        std::max_element(r, r + out.cols()) - r);
  }
  return labels;
}

double Mlp::accuracy(const Matrix& input,
                     std::span<const std::uint8_t> labels) const {
  if (labels.size() != input.rows())
    throw std::invalid_argument{"Mlp::accuracy: label count mismatch"};
  const std::vector<std::uint8_t> pred = predict(input);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < labels.size(); ++i)
    if (pred[i] == labels[i]) ++hits;
  return static_cast<double>(hits) / static_cast<double>(labels.size());
}

double Mlp::accuracy(const Matrix& input, std::span<const std::uint8_t> labels,
                     EvalWorkspace& workspace) const {
  if (labels.size() != input.rows())
    throw std::invalid_argument{"Mlp::accuracy: label count mismatch"};
  if (input.cols() != sizes_.front())
    throw std::invalid_argument{"Mlp::forward: input width mismatch"};
  workspace.bind(*this);
  const backends::Backend backend = workspace.backend_;
  const std::size_t rows = input.rows();
  const std::size_t batch = workspace.batch_rows();
  Matrix* cur = &workspace.front_;
  Matrix* nxt = &workspace.back_;
  std::size_t hits = 0;
  for (std::size_t r0 = 0; r0 < rows; r0 += batch) {
    const std::size_t m = std::min(batch, rows - r0);
    // The GEMMs run serially: the chip loop above this call is already
    // data-parallel, and serial kernels keep each worker's batch resident
    // in its own cache slice.
    cur->reshape(m, sizes_[1]);
    gemm_block(input.row(r0), m, weights_[0], *cur, /*parallel=*/false,
               backend);
    add_row_bias(*cur, biases_[0]);
    if (weights_.size() == 1) {
      softmax_rows_inplace(*cur);
    } else {
      activate_inplace(*cur, activation_);
    }
    for (std::size_t l = 1; l < weights_.size(); ++l) {
      nxt->reshape(m, sizes_[l + 1]);
      gemm(*cur, weights_[l], *nxt, /*parallel=*/false, backend);
      add_row_bias(*nxt, biases_[l]);
      if (l + 1 < weights_.size()) {
        activate_inplace(*nxt, activation_);
      } else {
        softmax_rows_inplace(*nxt);
      }
      std::swap(cur, nxt);
    }
    for (std::size_t i = 0; i < m; ++i) {
      const float* r = cur->row(i);
      const auto pred = static_cast<std::uint8_t>(
          std::max_element(r, r + cur->cols()) - r);
      if (pred == labels[r0 + i]) ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(labels.size());
}

void Mlp::accuracy_group(const Matrix& input,
                         std::span<const std::uint8_t> labels,
                         GroupEvalWorkspace& workspace, std::size_t group,
                         const GroupMutator& mutate,
                         std::span<double> accuracies) const {
  if (labels.size() != input.rows())
    throw std::invalid_argument{"Mlp::accuracy: label count mismatch"};
  if (input.cols() != sizes_.front())
    throw std::invalid_argument{"Mlp::forward: input width mismatch"};
  if (accuracies.size() < group)
    throw std::invalid_argument{"Mlp::accuracy_group: accuracies too small"};
  if (group == 0) return;
  workspace.bind(*this, group);
  const backends::Backend backend = workspace.backend_;
  const std::size_t rows = input.rows();
  const std::size_t batch = workspace.batch_rows_;
  const std::size_t num_layers = weights_.size();
  std::fill(workspace.hits_.begin(), workspace.hits_.begin() + group, 0u);
  for (std::size_t r0 = 0; r0 < rows; r0 += batch) {
    const std::size_t m = std::min(batch, rows - r0);
    for (std::size_t l = 0; l < num_layers; ++l) {
      // Chip loop innermost: weights_[l] is streamed once per mini-batch
      // and reused hot by every chip in the group. Layer l writes the
      // (l & 1) panel, so all chips ping-pong in lockstep.
      std::vector<Matrix>& outs = (l & 1) ? workspace.back_ : workspace.front_;
      std::vector<Matrix>& ins = (l & 1) ? workspace.front_ : workspace.back_;
      for (std::size_t c = 0; c < group; ++c) {
        Matrix& out = outs[c];
        out.reshape(m, sizes_[l + 1]);  // may allocate: before apply
        mutate(c, l, /*apply=*/true);
        if (l == 0) {
          gemm_block(input.row(r0), m, weights_[0], out, /*parallel=*/false,
                     backend);
        } else {
          gemm(ins[c], weights_[l], out, /*parallel=*/false, backend);
        }
        add_row_bias(out, biases_[l]);
        mutate(c, l, /*apply=*/false);
        if (l + 1 < num_layers) {
          activate_inplace(out, activation_);
        } else {
          softmax_rows_inplace(out);
        }
      }
    }
    const std::vector<Matrix>& finals =
        ((num_layers - 1) & 1) ? workspace.back_ : workspace.front_;
    for (std::size_t c = 0; c < group; ++c) {
      const Matrix& out = finals[c];
      for (std::size_t i = 0; i < m; ++i) {
        const float* r = out.row(i);
        const auto pred = static_cast<std::uint8_t>(
            std::max_element(r, r + out.cols()) - r);
        if (pred == labels[r0 + i]) ++workspace.hits_[c];
      }
    }
  }
  for (std::size_t c = 0; c < group; ++c) {
    accuracies[c] = static_cast<double>(workspace.hits_[c]) /
                    static_cast<double>(labels.size());
  }
}

}  // namespace hynapse::ann
