// Mini-batch SGD backpropagation trainer with momentum (the paper trains its
// benchmark with the standard backprop algorithm [12] via the deep learning
// toolbox [22]).
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "ann/mlp.hpp"

namespace hynapse::ann {

struct TrainConfig {
  std::size_t epochs = 10;
  std::size_t batch_size = 64;
  double learning_rate = 0.5;
  double momentum = 0.9;
  /// Multiplicative learning-rate decay applied after each epoch.
  double lr_decay = 0.85;
  std::uint64_t shuffle_seed = 1234;
  /// Invoked after each epoch with (epoch index, mean training loss).
  std::function<void(std::size_t, double)> on_epoch;
};

/// Trains in place with softmax cross-entropy loss; returns the final mean
/// training loss. `labels` are class indices aligned with `inputs` rows.
double train_sgd(Mlp& net, const Matrix& inputs,
                 std::span<const std::uint8_t> labels,
                 const TrainConfig& config);

/// Mean softmax cross-entropy of the network on a labelled set.
[[nodiscard]] double cross_entropy(const Mlp& net, const Matrix& inputs,
                                   std::span<const std::uint8_t> labels);

}  // namespace hynapse::ann
