// Dense row-major float matrix with the handful of BLAS-like kernels the MLP
// needs. Single precision is the right trade for the ANN level (weights are
// ultimately quantized to 8 bits anyway); the circuit level uses doubles.
//
// Kernel determinism: every GEMM variant (including gemm_naive and the raw
// gemm_block entry point) accumulates each output element c[i][j] over the
// inner dimension in ascending p order, so all of them — and any row
// partitioning across threads or mini-batches — produce bit-identical
// results. Blocking/tiling only reorders which *elements* are computed when,
// never the addition order within an element (docs/performance.md).
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "ann/backends/backend.hpp"

namespace hynapse::ann {

class Matrix {
 public:
  Matrix() = default;
  /// Zero-initialized rows x cols matrix.
  Matrix(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return rows_ * cols_; }

  [[nodiscard]] float& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] float at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] float* row(std::size_t r) { return data_.data() + r * cols_; }
  [[nodiscard]] const float* row(std::size_t r) const {
    return data_.data() + r * cols_;
  }

  [[nodiscard]] std::span<float> data() noexcept {
    return {data_.data(), size()};
  }
  [[nodiscard]] std::span<const float> data() const noexcept {
    return {data_.data(), size()};
  }

  void fill(float value);

  /// Preallocates storage for a rows x cols shape without changing the
  /// current dimensions (workspace warm-up; see reshape()).
  void reserve(std::size_t rows, std::size_t cols);

  /// Changes the dimensions in place, reusing the existing storage. The
  /// backing vector only ever grows (shrinking just narrows the logical
  /// extent), so a warmed-up scratch matrix can be reshaped inside a hot
  /// loop with no allocation and no re-zeroing of grown elements. Element
  /// values are unspecified after a reshape (kernels writing the full
  /// output don't pay for zeroing).
  void reshape(std::size_t rows, std::size_t cols);

  friend bool operator==(const Matrix& a, const Matrix& b) noexcept {
    // Compare the logical extent only: grow-only scratch storage may hold a
    // stale tail beyond rows*cols.
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ &&
           std::equal(a.data().begin(), a.data().end(), b.data().begin());
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// c = a * b. Dimensions must agree (throws std::invalid_argument).
/// Dispatches to the selected backend's register-tiled i-k-j kernel
/// (backends::kernel_ops; see ann/backends/backend.hpp for the determinism
/// contract — every backend is bit-identical to gemm_naive); optionally
/// multithreaded over row blocks.
void gemm(const Matrix& a, const Matrix& b, Matrix& c, bool parallel = true,
          backends::Backend backend = backends::Backend::reference);

/// c = a_rows * b where `a_rows` points at `m` contiguous row-major rows of
/// width b.rows(). Same kernel as gemm(); the workspace forward path feeds
/// mini-batches straight out of the caller's input matrix through this
/// overload, so no staging copy is needed. c must already be m x b.cols().
void gemm_block(const float* a_rows, std::size_t m, const Matrix& b, Matrix& c,
                bool parallel = false,
                backends::Backend backend = backends::Backend::reference);

/// c = a * b^T (used by the backward pass). Per-element accumulation stays
/// in ascending p order in every backend (a strict-FP dot product cannot be
/// vectorized, so the kernels take their ILP from independent output
/// columns).
void gemm_bt(const Matrix& a, const Matrix& b_transposed, Matrix& c,
             bool parallel = true,
             backends::Backend backend = backends::Backend::reference);

/// c = a^T * b (used for weight gradients).
void gemm_at(const Matrix& a_transposed, const Matrix& b, Matrix& c,
             bool parallel = true,
             backends::Backend backend = backends::Backend::reference);

/// Reference implementation for testing the optimized kernels.
void gemm_naive(const Matrix& a, const Matrix& b, Matrix& c);

/// y += row-broadcast bias (bias has size y.cols()).
void add_row_bias(Matrix& y, std::span<const float> bias);

}  // namespace hynapse::ann
