// Dense row-major float matrix with the handful of BLAS-like kernels the MLP
// needs. Single precision is the right trade for the ANN level (weights are
// ultimately quantized to 8 bits anyway); the circuit level uses doubles.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hynapse::ann {

class Matrix {
 public:
  Matrix() = default;
  /// Zero-initialized rows x cols matrix.
  Matrix(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  [[nodiscard]] float& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] float at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] float* row(std::size_t r) { return data_.data() + r * cols_; }
  [[nodiscard]] const float* row(std::size_t r) const {
    return data_.data() + r * cols_;
  }

  [[nodiscard]] std::span<float> data() noexcept { return data_; }
  [[nodiscard]] std::span<const float> data() const noexcept { return data_; }

  void fill(float value);

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// c = a * b. Dimensions must agree (throws std::invalid_argument).
/// Cache-blocked i-k-j loop order with a vectorizable inner loop; optionally
/// multithreaded over row blocks.
void gemm(const Matrix& a, const Matrix& b, Matrix& c, bool parallel = true);

/// c = a * b^T (used by the backward pass).
void gemm_bt(const Matrix& a, const Matrix& b_transposed, Matrix& c,
             bool parallel = true);

/// c = a^T * b (used for weight gradients).
void gemm_at(const Matrix& a_transposed, const Matrix& b, Matrix& c,
             bool parallel = true);

/// Reference implementation for testing the optimized kernels.
void gemm_naive(const Matrix& a, const Matrix& b, Matrix& c);

/// y += row-broadcast bias (bias has size y.cols()).
void add_row_bias(Matrix& y, std::span<const float> bias);

}  // namespace hynapse::ann
