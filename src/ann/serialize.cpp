#include "ann/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace hynapse::ann {

namespace {

constexpr std::uint32_t kMagic = 0x48594d4cu;  // "HYML"
constexpr std::uint32_t kVersion = 2;

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool read_pod(std::ifstream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

void save_mlp(const Mlp& net, const std::string& path) {
  std::ofstream out{path, std::ios::binary};
  if (!out) throw std::runtime_error{"save_mlp: cannot open " + path};
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint8_t>(net.hidden_activation()));
  const auto& sizes = net.layer_sizes();
  write_pod(out, static_cast<std::uint32_t>(sizes.size()));
  for (std::size_t s : sizes) write_pod(out, static_cast<std::uint64_t>(s));
  for (std::size_t l = 0; l < net.num_weight_layers(); ++l) {
    const Matrix& w = net.weight(l);
    out.write(reinterpret_cast<const char*>(w.data().data()),
              static_cast<std::streamsize>(w.size() * sizeof(float)));
    const auto& b = net.bias(l);
    out.write(reinterpret_cast<const char*>(b.data()),
              static_cast<std::streamsize>(b.size() * sizeof(float)));
  }
  if (!out) throw std::runtime_error{"save_mlp: write failed for " + path};
}

std::optional<Mlp> load_mlp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return std::nullopt;
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t num_sizes = 0;
  if (!read_pod(in, magic) || magic != kMagic) return std::nullopt;
  if (!read_pod(in, version) || version != kVersion) return std::nullopt;
  std::uint8_t activation = 0;
  if (!read_pod(in, activation) || activation > 2) return std::nullopt;
  if (!read_pod(in, num_sizes) || num_sizes < 2 || num_sizes > 64)
    return std::nullopt;
  std::vector<std::size_t> sizes(num_sizes);
  for (auto& s : sizes) {
    std::uint64_t v = 0;
    if (!read_pod(in, v) || v == 0 || v > (1u << 24)) return std::nullopt;
    s = static_cast<std::size_t>(v);
  }
  Mlp net{sizes, 0, static_cast<Activation>(activation)};
  for (std::size_t l = 0; l < net.num_weight_layers(); ++l) {
    Matrix& w = net.weight(l);
    in.read(reinterpret_cast<char*>(w.data().data()),
            static_cast<std::streamsize>(w.size() * sizeof(float)));
    auto& b = net.bias(l);
    in.read(reinterpret_cast<char*>(b.data()),
            static_cast<std::streamsize>(b.size() * sizeof(float)));
    if (!in) return std::nullopt;
  }
  return net;
}

}  // namespace hynapse::ann
