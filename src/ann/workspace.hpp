// Preallocated scratch for repeated forward passes (the chip-evaluation hot
// path). A forward pass only ever needs the current and the next layer's
// activations, so the workspace holds two ping-pong matrices sized for one
// mini-batch x the widest layer; Mlp::accuracy(input, labels, workspace)
// walks the test set in mini-batches through them. After the first bind()
// the per-batch loop performs no heap allocation (Matrix::reshape reuses
// capacity), and because every kernel is row-independent the mini-batched
// result is bit-identical to the whole-set overload for any batch size.
//
// Both workspaces carry the kernel backend selection (ann/backends): the
// backend changes which KernelOps table the forward GEMMs dispatch to, never
// the results (see the determinism contract in backend.hpp).
#pragma once

#include <cstddef>
#include <vector>

#include "ann/matrix.hpp"

namespace hynapse::ann {

class Mlp;

class EvalWorkspace {
 public:
  /// Mini-batch row count: 256 rows x 1000 columns (the widest Table-I
  /// layer) is a 1 MB activation panel — big enough to amortize streaming
  /// the weight matrix, small enough to stay cache-resident.
  static constexpr std::size_t kDefaultBatchRows = 256;

  EvalWorkspace() = default;
  explicit EvalWorkspace(std::size_t batch_rows)
      : batch_rows_{batch_rows == 0 ? kDefaultBatchRows : batch_rows} {}

  [[nodiscard]] std::size_t batch_rows() const noexcept { return batch_rows_; }

  [[nodiscard]] backends::Backend backend() const noexcept { return backend_; }
  void set_backend(backends::Backend backend) noexcept { backend_ = backend; }

  /// Grow-only: ensures both activation buffers can hold a batch_rows x
  /// widest-layer block of `net`. Called by the accuracy overload itself;
  /// explicit warm-up is only needed to move the allocation out of a timed
  /// region.
  void bind(const Mlp& net);

 private:
  friend class Mlp;

  std::size_t batch_rows_ = kDefaultBatchRows;
  backends::Backend backend_ = backends::Backend::reference;
  Matrix front_;
  Matrix back_;
};

/// Scratch for Mlp::accuracy_group: one ping-pong panel pair per chip in the
/// fused group, so all chips of one (config, vdd) point can share a single
/// traversal of the weight matrices. Grow-only like EvalWorkspace — after
/// the first bind() at a given (group, network) high-water mark, the fused
/// loop performs no heap allocation.
class GroupEvalWorkspace {
 public:
  GroupEvalWorkspace() = default;
  explicit GroupEvalWorkspace(std::size_t batch_rows)
      : batch_rows_{batch_rows == 0 ? EvalWorkspace::kDefaultBatchRows
                                    : batch_rows} {}

  [[nodiscard]] std::size_t batch_rows() const noexcept { return batch_rows_; }

  [[nodiscard]] backends::Backend backend() const noexcept { return backend_; }
  void set_backend(backends::Backend backend) noexcept { backend_ = backend; }

  /// Ensures panels for `group` chips sized for `net` (grow-only).
  void bind(const Mlp& net, std::size_t group);

 private:
  friend class Mlp;

  std::size_t batch_rows_ = EvalWorkspace::kDefaultBatchRows;
  backends::Backend backend_ = backends::Backend::reference;
  std::vector<Matrix> front_;
  std::vector<Matrix> back_;
  std::vector<std::size_t> hits_;
};

}  // namespace hynapse::ann
