// Preallocated scratch for repeated forward passes (the chip-evaluation hot
// path). A forward pass only ever needs the current and the next layer's
// activations, so the workspace holds two ping-pong matrices sized for one
// mini-batch x the widest layer; Mlp::accuracy(input, labels, workspace)
// walks the test set in mini-batches through them. After the first bind()
// the per-batch loop performs no heap allocation (Matrix::reshape reuses
// capacity), and because every kernel is row-independent the mini-batched
// result is bit-identical to the whole-set overload for any batch size.
#pragma once

#include <cstddef>

#include "ann/matrix.hpp"

namespace hynapse::ann {

class Mlp;

class EvalWorkspace {
 public:
  /// Mini-batch row count: 256 rows x 1000 columns (the widest Table-I
  /// layer) is a 1 MB activation panel — big enough to amortize streaming
  /// the weight matrix, small enough to stay cache-resident.
  static constexpr std::size_t kDefaultBatchRows = 256;

  EvalWorkspace() = default;
  explicit EvalWorkspace(std::size_t batch_rows)
      : batch_rows_{batch_rows == 0 ? kDefaultBatchRows : batch_rows} {}

  [[nodiscard]] std::size_t batch_rows() const noexcept { return batch_rows_; }

  /// Grow-only: ensures both activation buffers can hold a batch_rows x
  /// widest-layer block of `net`. Called by the accuracy overload itself;
  /// explicit warm-up is only needed to move the allocation out of a timed
  /// region.
  void bind(const Mlp& net);

 private:
  friend class Mlp;

  std::size_t batch_rows_ = kDefaultBatchRows;
  Matrix front_;
  Matrix back_;
};

}  // namespace hynapse::ann
