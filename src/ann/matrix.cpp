#include "ann/matrix.hpp"

#include <cstring>
#include <stdexcept>

#include "ann/backends/backend.hpp"
#include "ann/backends/kernels_detail.hpp"
#include "util/parallel.hpp"

namespace hynapse::ann {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_{rows}, cols_{cols}, data_(rows * cols, 0.0f) {}

void Matrix::fill(float value) {
  const std::span<float> logical = data();
  std::fill(logical.begin(), logical.end(), value);
}

void Matrix::reserve(std::size_t rows, std::size_t cols) {
  data_.reserve(rows * cols);
}

void Matrix::reshape(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  // Grow-only: shrinking just narrows the logical extent, so alternating
  // layer widths in a hot loop never re-zero (or reallocate) the backing
  // store once it has reached its high-water mark.
  if (data_.size() < rows * cols) data_.resize(rows * cols);
}

namespace {

void check_gemm(std::size_t ar, std::size_t ac, std::size_t br,
                std::size_t bc, std::size_t cr, std::size_t cc) {
  if (ac != br || cr != ar || cc != bc)
    throw std::invalid_argument{"gemm: dimension mismatch"};
}

// The kernel bodies themselves live in ann/backends/{reference,simd}.cpp;
// this TU owns the shape checks and the parallel row partitioning, both of
// which are backend-independent (every backend's gemm/gemm_bt are
// row-partitionable bit-for-bit, and gemm_at takes an explicit row range).
void gemm_dispatch(const float* a, const Matrix& b, Matrix& c, std::size_t m,
                   bool parallel, backends::Backend backend) {
  const backends::KernelOps& ops = backends::kernel_ops(backend);
  const std::size_t k = b.rows();
  const std::size_t n = b.cols();
  const auto body = [&](std::size_t r0, std::size_t r1) {
    ops.gemm(a + r0 * k, b.row(0), c.row(r0), r1 - r0, k, n);
  };
  if (parallel && m >= 64) {
    util::parallel_for_chunks(m, body);
  } else {
    body(0, m);
  }
}

}  // namespace

void gemm(const Matrix& a, const Matrix& b, Matrix& c, bool parallel,
          backends::Backend backend) {
  check_gemm(a.rows(), a.cols(), b.rows(), b.cols(), c.rows(), c.cols());
  gemm_dispatch(a.row(0), b, c, a.rows(), parallel, backend);
}

void gemm_block(const float* a_rows, std::size_t m, const Matrix& b,
                Matrix& c, bool parallel, backends::Backend backend) {
  if (c.rows() != m || c.cols() != b.cols())
    throw std::invalid_argument{"gemm_block: dimension mismatch"};
  gemm_dispatch(a_rows, b, c, m, parallel, backend);
}

void gemm_bt(const Matrix& a, const Matrix& bt, Matrix& c, bool parallel,
             backends::Backend backend) {
  // c[i][j] = sum_p a[i][p] * bt[j][p]
  if (a.cols() != bt.cols() || c.rows() != a.rows() || c.cols() != bt.rows())
    throw std::invalid_argument{"gemm_bt: dimension mismatch"};
  const backends::KernelOps& ops = backends::kernel_ops(backend);
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = bt.rows();
  const auto body = [&](std::size_t r0, std::size_t r1) {
    ops.gemm_bt(a.row(r0), bt.row(0), c.row(r0), r1 - r0, k, n);
  };
  if (parallel && m >= 64) {
    util::parallel_for_chunks(m, body);
  } else {
    body(0, m);
  }
}

void gemm_at(const Matrix& at, const Matrix& b, Matrix& c, bool parallel,
             backends::Backend backend) {
  // c[i][j] = sum_p at[p][i] * b[p][j]; c is (at.cols x b.cols).
  if (at.rows() != b.rows() || c.rows() != at.cols() || c.cols() != b.cols())
    throw std::invalid_argument{"gemm_at: dimension mismatch"};
  const backends::KernelOps& ops = backends::kernel_ops(backend);
  const std::size_t k = at.rows();
  const std::size_t m = at.cols();
  const std::size_t n = b.cols();
  const auto body = [&](std::size_t r0, std::size_t r1) {
    ops.gemm_at(at.row(0), b.row(0), c.row(0), r0, r1, m, k, n);
  };
  if (parallel && m >= 64) {
    util::parallel_for_chunks(m, body);
  } else {
    body(0, m);
  }
}

void gemm_naive(const Matrix& a, const Matrix& b, Matrix& c) {
  check_gemm(a.rows(), a.cols(), b.rows(), b.cols(), c.rows(), c.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < a.cols(); ++p)
        acc += a.at(i, p) * b.at(p, j);
      c.at(i, j) = acc;
    }
  }
}

void add_row_bias(Matrix& y, std::span<const float> bias) {
  if (bias.size() != y.cols())
    throw std::invalid_argument{"add_row_bias: size mismatch"};
  const float* HYNAPSE_RESTRICT bs = bias.data();
  for (std::size_t i = 0; i < y.rows(); ++i) {
    float* HYNAPSE_RESTRICT yi = y.row(i);
    for (std::size_t j = 0; j < y.cols(); ++j) yi[j] += bs[j];
  }
}

}  // namespace hynapse::ann
