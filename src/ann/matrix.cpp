#include "ann/matrix.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/parallel.hpp"

namespace hynapse::ann {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_{rows}, cols_{cols}, data_(rows * cols, 0.0f) {}

void Matrix::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

namespace {

void check_gemm(std::size_t ar, std::size_t ac, std::size_t br,
                std::size_t bc, std::size_t cr, std::size_t cc) {
  if (ac != br || cr != ar || cc != bc)
    throw std::invalid_argument{"gemm: dimension mismatch"};
}

}  // namespace

void gemm(const Matrix& a, const Matrix& b, Matrix& c, bool parallel) {
  check_gemm(a.rows(), a.cols(), b.rows(), b.cols(), c.rows(), c.cols());
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  const auto body = [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      float* ci = c.row(i);
      std::fill(ci, ci + n, 0.0f);
      const float* ai = a.row(i);
      for (std::size_t p = 0; p < k; ++p) {
        const float aip = ai[p];
        if (aip == 0.0f) continue;
        const float* bp = b.row(p);
        for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
      }
    }
  };
  if (parallel && m >= 64) {
    util::parallel_for_chunks(m, body);
  } else {
    body(0, m);
  }
}

void gemm_bt(const Matrix& a, const Matrix& bt, Matrix& c, bool parallel) {
  // c[i][j] = sum_p a[i][p] * bt[j][p]
  if (a.cols() != bt.cols() || c.rows() != a.rows() || c.cols() != bt.rows())
    throw std::invalid_argument{"gemm_bt: dimension mismatch"};
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = bt.rows();
  const auto body = [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      const float* ai = a.row(i);
      float* ci = c.row(i);
      for (std::size_t j = 0; j < n; ++j) {
        const float* bj = bt.row(j);
        float acc = 0.0f;
        for (std::size_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
        ci[j] = acc;
      }
    }
  };
  if (parallel && m >= 64) {
    util::parallel_for_chunks(m, body);
  } else {
    body(0, m);
  }
}

void gemm_at(const Matrix& at, const Matrix& b, Matrix& c, bool parallel) {
  // c[i][j] = sum_p at[p][i] * b[p][j]; c is (at.cols x b.cols).
  if (at.rows() != b.rows() || c.rows() != at.cols() || c.cols() != b.cols())
    throw std::invalid_argument{"gemm_at: dimension mismatch"};
  const std::size_t k = at.rows();
  const std::size_t m = at.cols();
  const std::size_t n = b.cols();
  const auto body = [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      float* ci = c.row(i);
      std::fill(ci, ci + n, 0.0f);
      for (std::size_t p = 0; p < k; ++p) {
        const float w = at.at(p, i);
        if (w == 0.0f) continue;
        const float* bp = b.row(p);
        for (std::size_t j = 0; j < n; ++j) ci[j] += w * bp[j];
      }
    }
  };
  if (parallel && m >= 64) {
    util::parallel_for_chunks(m, body);
  } else {
    body(0, m);
  }
}

void gemm_naive(const Matrix& a, const Matrix& b, Matrix& c) {
  check_gemm(a.rows(), a.cols(), b.rows(), b.cols(), c.rows(), c.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < a.cols(); ++p)
        acc += a.at(i, p) * b.at(p, j);
      c.at(i, j) = acc;
    }
  }
}

void add_row_bias(Matrix& y, std::span<const float> bias) {
  if (bias.size() != y.cols())
    throw std::invalid_argument{"add_row_bias: size mismatch"};
  for (std::size_t i = 0; i < y.rows(); ++i) {
    float* yi = y.row(i);
    for (std::size_t j = 0; j < y.cols(); ++j) yi[j] += bias[j];
  }
}

}  // namespace hynapse::ann
