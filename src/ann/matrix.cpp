#include "ann/matrix.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "util/parallel.hpp"

#if defined(_MSC_VER)
#define HYNAPSE_RESTRICT __restrict
#else
#define HYNAPSE_RESTRICT __restrict__
#endif

namespace hynapse::ann {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_{rows}, cols_{cols}, data_(rows * cols, 0.0f) {}

void Matrix::fill(float value) {
  const std::span<float> logical = data();
  std::fill(logical.begin(), logical.end(), value);
}

void Matrix::reserve(std::size_t rows, std::size_t cols) {
  data_.reserve(rows * cols);
}

void Matrix::reshape(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  // Grow-only: shrinking just narrows the logical extent, so alternating
  // layer widths in a hot loop never re-zero (or reallocate) the backing
  // store once it has reached its high-water mark.
  if (data_.size() < rows * cols) data_.resize(rows * cols);
}

namespace {

void check_gemm(std::size_t ar, std::size_t ac, std::size_t br,
                std::size_t bc, std::size_t cr, std::size_t cc) {
  if (ac != br || cr != ar || cc != bc)
    throw std::invalid_argument{"gemm: dimension mismatch"};
}

// Micro-tile shape for the i-k-j kernel below. 4 rows x 16 columns of
// accumulators is 64 floats — small enough for the compiler to keep in
// vector registers across the whole p loop, which is what removes the
// per-iteration C load/store traffic that bounds the plain i-p-j loop.
constexpr std::size_t kTileRows = 4;
constexpr std::size_t kTileCols = 16;

// c (m x n, fully overwritten) = a (m x k) * b (k x n), all row-major and
// contiguous. Every output element accumulates over p in ascending order in
// every branch below, so the kernel is bit-identical to gemm_naive and
// independent of how callers partition rows.
void gemm_kernel(const float* HYNAPSE_RESTRICT a,
                 const float* HYNAPSE_RESTRICT b, float* HYNAPSE_RESTRICT c,
                 std::size_t m, std::size_t k, std::size_t n) {
  std::size_t j0 = 0;
  for (; j0 + kTileCols <= n; j0 += kTileCols) {
    std::size_t i = 0;
    for (; i + kTileRows <= m; i += kTileRows) {
      const float* HYNAPSE_RESTRICT a0 = a + i * k;
      const float* HYNAPSE_RESTRICT a1 = a0 + k;
      const float* HYNAPSE_RESTRICT a2 = a1 + k;
      const float* HYNAPSE_RESTRICT a3 = a2 + k;
      float acc0[kTileCols] = {};
      float acc1[kTileCols] = {};
      float acc2[kTileCols] = {};
      float acc3[kTileCols] = {};
      for (std::size_t p = 0; p < k; ++p) {
        const float* HYNAPSE_RESTRICT bp = b + p * n + j0;
        const float a0p = a0[p];
        const float a1p = a1[p];
        const float a2p = a2[p];
        const float a3p = a3[p];
        for (std::size_t j = 0; j < kTileCols; ++j) {
          acc0[j] += a0p * bp[j];
          acc1[j] += a1p * bp[j];
          acc2[j] += a2p * bp[j];
          acc3[j] += a3p * bp[j];
        }
      }
      std::memcpy(c + i * n + j0, acc0, sizeof(acc0));
      std::memcpy(c + (i + 1) * n + j0, acc1, sizeof(acc1));
      std::memcpy(c + (i + 2) * n + j0, acc2, sizeof(acc2));
      std::memcpy(c + (i + 3) * n + j0, acc3, sizeof(acc3));
    }
    for (; i < m; ++i) {
      const float* HYNAPSE_RESTRICT ai = a + i * k;
      float acc[kTileCols] = {};
      for (std::size_t p = 0; p < k; ++p) {
        const float* HYNAPSE_RESTRICT bp = b + p * n + j0;
        const float aip = ai[p];
        for (std::size_t j = 0; j < kTileCols; ++j) acc[j] += aip * bp[j];
      }
      std::memcpy(c + i * n + j0, acc, sizeof(acc));
    }
  }
  if (j0 < n) {
    // Column remainder (n % 16): same loop structure with a runtime-width
    // tile accumulated directly in C (at most 15 columns, so the extra C
    // traffic is negligible).
    const std::size_t jw = n - j0;
    for (std::size_t i = 0; i < m; ++i) {
      const float* HYNAPSE_RESTRICT ai = a + i * k;
      float* HYNAPSE_RESTRICT ci = c + i * n + j0;
      std::fill(ci, ci + jw, 0.0f);
      for (std::size_t p = 0; p < k; ++p) {
        const float* HYNAPSE_RESTRICT bp = b + p * n + j0;
        const float aip = ai[p];
        for (std::size_t j = 0; j < jw; ++j) ci[j] += aip * bp[j];
      }
    }
  }
}

void gemm_dispatch(const float* a, const Matrix& b, Matrix& c, std::size_t m,
                   bool parallel) {
  const std::size_t k = b.rows();
  const std::size_t n = b.cols();
  const auto body = [&](std::size_t r0, std::size_t r1) {
    gemm_kernel(a + r0 * k, b.row(0), c.row(r0), r1 - r0, k, n);
  };
  if (parallel && m >= 64) {
    util::parallel_for_chunks(m, body);
  } else {
    body(0, m);
  }
}

}  // namespace

void gemm(const Matrix& a, const Matrix& b, Matrix& c, bool parallel) {
  check_gemm(a.rows(), a.cols(), b.rows(), b.cols(), c.rows(), c.cols());
  gemm_dispatch(a.row(0), b, c, a.rows(), parallel);
}

void gemm_block(const float* a_rows, std::size_t m, const Matrix& b,
                Matrix& c, bool parallel) {
  if (c.rows() != m || c.cols() != b.cols())
    throw std::invalid_argument{"gemm_block: dimension mismatch"};
  gemm_dispatch(a_rows, b, c, m, parallel);
}

void gemm_bt(const Matrix& a, const Matrix& bt, Matrix& c, bool parallel) {
  // c[i][j] = sum_p a[i][p] * bt[j][p]
  if (a.cols() != bt.cols() || c.rows() != a.rows() || c.cols() != bt.rows())
    throw std::invalid_argument{"gemm_bt: dimension mismatch"};
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = bt.rows();
  const auto body = [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      const float* HYNAPSE_RESTRICT ai = a.row(i);
      float* HYNAPSE_RESTRICT ci = c.row(i);
      std::size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        // Four independent dot products: each keeps its strict ascending-p
        // order (so results stay bit-identical) but the four chains overlap
        // in the pipeline.
        const float* HYNAPSE_RESTRICT b0 = bt.row(j);
        const float* HYNAPSE_RESTRICT b1 = b0 + k;
        const float* HYNAPSE_RESTRICT b2 = b1 + k;
        const float* HYNAPSE_RESTRICT b3 = b2 + k;
        float s0 = 0.0f;
        float s1 = 0.0f;
        float s2 = 0.0f;
        float s3 = 0.0f;
        for (std::size_t p = 0; p < k; ++p) {
          const float ap = ai[p];
          s0 += ap * b0[p];
          s1 += ap * b1[p];
          s2 += ap * b2[p];
          s3 += ap * b3[p];
        }
        ci[j] = s0;
        ci[j + 1] = s1;
        ci[j + 2] = s2;
        ci[j + 3] = s3;
      }
      for (; j < n; ++j) {
        const float* HYNAPSE_RESTRICT bj = bt.row(j);
        float acc = 0.0f;
        for (std::size_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
        ci[j] = acc;
      }
    }
  };
  if (parallel && m >= 64) {
    util::parallel_for_chunks(m, body);
  } else {
    body(0, m);
  }
}

void gemm_at(const Matrix& at, const Matrix& b, Matrix& c, bool parallel) {
  // c[i][j] = sum_p at[p][i] * b[p][j]; c is (at.cols x b.cols). Same
  // micro-tile as gemm_kernel — the four A scalars per p step are the
  // contiguous at[p][i..i+3], so the transposed layout costs nothing.
  if (at.rows() != b.rows() || c.rows() != at.cols() || c.cols() != b.cols())
    throw std::invalid_argument{"gemm_at: dimension mismatch"};
  const std::size_t k = at.rows();
  const std::size_t m = at.cols();
  const std::size_t n = b.cols();
  const auto body = [&](std::size_t r0, std::size_t r1) {
    std::size_t i = r0;
    for (; i + kTileRows <= r1; i += kTileRows) {
      std::size_t j0 = 0;
      for (; j0 + kTileCols <= n; j0 += kTileCols) {
        float acc0[kTileCols] = {};
        float acc1[kTileCols] = {};
        float acc2[kTileCols] = {};
        float acc3[kTileCols] = {};
        for (std::size_t p = 0; p < k; ++p) {
          const float* HYNAPSE_RESTRICT ap = at.row(p) + i;
          const float* HYNAPSE_RESTRICT bp = b.row(p) + j0;
          const float w0 = ap[0];
          const float w1 = ap[1];
          const float w2 = ap[2];
          const float w3 = ap[3];
          for (std::size_t j = 0; j < kTileCols; ++j) {
            acc0[j] += w0 * bp[j];
            acc1[j] += w1 * bp[j];
            acc2[j] += w2 * bp[j];
            acc3[j] += w3 * bp[j];
          }
        }
        std::memcpy(c.row(i) + j0, acc0, sizeof(acc0));
        std::memcpy(c.row(i + 1) + j0, acc1, sizeof(acc1));
        std::memcpy(c.row(i + 2) + j0, acc2, sizeof(acc2));
        std::memcpy(c.row(i + 3) + j0, acc3, sizeof(acc3));
      }
      for (std::size_t r = 0; r < kTileRows; ++r) {
        if (j0 >= n) break;
        float* HYNAPSE_RESTRICT ci = c.row(i + r) + j0;
        const std::size_t jw = n - j0;
        std::fill(ci, ci + jw, 0.0f);
        for (std::size_t p = 0; p < k; ++p) {
          const float w = at.at(p, i + r);
          const float* HYNAPSE_RESTRICT bp = b.row(p) + j0;
          for (std::size_t j = 0; j < jw; ++j) ci[j] += w * bp[j];
        }
      }
    }
    for (; i < r1; ++i) {
      float* HYNAPSE_RESTRICT ci = c.row(i);
      std::fill(ci, ci + n, 0.0f);
      for (std::size_t p = 0; p < k; ++p) {
        const float w = at.at(p, i);
        const float* HYNAPSE_RESTRICT bp = b.row(p);
        for (std::size_t j = 0; j < n; ++j) ci[j] += w * bp[j];
      }
    }
  };
  if (parallel && m >= 64) {
    util::parallel_for_chunks(m, body);
  } else {
    body(0, m);
  }
}

void gemm_naive(const Matrix& a, const Matrix& b, Matrix& c) {
  check_gemm(a.rows(), a.cols(), b.rows(), b.cols(), c.rows(), c.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < a.cols(); ++p)
        acc += a.at(i, p) * b.at(p, j);
      c.at(i, j) = acc;
    }
  }
}

void add_row_bias(Matrix& y, std::span<const float> bias) {
  if (bias.size() != y.cols())
    throw std::invalid_argument{"add_row_bias: size mismatch"};
  const float* HYNAPSE_RESTRICT bs = bias.data();
  for (std::size_t i = 0; i < y.rows(); ++i) {
    float* HYNAPSE_RESTRICT yi = y.row(i);
    for (std::size_t j = 0; j < y.cols(); ++j) yi[j] += bs[j];
  }
}

}  // namespace hynapse::ann
