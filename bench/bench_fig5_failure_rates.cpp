// Fig. 5 reproduction: 6T read-access and write failure rates versus supply
// voltage from Monte-Carlo simulation of the 256x256 sub-array, plus the 8T
// rates showing they are negligible in the voltage range of interest.
//
// Also the perf anchor for the engine's parallel FailureTable::build: with
// --fresh the table is rebuilt from scratch and the wall-clock time printed
// (and written to --json PATH), so scripts/run_bench.sh can record the
// serial-vs-parallel build trajectory.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <optional>
#include <utility>
#include <vector>

#include "common.hpp"
#include "mc/criteria.hpp"
#include "mc/variation.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

/// The adaptive arm (--adaptive, docs/adaptive_mc.md): rebuild the fig5
/// grid with CI-targeted sampling and validate it against the fixed-sample
/// oracle -- every rate must land within the combined stated intervals, the
/// total sample count must shrink substantially, and the fixed path must
/// stay bit-identical across thread counts.
void run_adaptive_arm(const hynapse::bench::Context& ctx,
                      const hynapse::bench::BenchOptions& opts,
                      const hynapse::mc::FailureTable& oracle,
                      const hynapse::mc::AnalyzerOptions& base) {
  using namespace hynapse;

  const circuit::Sizing6T s6 = circuit::reference_sizing_6t(ctx.tech);
  const circuit::Sizing8T s8 = circuit::reference_sizing_8t(ctx.tech);
  const mc::VariationSampler sampler{ctx.tech, s6, s8};
  const mc::FailureCriteria criteria{ctx.tech, ctx.cycle, s6, s8};
  const std::vector<double> grid = circuit::paper_voltage_grid();

  // The comparison runs at the paper-default budget (the cost the adaptive
  // sampler is cutting), not a --samples-reduced one: a small fixed budget
  // leaves the CI target nothing to save. Rebuild the fixed oracle at the
  // default budget if the cached table used a different one.
  mc::AnalyzerOptions def;
  def.threads = base.threads;
  std::optional<mc::FailureTable> rebuilt;
  if (base.mc_samples != def.mc_samples ||
      base.is_samples != def.is_samples) {
    std::printf("\n[adaptive] rebuilding fixed oracle at the default "
                "budget (%zu MC samples)...\n",
                def.mc_samples);
    const mc::FailureAnalyzer fixed_analyzer{criteria, sampler, def};
    rebuilt = mc::FailureTable::build(fixed_analyzer, grid, 20160312);
  }
  const mc::FailureTable& fixed_table = rebuilt ? *rebuilt : oracle;

  // 30 % relative target with a 1e-4 absolute floor: fig5's
  // decision-relevant rates are >= 1e-3 and span decades, so a
  // fraction-of-a-decade interval resolves every comparison the figure
  // makes, and mechanisms pinned near zero may stop once their interval is
  // provably below the floor. The max clamp caps any single estimate at
  // 24000 samples (60 % of the paper budget): a rate that cannot meet the
  // target by then reports converged=false rather than burning further
  // batches for a sub-target interval.
  mc::AnalyzerOptions adaptive_opts = def;
  adaptive_opts.adaptive.enabled = true;
  adaptive_opts.adaptive.rel_target = 0.3;
  adaptive_opts.adaptive.abs_target = 1e-4;
  adaptive_opts.adaptive.max_samples = 24000;
  const mc::FailureAnalyzer analyzer{criteria, sampler, adaptive_opts};

  const auto t0 = std::chrono::steady_clock::now();
  const mc::FailureTable adaptive =
      mc::FailureTable::build(analyzer, grid, 20160312);
  const double adaptive_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Oracle agreement: each of the five per-row rates inside the combined
  // stated CI half-widths (the row metadata records the worst of the five,
  // so the band is conservative). A miss is adjudicated by an unbiased
  // high-budget plain-MC referee: near the MC/IS decision boundary
  // (p ~ min_hits / budget) the fixed oracle itself answers from the biased
  // mean-shift estimator while the adaptive consistency guard keeps plain
  // MC, so the two legitimately diverge -- but only in the direction where
  // the oracle loses. The miss passes iff the adaptive answer is no farther
  // from the referee than the fixed one, within the stated intervals.
  std::size_t checked = 0;
  std::size_t within = 0;
  std::size_t refereed = 0;
  for (std::size_t i = 0; i < fixed_table.rows().size(); ++i) {
    const mc::FailureTableRow& f = fixed_table.rows()[i];
    const mc::FailureTableRow& a = adaptive.rows()[i];
    const double tol = f.ci_half_width + a.ci_half_width + 1e-12;
    static const char* const kNames[] = {"ra6", "wr6", "rd6", "ra8", "wr8"};
    std::size_t mech = 0;
    for (const auto& [fp, ap] :
         {std::pair{f.cell6.read_access, a.cell6.read_access},
          std::pair{f.cell6.write_fail, a.cell6.write_fail},
          std::pair{f.cell6.read_disturb, a.cell6.read_disturb},
          std::pair{f.cell8.read_access, a.cell8.read_access},
          std::pair{f.cell8.write_fail, a.cell8.write_fail}}) {
      ++checked;
      if (std::abs(fp - ap) <= tol) {
        ++within;
      } else {
        constexpr std::size_t kRefereeSamples = 400000;
        const mc::RateEstimate ref =
            mech < 3 ? analyzer.plain_mc_6t(static_cast<mc::Mechanism>(mech),
                                            f.vdd, kRefereeSamples, 977)
                     : analyzer.plain_mc_8t(
                           static_cast<mc::Mechanism>(mech - 3), f.vdd,
                           kRefereeSamples, 977);
        const double ref_half = 0.5 * (ref.ci_hi - ref.ci_lo);
        const bool ok = std::abs(ap - ref.p) <=
                        std::abs(fp - ref.p) + a.ci_half_width + ref_half +
                            1e-12;
        ++refereed;
        if (ok) ++within;
        std::printf("  [adaptive] CI miss at vdd=%.2f %s: fixed %.3e vs "
                    "adaptive %.3e (tol %.3e); plain-MC referee at %zu "
                    "samples: %.3e -> %s\n",
                    f.vdd, kNames[mech], fp, ap, tol, kRefereeSamples, ref.p,
                    ok ? "adaptive upheld" : "ADAPTIVE WRONG");
      }
      ++mech;
    }
  }
  const double fixed_samples = fixed_table.total_samples();
  const double adaptive_samples = adaptive.total_samples();
  const double reduction =
      adaptive_samples > 0.0 ? fixed_samples / adaptive_samples : 0.0;

  std::printf("\n[adaptive] CI-targeted arm (rel target %.2f, abs %.0e):\n",
              adaptive_opts.adaptive.rel_target,
              adaptive_opts.adaptive.abs_target);
  for (std::size_t i = 0; i < fixed_table.rows().size(); ++i) {
    std::printf("  vdd=%.2f: fixed %8.0f -> adaptive %8.0f samples "
                "(worst CI half-width %.2e)\n",
                fixed_table.rows()[i].vdd, fixed_table.rows()[i].samples,
                adaptive.rows()[i].samples, adaptive.rows()[i].ci_half_width);
  }
  std::printf("  samples: fixed %.0f -> adaptive %.0f (%.1fx reduction) "
              "in %.3f s\n",
              fixed_samples, adaptive_samples, reduction, adaptive_seconds);
  std::printf("  oracle agreement: %zu/%zu rates within combined CI "
              "(%zu adjudicated by referee) -> %s\n",
              within, checked, refereed,
              within == checked ? "PASS" : "CHECK");
  std::printf("  sample reduction >= 5x -> %s\n",
              reduction >= 5.0 ? "PASS" : "CHECK");

  // Fixed-path bit-identity across thread counts, re-asserted on a fig5
  // subgrid so the oracle contract is checked where the arm ran.
  const double sub[] = {grid.front(), grid[grid.size() / 2], grid.back()};
  mc::AnalyzerOptions small = def;
  small.mc_samples = 6000;
  small.is_samples = 3000;
  bool bit_identical = true;
  std::vector<mc::FailureTable> builds;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3},
                                    std::size_t{8}}) {
    mc::AnalyzerOptions o = small;
    o.threads = threads;
    const mc::FailureAnalyzer a{criteria, sampler, o};
    builds.push_back(mc::FailureTable::build(a, sub, 20160312));
  }
  for (std::size_t t = 1; t < builds.size() && bit_identical; ++t) {
    for (std::size_t i = 0; i < builds[0].rows().size(); ++i) {
      const mc::FailureTableRow& x = builds[0].rows()[i];
      const mc::FailureTableRow& y = builds[t].rows()[i];
      if (x.cell6.read_access != y.cell6.read_access ||
          x.cell6.write_fail != y.cell6.write_fail ||
          x.cell6.read_disturb != y.cell6.read_disturb ||
          x.cell8.read_access != y.cell8.read_access ||
          x.cell8.write_fail != y.cell8.write_fail ||
          x.samples != y.samples || x.ci_half_width != y.ci_half_width) {
        bit_identical = false;
        break;
      }
    }
  }
  std::printf("  fixed path bit-identical at 1/3/8 threads -> %s\n",
              bit_identical ? "PASS" : "FAIL");

  if (!opts.json.empty()) {
    std::ofstream json{opts.json, std::ios::app};
    json.precision(6);
    json << "{\"name\":\"fig5_adaptive_mc\",\"rel_target\":"
         << adaptive_opts.adaptive.rel_target
         << ",\"abs_target\":" << adaptive_opts.adaptive.abs_target
         << ",\"fixed_samples\":" << fixed_samples
         << ",\"adaptive_samples\":" << adaptive_samples
         << ",\"reduction\":" << reduction
         << ",\"rates_checked\":" << checked
         << ",\"rates_within_ci\":" << within
         << ",\"rates_refereed\":" << refereed
         << ",\"fixed_bit_identical_1_3_8\":"
         << (bit_identical ? "true" : "false")
         << ",\"seconds\":" << adaptive_seconds << "}\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hynapse;
  const bench::BenchOptions opts = bench::parse_bench_flags(argc, argv);
  bench::print_header(
      "Fig. 5: 6T SRAM failure rates vs supply voltage (Monte-Carlo)",
      "Fig. 5(a) read access, Fig. 5(b) write; Section IV/V 8T claims");

  const bench::Context ctx;
  const auto t0 = std::chrono::steady_clock::now();
  const mc::FailureTable& table = bench::failure_table(ctx, opts);
  const double build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const std::size_t threads =
      opts.threads != 0 ? opts.threads : util::default_thread_count();
  std::printf("[fig5] failure table ready in %.3f s (threads=%zu%s)\n",
              build_seconds, threads, opts.fresh ? ", fresh build" : "");

  if (!opts.json.empty()) {
    std::ofstream json{opts.json, std::ios::app};
    json.precision(6);
    json << "{\"name\":\"fig5_failure_table_build\",\"fresh\":"
         << (opts.fresh ? "true" : "false") << ",\"threads\":" << threads
         << ",\"mc_samples\":"
         << (opts.samples != 0 ? opts.samples : mc::AnalyzerOptions{}.mc_samples)
         << ",\"grid_points\":" << table.rows().size()
         << ",\"seconds\":" << build_seconds << "}\n";
  }

  util::Table t{{"VDD [V]", "6T read access", "6T write", "6T read disturb",
                 "8T read access", "8T write"}};
  util::CsvWriter csv{bench::cache_dir() + "/fig5_failure_rates.csv"};
  csv.header({"vdd", "ra6", "wr6", "rd6", "ra8", "wr8"});
  for (const mc::FailureTableRow& row : table.rows()) {
    t.add_row({util::Table::num(row.vdd, 2),
               util::Table::sci(row.cell6.read_access),
               util::Table::sci(row.cell6.write_fail),
               util::Table::sci(row.cell6.read_disturb),
               util::Table::sci(row.cell8.read_access),
               util::Table::sci(row.cell8.write_fail)});
    csv.row_numeric({row.vdd, row.cell6.read_access, row.cell6.write_fail,
                     row.cell6.read_disturb, row.cell8.read_access,
                     row.cell8.write_fail});
  }
  t.print();
  csv.flush();

  const auto r65 = table.rates_6t(0.65);
  const auto r8_65 = table.rates_8t(0.65);
  std::printf("\nPaper-shape checks:\n");
  std::printf("  read access dominates write at scaled voltage (Fig 5): "
              "%.2e > %.2e -> %s\n",
              r65.read_access, r65.write_fail,
              r65.read_access > r65.write_fail ? "PASS" : "CHECK");
  std::printf("  6T read disturb negligible (Section V): %.2e -> %s\n",
              r65.read_disturb,
              r65.read_disturb < 1e-4 ? "PASS" : "CHECK");
  std::printf("  8T virtually unaffected in range (Section V): "
              "read %.2e, write %.2e -> %s\n",
              r8_65.read_access, r8_65.write_fail,
              (r8_65.read_access < 1e-5 && r8_65.write_fail < 1e-5)
                  ? "PASS"
                  : "CHECK");
  if (opts.adaptive) {
    // Mirror the analyzer options bench::failure_table used for the oracle,
    // with the adaptive policy switched on.
    mc::AnalyzerOptions ao;
    if (opts.samples != 0) {
      ao.mc_samples = opts.samples;
      ao.is_samples = std::max<std::size_t>(opts.samples / 2, 1000);
    }
    ao.threads = opts.threads;
    run_adaptive_arm(ctx, opts, table, ao);
  }

  std::printf("\nCSV mirrored to %s/fig5_failure_rates.csv\n",
              bench::cache_dir().c_str());
  return 0;
}
