// Fig. 5 reproduction: 6T read-access and write failure rates versus supply
// voltage from Monte-Carlo simulation of the 256x256 sub-array, plus the 8T
// rates showing they are negligible in the voltage range of interest.
//
// Also the perf anchor for the engine's parallel FailureTable::build: with
// --fresh the table is rebuilt from scratch and the wall-clock time printed
// (and written to --json PATH), so scripts/run_bench.sh can record the
// serial-vs-parallel build trajectory.
#include <chrono>
#include <cstdio>
#include <fstream>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace hynapse;
  const bench::BenchOptions opts = bench::parse_bench_flags(argc, argv);
  bench::print_header(
      "Fig. 5: 6T SRAM failure rates vs supply voltage (Monte-Carlo)",
      "Fig. 5(a) read access, Fig. 5(b) write; Section IV/V 8T claims");

  const bench::Context ctx;
  const auto t0 = std::chrono::steady_clock::now();
  const mc::FailureTable& table = bench::failure_table(ctx, opts);
  const double build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const std::size_t threads =
      opts.threads != 0 ? opts.threads : util::default_thread_count();
  std::printf("[fig5] failure table ready in %.3f s (threads=%zu%s)\n",
              build_seconds, threads, opts.fresh ? ", fresh build" : "");

  if (!opts.json.empty()) {
    std::ofstream json{opts.json, std::ios::app};
    json.precision(6);
    json << "{\"name\":\"fig5_failure_table_build\",\"fresh\":"
         << (opts.fresh ? "true" : "false") << ",\"threads\":" << threads
         << ",\"mc_samples\":"
         << (opts.samples != 0 ? opts.samples : mc::AnalyzerOptions{}.mc_samples)
         << ",\"grid_points\":" << table.rows().size()
         << ",\"seconds\":" << build_seconds << "}\n";
  }

  util::Table t{{"VDD [V]", "6T read access", "6T write", "6T read disturb",
                 "8T read access", "8T write"}};
  util::CsvWriter csv{bench::cache_dir() + "/fig5_failure_rates.csv"};
  csv.header({"vdd", "ra6", "wr6", "rd6", "ra8", "wr8"});
  for (const mc::FailureTableRow& row : table.rows()) {
    t.add_row({util::Table::num(row.vdd, 2),
               util::Table::sci(row.cell6.read_access),
               util::Table::sci(row.cell6.write_fail),
               util::Table::sci(row.cell6.read_disturb),
               util::Table::sci(row.cell8.read_access),
               util::Table::sci(row.cell8.write_fail)});
    csv.row_numeric({row.vdd, row.cell6.read_access, row.cell6.write_fail,
                     row.cell6.read_disturb, row.cell8.read_access,
                     row.cell8.write_fail});
  }
  t.print();
  csv.flush();

  const auto r65 = table.rates_6t(0.65);
  const auto r8_65 = table.rates_8t(0.65);
  std::printf("\nPaper-shape checks:\n");
  std::printf("  read access dominates write at scaled voltage (Fig 5): "
              "%.2e > %.2e -> %s\n",
              r65.read_access, r65.write_fail,
              r65.read_access > r65.write_fail ? "PASS" : "CHECK");
  std::printf("  6T read disturb negligible (Section V): %.2e -> %s\n",
              r65.read_disturb,
              r65.read_disturb < 1e-4 ? "PASS" : "CHECK");
  std::printf("  8T virtually unaffected in range (Section V): "
              "read %.2e, write %.2e -> %s\n",
              r8_65.read_access, r8_65.write_fail,
              (r8_65.read_access < 1e-5 && r8_65.write_fail < 1e-5)
                  ? "PASS"
                  : "CHECK");
  std::printf("\nCSV mirrored to %s/fig5_failure_rates.csv\n",
              bench::cache_dir().c_str());
  return 0;
}
