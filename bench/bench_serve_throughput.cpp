// bench_serve_throughput: replays a mixed 200-request trace against
// serve::EvalService three ways -- naive mode (no request coalescing: every
// dispatch builds its own failure table, no batch fusion), coalesced mode
// (fingerprint single-flight + batch fusion), and socket mode (the same
// coalesced service behind serve::TcpServer, the trace sent as JSONL over
// loopback TCP by serve::TcpClient) -- and reports wall time, requests/sec
// and the number of Monte-Carlo table builds each mode paid for. The socket
// arm prices the transport: codec + TCP + per-connection session on top of
// the coalesced in-process path. The trace mixes 4 table provenances,
// several configs/voltages, priorities and sweep requests, mimicking
// interactive design-space exploration where many small requests hit a few
// shared tables.
//
// Flags (bench::parse_bench_flags): --threads N, --samples N (per-mechanism
// MC samples for every table build, default 300), --json PATH (write the
// complete comparison as one JSON object to PATH, overwriting it -- the
// BENCH_serve_throughput.json artifact collected by scripts/run_bench.sh).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ann/trainer.hpp"
#include "common.hpp"
#include "data/digits.hpp"
#include "serve/eval_service.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "util/table.hpp"

namespace {

using namespace hynapse;

constexpr std::size_t kRequests = 200;
constexpr std::uint64_t kProvenances = 4;  // distinct table fingerprints

std::vector<serve::Request> build_trace() {
  const char* const configs[] = {"all6t", "hybrid2", "hybrid3", "hybrid4"};
  const double vdds[] = {0.60, 0.65, 0.70};
  std::vector<serve::Request> trace;
  trace.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    serve::Request r;
    // Spread requests over a handful of shared tables -- the coalescing
    // opportunity -- with config/voltage/priority churn on top.
    r.table_seed = 1 + (i * 7 + i / 11) % kProvenances;
    r.priority = static_cast<int>(i % 3);
    r.chips = 2;
    if (i % 10 == 9) {
      r.kind = serve::RequestKind::sweep;
      r.configs = {*serve::ConfigSpec::parse(configs[i % 4]),
                   *serve::ConfigSpec::parse(configs[(i + 1) % 4])};
      r.vdds = {vdds[i % 3], vdds[(i + 1) % 3]};
    } else {
      r.kind = serve::RequestKind::evaluate;
      r.configs = {*serve::ConfigSpec::parse(configs[i % 4])};
      r.vdds = {vdds[i % 3]};
    }
    trace.push_back(std::move(r));
  }
  return trace;
}

struct ModeResult {
  double seconds = 0.0;
  double requests_per_sec = 0.0;
  std::uint64_t table_builds = 0;
  std::uint64_t batches = 0;
  std::uint64_t coalesced_requests = 0;
  std::uint64_t failed = 0;
};

ModeResult run_mode(const core::QuantizedNetwork& qnet,
                    const data::Dataset& test,
                    const std::vector<serve::Request>& trace, bool coalesce,
                    std::size_t samples, std::size_t threads) {
  serve::ServiceOptions options;
  options.coalesce = coalesce;
  options.queue_capacity = kRequests + 8;
  options.dispatchers = 2;
  options.threads = threads;
  options.vdd_grid = {0.60, 0.70};
  options.default_samples = samples;
  serve::EvalService service{qnet, test, options};

  const auto t0 = std::chrono::steady_clock::now();
  for (const serve::Request& r : trace) service.submit(r);
  service.drain();
  const auto t1 = std::chrono::steady_clock::now();

  const serve::EvalService::Totals totals = service.totals();
  ModeResult out;
  out.seconds = std::chrono::duration<double>{t1 - t0}.count();
  out.requests_per_sec = static_cast<double>(kRequests) / out.seconds;
  out.table_builds = totals.table_builds;
  out.batches = totals.batches;
  out.coalesced_requests = totals.coalesced_requests;
  out.failed = totals.failed;
  return out;
}

/// Socket arm: the coalesced service behind a TcpServer, the whole trace
/// pipelined as JSONL over one loopback connection. A writer thread streams
/// the 200 request lines while the main thread reads the 200 response lines
/// (completion order), so the measurement includes codec + transport but no
/// artificial request-response lockstep.
ModeResult run_socket_mode(const core::QuantizedNetwork& qnet,
                           const data::Dataset& test,
                           const std::vector<serve::Request>& trace,
                           std::size_t samples, std::size_t threads) {
  serve::ServiceOptions options;
  options.coalesce = true;
  options.queue_capacity = kRequests + 8;
  options.dispatchers = 2;
  options.threads = threads;
  options.vdd_grid = {0.60, 0.70};
  options.default_samples = samples;
  serve::EvalService service{qnet, test, options};
  serve::TcpServer server{service};  // ephemeral loopback port

  std::optional<serve::TcpClient> client =
      serve::TcpClient::connect("127.0.0.1", server.port());
  ModeResult out;
  if (!client) {
    std::fprintf(stderr, "error: cannot connect to loopback server\n");
    out.failed = kRequests;
    return out;
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::thread writer{[&] {
    for (const serve::Request& r : trace) {
      if (!client->send_line(serve::format_request(r))) return;
    }
  }};
  for (std::size_t i = 0; i < kRequests; ++i) {
    const std::optional<std::string> line = client->read_line(600.0);
    if (!line) {
      out.failed += kRequests - i;
      break;
    }
    const std::optional<serve::Response> r =
        serve::parse_response(*line, nullptr);
    if (!r || r->status != serve::RequestStatus::done) ++out.failed;
  }
  writer.join();
  const auto t1 = std::chrono::steady_clock::now();
  server.stop();

  const serve::EvalService::Totals totals = service.totals();
  out.seconds = std::chrono::duration<double>{t1 - t0}.count();
  out.requests_per_sec = static_cast<double>(kRequests) / out.seconds;
  out.table_builds = totals.table_builds;
  out.batches = totals.batches;
  out.coalesced_requests = totals.coalesced_requests;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_bench_flags(argc, argv);
  const std::size_t samples = opts.samples != 0 ? opts.samples : 300;

  bench::print_header(
      "Serving throughput: request coalescing vs naive dispatch",
      "serve::EvalService over the PR-2 engine (not a paper figure)");

  std::printf("training the served reference network...\n");
  const data::Dataset train = data::generate_digits(900, 31);
  ann::Mlp net{{784, 24, 10}, 13};
  ann::TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 50;
  ann::train_sgd(net, train.images, train.labels, tc);
  const core::QuantizedNetwork qnet{net, 8};
  const data::Dataset test = data::generate_digits(300, 32);

  const std::vector<serve::Request> trace = build_trace();
  std::printf(
      "replaying %zu requests (%llu distinct table provenances, "
      "%zu MC samples/mechanism)...\n",
      kRequests, static_cast<unsigned long long>(kProvenances), samples);

  std::printf("  naive (no coalescing)...\n");
  const ModeResult naive =
      run_mode(qnet, test, trace, false, samples, opts.threads);
  std::printf("  coalesced...\n");
  const ModeResult coal =
      run_mode(qnet, test, trace, true, samples, opts.threads);
  std::printf("  socket (coalesced over loopback TCP)...\n");
  const ModeResult socket =
      run_socket_mode(qnet, test, trace, samples, opts.threads);

  util::Table t{{"mode", "seconds", "req/s", "table builds", "batches",
                 "coalesced"}};
  t.add_row({"naive", util::Table::num(naive.seconds, 2),
             util::Table::num(naive.requests_per_sec, 1),
             std::to_string(naive.table_builds),
             std::to_string(naive.batches),
             std::to_string(naive.coalesced_requests)});
  t.add_row({"coalesced", util::Table::num(coal.seconds, 2),
             util::Table::num(coal.requests_per_sec, 1),
             std::to_string(coal.table_builds),
             std::to_string(coal.batches),
             std::to_string(coal.coalesced_requests)});
  t.add_row({"socket", util::Table::num(socket.seconds, 2),
             util::Table::num(socket.requests_per_sec, 1),
             std::to_string(socket.table_builds),
             std::to_string(socket.batches),
             std::to_string(socket.coalesced_requests)});
  t.print();
  std::printf("speedup %.2fx, table builds %llu -> %llu\n",
              naive.seconds / coal.seconds,
              static_cast<unsigned long long>(naive.table_builds),
              static_cast<unsigned long long>(coal.table_builds));
  std::printf("socket transport overhead %.2fx vs in-process coalesced\n",
              socket.seconds / coal.seconds);
  if (naive.failed != 0 || coal.failed != 0 || socket.failed != 0) {
    std::fprintf(stderr, "error: %llu requests failed\n",
                 static_cast<unsigned long long>(naive.failed + coal.failed +
                                                 socket.failed));
    return 1;
  }
  if (coal.table_builds >= naive.table_builds) {
    std::fprintf(stderr,
                 "error: coalescing did not reduce table builds "
                 "(%llu vs %llu)\n",
                 static_cast<unsigned long long>(coal.table_builds),
                 static_cast<unsigned long long>(naive.table_builds));
    return 1;
  }

  if (!opts.json.empty()) {
    std::ofstream out{opts.json, std::ios::trunc};
    out << "{\n"
        << "  \"name\": \"serve_throughput\",\n"
        << "  \"requests\": " << kRequests << ",\n"
        << "  \"distinct_tables\": " << kProvenances << ",\n"
        << "  \"mc_samples\": " << samples << ",\n"
        << "  \"naive_seconds\": " << naive.seconds << ",\n"
        << "  \"naive_requests_per_sec\": " << naive.requests_per_sec
        << ",\n"
        << "  \"naive_table_builds\": " << naive.table_builds << ",\n"
        << "  \"coalesced_seconds\": " << coal.seconds << ",\n"
        << "  \"coalesced_requests_per_sec\": " << coal.requests_per_sec
        << ",\n"
        << "  \"coalesced_table_builds\": " << coal.table_builds << ",\n"
        << "  \"coalesced_batches\": " << coal.batches << ",\n"
        << "  \"socket_seconds\": " << socket.seconds << ",\n"
        << "  \"socket_requests_per_sec\": " << socket.requests_per_sec
        << ",\n"
        << "  \"socket_table_builds\": " << socket.table_builds << ",\n"
        << "  \"speedup\": " << naive.seconds / coal.seconds << ",\n"
        << "  \"socket_overhead\": " << socket.seconds / coal.seconds << "\n"
        << "}\n";
    std::printf("JSON written to %s\n", opts.json.c_str());
  }
  return 0;
}
