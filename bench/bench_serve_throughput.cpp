// bench_serve_throughput: replays a mixed 200-request trace against
// serve::EvalService three ways -- naive mode (no request coalescing: every
// dispatch builds its own failure table, no batch fusion), coalesced mode
// (fingerprint single-flight + batch fusion), and socket mode (the same
// coalesced service behind serve::TcpServer, the trace sent as JSONL over
// loopback TCP by serve::TcpClient) -- and reports wall time, requests/sec
// and the number of Monte-Carlo table builds each mode paid for. The socket
// arm prices the transport: codec + TCP + per-connection session on top of
// the coalesced in-process path. The trace mixes 4 table provenances,
// several configs/voltages, priorities and sweep requests, mimicking
// interactive design-space exploration where many small requests hit a few
// shared tables.
//
// A fourth arm sweeps offered load against latency percentiles: a
// memory-hit-only service (max_batch=1, table prebuilt) is paced open-loop
// at fractions and multiples of its measured closed-loop capacity, and each
// level's completion latencies land in an obs::Histogram whose p50/p95/p99
// show the saturation knee (flat below capacity, queueing blow-up above).
//
// Flags (bench::parse_bench_flags): --threads N, --samples N (per-mechanism
// MC samples for every table build, default 300), --json PATH (write the
// complete comparison as one JSON object to PATH, overwriting it -- the
// BENCH_serve_throughput.json artifact collected by scripts/run_bench.sh),
// --latency-json PATH (write the saturation sweep as
// BENCH_serve_latency.json).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ann/trainer.hpp"
#include "common.hpp"
#include "data/digits.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "serve/eval_service.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "util/table.hpp"

namespace {

using namespace hynapse;

constexpr std::size_t kRequests = 200;
constexpr std::uint64_t kProvenances = 4;  // distinct table fingerprints

std::vector<serve::Request> build_trace() {
  const char* const configs[] = {"all6t", "hybrid2", "hybrid3", "hybrid4"};
  const double vdds[] = {0.60, 0.65, 0.70};
  std::vector<serve::Request> trace;
  trace.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    serve::Request r;
    // Spread requests over a handful of shared tables -- the coalescing
    // opportunity -- with config/voltage/priority churn on top.
    r.table_seed = 1 + (i * 7 + i / 11) % kProvenances;
    r.priority = static_cast<int>(i % 3);
    r.chips = 2;
    if (i % 10 == 9) {
      r.kind = serve::RequestKind::sweep;
      r.configs = {*serve::ConfigSpec::parse(configs[i % 4]),
                   *serve::ConfigSpec::parse(configs[(i + 1) % 4])};
      r.vdds = {vdds[i % 3], vdds[(i + 1) % 3]};
    } else {
      r.kind = serve::RequestKind::evaluate;
      r.configs = {*serve::ConfigSpec::parse(configs[i % 4])};
      r.vdds = {vdds[i % 3]};
    }
    trace.push_back(std::move(r));
  }
  return trace;
}

struct ModeResult {
  double seconds = 0.0;
  double requests_per_sec = 0.0;
  std::uint64_t table_builds = 0;
  std::uint64_t batches = 0;
  std::uint64_t coalesced_requests = 0;
  std::uint64_t failed = 0;
};

ModeResult run_mode(const core::QuantizedNetwork& qnet,
                    const data::Dataset& test,
                    const std::vector<serve::Request>& trace, bool coalesce,
                    std::size_t samples, std::size_t threads) {
  serve::ServiceOptions options;
  options.coalesce = coalesce;
  options.queue_capacity = kRequests + 8;
  options.dispatchers = 2;
  options.threads = threads;
  options.vdd_grid = {0.60, 0.70};
  options.default_samples = samples;
  serve::EvalService service{qnet, test, options};

  const auto t0 = std::chrono::steady_clock::now();
  for (const serve::Request& r : trace) service.submit(r);
  service.drain();
  const auto t1 = std::chrono::steady_clock::now();

  const serve::EvalService::Totals totals = service.totals();
  ModeResult out;
  out.seconds = std::chrono::duration<double>{t1 - t0}.count();
  out.requests_per_sec = static_cast<double>(kRequests) / out.seconds;
  out.table_builds = totals.table_builds;
  out.batches = totals.batches;
  out.coalesced_requests = totals.coalesced_requests;
  out.failed = totals.failed;
  return out;
}

/// Socket arm: the coalesced service behind a TcpServer, the whole trace
/// pipelined as JSONL over one loopback connection. A writer thread streams
/// the 200 request lines while the main thread reads the 200 response lines
/// (completion order), so the measurement includes codec + transport but no
/// artificial request-response lockstep.
ModeResult run_socket_mode(const core::QuantizedNetwork& qnet,
                           const data::Dataset& test,
                           const std::vector<serve::Request>& trace,
                           std::size_t samples, std::size_t threads) {
  serve::ServiceOptions options;
  options.coalesce = true;
  options.queue_capacity = kRequests + 8;
  options.dispatchers = 2;
  options.threads = threads;
  options.vdd_grid = {0.60, 0.70};
  options.default_samples = samples;
  serve::EvalService service{qnet, test, options};
  serve::TcpServer server{service};  // ephemeral loopback port

  std::optional<serve::TcpClient> client =
      serve::TcpClient::connect("127.0.0.1", server.port());
  ModeResult out;
  if (!client) {
    std::fprintf(stderr, "error: cannot connect to loopback server\n");
    out.failed = kRequests;
    return out;
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::thread writer{[&] {
    for (const serve::Request& r : trace) {
      if (!client->send_line(serve::format_request(r))) return;
    }
  }};
  for (std::size_t i = 0; i < kRequests; ++i) {
    const std::optional<std::string> line = client->read_line(600.0);
    if (!line) {
      out.failed += kRequests - i;
      break;
    }
    const std::optional<serve::Response> r =
        serve::parse_response(*line, nullptr);
    if (!r || r->status != serve::RequestStatus::done) ++out.failed;
  }
  writer.join();
  const auto t1 = std::chrono::steady_clock::now();
  server.stop();

  const serve::EvalService::Totals totals = service.totals();
  out.seconds = std::chrono::duration<double>{t1 - t0}.count();
  out.requests_per_sec = static_cast<double>(kRequests) / out.seconds;
  out.table_builds = totals.table_builds;
  out.batches = totals.batches;
  out.coalesced_requests = totals.coalesced_requests;
  return out;
}

struct LatencyLevel {
  double offered_rps = 0.0;
  double achieved_rps = 0.0;
  std::size_t requests = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

struct LatencyResult {
  double capacity_rps = 0.0;
  std::vector<LatencyLevel> levels;
  /// Journal arm: the 0.8x-capacity level re-run with the request journal
  /// enabled, pricing the durability tax (append + amortized fsync on the
  /// submit path) against the matching plain level.
  LatencyLevel journal;
  double journal_overhead_pct = 0.0;  ///< p50 delta vs the plain 0.8x level
};

/// Offered-load vs latency sweep. One request provenance, table prebuilt,
/// max_batch=1: every dispatch is a memory-hit single-request batch, so the
/// measured latencies are pure service+queueing time and the knee sits at
/// the dispatch capacity rather than at a table-build artifact.
LatencyResult run_latency_sweep(const core::QuantizedNetwork& qnet,
                                const data::Dataset& test,
                                std::size_t samples, std::size_t threads) {
  serve::ServiceOptions options;
  options.coalesce = true;
  options.max_batch = 1;
  options.dispatchers = 2;
  options.threads = threads;
  options.vdd_grid = {0.60, 0.70};
  options.default_samples = samples;
  options.queue_capacity = 4096;  // open-loop overload must queue, not block
  serve::EvalService service{qnet, test, options};

  serve::Request probe;
  probe.kind = serve::RequestKind::evaluate;
  probe.configs = {*serve::ConfigSpec::parse("hybrid3")};
  probe.vdds = {0.65};
  probe.chips = 2;
  probe.table_seed = 1;

  // Warm the one failure table; nothing below pays a Monte-Carlo build.
  (void)service.wait(service.submit(probe));

  // Closed-loop capacity: saturate the queue and take the drain rate.
  constexpr std::size_t kCapacityProbe = 60;
  const auto c0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kCapacityProbe; ++i) service.submit(probe);
  service.drain();
  const double capacity_s =
      std::chrono::duration<double>{std::chrono::steady_clock::now() - c0}
          .count();
  LatencyResult out;
  out.capacity_rps = static_cast<double>(kCapacityProbe) / capacity_s;

  // One open-loop level: request i is DUE at start + i/offered, latency is
  // measured from that due time, so time spent queueing behind a saturated
  // service counts against it (the knee).
  const auto run_level = [&probe](serve::EvalService& svc,
                                  double offered) -> LatencyLevel {
    // ~2 seconds of offered load per level, bounded so gross overload
    // cannot run away (the cap only shortens the level, not its rate).
    const std::size_t n = std::clamp<std::size_t>(
        static_cast<std::size_t>(std::llround(offered * 2.0)), 40, 2000);

    obs::Histogram latencies;
    const auto start =
        std::chrono::steady_clock::now() + std::chrono::milliseconds{50};
    for (std::size_t i = 0; i < n; ++i) {
      const auto due =
          start + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>{
                          static_cast<double>(i) / offered});
      std::this_thread::sleep_until(due);
      svc.submit(probe, [&latencies, due](const serve::Response&) {
        latencies.record(obs::elapsed_us(due, obs::Clock::now()));
      });
    }
    svc.drain();
    const double level_s =
        std::chrono::duration<double>{std::chrono::steady_clock::now() - start}
            .count();

    const obs::HistogramSnapshot snap = latencies.snapshot();
    LatencyLevel level;
    level.offered_rps = offered;
    level.achieved_rps = static_cast<double>(n) / level_s;
    level.requests = n;
    level.p50_ms = snap.percentile(0.50) / 1000.0;
    level.p95_ms = snap.percentile(0.95) / 1000.0;
    level.p99_ms = snap.percentile(0.99) / 1000.0;
    return level;
  };

  for (const double fraction : {0.4, 0.8, 1.5, 3.0}) {
    out.levels.push_back(run_level(service, fraction * out.capacity_rps));
  }

  // Journal arm: the same 0.8x-capacity level with the request journal on
  // (fsync-batched appends on every submit, terminals on every
  // completion). The comparison against levels[1] is the journaling
  // overhead the robustness acceptance bound (<= 10% on p50) tracks.
  {
    serve::ServiceOptions jopts = options;
    jopts.journal.path = "bench_serve_journal.tmp.jsonl";
    std::remove(jopts.journal.path.c_str());
    serve::EvalService jservice{qnet, test, jopts};
    (void)jservice.wait(jservice.submit(probe));  // same warm table
    out.journal = run_level(jservice, 0.8 * out.capacity_rps);
    const double base_p50 = out.levels[1].p50_ms;
    if (base_p50 > 0.0) {
      out.journal_overhead_pct =
          100.0 * (out.journal.p50_ms - base_p50) / base_p50;
    }
    std::remove(jopts.journal.path.c_str());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_bench_flags(argc, argv);
  const std::size_t samples = opts.samples != 0 ? opts.samples : 300;
  std::string latency_json;  // --latency-json passes through parse_bench_flags
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--latency-json") == 0 && i + 1 < argc) {
      latency_json = argv[++i];
    }
  }

  bench::print_header(
      "Serving throughput: request coalescing vs naive dispatch",
      "serve::EvalService over the PR-2 engine (not a paper figure)");

  std::printf("training the served reference network...\n");
  const data::Dataset train = data::generate_digits(900, 31);
  ann::Mlp net{{784, 24, 10}, 13};
  ann::TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 50;
  ann::train_sgd(net, train.images, train.labels, tc);
  const core::QuantizedNetwork qnet{net, 8};
  const data::Dataset test = data::generate_digits(300, 32);

  const std::vector<serve::Request> trace = build_trace();
  std::printf(
      "replaying %zu requests (%llu distinct table provenances, "
      "%zu MC samples/mechanism)...\n",
      kRequests, static_cast<unsigned long long>(kProvenances), samples);

  std::printf("  naive (no coalescing)...\n");
  const ModeResult naive =
      run_mode(qnet, test, trace, false, samples, opts.threads);
  std::printf("  coalesced...\n");
  const ModeResult coal =
      run_mode(qnet, test, trace, true, samples, opts.threads);
  std::printf("  socket (coalesced over loopback TCP)...\n");
  const ModeResult socket =
      run_socket_mode(qnet, test, trace, samples, opts.threads);

  util::Table t{{"mode", "seconds", "req/s", "table builds", "batches",
                 "coalesced"}};
  t.add_row({"naive", util::Table::num(naive.seconds, 2),
             util::Table::num(naive.requests_per_sec, 1),
             std::to_string(naive.table_builds),
             std::to_string(naive.batches),
             std::to_string(naive.coalesced_requests)});
  t.add_row({"coalesced", util::Table::num(coal.seconds, 2),
             util::Table::num(coal.requests_per_sec, 1),
             std::to_string(coal.table_builds),
             std::to_string(coal.batches),
             std::to_string(coal.coalesced_requests)});
  t.add_row({"socket", util::Table::num(socket.seconds, 2),
             util::Table::num(socket.requests_per_sec, 1),
             std::to_string(socket.table_builds),
             std::to_string(socket.batches),
             std::to_string(socket.coalesced_requests)});
  t.print();
  std::printf("speedup %.2fx, table builds %llu -> %llu\n",
              naive.seconds / coal.seconds,
              static_cast<unsigned long long>(naive.table_builds),
              static_cast<unsigned long long>(coal.table_builds));
  std::printf("socket transport overhead %.2fx vs in-process coalesced\n",
              socket.seconds / coal.seconds);
  if (naive.failed != 0 || coal.failed != 0 || socket.failed != 0) {
    std::fprintf(stderr, "error: %llu requests failed\n",
                 static_cast<unsigned long long>(naive.failed + coal.failed +
                                                 socket.failed));
    return 1;
  }
  if (coal.table_builds >= naive.table_builds) {
    std::fprintf(stderr,
                 "error: coalescing did not reduce table builds "
                 "(%llu vs %llu)\n",
                 static_cast<unsigned long long>(coal.table_builds),
                 static_cast<unsigned long long>(naive.table_builds));
    return 1;
  }

  std::printf("  saturation sweep (offered load vs latency)...\n");
  const LatencyResult latency =
      run_latency_sweep(qnet, test, samples, opts.threads);
  std::printf("capacity %.1f req/s (closed-loop)\n", latency.capacity_rps);
  util::Table lt{{"offered req/s", "achieved req/s", "requests", "p50 ms",
                  "p95 ms", "p99 ms"}};
  for (const LatencyLevel& level : latency.levels) {
    lt.add_row({util::Table::num(level.offered_rps, 1),
                util::Table::num(level.achieved_rps, 1),
                std::to_string(level.requests),
                util::Table::num(level.p50_ms, 2),
                util::Table::num(level.p95_ms, 2),
                util::Table::num(level.p99_ms, 2)});
  }
  lt.print();
  std::printf("journal arm at %.1f req/s (0.8x capacity): p50 %.2f ms, "
              "p95 %.2f ms, p99 %.2f ms -> %.1f%% p50 overhead vs plain\n",
              latency.journal.offered_rps, latency.journal.p50_ms,
              latency.journal.p95_ms, latency.journal.p99_ms,
              latency.journal_overhead_pct);

  if (!latency_json.empty()) {
    std::ofstream out{latency_json, std::ios::trunc};
    out << "{\n"
        << "  \"name\": \"serve_latency\",\n"
        << "  \"mc_samples\": " << samples << ",\n"
        << "  \"capacity_rps\": " << latency.capacity_rps << ",\n"
        << "  \"levels\": [\n";
    for (std::size_t i = 0; i < latency.levels.size(); ++i) {
      const LatencyLevel& level = latency.levels[i];
      out << "    {\"offered_rps\": " << level.offered_rps
          << ", \"achieved_rps\": " << level.achieved_rps
          << ", \"requests\": " << level.requests
          << ", \"p50_ms\": " << level.p50_ms
          << ", \"p95_ms\": " << level.p95_ms
          << ", \"p99_ms\": " << level.p99_ms << "}"
          << (i + 1 < latency.levels.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"journal\": {\"offered_rps\": " << latency.journal.offered_rps
        << ", \"requests\": " << latency.journal.requests
        << ", \"p50_ms\": " << latency.journal.p50_ms
        << ", \"p95_ms\": " << latency.journal.p95_ms
        << ", \"p99_ms\": " << latency.journal.p99_ms
        << ", \"overhead_pct\": " << latency.journal_overhead_pct << "}\n";
    out << "}\n";
    std::printf("latency JSON written to %s\n", latency_json.c_str());
  }

  if (!opts.json.empty()) {
    std::ofstream out{opts.json, std::ios::trunc};
    out << "{\n"
        << "  \"name\": \"serve_throughput\",\n"
        << "  \"requests\": " << kRequests << ",\n"
        << "  \"distinct_tables\": " << kProvenances << ",\n"
        << "  \"mc_samples\": " << samples << ",\n"
        << "  \"naive_seconds\": " << naive.seconds << ",\n"
        << "  \"naive_requests_per_sec\": " << naive.requests_per_sec
        << ",\n"
        << "  \"naive_table_builds\": " << naive.table_builds << ",\n"
        << "  \"coalesced_seconds\": " << coal.seconds << ",\n"
        << "  \"coalesced_requests_per_sec\": " << coal.requests_per_sec
        << ",\n"
        << "  \"coalesced_table_builds\": " << coal.table_builds << ",\n"
        << "  \"coalesced_batches\": " << coal.batches << ",\n"
        << "  \"socket_seconds\": " << socket.seconds << ",\n"
        << "  \"socket_requests_per_sec\": " << socket.requests_per_sec
        << ",\n"
        << "  \"socket_table_builds\": " << socket.table_builds << ",\n"
        << "  \"speedup\": " << naive.seconds / coal.seconds << ",\n"
        << "  \"socket_overhead\": " << socket.seconds / coal.seconds << "\n"
        << "}\n";
    std::printf("JSON written to %s\n", opts.json.c_str());
  }
  return 0;
}
