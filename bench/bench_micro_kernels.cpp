// Google-benchmark microbenchmarks of the simulation hot paths: device
// evaluation, bitcell solves, Monte-Carlo sampling throughput, GEMM, fault
// injection, and end-to-end inference.
#include <benchmark/benchmark.h>

#include "ann/backends/backend.hpp"
#include "ann/matrix.hpp"
#include "ann/mlp.hpp"
#include "circuit/reference.hpp"
#include "core/fault_model.hpp"
#include "core/synaptic_memory.hpp"
#include "mc/criteria.hpp"
#include "mc/montecarlo.hpp"
#include "mc/variation.hpp"
#include "sram/timing.hpp"
#include "util/rng.hpp"

namespace {

using namespace hynapse;

const circuit::Technology& tech() {
  static const circuit::Technology t = circuit::ptm22();
  return t;
}

void BM_MosfetIds(benchmark::State& state) {
  const circuit::Mosfet m{tech().nmos, 2 * tech().wmin, tech().lmin};
  double v = 0.3;
  for (auto _ : state) {
    v = v < 0.9 ? v + 1e-7 : 0.3;
    benchmark::DoNotOptimize(m.ids(v, 0.65));
  }
}
BENCHMARK(BM_MosfetIds);

void BM_BitcellReadCurrent(benchmark::State& state) {
  const circuit::Bitcell6T cell = circuit::reference_6t(tech());
  for (auto _ : state) benchmark::DoNotOptimize(cell.read_current(0.65));
}
BENCHMARK(BM_BitcellReadCurrent);

void BM_BitcellWriteResidual(benchmark::State& state) {
  const circuit::Bitcell6T cell = circuit::reference_6t(tech());
  for (auto _ : state)
    benchmark::DoNotOptimize(cell.write_residual(0.65, 0.45e-15, 2e-10));
}
BENCHMARK(BM_BitcellWriteResidual);

void BM_ReadSnm(benchmark::State& state) {
  const circuit::Bitcell6T cell = circuit::reference_6t(tech());
  for (auto _ : state) benchmark::DoNotOptimize(cell.read_snm(0.95, 200));
}
BENCHMARK(BM_ReadSnm);

void BM_McSample6T(benchmark::State& state) {
  const circuit::Sizing6T s6 = circuit::reference_sizing_6t(tech());
  const circuit::Sizing8T s8 = circuit::reference_sizing_8t(tech());
  const sram::SubArrayModel array{tech(), sram::SubArrayGeometry{}, s6};
  const sram::CycleModel cycle{tech(), array, circuit::Bitcell6T{tech(), s6}};
  const mc::VariationSampler sampler{tech(), s6, s8};
  const mc::FailureCriteria criteria{tech(), cycle, s6, s8};
  util::Rng rng{9};
  for (auto _ : state) {
    const circuit::Variation6T var = sampler.sample_6t(rng);
    benchmark::DoNotOptimize(
        criteria.read_access_metric_6t(var, 0.65));
  }
}
BENCHMARK(BM_McSample6T);

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ann::Matrix a{n, n};
  ann::Matrix b{n, n};
  ann::Matrix c{n, n};
  util::Rng rng{4};
  for (float& x : a.data()) x = static_cast<float>(rng.uniform());
  for (float& x : b.data()) x = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    ann::gemm(a, b, c);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(128)->Arg(512);

// Per-backend kernel arms. The simd arms silently fall back to the
// reference kernels when the build has no SIMD backend (kernel_ops'
// fallback rule), so reference/simd timings then coincide; run_bench.sh
// computes the per-variant speedup ratios from the JSON counters. Arg 130
// exercises the tile remainders (130 % 4 == 2 rows, 130 % 16 == 2 cols).

void BM_GemmBackend(benchmark::State& state, ann::backends::Backend backend) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ann::Matrix a{n, n};
  ann::Matrix b{n, n};
  ann::Matrix c{n, n};
  util::Rng rng{4};
  for (float& x : a.data()) x = static_cast<float>(rng.uniform());
  for (float& x : b.data()) x = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    ann::gemm(a, b, c, /*parallel=*/true, backend);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK_CAPTURE(BM_GemmBackend, reference,
                  ann::backends::Backend::reference)
    ->Arg(128)
    ->Arg(130)
    ->Arg(512);
BENCHMARK_CAPTURE(BM_GemmBackend, simd, ann::backends::Backend::simd)
    ->Arg(128)
    ->Arg(130)
    ->Arg(512);

void BM_GemmBtBackend(benchmark::State& state,
                      ann::backends::Backend backend) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ann::Matrix a{n, n};
  ann::Matrix bt{n, n};
  ann::Matrix c{n, n};
  util::Rng rng{6};
  for (float& x : a.data()) x = static_cast<float>(rng.uniform());
  for (float& x : bt.data()) x = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    ann::gemm_bt(a, bt, c, /*parallel=*/true, backend);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK_CAPTURE(BM_GemmBtBackend, reference,
                  ann::backends::Backend::reference)
    ->Arg(128)
    ->Arg(130);
BENCHMARK_CAPTURE(BM_GemmBtBackend, simd, ann::backends::Backend::simd)
    ->Arg(128)
    ->Arg(130);

void BM_GemmAtBackend(benchmark::State& state,
                      ann::backends::Backend backend) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ann::Matrix a{n, n};
  ann::Matrix b{n, n};
  ann::Matrix c{n, n};
  util::Rng rng{8};
  for (float& x : a.data()) x = static_cast<float>(rng.uniform());
  for (float& x : b.data()) x = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    ann::gemm_at(a, b, c, /*parallel=*/true, backend);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK_CAPTURE(BM_GemmAtBackend, reference,
                  ann::backends::Backend::reference)
    ->Arg(128)
    ->Arg(130);
BENCHMARK_CAPTURE(BM_GemmAtBackend, simd, ann::backends::Backend::simd)
    ->Arg(128)
    ->Arg(130);

void BM_FaultMapSampling(benchmark::State& state) {
  std::vector<mc::FailureTableRow> rows(2);
  rows[0].vdd = 0.6;
  rows[1].vdd = 1.0;
  rows[0].cell6 = rows[1].cell6 = {0.01, 0.005, 0.0005};
  const mc::FailureTable table{std::move(rows)};
  const core::FaultModel model{table, 0.65};
  const core::BankConfig bank{"b", 100000, 8, 2};
  util::Rng rng{11};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::FaultMap::sample(bank, model, rng));
  }
  state.SetItemsProcessed(state.iterations() * 100000 * 8);
}
BENCHMARK(BM_FaultMapSampling);

void BM_Inference784(benchmark::State& state) {
  const ann::Mlp net{{784, 128, 64, 10}, 3};
  ann::Matrix x{64, 784};
  util::Rng rng{5};
  for (float& v : x.data()) v = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(x));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_Inference784);

}  // namespace

BENCHMARK_MAIN();
