// Extension: conventional yield view of the same failure data. How many
// 256x256 sub-arrays are fault-free at each voltage, what row sparing would
// buy, and the standby data-retention-voltage picture -- the repair-centric
// alternative the paper's error-tolerant architecture sidesteps.
#include <cstdio>

#include "common.hpp"
#include "mc/criteria.hpp"
#include "mc/montecarlo.hpp"
#include "mc/variation.hpp"
#include "mc/yield.hpp"
#include "util/table.hpp"

int main() {
  using namespace hynapse;
  bench::print_header(
      "Extension: array yield and data retention",
      "repair-based alternative analysis (beyond the paper)");

  const bench::Context ctx;
  const mc::FailureTable& table = bench::failure_table(ctx);
  constexpr std::size_t kCells = 256 * 256;

  util::Table t{{"VDD [V]", "p_cell (6T)", "p_word (8 bits)",
                 "clean sub-array", "E[failing cells]",
                 "yield w/ 16 spares", "yield w/ 64 spares"}};
  for (const mc::FailureTableRow& row : table.rows()) {
    const mc::ArrayYield y = mc::array_yield(row.cell6, kCells, 8);
    t.add_row({util::Table::num(row.vdd, 2), util::Table::sci(y.p_cell),
               util::Table::sci(y.p_word),
               util::Table::sci(y.p_array_clean),
               util::Table::num(y.expected_failures, 1),
               util::Table::pct(mc::yield_with_sparing(y.p_cell, kCells, 16)),
               util::Table::pct(mc::yield_with_sparing(y.p_cell, kCells, 64))});
  }
  t.print();
  std::printf(
      "\nReading: at 0.65 V thousands of cells fail per sub-array -- no\n"
      "realistic sparing budget recovers a conventional memory, while the\n"
      "paper's approach keeps the application accurate by *placing* the\n"
      "failures in insignificant bits.\n");

  // Data retention at standby voltages (extension).
  std::printf("\nStandby data-retention failure rate (6T, Monte-Carlo):\n");
  const circuit::Sizing6T s6 = circuit::reference_sizing_6t(ctx.tech);
  const circuit::Sizing8T s8 = circuit::reference_sizing_8t(ctx.tech);
  const mc::VariationSampler sampler{ctx.tech, s6, s8};
  const mc::FailureCriteria criteria{ctx.tech, ctx.cycle, s6, s8};
  mc::AnalyzerOptions opts;
  opts.mc_samples = 10000;
  const mc::FailureAnalyzer analyzer{criteria, sampler, opts};
  util::Table rt{{"V_standby [V]", "retention failure rate"}};
  for (double v : {0.50, 0.40, 0.35, 0.30, 0.25, 0.20}) {
    const mc::RateEstimate r = analyzer.retention_6t(v, 99);
    rt.add_row({util::Table::num(v, 2), util::Table::sci(r.p)});
  }
  rt.print();
  std::printf("\nThe retention cliff sits far below the 0.65 V operating\n"
              "point, so standby rail-dropping between inferences is a safe\n"
              "companion technique to the paper's access-voltage scaling.\n");
  return 0;
}
