// Fig. 6 reproduction: per-bitcell read power (a), write power (b) and
// leakage power (c) versus supply voltage for the 6T and 8T designs.
#include <cstdio>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace hynapse;
  bench::print_header("Fig. 6: bitcell power vs supply voltage",
                      "Fig. 6(a,b,c) + Section IV 8T/6T ratios");

  const bench::Context ctx;
  const sram::BitcellPowerModel& cells = ctx.cells;

  util::Table t{{"VDD [V]", "6T read [uW]", "8T read [uW]", "6T write [uW]",
                 "8T write [uW]", "6T leak [nW]", "8T leak [nW]"}};
  util::CsvWriter csv{bench::cache_dir() + "/fig6_power.csv"};
  csv.header({"vdd", "read6_uW", "read8_uW", "write6_uW", "write8_uW",
              "leak6_nW", "leak8_nW"});
  for (double vdd : circuit::paper_voltage_grid()) {
    const double r6 = 1e6 * cells.read_power_6t(vdd);
    const double r8 = 1e6 * cells.read_power_8t(vdd);
    const double w6 = 1e6 * cells.write_power_6t(vdd);
    const double w8 = 1e6 * cells.write_power_8t(vdd);
    const double l6 = 1e9 * cells.leakage_power_6t(vdd);
    const double l8 = 1e9 * cells.leakage_power_8t(vdd);
    t.add_row({util::Table::num(vdd, 2), util::Table::num(r6, 3),
               util::Table::num(r8, 3), util::Table::num(w6, 3),
               util::Table::num(w8, 3), util::Table::num(l6, 3),
               util::Table::num(l8, 3)});
    csv.row_numeric({vdd, r6, r8, w6, w8, l6, l8});
  }
  t.print();
  csv.flush();

  const double write_ratio =
      cells.write_power_6t(0.95) / cells.write_power_6t(0.65);
  const double leak_ratio =
      cells.leakage_power_6t(0.95) / cells.leakage_power_6t(0.65);
  std::printf("\nPaper-shape checks:\n");
  std::printf("  6T write power drop 0.95->0.65 V (Fig 6b ~8.5->2.5 uW, "
              "~3.4x): measured %.2fx -> %s\n",
              write_ratio,
              write_ratio > 2.7 && write_ratio < 4.2 ? "PASS" : "CHECK");
  std::printf("  6T leakage drop 0.95->0.65 V (Fig 6c ~6.5->1.5 nW, ~4.3x): "
              "measured %.2fx -> %s\n",
              leak_ratio,
              leak_ratio > 3.3 && leak_ratio < 5.4 ? "PASS" : "CHECK");
  std::printf("  8T iso-voltage ratios (Section IV): read/write +%.0f %%, "
              "leakage +%.0f %% (paper: +20 %% / +47 %%)\n",
              100.0 * (cells.read_power_8t(0.8) / cells.read_power_6t(0.8) -
                       1.0),
              100.0 * (cells.leakage_power_8t(0.8) /
                           cells.leakage_power_6t(0.8) -
                       1.0));
  std::printf("  analytic transistor-stack 8T/6T leakage ratio at 0.95 V: "
              "%.2f (accounting pinned to the paper's 1.47; see DESIGN.md)\n",
              cells.analytic_leakage_ratio_8t(0.95));
  std::printf("\nCSV mirrored to %s/fig6_power.csv\n",
              bench::cache_dir().c_str());
  return 0;
}
