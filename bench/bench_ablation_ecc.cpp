// Ablation (extension beyond the paper): Hamming(12,8) SEC-protected all-6T
// storage versus the paper's hybrid 8T-6T approach at scaled voltage.
// Compares accuracy, area overhead and access power overhead of the two
// protection schemes.
#include <cstdio>

#include "common.hpp"
#include "core/memory_config.hpp"
#include "core/power_area.hpp"
#include "core/quantized_network.hpp"
#include "eccbase/ecc_memory.hpp"
#include "util/table.hpp"

int main() {
  using namespace hynapse;
  bench::print_header(
      "Ablation: ECC (Hamming SEC) baseline vs hybrid 8T-6T protection",
      "extension beyond the paper (design-alternative analysis)");

  const bench::Context ctx;
  const mc::FailureTable& table = bench::failure_table(ctx);
  const bench::Benchmark& bm = bench::benchmark_model();
  const core::QuantizedNetwork qnet{bm.net, 8};
  const data::Dataset test = bm.test.head(1200);
  const double nominal = core::quantized_accuracy(qnet, test);
  const std::vector<std::size_t> words = qnet.bank_words();

  core::EvalOptions opt;
  opt.chips = 3;

  const core::PowerAreaReport baseline = core::evaluate_power_area(
      core::MemoryConfig::all_6t(words), 0.75, ctx.cells);

  util::Table t{{"Scheme @0.65V", "Accuracy", "Acc. drop", "Area overhead",
                 "Access power vs 6T@0.75V"}};

  // Unprotected all-6T.
  {
    const core::MemoryConfig cfg = core::MemoryConfig::all_6t(words);
    const core::AccuracyResult acc =
        core::evaluate_accuracy(qnet, cfg, table, 0.65, test, opt);
    const core::RelativeSavings s = core::compare(
        core::evaluate_power_area(cfg, 0.65, ctx.cells), baseline);
    t.add_row({"all-6T (unprotected)", util::Table::pct(acc.mean),
               util::Table::pct(nominal - acc.mean), "0.00 %",
               "-" + util::Table::pct(s.access_power)});
  }
  // Hybrid (3,5).
  {
    const core::MemoryConfig cfg = core::MemoryConfig::uniform_hybrid(words, 3);
    const core::AccuracyResult acc =
        core::evaluate_accuracy(qnet, cfg, table, 0.65, test, opt);
    const core::RelativeSavings s = core::compare(
        core::evaluate_power_area(cfg, 0.65, ctx.cells), baseline);
    t.add_row({"hybrid 8T-6T (3,5)", util::Table::pct(acc.mean),
               util::Table::pct(nominal - acc.mean),
               util::Table::pct(cfg.area_overhead_vs_all_6t(ctx.constants)),
               "-" + util::Table::pct(s.access_power)});
  }
  // Config 2-A.
  {
    const std::vector<int> msbs{2, 3, 1, 1, 3};
    const core::MemoryConfig cfg = core::MemoryConfig::per_layer(words, msbs);
    const core::AccuracyResult acc =
        core::evaluate_accuracy(qnet, cfg, table, 0.65, test, opt);
    const core::RelativeSavings s = core::compare(
        core::evaluate_power_area(cfg, 0.65, ctx.cells), baseline);
    t.add_row({"sensitivity-driven 2-A", util::Table::pct(acc.mean),
               util::Table::pct(nominal - acc.mean),
               util::Table::pct(cfg.area_overhead_vs_all_6t(ctx.constants)),
               "-" + util::Table::pct(s.access_power)});
  }
  // ECC on all-6T: 12/8 cells and 12/8 access energy (decoder not charged).
  {
    const core::AccuracyResult acc =
        eccbase::evaluate_ecc_accuracy(qnet, table, 0.65, test, opt);
    const core::MemoryConfig raw = core::MemoryConfig::all_6t(words);
    core::PowerAreaReport r = core::evaluate_power_area(raw, 0.65, ctx.cells);
    r.access_power *= 1.5;
    r.leakage_power *= 1.5;
    const core::RelativeSavings s = core::compare(r, baseline);
    t.add_row({"all-6T + Hamming(12,8)", util::Table::pct(acc.mean),
               util::Table::pct(nominal - acc.mean),
               util::Table::pct(eccbase::ecc_area_overhead()),
               "-" + util::Table::pct(s.access_power)});
  }
  t.print();

  std::printf(
      "\nTakeaway: SEC corrects one error per word, but at 0.65 V the 6T\n"
      "per-bit failure rate makes multi-error words common (12 cells/word),\n"
      "so ECC both costs more area than Config 2 (50 %% vs 10.4 %%) and\n"
      "recovers less accuracy -- the paper's significance-driven protection\n"
      "is the better fit for ANN synaptic storage.\n");
  return 0;
}
