// Extension: process-corner and temperature sweep of the reference bitcells.
// A sign-off-style view the paper leaves implicit: how the margins and
// failure mechanisms move across TT/FF/SS/FS/SF and with junction
// temperature.
#include <cstdio>

#include "circuit/corners.hpp"
#include "common.hpp"
#include "mc/criteria.hpp"
#include "mc/montecarlo.hpp"
#include "mc/variation.hpp"
#include "util/table.hpp"

int main() {
  using namespace hynapse;
  bench::print_header("Extension: process corners and temperature",
                      "sign-off sweep beyond the paper's TT/300K analysis");

  const circuit::Technology nominal = circuit::ptm22();

  util::Table t{{"Corner", "6T read SNM [mV]", "6T WM [mV]",
                 "Iread@0.65V [uA]", "leak@0.95V [nA]",
                 "6T read fail @0.65V"}};
  for (circuit::ProcessCorner corner :
       {circuit::ProcessCorner::tt, circuit::ProcessCorner::ff,
        circuit::ProcessCorner::ss, circuit::ProcessCorner::fs,
        circuit::ProcessCorner::sf}) {
    const circuit::Technology tech = circuit::at_corner(nominal, corner);
    const circuit::Sizing6T s6 = circuit::reference_sizing_6t(tech);
    const circuit::Sizing8T s8 = circuit::reference_sizing_8t(tech);
    const circuit::Bitcell6T cell{tech, s6};
    const sram::SubArrayModel array{tech, sram::SubArrayGeometry{}, s6};
    const sram::CycleModel cycle{tech, array, cell};
    const mc::VariationSampler sampler{tech, s6, s8};
    const mc::FailureCriteria criteria{tech, cycle, s6, s8};
    mc::AnalyzerOptions opts;
    opts.mc_samples = 12000;
    const mc::FailureAnalyzer analyzer{criteria, sampler, opts};
    const mc::RateEstimate ra =
        analyzer.plain_mc_6t(mc::Mechanism::read_access, 0.65, 12000, 5);
    t.add_row({circuit::corner_name(corner),
               util::Table::num(1e3 * cell.read_snm(0.95), 1),
               util::Table::num(1e3 * cell.write_margin(0.95), 1),
               util::Table::num(1e6 * cell.read_current(0.65), 2),
               util::Table::num(1e9 * cell.leakage(0.95), 2),
               util::Table::sci(ra.p)});
  }
  t.print();
  std::printf("\nNote: the cycle budget is re-derived per corner (a real\n"
              "design would bin or guard-band instead), so the SS read-fail\n"
              "rate reflects variation on top of an already-slow array.\n");

  std::printf("\nTemperature sweep (TT corner):\n");
  util::Table tt{{"T [K]", "6T read SNM [mV]", "Iread@0.65V [uA]",
                  "leak@0.95V [nA]", "DRV-ish hold@0.3V"}};
  for (double temp : {250.0, 300.0, 358.0, 398.0}) {
    const circuit::Technology tech = circuit::at_temperature(nominal, temp);
    const circuit::Bitcell6T cell{tech, circuit::reference_sizing_6t(tech)};
    tt.add_row({util::Table::num(temp, 0),
                util::Table::num(1e3 * cell.read_snm(0.95), 1),
                util::Table::num(1e6 * cell.read_current(0.65), 2),
                util::Table::num(1e9 * cell.leakage(0.95), 2),
                cell.holds_state(0.30) ? "holds" : "fails"});
  }
  tt.print();
  return 0;
}
