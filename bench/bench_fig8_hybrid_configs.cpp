// Fig. 8 reproduction: significance-driven hybrid 8T-6T SRAM (Config 1).
// (a) accuracy for (1,7)(2,6)(3,5)(4,4) partitions at 0.65 V and 0.70 V;
// (b) access/leakage power reduction at 0.65 V against the iso-stability
// baseline (all-6T at 0.75 V); (c) area overhead per partition.
#include <cstdio>

#include "common.hpp"
#include "core/memory_config.hpp"
#include "core/power_area.hpp"
#include "core/quantized_network.hpp"
#include "engine/experiment_runner.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hynapse;
  const bench::BenchOptions bopts = bench::parse_bench_flags(argc, argv);
  bench::print_header(
      "Fig. 8: significance-driven hybrid 8T-6T SRAM (Configuration 1)",
      "Fig. 8(a) accuracy, 8(b) power reduction, 8(c) area overhead");

  const bench::Context ctx;
  const mc::FailureTable& table = bench::failure_table(ctx, bopts);
  const bench::Benchmark& bm = bench::benchmark_model();
  const core::QuantizedNetwork qnet{bm.net, 8};
  const data::Dataset test = bm.test.head(1500);
  const double nominal = core::quantized_accuracy(qnet, test);
  const std::vector<std::size_t> words = qnet.bank_words();

  // Iso-stability baseline (Section VI-B): all-6T at 0.75 V.
  const core::PowerAreaReport baseline = core::evaluate_power_area(
      core::MemoryConfig::all_6t(words), 0.75, ctx.cells);

  core::EvalOptions opt;
  opt.chips = 3;

  // All (partition, voltage) points go through the runner as one sweep:
  // 4 configs x 2 voltages x 3 chips = 24 jobs in flight on the pool.
  const engine::ExperimentRunner runner{bopts.threads};
  std::vector<engine::SweepPoint> points;
  points.reserve(8);
  for (int n = 1; n <= 4; ++n) {
    const core::MemoryConfig cfg =
        core::MemoryConfig::uniform_hybrid(words, n);
    points.push_back({cfg, 0.65});
    points.push_back({cfg, 0.70});
  }
  const std::vector<core::AccuracyResult> sweep =
      runner.run(qnet, engine::EvalJob::sweep(points, opt).against(table),
                 test);

  util::Table t{{"Config (#8T,#6T)", "Acc @0.65V", "Acc @0.70V",
                 "Access power red.", "Leakage red.", "Area increase"}};
  util::CsvWriter csv{bench::cache_dir() + "/fig8_hybrid.csv"};
  csv.header({"n_msb", "acc065", "acc070", "access_red", "leak_red",
              "area_overhead"});

  double acc3 = 0.0;
  core::RelativeSavings s3;
  for (int n = 1; n <= 4; ++n) {
    const core::MemoryConfig& cfg = points[2 * (n - 1)].config;
    const core::AccuracyResult& a65 = sweep[2 * (n - 1)];
    const core::AccuracyResult& a70 = sweep[2 * (n - 1) + 1];
    const core::PowerAreaReport r =
        core::evaluate_power_area(cfg, 0.65, ctx.cells);
    const core::RelativeSavings s = core::compare(r, baseline);
    const double area = cfg.area_overhead_vs_all_6t(ctx.constants);
    t.add_row({cfg.describe(), util::Table::pct(a65.mean),
               util::Table::pct(a70.mean), util::Table::pct(s.access_power),
               util::Table::pct(s.leakage_power), util::Table::pct(area)});
    csv.row_numeric({static_cast<double>(n), a65.mean, a70.mean,
                     s.access_power, s.leakage_power, area});
    if (n == 3) {
      acc3 = a65.mean;
      s3 = s;
    }
  }
  t.print();
  csv.flush();

  std::printf("\n8-bit nominal accuracy: %s\n",
              util::Table::pct(nominal).c_str());
  std::printf("\nPaper-shape checks:\n");
  std::printf("  (3,5) @0.65V power savings ~29 %% (Section VI-B): access "
              "%.2f %%, leakage %.2f %% -> %s\n",
              100.0 * s3.access_power, 100.0 * s3.leakage_power,
              (s3.access_power > 0.25 && s3.access_power < 0.33) ? "PASS"
                                                                 : "CHECK");
  std::printf("  (3,5) area penalty 13.75 %% (Section VI-B): %.2f %% -> %s\n",
              100.0 * core::MemoryConfig::uniform_hybrid(words, 3)
                          .area_overhead_vs_all_6t(ctx.constants),
              std::abs(core::MemoryConfig::uniform_hybrid(words, 3)
                           .area_overhead_vs_all_6t(ctx.constants) -
                       0.1375) < 0.002
                  ? "PASS"
                  : "CHECK");
  std::printf("  protecting 3-4 MSBs reaches close-to-nominal accuracy "
              "(Fig 8a): (3,5) drop = %.2f %% -> %s\n",
              100.0 * (nominal - acc3),
              nominal - acc3 < 0.03 ? "PASS" : "CHECK");
  std::printf("\nCSV mirrored to %s/fig8_hybrid.csv\n",
              bench::cache_dir().c_str());
  return 0;
}
