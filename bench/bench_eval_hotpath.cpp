// bench_eval_hotpath: chips/sec through the ANN fault-injection hot path,
// A/B/C over one accuracy-vs-vdd sweep (the Fig. 8/9 workload shape) on the
// Table-I topology:
//
//   * "pr3"    — frozen replica of the pipeline as it stood before the
//                delta-fault rework: per chip, construct SynapticMemory,
//                store/load the full ~1.4M-word image, dequantize into a
//                fresh Mlp and run the pre-rework unblocked i-p-j GEMM
//                forward over the test slice. This is the headline baseline
//                ("legacy path"): the in-tree legacy path silently inherits
//                the new blocked kernels, so only a frozen copy isolates
//                what this PR actually changed end to end.
//   * "legacy" — today's core::EvalPath::legacy (full rebuild per chip, but
//                the shared blocked GEMM): isolates the delta/workspace
//                contribution from the kernel contribution.
//   * "delta"  — core::EvalPath::delta + ann::EvalWorkspace (the PR-4
//                per-chip hot path).
//   * "fused"  — delta + fused multi-chip batches (EvalContext::
//                evaluate_chips): all chips in a group share one traversal
//                of the weight matrices per mini-batch, reference backend.
//   * "fused_simd" — the same fused batches through the SIMD kernel
//                backend (omitted when the build has no SIMD backend).
//
// Every arm must produce bit-identical per-chip accuracies; the bench
// aborts (exit 1) if any chip disagrees. The test slice defaults to 48
// images — a design-space *screening* slice (ESAM/MCAIMem-scale sweeps run
// thousands of (config, vdd) points x chips, and small eval slices are what
// makes that tractable; the delta path's advantage grows as the forward
// pass shrinks relative to the per-chip rebuild it eliminates). Use
// --images 2000 for the full synthetic test set.
//
// Flags: --chips N (per sweep point, default 24), --images N (default 48),
// --fuse N (chips per fused group, default 0 = auto sizing), plus the
// shared --threads/--json (bench::parse_bench_flags). --json
// overwrites PATH with one JSON object (the BENCH_eval_hotpath.json
// artifact collected by scripts/run_bench.sh).
//
// The failure table is synthetic (Fig. 5-shaped exponential falloff of the
// 6T rates with vdd, 8T failure-free), so the bench measures the evaluation
// hot path only — no Monte-Carlo, no model training, no disk cache.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "ann/backends/backend.hpp"
#include "common.hpp"
#include "core/delta_eval.hpp"
#include "core/experiments.hpp"
#include "core/synaptic_memory.hpp"
#include "data/digits.hpp"
#include "mc/failure_table.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace {

using namespace hynapse;
using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Frozen PR-3 forward pass (the pre-rework matrix.cpp gemm, verbatim loop
// structure): i-p-j with a zero skip, no tiling, no restrict. Kept local to
// the bench so the baseline cannot drift when the shared kernels improve.

void gemm_pr3(const ann::Matrix& a, const ann::Matrix& b, ann::Matrix& c) {
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  const auto body = [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      float* ci = c.row(i);
      std::fill(ci, ci + n, 0.0f);
      const float* ai = a.row(i);
      for (std::size_t p = 0; p < k; ++p) {
        const float aip = ai[p];
        if (aip == 0.0f) continue;
        const float* bp = b.row(p);
        for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
      }
    }
  };
  if (m >= 64) {
    util::parallel_for_chunks(m, body);
  } else {
    body(0, m);
  }
}

double accuracy_pr3(const ann::Mlp& net, const ann::Matrix& input,
                    std::span<const std::uint8_t> labels) {
  // PR-3 Mlp::accuracy: whole-set activations, freshly allocated per call.
  std::vector<ann::Matrix> acts(net.layer_sizes().size());
  acts[0] = input;
  for (std::size_t l = 0; l + 1 < net.layer_sizes().size(); ++l) {
    ann::Matrix& out = acts[l + 1];
    out = ann::Matrix{input.rows(), net.layer_sizes()[l + 1]};
    gemm_pr3(acts[l], net.weight(l), out);
    ann::add_row_bias(out, net.bias(l));
    if (l + 2 < net.layer_sizes().size()) {
      ann::activate_inplace(out, net.hidden_activation());
    } else {
      ann::softmax_rows_inplace(out);
    }
  }
  const ann::Matrix& out = acts.back();
  std::size_t hits = 0;
  for (std::size_t i = 0; i < out.rows(); ++i) {
    const float* r = out.row(i);
    const auto pred =
        static_cast<std::uint8_t>(std::max_element(r, r + out.cols()) - r);
    if (pred == labels[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(labels.size());
}

double evaluate_chip_pr3(const core::QuantizedNetwork& qnet,
                         const core::MemoryConfig& config,
                         const core::FaultModel& model,
                         const data::Dataset& test, std::uint64_t eval_seed,
                         std::size_t chip) {
  const std::uint64_t chip_seed =
      eval_seed ^ (0x9e3779b97f4a7c15ull * (chip + 1));
  core::SynapticMemory memory{config, model, chip_seed};
  memory.store_network(qnet);
  util::Rng read_rng{chip_seed ^ 0x5555aaaa5555aaaaull};
  const core::QuantizedNetwork faulted = memory.load_network(qnet, read_rng);
  const ann::Mlp net = faulted.dequantize();
  return accuracy_pr3(net, test.images, test.labels);
}

// ---------------------------------------------------------------------------

/// Fig. 5-shaped synthetic failure table: 6T rates fall off exponentially
/// with vdd (read dominant, write ~1/3, disturb ~1/10), 8T cells are
/// failure-free in the range of interest.
mc::FailureTable synthetic_table() {
  std::vector<mc::FailureTableRow> rows;
  for (double vdd = 0.60; vdd <= 1.001; vdd += 0.05) {
    mc::FailureTableRow row;
    row.vdd = vdd;
    const double read = 0.08 * std::exp(-(vdd - 0.55) / 0.035);
    row.cell6 = {read, read / 3.0, read / 10.0};
    row.cell8 = {0.0, 0.0, 0.0};
    rows.push_back(row);
  }
  return mc::FailureTable{std::move(rows)};
}

struct ArmResult {
  double seconds = 0.0;
  double chips_per_sec = 0.0;
  std::vector<std::vector<double>> per_point;  // [point][chip] accuracies
};

long parse_flag(int& argc, char** argv, const char* flag, long fallback) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
      const long v = std::strtol(argv[i + 1], nullptr, 10);
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      return v > 0 ? v : fallback;
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::parse_bench_flags(argc, argv);
  const auto chips = static_cast<std::size_t>(
      parse_flag(argc, argv, "--chips", 24));
  const auto images = static_cast<std::size_t>(
      parse_flag(argc, argv, "--images", 48));
  const auto fuse = static_cast<std::size_t>(
      parse_flag(argc, argv, "--fuse", 0));  // 0 = auto group sizing

  bench::print_header(
      "Chip-evaluation hot path: legacy full-rebuild vs delta+workspace",
      "Section V simulation framework; Fig. 8/9 sweep workload");

  const ann::Mlp net{core::table1_layer_sizes(), 5};
  const core::QuantizedNetwork qnet{net, 8};
  const core::MemoryConfig config =
      core::MemoryConfig::uniform_hybrid(qnet.bank_words(), 3);
  const mc::FailureTable table = synthetic_table();
  const data::Dataset test = data::generate_digits(2000, 77001).head(images);
  const std::vector<double> vdds{0.65, 0.70, 0.75, 0.80, 0.85, 0.90};

  std::printf("Table-I topology (784-1000-500-200-100-10), config %s\n",
              config.describe().c_str());
  std::printf("%zu vdd points x %zu chips, %zu test images\n\n", vdds.size(),
              chips, images);

  core::EvalOptions eval;
  eval.chips = chips;
  eval.seed = 20160312;
  eval.threads = opts.threads;

  const double total_chips = static_cast<double>(vdds.size() * chips);
  // Every arm runs its sweep twice and keeps the faster wall time
  // (min-of-reps: per-chip results are seed-deterministic, so both reps
  // compute identical accuracies and the min strips scheduler noise).
  constexpr int kReps = 2;
  const auto run_arm = [&](auto&& chip_fn) {
    ArmResult arm;
    arm.per_point.resize(vdds.size());
    arm.seconds = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < kReps; ++rep) {
      const Clock::time_point t0 = Clock::now();
      for (std::size_t v = 0; v < vdds.size(); ++v) {
        const core::FaultModel model{table, vdds[v], eval.policy};
        arm.per_point[v].resize(chips);
        util::parallel_for(
            chips,
            [&](std::size_t chip) {
              arm.per_point[v][chip] = chip_fn(model, chip);
            },
            eval.threads);
      }
      arm.seconds = std::min(
          arm.seconds,
          std::chrono::duration<double>(Clock::now() - t0).count());
    }
    arm.chips_per_sec = total_chips / arm.seconds;
    return arm;
  };

  std::printf("[pr3]    full rebuild + pre-rework unblocked GEMM...\n");
  const ArmResult pr3 = run_arm([&](const core::FaultModel& model,
                                    std::size_t chip) {
    return evaluate_chip_pr3(qnet, config, model, test, eval.seed, chip);
  });

  std::printf("[legacy] full rebuild + blocked GEMM (EvalPath::legacy)...\n");
  const ArmResult legacy = run_arm([&](const core::FaultModel& model,
                                       std::size_t chip) {
    return core::evaluate_chip(qnet, config, model, test, eval.seed, chip);
  });

  std::printf("[delta]  delta-fault + workspace (EvalPath::delta)...\n");
  core::EvalContextPool contexts;
  const std::uint64_t qnet_fp = core::network_fingerprint(qnet);
  const ArmResult delta = run_arm([&](const core::FaultModel& model,
                                      std::size_t chip) {
    core::EvalContextPool::Lease lease{contexts};
    return lease.context().evaluate_chip(qnet, qnet_fp, config, model, test,
                                         eval.seed, chip);
  });

  // Fused arms: chips of one sweep point share a single weight-matrix
  // traversal per mini-batch, in groups of `group` chips.
  const std::size_t group =
      core::fused_group_size(fuse, chips, eval.threads);
  const std::size_t num_groups = (chips + group - 1) / group;
  const auto run_fused_arm = [&](ann::backends::Backend backend) {
    ArmResult arm;
    arm.per_point.resize(vdds.size());
    arm.seconds = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < kReps; ++rep) {
      const Clock::time_point t0 = Clock::now();
      for (std::size_t v = 0; v < vdds.size(); ++v) {
        const core::FaultModel model{table, vdds[v], eval.policy};
        arm.per_point[v].resize(chips);
        std::span<double> out{arm.per_point[v]};
        util::parallel_for(
            num_groups,
            [&](std::size_t g) {
              const std::size_t begin = g * group;
              const std::size_t count = std::min(group, chips - begin);
              core::EvalContextPool::Lease lease{contexts};
              lease.context().evaluate_chips(
                  qnet, qnet_fp, config, model, test, eval.seed, begin, count,
                  out.subspan(begin, count), backend);
            },
            eval.threads);
      }
      arm.seconds = std::min(
          arm.seconds,
          std::chrono::duration<double>(Clock::now() - t0).count());
    }
    arm.chips_per_sec = total_chips / arm.seconds;
    return arm;
  };

  std::printf("[fused]  fused chip groups of %zu, reference backend...\n",
              group);
  const ArmResult fused = run_fused_arm(ann::backends::Backend::reference);

  const bool have_simd = ann::backends::simd_compiled();
  ArmResult fused_simd;
  if (have_simd) {
    std::printf("[fused_simd] fused chip groups of %zu, SIMD backend...\n",
                group);
    fused_simd = run_fused_arm(ann::backends::Backend::simd);
  } else {
    std::printf("[fused_simd] skipped: SIMD backend not compiled in\n");
  }

  bool identical = true;
  for (std::size_t v = 0; v < vdds.size(); ++v) {
    identical &= pr3.per_point[v] == delta.per_point[v];
    identical &= legacy.per_point[v] == delta.per_point[v];
    identical &= fused.per_point[v] == delta.per_point[v];
    if (have_simd) identical &= fused_simd.per_point[v] == delta.per_point[v];
  }

  util::Table out{{"path", "wall [s]", "chips/sec", "speedup"}};
  const auto row = [&](const char* name, const ArmResult& arm) {
    out.add_row({name, util::Table::num(arm.seconds, 2),
                 util::Table::num(arm.chips_per_sec, 1),
                 util::Table::num(pr3.seconds / arm.seconds, 2) + "x"});
  };
  row("pr3 (pre-rework)", pr3);
  row("legacy (rebuild, new kernels)", legacy);
  row("delta+workspace", delta);
  row("fused (reference backend)", fused);
  if (have_simd) row("fused (simd backend)", fused_simd);
  out.print();
  std::printf("\nfused group size: %zu chips (--fuse %zu)\n", group, fuse);
  std::printf("\nper-chip accuracies bit-identical across paths: %s\n",
              identical ? "yes" : "NO -- BUG");

  if (!opts.json.empty()) {
    std::ofstream js{opts.json, std::ios::trunc};
    js << "{\n"
       << "  \"name\": \"eval_hotpath\",\n"
       << "  \"vdd_points\": " << vdds.size() << ",\n"
       << "  \"chips_per_point\": " << chips << ",\n"
       << "  \"test_images\": " << images << ",\n"
       << "  \"threads\": "
       << (opts.threads == 0 ? util::default_thread_count() : opts.threads)
       << ",\n"
       << "  \"pr3_seconds\": " << pr3.seconds << ",\n"
       << "  \"pr3_chips_per_sec\": " << pr3.chips_per_sec << ",\n"
       << "  \"legacy_seconds\": " << legacy.seconds << ",\n"
       << "  \"legacy_chips_per_sec\": " << legacy.chips_per_sec << ",\n"
       << "  \"delta_seconds\": " << delta.seconds << ",\n"
       << "  \"delta_chips_per_sec\": " << delta.chips_per_sec << ",\n"
       << "  \"speedup_vs_pr3\": " << pr3.seconds / delta.seconds << ",\n"
       << "  \"speedup_vs_legacy\": " << legacy.seconds / delta.seconds
       << ",\n"
       << "  \"fused_group\": " << group << ",\n"
       << "  \"fused_seconds\": " << fused.seconds << ",\n"
       << "  \"fused_chips_per_sec\": " << fused.chips_per_sec << ",\n"
       << "  \"fused_speedup_vs_delta\": " << delta.seconds / fused.seconds
       << ",\n"
       << "  \"simd_compiled\": " << (have_simd ? "true" : "false") << ",\n";
    if (have_simd) {
      js << "  \"fused_simd_seconds\": " << fused_simd.seconds << ",\n"
         << "  \"fused_simd_chips_per_sec\": " << fused_simd.chips_per_sec
         << ",\n"
         << "  \"fused_simd_speedup_vs_delta\": "
         << delta.seconds / fused_simd.seconds << ",\n";
    }
    js << "  \"bit_identical\": " << (identical ? "true" : "false") << "\n"
       << "}\n";
    std::printf("JSON written to %s\n", opts.json.c_str());
  }
  return identical ? 0 : 1;
}
