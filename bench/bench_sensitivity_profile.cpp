// Section VI-C corroboration: per-layer and per-bit synaptic sensitivity of
// the benchmark network, testing the paper's three intuitions:
//  1. input & first-hidden-layer synapses are significant vs central layers;
//  2. output-layer synapses are sensitive (errors hit the classifier
//     directly);
//  3. the input layer tolerates errors better than the first hidden layer
//     (boundary pixels carry no information).
// Also runs the greedy allocation optimizer (our automation of the paper's
// manual assignment).
#include <cstdio>

#include "common.hpp"
#include "core/sensitivity.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace hynapse;
  bench::print_header(
      "Section VI-C: synaptic sensitivity profile + allocation optimizer",
      "Fig. 9 intuitions 1-2 and the input-vs-hidden resilience claim");

  const bench::Context ctx;
  const mc::FailureTable& table = bench::failure_table(ctx);
  const bench::Benchmark& bm = bench::benchmark_model();
  const core::QuantizedNetwork qnet{bm.net, 8};
  const data::Dataset eval = bm.test.head(800);

  core::SensitivityOptions opt;
  opt.bit_error_rate = 0.05;
  opt.trials = 3;

  std::printf("Injecting %.0f %% bit-flip errors per layer (MSB), %zu "
              "trials...\n\n",
              100.0 * opt.bit_error_rate, opt.trials);
  const std::vector<double> profile = core::layer_sensitivity(qnet, eval, opt);

  util::Table t{{"Synapse bank (fan-out of)", "Accuracy drop on MSB errors"}};
  const char* names[] = {"L1: input layer", "L2: hidden 1", "L3: hidden 2",
                         "L4: hidden 3", "L5: hidden 4 -> output"};
  util::CsvWriter csv{bench::cache_dir() + "/sensitivity_profile.csv"};
  csv.header({"layer", "msb_drop"});
  for (std::size_t l = 0; l < profile.size(); ++l) {
    t.add_row({names[l], util::Table::pct(profile[l])});
    csv.row_numeric({static_cast<double>(l + 1), profile[l]});
  }
  t.print();
  csv.flush();

  const double central = 0.5 * (profile[2] + profile[3]);
  std::printf("\nPaper-intuition checks:\n");
  std::printf("  1. first hidden layer more sensitive than central layers: "
              "%.2f %% vs %.2f %% -> %s\n",
              100.0 * profile[1], 100.0 * central,
              profile[1] > central ? "PASS" : "CHECK");
  std::printf("  2. output-feeding synapses more sensitive than central "
              "layers: %.2f %% vs %.2f %% -> %s\n",
              100.0 * profile[4], 100.0 * central,
              profile[4] > central ? "PASS" : "CHECK");
  std::printf("  3. input layer more resilient than first hidden layer: "
              "%.2f %% vs %.2f %% -> %s\n",
              100.0 * profile[0], 100.0 * profile[1],
              profile[0] < profile[1] ? "PASS" : "CHECK");

  // Per-bit heat map for the most and least sensitive banks.
  std::printf("\nPer-bit sensitivity (accuracy drop, %% | bit 7 = sign/MSB):\n");
  core::SensitivityOptions bitopt;
  bitopt.bit_error_rate = 0.05;
  bitopt.trials = 2;
  const auto heat = core::bit_sensitivity(qnet, eval.head(500), bitopt);
  util::Table ht{{"Bank", "b7", "b6", "b5", "b4", "b3", "b2", "b1", "b0"}};
  for (std::size_t l = 0; l < heat.size(); ++l) {
    std::vector<std::string> row{names[l]};
    for (int b = 7; b >= 0; --b)
      row.push_back(util::Table::num(100.0 * heat[l][static_cast<std::size_t>(b)], 1));
    ht.add_row(row);
  }
  ht.print();

  // Greedy allocation under the measured failure rates at 0.65 V.
  std::printf("\nGreedy per-bank MSB allocation at 0.65 V (target: <1 %% "
              "accuracy drop):\n");
  core::AllocationOptions aopt;
  aopt.target_accuracy_drop = 0.01;
  aopt.chips_per_eval = 2;
  const core::AllocationResult alloc = core::optimize_allocation(
      qnet, eval.head(600), table, 0.65, ctx.constants, aopt);
  std::printf("  allocation n=(");
  for (std::size_t i = 0; i < alloc.msbs_per_bank.size(); ++i)
    std::printf("%s%d", i ? "," : "", alloc.msbs_per_bank[i]);
  std::printf("), accuracy %.2f %%, area overhead %.2f %%, %zu evaluations\n",
              100.0 * alloc.accuracy, 100.0 * alloc.area_overhead,
              alloc.evaluations);
  std::printf("  (paper's manual Config 2-A: n=(2,3,1,1,3) at 10.41 %%)\n");
  return 0;
}
