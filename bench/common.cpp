#include "common.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "ann/serialize.hpp"
#include "ann/trainer.hpp"
#include "data/digits.hpp"
#include "data/idx.hpp"
#include "engine/table_cache.hpp"
#include "mc/criteria.hpp"
#include "mc/montecarlo.hpp"
#include "mc/variation.hpp"
#include "util/thread_pool.hpp"

namespace hynapse::bench {

std::string cache_dir() {
  // Shared convention (engine::default_cache_dir) so tables persisted by
  // one binary are reused by the CLI/service front ends; created here
  // because the trained-model cache writes into it too.
  const std::string dir = engine::default_cache_dir();
  std::filesystem::create_directories(dir);
  return dir;
}

BenchOptions parse_bench_flags(int& argc, char** argv) {
  BenchOptions opts;
  // --threads is owned by the shared util parser (which also clamps the
  // value and applies it process-wide); only the bench-specific flags are
  // handled here.
  opts.threads = util::strip_threads_flag(argc, argv);
  const auto numeric = [](const char* s) -> long {
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    return end != s && *end == '\0' ? v : 0;
  };
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto value = [&](const char* flag,
                           bool numeric_only) -> const char* {
      // Accepts "--flag value" and "--flag=value". With numeric_only the
      // separate-token form only consumes a numeric next token, so
      // "--samples --fresh" cannot swallow the following flag.
      const std::size_t len = std::strlen(flag);
      if (std::strncmp(arg, flag, len) != 0) return nullptr;
      if (arg[len] == '=') return arg + len + 1;
      if (arg[len] == '\0' && i + 1 < argc &&
          (!numeric_only || numeric(argv[i + 1]) != 0)) {
        return argv[++i];
      }
      return nullptr;
    };
    if (std::strcmp(arg, "--fresh") == 0) {
      opts.fresh = true;
    } else if (std::strcmp(arg, "--adaptive") == 0) {
      opts.adaptive = true;
    } else if (const char* v = value("--samples", true)) {
      const long n = numeric(v);
      opts.samples = n > 0 ? static_cast<std::size_t>(n) : 0;
    } else if (const char* v = value("--json", false)) {
      opts.json = v;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return opts;
}

Context::Context()
    : tech{circuit::ptm22()},
      constants{circuit::paper_constants()},
      array{tech, sram::SubArrayGeometry{}, circuit::reference_sizing_6t(tech)},
      cycle{tech, array, circuit::reference_6t(tech)},
      cells{tech, cycle, constants} {}

const mc::FailureTable& failure_table(const Context& ctx,
                                      const BenchOptions& opts) {
  static engine::FailureTableCache cache{cache_dir()};
  const circuit::Sizing6T s6 = circuit::reference_sizing_6t(ctx.tech);
  const circuit::Sizing8T s8 = circuit::reference_sizing_8t(ctx.tech);
  const mc::VariationSampler sampler{ctx.tech, s6, s8};
  const mc::FailureCriteria criteria{ctx.tech, ctx.cycle, s6, s8};
  mc::AnalyzerOptions ao;
  if (opts.samples != 0) {
    ao.mc_samples = opts.samples;
    ao.is_samples = std::max<std::size_t>(opts.samples / 2, 1000);
  }
  ao.threads = opts.threads;
  const mc::FailureAnalyzer analyzer{criteria, sampler, ao};
  const engine::TableSpec spec{ctx.tech, s6, s8, ctx.array.geometry(),
                               circuit::paper_voltage_grid(), 20160312};
  const std::string path =
      cache.csv_path(engine::table_fingerprint(spec, ao));
  if (opts.fresh || !std::filesystem::exists(path)) {
    // Progress heads-up only; the definitive source is reported below.
    std::printf(
        "[common] running bitcell Monte-Carlo over the VDD grid "
        "(cached afterwards)...\n");
  }
  engine::TableSource source{};
  const mc::FailureTable& table =
      cache.get(spec, analyzer, opts.fresh, &source);
  switch (source) {
    case engine::TableSource::memory:
      break;  // same process, already reported once
    case engine::TableSource::disk:
      std::printf("[common] failure table loaded from %s\n", path.c_str());
      break;
    case engine::TableSource::built:
      std::printf("[common] failure table built by bitcell Monte-Carlo and "
                  "cached to %s\n",
                  path.c_str());
      break;
  }
  return table;
}

namespace {

data::Dataset load_test_set() {
  if (const char* dir = std::getenv("HYNAPSE_MNIST_DIR")) {
    const std::string base{dir};
    if (auto ds = data::load_idx_dataset(base + "/t10k-images-idx3-ubyte",
                                         base + "/t10k-labels-idx1-ubyte")) {
      std::printf("[common] using real MNIST test set from %s\n", dir);
      return std::move(*ds);
    }
  }
  return data::generate_digits(2000, 77001);
}

data::Dataset load_train_set() {
  if (const char* dir = std::getenv("HYNAPSE_MNIST_DIR")) {
    const std::string base{dir};
    if (auto ds = data::load_idx_dataset(base + "/train-images-idx3-ubyte",
                                         base + "/train-labels-idx1-ubyte")) {
      std::printf("[common] using real MNIST training set from %s\n", dir);
      return std::move(*ds);
    }
  }
  return data::generate_digits(8000, 42001);
}

}  // namespace

const Benchmark& benchmark_model() {
  static const Benchmark bm = [] {
    // LeCun scaled tanh: the DeepLearnToolbox default, and what lets the
    // 4-hidden-layer Table-I network train with plain backprop.
    Benchmark out{
        ann::Mlp{core::table1_layer_sizes(), 1, ann::Activation::tanh_lecun},
        load_test_set(), 0.0};
    const std::string path = cache_dir() + "/table1_model.bin";
    if (auto cached = ann::load_mlp(path);
        cached && cached->layer_sizes() == core::table1_layer_sizes()) {
      out.net = std::move(*cached);
      std::printf("[common] benchmark model loaded from %s\n", path.c_str());
    } else {
      std::printf(
          "[common] training the Table-I benchmark network "
          "(784-1000-500-200-100-10), one-time cost...\n");
      const data::Dataset train = load_train_set();
      ann::TrainConfig cfg;
      cfg.epochs = 8;
      cfg.batch_size = 64;
      cfg.learning_rate = 0.05;
      cfg.momentum = 0.9;
      cfg.lr_decay = 0.85;
      cfg.on_epoch = [](std::size_t e, double loss) {
        std::printf("[common]   epoch %zu: training loss %.4f\n", e, loss);
      };
      ann::train_sgd(out.net, train.images, train.labels, cfg);
      ann::save_mlp(out.net, path);
      std::printf("[common] benchmark model cached to %s\n", path.c_str());
    }
    out.float_accuracy = out.net.accuracy(out.test.images, out.test.labels);
    std::printf("[common] float (32-bit) test accuracy: %.2f %%\n",
                100.0 * out.float_accuracy);
    return out;
  }();
  return bm;
}

std::vector<std::size_t> table1_bank_words() {
  return {785000, 500500, 100200, 20100, 1010};
}

void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Paper: Srinivasan et al., \"Significance Driven Hybrid 8T-6T "
              "SRAM for\nEnergy-Efficient Synaptic Storage in Artificial "
              "Neural Networks\", DATE 2016\n");
  std::printf("================================================================\n\n");
}

}  // namespace hynapse::bench
