// Table I reproduction: the benchmark ANN for digit recognition, plus the
// Section VI preamble claim that 8-bit synaptic precision costs <0.5 %
// accuracy against the 32-bit float network.
#include <cstdio>

#include "common.hpp"
#include "core/quantized_network.hpp"
#include "util/table.hpp"

int main() {
  using namespace hynapse;
  bench::print_header("Table I: ANN architecture for digit recognition",
                      "Table I + Section VI 8-bit precision claim");

  const bench::Benchmark& bm = bench::benchmark_model();
  const ann::Mlp& net = bm.net;

  util::Table t{{"Data Set", "Num. Layers", "Num. Neurons", "Num. Synapses"}};
  t.add_row({"synthetic digits (MNIST stand-in)",
             std::to_string(net.layer_sizes().size()),
             std::to_string(net.neuron_count()),
             std::to_string(net.synapse_count())});
  t.print();
  std::printf("\nPaper Table I:   6 layers, 2594 neurons, 1406810 synapses\n");
  std::printf("Reproduced:      %zu layers, %zu neurons, %zu synapses\n",
              net.layer_sizes().size(), net.neuron_count(),
              net.synapse_count());

  std::printf("\nTopology: ");
  for (std::size_t i = 0; i < net.layer_sizes().size(); ++i)
    std::printf("%s%zu", i ? "-" : "", net.layer_sizes()[i]);
  std::printf(" (unique solution of Table I's counts)\n");

  const core::QuantizedNetwork qnet{net, 8};
  const double q8 = core::quantized_accuracy(qnet, bm.test);
  util::Table acc{{"Precision", "Test accuracy", "Degradation vs float"}};
  acc.add_row({"32-bit float", util::Table::pct(bm.float_accuracy),
               "--"});
  acc.add_row({"8-bit fixed point", util::Table::pct(q8),
               util::Table::pct(bm.float_accuracy - q8)});
  std::printf("\n");
  acc.print();
  std::printf("\nPaper claim: 8-bit degradation < 0.5 %% -> measured %.3f %% "
              "(%s)\n",
              100.0 * (bm.float_accuracy - q8),
              bm.float_accuracy - q8 < 0.005 ? "PASS" : "CHECK");

  std::printf("\nPer-layer quantization formats:\n");
  util::Table fmts{{"Layer", "Fan-in x fan-out", "Weight fmt", "Bias fmt"}};
  for (std::size_t l = 0; l < qnet.num_layers(); ++l) {
    const core::QuantizedLayer& layer = qnet.layer(l);
    fmts.add_row({"L" + std::to_string(l + 1),
                  std::to_string(layer.fan_in) + " x " +
                      std::to_string(layer.fan_out),
                  layer.weight_fmt.name(), layer.bias_fmt.name()});
  }
  fmts.print();
  return 0;
}
