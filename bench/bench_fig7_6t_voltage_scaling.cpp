// Fig. 7 reproduction: (a) classification accuracy vs VDD with all-6T
// synaptic storage; (b) memory access and leakage power savings vs VDD
// (relative to nominal 0.95 V).
#include <cstdio>

#include "common.hpp"
#include "core/memory_config.hpp"
#include "core/power_area.hpp"
#include "core/quantized_network.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace hynapse;
  bench::print_header(
      "Fig. 7: all-6T synaptic storage under voltage scaling",
      "Fig. 7(a) accuracy vs VDD, Fig. 7(b) power savings vs VDD");

  const bench::Context ctx;
  const mc::FailureTable& table = bench::failure_table(ctx);
  const bench::Benchmark& bm = bench::benchmark_model();
  const core::QuantizedNetwork qnet{bm.net, 8};
  const data::Dataset test = bm.test.head(1500);
  const double nominal = core::quantized_accuracy(qnet, test);

  const core::MemoryConfig cfg =
      core::MemoryConfig::all_6t(qnet.bank_words());
  const core::PowerAreaReport base =
      core::evaluate_power_area(cfg, 0.95, ctx.cells);

  core::EvalOptions opt;
  opt.chips = 3;

  util::Table t{{"VDD [V]", "Accuracy", "+/- std", "Access power saving",
                 "Leakage saving"}};
  util::CsvWriter csv{bench::cache_dir() + "/fig7_voltage_scaling.csv"};
  csv.header({"vdd", "accuracy", "acc_std", "access_saving", "leak_saving"});

  double acc075 = 0.0;
  double acc065 = 0.0;
  for (double vdd : circuit::paper_voltage_grid()) {
    const core::AccuracyResult acc =
        core::evaluate_accuracy(qnet, cfg, table, vdd, test, opt);
    const core::PowerAreaReport here =
        core::evaluate_power_area(cfg, vdd, ctx.cells);
    const core::RelativeSavings s = core::compare(here, base);
    t.add_row({util::Table::num(vdd, 2), util::Table::pct(acc.mean),
               util::Table::pct(acc.stddev), util::Table::pct(s.access_power),
               util::Table::pct(s.leakage_power)});
    csv.row_numeric(
        {vdd, acc.mean, acc.stddev, s.access_power, s.leakage_power});
    if (vdd == 0.75) acc075 = acc.mean;
    if (vdd == 0.65) acc065 = acc.mean;
  }
  t.print();
  csv.flush();

  std::printf("\n8-bit nominal accuracy (no faults): %s\n",
              util::Table::pct(nominal).c_str());
  std::printf("\nPaper-shape checks:\n");
  std::printf("  scaling to 0.75 V costs <0.5 %% accuracy (Section VI-A): "
              "drop = %.3f %% -> %s\n",
              100.0 * (nominal - acc075),
              nominal - acc075 < 0.005 + 1e-9 ? "PASS" : "CHECK");
  std::printf("  aggressive scaling degrades >30 %% (Section VI-A): drop at "
              "0.65 V = %.1f %% -> %s\n",
              100.0 * (nominal - acc065),
              nominal - acc065 > 0.30 ? "PASS" : "CHECK");
  std::printf("\nCSV mirrored to %s/fig7_voltage_scaling.csv\n",
              bench::cache_dir().c_str());
  return 0;
}
