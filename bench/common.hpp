// Shared infrastructure for the figure/table reproduction harnesses: cached
// Monte-Carlo failure tables and a cached trained Table-I benchmark network,
// so each bench binary starts from the same artifacts without repeating the
// expensive steps.
#pragma once

#include <string>

#include "ann/mlp.hpp"
#include "circuit/reference.hpp"
#include "core/experiments.hpp"
#include "data/dataset.hpp"
#include "mc/failure_table.hpp"
#include "sram/power.hpp"

namespace hynapse::bench {

/// Directory for cached artifacts (failure table CSV, trained model).
/// Override with HYNAPSE_CACHE_DIR; created on demand.
[[nodiscard]] std::string cache_dir();

/// Flags every harness understands (parsed by parse_bench_flags):
///   --threads N    pool participation cap (0 = hardware concurrency)
///   --samples N    Monte-Carlo samples per mechanism (0 = paper default)
///   --fresh        rebuild cached artifacts, ignoring the disk cache
///   --json PATH    append machine-readable timing records to PATH
///   --adaptive     (fig5 bench) also run the CI-targeted adaptive MC arm
///                  and validate it against the fixed-sample oracle
struct BenchOptions {
  std::size_t threads = 0;
  std::size_t samples = 0;
  bool fresh = false;
  bool adaptive = false;
  std::string json;
};

/// Parses and removes the flags above from argv (positional arguments keep
/// their order) and applies --threads process-wide via
/// util::set_default_thread_count.
[[nodiscard]] BenchOptions parse_bench_flags(int& argc, char** argv);

/// Everything the system-level experiments need, wired to the reference
/// designs. Keep one instance per binary.
struct Context {
  circuit::Technology tech;
  circuit::PaperConstants constants;
  sram::SubArrayModel array;
  sram::CycleModel cycle;
  sram::BitcellPowerModel cells;

  Context();
};

/// Monte-Carlo failure table over the paper's voltage grid, served by an
/// engine::FailureTableCache in cache_dir(): memoized in-process and
/// persisted as a fingerprinted CSV keyed by (tech, grid, analyzer options,
/// seed), so changing any input builds a fresh table instead of loading a
/// stale file. opts.samples shrinks the analyzer for quick runs; opts.fresh
/// forces a rebuild; opts.threads caps pool participation.
[[nodiscard]] const mc::FailureTable& failure_table(
    const Context& ctx, const BenchOptions& opts = {});

/// The trained Table-I benchmark network (784-1000-500-200-100-10) on the
/// synthetic digit task, trained once and cached in cache_dir(). Loads real
/// MNIST instead when HYNAPSE_MNIST_DIR points at the four IDX files.
struct Benchmark {
  ann::Mlp net;
  data::Dataset test;
  double float_accuracy = 0.0;
};

[[nodiscard]] const Benchmark& benchmark_model();

/// Per-layer bank word counts for the Table-I network (weights + biases).
[[nodiscard]] std::vector<std::size_t> table1_bank_words();

/// Standard banner printed by every harness.
void print_header(const std::string& title, const std::string& paper_ref);

}  // namespace hynapse::bench
