// Section IV reproduction: static margins of the reference 6T and 8T
// bitcells across the voltage sweep (195 mV read SNM / 250 mV write margin
// at nominal; decoupled 8T read port; equal nominal access currents).
#include <cstdio>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace hynapse;
  bench::print_header("Section IV: bitcell margin characterization",
                      "SNM/WM targets, 8T decoupled-read properties");

  const bench::Context ctx;
  const circuit::Bitcell6T cell6 = circuit::reference_6t(ctx.tech);
  const circuit::Bitcell8T cell8 = circuit::reference_8t(ctx.tech);

  util::Table t{{"VDD [V]", "6T read SNM [mV]", "6T hold SNM [mV]",
                 "6T WM [mV]", "8T read SNM [mV]", "8T WM [mV]",
                 "6T Iread [uA]", "8T Iread [uA]"}};
  util::CsvWriter csv{bench::cache_dir() + "/margins.csv"};
  csv.header({"vdd", "snm6_read", "snm6_hold", "wm6", "snm8_read", "wm8",
              "iread6_uA", "iread8_uA"});
  for (double vdd : circuit::paper_voltage_grid()) {
    const double s6r = 1e3 * cell6.read_snm(vdd);
    const double s6h = 1e3 * cell6.hold_snm(vdd);
    const double w6 = 1e3 * cell6.write_margin(vdd);
    const double s8 = 1e3 * cell8.read_snm(vdd);
    const double w8 = 1e3 * cell8.write_margin(vdd);
    const double i6 = 1e6 * cell6.read_current(vdd);
    const double i8 = 1e6 * cell8.read_current(vdd);
    t.add_row({util::Table::num(vdd, 2), util::Table::num(s6r, 1),
               util::Table::num(s6h, 1), util::Table::num(w6, 1),
               util::Table::num(s8, 1), util::Table::num(w8, 1),
               util::Table::num(i6, 2), util::Table::num(i8, 2)});
    csv.row_numeric({vdd, s6r, s6h, w6, s8, w8, i6, i8});
  }
  t.print();
  csv.flush();

  const double snm = cell6.read_snm(ctx.tech.vdd_nominal);
  const double wm = cell6.write_margin(ctx.tech.vdd_nominal);
  std::printf("\nPaper anchors (Section IV):\n");
  std::printf("  nominal read SNM: paper 195 mV | measured %.1f mV -> %s\n",
              1e3 * snm, std::abs(snm - 0.195) < 0.01 ? "PASS" : "CHECK");
  std::printf("  nominal write margin: paper 250 mV | measured %.1f mV -> "
              "%s\n",
              1e3 * wm, std::abs(wm - 0.250) < 0.012 ? "PASS" : "CHECK");
  std::printf("  8T read SNM == hold SNM (decoupled read): %s\n",
              cell8.read_snm(0.65) == cell8.hold_snm(0.65) ? "PASS" : "CHECK");
  std::printf("  8T write margin exceeds 6T (write-optimized core): "
              "%.0f mV vs %.0f mV -> %s\n",
              1e3 * cell8.write_margin(0.95), 1e3 * wm,
              cell8.write_margin(0.95) > wm ? "PASS" : "CHECK");
  std::printf("\nCSV mirrored to %s/margins.csv\n", bench::cache_dir().c_str());
  return 0;
}
