// Fig. 9 / Section VI-C reproduction: the synaptic-sensitivity-driven hybrid
// memory architecture (Configuration 2) with five per-layer banks.
//
// Config 2-A = n=(2,3,1,1,3): the paper's headline 30.91 % access power
// reduction at 10.41 % area overhead for <1 % accuracy loss.
// Config 2-B = n=(1,2,1,1,2): the relaxed allocation at 40.25 % lower area
// cost for <4 % loss (the paper quotes +7.38 % additional power savings; see
// EXPERIMENTS.md for the discrepancy analysis, including the voltage at
// which B would deliver that number).
#include <cstdio>

#include "common.hpp"
#include "core/memory_config.hpp"
#include "core/power_area.hpp"
#include "core/quantized_network.hpp"
#include "engine/experiment_runner.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hynapse;
  const bench::BenchOptions bopts = bench::parse_bench_flags(argc, argv);
  bench::print_header(
      "Fig. 9: synaptic-sensitivity-driven architecture (Configuration 2)",
      "Fig. 9 + Section VI-C headline numbers");

  const bench::Context ctx;
  const mc::FailureTable& table = bench::failure_table(ctx, bopts);
  const bench::Benchmark& bm = bench::benchmark_model();
  const core::QuantizedNetwork qnet{bm.net, 8};
  const data::Dataset test = bm.test.head(1500);
  const double nominal = core::quantized_accuracy(qnet, test);
  const std::vector<std::size_t> words = qnet.bank_words();

  const core::PowerAreaReport baseline = core::evaluate_power_area(
      core::MemoryConfig::all_6t(words), 0.75, ctx.cells);

  core::EvalOptions opt;
  opt.chips = 5;

  const std::vector<int> config_a{2, 3, 1, 1, 3};
  const std::vector<int> config_b{1, 2, 1, 1, 2};

  util::Table t{{"Config", "Accuracy @0.65V", "+/- std", "Acc. drop",
                 "Access power red.", "Leakage red.", "Area overhead"}};
  util::CsvWriter csv{bench::cache_dir() + "/fig9_config2.csv"};
  csv.header({"config", "accuracy", "std", "drop", "access_red", "leak_red",
              "area"});

  struct Row {
    const char* name;
    const std::vector<int>& msbs;
  };
  const Row row_defs[] = {Row{"2-A (2,3,1,1,3)", config_a},
                          Row{"2-B (1,2,1,1,2)", config_b}};

  // Both configurations as one runner sweep: 2 points x 5 chips = 10 jobs.
  const engine::ExperimentRunner runner{bopts.threads};
  std::vector<engine::SweepPoint> points;
  for (const Row& row : row_defs) {
    points.push_back({core::MemoryConfig::per_layer(words, row.msbs), 0.65});
  }
  const std::vector<core::AccuracyResult> sweep =
      runner.run(qnet, engine::EvalJob::sweep(points, opt).against(table),
                 test);

  core::RelativeSavings sa;
  core::RelativeSavings sb;
  double drop_a = 0.0;
  double drop_b = 0.0;
  double area_a = 0.0;
  double area_b = 0.0;
  for (std::size_t i = 0; i < 2; ++i) {
    const Row& row = row_defs[i];
    const core::MemoryConfig& cfg = points[i].config;
    const core::AccuracyResult& acc = sweep[i];
    const core::PowerAreaReport r =
        core::evaluate_power_area(cfg, 0.65, ctx.cells);
    const core::RelativeSavings s = core::compare(r, baseline);
    const double area = cfg.area_overhead_vs_all_6t(ctx.constants);
    const double drop = nominal - acc.mean;
    t.add_row({row.name, util::Table::pct(acc.mean),
               util::Table::pct(acc.stddev), util::Table::pct(drop),
               util::Table::pct(s.access_power),
               util::Table::pct(s.leakage_power), util::Table::pct(area)});
    csv.row({std::string{row.name}, util::Table::num(acc.mean, 6),
             util::Table::num(acc.stddev, 6), util::Table::num(drop, 6),
             util::Table::num(s.access_power, 6),
             util::Table::num(s.leakage_power, 6),
             util::Table::num(area, 6)});
    if (row.msbs == config_a) {
      sa = s;
      drop_a = drop;
      area_a = area;
    } else {
      sb = s;
      drop_b = drop;
      area_b = area;
    }
  }
  t.print();
  csv.flush();

  std::printf("\nPaper headline (Section VI-C) vs measured:\n");
  std::printf("  Config 2-A access power reduction: paper 30.91 %% | "
              "measured %.2f %% -> %s\n",
              100.0 * sa.access_power,
              std::abs(sa.access_power - 0.3091) < 0.035 ? "PASS" : "CHECK");
  std::printf("  Config 2-A area overhead: paper 10.41 %% | measured "
              "%.2f %% -> %s\n",
              100.0 * area_a,
              std::abs(area_a - 0.1041) < 0.002 ? "PASS" : "CHECK");
  std::printf("  Config 2-A accuracy loss: paper <1 %% | measured %.2f %% -> "
              "%s\n",
              100.0 * drop_a, drop_a < 0.01 + 0.005 ? "PASS" : "CHECK");
  std::printf("  Config 2-B area cost reduction vs 2-A: paper 40.25 %% | "
              "measured %.2f %% -> %s\n",
              100.0 * (1.0 - area_b / area_a),
              std::abs(1.0 - area_b / area_a - 0.4025) < 0.01 ? "PASS"
                                                              : "CHECK");
  std::printf("  Config 2-B accuracy loss: paper <4 %% | measured %.2f %% -> "
              "%s\n",
              100.0 * drop_b, drop_b < 0.04 + 0.01 ? "PASS" : "CHECK");
  std::printf("  Config 2-B additional access power savings at 0.65 V: "
              "measured %.2f %% (paper quotes 7.38 %%; see EXPERIMENTS.md)\n",
              100.0 * (sb.access_power - sa.access_power));

  // Voltage at which Config 2-B would deliver the paper's +7.38 %: sweep.
  for (double vdd = 0.65; vdd >= 0.59; vdd -= 0.01) {
    const core::PowerAreaReport r = core::evaluate_power_area(
        core::MemoryConfig::per_layer(words, config_b), vdd, ctx.cells);
    const core::RelativeSavings s = core::compare(r, baseline);
    if (s.access_power >= sa.access_power + 0.0738) {
      std::printf("  (Config 2-B reaches +7.38 %% over 2-A at VDD ~ %.2f V)\n",
                  vdd);
      break;
    }
  }
  std::printf("\nCSV mirrored to %s/fig9_config2.csv\n",
              bench::cache_dir().c_str());
  return 0;
}
