// Extension: chip-binning view of the hybrid synaptic memory. Accuracy is a
// per-die random variable; this harness reports its distribution and the
// "accuracy yield" at spec thresholds, the margin *distributions* behind the
// failure rates, per-class damage (confusion), and the AxNN-style neuron
// resilience profile the paper cites for its Configuration-2 intuition.
#include <cstdio>

#include "ann/metrics.hpp"
#include "common.hpp"
#include "core/binning.hpp"
#include "core/memory_config.hpp"
#include "core/quantized_network.hpp"
#include "core/saliency.hpp"
#include "core/synaptic_memory.hpp"
#include "mc/margins.hpp"
#include "util/table.hpp"

int main() {
  using namespace hynapse;
  bench::print_header(
      "Extension: chip binning, margin distributions, neuron resilience",
      "per-die statistics beyond the paper's mean-accuracy reporting");

  const bench::Context ctx;
  const mc::FailureTable& table = bench::failure_table(ctx);
  const bench::Benchmark& bm = bench::benchmark_model();
  const core::QuantizedNetwork qnet{bm.net, 8};
  const data::Dataset test = bm.test.head(1000);
  const std::vector<std::size_t> words = qnet.bank_words();

  // --- chip accuracy distributions ----------------------------------------
  std::printf("Accuracy distribution over 20 simulated dies at 0.65 V:\n");
  util::Table t{{"Config", "mean", "std", "min", "p10", "max",
                 "yield @97%", "yield @99%"}};
  struct Row {
    const char* name;
    core::MemoryConfig cfg;
  };
  const std::vector<int> msbs_a{2, 3, 1, 1, 3};
  const Row rows[] = {
      {"all-6T", core::MemoryConfig::all_6t(words)},
      {"hybrid (2,6)", core::MemoryConfig::uniform_hybrid(words, 2)},
      {"hybrid (3,5)", core::MemoryConfig::uniform_hybrid(words, 3)},
      {"Config 2-A", core::MemoryConfig::per_layer(words, msbs_a)},
  };
  for (const Row& row : rows) {
    const core::ChipDistribution d = core::chip_accuracy_distribution(
        qnet, row.cfg, table, 0.65, test, 20);
    t.add_row({row.name, util::Table::pct(d.mean), util::Table::pct(d.stddev),
               util::Table::pct(d.min), util::Table::pct(d.percentile(0.1)),
               util::Table::pct(d.max), util::Table::pct(d.accuracy_yield(0.97)),
               util::Table::pct(d.accuracy_yield(0.99))});
  }
  t.print();

  // --- margin distributions -------------------------------------------------
  std::printf("\n6T read-SNM population under variation (800 samples):\n");
  const circuit::Sizing6T s6 = circuit::reference_sizing_6t(ctx.tech);
  const circuit::Sizing8T s8 = circuit::reference_sizing_8t(ctx.tech);
  const mc::VariationSampler sampler{ctx.tech, s6, s8};
  util::Table mt{{"VDD [V]", "mean [mV]", "std [mV]", "p1 [mV]", "p0.1 [mV]",
                  "min [mV]", "SNM<=0"}};
  for (double vdd : {0.65, 0.80, 0.95}) {
    const mc::MarginDistribution d =
        mc::read_snm_distribution(ctx.tech, s6, sampler, vdd, 800, 11, 140);
    mt.add_row({util::Table::num(vdd, 2), util::Table::num(1e3 * d.mean, 1),
                util::Table::num(1e3 * d.stddev, 1),
                util::Table::num(1e3 * d.p01, 1),
                util::Table::num(1e3 * d.p001, 1),
                util::Table::num(1e3 * d.min, 1),
                util::Table::pct(d.fraction_nonpositive)});
  }
  mt.print();

  std::printf("\n6T write-flip-time population at 0.65 V (2000 samples):\n");
  const mc::MarginDistribution wt = mc::write_time_distribution(
      ctx.tech, s6, sampler, 0.65, ctx.array.c_node(), 4e-10, 2000, 13);
  std::printf("  mean %.1f ps, std %.1f ps, median %.1f ps, window-misses "
              "%.3f %%\n",
              1e12 * wt.mean, 1e12 * wt.stddev, 1e12 * wt.p50,
              100.0 * wt.fraction_nonpositive);

  // --- per-class damage -------------------------------------------------------
  std::printf("\nPer-class recall of one all-6T die at 0.70 V (knee of "
              "Fig. 7a):\n");
  {
    const core::FaultModel model{table, 0.70};
    core::SynapticMemory mem{core::MemoryConfig::all_6t(words), model, 321};
    mem.store_network(qnet);
    util::Rng rng{322};
    const ann::Mlp faulted = mem.load_network(qnet, rng).dequantize();
    const ann::ConfusionMatrix cm =
        ann::evaluate_confusion(faulted, test.images, test.labels);
    util::Table ct{{"digit", "recall", "precision"}};
    for (std::size_t c = 0; c < 10; ++c) {
      ct.add_row({std::to_string(c), util::Table::pct(cm.recall(c)),
                  util::Table::pct(cm.precision(c))});
    }
    ct.print();
    std::printf("  worst class: %zu | macro-F1 %.4f | top-3 accuracy "
                "%.2f %%\n",
                cm.worst_class(), cm.macro_f1(),
                100.0 * ann::top_k_accuracy(faulted, test.images, test.labels,
                                            3));
  }

  // --- neuron resilience (AxNN-style, reference [8] of the paper) -----------
  std::printf("\nNeuron-ablation resilience per hidden layer (12 single "
              "neurons + 25 %% groups):\n");
  const auto layers = core::layer_resilience(bm.net, test.head(400));
  util::Table lt{{"hidden layer", "width", "single-neuron mean drop",
                  "resilient fraction", "25% group drop"}};
  for (const auto& lr : layers) {
    const double gdrop = core::group_ablation_drop(
        bm.net, test.head(400), lr.layer, 0.25, 3);
    lt.add_row({"H" + std::to_string(lr.layer + 1),
                std::to_string(bm.net.layer_sizes()[lr.layer + 1]),
                util::Table::pct(lr.mean_drop),
                util::Table::pct(lr.resilient_fraction),
                util::Table::pct(gdrop)});
  }
  lt.print();
  std::printf("\nPaper's cited claim ([8]): the fraction of resilient "
              "neurons decreases toward the output.\n");
  return 0;
}
