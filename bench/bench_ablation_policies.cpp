// Ablation: how much do the fault-injection modeling choices matter?
// Sweeps the read-fault sensing policy (random per read / always flip /
// stuck at power-up) and the number of simulated chips, at the Fig. 7
// collapse point and at the Fig. 9 operating point, quantifying the
// robustness of the paper-level conclusions to simulator semantics.
#include <cstdio>

#include "common.hpp"
#include "core/memory_config.hpp"
#include "core/quantized_network.hpp"
#include "util/table.hpp"

int main() {
  using namespace hynapse;
  bench::print_header(
      "Ablation: fault-injection policy sensitivity",
      "modeling-choice robustness (beyond the paper)");

  const bench::Context ctx;
  const mc::FailureTable& table = bench::failure_table(ctx);
  const bench::Benchmark& bm = bench::benchmark_model();
  const core::QuantizedNetwork qnet{bm.net, 8};
  const data::Dataset test = bm.test.head(1000);
  const double nominal = core::quantized_accuracy(qnet, test);
  const std::vector<std::size_t> words = qnet.bank_words();

  struct PolicyRow {
    const char* name;
    core::ReadFaultPolicy policy;
  };
  const PolicyRow policies[] = {
      {"random per read (default)", core::ReadFaultPolicy::random_per_read},
      {"always flip", core::ReadFaultPolicy::always_flip},
      {"stuck at power-up", core::ReadFaultPolicy::stuck_at_powerup},
  };

  util::Table t{{"Read-fault policy", "all-6T acc @0.65V",
                 "(3,5) hybrid acc @0.65V", "Config 2-A acc @0.65V"}};
  for (const PolicyRow& p : policies) {
    core::EvalOptions opt;
    opt.chips = 3;
    opt.policy = p.policy;
    const core::AccuracyResult a6 = core::evaluate_accuracy(
        qnet, core::MemoryConfig::all_6t(words), table, 0.65, test, opt);
    const core::AccuracyResult ah = core::evaluate_accuracy(
        qnet, core::MemoryConfig::uniform_hybrid(words, 3), table, 0.65,
        test, opt);
    const std::vector<int> msbs{2, 3, 1, 1, 3};
    const core::AccuracyResult a2 = core::evaluate_accuracy(
        qnet, core::MemoryConfig::per_layer(words, msbs), table, 0.65, test,
        opt);
    t.add_row({p.name, util::Table::pct(a6.mean), util::Table::pct(ah.mean),
               util::Table::pct(a2.mean)});
  }
  t.print();
  std::printf("\n8-bit nominal accuracy: %s\n",
              util::Table::pct(nominal).c_str());
  std::printf(
      "\nExpected reading: 'always flip' is the harshest policy (every\n"
      "defective read senses wrong), 'random per read' halves the effective\n"
      "rate, 'stuck at power-up' is random-but-persistent. The paper's\n"
      "conclusion -- MSB protection recovers near-nominal accuracy -- holds\n"
      "under every policy; only the depth of the all-6T collapse moves.\n");

  // Chip-count convergence of the reported means.
  std::printf("\nChip-sample convergence (all-6T @0.70 V, default policy):\n");
  util::Table ct{{"chips", "mean accuracy", "std"}};
  for (std::size_t chips : {2u, 5u, 10u, 20u}) {
    core::EvalOptions opt;
    opt.chips = chips;
    const core::AccuracyResult r = core::evaluate_accuracy(
        qnet, core::MemoryConfig::all_6t(words), table, 0.70,
        test.head(500), opt);
    ct.add_row({std::to_string(chips), util::Table::pct(r.mean),
                util::Table::pct(r.stddev)});
  }
  ct.print();
  return 0;
}
