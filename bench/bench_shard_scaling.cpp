// bench_shard_scaling: monolithic vs sharded failure-table construction.
//
// Builds the paper-grid Monte-Carlo failure table monolithically with
// mc::FailureTable::build at every thread count in {1, 3, 8}, then
// re-builds it through the engine::ShardPlanner -> ShardCoordinator
// scatter/merge path for every shard count in {1, 2, 5} x the same thread
// counts, each into a fresh cache directory so every combination pays for
// its builds. Every merged table is asserted bit-identical to the
// (thread-count-invariant) monolithic one -- the acceptance gate of the
// sharding determinism contract (docs/sharding.md) -- and each sharded
// arm's wall clock is compared against the monolithic arm at the SAME
// thread count, so the reported overhead isolates the scatter/merge cost
// from thread scaling: sharding is useful for cross-process distribution
// precisely because it costs ~nothing locally.
//
// Flags (bench::parse_bench_flags): --threads N (accepted for symmetry;
// the arms pin their own thread counts), --samples N (MC samples per
// mechanism, default 2500), --json PATH (write the comparison as one JSON
// object -- the BENCH_shard_scaling.json artifact collected by
// scripts/run_bench.sh).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include "circuit/reference.hpp"
#include "common.hpp"
#include "engine/shard_coordinator.hpp"
#include "engine/shard_plan.hpp"
#include "engine/table_cache.hpp"
#include "mc/criteria.hpp"
#include "mc/failure_table.hpp"
#include "mc/montecarlo.hpp"
#include "mc/variation.hpp"
#include "util/table.hpp"

namespace {

using namespace hynapse;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>{Clock::now() - t0}.count();
}

bool rows_identical(const mc::FailureTable& a, const mc::FailureTable& b) {
  if (a.rows().size() != b.rows().size()) return false;
  for (std::size_t i = 0; i < a.rows().size(); ++i) {
    const mc::FailureTableRow& ra = a.rows()[i];
    const mc::FailureTableRow& rb = b.rows()[i];
    if (ra.vdd != rb.vdd || ra.cell6.read_access != rb.cell6.read_access ||
        ra.cell6.write_fail != rb.cell6.write_fail ||
        ra.cell6.read_disturb != rb.cell6.read_disturb ||
        ra.cell8.read_access != rb.cell8.read_access ||
        ra.cell8.write_fail != rb.cell8.write_fail ||
        ra.cell8.read_disturb != rb.cell8.read_disturb) {
      return false;
    }
  }
  return true;
}

struct Combo {
  std::size_t shards = 0;
  std::size_t threads = 0;
  double seconds = 0.0;
  double vs_monolithic = 0.0;  ///< vs the monolithic arm at the same threads
  bool identical = false;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_bench_flags(argc, argv);
  const std::size_t samples = opts.samples != 0 ? opts.samples : 2500;

  bench::print_header(
      "Shard scaling: monolithic vs scatter/merge failure-table builds",
      "engine::ShardPlanner + ShardCoordinator (not a paper figure)");

  const circuit::Technology tech = circuit::ptm22();
  const circuit::Sizing6T s6 = circuit::reference_sizing_6t(tech);
  const circuit::Sizing8T s8 = circuit::reference_sizing_8t(tech);
  const sram::SubArrayModel array{tech, sram::SubArrayGeometry{}, s6};
  const sram::CycleModel cycle{tech, array, circuit::Bitcell6T{tech, s6}};
  const mc::VariationSampler sampler{tech, s6, s8};
  const mc::FailureCriteria criteria{tech, cycle, s6, s8};

  engine::TableSpec spec;
  spec.tech = tech;
  spec.sizing6 = s6;
  spec.sizing8 = s8;
  spec.geometry = array.geometry();
  spec.vdd_grid = circuit::paper_voltage_grid();
  spec.seed = 20160312;

  mc::AnalyzerOptions ao;
  ao.mc_samples = samples;
  ao.is_samples = std::max<std::size_t>(samples / 2, 200);

  std::printf("grid: %zu voltages, %zu MC samples/mechanism\n\n",
              spec.vdd_grid.size(), samples);

  const std::size_t shard_counts[] = {1, 2, 5};
  const std::size_t thread_counts[] = {1, 3, 8};

  // One monolithic arm per thread count: each sharded combination is
  // compared against the monolithic build with the SAME thread budget, so
  // the ratio measures scatter/merge overhead, not thread scaling. The
  // tables themselves are thread-count invariant.
  std::printf("monolithic FailureTable::build per thread count...\n");
  std::optional<mc::FailureTable> monolithic;
  double mono_seconds[sizeof thread_counts / sizeof thread_counts[0]] = {};
  for (std::size_t t = 0; t < std::size(thread_counts); ++t) {
    mc::AnalyzerOptions mono_ao = ao;
    mono_ao.threads = thread_counts[t];
    const mc::FailureAnalyzer analyzer{criteria, sampler, mono_ao};
    const Clock::time_point t0 = Clock::now();
    mc::FailureTable built =
        mc::FailureTable::build(analyzer, spec.vdd_grid, spec.seed);
    mono_seconds[t] = seconds_since(t0);
    std::printf("  threads=%zu: %.3f s\n", thread_counts[t],
                mono_seconds[t]);
    if (!monolithic) monolithic.emplace(std::move(built));
  }
  std::printf("\n");

  std::vector<Combo> combos;
  bool all_identical = true;
  double best_sharded = 0.0;
  double best_overhead = 0.0;

  const std::string scratch =
      (std::filesystem::temp_directory_path() / "hynapse_bench_shards")
          .string();
  util::Table table{{"shards", "threads", "seconds", "vs monolithic",
                     "bit-identical"}};
  for (const std::size_t shards : shard_counts) {
    for (std::size_t t = 0; t < std::size(thread_counts); ++t) {
      const std::size_t threads = thread_counts[t];
      // Fresh cache per combination: every build is paid for, nothing
      // replays from a previous combination's artifacts.
      std::filesystem::remove_all(scratch);
      engine::FailureTableCache cache{scratch};
      engine::ShardCoordinator coordinator{cache, threads};

      mc::AnalyzerOptions shard_ao = ao;
      shard_ao.threads = threads;
      const mc::FailureAnalyzer shard_analyzer{criteria, sampler, shard_ao};
      engine::ShardPlanOptions po;
      po.shard_count = shards;
      const engine::ShardPlan plan =
          engine::ShardPlanner::plan(spec, shard_ao, po);

      Combo combo;
      combo.shards = shards;
      combo.threads = threads;
      const Clock::time_point c0 = Clock::now();
      const mc::FailureTable& merged =
          coordinator.acquire(plan, shard_analyzer);
      combo.seconds = seconds_since(c0);
      combo.vs_monolithic = combo.seconds / mono_seconds[t];
      combo.identical = rows_identical(merged, *monolithic);
      all_identical = all_identical && combo.identical;
      if (best_sharded == 0.0 || combo.seconds < best_sharded) {
        best_sharded = combo.seconds;
      }
      if (best_overhead == 0.0 || combo.vs_monolithic < best_overhead) {
        best_overhead = combo.vs_monolithic;
      }
      table.add_row({std::to_string(shards), std::to_string(threads),
                     util::Table::num(combo.seconds, 3),
                     util::Table::num(combo.vs_monolithic, 2) + "x",
                     combo.identical ? "yes" : "NO"});
      combos.push_back(combo);
    }
  }
  std::filesystem::remove_all(scratch);
  table.print();
  std::printf(
      "\nbest sharded %.3f s (best same-thread overhead %.2fx); "
      "merged tables %s\n",
      best_sharded, best_overhead,
      all_identical ? "all bit-identical" : "DIVERGED");
  if (!all_identical) {
    std::fprintf(stderr,
                 "error: a sharded build diverged from the monolithic "
                 "table\n");
    return 1;
  }

  if (!opts.json.empty()) {
    std::ofstream out{opts.json, std::ios::trunc};
    out << "{\n"
        << "  \"name\": \"shard_scaling\",\n"
        << "  \"mc_samples\": " << samples << ",\n"
        << "  \"grid_rows\": " << spec.vdd_grid.size() << ",\n"
        << "  \"monolithic_seconds\": {";
    for (std::size_t t = 0; t < std::size(thread_counts); ++t) {
      out << (t != 0 ? ", " : "") << "\"" << thread_counts[t]
          << "\": " << mono_seconds[t];
    }
    out << "},\n"
        << "  \"best_sharded_seconds\": " << best_sharded << ",\n"
        << "  \"overhead_vs_monolithic\": " << best_overhead << ",\n"
        << "  \"bit_identical\": " << (all_identical ? "true" : "false")
        << ",\n"
        << "  \"combos\": [\n";
    for (std::size_t i = 0; i < combos.size(); ++i) {
      out << "    {\"shards\": " << combos[i].shards
          << ", \"threads\": " << combos[i].threads
          << ", \"seconds\": " << combos[i].seconds
          << ", \"vs_monolithic\": " << combos[i].vs_monolithic << "}"
          << (i + 1 < combos.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("JSON written to %s\n", opts.json.c_str());
  }
  return 0;
}
