#!/usr/bin/env bash
# Fleet smoke test: start two `hynapse_cli fleet-worker` processes on
# loopback, scatter a table build across them with `fleet-build`, build the
# same provenance single-process, and byte-compare the two merged CSVs --
# the distributed build must be bit-identical (docs/distributed.md). Used
# by CI and handy after a local build.
#
# Usage: scripts/run_fleet_smoke.sh [build-dir]   (default: build/release)
set -euo pipefail

build_dir=${1:-build/release}
cli="${build_dir}/examples/hynapse_cli"

if [[ ! -x "${cli}" ]]; then
  echo "error: ${cli} not found (configure+build first)" >&2
  exit 1
fi

# Small enough for a smoke run, big enough that every shard does real
# Monte-Carlo work. Three shards over two workers forces at least one
# worker to build more than one shard.
samples=600
seed=20160312
shards=3

work=$(mktemp -d)
worker_pids=()
cleanup() {
  for pid in "${worker_pids[@]}"; do
    kill "${pid}" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "${work}"
}
trap cleanup EXIT

# Starts one fleet worker on an ephemeral port (isolated cache dir) and
# echoes the port it reports on stdout.
start_worker() {
  local cache_dir=$1 log=$2 port
  HYNAPSE_CACHE_DIR="${cache_dir}" "${cli}" fleet-worker 0 "${samples}" \
    "${seed}" >"${log}" 2>&1 &
  worker_pids+=($!)
  for _ in $(seq 1 100); do
    port=$(sed -n 's/^fleet-worker listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' "${log}")
    if [[ -n "${port}" ]]; then
      echo "${port}"
      return 0
    fi
    sleep 0.1
  done
  echo "error: fleet worker did not come up; log:" >&2
  cat "${log}" >&2
  return 1
}

echo "== starting 2 fleet workers on loopback =="
p1=$(start_worker "${work}/worker1" "${work}/worker1.log")
p2=$(start_worker "${work}/worker2" "${work}/worker2.log")
echo "workers listening on ports ${p1} and ${p2}"

echo "== fleet build: ${shards} shards over 2 workers =="
HYNAPSE_CACHE_DIR="${work}/fleet" "${cli}" fleet-build "${shards}" \
  --workers "127.0.0.1:${p1},127.0.0.1:${p2}" "${samples}" "${seed}"

echo "== single-process build of the same provenance =="
HYNAPSE_CACHE_DIR="${work}/solo" "${cli}" shard-build 0 1 "${samples}" "${seed}"
HYNAPSE_CACHE_DIR="${work}/solo" "${cli}" shard-merge 1 "${samples}" "${seed}"

# Merged CSVs are keyed by the (spec, analyzer) fingerprint, which is
# independent of the shard count, so both runs produce the same file name.
fleet_csv=$(find "${work}/fleet" -name 'failure_table_*.csv' ! -name '*_shard*' | head -1)
solo_csv=$(find "${work}/solo" -name 'failure_table_*.csv' ! -name '*_shard*' | head -1)
if [[ -z "${fleet_csv}" || -z "${solo_csv}" ]]; then
  echo "error: merged CSV missing (fleet='${fleet_csv}' solo='${solo_csv}')" >&2
  exit 1
fi
if [[ "$(basename "${fleet_csv}")" != "$(basename "${solo_csv}")" ]]; then
  echo "error: fingerprint mismatch: $(basename "${fleet_csv}") vs $(basename "${solo_csv}")" >&2
  exit 1
fi

echo "== comparing merged CSVs =="
if ! cmp "${fleet_csv}" "${solo_csv}"; then
  echo "error: fleet-built table differs from single-process build" >&2
  exit 1
fi
echo "fleet CSV is byte-identical to the single-process build ($(wc -l <"${fleet_csv}") lines)"

# Scrape each still-running worker with the protocol's `stats` op: the
# snapshot must parse, its per-request wall-time histogram must account for
# every completed request (scrapes exclude themselves), and the two workers
# together must have built exactly the scattered shards.
echo "== scraping worker stats (protocol stats op) =="
total_shard_builds=0
for p in "${p1}" "${p2}"; do
  builds=$("${cli}" stats "127.0.0.1:${p}" --json | python3 -c '
import json, sys
doc = json.loads(sys.stdin.readline())
assert doc["status"] == "done", doc
health = doc["health"]
assert health["uptime_s"] > 0, health
totals = health["totals"]
registry = {m["name"]: m for m in doc["registry"]}
wall = registry["serve.request.wall_us"]
assert wall["kind"] == "histogram", wall
terminal = totals["completed"] + totals["failed"]
assert wall["count"] == terminal, (wall["count"], terminal)
print(totals["shard_builds"])
')
  echo "worker :${p} shard_builds=${builds}"
  total_shard_builds=$((total_shard_builds + builds))
done
if [[ "${total_shard_builds}" -ne "${shards}" ]]; then
  echo "error: workers report ${total_shard_builds} shard builds, expected ${shards}" >&2
  exit 1
fi
echo "stats scrape OK: ${total_shard_builds}/${shards} shard builds accounted for"

# Graceful worker shutdown: SIGTERM, then collect their stats lines.
for pid in "${worker_pids[@]}"; do
  kill -TERM "${pid}" 2>/dev/null || true
done
for pid in "${worker_pids[@]}"; do
  wait "${pid}" || true
done
worker_pids=()
grep -h "fleet-worker stopped" "${work}"/worker*.log || true

echo "fleet smoke OK"
