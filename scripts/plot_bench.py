#!/usr/bin/env python3
"""Graph the BENCH_*.json perf-trajectory artifacts across runs/PRs.

Each positional argument is a directory holding one run's BENCH_*.json files
(e.g. the `bench-json-<sha>` artifacts CI uploads, unpacked side by side and
passed oldest-first). The script extracts one headline scalar per metric per
run, prints a text table, and renders a dependency-free SVG with one panel
per metric so regressions stand out at a glance.

    scripts/plot_bench.py bench-results                      # single run
    scripts/plot_bench.py -o trend.svg run-pr2 run-pr3 run-pr4
    scripts/plot_bench.py --history bench-history            # multi-run dir

--history treats the argument as a directory of per-run subdirectories
(sorted lexicographically = chronologically when produced by
scripts/fetch_bench_history.sh, which downloads the last N CI runs'
artifacts) and may be combined with positional run dirs, which are appended
after the history (e.g. the current working tree's fresh bench-results).

Stdlib only (CI friendly): no matplotlib, no numpy.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from xml.sax.saxutils import escape

# metric name -> (file stem, extractor, unit, higher_is_better)
EXTRACTORS = {
    "fig5 build speedup (parallel/serial)": (
        "BENCH_fig5_failure_rates",
        lambda d: d.get("speedup"),
        "x",
        True,
    ),
    "fig5 parallel build": (
        "BENCH_fig5_failure_rates",
        lambda d: d.get("parallel_seconds"),
        "s",
        False,
    ),
    "adaptive MC sample reduction": (
        "BENCH_fig5_adaptive_mc",
        lambda d: d.get("reduction"),
        "x",
        True,
    ),
    "adaptive MC samples saved": (
        "BENCH_fig5_adaptive_mc",
        lambda d: (d["fixed_samples"] - d["adaptive_samples"])
        if d.get("fixed_samples") is not None
        and d.get("adaptive_samples") is not None
        else None,
        "samples",
        True,
    ),
    "serve coalesced throughput": (
        "BENCH_serve_throughput",
        lambda d: d.get("coalesced_requests_per_sec"),
        "req/s",
        True,
    ),
    "serve coalescing speedup": (
        "BENCH_serve_throughput",
        lambda d: d.get("speedup"),
        "x",
        True,
    ),
    "serve capacity (closed-loop)": (
        "BENCH_serve_latency",
        lambda d: d.get("capacity_rps"),
        "req/s",
        True,
    ),
    "serve p99 below capacity": (
        "BENCH_serve_latency",
        # First sweep level is the lightest offered load (0.4x capacity):
        # its p99 is the uncontended tail latency.
        lambda d: (d.get("levels") or [{}])[0].get("p99_ms"),
        "ms",
        False,
    ),
    "eval hot path (delta+workspace)": (
        "BENCH_eval_hotpath",
        lambda d: d.get("delta_chips_per_sec"),
        "chips/s",
        True,
    ),
    "eval speedup vs pre-rework": (
        "BENCH_eval_hotpath",
        lambda d: d.get("speedup_vs_pr3"),
        "x",
        True,
    ),
    "shard scatter/merge (best)": (
        "BENCH_shard_scaling",
        lambda d: d.get("best_sharded_seconds"),
        "s",
        False,
    ),
    "shard overhead vs monolithic": (
        "BENCH_shard_scaling",
        lambda d: d.get("overhead_vs_monolithic"),
        "x",
        False,
    ),
}

MICRO_KERNELS_SHOWN = 4  # first N micro-kernel entries get their own panels


def load_run(run_dir: Path) -> dict[str, float]:
    """Extract {metric: value} from one run directory."""
    metrics: dict[str, float] = {}
    for name, (stem, extract, _unit, _hib) in EXTRACTORS.items():
        path = run_dir / f"{stem}.json"
        if not path.is_file():
            continue
        try:
            value = extract(json.loads(path.read_text()))
        except (json.JSONDecodeError, OSError) as err:
            print(f"warning: skipping {path}: {err}", file=sys.stderr)
            continue
        if isinstance(value, (int, float)):
            metrics[name] = float(value)
    micro = run_dir / "BENCH_micro_kernels.json"
    if micro.is_file():
        try:
            doc = json.loads(micro.read_text())
            for entry in doc.get("benchmarks", [])[:MICRO_KERNELS_SHOWN]:
                label = f"micro: {entry['name']}"
                metrics[label] = float(entry["real_time"])
        except (json.JSONDecodeError, KeyError, OSError) as err:
            print(f"warning: skipping {micro}: {err}", file=sys.stderr)
    return metrics


def unit_of(metric: str) -> str:
    if metric in EXTRACTORS:
        return EXTRACTORS[metric][2]
    return "ns"  # micro-kernel real_time


def fmt(value: float) -> str:
    if value >= 1000:
        return f"{value:,.0f}"
    return f"{value:.3g}"


def svg_panel(x0: float, y0: float, w: float, h: float, title: str,
              unit: str, series: list[tuple[str, float | None]]) -> str:
    """One metric panel: points joined by lines over the run axis."""
    points = [(i, v) for i, (_, v) in enumerate(series) if v is not None]
    parts = [
        f'<g transform="translate({x0},{y0})">',
        f'<rect width="{w}" height="{h}" fill="none" stroke="#d0d0d0"/>',
        f'<text x="8" y="16" font-size="11" font-weight="bold">'
        f'{escape(title)} [{escape(unit)}]</text>',
    ]
    if points:
        values = [v for _, v in points]
        lo, hi = min(values), max(values)
        if hi == lo:
            hi = lo + (abs(lo) if lo else 1.0)
        pad_x, top, bottom = 14.0, 26.0, 18.0
        span_x = max(len(series) - 1, 1)
        plot_w, plot_h = w - 2 * pad_x, h - top - bottom

        def px(i: float) -> float:
            return pad_x + plot_w * (i / span_x)

        def py(v: float) -> float:
            return top + plot_h * (1.0 - (v - lo) / (hi - lo))

        if len(points) > 1:
            path = " ".join(f"{px(i):.1f},{py(v):.1f}" for i, v in points)
            parts.append(f'<polyline points="{path}" fill="none" '
                         'stroke="#2563eb" stroke-width="1.5"/>')
        for i, v in points:
            parts.append(f'<circle cx="{px(i):.1f}" cy="{py(v):.1f}" r="2.5" '
                         'fill="#2563eb"/>')
        last_i, last_v = points[-1]
        parts.append(f'<text x="{min(px(last_i) + 4, w - 40):.1f}" '
                     f'y="{py(last_v) - 4:.1f}" font-size="10" '
                     f'fill="#2563eb">{fmt(last_v)}</text>')
        parts.append(f'<text x="8" y="{h - 6}" font-size="9" fill="#666">'
                     f'min {fmt(lo)} · max {fmt(hi)}</text>')
    else:
        parts.append(f'<text x="8" y="{h / 2}" font-size="10" fill="#999">'
                     'no data</text>')
    parts.append("</g>")
    return "\n".join(parts)


def render_svg(runs: list[str], table: dict[str, list[float | None]],
               out: Path) -> None:
    cols = 2
    panel_w, panel_h, gap = 340, 120, 12
    metrics = list(table)
    rows = (len(metrics) + cols - 1) // cols
    width = cols * panel_w + (cols + 1) * gap
    height = rows * panel_h + (rows + 1) * gap + 24
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif">',
        f'<text x="{gap}" y="16" font-size="12">hynapse perf trajectory — '
        f'runs: {escape(", ".join(runs))}</text>',
    ]
    for idx, metric in enumerate(metrics):
        col, row = idx % cols, idx // cols
        x0 = gap + col * (panel_w + gap)
        y0 = 24 + gap + row * (panel_h + gap)
        series = list(zip(runs, table[metric]))
        parts.append(
            svg_panel(x0, y0, panel_w, panel_h, metric, unit_of(metric),
                      series))
    parts.append("</svg>")
    out.write_text("\n".join(parts))


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Plot BENCH_*.json metrics across runs")
    parser.add_argument("runs", nargs="*", type=Path,
                        help="bench-result directories, oldest first")
    parser.add_argument("--history", type=Path,
                        help="directory of per-run subdirectories (e.g. from "
                             "scripts/fetch_bench_history.sh); sorted by name "
                             "and prepended to the positional runs")
    parser.add_argument("-o", "--out", type=Path,
                        help="output SVG path (default: <last-run>/bench_trend.svg)")
    args = parser.parse_args()

    runs: list[Path] = []
    if args.history:
        if not args.history.is_dir():
            parser.error(f"not a directory: {args.history}")
        runs.extend(sorted(p for p in args.history.iterdir() if p.is_dir()))
        if not runs:
            parser.error(f"no run subdirectories in {args.history}")
    runs.extend(args.runs)
    if not runs:
        parser.error("no run directories given (positional or --history)")

    for run in runs:
        if not run.is_dir():
            parser.error(f"not a directory: {run}")
    labels = [run.name or str(run) for run in runs]
    per_run = [load_run(run) for run in runs]

    metrics: list[str] = []
    for run_metrics in per_run:
        for name in run_metrics:
            if name not in metrics:
                metrics.append(name)
    if not metrics:
        print("no BENCH_*.json metrics found", file=sys.stderr)
        return 1

    table = {m: [rm.get(m) for rm in per_run] for m in metrics}

    name_w = max(len(m) for m in metrics)
    print(f"{'metric':<{name_w}}  " + "  ".join(f"{l:>14}" for l in labels))
    for metric in metrics:
        cells = [
            f"{fmt(v):>14}" if v is not None else f"{'-':>14}"
            for v in table[metric]
        ]
        print(f"{metric:<{name_w}}  " + "  ".join(cells) +
              f"  [{unit_of(metric)}]")

    out = args.out or (runs[-1] / "bench_trend.svg")
    render_svg(labels, table, out)
    print(f"\nSVG written to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
