#!/usr/bin/env bash
# Download the BENCH_*.json artifacts of the last N successful CI runs into
# per-run directories that scripts/plot_bench.py can graph as a multi-run
# history:
#
#   scripts/fetch_bench_history.sh [N] [out-dir]     # defaults: 10 bench-history
#   scripts/plot_bench.py --history bench-history -o bench_trend.svg
#
# Run directories are named <run_number>-<short_sha> so a lexicographic sort
# is chronological (plot_bench.py --history relies on that). Requires the
# GitHub CLI (`gh`) authenticated for the repository, which CI's GITHUB_TOKEN
# provides out of the box. Runs whose artifact already expired are skipped.
set -euo pipefail

limit=${1:-10}
out_dir=${2:-bench-history}

if ! command -v gh > /dev/null; then
  echo "error: the GitHub CLI (gh) is required" >&2
  exit 1
fi

mkdir -p "${out_dir}"

# Successful CI runs on main, oldest of the window first.
runs=$(gh run list --workflow CI --branch main --status success \
         --limit "${limit}" \
         --json databaseId,number,headSha \
         --template '{{range .}}{{.databaseId}} {{.number}} {{.headSha}}{{"\n"}}{{end}}' \
       | tac)

if [[ -z "${runs}" ]]; then
  echo "no successful CI runs found" >&2
  exit 1
fi

fetched=0
while read -r run_id run_number sha; do
  [[ -z "${run_id}" ]] && continue
  run_dir="${out_dir}/$(printf '%06d' "${run_number}")-${sha:0:8}"
  if [[ -d "${run_dir}" ]] && compgen -G "${run_dir}/BENCH_*.json" > /dev/null; then
    echo "cached:  ${run_dir}"
    fetched=$((fetched + 1))
    continue
  fi
  mkdir -p "${run_dir}"
  if gh run download "${run_id}" --name "bench-json-${sha}" --dir "${run_dir}" \
       2> /dev/null; then
    echo "fetched: ${run_dir}"
    fetched=$((fetched + 1))
  else
    echo "skipped: run ${run_number} (${sha:0:8}) -- artifact missing/expired"
    rmdir "${run_dir}" 2> /dev/null || true
  fi
done <<< "${runs}"

if [[ "${fetched}" -eq 0 ]]; then
  echo "no bench artifacts could be downloaded" >&2
  exit 1
fi
echo "${fetched} run(s) in ${out_dir}/; plot with:"
echo "  scripts/plot_bench.py --history ${out_dir}"
