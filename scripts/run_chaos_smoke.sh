#!/usr/bin/env bash
# Chaos smoke test (docs/robustness.md): the serve fleet and the request
# journal under injected faults.
#
#   Leg 1 -- fleet under fire: scatter a table build over two loopback
#   workers with failpoints armed (one worker crashes its first shard
#   build, the coordinator drops its first connection before sending), and
#   byte-compare the merged CSV against a clean single-process build.
#
#   Leg 2 -- crash recovery: replay a request trace through hynapse_served
#   with a journal, kill -9 the process mid-trace, restart it with
#   --recover, and check the combined responses are bit-identical (per
#   tag) to an uninterrupted run.
#
# Usage: scripts/run_chaos_smoke.sh [build-dir]   (default: build/release)
set -euo pipefail

build_dir=${1:-build/release}
cli="${build_dir}/examples/hynapse_cli"
served="${build_dir}/examples/hynapse_served"

for bin in "${cli}" "${served}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "error: ${bin} not found (configure+build first)" >&2
    exit 1
  fi
done

samples=600
seed=20160312
shards=3

work=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]}"; do
    kill -9 "${pid}" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "${work}"
}
trap cleanup EXIT

start_worker() {
  local cache_dir=$1 log=$2 failpoints=$3 port
  HYNAPSE_CACHE_DIR="${cache_dir}" HYNAPSE_FAILPOINTS="${failpoints}" \
    "${cli}" fleet-worker 0 "${samples}" "${seed}" >"${log}" 2>&1 &
  pids+=($!)
  for _ in $(seq 1 100); do
    port=$(sed -n 's/^fleet-worker listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' "${log}")
    if [[ -n "${port}" ]]; then
      echo "${port}"
      return 0
    fi
    sleep 0.1
  done
  echo "error: fleet worker did not come up; log:" >&2
  cat "${log}" >&2
  return 1
}

echo "== leg 1: fleet build with failpoints armed =="
# Worker 1 throws inside its first shard build (the coordinator sees a
# failed response and fails the shard over); the coordinator additionally
# drops one connection before sending (that worker thread retires and the
# survivors plus the local pool absorb its work).
p1=$(start_worker "${work}/worker1" "${work}/worker1.log" "serve.shard_crash=first:1")
p2=$(start_worker "${work}/worker2" "${work}/worker2.log" "")
echo "workers on ports ${p1} (shard_crash armed) and ${p2} (clean)"

HYNAPSE_CACHE_DIR="${work}/fleet" \
  HYNAPSE_FAILPOINTS="fleet.drop_before_send=first:1" \
  "${cli}" fleet-build "${shards}" \
  --workers "127.0.0.1:${p1},127.0.0.1:${p2}" "${samples}" "${seed}"

echo "== clean single-process build of the same provenance =="
HYNAPSE_CACHE_DIR="${work}/solo" "${cli}" shard-build 0 1 "${samples}" "${seed}"
HYNAPSE_CACHE_DIR="${work}/solo" "${cli}" shard-merge 1 "${samples}" "${seed}"

fleet_csv=$(find "${work}/fleet" -name 'failure_table_*.csv' ! -name '*_shard*' | head -1)
solo_csv=$(find "${work}/solo" -name 'failure_table_*.csv' ! -name '*_shard*' | head -1)
if [[ -z "${fleet_csv}" || -z "${solo_csv}" ]]; then
  echo "error: merged CSV missing (fleet='${fleet_csv}' solo='${solo_csv}')" >&2
  exit 1
fi
if ! cmp "${fleet_csv}" "${solo_csv}"; then
  echo "error: fleet-under-faults table differs from the clean build" >&2
  exit 1
fi
echo "merged CSV byte-identical under injected faults ($(wc -l <"${fleet_csv}") lines)"

for pid in "${pids[@]}"; do
  kill -TERM "${pid}" 2>/dev/null || true
done
for pid in "${pids[@]}"; do
  wait "${pid}" 2>/dev/null || true
done
pids=()

echo "== leg 2: kill -9 mid-trace, then --recover =="
# Each request pins a distinct Monte-Carlo sample count, so each builds
# its own failure table: completions stagger instead of landing together,
# which keeps the kill window wide enough to interrupt the trace.
trace="${work}/trace.jsonl"
cat >"${trace}" <<'EOF'
{"op":"evaluate","config":"all6t","vdd":0.65,"samples":1500,"tag":"t1"}
{"op":"evaluate","config":"all6t","vdd":0.70,"samples":1600,"tag":"t2"}
{"op":"evaluate","config":"hybrid2","vdd":0.65,"samples":1700,"tag":"t3"}
{"op":"evaluate","config":"hybrid2","vdd":0.70,"samples":1800,"tag":"t4"}
{"op":"evaluate","config":"hybrid3","vdd":0.65,"samples":1900,"tag":"t5"}
{"op":"evaluate","config":"hybrid3","vdd":0.70,"samples":2000,"tag":"t6"}
EOF
served_args=(--chips 2 --samples 2000)

# Reference: the same trace, uninterrupted, no journal.
"${served}" "${served_args[@]}" --cache "${work}/cache_clean" "${trace}" \
  >"${work}/clean.jsonl" 2>"${work}/clean.log"

# Crash run: journaled replay against a cold cache (so later tables are
# still building when the kill lands), killed as soon as the first
# response lands.
journal="${work}/requests.journal.jsonl"
"${served}" "${served_args[@]}" --cache "${work}/cache_crash" \
  --journal "${journal}" "${trace}" \
  >"${work}/crash1.jsonl" 2>"${work}/crash1.log" &
served_pid=$!
pids+=("${served_pid}")
for _ in $(seq 1 600); do
  if [[ -s "${work}/crash1.jsonl" ]]; then
    break
  fi
  if ! kill -0 "${served_pid}" 2>/dev/null; then
    break
  fi
  sleep 0.05
done
kill -9 "${served_pid}" 2>/dev/null || true
wait "${served_pid}" 2>/dev/null || true
pids=()
printed_before=$(wc -l <"${work}/crash1.jsonl")
echo "killed served after ${printed_before} printed response(s)"

# Recovery: an empty trace, so the restarted process answers exactly the
# journal's incomplete entries. Same cache dir -- a restart on the same
# machine reuses whatever table CSVs survived.
: >"${work}/empty.jsonl"
"${served}" "${served_args[@]}" --cache "${work}/cache_crash" \
  --journal "${journal}" --recover \
  "${work}/empty.jsonl" >"${work}/crash2.jsonl" 2>"${work}/crash2.log"
printed_after=$(wc -l <"${work}/crash2.jsonl")
echo "recovery replayed ${printed_after} response(s)"

# Per-tag bit-identity: every tag of the clean run must appear in the
# combined crash+recovery output with byte-identical status/results. A
# torn trailing line (killed mid-write) is tolerated; a request both
# printed and replayed (terminal record lost to the crash) must agree
# with itself.
python3 - "${work}/clean.jsonl" "${work}/crash1.jsonl" "${work}/crash2.jsonl" <<'EOF'
import json, sys

def payloads(path, tolerate_torn):
    out = {}
    lines = open(path).read().splitlines()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            if tolerate_torn and i == len(lines) - 1:
                continue  # killed mid-write
            raise SystemExit(f"error: {path}:{i+1}: unparseable line")
        tag = doc.get("tag")
        if tag is None:
            continue
        payload = json.dumps({"status": doc.get("status"),
                              "results": doc.get("results")}, sort_keys=True)
        if tag in out and out[tag] != payload:
            raise SystemExit(f"error: tag {tag} answered differently twice")
        out[tag] = payload
    return out

clean = payloads(sys.argv[1], tolerate_torn=False)
combined = payloads(sys.argv[2], tolerate_torn=True)
for tag, payload in payloads(sys.argv[3], tolerate_torn=False).items():
    if tag in combined and combined[tag] != payload:
        raise SystemExit(f"error: tag {tag} differs between crash and recovery")
    combined[tag] = payload

if set(clean) != set(combined):
    raise SystemExit(f"error: tag sets differ: clean={sorted(clean)} "
                     f"crash+recovery={sorted(combined)}")
diffs = [t for t in clean if clean[t] != combined[t]]
if diffs:
    raise SystemExit(f"error: responses differ for tags {diffs}")
print(f"crash+recovery output bit-identical to the clean run "
      f"({len(clean)} tagged responses)")
EOF

echo "chaos smoke OK"
