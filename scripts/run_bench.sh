#!/usr/bin/env bash
# Collect the perf-trajectory artifacts as BENCH_*.json:
#   * bench_micro_kernels in Google-Benchmark JSON format
#   * the fig5 Monte-Carlo failure-table build, from scratch, serial vs
#     parallel -- the wall-clock anchor for the engine's thread pool.
#   * the fig5 adaptive-MC arm (BENCH_fig5_adaptive_mc.json): CI-targeted
#     sampling vs the fixed-sample oracle at the paper-default budget --
#     sample reduction, oracle agreement, and fixed-path bit-identity.
#   * bench_serve_throughput: the 200-request mixed trace through
#     serve::EvalService, naive vs coalesced (requests/sec + table builds),
#     plus the offered-load saturation sweep (BENCH_serve_latency.json:
#     p50/p95/p99 latency per load level around the measured capacity).
#   * bench_eval_hotpath: chips/sec through the ANN fault-injection hot
#     path, pre-rework baseline vs full-rebuild vs delta+workspace.
#   * bench_shard_scaling: monolithic vs sharded (scatter/merge) failure-
#     table builds over the {1,2,5} shard x {1,3,8} thread matrix, with
#     bit-identity asserted.
#
# scripts/plot_bench.py graphs these files across runs/PRs
# (scripts/fetch_bench_history.sh downloads past CI runs' artifacts).
#
# Usage: scripts/run_bench.sh [build-dir] [out-dir]
#   (defaults: build/release bench-results)
# Env: HYNAPSE_BENCH_SAMPLES        MC samples per mechanism for the fig5
#                                   timing run (default 12000; the paper
#                                   default 40000 is too slow for CI).
#      HYNAPSE_SERVE_BENCH_SAMPLES  MC samples per table build in the serve
#                                   trace (default 300: the trace pays for
#                                   hundreds of builds in naive mode).
#      HYNAPSE_EVAL_BENCH_CHIPS     chips per sweep point for the hot-path
#                                   A/B (default 24).
#      HYNAPSE_SHARD_BENCH_SAMPLES  MC samples per mechanism for the shard
#                                   scaling matrix (default 2000: it pays
#                                   for 10 table builds).
set -euo pipefail

build_dir=${1:-build/release}
out_dir=${2:-bench-results}
mkdir -p "${out_dir}"

if [[ ! -d "${build_dir}" ]]; then
  echo "error: build dir '${build_dir}' not found (configure+build first)" >&2
  exit 1
fi

echo "== bench_micro_kernels (JSON) =="
if [[ -x "${build_dir}/bench/bench_micro_kernels" ]]; then
  "${build_dir}/bench/bench_micro_kernels" \
    --benchmark_format=json \
    --benchmark_out="${out_dir}/BENCH_micro_kernels.json" \
    --benchmark_min_time=0.05
  # Fold the per-backend kernel arms (BM_Gemm*Backend/{reference,simd}/N)
  # into a "backend_speedups" key: simd speedup over reference per
  # kernel/size, so the trajectory plots don't have to re-derive it.
  python3 - "${out_dir}/BENCH_micro_kernels.json" <<'PYEOF'
import json, sys
path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)
times = {}
for b in doc.get("benchmarks", []):
    parts = b["name"].split("/")
    if len(parts) == 3 and parts[0].endswith("Backend"):
        kernel = parts[0][len("BM_"):-len("Backend")].lower()
        times[(kernel, parts[2], parts[1])] = b["cpu_time"]
speedups = {}
for (kernel, size, backend), t in sorted(times.items()):
    ref = times.get((kernel, size, "reference"))
    if backend == "simd" and ref:
        speedups[f"{kernel}/{size}"] = round(ref / t, 3)
doc["backend_speedups"] = speedups
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
print("backend_speedups:", json.dumps(speedups))
PYEOF
else
  echo "bench_micro_kernels not built (Google Benchmark missing); skipped"
fi

echo "== fig5 failure-table build: serial vs parallel =="
samples=${HYNAPSE_BENCH_SAMPLES:-12000}
cache=$(mktemp -d)
trap 'rm -rf "${cache}"' EXIT
timing="${cache}/timing.json"

HYNAPSE_CACHE_DIR="${cache}" "${build_dir}/bench/bench_fig5_failure_rates" \
  --fresh --samples "${samples}" --threads 1 --json "${timing}" > /dev/null
HYNAPSE_CACHE_DIR="${cache}" "${build_dir}/bench/bench_fig5_failure_rates" \
  --fresh --samples "${samples}" --json "${timing}" > /dev/null

# timing.json now holds two records (serial first, parallel second); merge
# them into one BENCH_ file with the speedup computed.
serial=$(sed -n '1s/.*"seconds":\([0-9.eE+-]*\)}.*/\1/p' "${timing}")
parallel=$(sed -n '2s/.*"seconds":\([0-9.eE+-]*\)}.*/\1/p' "${timing}")
threads=$(sed -n '2s/.*"threads":\([0-9]*\).*/\1/p' "${timing}")
speedup=$(awk -v s="${serial}" -v p="${parallel}" 'BEGIN { printf "%.3f", s / p }')

cat > "${out_dir}/BENCH_fig5_failure_rates.json" <<EOF
{
  "name": "fig5_failure_table_build",
  "mc_samples": ${samples},
  "serial_seconds": ${serial},
  "parallel_seconds": ${parallel},
  "parallel_threads": ${threads},
  "speedup": ${speedup}
}
EOF

echo "serial ${serial}s, parallel ${parallel}s (threads=${threads}), speedup ${speedup}x"

echo "== fig5 adaptive MC: CI-targeted sampling vs fixed oracle =="
adaptive_json="${cache}/adaptive.json"
HYNAPSE_CACHE_DIR="${cache}" "${build_dir}/bench/bench_fig5_failure_rates" \
  --fresh --samples "${samples}" --adaptive --json "${adaptive_json}" \
  | grep -E '^\[adaptive\]|^  ' || true
# The bench appends one fig5_adaptive_mc record; keep just that line.
grep '"name":"fig5_adaptive_mc"' "${adaptive_json}" | tail -1 \
  > "${out_dir}/BENCH_fig5_adaptive_mc.json"
reduction=$(sed -n 's/.*"reduction":\([0-9.eE+-]*\),.*/\1/p' \
  "${out_dir}/BENCH_fig5_adaptive_mc.json")
echo "adaptive sample reduction: ${reduction}x"

echo "== bench_serve_throughput: naive vs coalesced + saturation sweep =="
serve_samples=${HYNAPSE_SERVE_BENCH_SAMPLES:-300}
"${build_dir}/bench/bench_serve_throughput" \
  --samples "${serve_samples}" \
  --json "${out_dir}/BENCH_serve_throughput.json" \
  --latency-json "${out_dir}/BENCH_serve_latency.json"

echo "== bench_eval_hotpath: legacy rebuild vs delta+workspace =="
eval_chips=${HYNAPSE_EVAL_BENCH_CHIPS:-24}
"${build_dir}/bench/bench_eval_hotpath" \
  --chips "${eval_chips}" \
  --json "${out_dir}/BENCH_eval_hotpath.json"

echo "== bench_shard_scaling: monolithic vs scatter/merge =="
shard_samples=${HYNAPSE_SHARD_BENCH_SAMPLES:-2000}
"${build_dir}/bench/bench_shard_scaling" \
  --samples "${shard_samples}" \
  --json "${out_dir}/BENCH_shard_scaling.json"

echo "bench JSON written to ${out_dir}/"
