#!/usr/bin/env bash
# Smoke-test the built tree: run the quickstart example and a fast pass of
# the micro-kernel bench. Used by CI and handy after a local build.
#
# Usage: scripts/run_smoke.sh [build-dir]   (default: build/release)
set -euo pipefail

build_dir=${1:-build/release}

if [[ ! -d "${build_dir}" ]]; then
  echo "error: build dir '${build_dir}' not found (configure+build first)" >&2
  exit 1
fi

echo "== quickstart =="
"${build_dir}/examples/quickstart"

if [[ -x "${build_dir}/bench/bench_micro_kernels" ]]; then
  echo "== bench_micro_kernels (reduced iterations) =="
  # Plain-double min_time works on both benchmark 1.7 (only form accepted)
  # and 1.8+ (deprecated but accepted).
  "${build_dir}/bench/bench_micro_kernels" --benchmark_min_time=0.01
else
  echo "== bench_micro_kernels not built (Google Benchmark missing); skipped =="
fi

echo "smoke OK"
