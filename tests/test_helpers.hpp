// Shared fixtures for the core/integration tests: a small trained digit
// classifier (trained once per process) and hand-built failure tables with
// exactly controlled rates.
#pragma once

#include "ann/trainer.hpp"
#include "core/quantized_network.hpp"
#include "data/digits.hpp"
#include "mc/failure_table.hpp"

namespace hynapse::testing {

/// Small 784-48-24-10 digit classifier, ~97 %+ on the synthetic test set.
/// Trained lazily once; subsequent calls return the cached model.
inline const ann::Mlp& small_trained_net() {
  static const ann::Mlp net = [] {
    const data::Dataset train = data::generate_digits(1500, 11);
    ann::Mlp n{{784, 48, 24, 10}, 42};
    ann::TrainConfig cfg;
    cfg.epochs = 8;
    cfg.batch_size = 50;
    cfg.learning_rate = 0.5;
    ann::train_sgd(n, train.images, train.labels, cfg);
    return n;
  }();
  return net;
}

inline const data::Dataset& small_test_set() {
  static const data::Dataset ds = data::generate_digits(600, 1013);
  return ds;
}

/// Failure table with the same rates at every voltage: 6T cells fail with
/// the given probabilities, 8T cells are perfect. Lets tests control error
/// injection exactly.
inline mc::FailureTable flat_table(double read6, double write6,
                                   double disturb6, double read8 = 0.0,
                                   double write8 = 0.0) {
  std::vector<mc::FailureTableRow> rows;
  for (double vdd : {0.60, 1.00}) {
    mc::FailureTableRow r;
    r.vdd = vdd;
    r.cell6 = {read6, write6, disturb6};
    r.cell8 = {read8, write8, 0.0};
    rows.push_back(r);
  }
  return mc::FailureTable{std::move(rows)};
}

}  // namespace hynapse::testing
