#include "core/memory_config.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hynapse::core {
namespace {

// Benchmark ANN per-layer synapse counts (weights + biases).
const std::vector<std::size_t> kBankWords{785000, 500500, 100200, 20100,
                                          1010};

TEST(MemoryConfig, All6tHasNoEightT) {
  const MemoryConfig cfg = MemoryConfig::all_6t(kBankWords);
  EXPECT_EQ(cfg.num_banks(), 5u);
  EXPECT_EQ(cfg.total_bits_8t(), 0u);
  EXPECT_EQ(cfg.total_bits_6t(), cfg.total_words() * 8);
  EXPECT_DOUBLE_EQ(
      cfg.area_overhead_vs_all_6t(circuit::paper_constants()), 0.0);
}

TEST(MemoryConfig, UniformHybridPartition) {
  const MemoryConfig cfg = MemoryConfig::uniform_hybrid(kBankWords, 3);
  for (const BankConfig& b : cfg.banks()) {
    EXPECT_EQ(b.msbs_in_8t, 3);
    // Bits 7,6,5 are 8T; bits 4..0 are 6T.
    EXPECT_TRUE(b.bit_is_8t(7));
    EXPECT_TRUE(b.bit_is_8t(5));
    EXPECT_FALSE(b.bit_is_8t(4));
    EXPECT_FALSE(b.bit_is_8t(0));
  }
  EXPECT_EQ(cfg.total_bits_8t(), cfg.total_words() * 3);
}

TEST(MemoryConfig, PerLayerPartition) {
  const std::vector<int> msbs{2, 3, 1, 1, 3};
  const MemoryConfig cfg = MemoryConfig::per_layer(kBankWords, msbs);
  for (std::size_t i = 0; i < msbs.size(); ++i)
    EXPECT_EQ(cfg.banks()[i].msbs_in_8t, msbs[i]);
}

TEST(MemoryConfig, ValidationErrors) {
  EXPECT_THROW(MemoryConfig{std::vector<BankConfig>{}},
               std::invalid_argument);
  EXPECT_THROW(MemoryConfig::uniform_hybrid(kBankWords, 9),
               std::invalid_argument);
  EXPECT_THROW(MemoryConfig::uniform_hybrid(kBankWords, -1),
               std::invalid_argument);
  const std::vector<int> short_msbs{1, 2};
  EXPECT_THROW(MemoryConfig::per_layer(kBankWords, short_msbs),
               std::invalid_argument);
  const std::vector<std::size_t> empty_bank{100, 0};
  EXPECT_THROW(MemoryConfig::all_6t(empty_bank), std::invalid_argument);
}

TEST(MemoryConfig, AreaGrowsWithProtection) {
  const circuit::PaperConstants pc = circuit::paper_constants();
  double prev = 0.0;
  for (int n = 0; n <= 8; ++n) {
    const double overhead =
        MemoryConfig::uniform_hybrid(kBankWords, n).area_overhead_vs_all_6t(
            pc);
    EXPECT_GT(overhead, prev - 1e-12);
    prev = overhead;
  }
  // Full 8T = the paper's quoted +37 % (modelled as 1.3667).
  EXPECT_NEAR(prev, pc.area_ratio_8t_over_6t - 1.0, 1e-9);
}

TEST(MemoryConfig, DescribeFormats) {
  EXPECT_EQ(MemoryConfig::uniform_hybrid(kBankWords, 3).describe(), "(3,5)");
  const std::vector<int> msbs{2, 3, 1, 1, 3};
  EXPECT_EQ(MemoryConfig::per_layer(kBankWords, msbs).describe(),
            "n=(2,3,1,1,3)");
}

TEST(MemoryConfig, AreaIndependentOfBankSplit) {
  // Splitting the same words across banks differently must not change area.
  const circuit::PaperConstants pc = circuit::paper_constants();
  const std::vector<std::size_t> one{1406810};
  const std::vector<std::size_t> two{1000000, 406810};
  EXPECT_NEAR(MemoryConfig::uniform_hybrid(one, 2).area_units(pc),
              MemoryConfig::uniform_hybrid(two, 2).area_units(pc), 1e-6);
}

}  // namespace
}  // namespace hynapse::core
