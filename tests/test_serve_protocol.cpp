#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "serve/protocol.hpp"

namespace hynapse::serve {
namespace {

TEST(ConfigSpec, ParsesAndRoundTrips) {
  const auto all6t = ConfigSpec::parse("all6t");
  ASSERT_TRUE(all6t.has_value());
  EXPECT_EQ(all6t->kind, ConfigSpec::Kind::all_6t);
  EXPECT_EQ(all6t->str(), "all6t");

  const auto hybrid = ConfigSpec::parse("hybrid3");
  ASSERT_TRUE(hybrid.has_value());
  EXPECT_EQ(hybrid->kind, ConfigSpec::Kind::uniform);
  EXPECT_EQ(hybrid->n_msb, 3);
  EXPECT_EQ(hybrid->str(), "hybrid3");

  const auto per = ConfigSpec::parse("perlayer:1,2,0,4");
  ASSERT_TRUE(per.has_value());
  EXPECT_EQ(per->kind, ConfigSpec::Kind::per_layer);
  EXPECT_EQ(per->msbs, (std::vector<int>{1, 2, 0, 4}));
  EXPECT_EQ(per->str(), "perlayer:1,2,0,4");
}

TEST(ConfigSpec, RejectsMalformedNames) {
  EXPECT_FALSE(ConfigSpec::parse("").has_value());
  EXPECT_FALSE(ConfigSpec::parse("6t").has_value());
  EXPECT_FALSE(ConfigSpec::parse("hybrid").has_value());
  EXPECT_FALSE(ConfigSpec::parse("hybrid-1").has_value());
  EXPECT_FALSE(ConfigSpec::parse("hybrid999").has_value());
  EXPECT_FALSE(ConfigSpec::parse("hybrid3x").has_value());
  EXPECT_FALSE(ConfigSpec::parse("perlayer:").has_value());
  EXPECT_FALSE(ConfigSpec::parse("perlayer:1,,2").has_value());
  EXPECT_FALSE(ConfigSpec::parse("perlayer:1,2,").has_value());
  EXPECT_FALSE(ConfigSpec::parse("perlayer:1,a").has_value());
}

TEST(ConfigSpec, MaterializesAgainstBankLayout) {
  const std::vector<std::size_t> words{100, 50};
  const auto hybrid = ConfigSpec::parse("hybrid2");
  const core::MemoryConfig cfg = hybrid->materialize(words);
  ASSERT_EQ(cfg.num_banks(), 2u);
  EXPECT_EQ(cfg.banks()[0].msbs_in_8t, 2);

  const auto per = ConfigSpec::parse("perlayer:1,2,3");
  EXPECT_THROW((void)per->materialize(words), std::invalid_argument);
}

TEST(ParseRequest, AcceptsEvaluateAndDefaults) {
  std::string error;
  const auto req = parse_request(
      R"({"op":"evaluate","config":"hybrid3","vdd":0.65})", &error);
  ASSERT_TRUE(req.has_value()) << error;
  EXPECT_EQ(req->kind, RequestKind::evaluate);
  ASSERT_EQ(req->configs.size(), 1u);
  EXPECT_EQ(req->configs[0].str(), "hybrid3");
  ASSERT_EQ(req->vdds.size(), 1u);
  EXPECT_DOUBLE_EQ(req->vdds[0], 0.65);
  EXPECT_EQ(req->priority, 0);
  EXPECT_EQ(req->chips, 0u);        // 0 = service default
  EXPECT_EQ(req->mc_samples, 0u);
  EXPECT_EQ(req->table_seed, 0u);
}

TEST(ParseRequest, AcceptsSweepGridAndOverrides) {
  std::string error;
  const auto req = parse_request(
      R"({"op":"sweep","configs":["all6t","hybrid2"],"vdds":[0.6,0.7,0.8],)"
      R"("chips":4,"eval_seed":9,"samples":2500,"table_seed":7,)"
      R"("priority":2})",
      &error);
  ASSERT_TRUE(req.has_value()) << error;
  EXPECT_EQ(req->kind, RequestKind::sweep);
  EXPECT_EQ(req->configs.size(), 2u);
  EXPECT_EQ(req->vdds.size(), 3u);
  EXPECT_EQ(req->chips, 4u);
  EXPECT_EQ(req->eval_seed, 9u);
  EXPECT_EQ(req->mc_samples, 2500u);
  EXPECT_EQ(req->table_seed, 7u);
  EXPECT_EQ(req->priority, 2);
}

TEST(ParseRequest, AcceptsTableInfoWithoutWorkload) {
  std::string error;
  const auto req =
      parse_request(R"({"op":"table_info","samples":1000})", &error);
  ASSERT_TRUE(req.has_value()) << error;
  EXPECT_EQ(req->kind, RequestKind::table_info);
  EXPECT_TRUE(req->configs.empty());
}

TEST(ParseRequest, AcceptsTableShard) {
  std::string error;
  const auto req = parse_request(
      R"({"op":"table_shard","shard":2,"shard_count":5,"samples":1500,)"
      R"("table_seed":7,"priority":1})",
      &error);
  ASSERT_TRUE(req.has_value()) << error;
  EXPECT_EQ(req->kind, RequestKind::table_shard);
  EXPECT_EQ(req->shard, 2u);
  EXPECT_EQ(req->shard_count, 5u);
  EXPECT_EQ(req->mc_samples, 1500u);
  EXPECT_EQ(req->table_seed, 7u);
  EXPECT_EQ(req->priority, 1);
}

TEST(ParseRequest, RejectsMalformedTableShard) {
  const auto reject = [](const char* line) {
    std::string error;
    EXPECT_FALSE(parse_request(line, &error).has_value()) << line;
    EXPECT_FALSE(error.empty()) << line;
  };
  reject(R"({"op":"table_shard","shard":0})");          // missing count
  reject(R"({"op":"table_shard","shard_count":0})");    // count must be >= 1
  reject(R"({"op":"table_shard","shard":3,"shard_count":3})");  // shard >= count
  reject(R"({"op":"table_shard","shard":-1,"shard_count":2})");
  reject(R"({"op":"table_shard","shard":0.5,"shard_count":2})");
  // shard keys are meaningless on other ops -- reject, don't ignore.
  reject(R"({"op":"evaluate","config":"all6t","vdd":0.6,"shard":0})");
  reject(R"({"op":"table_info","shard_count":2})");
}

TEST(ParseRequest, RejectsBadLinesWithReasons) {
  const auto reject = [](const char* line) {
    std::string error;
    const auto req = parse_request(line, &error);
    EXPECT_FALSE(req.has_value()) << line;
    EXPECT_FALSE(error.empty()) << line;
    return error;
  };
  reject("not json");
  reject("[1,2]");
  reject(R"({"config":"hybrid1","vdd":0.6})");             // missing op
  reject(R"({"op":"destroy","config":"all6t","vdd":1})");  // unknown op
  reject(R"({"op":"evaluate","vdd":0.6})");                // missing config
  reject(R"({"op":"evaluate","config":"all6t"})");         // missing vdd
  reject(R"({"op":"evaluate","config":"bogus","vdd":0.6})");
  reject(R"({"op":"evaluate","config":"all6t","vdd":-0.5})");
  reject(R"({"op":"evaluate","config":"all6t","vdd":0.6,"chips":-1})");
  reject(R"({"op":"evaluate","config":"all6t","vdd":0.6,"chips":2.5})");
  reject(R"({"op":"evaluate","config":"all6t","vdd":0.6,"chips":1e12})");
  reject(R"({"op":"evaluate","config":"all6t","vdd":0.6,"frobnicate":1})");
  // evaluate is strictly one point; grids must say "sweep".
  reject(R"({"op":"evaluate","configs":["all6t","hybrid1"],"vdd":0.6})");
  reject(R"({"op":"evaluate","config":"all6t","vdds":[0.6,0.7]})");
  // Out-of-range numbers are rejected before any narrowing cast (a double
  // >= 2^64 -> uint64 conversion would be undefined behavior, not clamping).
  reject(R"({"op":"table_info","table_seed":1e20})");
  reject(R"({"op":"table_info","table_seed":9007199254740994})");  // > 2^53
  reject(R"({"op":"table_info","samples":1.5})");
  reject(R"({"op":"evaluate","config":"all6t","vdd":0.6,"priority":1e300})");
  reject(R"({"op":"evaluate","config":"all6t","vdd":0.6,"priority":0.5})");
}

TEST(FormatResponse, RendersDoneResponse) {
  Response r;
  r.id = 7;
  r.status = RequestStatus::done;
  r.table_fingerprint = 0xabc;
  PointResult point;
  point.config = "hybrid3";
  point.vdd = 0.65;
  point.accuracy.mean = 0.5;
  point.accuracy.stddev = 0.25;
  point.accuracy.per_chip = {0.25, 0.75};
  r.results.push_back(point);
  r.stats.table_source = engine::TableSource::memory;
  r.stats.coalesced = true;
  r.stats.batch_size = 3;
  r.stats.dispatch_seq = 2;

  const std::string line = format_response(r);
  EXPECT_NE(line.find("\"id\":7"), std::string::npos);
  EXPECT_NE(line.find("\"status\":\"done\""), std::string::npos);
  EXPECT_NE(line.find("\"config\":\"hybrid3\""), std::string::npos);
  EXPECT_NE(line.find("\"mean\":0.5"), std::string::npos);
  EXPECT_NE(line.find("\"fingerprint\":\"0000000000000abc\""),
            std::string::npos);
  EXPECT_NE(line.find("\"source\":\"memory\""), std::string::npos);
  EXPECT_NE(line.find("\"coalesced\":true"), std::string::npos);
  EXPECT_NE(line.find("\"batch_size\":3"), std::string::npos);
  EXPECT_EQ(line.find("per_chip"), std::string::npos);  // off by default

  const std::string with_chips = format_response(r, /*per_chip=*/true);
  EXPECT_NE(with_chips.find("\"per_chip\":[0.25,0.75]"), std::string::npos);
}

TEST(FormatResponse, RendersTableShardResponse) {
  Response r;
  r.id = 9;
  r.status = RequestStatus::done;
  r.table_fingerprint = 0xabc;
  r.shard_index = 1;
  r.shard_count = 4;
  r.shard_fingerprint = 0xdef;
  r.table_csv = "/cache/failure_table_x_shard1of4.csv";
  r.table_rows = 2;
  r.stats.table_source = engine::TableSource::built;

  const std::string line = format_response(r);
  EXPECT_NE(line.find("\"shard\":{"), std::string::npos);
  EXPECT_NE(line.find("\"index\":1"), std::string::npos);
  EXPECT_NE(line.find("\"count\":4"), std::string::npos);
  EXPECT_NE(line.find("\"fingerprint\":\"0000000000000def\""),
            std::string::npos);
  EXPECT_NE(line.find("\"source\":\"built\""), std::string::npos);
  EXPECT_NE(line.find("\"rows\":2"), std::string::npos);

  // Non-shard responses never emit the shard block.
  Response plain;
  plain.id = 1;
  plain.status = RequestStatus::done;
  EXPECT_EQ(format_response(plain).find("\"shard\""), std::string::npos);
}

TEST(FormatResponse, RendersFailureAndPendingStates) {
  Response failed;
  failed.id = 1;
  failed.status = RequestStatus::failed;
  failed.error = "bad config";
  const std::string fline = format_response(failed);
  EXPECT_NE(fline.find("\"status\":\"failed\""), std::string::npos);
  EXPECT_NE(fline.find("\"error\":\"bad config\""), std::string::npos);

  Response queued;
  queued.id = 2;
  queued.status = RequestStatus::queued;
  const std::string qline = format_response(queued);
  EXPECT_NE(qline.find("\"status\":\"queued\""), std::string::npos);
  EXPECT_EQ(qline.find("stats"), std::string::npos);  // not dispatched yet
}

TEST(Protocol, VersionFieldIsOptionalButChecked) {
  // "v" omitted: accepted (v1 servers predate the field).
  std::string error;
  EXPECT_TRUE(parse_request(R"({"op":"table_info"})", &error).has_value());
  // Matching version: accepted.
  EXPECT_TRUE(
      parse_request(R"({"op":"table_info","v":1})", &error).has_value());
  // Mismatch: refused with the structured unsupported_version code.
  RequestError structured;
  EXPECT_FALSE(
      parse_request(R"({"op":"table_info","v":2})", &structured).has_value());
  EXPECT_EQ(structured.code, ErrorCode::unsupported_version);
  EXPECT_NE(structured.message.find("v1"), std::string::npos);

  // Responses always carry the version.
  Response r;
  r.id = 1;
  r.status = RequestStatus::queued;
  EXPECT_NE(format_response(r).find("\"v\":1"), std::string::npos);
  // ...and format_request stamps it too.
  Request info;
  info.kind = RequestKind::table_info;
  EXPECT_NE(format_request(info).find("\"v\":1"), std::string::npos);
}

TEST(Protocol, ErrorCodeNamesRoundTrip) {
  for (const ErrorCode code :
       {ErrorCode::none, ErrorCode::bad_request, ErrorCode::queue_full,
        ErrorCode::shard_out_of_range, ErrorCode::shutting_down,
        ErrorCode::not_found, ErrorCode::unsupported_version,
        ErrorCode::internal}) {
    const auto parsed = parse_error_code(to_string(code));
    ASSERT_TRUE(parsed.has_value()) << to_string(code);
    EXPECT_EQ(*parsed, code);
  }
  EXPECT_FALSE(parse_error_code("made_up").has_value());
}

TEST(Protocol, StructuredParseErrorsCarryCodes) {
  RequestError error;
  EXPECT_FALSE(parse_request("not json", &error).has_value());
  EXPECT_EQ(error.code, ErrorCode::bad_request);
  // JSON syntax failures surface the position from serve::Json.
  EXPECT_NE(error.message.find("line 1"), std::string::npos) << error.message;

  error = {};
  EXPECT_FALSE(
      parse_request(R"({"op":"evaluate","vdd":0.6})", &error).has_value());
  EXPECT_EQ(error.code, ErrorCode::bad_request);
  EXPECT_NE(error.message.find("config"), std::string::npos);
}

TEST(Protocol, TagEchoesAndInlineRowsGate) {
  std::string error;
  const auto tagged = parse_request(
      R"({"op":"table_shard","shard":0,"shard_count":2,"tag":"shard-0",)"
      R"("inline_rows":true})",
      &error);
  ASSERT_TRUE(tagged.has_value()) << error;
  EXPECT_EQ(tagged->tag, "shard-0");
  EXPECT_TRUE(tagged->inline_rows);

  // inline_rows is shard-only; tag must be a string.
  EXPECT_FALSE(parse_request(
                   R"({"op":"table_info","inline_rows":true})", &error)
                   .has_value());
  EXPECT_FALSE(
      parse_request(R"({"op":"table_info","tag":7})", &error).has_value());

  // Responses echo the tag and the code.
  Response r;
  r.id = 3;
  r.status = RequestStatus::failed;
  r.code = ErrorCode::queue_full;
  r.tag = "shard-0";
  const std::string line = format_response(r);
  EXPECT_NE(line.find("\"code\":\"queue_full\""), std::string::npos);
  EXPECT_NE(line.find("\"tag\":\"shard-0\""), std::string::npos);
}

TEST(Protocol, RequestFormatParseRoundTrip) {
  Request shard;
  shard.kind = RequestKind::table_shard;
  shard.shard = 1;
  shard.shard_count = 4;
  shard.mc_samples = 800;
  shard.table_seed = 42;
  shard.inline_rows = true;
  shard.tag = "shard-1";
  std::string error;
  const auto parsed = parse_request(format_request(shard), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->kind, RequestKind::table_shard);
  EXPECT_EQ(parsed->shard, 1u);
  EXPECT_EQ(parsed->shard_count, 4u);
  EXPECT_EQ(parsed->mc_samples, 800u);
  EXPECT_EQ(parsed->table_seed, 42u);
  EXPECT_TRUE(parsed->inline_rows);
  EXPECT_EQ(parsed->tag, "shard-1");

  Request sweep;
  sweep.kind = RequestKind::sweep;
  sweep.configs = {*ConfigSpec::parse("all6t"), *ConfigSpec::parse("hybrid2")};
  sweep.vdds = {0.6, 0.7};
  sweep.chips = 2;
  const auto parsed_sweep = parse_request(format_request(sweep), &error);
  ASSERT_TRUE(parsed_sweep.has_value()) << error;
  ASSERT_EQ(parsed_sweep->configs.size(), 2u);
  EXPECT_EQ(parsed_sweep->configs[1].str(), "hybrid2");
  EXPECT_EQ(parsed_sweep->vdds, (std::vector<double>{0.6, 0.7}));
  EXPECT_EQ(parsed_sweep->chips, 2u);
}

TEST(Protocol, ResponseFormatParseRoundTripWithShardRows) {
  Response r;
  r.id = 11;
  r.status = RequestStatus::done;
  r.tag = "shard-0";
  r.table_fingerprint = 0xabc;
  r.shard_index = 0;
  r.shard_count = 2;
  r.shard_fingerprint = 0xdef;
  r.stats.table_source = engine::TableSource::built;
  mc::FailureTableRow row;
  row.vdd = 0.6500000000000004;  // exercises %.17g exactness
  row.cell6 = {0.012345678901234567, 3.3e-7, 0.0};
  row.cell8 = {1.0e-9, 0.0, 5.5e-4};
  r.shard_rows = {row};

  std::string error;
  const auto parsed = parse_response(format_response(r), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->id, 11u);
  EXPECT_EQ(parsed->status, RequestStatus::done);
  EXPECT_EQ(parsed->tag, "shard-0");
  EXPECT_EQ(parsed->shard_index, 0u);
  EXPECT_EQ(parsed->shard_count, 2u);
  EXPECT_EQ(parsed->shard_fingerprint, 0xdefu);
  ASSERT_EQ(parsed->shard_rows.size(), 1u);
  // Bit-exact round trip: the fleet's correctness depends on it.
  EXPECT_EQ(parsed->shard_rows[0].vdd, row.vdd);
  EXPECT_EQ(parsed->shard_rows[0].cell6.read_access, row.cell6.read_access);
  EXPECT_EQ(parsed->shard_rows[0].cell6.write_fail, row.cell6.write_fail);
  EXPECT_EQ(parsed->shard_rows[0].cell8.read_disturb, row.cell8.read_disturb);

  // Failure responses round-trip status/code/error.
  Response failed;
  failed.id = 12;
  failed.status = RequestStatus::failed;
  failed.code = ErrorCode::shard_out_of_range;
  failed.error = "shard 9 out of range";
  const auto parsed_failed = parse_response(format_response(failed), &error);
  ASSERT_TRUE(parsed_failed.has_value()) << error;
  EXPECT_EQ(parsed_failed->code, ErrorCode::shard_out_of_range);
  EXPECT_EQ(parsed_failed->error, "shard 9 out of range");

  // Garbage and schema violations report, not crash.
  EXPECT_FALSE(parse_response("nope", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parse_response(R"({"status":"done"})", &error).has_value());
  EXPECT_FALSE(
      parse_response(R"({"id":1,"status":"sideways"})", &error).has_value());
}

TEST(ParseRequest, AcceptsStatsAndRejectsWorkloadFields) {
  std::string error;
  const auto parsed = parse_request(R"({"op":"stats","tag":"probe"})", &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->kind, RequestKind::stats);
  EXPECT_EQ(parsed->tag, "probe");

  // A scrape carries no workload: any evaluate-shaped field is a schema
  // error, not silently ignored.
  RequestError why;
  EXPECT_FALSE(
      parse_request(R"({"op":"stats","config":"all6t"})", &why).has_value());
  EXPECT_EQ(why.code, ErrorCode::bad_request);
  EXPECT_FALSE(
      parse_request(R"({"op":"stats","vdd":0.7})", &why).has_value());
  EXPECT_FALSE(
      parse_request(R"({"op":"stats","chips":3})", &why).has_value());

  // Round trip through the formatter.
  const auto again = parse_request(format_request(*parsed), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(again->kind, RequestKind::stats);
  EXPECT_EQ(again->tag, "probe");
}

TEST(Protocol, StatsResponseRoundTripsHealthAndRegistry) {
  Response r;
  r.id = 21;
  r.status = RequestStatus::done;
  r.tag = "probe";

  HealthSummary h;
  h.uptime_s = 12.5;
  h.queue_depth = 3;
  h.queue_capacity = 64;
  h.dispatchers = 2;
  h.threads = 4;
  h.backend = "simd";
  h.eval_path = "delta";
  h.fuse_chips = 8;
  h.max_batch = 16;
  h.coalesce = true;
  h.cache_dir = "/tmp/cache";
  h.cache_tables = 2;
  h.cache_bytes = 4096;
  h.totals.submitted = 10;
  h.totals.completed = 9;
  h.totals.failed = 1;
  h.totals.batches = 5;
  h.totals.coalesced_requests = 2;
  h.totals.table_builds = 3;
  h.totals.shard_builds = 4;
  h.totals.max_queue_depth = 7;
  r.health = h;

  obs::MetricSnapshot counter;
  counter.name = "serve.requests_submitted";
  counter.kind = obs::MetricKind::counter;
  counter.count = 10;
  counter.value = 10.0;
  obs::MetricSnapshot gauge;
  gauge.name = "serve.queue_depth";
  gauge.kind = obs::MetricKind::gauge;
  gauge.value = 3.0;
  obs::MetricSnapshot histogram;
  histogram.name = "serve.request.wall_us";
  histogram.kind = obs::MetricKind::histogram;
  histogram.count = 9;
  histogram.sum = 4500;
  histogram.p50 = 400.0;
  histogram.p95 = 900.0;
  histogram.p99 = 1000.0;
  histogram.buckets = {{9, 5}, {10, 4}};
  r.metrics = {counter, gauge, histogram};

  std::string error;
  const auto parsed = parse_response(format_response(r), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_TRUE(parsed->health.has_value());
  const HealthSummary& ph = *parsed->health;
  EXPECT_DOUBLE_EQ(ph.uptime_s, 12.5);
  EXPECT_EQ(ph.queue_depth, 3u);
  EXPECT_EQ(ph.queue_capacity, 64u);
  EXPECT_EQ(ph.dispatchers, 2u);
  EXPECT_EQ(ph.threads, 4u);
  EXPECT_EQ(ph.backend, "simd");
  EXPECT_EQ(ph.eval_path, "delta");
  EXPECT_EQ(ph.fuse_chips, 8u);
  EXPECT_EQ(ph.max_batch, 16u);
  EXPECT_TRUE(ph.coalesce);
  EXPECT_EQ(ph.cache_dir, "/tmp/cache");
  EXPECT_EQ(ph.cache_tables, 2u);
  EXPECT_EQ(ph.cache_bytes, 4096u);
  EXPECT_EQ(ph.totals.submitted, 10u);
  EXPECT_EQ(ph.totals.completed, 9u);
  EXPECT_EQ(ph.totals.failed, 1u);
  EXPECT_EQ(ph.totals.batches, 5u);
  EXPECT_EQ(ph.totals.coalesced_requests, 2u);
  EXPECT_EQ(ph.totals.table_builds, 3u);
  EXPECT_EQ(ph.totals.shard_builds, 4u);
  EXPECT_EQ(ph.totals.max_queue_depth, 7u);

  ASSERT_EQ(parsed->metrics.size(), 3u);
  const obs::MetricSnapshot& pc = parsed->metrics[0];
  EXPECT_EQ(pc.name, "serve.requests_submitted");
  EXPECT_EQ(pc.kind, obs::MetricKind::counter);
  EXPECT_EQ(pc.count, 10u);
  const obs::MetricSnapshot& pg = parsed->metrics[1];
  EXPECT_EQ(pg.kind, obs::MetricKind::gauge);
  EXPECT_DOUBLE_EQ(pg.value, 3.0);
  const obs::MetricSnapshot& phist = parsed->metrics[2];
  EXPECT_EQ(phist.kind, obs::MetricKind::histogram);
  EXPECT_EQ(phist.count, 9u);
  EXPECT_EQ(phist.sum, 4500u);
  EXPECT_DOUBLE_EQ(phist.p50, 400.0);
  EXPECT_DOUBLE_EQ(phist.p95, 900.0);
  EXPECT_DOUBLE_EQ(phist.p99, 1000.0);
  ASSERT_EQ(phist.buckets.size(), 2u);
  EXPECT_EQ(phist.buckets[0], (std::pair<std::uint32_t, std::uint64_t>{9, 5}));
  EXPECT_EQ(phist.buckets[1],
            (std::pair<std::uint32_t, std::uint64_t>{10, 4}));

  // A malformed registry entry is a parse failure, not a silent skip.
  EXPECT_FALSE(parse_response(
                   R"({"id":1,"status":"done","registry":[{"kind":"counter"}]})",
                   &error)
                   .has_value());
  EXPECT_FALSE(parse_response(
                   R"({"id":1,"status":"done",)"
                   R"("registry":[{"name":"x","kind":"sideways"}]})",
                   &error)
                   .has_value());
}

TEST(Protocol, AdaptivePolicyRoundTrips) {
  // The full policy must survive format -> parse bit-exactly: every worker
  // folds it into the table fingerprint, so a lossy wire trip would split
  // the fleet's provenance.
  Request req;
  req.kind = RequestKind::table_shard;
  req.shard = 0;
  req.shard_count = 2;
  mc::AdaptivePolicy policy;
  policy.enabled = true;
  policy.rel_target = 0.07;
  policy.abs_target = 1e-6;
  policy.z = 2.5758293035489004;
  policy.interval = mc::IntervalKind::clopper_pearson;
  policy.batch_samples = 1500;
  policy.batch_growth = 1.5;
  policy.min_samples = 3000;
  policy.max_samples = 90000;
  policy.tail_escape_samples = 5000;
  policy.max_is_samples = 12000;
  req.adaptive = policy;

  std::string error;
  const auto parsed = parse_request(format_request(req), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_TRUE(parsed->adaptive.has_value());
  const mc::AdaptivePolicy& p = *parsed->adaptive;
  EXPECT_TRUE(p.enabled);
  EXPECT_EQ(p.rel_target, policy.rel_target);
  EXPECT_EQ(p.abs_target, policy.abs_target);
  EXPECT_EQ(p.z, policy.z);
  EXPECT_EQ(p.interval, mc::IntervalKind::clopper_pearson);
  EXPECT_EQ(p.batch_samples, policy.batch_samples);
  EXPECT_EQ(p.batch_growth, policy.batch_growth);
  EXPECT_EQ(p.min_samples, policy.min_samples);
  EXPECT_EQ(p.max_samples, policy.max_samples);
  EXPECT_EQ(p.tail_escape_samples, policy.tail_escape_samples);
  EXPECT_EQ(p.max_is_samples, policy.max_is_samples);
}

TEST(ParseRequest, AdaptiveObjectValidation) {
  std::string error;
  // Partial objects take the remaining defaults.
  const auto minimal = parse_request(
      R"({"op":"evaluate","config":"all6t","vdd":0.7,)"
      R"("adaptive":{"rel_target":0.1}})",
      &error);
  ASSERT_TRUE(minimal.has_value()) << error;
  ASSERT_TRUE(minimal->adaptive.has_value());
  EXPECT_TRUE(minimal->adaptive->enabled);
  EXPECT_DOUBLE_EQ(minimal->adaptive->rel_target, 0.1);
  EXPECT_EQ(minimal->adaptive->interval, mc::IntervalKind::wilson);

  // Unknown keys, bad interval names and bad values are schema errors.
  RequestError why;
  EXPECT_FALSE(parse_request(R"({"op":"evaluate","config":"all6t","vdd":0.7,)"
                             R"("adaptive":{"bogus":1}})",
                             &why)
                   .has_value());
  EXPECT_EQ(why.code, ErrorCode::bad_request);
  EXPECT_FALSE(parse_request(R"({"op":"evaluate","config":"all6t","vdd":0.7,)"
                             R"("adaptive":{"interval":"exact"}})",
                             &why)
                   .has_value());
  EXPECT_FALSE(parse_request(R"({"op":"evaluate","config":"all6t","vdd":0.7,)"
                             R"("adaptive":{"rel_target":-0.5}})",
                             &why)
                   .has_value());
  EXPECT_FALSE(parse_request(R"({"op":"evaluate","config":"all6t","vdd":0.7,)"
                             R"("adaptive":{"z":0}})",
                             &why)
                   .has_value());
  EXPECT_FALSE(parse_request(R"({"op":"evaluate","config":"all6t","vdd":0.7,)"
                             R"("adaptive":{"batch_growth":0.5}})",
                             &why)
                   .has_value());

  // A stats scrape carries no workload: adaptive is rejected there too.
  EXPECT_FALSE(parse_request(R"({"op":"stats","adaptive":{}})", &why)
                   .has_value());
  EXPECT_EQ(why.code, ErrorCode::bad_request);
}

TEST(Protocol, ShardSamplingMetadataRoundTrips) {
  Response r;
  r.id = 31;
  r.status = RequestStatus::done;
  r.shard_index = 1;
  r.shard_count = 2;
  r.shard_fingerprint = 0x123;
  r.shard_samples = 48000.0;
  r.shard_ci_half_width = 0.0125;
  mc::FailureTableRow row;
  row.vdd = 0.7;
  row.cell6 = {0.001, 2e-5, 0.0};
  row.cell8 = {1e-8, 0.0, 0.0};
  row.samples = 24000.0;
  row.ci_half_width = 0.0125;
  r.shard_rows = {row};

  std::string error;
  const auto parsed = parse_response(format_response(r), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_DOUBLE_EQ(parsed->shard_samples, 48000.0);
  EXPECT_DOUBLE_EQ(parsed->shard_ci_half_width, 0.0125);
  ASSERT_EQ(parsed->shard_rows.size(), 1u);
  EXPECT_EQ(parsed->shard_rows[0].samples, row.samples);
  EXPECT_EQ(parsed->shard_rows[0].ci_half_width, row.ci_half_width);

  // 7-number rows (the pre-metadata wire shape) still parse, with zeroed
  // metadata -- a fleet can mix old and new workers mid-upgrade.
  const auto legacy = parse_response(
      R"({"id":32,"status":"done","shard":{"index":0,"count":1,)"
      R"("fingerprint":"0","rows":1,)"
      R"("rows_data":[[0.7,0.001,2e-05,0,1e-08,0,0]]}})",
      &error);
  ASSERT_TRUE(legacy.has_value()) << error;
  ASSERT_EQ(legacy->shard_rows.size(), 1u);
  EXPECT_DOUBLE_EQ(legacy->shard_rows[0].cell6.read_access, 0.001);
  EXPECT_DOUBLE_EQ(legacy->shard_rows[0].samples, 0.0);
  EXPECT_DOUBLE_EQ(legacy->shard_rows[0].ci_half_width, 0.0);
}

}  // namespace
}  // namespace hynapse::serve
