#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

namespace hynapse::obs {
namespace {

TEST(HistogramBuckets, PowerOfTwoBoundaries) {
  // Bucket 0 holds exactly {0}; bucket i>=1 covers [2^(i-1), 2^i).
  EXPECT_EQ(histogram_bucket(0), 0u);
  EXPECT_EQ(histogram_bucket(1), 1u);
  for (std::size_t i = 1; i < 64; ++i) {
    const std::uint64_t lo = std::uint64_t{1} << (i - 1);
    EXPECT_EQ(histogram_bucket(lo), i) << "lo of bucket " << i;
    const std::uint64_t hi = (std::uint64_t{1} << i) - 1;
    EXPECT_EQ(histogram_bucket(hi), i) << "hi of bucket " << i;
    if (i < 63) {
      EXPECT_EQ(histogram_bucket(std::uint64_t{1} << i), i + 1)
          << "first value past bucket " << i;
    }
  }
  EXPECT_EQ(histogram_bucket(~std::uint64_t{0}), 64u);
  EXPECT_EQ(histogram_bucket_lo(0), 0u);
  EXPECT_EQ(histogram_bucket_hi(0), 1u);
  EXPECT_EQ(histogram_bucket_lo(5), 16u);
  EXPECT_EQ(histogram_bucket_hi(5), 32u);
}

TEST(HistogramBuckets, EveryValueLandsInItsOwnRange) {
  std::mt19937_64 rng(2016);
  for (int trial = 0; trial < 10000; ++trial) {
    const std::uint64_t v = rng() >> (rng() % 64);
    const std::size_t b = histogram_bucket(v);
    EXPECT_GE(v, histogram_bucket_lo(b));
    if (b < 64) {
      EXPECT_LT(v, histogram_bucket_hi(b));
    }
  }
}

TEST(Histogram, CountAndSumExact) {
  Histogram h;
  std::uint64_t expect_sum = 0;
  for (std::uint64_t v : {0u, 1u, 2u, 3u, 100u, 4096u, 70000u}) {
    h.record(v);
    expect_sum += v;
  }
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 7u);
  EXPECT_EQ(s.sum, expect_sum);
}

TEST(Histogram, EmptyPercentileIsZero) {
  Histogram h;
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, SingleValuePercentiles) {
  Histogram h;
  h.record(1000);
  const HistogramSnapshot s = h.snapshot();
  // 1000 lives in [512, 1024); every percentile must land in that span.
  for (double p : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    const double est = s.percentile(p);
    EXPECT_GE(est, 512.0) << "p=" << p;
    EXPECT_LT(est, 1024.0) << "p=" << p;
  }
}

// The exact property a log2 histogram can promise: the interpolated
// percentile lies inside the same power-of-two bucket as the true order
// statistic from a sorted-vector oracle. Bucket counts are exact, so
// rank selection always picks the oracle sample's bucket.
TEST(Histogram, PercentileMatchesOracleBucketUnderRandomFills) {
  std::mt19937_64 rng(20160312);
  for (int trial = 0; trial < 50; ++trial) {
    Histogram h;
    std::vector<std::uint64_t> oracle;
    const std::size_t n = 1 + static_cast<std::size_t>(rng() % 2000);
    for (std::size_t i = 0; i < n; ++i) {
      // Mix of magnitudes: shifted randoms cover many decades.
      const std::uint64_t v = rng() >> (rng() % 60);
      h.record(v);
      oracle.push_back(v);
    }
    std::sort(oracle.begin(), oracle.end());
    const HistogramSnapshot s = h.snapshot();
    ASSERT_EQ(s.count, n);
    for (double p : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
      // A fractional rank sits between two order statistics; the
      // estimate must land in the bucket span they bound.
      const double rank = p * static_cast<double>(n - 1);
      const std::uint64_t lo_stat = oracle[static_cast<std::size_t>(rank)];
      const std::uint64_t hi_stat =
          oracle[std::min<std::size_t>(static_cast<std::size_t>(rank) + 1, n - 1)];
      const double est = s.percentile(p);
      EXPECT_GE(est, static_cast<double>(histogram_bucket_lo(histogram_bucket(lo_stat))))
          << "trial " << trial << " p=" << p << " n=" << n;
      EXPECT_LE(est, static_cast<double>(histogram_bucket_hi(histogram_bucket(hi_stat))))
          << "trial " << trial << " p=" << p << " n=" << n;
    }
  }
}

TEST(Histogram, ConcurrentRecordingLosesNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record((i + static_cast<std::uint64_t>(t)) % 1024);
      }
    });
  }
  for (auto& w : workers) w.join();
  std::uint64_t expect_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      expect_sum += (i + static_cast<std::uint64_t>(t)) % 1024;
    }
  }
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  EXPECT_EQ(s.sum, expect_sum);
}

TEST(Registry, CountersAndGauges) {
  Registry r;
  r.counter("a.count").add(3);
  r.counter("a.count").add(2);
  r.gauge("a.level").set(7);
  r.gauge("a.level").add(-2);
  EXPECT_EQ(r.counter("a.count").value(), 5u);
  EXPECT_EQ(r.gauge("a.level").value(), 5);
}

TEST(Registry, StableReferences) {
  Registry r;
  Counter& c = r.counter("x");
  // Registering more instruments must not invalidate earlier refs.
  for (int i = 0; i < 100; ++i) r.counter("y" + std::to_string(i));
  c.add(1);
  EXPECT_EQ(r.counter("x").value(), 1u);
}

TEST(Registry, SnapshotSortedAndTyped) {
  Registry r;
  r.counter("z.last").add(1);
  r.histogram("m.lat_us").record(300);
  r.gauge("a.first").set(-4);
  const std::vector<MetricSnapshot> snap = r.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.first");
  EXPECT_EQ(snap[0].kind, MetricKind::gauge);
  EXPECT_DOUBLE_EQ(snap[0].value, -4.0);
  EXPECT_EQ(snap[1].name, "m.lat_us");
  EXPECT_EQ(snap[1].kind, MetricKind::histogram);
  EXPECT_EQ(snap[1].count, 1u);
  EXPECT_EQ(snap[1].sum, 300u);
  ASSERT_EQ(snap[1].buckets.size(), 1u);
  EXPECT_EQ(snap[1].buckets[0].first, histogram_bucket(300));
  EXPECT_EQ(snap[1].buckets[0].second, 1u);
  EXPECT_EQ(snap[2].name, "z.last");
  EXPECT_EQ(snap[2].kind, MetricKind::counter);
  EXPECT_EQ(snap[2].count, 1u);
}

TEST(Registry, ConcurrentResolveAndRecord) {
  Registry r;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&r] {
      for (int i = 0; i < kIters; ++i) {
        r.counter("shared.count").add(1);
        r.histogram("shared.lat_us").record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(r.counter("shared.count").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(r.histogram("shared.lat_us").snapshot().count,
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(Registry, GlobalIsSingleton) {
  Registry& a = Registry::global();
  Registry& b = Registry::global();
  EXPECT_EQ(&a, &b);
}

TEST(MetricKindNames, RoundTrip) {
  for (MetricKind k : {MetricKind::counter, MetricKind::gauge, MetricKind::histogram}) {
    MetricKind parsed;
    ASSERT_TRUE(parse_metric_kind(metric_kind_name(k), parsed));
    EXPECT_EQ(parsed, k);
  }
  MetricKind ignored;
  EXPECT_FALSE(parse_metric_kind("summary", ignored));
}

TEST(PrometheusText, RendersAllKinds) {
  Registry r;
  r.counter("cache.hits").add(12);
  r.gauge("pool.queue_depth").set(3);
  r.histogram("req.wall_us").record(5);   // bucket [4,8)
  r.histogram("req.wall_us").record(6);   // bucket [4,8)
  r.histogram("req.wall_us").record(900); // bucket [512,1024)
  const std::string text = prometheus_text(r.snapshot());
  EXPECT_NE(text.find("# TYPE hynapse_cache_hits counter\n"), std::string::npos);
  EXPECT_NE(text.find("hynapse_cache_hits 12\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE hynapse_pool_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("hynapse_pool_queue_depth 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE hynapse_req_wall_us histogram\n"), std::string::npos);
  // Cumulative buckets: 2 at le=8, 3 at le=1024 and +Inf.
  EXPECT_NE(text.find("hynapse_req_wall_us_bucket{le=\"8\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("hynapse_req_wall_us_bucket{le=\"1024\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("hynapse_req_wall_us_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("hynapse_req_wall_us_sum 911\n"), std::string::npos);
  EXPECT_NE(text.find("hynapse_req_wall_us_count 3\n"), std::string::npos);
}

}  // namespace
}  // namespace hynapse::obs
