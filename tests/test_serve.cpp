// serve::EvalService: coalescing semantics, priority/backpressure/cancel
// queue behavior, and the determinism contract (service results bit-equal
// to direct ExperimentRunner calls -- docs/serving.md).
#include <gtest/gtest.h>

#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "ann/mlp.hpp"
#include "circuit/reference.hpp"
#include "core/quantized_network.hpp"
#include "data/digits.hpp"
#include "engine/experiment_runner.hpp"
#include "mc/criteria.hpp"
#include "mc/montecarlo.hpp"
#include "mc/variation.hpp"
#include "obs/metrics.hpp"
#include "serve/eval_service.hpp"

namespace hynapse::serve {
namespace {

/// Small fixed workload + low sample counts so each table build stays in
/// the tens-of-milliseconds range.
class EvalServiceTest : public ::testing::Test {
 protected:
  EvalServiceTest()
      : qnet_{ann::Mlp{{784, 12, 10}, 17}, 8},
        test_{data::generate_digits(60, 5)} {}

  ServiceOptions fast_options() const {
    ServiceOptions o;
    o.vdd_grid = {0.65};
    o.default_samples = 400;
    o.default_chips = 2;
    o.dispatchers = 2;
    return o;
  }

  static Request evaluate_request(const char* config, double vdd) {
    Request r;
    r.kind = RequestKind::evaluate;
    r.configs = {*ConfigSpec::parse(config)};
    r.vdds = {vdd};
    return r;
  }

  core::QuantizedNetwork qnet_;
  data::Dataset test_;
};

TEST_F(EvalServiceTest, FusedGroupsAndBackendsAreResultInvariant) {
  // ServiceOptions::backend / fuse_chips are pure performance knobs: any
  // combination must serve bit-identical accuracies to the per-chip
  // reference configuration.
  ServiceOptions base = fast_options();
  base.default_chips = 5;
  base.fuse_chips = 1;
  base.backend = ann::backends::Backend::reference;
  EvalService baseline{qnet_, test_, base};
  const Response expected =
      baseline.wait(baseline.submit(evaluate_request("hybrid2", 0.65)));
  ASSERT_EQ(expected.status, RequestStatus::done) << expected.error;
  ASSERT_EQ(expected.results.size(), 1u);

  for (const auto backend : ann::backends::available_backends()) {
    for (const std::size_t fuse : {std::size_t{0}, std::size_t{3},
                                   std::size_t{16}}) {
      ServiceOptions opts = base;
      opts.backend = backend;
      opts.fuse_chips = fuse;
      EvalService service{qnet_, test_, opts};
      const Response got =
          service.wait(service.submit(evaluate_request("hybrid2", 0.65)));
      ASSERT_EQ(got.status, RequestStatus::done) << got.error;
      ASSERT_EQ(got.results.size(), 1u);
      const core::AccuracyResult& a = expected.results[0].accuracy;
      const core::AccuracyResult& b = got.results[0].accuracy;
      ASSERT_EQ(b.per_chip.size(), a.per_chip.size());
      for (std::size_t c = 0; c < a.per_chip.size(); ++c) {
        EXPECT_EQ(b.per_chip[c], a.per_chip[c])
            << "backend=" << ann::backends::backend_name(backend)
            << " fuse=" << fuse << " chip=" << c;
      }
      EXPECT_EQ(b.mean, a.mean);
      EXPECT_EQ(b.stddev, a.stddev);
    }
  }
}

TEST_F(EvalServiceTest, ResultsBitIdenticalToDirectRunner) {
  ServiceOptions opts = fast_options();
  EvalService service{qnet_, test_, opts};

  std::vector<std::uint64_t> ids;
  const std::vector<const char*> configs{"all6t", "hybrid2", "hybrid3"};
  for (const char* cfg : configs) {
    ids.push_back(service.submit(evaluate_request(cfg, 0.65)));
  }

  // Reference path: same provenance, built directly, evaluated directly.
  const engine::TableSpec spec =
      service.table_spec(evaluate_request("all6t", 0.65));
  const mc::AnalyzerOptions ao =
      service.analyzer_options(evaluate_request("all6t", 0.65));
  const circuit::Technology tech = circuit::ptm22();
  const circuit::Sizing6T s6 = circuit::reference_sizing_6t(tech);
  const circuit::Sizing8T s8 = circuit::reference_sizing_8t(tech);
  const sram::SubArrayModel array{tech, sram::SubArrayGeometry{}, s6};
  const sram::CycleModel cycle{tech, array, circuit::Bitcell6T{tech, s6}};
  const mc::VariationSampler sampler{tech, s6, s8};
  const mc::FailureCriteria criteria{tech, cycle, s6, s8};
  const mc::FailureAnalyzer analyzer{criteria, sampler, ao};
  const mc::FailureTable table =
      mc::FailureTable::build(analyzer, spec.vdd_grid, spec.seed);

  const engine::ExperimentRunner runner;
  core::EvalOptions eval;
  eval.chips = opts.default_chips;
  eval.seed = opts.default_eval_seed;

  for (std::size_t i = 0; i < ids.size(); ++i) {
    const Response r = service.wait(ids[i]);
    ASSERT_EQ(r.status, RequestStatus::done) << r.error;
    ASSERT_EQ(r.results.size(), 1u);
    const core::MemoryConfig config =
        ConfigSpec::parse(configs[i])->materialize(qnet_.bank_words());
    const core::AccuracyResult direct =
        runner.evaluate(qnet_, config, table, 0.65, test_, eval);
    const core::AccuracyResult& served = r.results[0].accuracy;
    ASSERT_EQ(served.per_chip.size(), direct.per_chip.size());
    for (std::size_t c = 0; c < direct.per_chip.size(); ++c) {
      EXPECT_EQ(served.per_chip[c], direct.per_chip[c]);  // bitwise
    }
    EXPECT_EQ(served.mean, direct.mean);
    EXPECT_EQ(served.stddev, direct.stddev);
  }
}

TEST_F(EvalServiceTest, SameProvenanceRequestsShareOneBuild) {
  ServiceOptions opts = fast_options();
  opts.start_paused = true;
  EvalService service{qnet_, test_, opts};

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(service.submit(evaluate_request(i % 2 ? "all6t" : "hybrid2",
                                                  0.60 + 0.01 * i)));
  }
  service.resume();
  service.drain();

  const EvalService::Totals totals = service.totals();
  EXPECT_EQ(totals.submitted, 8u);
  EXPECT_EQ(totals.completed, 8u);
  EXPECT_EQ(totals.table_builds, 1u);  // one shared table for all 8
  EXPECT_GE(totals.coalesced_requests, 7u);

  bool saw_fused_batch = false;
  for (const std::uint64_t id : ids) {
    const Response r = service.wait(id);
    EXPECT_EQ(r.status, RequestStatus::done) << r.error;
    saw_fused_batch |= r.stats.batch_size > 1;
  }
  EXPECT_TRUE(saw_fused_batch);
}

TEST_F(EvalServiceTest, NaiveModeBuildsPerDispatch) {
  ServiceOptions opts = fast_options();
  opts.coalesce = false;
  opts.start_paused = true;
  EvalService service{qnet_, test_, opts};

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(service.submit(evaluate_request("hybrid2", 0.65)));
  }
  service.resume();
  service.drain();

  const EvalService::Totals totals = service.totals();
  EXPECT_EQ(totals.completed, 4u);
  EXPECT_EQ(totals.table_builds, 4u);  // no sharing: one build per request
  EXPECT_EQ(totals.coalesced_requests, 0u);
  for (const std::uint64_t id : ids) {
    EXPECT_EQ(service.wait(id).stats.batch_size, 1u);
  }
}

TEST_F(EvalServiceTest, HigherPriorityDispatchesFirst) {
  ServiceOptions opts = fast_options();
  opts.coalesce = false;  // keep each request its own dispatch
  opts.dispatchers = 1;   // single consumer -> strict dispatch order
  opts.start_paused = true;
  EvalService service{qnet_, test_, opts};

  const std::uint64_t low1 = service.submit(evaluate_request("all6t", 0.65));
  Request urgent = evaluate_request("hybrid2", 0.65);
  urgent.priority = 5;
  const std::uint64_t high = service.submit(urgent);
  const std::uint64_t low2 = service.submit(evaluate_request("all6t", 0.70));
  service.resume();
  service.drain();

  const std::uint64_t seq_high = service.wait(high).stats.dispatch_seq;
  const std::uint64_t seq_low1 = service.wait(low1).stats.dispatch_seq;
  const std::uint64_t seq_low2 = service.wait(low2).stats.dispatch_seq;
  EXPECT_LT(seq_high, seq_low1);  // priority wins
  EXPECT_LT(seq_low1, seq_low2);  // FIFO among equals
}

TEST_F(EvalServiceTest, BackpressureCancelAndRejection) {
  ServiceOptions opts = fast_options();
  opts.queue_capacity = 2;
  opts.dispatchers = 1;
  opts.start_paused = true;
  EvalService service{qnet_, test_, opts};

  const std::uint64_t a = service.submit(evaluate_request("all6t", 0.65));
  const std::uint64_t b = service.submit(evaluate_request("all6t", 0.66));
  EXPECT_FALSE(service.try_submit(evaluate_request("all6t", 0.67))
                   .has_value());  // full

  EXPECT_TRUE(service.cancel(a));
  EXPECT_FALSE(service.cancel(a));  // already cancelled
  const Response cancelled = service.wait(a);
  EXPECT_EQ(cancelled.status, RequestStatus::cancelled);

  const auto c = service.try_submit(evaluate_request("all6t", 0.67));
  ASSERT_TRUE(c.has_value());  // cancel freed a seat

  service.resume();
  service.drain();
  EXPECT_EQ(service.wait(b).status, RequestStatus::done);
  EXPECT_EQ(service.wait(*c).status, RequestStatus::done);
  EXPECT_FALSE(service.cancel(b));  // finished requests cannot be cancelled

  const EvalService::Totals totals = service.totals();
  EXPECT_EQ(totals.rejected, 1u);
  EXPECT_EQ(totals.cancelled, 1u);
  EXPECT_EQ(totals.completed, 2u);
  EXPECT_EQ(totals.max_queue_depth, 2u);
}

TEST_F(EvalServiceTest, SweepGridAndBadConfigFailAreIndependent) {
  ServiceOptions opts = fast_options();
  opts.start_paused = true;
  EvalService service{qnet_, test_, opts};

  Request sweep;
  sweep.kind = RequestKind::sweep;
  sweep.configs = {*ConfigSpec::parse("all6t"), *ConfigSpec::parse("hybrid2")};
  sweep.vdds = {0.62, 0.68};
  const std::uint64_t ok_id = service.submit(sweep);

  // Same provenance -> same batch, but its per-layer spec cannot bind to
  // the 2-bank network: it must fail alone without sinking the batch.
  Request bad = evaluate_request("all6t", 0.62);
  bad.configs = {*ConfigSpec::parse("perlayer:1,2,3,4,5")};
  const std::uint64_t bad_id = service.submit(bad);

  service.resume();
  const Response ok = service.wait(ok_id);
  ASSERT_EQ(ok.status, RequestStatus::done) << ok.error;
  ASSERT_EQ(ok.results.size(), 4u);  // 2 configs x 2 vdds
  EXPECT_EQ(ok.results[0].config, "all6t");
  EXPECT_DOUBLE_EQ(ok.results[0].vdd, 0.62);
  EXPECT_EQ(ok.results[3].config, "hybrid2");
  EXPECT_DOUBLE_EQ(ok.results[3].vdd, 0.68);

  const Response failed = service.wait(bad_id);
  EXPECT_EQ(failed.status, RequestStatus::failed);
  EXPECT_NE(failed.error.find("banks"), std::string::npos);
  EXPECT_EQ(service.totals().failed, 1u);
}

TEST_F(EvalServiceTest, TableInfoReportsProvenanceAndPersistence) {
  const std::string dir = "/tmp/hynapse_serve_test_cache";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  ServiceOptions opts = fast_options();
  opts.cache_dir = dir;
  EvalService service{qnet_, test_, opts};

  Request info;
  info.kind = RequestKind::table_info;
  const Response before = service.wait(service.submit(info));
  ASSERT_EQ(before.status, RequestStatus::done) << before.error;
  EXPECT_EQ(before.table_fingerprint, service.fingerprint(info));
  EXPECT_FALSE(before.table_in_memory);
  EXPECT_EQ(before.table_rows, 0u);  // nothing persisted yet

  const Response eval =
      service.wait(service.submit(evaluate_request("hybrid2", 0.65)));
  ASSERT_EQ(eval.status, RequestStatus::done) << eval.error;

  const Response after = service.wait(service.submit(info));
  EXPECT_TRUE(after.table_in_memory);
  EXPECT_EQ(after.table_rows, 1u);  // the 1-point grid CSV on disk
  EXPECT_TRUE(std::filesystem::exists(after.table_csv));
  EXPECT_EQ(after.table_fingerprint, eval.table_fingerprint);

  std::filesystem::remove_all(dir);
}

TEST_F(EvalServiceTest, TableShardBuildsPersistsAndReplays) {
  const std::string dir = "/tmp/hynapse_serve_shard_cache";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  ServiceOptions opts = fast_options();
  opts.cache_dir = dir;
  opts.vdd_grid = {0.65, 0.75, 0.85};  // 3 voltages -> up to 3 shards
  EvalService service{qnet_, test_, opts};

  Request shard;
  shard.kind = RequestKind::table_shard;
  shard.shard = 1;
  shard.shard_count = 3;

  const Response built = service.wait(service.submit(shard));
  ASSERT_EQ(built.status, RequestStatus::done) << built.error;
  EXPECT_EQ(built.shard_index, 1u);
  EXPECT_EQ(built.shard_count, 3u);
  EXPECT_EQ(built.table_rows, 1u);  // one voltage of the 3-point grid
  EXPECT_EQ(built.stats.table_source, engine::TableSource::built);
  EXPECT_FALSE(built.stats.coalesced);
  // The coalescing key is the shard-extended fingerprint.
  EXPECT_EQ(built.shard_fingerprint, service.fingerprint(shard));
  EXPECT_NE(built.shard_fingerprint, built.table_fingerprint);
  // The artifact is on disk, validated by its shard fingerprint.
  ASSERT_FALSE(built.table_csv.empty());
  EXPECT_TRUE(std::filesystem::exists(built.table_csv));
  EXPECT_TRUE(
      mc::FailureTable::load_csv(built.table_csv, built.shard_fingerprint)
          .has_value());

  // The same shard again: replayed from the CSV, counted as coalesced.
  const Response replayed = service.wait(service.submit(shard));
  ASSERT_EQ(replayed.status, RequestStatus::done) << replayed.error;
  EXPECT_EQ(replayed.stats.table_source, engine::TableSource::disk);
  EXPECT_TRUE(replayed.stats.coalesced);

  // A different shard has a different fingerprint and its own artifact.
  Request other = shard;
  other.shard = 0;
  EXPECT_NE(service.fingerprint(other), service.fingerprint(shard));
  const Response built0 = service.wait(service.submit(other));
  ASSERT_EQ(built0.status, RequestStatus::done) << built0.error;
  EXPECT_NE(built0.table_csv, built.table_csv);

  const EvalService::Totals totals = service.totals();
  EXPECT_EQ(totals.shard_builds, 2u);
  EXPECT_EQ(totals.shard_replays, 1u);

  std::filesystem::remove_all(dir);
}

TEST_F(EvalServiceTest, TableShardOutOfRangeFailsCleanly) {
  ServiceOptions opts = fast_options();  // 1-voltage grid -> 1 shard max
  EvalService service{qnet_, test_, opts};

  Request shard;
  shard.kind = RequestKind::table_shard;
  shard.shard = 2;
  shard.shard_count = 5;  // clamped to 1 by the grid; shard 2 cannot exist
  const Response r = service.wait(service.submit(shard));
  EXPECT_EQ(r.status, RequestStatus::failed);
  EXPECT_NE(r.error.find("out of range"), std::string::npos) << r.error;
}

TEST_F(EvalServiceTest, IdenticalTableShardsFuseIntoOneDispatch) {
  ServiceOptions opts = fast_options();
  opts.vdd_grid = {0.65, 0.75};
  opts.start_paused = true;
  opts.dispatchers = 1;  // one dispatcher -> queued requests must fuse
  EvalService service{qnet_, test_, opts};

  Request shard;
  shard.kind = RequestKind::table_shard;
  shard.shard = 0;
  shard.shard_count = 2;
  const std::uint64_t a = service.submit(shard);
  const std::uint64_t b = service.submit(shard);
  // An evaluate request must NOT ride a shard batch even if enqueued
  // between the two shard requests.
  const std::uint64_t c = service.submit(evaluate_request("all6t", 0.65));
  service.resume();
  service.drain();

  const Response ra = service.wait(a);
  const Response rb = service.wait(b);
  const Response rc = service.wait(c);
  ASSERT_EQ(ra.status, RequestStatus::done) << ra.error;
  ASSERT_EQ(rb.status, RequestStatus::done) << rb.error;
  ASSERT_EQ(rc.status, RequestStatus::done) << rc.error;
  EXPECT_EQ(ra.stats.batch_size, 2u);  // the two identical shards fused
  EXPECT_EQ(rb.stats.batch_size, 2u);
  EXPECT_EQ(rb.stats.dispatch_seq, ra.stats.dispatch_seq);
  EXPECT_TRUE(rb.stats.coalesced);  // the rider
  EXPECT_EQ(rc.stats.batch_size, 1u);
  EXPECT_NE(rc.stats.dispatch_seq, ra.stats.dispatch_seq);
  EXPECT_EQ(service.totals().shard_builds, 1u);  // one build served both
}

TEST_F(EvalServiceTest, DistinctProvenancesDoNotCoalesce) {
  ServiceOptions opts = fast_options();
  opts.start_paused = true;
  EvalService service{qnet_, test_, opts};

  Request a = evaluate_request("all6t", 0.65);
  a.table_seed = 1;
  Request b = evaluate_request("all6t", 0.65);
  b.table_seed = 2;
  EXPECT_NE(service.fingerprint(a), service.fingerprint(b));
  const std::uint64_t ia = service.submit(a);
  const std::uint64_t ib = service.submit(b);
  service.resume();
  service.drain();

  EXPECT_EQ(service.wait(ia).stats.batch_size, 1u);
  EXPECT_EQ(service.wait(ib).stats.batch_size, 1u);
  EXPECT_EQ(service.totals().table_builds, 2u);
}

TEST_F(EvalServiceTest, DestructorCancelsQueuedRequests) {
  ServiceOptions opts = fast_options();
  opts.start_paused = true;
  std::uint64_t id = 0;
  {
    EvalService service{qnet_, test_, opts};
    id = service.submit(evaluate_request("all6t", 0.65));
    // Destructor runs with the request still queued: must not hang.
  }
  EXPECT_GT(id, 0u);
}

TEST_F(EvalServiceTest, CompletedHistoryIsBounded) {
  ServiceOptions opts = fast_options();
  opts.completed_history = 2;
  opts.dispatchers = 1;  // deterministic finish order
  opts.start_paused = true;
  EvalService service{qnet_, test_, opts};

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(service.submit(evaluate_request("all6t", 0.65)));
  }
  service.resume();
  service.drain();

  // Only the 2 most recently finished responses are retained; older ids
  // are evicted (but were completed -- the totals still count them).
  EXPECT_EQ(service.totals().completed, 5u);
  EXPECT_EQ(service.poll(ids[0]).status, RequestStatus::evicted);
  EXPECT_EQ(service.poll(ids[2]).status, RequestStatus::evicted);
  EXPECT_EQ(service.poll(ids[3]).status, RequestStatus::done);
  EXPECT_EQ(service.poll(ids[4]).status, RequestStatus::done);

  // wait() is total over ids: an evicted-but-assigned id reports eviction,
  // a never-assigned id reports not_found with a structured code -- neither
  // throws (docs in eval_service.hpp).
  EXPECT_EQ(service.wait(ids[0]).status, RequestStatus::evicted);
  EXPECT_EQ(service.wait(ids[4]).status, RequestStatus::done);
  const Response unknown = service.wait(ids[4] + 100);
  EXPECT_EQ(unknown.status, RequestStatus::not_found);
  EXPECT_EQ(unknown.code, ErrorCode::not_found);
  EXPECT_EQ(unknown.id, ids[4] + 100);
}

TEST_F(EvalServiceTest, PollTracksLifecycleAndUnknownIds) {
  ServiceOptions opts = fast_options();
  opts.start_paused = true;
  EvalService service{qnet_, test_, opts};
  EXPECT_EQ(service.poll(999).status, RequestStatus::not_found);
  EXPECT_EQ(service.poll(999).code, ErrorCode::not_found);
  EXPECT_EQ(service.poll(0).status, RequestStatus::not_found);
  EXPECT_EQ(service.wait(999).status, RequestStatus::not_found);

  const std::uint64_t id = service.submit(evaluate_request("all6t", 0.65));
  EXPECT_EQ(service.poll(id).status, RequestStatus::queued);

  service.resume();
  const Response done = service.wait(id);
  EXPECT_EQ(done.status, RequestStatus::done);
  EXPECT_EQ(done.code, ErrorCode::none);
  EXPECT_GE(done.stats.wall_ms, 0.0);
  EXPECT_GT(done.stats.dispatch_seq, 0u);
}

TEST_F(EvalServiceTest, CompletionCallbacksFireOnceAtTerminalTransition) {
  ServiceOptions opts = fast_options();
  opts.start_paused = true;
  EvalService service{qnet_, test_, opts};

  std::mutex mu;
  std::vector<Response> seen;
  const auto record = [&](const Response& r) {
    const std::scoped_lock lock{mu};
    seen.push_back(r);
  };

  Request tagged = evaluate_request("hybrid2", 0.65);
  tagged.tag = "cb-1";
  const std::uint64_t done_id = service.submit(tagged, record);
  const std::uint64_t cancel_id =
      service.submit(evaluate_request("all6t", 0.70), record);
  EXPECT_TRUE(service.cancel(cancel_id));
  service.resume();
  service.drain();

  const std::scoped_lock lock{mu};
  ASSERT_EQ(seen.size(), 2u);  // exactly once each, cancel included
  for (const Response& r : seen) {
    if (r.id == done_id) {
      EXPECT_EQ(r.status, RequestStatus::done) << r.error;
      EXPECT_EQ(r.tag, "cb-1");
    } else {
      EXPECT_EQ(r.id, cancel_id);
      EXPECT_EQ(r.status, RequestStatus::cancelled);
    }
  }
}

TEST_F(EvalServiceTest, DestructorFiresCallbacksForQueuedRequests) {
  ServiceOptions opts = fast_options();
  opts.start_paused = true;
  std::vector<RequestStatus> statuses;
  {
    EvalService service{qnet_, test_, opts};
    (void)service.submit(
        evaluate_request("all6t", 0.65),
        [&](const Response& r) { statuses.push_back(r.status); });
    // Destructor cancels the queued request: its callback must still fire.
  }
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0], RequestStatus::cancelled);
}

// The registry is process-global (other tests in this binary record into
// it), so registry assertions work on deltas, never absolute counts.
std::uint64_t metric_count(const std::vector<obs::MetricSnapshot>& metrics,
                           const std::string& name) {
  for (const obs::MetricSnapshot& m : metrics) {
    if (m.name == name) return m.count;
  }
  return 0;
}

TEST_F(EvalServiceTest, StatsOpReportsHealthAndRegistry) {
  const std::uint64_t wall_before = metric_count(
      obs::Registry::global().snapshot(), "serve.request.wall_us");

  EvalService service{qnet_, test_, fast_options()};
  for (int i = 0; i < 3; ++i) {
    const Response r =
        service.wait(service.submit(evaluate_request("hybrid2", 0.65)));
    ASSERT_EQ(r.status, RequestStatus::done) << r.error;
  }

  Request probe;
  probe.kind = RequestKind::stats;
  probe.tag = "probe";
  EXPECT_EQ(service.fingerprint(probe), 0u);  // no table provenance

  const Response stats = service.wait(service.submit(probe));
  ASSERT_EQ(stats.status, RequestStatus::done) << stats.error;
  EXPECT_EQ(stats.tag, "probe");
  EXPECT_EQ(stats.table_fingerprint, 0u);

  ASSERT_TRUE(stats.health.has_value());
  const HealthSummary& h = *stats.health;
  EXPECT_GT(h.uptime_s, 0.0);
  EXPECT_GT(h.queue_capacity, 0u);
  EXPECT_EQ(h.dispatchers, 2u);
  EXPECT_FALSE(h.backend.empty());
  EXPECT_TRUE(h.eval_path == "delta" || h.eval_path == "legacy");
  EXPECT_TRUE(h.cache_dir.empty());
  EXPECT_EQ(h.cache_tables, 0u);
  // Snapshot taken before the scrape's own terminal transition: the three
  // evaluates are complete, the scrape itself is only submitted.
  EXPECT_EQ(h.totals.completed, 3u);
  EXPECT_EQ(h.totals.submitted, 4u);
  EXPECT_EQ(h.totals.failed, 0u);

  // The registry snapshot rides along, and the per-request wall histogram
  // grew by exactly the three evaluates (scrapes are excluded so that
  // monitoring does not perturb the latency distributions).
  ASSERT_FALSE(stats.metrics.empty());
  EXPECT_EQ(metric_count(stats.metrics, "serve.request.wall_us"),
            wall_before + 3);

  // Two concurrent scrapes share fingerprint 0 but must never coalesce:
  // each gets its own health snapshot.
  std::uint64_t id1 = 0;
  std::uint64_t id2 = 0;
  {
    Request a;
    a.kind = RequestKind::stats;
    Request b;
    b.kind = RequestKind::stats;
    id1 = service.submit(std::move(a));
    id2 = service.submit(std::move(b));
  }
  const Response s1 = service.wait(id1);
  const Response s2 = service.wait(id2);
  ASSERT_EQ(s1.status, RequestStatus::done) << s1.error;
  ASSERT_EQ(s2.status, RequestStatus::done) << s2.error;
  EXPECT_TRUE(s1.health.has_value());
  EXPECT_TRUE(s2.health.has_value());
  EXPECT_FALSE(s1.stats.coalesced);
  EXPECT_FALSE(s2.stats.coalesced);
}

}  // namespace
}  // namespace hynapse::serve
